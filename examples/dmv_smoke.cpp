// DMV smoke: drive a cache server through the usual motions (local hits,
// remote routing, a dynamic plan, a freshness-bounded query, a replication
// round) and then read every sys.dm_* view back through plain SQL. Exits
// non-zero if a DMV fails to execute or an expected counter stayed at zero,
// so scripts/check.sh can use it as a regression gate.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/dmv_smoke

#include <cstdio>
#include <string>

#include "mtcache/mtcache.h"

using namespace mtcache;

namespace {

void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void PrintDmv(Server* server, const std::string& name) {
  auto result = server->Execute("SELECT * FROM sys." + name);
  Must(result.status(), name.c_str());
  std::printf("\nsys.%s (%zu row%s)\n", name.c_str(), result->rows.size(),
              result->rows.size() == 1 ? "" : "s");
  for (const Row& row : result->rows) {
    std::printf("  ");
    for (int c = 0; c < result->schema.num_columns(); ++c) {
      std::printf("%s%s=%s", c ? " " : "",
                  result->schema.column(c).name.c_str(),
                  row[c].ToString().c_str());
    }
    std::printf("\n");
  }
}

int64_t Counter(Server* server, const std::string& query, const char* what) {
  auto result = server->Execute(query);
  Must(result.status(), what);
  if (result->rows.size() != 1 || result->rows[0].empty()) {
    std::fprintf(stderr, "%s: expected one scalar row\n", what);
    std::exit(1);
  }
  return result->rows[0][0].AsInt();
}

}  // namespace

int main() {
  SimClock clock;
  LinkedServerRegistry links;
  Server backend(ServerOptions{"backend", "dbo", {}}, &clock, &links);
  Server cache(ServerOptions{"cache1", "dbo", {}}, &clock, &links);

  Must(backend.ExecuteScript(R"sql(
    CREATE TABLE customer (
      cid INT PRIMARY KEY,
      cname VARCHAR(30),
      city VARCHAR(30)
    );
  )sql"),
       "create schema");
  for (int i = 1; i <= 300; ++i) {
    Must(backend.ExecuteScript(
             "INSERT INTO customer VALUES (" + std::to_string(i) +
             ", 'customer" + std::to_string(i) + "', '" +
             (i % 2 == 0 ? "seattle" : "redmond") + "')"),
         "load");
  }
  backend.RecomputeStats();

  ReplicationSystem repl(&clock);
  auto mtcache_or = MTCache::Setup(&cache, &backend, &repl);
  Must(mtcache_or.status(), "MTCache setup");
  std::unique_ptr<MTCache> mtcache = mtcache_or.ConsumeValue();
  Must(cache.ExecuteScript(
           "CREATE CACHED MATERIALIZED VIEW cust200 AS "
           "SELECT cid, cname, city FROM customer WHERE cid <= 200"),
       "create cached view");

  // A little of everything the counters track: a repeated local query (plan
  // cache hit), a query outside the cached region (remote routing), a
  // parameterized dynamic plan exercised on both sides of the boundary, a
  // freshness-bounded query (uncacheable plan), a forwarded update, and one
  // replication round.
  for (int i = 0; i < 3; ++i) {
    Must(cache.Execute("SELECT cname FROM customer WHERE cid = 42").status(),
         "local query");
  }
  Must(cache.Execute("SELECT cname FROM customer WHERE cid = 250").status(),
       "remote query");
  ParamMap params;
  params["@cid"] = Value::Int(100);
  Must(cache.Execute("SELECT cname FROM customer WHERE cid = @cid", params,
                     nullptr)
           .status(),
       "dynamic plan, local branch");
  params["@cid"] = Value::Int(250);
  Must(cache.Execute("SELECT cname FROM customer WHERE cid = @cid", params,
                     nullptr)
           .status(),
       "dynamic plan, remote branch");
  Must(cache
           .Execute("SELECT cname FROM customer WHERE cid = 7 "
                    "WITH MAXSTALENESS 30")
           .status(),
       "freshness query");
  Must(cache.Execute("UPDATE customer SET cname = 'renamed' WHERE cid = 42")
           .status(),
       "forwarded update");
  clock.Advance(0.5);
  Must(repl.RunOnce(nullptr, nullptr), "replication round");

  for (const std::string& name : cache.dmvs().Names()) {
    PrintDmv(&cache, name);
  }

  // Regression gates: these counters must have moved if the layer is wired.
  struct Gate {
    const char* what;
    std::string query;
  } gates[] = {
      {"plan cache hits",
       "SELECT hits FROM sys.dm_plan_cache"},
      {"uncacheable plans",
       "SELECT uncacheable FROM sys.dm_plan_cache"},
      {"view-match hits",
       "SELECT view_match_hits FROM sys.dm_plan_cache"},
      {"dynamic plans",
       "SELECT dynamic_plans FROM sys.dm_plan_cache"},
      {"traced statements",
       "SELECT COUNT(*) FROM sys.dm_exec_requests"},
      {"rolled-up statements",
       "SELECT COUNT(*) FROM sys.dm_exec_query_stats"},
      {"cached views listed",
       "SELECT COUNT(*) FROM sys.dm_mtcache_views"},
      {"replicated changes",
       "SELECT changes_applied FROM sys.dm_repl_metrics"},
  };
  bool ok = true;
  for (const Gate& gate : gates) {
    int64_t n = Counter(&cache, gate.query, gate.what);
    if (n <= 0) {
      std::fprintf(stderr, "FAIL: %s is %lld, expected > 0\n", gate.what,
                   static_cast<long long>(n));
      ok = false;
    }
  }
  if (!ok) return 1;
  std::printf("\nDMV smoke OK: all %zu gates nonzero.\n",
              sizeof(gates) / sizeof(gates[0]));
  return 0;
}
