// Data-freshness requirements: the SQL extension the paper's section 7 asks
// for ("a query might include an optional clause stating that a result up to
// 30 seconds old is acceptable"), implemented as WITH MAXSTALENESS.
//
//   ./build/examples/freshness

#include <cstdio>

#include "mtcache/mtcache.h"

using namespace mtcache;

namespace {
void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void Show(Server* cache, const char* label, const std::string& sql) {
  ExecStats stats;
  auto r = cache->Execute(sql, {}, &stats);
  Must(r.status(), label);
  std::printf("%-34s -> price %s   (%s)\n", label,
              r->rows.empty() ? "<none>" : r->rows[0][0].ToString().c_str(),
              stats.remote_cost > 0 ? "read from BACKEND (fresh)"
                                    : "read from CACHED VIEW");
}
}  // namespace

int main() {
  SimClock clock;
  LinkedServerRegistry links;
  Server backend(ServerOptions{"backend", "dbo", {}}, &clock, &links);
  Server cache(ServerOptions{"cache", "dbo", {}}, &clock, &links);
  ReplicationSystem repl(&clock);

  Must(backend.ExecuteScript(
           "CREATE TABLE quote (sym VARCHAR(8), sid INT PRIMARY KEY, "
           "price FLOAT)"),
       "schema");
  for (int i = 1; i <= 100; ++i) {
    Must(backend.ExecuteScript("INSERT INTO quote VALUES ('S" +
                               std::to_string(i) + "', " + std::to_string(i) +
                               ", 100.0)"),
         "load");
  }
  backend.RecomputeStats();
  auto setup = MTCache::Setup(&cache, &backend, &repl);
  Must(setup.status(), "setup");
  auto mtcache = setup.ConsumeValue();
  Must(mtcache->CreateCachedView("quotes_cache",
                                 "SELECT sym, sid, price FROM quote"),
       "view");

  const std::string plain = "SELECT price FROM quote WHERE sid = 7";
  const std::string strict = plain + " WITH MAXSTALENESS 10";

  std::printf("t=%.0fs  initial state (view freshly snapshotted)\n",
              clock.Now());
  Show(&cache, "  no freshness clause", plain);
  Show(&cache, "  WITH MAXSTALENESS 10", strict);

  // The price changes on the backend; no replication round runs, so the
  // cached view is now stale.
  Must(backend.ExecuteScript("UPDATE quote SET price = 120.0 WHERE sid = 7"),
       "update");
  clock.Advance(60);
  std::printf("\nt=%.0fs  backend updated 60s ago; no replication since\n",
              clock.Now());
  Show(&cache, "  no freshness clause", plain);
  Show(&cache, "  WITH MAXSTALENESS 10", strict);

  // A replication round restores freshness; the strict query can use the
  // cache again.
  Must(repl.RunOnce(nullptr, nullptr), "replication round");
  std::printf("\nt=%.0fs  after a replication round\n", clock.Now());
  Show(&cache, "  no freshness clause", plain);
  Show(&cache, "  WITH MAXSTALENESS 10", strict);

  std::printf(
      "\nThe lax query tolerates staleness and always uses the cache; the "
      "strict query\ntransparently falls back to the backend whenever the "
      "replica is too old.\n");
  return 0;
}
