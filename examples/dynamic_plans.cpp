// Dynamic plans walkthrough: reproduces the paper's section 5.1 narrative
// with the Cust1000 view and a parameterized query, printing the actual
// physical plans (Figure 2(b): UnionAll over two startup-predicate Selects)
// and the run-time branch selection.
//
//   ./build/examples/dynamic_plans

#include <cstdio>

#include "mtcache/mtcache.h"

using namespace mtcache;

namespace {
void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  SimClock clock;
  LinkedServerRegistry links;
  Server backend(ServerOptions{"backend", "dbo", {}}, &clock, &links);
  Server cache(ServerOptions{"cache", "dbo", {}}, &clock, &links);
  ReplicationSystem repl(&clock);

  Must(backend.ExecuteScript(
           "CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(30), "
           "caddress VARCHAR(60))"),
       "schema");
  for (int i = 1; i <= 2000; ++i) {
    Must(backend.ExecuteScript("INSERT INTO customer VALUES (" +
                               std::to_string(i) + ", 'name" +
                               std::to_string(i) + "', 'addr')"),
         "load");
  }
  backend.RecomputeStats();

  auto setup = MTCache::Setup(&cache, &backend, &repl);
  Must(setup.status(), "setup");
  auto mtcache = setup.ConsumeValue();
  Must(mtcache->CreateCachedView(
           "cust1000",
           "SELECT cid, cname, caddress FROM customer WHERE cid <= 1000"),
       "view");

  const char* kQuery =
      "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid";
  std::printf("Query: %s\n", kQuery);
  std::printf("Cached view cust1000 holds customers with cid <= 1000.\n\n");

  auto plan = cache.Explain(kQuery);
  Must(plan.status(), "explain");
  std::printf("Physical plan (optimized once, reused for every call):\n%s\n",
              PhysicalToString(*plan->plan).c_str());
  std::printf("dynamic plan: %s, estimated cost: %.0f\n\n",
              plan->dynamic_plan ? "yes" : "no", plan->est_cost);

  for (int64_t value : {250, 1000, 1700}) {
    ParamMap params;
    params["@cid"] = Value::Int(value);
    ExecStats stats;
    auto result = cache.Execute(kQuery, params, &stats);
    Must(result.status(), "execute");
    std::printf("@cid = %-5lld -> %4zu rows, local work %7.0f, backend work "
                "%7.0f  => branch: %s\n",
                static_cast<long long>(value), result->rows.size(),
                stats.local_cost, stats.remote_cost,
                stats.remote_cost > 0 ? "REMOTE (guard false)"
                                      : "LOCAL view (guard true)");
  }

  std::printf("\nPlan cache: %lld misses, %lld hits — one optimization, "
              "per-call branch choice.\n",
              static_cast<long long>(cache.plan_cache_stats().misses),
              static_cast<long long>(cache.plan_cache_stats().hits));

  // Compare: with dynamic plans disabled the view is unusable for the
  // parameterized query and every call ships.
  OptimizerOptions opts = cache.optimizer_options();
  opts.enable_dynamic_plans = false;
  cache.set_optimizer_options(opts);
  auto static_plan = cache.Explain(kQuery);
  Must(static_plan.status(), "explain static");
  std::printf("\nWith dynamic plans disabled the same query plans as:\n%s",
              PhysicalToString(*static_plan->plan).c_str());
  return 0;
}
