// Quickstart: stand up a backend server, attach an MTCache mid-tier cache,
// define a cached view, and watch queries route transparently.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>

#include "mtcache/mtcache.h"

using namespace mtcache;

namespace {

void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void PrintResult(const char* label, const QueryResult& result) {
  std::printf("%s\n", label);
  for (const Row& row : result.rows) {
    std::printf("  ");
    for (size_t i = 0; i < row.size(); ++i) {
      std::printf("%s%s", i ? " | " : "", row[i].ToString().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  // One simulated clock and one linked-server registry shared by all
  // servers (the registry is the moral equivalent of SQL Server's linked
  // server catalog).
  SimClock clock;
  LinkedServerRegistry links;
  Server backend(ServerOptions{"backend", "dbo", {}}, &clock, &links);
  Server cache(ServerOptions{"cache1", "dbo", {}}, &clock, &links);

  // --- Backend: schema and data -------------------------------------------
  Must(backend.ExecuteScript(R"sql(
    CREATE TABLE customer (
      cid INT PRIMARY KEY,
      cname VARCHAR(30),
      city VARCHAR(30)
    );
  )sql"),
       "create schema");
  for (int i = 1; i <= 2000; ++i) {
    Must(backend.ExecuteScript(
             "INSERT INTO customer VALUES (" + std::to_string(i) +
             ", 'customer" + std::to_string(i) + "', '" +
             (i % 2 == 0 ? "seattle" : "redmond") + "')"),
         "load");
  }
  backend.RecomputeStats();

  // --- Enable caching (the two setup scripts of section 4) -----------------
  ReplicationSystem repl(&clock);
  auto mtcache_or = MTCache::Setup(&cache, &backend, &repl);
  Must(mtcache_or.status(), "MTCache setup");
  std::unique_ptr<MTCache> mtcache = mtcache_or.ConsumeValue();

  // The DBA's script: cache the first 1000 customers. A replication
  // subscription is created automatically and the view is populated.
  Must(cache.ExecuteScript(
           "CREATE CACHED MATERIALIZED VIEW cust1000 AS "
           "SELECT cid, cname, city FROM customer WHERE cid <= 1000"),
       "create cached view");

  // --- The application: connects to the CACHE, knows nothing about it -----
  ExecStats local_stats;
  auto r1 = cache.Execute("SELECT cname FROM customer WHERE cid = 42", {},
                          &local_stats);
  Must(r1.status(), "query 1");
  PrintResult("Query inside the cached region (served locally):", *r1);
  std::printf("  -> work: %.0f local units, %.0f backend units\n\n",
              local_stats.local_cost, local_stats.remote_cost);

  ExecStats remote_stats;
  auto r2 = cache.Execute("SELECT cname FROM customer WHERE cid = 1500", {},
                          &remote_stats);
  Must(r2.status(), "query 2");
  PrintResult("Query outside the cached region (shipped to the backend):",
              *r2);
  std::printf("  -> work: %.0f local units, %.0f backend units\n\n",
              remote_stats.local_cost, remote_stats.remote_cost);

  // Updates through the cache are transparently forwarded, then replicated
  // back into the cached view.
  auto upd = cache.Execute("UPDATE customer SET cname = 'renamed' WHERE cid = 42");
  Must(upd.status(), "update");
  std::printf("Updated %lld row(s) through the cache (ran on the backend).\n",
              static_cast<long long>(upd->rows_affected));
  clock.Advance(0.5);  // replication agents wake up
  Must(repl.RunOnce(nullptr, nullptr), "replication round");
  auto r3 = cache.Execute("SELECT cname FROM cust1000 WHERE cid = 42");
  Must(r3.status(), "query 3");
  PrintResult("Cached view after one replication round:", *r3);
  std::printf("Average propagation latency: %.2f s\n",
              repl.metrics().AvgLatency());

  // Show the plan for a parameterized query: a dynamic plan with two
  // branches and a startup predicate (section 5.1's Cust1000 example).
  auto plan = cache.Explain(
      "SELECT cid, cname FROM customer WHERE cid <= @cid");
  Must(plan.status(), "explain");
  std::printf("\nDynamic plan for 'cid <= @cid' (Figure 2(b) shape):\n%s",
              PhysicalToString(*plan->plan).c_str());
  return 0;
}
