// Storefront scale-out: the paper's headline scenario in miniature. Runs the
// TPC-W Shopping workload against (a) the backend alone and (b) one to three
// MTCache web/cache servers, printing throughput and backend CPU load.
//
//   ./build/examples/storefront_scaleout

#include <cstdio>

#include "sim/testbed.h"

using namespace mtcache;
using namespace mtcache::sim;

int main() {
  TestbedConfig base;
  base.tpcw.num_items = 500;
  base.tpcw.num_authors = 125;
  base.tpcw.num_customers = 1000;
  base.tpcw.num_orders = 900;
  base.tpcw.best_seller_window = 120;
  base.mix = tpcw::WorkloadMix::kShopping;
  base.profile_samples = 10;

  std::printf("TPC-W Shopping mix, miniature scale (%d items, %d customers)\n\n",
              base.tpcw.num_items, base.tpcw.num_customers);
  std::printf("%-28s %8s %10s %12s %10s\n", "configuration", "users", "WIPS",
              "backendCPU", "p90(s)");

  {
    TestbedConfig config = base;
    config.caching = false;
    config.num_web_servers = 3;
    Testbed testbed(config);
    if (!testbed.Initialize().ok()) return 1;
    auto r = testbed.FindMaxThroughput(10, 40);
    if (!r.ok()) return 1;
    std::printf("%-28s %8d %10.1f %11.1f%% %10.2f\n", "no caching (backend only)",
                r->users, r->wips, r->backend_util * 100, r->p90_latency);
  }
  for (int caches = 1; caches <= 5; ++caches) {
    TestbedConfig config = base;
    config.caching = true;
    config.num_web_servers = caches;
    Testbed testbed(config);
    if (!testbed.Initialize().ok()) return 1;
    auto r = testbed.FindMaxThroughput(10, 40);
    if (!r.ok()) return 1;
    std::printf("%-26s %2d %8d %10.1f %11.1f%% %10.2f\n", "MTCache servers:",
                caches, r->users, r->wips, r->backend_util * 100,
                r->p90_latency);
  }
  std::printf(
      "\nAdding cache servers grows read-mostly throughput nearly linearly "
      "while the\nbackend coasts — the paper's Figure 6 in miniature. (At "
      "this toy scale the\ndual-CPU backend alone is quick; the win is the "
      "slope: every extra commodity\ncache server adds throughput without "
      "touching the backend.)\n");
  return 0;
}
