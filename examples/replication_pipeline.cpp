// Replication pipeline walkthrough: publications, articles, the log reader,
// the distribution database, and commit-order apply — section 2.2 of the
// paper, observable step by step.
//
//   ./build/examples/replication_pipeline

#include <cstdio>

#include "repl/replication.h"

using namespace mtcache;

namespace {
void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}
}  // namespace

int main() {
  SimClock clock;
  LinkedServerRegistry links;
  Server publisher(ServerOptions{"publisher", "dbo", {}}, &clock, &links);
  Server subscriber(ServerOptions{"subscriber", "dbo", {}}, &clock, &links);
  ReplicationSystem repl(&clock);

  Must(publisher.ExecuteScript(
           "CREATE TABLE part (id INT PRIMARY KEY, name VARCHAR(30), "
           "type VARCHAR(10), price FLOAT)"),
       "publisher schema");
  Must(subscriber.ExecuteScript(
           "CREATE TABLE tire_parts (id INT PRIMARY KEY, name VARCHAR(30), "
           "price FLOAT)"),
       "subscriber schema");

  // Article: a select-project over `part` — only tires, without the type
  // column (articles "may contain only a subset of the columns and rows").
  Article article;
  article.name = "tires";
  article.def.base_table = "part";
  article.def.columns = {"id", "name", "price"};
  article.def.predicates = {{"type", CompareOp::kEq, Value::String("tire")}};
  auto sub = repl.Subscribe(&publisher, article, &subscriber, "tire_parts");
  Must(sub.status(), "subscribe");
  std::printf("Subscription %lld: part(type='tire') -> tire_parts\n\n",
              static_cast<long long>(*sub));

  // A committed transaction with mixed changes.
  Must(publisher.ExecuteScript(R"sql(
    BEGIN TRANSACTION;
    INSERT INTO part VALUES (1, 'all-season', 'tire', 89.0);
    INSERT INTO part VALUES (2, 'wiper blade', 'wiper', 12.0);
    INSERT INTO part VALUES (3, 'snow', 'tire', 120.0);
    COMMIT;
  )sql"),
       "txn 1");
  // And one that rolls back (must never ship).
  Must(publisher.ExecuteScript(
           "BEGIN TRANSACTION; "
           "INSERT INTO part VALUES (4, 'phantom', 'tire', 1.0); "
           "ROLLBACK;"),
       "txn 2");

  std::printf("Publisher log before the log reader runs: %lld records\n",
              static_cast<long long>(publisher.db().log().size()));

  clock.Advance(0.4);  // the agents wake up 0.4s after the commits
  ExecStats reader_cost;
  Must(repl.RunLogReader(&publisher, &reader_cost), "log reader");
  std::printf("Log reader: scanned %lld records, enqueued %lld changes "
              "(%.0f work units on the publisher)\n",
              static_cast<long long>(repl.metrics().records_scanned),
              static_cast<long long>(repl.metrics().changes_enqueued),
              reader_cost.local_cost);
  std::printf("Distribution database now holds %lld pending changes\n",
              static_cast<long long>(repl.PendingChanges()));

  ExecStats apply_cost;
  Must(repl.RunDistributionAgent(&subscriber, &apply_cost), "agent");
  std::printf("Agent applied %lld txns / %lld changes "
              "(%.0f work units on the subscriber)\n\n",
              static_cast<long long>(repl.metrics().txns_applied),
              static_cast<long long>(repl.metrics().changes_applied),
              apply_cost.local_cost);

  auto rows = subscriber.Execute("SELECT id, name, price FROM tire_parts "
                                 "ORDER BY id");
  Must(rows.status(), "query");
  std::printf("Subscriber contents (tires only, no type column):\n");
  for (const Row& row : rows->rows) {
    std::printf("  %lld | %s | %s\n",
                static_cast<long long>(row[0].AsInt()),
                row[1].AsString().c_str(), row[2].ToString().c_str());
  }
  std::printf("\nPropagation latency (commit to commit): %.2f s\n",
              repl.metrics().AvgLatency());

  // Updates that move rows across the article boundary.
  Must(publisher.ExecuteScript(
           "UPDATE part SET type = 'retired' WHERE id = 1"),
       "boundary update");
  Must(repl.RunOnce(nullptr, nullptr), "round");
  auto count = subscriber.Execute("SELECT COUNT(*) FROM tire_parts");
  Must(count.status(), "count");
  std::printf("After re-typing part 1 away from 'tire': %lld rows remain\n",
              static_cast<long long>(count->rows[0][0].AsInt()));
  std::printf("Publisher log after distribution (truncated): %lld records\n",
              static_cast<long long>(publisher.db().log().size()));
  return 0;
}
