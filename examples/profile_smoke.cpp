// Profiling smoke gate: EXPLAIN ANALYZE through a cache server on TPC-W
// queries must report nonzero per-operator actuals (including the backend
// round-trip for a remotely routed query), the round-trip must appear as a
// `remote_roundtrip` trace span under the query's root span, and the
// histogram/wait-stats DMVs must be live. Exits non-zero on any violated
// assertion, so scripts/check.sh uses it as the `profile` regression gate.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/profile_smoke

#include <cstdio>
#include <string>
#include <vector>

#include "common/trace.h"
#include "common/wait_stats.h"
#include "sim/testbed.h"

using namespace mtcache;

namespace {

void Must(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
    std::exit(1);
  }
}

void Fail(const char* what) {
  std::fprintf(stderr, "FAIL: %s\n", what);
  std::exit(1);
}

/// Runs the statement and returns the single string column as lines.
std::vector<std::string> PlanLines(Server* server, const std::string& sql) {
  auto result = server->Execute(sql);
  Must(result.status(), sql.c_str());
  std::vector<std::string> lines;
  for (const Row& row : result->rows) lines.push_back(row[0].AsString());
  return lines;
}

bool AnyLineContains(const std::vector<std::string>& lines,
                     const std::string& needle) {
  for (const std::string& line : lines) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

double Scalar(Server* server, const std::string& sql, const char* what) {
  auto result = server->Execute(sql);
  Must(result.status(), what);
  if (result->rows.empty() || result->rows[0].empty()) Fail(what);
  const Value& v = result->rows[0][0];
  if (v.is_null()) return 0;
  return v.type() == TypeId::kDouble ? v.AsDouble()
                                     : static_cast<double>(v.AsInt());
}

}  // namespace

int main() {
  // A small TPC-W testbed: item/author/orders/order_line are cached on the
  // web server, customer is not — so a customer query routes to the backend.
  sim::TestbedConfig config;
  config.tpcw.num_items = 100;
  config.tpcw.num_authors = 25;
  config.tpcw.num_customers = 60;
  config.tpcw.num_orders = 50;
  config.profile_samples = 2;
  sim::Testbed testbed(config);
  Must(testbed.Initialize(), "testbed init");
  Server* cache = testbed.cache(0);

  // 1. EXPLAIN ANALYZE on a locally served query (cached view over item):
  // per-operator actuals with a nonzero row count and a summary row.
  std::vector<std::string> local = PlanLines(
      cache, "EXPLAIN ANALYZE SELECT i_title, i_cost FROM item WHERE i_id = 7");
  if (!AnyLineContains(local, "actual_rows=1")) {
    Fail("local EXPLAIN ANALYZE reports no operator with actual_rows=1");
  }
  if (!AnyLineContains(local, "actual: 1 rows")) {
    Fail("local EXPLAIN ANALYZE summary missing actual row count");
  }

  // 2. EXPLAIN ANALYZE on a remotely routed query, with tracing on: the
  // plan must carry a RemoteQuery operator whose actuals moved, and the
  // backend hop must be recorded as a remote_roundtrip span chained (via
  // trace_id) to a root span from this statement.
  TraceRecorder& recorder = TraceRecorder::Global();
  recorder.Clear();
  recorder.set_enabled(true);
  std::vector<std::string> remote = PlanLines(
      cache,
      "EXPLAIN ANALYZE SELECT c_fname, c_lname FROM customer WHERE c_id = 5");
  recorder.set_enabled(false);
  if (!AnyLineContains(remote, "RemoteQuery")) {
    Fail("customer query did not route through RemoteQuery");
  }
  bool remote_actuals = false;
  for (const std::string& line : remote) {
    if (line.find("RemoteQuery") != std::string::npos &&
        line.find("actual_rows=1") != std::string::npos) {
      remote_actuals = true;
    }
  }
  if (!remote_actuals) Fail("RemoteQuery operator shows no actual rows");
  std::vector<TraceSpan> spans = recorder.Snapshot();
  uint64_t roundtrip_trace = 0;
  for (const TraceSpan& span : spans) {
    if (std::string(span.name) == "remote_roundtrip") {
      roundtrip_trace = span.trace_id;
      if (span.parent_id == 0) Fail("remote_roundtrip span has no parent");
    }
  }
  if (roundtrip_trace == 0) Fail("no remote_roundtrip span recorded");
  bool has_root = false;
  for (const TraceSpan& span : spans) {
    if (span.trace_id == roundtrip_trace && span.parent_id == 0) {
      has_root = true;
    }
  }
  if (!has_root) Fail("remote_roundtrip span's trace has no root span");

  // 3. SET STATISTICS PROFILE ON publishes full-precision operator actuals
  // into sys.dm_exec_query_profiles (timings in seconds, not the rendered
  // milliseconds, so sub-microsecond operators still assert nonzero).
  Must(cache
           ->Execute("SET STATISTICS PROFILE ON; "
                     "SELECT i_title FROM item WHERE i_id = 11; "
                     "SET STATISTICS PROFILE OFF")
           .status(),
       "profiled SELECT");
  if (Scalar(cache,
             "SELECT COUNT(*) FROM sys.dm_exec_query_profiles "
             "WHERE actual_rows > 0",
             "profile rows") <= 0) {
    Fail("dm_exec_query_profiles has no operators with actual rows");
  }
  double timed = Scalar(cache,
                        "SELECT SUM(open_seconds) "
                        "FROM sys.dm_exec_query_profiles",
                        "open timings") +
                 Scalar(cache,
                        "SELECT SUM(next_seconds) "
                        "FROM sys.dm_exec_query_profiles",
                        "next timings") +
                 Scalar(cache,
                        "SELECT SUM(close_seconds) "
                        "FROM sys.dm_exec_query_profiles",
                        "close timings");
  if (!(timed > 0)) Fail("dm_exec_query_profiles timings are all zero");

  // 4. Latency histograms: the rollup DMV must report ordered percentiles.
  double p50 = Scalar(cache,
                      "SELECT MAX(latency_p50) FROM sys.dm_exec_query_stats",
                      "p50");
  double p99 = Scalar(cache,
                      "SELECT MAX(latency_p99) FROM sys.dm_exec_query_stats",
                      "p99");
  if (!(p50 > 0)) Fail("dm_exec_query_stats latency_p50 is zero");
  if (p99 < p50) Fail("dm_exec_query_stats percentiles out of order");

  // 5. Wait accounting: the scans above took table latches.
  if (Scalar(cache,
             "SELECT acquisitions FROM sys.dm_os_wait_stats "
             "WHERE wait_type = 'TABLE_LATCH_SH'",
             "wait stats") <= 0) {
    Fail("dm_os_wait_stats shows no table latch acquisitions");
  }

  // 6. EXPLAIN on DML: the cache's customer table is a shadow, so the plan
  // must state the statement is forwarded to the backend.
  std::vector<std::string> update = PlanLines(
      cache, "EXPLAIN UPDATE customer SET c_fname = 'x' WHERE c_id = 5");
  if (!AnyLineContains(update, "forwarded to backend as:")) {
    Fail("EXPLAIN UPDATE on a shadow table does not show forwarding");
  }

  std::printf("profile smoke OK: EXPLAIN ANALYZE actuals, remote span, "
              "profiles DMV, percentiles, wait stats, DML EXPLAIN.\n");
  return 0;
}
