// M2 — micro-benchmark: end-to-end query execution through the engine
// (parse -> bind -> optimize(plan cache) -> execute).

#include <benchmark/benchmark.h>

#include "engine/server.h"

namespace mtcache {
namespace {

Server* SharedServer() {
  static Server* server = [] {
    auto* s = new Server(ServerOptions{"bench", "dbo", {}});
    Status st = s->ExecuteScript(
        "CREATE TABLE item (i_id INT PRIMARY KEY, i_subject VARCHAR(20), "
        "i_cost FLOAT); "
        "CREATE INDEX item_subject ON item (i_subject);");
    if (!st.ok()) std::abort();
    for (int i = 1; i <= 5000; ++i) {
      st = s->ExecuteScript("INSERT INTO item VALUES (" + std::to_string(i) +
                            ", 'sub" + std::to_string(i % 20) + "', " +
                            std::to_string(i * 0.5) + ")");
      if (!st.ok()) std::abort();
    }
    s->RecomputeStats();
    return s;
  }();
  return server;
}

void BM_PointLookupCachedPlan(benchmark::State& state) {
  Server* s = SharedServer();
  ParamMap params;
  int64_t i = 0;
  for (auto _ : state) {
    params["@id"] = Value::Int(i++ % 5000 + 1);
    ExecStats stats;
    auto r = s->Execute("SELECT i_cost FROM item WHERE i_id = @id", params,
                        &stats);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PointLookupCachedPlan);

void BM_IndexRangeQuery(benchmark::State& state) {
  Server* s = SharedServer();
  ParamMap params;
  for (auto _ : state) {
    params["@s"] = Value::String("sub7");
    ExecStats stats;
    auto r = s->Execute(
        "SELECT COUNT(*) FROM item WHERE i_subject = @s", params, &stats);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IndexRangeQuery);

void BM_AggregationScan(benchmark::State& state) {
  Server* s = SharedServer();
  for (auto _ : state) {
    auto r = s->Execute(
        "SELECT i_subject, COUNT(*), AVG(i_cost) FROM item GROUP BY "
        "i_subject");
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->rows.size());
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(BM_AggregationScan);

void BM_ParseOnly(benchmark::State& state) {
  const std::string sql =
      "SELECT TOP 50 i.i_id, a.a_lname, SUM(ol.ol_qty) AS total "
      "FROM order_line ol, item i, author a, "
      "(SELECT TOP 333 o_id FROM orders ORDER BY o_date DESC) recent "
      "WHERE ol.ol_o_id = recent.o_id AND i.i_id = ol.ol_i_id "
      "AND a.a_id = i.i_a_id AND i.i_subject = @subject "
      "GROUP BY i.i_id, a.a_lname ORDER BY total DESC";
  for (auto _ : state) {
    auto r = ParseSql(sql);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->get());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseOnly);

void BM_InsertDeleteRoundTrip(benchmark::State& state) {
  Server* s = SharedServer();
  int64_t id = 1000000;
  for (auto _ : state) {
    std::string istr = std::to_string(id++);
    auto ins = s->Execute("INSERT INTO item VALUES (" + istr +
                          ", 'tmp', 1.0)");
    if (!ins.ok()) std::abort();
    auto del = s->Execute("DELETE FROM item WHERE i_id = " + istr);
    if (!del.ok()) std::abort();
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_InsertDeleteRoundTrip);

}  // namespace
}  // namespace mtcache
