// E0 — supporting artifact: the measured per-interaction work profile that
// drives every other experiment. Each TPC-W interaction executes for real
// through the MTCache stack; the table shows where its work lands (cache
// server vs backend) and the replication work it causes. This is the §6.1.1
// "queries vary greatly in terms of cost" observation, quantified, and it
// explains the Figure 6 shapes: Browse-class work stays on the caches,
// Order-class work hits the backend.

#include "bench/bench_util.h"

using namespace mtcache;
using namespace mtcache::bench;

int main() {
  Banner("E0", "Measured per-interaction work profile (with MTCache)",
         "section 6.1.1; input to experiments E1-E6");

  sim::TestbedConfig config = PaperConfig();
  config.caching = true;
  config.num_web_servers = 1;
  config.profile_samples = 30;
  sim::Testbed testbed(config);
  Check(testbed.Initialize(), "init");
  const sim::InteractionProfile& profile = testbed.profile();

  std::printf("%-22s %-7s %12s %12s %12s %12s\n", "interaction", "class",
              "cache work", "backend", "repl(pub)", "repl(apply)");
  double class_cache[2] = {0, 0};
  double class_backend[2] = {0, 0};
  for (int t = 0; t < tpcw::kNumInteractions; ++t) {
    auto kind = static_cast<tpcw::Interaction>(t);
    double web = 0;
    double backend = 0;
    for (auto [w, b] : profile.samples[t]) {
      web += w;
      backend += b;
    }
    web /= profile.samples[t].size();
    backend /= profile.samples[t].size();
    bool browse = tpcw::IsBrowseClass(kind);
    class_cache[browse ? 0 : 1] += web;
    class_backend[browse ? 0 : 1] += backend;
    std::printf("%-22s %-7s %12.0f %12.0f %12.0f %12.0f\n",
                tpcw::InteractionName(kind), browse ? "Browse" : "Order", web,
                backend, profile.repl_publisher_cost[t],
                profile.repl_apply_cost[t]);
  }
  std::printf("\nClass averages (unweighted):\n");
  std::printf("  Browse: %.0f on cache, %.0f on backend  -> offloaded\n",
              class_cache[0] / 6, class_backend[0] / 6);
  std::printf("  Order:  %.0f on cache, %.0f on backend  -> backend-bound\n",
              class_cache[1] / 8, class_backend[1] / 8);
  std::printf(
      "\nShape check: Browse-class interactions run almost entirely on the "
      "cache server\n(remote work ~0); Order-class interactions push their "
      "updates to the backend and\ntrigger replication work on both tiers.\n");
  return 0;
}
