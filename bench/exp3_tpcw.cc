// E3 — fleet-scale TPC-W evaluation on the DES testbed: one backend server
// plus N mid-tier caches (replication running between them), TPC-W
// Browsing/Shopping/Ordering mixes driven by thousands of simulated
// closed-loop users, sweeping the cache count and the fraction of data
// cached. Reported per configuration: per-tier statement QPS, backend
// offload %, interaction latency percentiles, and the commit-to-apply
// replication lag distribution (the same LogHistogram that serves
// sys.dm_repl_lag_histogram).
//
// Methodology (DESIGN.md §10): each fraction's fleet is built for real —
// cached views with PK-range predicates, subscriptions, dynamic plans — and
// profiled by executing every interaction type repeatedly through a cache.
// The measured service demands (cache work, backend work, statement split,
// replication work) are then replayed in the deterministic discrete-event
// simulation at fleet scale. The paper's §6 experiments used the same
// pattern with physical machines; the DES substitutes simulated ones so the
// sweep reaches 32 caches and 10k+ users.
//
// `--smoke` runs a reduced sweep (seconds, CI-sized) and asserts the shape
// invariants: offload non-decreasing in cached fraction, and aggregate QPS
// at 4 caches >= 1 cache for the Browsing mix.
// `--out FILE` writes the machine-readable artifact (BENCH_exp3_tpcw.json).

#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sim/fleet.h"

using namespace mtcache;
using namespace mtcache::bench;

namespace {

struct SweepSpec {
  std::vector<double> fractions;
  std::vector<int> cache_counts;
  int users_per_cache = 0;
  double warmup = 0;
  double measure = 0;
  int profile_samples = 0;
};

SweepSpec FullSpec() {
  SweepSpec spec;
  spec.fractions = {0.25, 0.5, 1.0};
  spec.cache_counts = {1, 2, 4, 8, 16, 32};
  spec.users_per_cache = 350;  // 32 caches -> 11,200 simulated users
  spec.warmup = 10;
  spec.measure = 120;
  spec.profile_samples = 20;
  return spec;
}

SweepSpec SmokeSpec() {
  SweepSpec spec;
  spec.fractions = {0.25, 1.0};  // wide gap => unambiguous monotonicity
  spec.cache_counts = {1, 4};
  spec.users_per_cache = 40;
  spec.warmup = 3;
  spec.measure = 15;
  spec.profile_samples = 6;
  return spec;
}

sim::FleetConfig MakeFleetConfig(double fraction, const SweepSpec& spec) {
  sim::FleetConfig config;
  config.tpcw = PaperConfig().tpcw;
  config.num_caches = 2;  // real caches: one profiled, one proving fan-out
  config.cached_fraction = fraction;
  config.profile_samples = spec.profile_samples;
  config.seed = 42;
  // Machine model: identical 2-core boxes for the backend and every cache,
  // matching the paper's testbed of identical machines — the whole point is
  // that the single backend is the scarce resource a growing cache fleet
  // must offload. unit_rate scales engine cost units to seconds; 1e6
  // units/sec puts a point lookup at tens of microseconds, ~10x the paper's
  // 733 MHz PIII.
  config.backend_cpus = 2;
  config.cache_cpus = 2;
  config.unit_rate = 1e6;
  config.app_work = 800;  // non-database page generation per interaction
  config.think_time = 1.0;
  config.repl_poll_interval = 0.75;
  return config;
}

void ShapeCheck(bool ok, const std::string& what) {
  if (!ok) {
    std::fprintf(stderr, "SHAPE CHECK FAILED: %s\n", what.c_str());
    std::exit(1);
  }
  std::printf("shape ok: %s\n", what.c_str());
}

/// sys.dm_repl_lag_histogram from one cache server, as a JSON row array.
/// Simulate() merges every run's simulated lag into the shared pipeline
/// metrics, so after the sweep this DMV holds the whole experiment's
/// commit-to-apply distribution — queried through the ordinary SQL path.
std::string LagDmvJson(Server* cache) {
  QueryResult r =
      CheckOk(cache->Execute("SELECT * FROM sys.dm_repl_lag_histogram"),
              "lag DMV");
  std::string out = "[";
  for (size_t i = 0; i < r.rows.size(); ++i) {
    if (i > 0) out += ", ";
    out += "{";
    for (int c = 0; c < r.schema.num_columns(); ++c) {
      if (c > 0) out += ", ";
      out += "\"" + JsonEscape(r.schema.column(c).name) +
             "\": " + ValueToJson(r.rows[i][c]);
    }
    out += "}";
  }
  out += "]";
  return out;
}

double AggregateQps(const sim::FleetResult& r) {
  return r.cache_qps + r.backend_qps;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[i + 1];
    }
  }
  const SweepSpec spec = smoke ? SmokeSpec() : FullSpec();

  Banner("E3", "Fleet-scale TPC-W: caches x cached-fraction x mix sweep",
         "section 6.2 methodology at fleet scale (DES testbed)");
  std::printf("%-9s %6s %9s %7s %9s %10s %11s %9s %8s %8s %9s\n", "Mix",
              "Caches", "Fraction", "Users", "WIPS", "CacheQPS", "BackendQPS",
              "Offload%", "p95(s)", "BkndCPU", "LagP95(s)");

  const tpcw::WorkloadMix kMixes[] = {tpcw::WorkloadMix::kBrowsing,
                                      tpcw::WorkloadMix::kShopping,
                                      tpcw::WorkloadMix::kOrdering};
  // (mix, caches, fraction) -> result, for the shape checks below.
  std::map<std::string, sim::FleetResult> by_key;
  auto key = [](tpcw::WorkloadMix mix, int caches, double fraction) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%s/%d/%.2f", tpcw::MixName(mix), caches,
                  fraction);
    return std::string(buf);
  };

  std::string json_results;
  std::string lag_dmv = "[]";
  int64_t total_interactions = 0;
  int max_users = 0;

  for (size_t fi = 0; fi < spec.fractions.size(); ++fi) {
    double fraction = spec.fractions[fi];
    sim::Fleet fleet(MakeFleetConfig(fraction, spec));
    Check(fleet.Initialize(), "fleet init");
    for (size_t ci = 0; ci < spec.cache_counts.size(); ++ci) {
      int caches = spec.cache_counts[ci];
      for (size_t mi = 0; mi < 3; ++mi) {
        tpcw::WorkloadMix mix = kMixes[mi];
        sim::FleetLoad load;
        load.mix = mix;
        load.num_caches = caches;
        load.users = caches * spec.users_per_cache;
        load.warmup = spec.warmup;
        load.measure = spec.measure;
        load.seed = 1000 + 100 * fi + 10 * ci + mi;
        sim::FleetResult r = CheckOk(fleet.Simulate(load), "fleet simulate");
        std::printf(
            "%-9s %6d %9.2f %7d %9.1f %10.1f %11.1f %8.2f%% %8.3f %7.0f%% "
            "%9.3f\n",
            r.mix.c_str(), r.num_caches, r.cached_fraction, r.users, r.wips,
            r.cache_qps, r.backend_qps, r.offload_pct, r.latency_p95,
            r.backend_util * 100, r.lag_p95);
        by_key[key(mix, caches, fraction)] = r;
        total_interactions += r.interactions;
        if (r.users > max_users) max_users = r.users;
        if (!json_results.empty()) json_results += ",\n    ";
        json_results += r.ToJson();
      }
    }
    // The lag DMV accumulates across every Simulate() of this fleet; snapshot
    // the last fleet's (any cache serves the shared pipeline metrics).
    lag_dmv = LagDmvJson(fleet.cache(0));
  }

  std::printf("\nTotal: %lld simulated interactions, up to %d concurrent "
              "users.\n",
              static_cast<long long>(total_interactions), max_users);

  // Shape invariants — the paper's relative results, not absolute numbers.
  const double kOffloadTolerance = 0.5;  // percentage points
  const int few = spec.cache_counts.front();
  const int many = spec.cache_counts.back();
  const double fmin = spec.fractions.front();
  const double fmax = spec.fractions.back();
  const int mid_caches = spec.cache_counts[spec.cache_counts.size() / 2];

  // 1. Backend offload grows (never shrinks) with the fraction of data
  //    cached, for every mix, at a mid-sweep cache count.
  for (tpcw::WorkloadMix mix : kMixes) {
    for (size_t i = 0; i + 1 < spec.fractions.size(); ++i) {
      const sim::FleetResult& lo =
          by_key[key(mix, mid_caches, spec.fractions[i])];
      const sim::FleetResult& hi =
          by_key[key(mix, mid_caches, spec.fractions[i + 1])];
      char what[160];
      std::snprintf(what, sizeof(what),
                    "%s offload non-decreasing in fraction (%.2f: %.2f%% -> "
                    "%.2f: %.2f%%)",
                    tpcw::MixName(mix), spec.fractions[i], lo.offload_pct,
                    spec.fractions[i + 1], hi.offload_pct);
      ShapeCheck(hi.offload_pct >= lo.offload_pct - kOffloadTolerance, what);
    }
  }
  // 2. Aggregate statement throughput at many caches >= few caches for the
  //    read-heavy Browsing mix (fully cached).
  {
    const sim::FleetResult& one = by_key[key(kMixes[0], few, fmax)];
    const sim::FleetResult& four = by_key[key(kMixes[0], many, fmax)];
    char what[160];
    std::snprintf(what, sizeof(what),
                  "Browsing aggregate QPS grows with caches (%d: %.1f -> %d: "
                  "%.1f)",
                  few, AggregateQps(one), many, AggregateQps(four));
    ShapeCheck(AggregateQps(four) >= AggregateQps(one), what);
  }
  // 3. Ordering (write-heavy) gains least from adding caches. Only
  //    meaningful in the full sweep: the gain gap appears when the shared
  //    backend approaches saturation at high cache counts, and the smoke
  //    sweep is deliberately too small to load it.
  if (!smoke) {
    double gain[3];
    for (int mi = 0; mi < 3; ++mi) {
      const sim::FleetResult& one = by_key[key(kMixes[mi], few, fmax)];
      const sim::FleetResult& top = by_key[key(kMixes[mi], many, fmax)];
      gain[mi] = one.wips > 0 ? top.wips / one.wips : 0;
    }
    char what[160];
    std::snprintf(what, sizeof(what),
                  "Ordering smallest scale-out gain (B %.2fx, S %.2fx, O "
                  "%.2fx)",
                  gain[0], gain[1], gain[2]);
    ShapeCheck(gain[2] <= gain[0] && gain[2] <= gain[1], what);
  }
  // 4. Full runs must hit the fleet-scale floor the experiment exists for.
  if (!smoke) {
    ShapeCheck(max_users >= 10000, "at least 10k simulated users at top");
    const sim::FleetResult& top = by_key[key(kMixes[0], many, fmax)];
    char what[96];
    std::snprintf(what, sizeof(what),
                  "top Browsing config >= 1M interactions (got %lld)",
                  static_cast<long long>(top.interactions));
    ShapeCheck(top.interactions >= 1000000, what);
  }
  // Offload at low fraction is strictly less than at full caching for
  // Browsing — the fraction dial demonstrably routes work to the backend.
  {
    const sim::FleetResult& lo = by_key[key(kMixes[0], few, fmin)];
    const sim::FleetResult& hi = by_key[key(kMixes[0], few, fmax)];
    char what[160];
    std::snprintf(
        what, sizeof(what),
        "Browsing offload rises with fraction (%.2f: %.2f%% < %.2f: %.2f%%)",
        fmin, lo.offload_pct, fmax, hi.offload_pct);
    ShapeCheck(lo.offload_pct < hi.offload_pct, what);
  }

  std::string fractions_json, counts_json;
  for (double f : spec.fractions) {
    if (!fractions_json.empty()) fractions_json += ", ";
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.2f", f);
    fractions_json += buf;
  }
  for (int c : spec.cache_counts) {
    if (!counts_json.empty()) counts_json += ", ";
    counts_json += std::to_string(c);
  }

  std::string artifact =
      "{\n  \"experiment\": \"exp3_tpcw\",\n  \"smoke\": " +
      std::string(smoke ? "true" : "false") +
      ",\n  \"note\": \"Fleet-scale TPC-W on the DES testbed: real "
      "backend+caches profiled per cached-fraction, measured service demands "
      "replayed for thousands of closed-loop users. Offload% = share of "
      "database work kept off the backend; lag = commit-to-apply replication "
      "delay (sys.dm_repl_lag_histogram).\",\n"
      "  \"machine_model\": {\"backend_cpus\": 2, \"cache_cpus\": 2, "
      "\"unit_rate\": 1000000, \"app_work\": 800, \"think_time\": 1.0},\n"
      "  \"fractions\": [" + fractions_json + "],\n"
      "  \"cache_counts\": [" + counts_json + "],\n"
      "  \"max_users\": " + std::to_string(max_users) + ",\n"
      "  \"total_interactions\": " + std::to_string(total_interactions) +
      ",\n  \"results\": [\n    " + json_results + "\n  ],\n"
      "  \"dm_repl_lag_histogram\": " + lag_dmv + "\n}\n";
  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "FATAL: cannot write %s\n", out_path.c_str());
      return 1;
    }
    std::fwrite(artifact.data(), 1, artifact.size(), f);
    std::fclose(f);
    std::printf("artifact: wrote %s\n", out_path.c_str());
  }
  std::printf("JSON: {\"experiment\": \"exp3_tpcw\", \"smoke\": %s, "
              "\"max_users\": %d, \"total_interactions\": %lld, "
              "\"runs\": %zu}\n",
              smoke ? "true" : "false", max_users,
              static_cast<long long>(total_interactions), by_key.size());
  return 0;
}
