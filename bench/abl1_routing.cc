// A1 — ablation: MTCache's fully cost-based local/remote routing vs a
// DBCache-style heuristic that always uses a matching cached view. The paper
// motivates cost-based routing with exactly this case: "if there is an index
// on the backend that greatly reduces the cost of the query, it will be
// executed on the backend database" (§1).

#include "bench/bench_util.h"
#include "mtcache/mtcache.h"

using namespace mtcache;
using namespace mtcache::bench;

namespace {

struct Scenario {
  SimClock clock;
  LinkedServerRegistry links;
  std::unique_ptr<Server> backend;
  std::unique_ptr<Server> cache;
  std::unique_ptr<ReplicationSystem> repl;
  std::unique_ptr<MTCache> mtcache;
};

void Build(Scenario* s) {
  s->backend = std::make_unique<Server>(ServerOptions{"backend", "dbo", {}},
                                        &s->clock, &s->links);
  s->cache = std::make_unique<Server>(ServerOptions{"cache", "dbo", {}},
                                      &s->clock, &s->links);
  s->repl = std::make_unique<ReplicationSystem>(&s->clock);
  Check(s->backend->ExecuteScript(
            "CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(30), "
            "caddress VARCHAR(60)); "
            "CREATE TABLE orders (okey INT PRIMARY KEY, ckey INT, "
            "total FLOAT); "
            "CREATE INDEX orders_ckey ON orders (ckey);"),
        "schema");
  for (int i = 1; i <= 2000; ++i) {
    Check(s->backend->ExecuteScript(
              "INSERT INTO customer VALUES (" + std::to_string(i) + ", 'n" +
              std::to_string(i) + "', 'a" + std::to_string(i) + "')"),
          "load");
  }
  for (int i = 1; i <= 4000; ++i) {
    Check(s->backend->ExecuteScript(
              "INSERT INTO orders VALUES (" + std::to_string(i) + ", " +
              std::to_string(i % 2000 + 1) + ", " + std::to_string(i * 1.0) +
              ")"),
          "load");
  }
  s->backend->RecomputeStats();
  s->mtcache = CheckOk(MTCache::Setup(s->cache.get(), s->backend.get(),
                                      s->repl.get()),
                       "mtcache setup");
  // The customer view mirrors the backend's access paths; the orders view
  // deliberately lacks the ckey index the backend has.
  Check(s->mtcache->CreateCachedView(
            "cust1000",
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 1000"),
        "view cust1000");
  Check(s->mtcache->CreateCachedView(
            "orders_all", "SELECT okey, ckey, total FROM orders"),
        "view orders_all");
}

}  // namespace

int main() {
  Banner("A1", "Cost-based routing vs always-use-the-cache heuristic",
         "section 1 discussion of DBCache; design ablation from DESIGN.md");

  struct Query {
    const char* label;
    const char* sql;
  };
  const Query kQueries[] = {
      {"pk lookup inside view", "SELECT cname FROM customer WHERE cid = 123"},
      {"range inside view",
       "SELECT cname FROM customer WHERE cid >= 100 AND cid <= 200"},
      {"backend-index favoured", "SELECT total FROM orders WHERE ckey = 777"},
      {"full aggregation", "SELECT COUNT(*), SUM(total) FROM orders"},
  };
  const int kReps = 50;

  std::printf("%-26s | %13s %13s | %13s %13s\n", "", "cost-based", "",
              "always-cache", "");
  std::printf("%-26s | %13s %13s | %13s %13s\n", "query", "work(total)",
              "remote?", "work(total)", "remote?");

  double totals[2] = {0, 0};
  for (const Query& q : kQueries) {
    double work[2];
    bool remote[2];
    for (int mode = 0; mode < 2; ++mode) {
      Scenario s;
      Build(&s);
      OptimizerOptions opts = s.cache->optimizer_options();
      opts.cost_based_routing = mode == 0;
      s.cache->set_optimizer_options(opts);
      OptimizeResult plan = CheckOk(s.cache->Explain(q.sql), "explain");
      remote[mode] = plan.uses_remote;
      ExecStats stats;
      for (int r = 0; r < kReps; ++r) {
        CheckOk(s.cache->Execute(q.sql, {}, &stats), "execute");
      }
      work[mode] = (stats.local_cost + stats.remote_cost) / kReps;
      totals[mode] += work[mode];
    }
    std::printf("%-26s | %13.0f %13s | %13.0f %13s\n", q.label, work[0],
                remote[0] ? "yes" : "no", work[1], remote[1] ? "yes" : "no");
  }
  std::printf("%-26s | %13.0f %13s | %13.0f\n", "TOTAL per call", totals[0],
              "", totals[1]);
  std::printf("\nShape check: cost-based routing ships the backend-index "
              "query and is never\nslower overall than the heuristic "
              "(total %.0f vs %.0f work units).\n",
              totals[0], totals[1]);
  return 0;
}
