// E2/E3 — Figures 6(a) and 6(b): measured throughput (WIPS) and backend CPU
// load as the number of web/cache servers grows from 1 to 5, for the three
// TPC-W workloads with MTCache enabled on every web server.
//
// Paper shapes: WIPS grows linearly with servers for Browsing and Shopping
// (backend coasting: 7.5% / 15.9% at five servers); Ordering barely grows
// and drives the backend to 55.4%.

#include "bench/bench_util.h"

using namespace mtcache;
using namespace mtcache::bench;

int main() {
  Banner("E2+E3", "Scale-out with MTCache servers (Figure 6a: WIPS, 6b: backend CPU)",
         "Figure 6(a)/6(b); five-server endpoints 129/199/271 WIPS at "
         "7.5%/15.9%/55.4% backend CPU");

  const int kMaxServers = 5;
  double wips[3][kMaxServers + 1] = {};
  double backend[3][kMaxServers + 1] = {};

  int mi = 0;
  for (auto mix : {tpcw::WorkloadMix::kBrowsing, tpcw::WorkloadMix::kShopping,
                   tpcw::WorkloadMix::kOrdering}) {
    for (int n = 1; n <= kMaxServers; ++n) {
      sim::TestbedConfig config = PaperConfig();
      config.mix = mix;
      config.caching = true;
      config.num_web_servers = n;
      sim::Testbed testbed(config);
      Check(testbed.Initialize(), "testbed init");
      sim::TestbedResult r =
          CheckOk(testbed.FindMaxThroughput(15, 80), "find max");
      wips[mi][n] = r.wips;
      backend[mi][n] = r.backend_util * 100;
    }
    ++mi;
  }

  std::printf("\nFigure 6(a): measured throughput (WIPS)\n");
  std::printf("%-18s", "web/cache servers");
  for (int n = 1; n <= kMaxServers; ++n) std::printf("%10d", n);
  std::printf("\n");
  const char* names[3] = {"Browsing", "Shopping", "Ordering"};
  for (int m = 0; m < 3; ++m) {
    std::printf("%-18s", names[m]);
    for (int n = 1; n <= kMaxServers; ++n) std::printf("%10.1f", wips[m][n]);
    std::printf("\n");
  }

  std::printf("\nFigure 6(b): backend CPU load (%%)\n");
  std::printf("%-18s", "web/cache servers");
  for (int n = 1; n <= kMaxServers; ++n) std::printf("%10d", n);
  std::printf("\n");
  for (int m = 0; m < 3; ++m) {
    std::printf("%-18s", names[m]);
    for (int n = 1; n <= kMaxServers; ++n) {
      std::printf("%9.1f%%", backend[m][n]);
    }
    std::printf("\n");
  }

  std::printf(
      "\nShape check: near-linear WIPS growth for Browsing/Shopping with a "
      "coasting backend;\nOrdering flat with the backend load climbing "
      "steeply (paper: 7.5%% / 15.9%% / 55.4%% at n=5).\n");
  return 0;
}
