// A4 — ablation: equi-depth histograms vs uniform min/max interpolation for
// range-selectivity estimation. Skewed data makes the uniform assumption
// misestimate badly, which cascades into bad routing/access-path decisions;
// the histogram keeps the q-error near 1.

#include <algorithm>
#include <cmath>

#include "bench/bench_util.h"
#include "engine/server.h"

using namespace mtcache;
using namespace mtcache::bench;

int main() {
  Banner("A4", "Histogram vs uniform range-selectivity estimation",
         "engine-quality ablation (shadowed statistics feed the cache's "
         "optimizer, section 3/5)");

  Server server(ServerOptions{"s", "dbo", {}});
  Check(server.ExecuteScript(
            "CREATE TABLE skewed (id INT PRIMARY KEY, v INT)"),
        "schema");
  // Zipf-flavored skew: value i^2 (dense low end, sparse high end).
  const int kRows = 4000;
  for (int i = 1; i <= kRows; ++i) {
    Check(server.ExecuteScript("INSERT INTO skewed VALUES (" +
                               std::to_string(i) + ", " +
                               std::to_string(int64_t(i) * i) + ")"),
          "load");
  }
  server.RecomputeStats();
  TableDef* def = server.db().catalog().GetTable("skewed");
  ColumnStats with_hist = def->stats.columns[1];
  ColumnStats uniform = with_hist;
  uniform.hist_bounds.clear();

  std::printf("%-18s %10s %12s %12s %10s %10s\n", "predicate", "actual",
              "histogram", "uniform", "q-err(h)", "q-err(u)");
  double max_qerr_hist = 1;
  double max_qerr_uni = 1;
  for (double frac : {0.05, 0.1, 0.25, 0.5, 0.75, 0.9}) {
    // v <= (frac * kRows)^2 selects ~frac of the rows.
    double bound = (frac * kRows) * (frac * kRows);
    auto actual_rows = server.Execute(
        "SELECT COUNT(*) FROM skewed WHERE v <= " + std::to_string(bound));
    double actual = CheckOk(std::move(actual_rows), "count")
                        .rows[0][0]
                        .AsInt();
    double est_hist = with_hist.RangeLeSelectivity(bound) * kRows;
    double est_uni = uniform.RangeLeSelectivity(bound) * kRows;
    auto qerr = [&](double est) {
      double a = std::max(actual, 1.0);
      double e = std::max(est, 1.0);
      return std::max(a / e, e / a);
    };
    max_qerr_hist = std::max(max_qerr_hist, qerr(est_hist));
    max_qerr_uni = std::max(max_qerr_uni, qerr(est_uni));
    std::printf("v <= %-12.0f %10.0f %12.0f %12.0f %10.2f %10.2f\n", bound,
                actual, est_hist, est_uni, qerr(est_hist), qerr(est_uni));
  }
  std::printf("\nMax q-error: histogram %.2f vs uniform %.2f\n", max_qerr_hist,
              max_qerr_uni);
  std::printf("Shape check: histogram q-error stays near 1 across the whole "
              "range; the uniform\nmodel misestimates the skewed low end by "
              "an order of magnitude.\n");
  return 0;
}
