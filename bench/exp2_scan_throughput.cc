// E2-scan — single-node scan throughput over a selectivity × table-size
// grid. MTCache's premise is that a cache hit runs at local memory speed
// (§6.2); this harness measures what "local memory speed" actually is for
// the executor: a filtered scan over an unindexed column, repeated from a
// warm plan cache, so the per-query cost is pure executor work (snapshot
// acquisition, predicate evaluation, row materialization).
//
// The workload is SELECT id, a FROM scan_t WHERE a < K with K chosen for
// 1% / 10% / 100% selectivity. Rows carry a ~96-byte pad column so row-copy
// costs are visible. Single-thread legs cover the full grid; an 8-thread
// closed loop (no think time) runs the most selective point to confirm
// concurrent scans of one table do not regress.
//
// `--smoke` shrinks the grid for CI. Output ends with one JSON line,
// committed before/after as BENCH_exp2_scan.json.
//
// Single-CPU box caveat: run with the build idle; concurrent compiles
// easily halve these numbers.

#include <chrono>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"

using namespace mtcache;
using namespace mtcache::bench;

namespace {

constexpr int kValueDomain = 10000;  // `a` is uniform over [0, kValueDomain)

// Loads scan_t with `rows` rows through the storage layer directly (the
// SQL INSERT path would spend the whole run parsing).
void LoadTable(Server* server, int64_t rows) {
  Check(server->ExecuteScript("CREATE TABLE scan_t (id INT PRIMARY KEY, "
                              "a INT, pad VARCHAR(100))"),
        "create scan_t");
  StoredTable* table = server->db().GetStoredTable("scan_t");
  const std::string pad(96, 'x');
  Random rng(0xE25CA9);
  auto txn = server->db().txn_manager().Begin();
  for (int64_t i = 0; i < rows; ++i) {
    Row row = {Value::Int(i), Value::Int(rng.Uniform(0, kValueDomain - 1)),
               Value::String(pad)};
    Check(table->Insert(row, txn.get()).status(), "load scan_t");
  }
  server->db().txn_manager().Commit(txn.get(), 0.0);
  server->RecomputeStats();
}

struct Measurement {
  double qps = 0;
  double scanned_rows_per_sec = 0;  // table rows visited per second
  size_t result_rows = 0;
};

// Runs `sql` repeatedly (warm plan cache) until `min_seconds` of wall clock
// or `min_iters` iterations, whichever is later.
Measurement MeasureQps(Server* server, const std::string& sql,
                       int64_t table_rows, double min_seconds, int min_iters) {
  Measurement m;
  QueryResult warm = CheckOk(server->Execute(sql), "warmup query");
  m.result_rows = warm.rows.size();
  int iters = 0;
  auto start = std::chrono::steady_clock::now();
  double elapsed = 0;
  while (iters < min_iters || elapsed < min_seconds) {
    QueryResult r = CheckOk(server->Execute(sql), "measured query");
    if (r.rows.size() != m.result_rows) {
      std::fprintf(stderr, "FATAL: result-size flip %zu -> %zu\n",
                   m.result_rows, r.rows.size());
      std::exit(1);
    }
    ++iters;
    elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                            start)
                  .count();
  }
  m.qps = iters / elapsed;
  m.scanned_rows_per_sec = m.qps * static_cast<double>(table_rows);
  return m;
}

// Closed-loop variant of MeasureQps on `n_threads` concurrent sessions.
double MeasureQpsThreaded(Server* server, const std::string& sql,
                          int n_threads, int ops_per_thread) {
  Check(server->Execute(sql).status(), "threaded warmup");
  auto start = std::chrono::steady_clock::now();
  ThreadedLoop(n_threads, [&](int /*thread_index*/, Random& /*rng*/) {
    for (int i = 0; i < ops_per_thread; ++i) {
      Check(server->Execute(sql).status(), "threaded query");
    }
  });
  double elapsed = std::chrono::duration<double>(
                       std::chrono::steady_clock::now() - start)
                       .count();
  return static_cast<double>(n_threads) * ops_per_thread / elapsed;
}

std::string ScanSql(double selectivity) {
  int64_t threshold =
      static_cast<int64_t>(selectivity * static_cast<double>(kValueDomain));
  return "SELECT id, a FROM scan_t WHERE a < " + std::to_string(threshold);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  Banner("E2-scan", "Filtered-scan throughput (selectivity x table size)",
         "local-execution premise of §6.2; executor scan path");

  std::vector<int64_t> sizes =
      smoke ? std::vector<int64_t>{2000} : std::vector<int64_t>{10000, 100000};
  const std::vector<double> selectivities = {0.01, 0.10, 1.00};
  const double min_seconds = smoke ? 0.05 : 0.5;
  const int min_iters = smoke ? 3 : 10;

  std::printf("%-10s %6s %8s %12s %16s %12s\n", "Rows", "Sel%", "Threads",
              "QPS", "ScanRows/s", "ResultRows");
  std::string json_results;
  auto append_json = [&](int64_t rows, double sel, int threads, double qps,
                         double scan_rps, size_t result_rows) {
    char buf[224];
    std::snprintf(buf, sizeof(buf),
                  "{\"rows\": %lld, \"selectivity\": %.2f, \"threads\": %d, "
                  "\"qps\": %.2f, \"scanned_rows_per_sec\": %.0f, "
                  "\"result_rows\": %zu}",
                  static_cast<long long>(rows), sel, threads, qps, scan_rps,
                  result_rows);
    if (!json_results.empty()) json_results += ", ";
    json_results += buf;
  };

  for (int64_t rows : sizes) {
    SimClock clock;
    Server server(ServerOptions{"scanbench", "dbo", {}}, &clock);
    LoadTable(&server, rows);
    for (double sel : selectivities) {
      Measurement m = MeasureQps(&server, ScanSql(sel), rows, min_seconds,
                                 min_iters);
      std::printf("%-10lld %6.0f %8d %12.1f %16.0f %12zu\n",
                  static_cast<long long>(rows), sel * 100, 1, m.qps,
                  m.scanned_rows_per_sec, m.result_rows);
      append_json(rows, sel, 1, m.qps, m.scanned_rows_per_sec, m.result_rows);
    }
    // Threaded leg on the most selective point of the largest table: the
    // snapshot path must not serialize concurrent readers.
    if (rows == sizes.back()) {
      const int n_threads = smoke ? 2 : 8;
      const int ops = smoke ? 5 : 40;
      double qps = MeasureQpsThreaded(&server, ScanSql(0.01), n_threads, ops);
      std::printf("%-10lld %6.0f %8d %12.1f %16.0f %12s\n",
                  static_cast<long long>(rows), 1.0, n_threads, qps,
                  qps * static_cast<double>(rows), "-");
      append_json(rows, 0.01, n_threads, qps,
                  qps * static_cast<double>(rows), 0);
    }
  }

  std::printf("\nShape check: QPS falls with table size; for a fixed size, "
              "more selective scans should be cheaper once the executor "
              "stops materializing non-qualifying rows.\n");
  std::printf("JSON: {\"experiment\": \"exp2_scan_throughput\", "
              "\"smoke\": %s, \"pad_bytes\": 96, \"results\": [%s]}\n",
              smoke ? "true" : "false", json_results.c_str());
  return 0;
}
