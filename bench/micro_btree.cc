// M1 — micro-benchmark: the storage engine's B+-tree.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "storage/bptree.h"

namespace mtcache {
namespace {

void BM_BtreeInsertSequential(benchmark::State& state) {
  for (auto _ : state) {
    BPlusTree tree;
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert({Value::Int(i)}, i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BtreeInsertSequential)->Arg(1000)->Arg(10000);

void BM_BtreeInsertRandom(benchmark::State& state) {
  for (auto _ : state) {
    BPlusTree tree;
    Random rng(42);
    for (int64_t i = 0; i < state.range(0); ++i) {
      tree.Insert({Value::Int(rng.Uniform(0, 1 << 30))}, i);
    }
    benchmark::DoNotOptimize(tree.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_BtreeInsertRandom)->Arg(1000)->Arg(10000);

void BM_BtreePointSeek(benchmark::State& state) {
  BPlusTree tree;
  const int64_t n = state.range(0);
  for (int64_t i = 0; i < n; ++i) tree.Insert({Value::Int(i)}, i);
  Random rng(7);
  for (auto _ : state) {
    auto it = tree.SeekGe({Value::Int(rng.Uniform(0, n - 1))});
    benchmark::DoNotOptimize(it.Valid());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BtreePointSeek)->Arg(10000)->Arg(100000);

void BM_BtreeRangeScan100(benchmark::State& state) {
  BPlusTree tree;
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; ++i) tree.Insert({Value::Int(i)}, i);
  Random rng(9);
  for (auto _ : state) {
    int64_t start = rng.Uniform(0, n - 101);
    int64_t count = 0;
    for (auto it = tree.SeekGe({Value::Int(start)});
         it.Valid() && count < 100; it.Next()) {
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_BtreeRangeScan100);

}  // namespace
}  // namespace mtcache
