#ifndef MTCACHE_BENCH_BENCH_UTIL_H_
#define MTCACHE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>

#include "sim/testbed.h"

namespace mtcache {
namespace bench {

inline void Banner(const char* id, const char* title, const char* paper) {
  std::printf("=====================================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("Paper reference: %s\n", paper);
  std::printf("=====================================================================\n");
}

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL during %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(StatusOr<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL during %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result.ConsumeValue();
}

/// The standard experiment scale (laptop-sized stand-in for the paper's
/// 10,000-item / 10,000-EB database; DESIGN.md documents the substitution).
inline sim::TestbedConfig PaperConfig() {
  sim::TestbedConfig config;
  config.tpcw.num_items = 1000;
  config.tpcw.num_authors = 250;
  config.tpcw.num_customers = 2880;
  config.tpcw.num_orders = 2590;
  config.tpcw.best_seller_window = 333;
  config.profile_samples = 20;
  return config;
}

}  // namespace bench
}  // namespace mtcache

#endif  // MTCACHE_BENCH_BENCH_UTIL_H_
