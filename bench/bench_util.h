#ifndef MTCACHE_BENCH_BENCH_UTIL_H_
#define MTCACHE_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "common/trace.h"
#include "sim/testbed.h"

namespace mtcache {
namespace bench {

inline void Banner(const char* id, const char* title, const char* paper) {
  std::printf("=====================================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("Paper reference: %s\n", paper);
  std::printf("=====================================================================\n");
}

inline void Check(const Status& status, const char* what) {
  if (!status.ok()) {
    std::fprintf(stderr, "FATAL during %s: %s\n", what,
                 status.ToString().c_str());
    std::exit(1);
  }
}

template <typename T>
T CheckOk(StatusOr<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "FATAL during %s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return result.ConsumeValue();
}

inline std::string JsonEscape(const std::string& s) {
  std::string out;
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

inline std::string ValueToJson(const Value& v) {
  if (v.is_null()) return "null";
  switch (v.type()) {
    case TypeId::kBool:
      return v.AsBool() ? "true" : "false";
    case TypeId::kString:
      return "\"" + JsonEscape(v.AsString()) + "\"";
    default:
      return v.ToSqlLiteral();  // ints and round-trip-exact doubles
  }
}

/// One server's full DMV state as a JSON object — one key per sys.dm_* view,
/// each an array of row objects keyed by column name. Experiment harnesses
/// append this to their output so a run's internal counters (plan cache,
/// routing decisions, replication pipeline) are machine-checkable after the
/// fact. Reading the DMVs goes through the ordinary SQL path, so the
/// snapshot queries themselves appear in later snapshots' counters.
inline std::string DmvSnapshotJson(Server* server) {
  std::string out = "{";
  bool first_dmv = true;
  for (const std::string& name : server->dmvs().Names()) {
    QueryResult r = CheckOk(server->Execute("SELECT * FROM sys." + name),
                            "DMV snapshot");
    if (!first_dmv) out += ", ";
    first_dmv = false;
    // DMV and column names are escaped like any other string: they come from
    // catalog metadata today, but a name with a quote or backslash must not
    // be able to corrupt the artifact.
    out += "\"" + JsonEscape(name) + "\": [";
    for (size_t i = 0; i < r.rows.size(); ++i) {
      if (i > 0) out += ", ";
      out += "{";
      for (int c = 0; c < r.schema.num_columns(); ++c) {
        if (c > 0) out += ", ";
        out += "\"" + JsonEscape(r.schema.column(c).name) +
               "\": " + ValueToJson(r.rows[i][c]);
      }
      out += "}";
    }
    out += "]";
  }
  out += "}";
  return out;
}

/// Drains the global span recorder into `path` as Chrome trace_event JSON
/// (load in chrome://tracing or ui.perfetto.dev). Call after a traced run;
/// reports how many spans were written and whether the ring overflowed.
inline void WriteChromeTrace(const std::string& path) {
  TraceRecorder& recorder = TraceRecorder::Global();
  std::vector<TraceSpan> spans = recorder.Snapshot();
  std::string json = ChromeTraceJson(spans);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "FATAL: cannot write trace file %s\n", path.c_str());
    std::exit(1);
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("trace: wrote %zu spans to %s%s\n", spans.size(), path.c_str(),
              recorder.dropped() > 0 ? " (ring overflowed; oldest dropped)"
                                     : "");
}

/// Runs `fn(thread_index, rng)` on `n_threads` concurrent threads and joins
/// them all. Each thread gets its own deterministically seeded Random (a
/// shared RNG would serialize the threads and hide scaling), so a run is
/// reproducible for any fixed thread count.
template <typename Fn>
inline void ThreadedLoop(int n_threads, Fn fn) {
  std::vector<std::thread> threads;
  threads.reserve(n_threads);
  for (int t = 0; t < n_threads; ++t) {
    threads.emplace_back([t, &fn] {
      Random rng(0x9E3779B9ULL * (t + 1) + 1);
      fn(t, rng);
    });
  }
  for (std::thread& th : threads) th.join();
}

/// The standard experiment scale (laptop-sized stand-in for the paper's
/// 10,000-item / 10,000-EB database; DESIGN.md documents the substitution).
inline sim::TestbedConfig PaperConfig() {
  sim::TestbedConfig config;
  config.tpcw.num_items = 1000;
  config.tpcw.num_authors = 250;
  config.tpcw.num_customers = 2880;
  config.tpcw.num_orders = 2590;
  config.tpcw.best_seller_window = 333;
  config.profile_samples = 20;
  return config;
}

}  // namespace bench
}  // namespace mtcache

#endif  // MTCACHE_BENCH_BENCH_UTIL_H_
