// E1 — §6.2.1 baseline throughput: all database work on the backend server
// (web servers access it directly), users scaled until the latency bound is
// barely met. Paper: Browsing 50 WIPS, Shopping 82 WIPS, Ordering 283 WIPS
// with the backend at ~90% CPU.
//
// `--smoke` runs one short fixed-load measurement per mix instead of the
// full throughput search, so CI can exercise the whole harness (including
// the DMV snapshot) in seconds.

#include <cstring>
#include <string>

#include "bench/bench_util.h"

using namespace mtcache;
using namespace mtcache::bench;

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }

  Banner("E1", "Baseline throughput without caching",
         "section 6.2.1 table (no cache: 50 / 82 / 283 WIPS)");
  std::printf("%-10s %8s %8s %12s %12s %10s\n", "Workload", "Users", "WIPS",
              "BackendCPU", "WebCPU", "p90(s)");
  const double paper[3] = {50, 82, 283};
  int i = 0;
  std::string json_results;
  for (auto mix : {tpcw::WorkloadMix::kBrowsing, tpcw::WorkloadMix::kShopping,
                   tpcw::WorkloadMix::kOrdering}) {
    sim::TestbedConfig config = PaperConfig();
    config.mix = mix;
    config.caching = false;
    config.num_web_servers = 5;
    if (smoke) config.profile_samples = 3;
    sim::Testbed testbed(config);
    Check(testbed.Initialize(), "testbed init");
    sim::TestbedResult r =
        smoke ? CheckOk(testbed.Run(10, 2, 10), "smoke run")
              : CheckOk(testbed.FindMaxThroughput(15, 80), "find max throughput");
    std::printf("%-10s %8d %8.1f %11.1f%% %11.1f%% %10.2f   (paper: %.0f WIPS)\n",
                tpcw::MixName(mix), r.users, r.wips, r.backend_util * 100,
                r.max_web_util * 100, r.p90_latency, paper[i++]);
    char num[256];
    std::snprintf(num, sizeof(num),
                  "\"users\": %d, \"wips\": %.3f, \"backend_util\": %.4f, "
                  "\"p90_latency\": %.4f",
                  r.users, r.wips, r.backend_util, r.p90_latency);
    if (!json_results.empty()) json_results += ", ";
    json_results += "{\"mix\": \"" + std::string(tpcw::MixName(mix)) + "\", " +
                    num +
                    ", \"backend_dmv\": " + DmvSnapshotJson(testbed.backend()) +
                    "}";
  }
  std::printf("\nShape check: Ordering >> Shopping > Browsing, backend ~90%% "
              "loaded in all three.\n");
  std::printf("JSON: {\"experiment\": \"exp1_baseline_throughput\", "
              "\"smoke\": %s, \"results\": [%s]}\n",
              smoke ? "true" : "false", json_results.c_str());
  return 0;
}
