// E1 — §6.2.1 baseline throughput: all database work on the backend server
// (web servers access it directly), users scaled until the latency bound is
// barely met. Paper: Browsing 50 WIPS, Shopping 82 WIPS, Ordering 283 WIPS
// with the backend at ~90% CPU.

#include "bench/bench_util.h"

using namespace mtcache;
using namespace mtcache::bench;

int main() {
  Banner("E1", "Baseline throughput without caching",
         "section 6.2.1 table (no cache: 50 / 82 / 283 WIPS)");
  std::printf("%-10s %8s %8s %12s %12s %10s\n", "Workload", "Users", "WIPS",
              "BackendCPU", "WebCPU", "p90(s)");
  const double paper[3] = {50, 82, 283};
  int i = 0;
  for (auto mix : {tpcw::WorkloadMix::kBrowsing, tpcw::WorkloadMix::kShopping,
                   tpcw::WorkloadMix::kOrdering}) {
    sim::TestbedConfig config = PaperConfig();
    config.mix = mix;
    config.caching = false;
    config.num_web_servers = 5;
    sim::Testbed testbed(config);
    Check(testbed.Initialize(), "testbed init");
    sim::TestbedResult r =
        CheckOk(testbed.FindMaxThroughput(15, 80), "find max throughput");
    std::printf("%-10s %8d %8.1f %11.1f%% %11.1f%% %10.2f   (paper: %.0f WIPS)\n",
                tpcw::MixName(mix), r.users, r.wips, r.backend_util * 100,
                r.max_web_util * 100, r.p90_latency, paper[i++]);
  }
  std::printf("\nShape check: Ordering >> Shopping > Browsing, backend ~90%% "
              "loaded in all three.\n");
  return 0;
}
