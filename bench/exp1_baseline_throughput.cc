// E1 — §6.2.1 baseline throughput: all database work on the backend server
// (web servers access it directly), users scaled until the latency bound is
// barely met. Paper: Browsing 50 WIPS, Shopping 82 WIPS, Ordering 283 WIPS
// with the backend at ~90% CPU.
//
// `--smoke` runs one short fixed-load measurement per mix instead of the
// full throughput search, so CI can exercise the whole harness (including
// the DMV snapshot) in seconds.
//
// `--threads N` switches to a closed-loop wall-clock mode: real worker
// threads issue point queries against one backend Server (each loop
// iteration is execute + a fixed think time, the TPC-W EB model), measured
// for 1, 2, 4, ... up to N threads. Aggregate QPS per thread count goes
// into the JSON line, demonstrating multi-session scaling of the engine.

#include <chrono>
#include <cstring>
#include <string>

#include "bench/bench_util.h"

using namespace mtcache;
using namespace mtcache::bench;

namespace {

constexpr int kThreadBenchItems = 1000;

/// Closed loop: each of `n_threads` sessions alternates one point SELECT
/// with a fixed think time, `ops_per_thread` times. Returns aggregate
/// queries per wall-clock second.
double RunClosedLoop(Server* server, int n_threads, int ops_per_thread,
                     double think_seconds) {
  auto start = std::chrono::steady_clock::now();
  ThreadedLoop(n_threads, [&](int /*thread_index*/, Random& rng) {
    auto think = std::chrono::duration<double>(think_seconds);
    for (int i = 0; i < ops_per_thread; ++i) {
      int64_t id = rng.Uniform(1, kThreadBenchItems);
      auto r = server->Execute(
          "SELECT i_title, i_cost FROM item WHERE i_id = " +
          std::to_string(id));
      Check(r.status(), "closed-loop query");
      if (r->rows.size() != 1) {
        std::fprintf(stderr, "FATAL: point query returned %zu rows\n",
                     r->rows.size());
        std::exit(1);
      }
      std::this_thread::sleep_for(think);
    }
  });
  std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  return static_cast<double>(n_threads) * ops_per_thread / elapsed.count();
}

int RunThreadScaling(int max_threads, bool smoke) {
  Banner("E1-threads", "Closed-loop multi-session scaling",
         "engine concurrency; QPS vs. worker threads, think-time EB model");
  SimClock clock;
  Server server(ServerOptions{"backend", "dbo", {}}, &clock);
  Check(server.ExecuteScript("CREATE TABLE item (i_id INT PRIMARY KEY, "
                             "i_title VARCHAR(30), i_cost FLOAT)"),
        "create item");
  for (int i = 1; i <= kThreadBenchItems; ++i) {
    Check(server.ExecuteScript("INSERT INTO item VALUES (" +
                               std::to_string(i) + ", 'title" +
                               std::to_string(i) + "', " +
                               std::to_string(i * 1.5) + ")"),
          "load item");
  }
  server.RecomputeStats();

  const int ops = smoke ? 40 : 400;
  const double think = 0.002;  // 2ms of EB think time per interaction
  // Warm the plan cache and the allocator before timing anything.
  RunClosedLoop(&server, 1, 10, 0);

  std::printf("%-8s %12s %10s\n", "Threads", "QPS", "Speedup");
  std::string json_results;
  double qps_1 = 0, qps_max = 0;
  for (int n = 1; n <= max_threads; n *= 2) {
    double qps = RunClosedLoop(&server, n, ops, think);
    if (n == 1) qps_1 = qps;
    qps_max = qps;
    std::printf("%-8d %12.1f %9.2fx\n", n, qps, qps / qps_1);
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"threads\": %d, \"qps\": %.3f, \"speedup\": %.4f}", n,
                  qps, qps / qps_1);
    if (!json_results.empty()) json_results += ", ";
    json_results += buf;
  }
  std::printf("\nShape check: aggregate QPS grows with threads until the "
              "CPU saturates.\n");
  std::printf("JSON: {\"experiment\": \"exp1_baseline_throughput\", "
              "\"mode\": \"threads\", \"smoke\": %s, \"max_threads\": %d, "
              "\"aggregate_speedup\": %.4f, \"results\": [%s]}\n",
              smoke ? "true" : "false", max_threads, qps_max / qps_1,
              json_results.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int threads = 0;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[i + 1]);
    }
    if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
      trace_path = argv[i + 1];
    }
  }
  // --trace FILE: record spans for the whole run and write Chrome trace JSON
  // on exit. Tracing alters timings (span bookkeeping per statement), so
  // throughput numbers from a traced run are diagnostic, not comparable.
  if (!trace_path.empty()) TraceRecorder::Global().set_enabled(true);
  if (threads > 0) {
    int rc = RunThreadScaling(threads, smoke);
    if (!trace_path.empty()) WriteChromeTrace(trace_path);
    return rc;
  }

  Banner("E1", "Baseline throughput without caching",
         "section 6.2.1 table (no cache: 50 / 82 / 283 WIPS)");
  std::printf("%-10s %8s %8s %12s %12s %10s\n", "Workload", "Users", "WIPS",
              "BackendCPU", "WebCPU", "p90(s)");
  const double paper[3] = {50, 82, 283};
  int i = 0;
  std::string json_results;
  for (auto mix : {tpcw::WorkloadMix::kBrowsing, tpcw::WorkloadMix::kShopping,
                   tpcw::WorkloadMix::kOrdering}) {
    sim::TestbedConfig config = PaperConfig();
    config.mix = mix;
    config.caching = false;
    config.num_web_servers = 5;
    if (smoke) config.profile_samples = 3;
    sim::Testbed testbed(config);
    Check(testbed.Initialize(), "testbed init");
    sim::TestbedResult r =
        smoke ? CheckOk(testbed.Run(10, 2, 10), "smoke run")
              : CheckOk(testbed.FindMaxThroughput(15, 80), "find max throughput");
    std::printf("%-10s %8d %8.1f %11.1f%% %11.1f%% %10.2f   (paper: %.0f WIPS)\n",
                tpcw::MixName(mix), r.users, r.wips, r.backend_util * 100,
                r.max_web_util * 100, r.p90_latency, paper[i++]);
    char num[256];
    std::snprintf(num, sizeof(num),
                  "\"users\": %d, \"wips\": %.3f, \"backend_util\": %.4f, "
                  "\"p90_latency\": %.4f",
                  r.users, r.wips, r.backend_util, r.p90_latency);
    if (!json_results.empty()) json_results += ", ";
    json_results += "{\"mix\": \"" + std::string(tpcw::MixName(mix)) + "\", " +
                    num +
                    ", \"backend_dmv\": " + DmvSnapshotJson(testbed.backend()) +
                    "}";
  }
  std::printf("\nShape check: Ordering >> Shopping > Browsing, backend ~90%% "
              "loaded in all three.\n");
  std::printf("JSON: {\"experiment\": \"exp1_baseline_throughput\", "
              "\"smoke\": %s, \"results\": [%s]}\n",
              smoke ? "true" : "false", json_results.c_str());
  if (!trace_path.empty()) WriteChromeTrace(trace_path);
  return 0;
}
