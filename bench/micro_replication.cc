// M4 — micro-benchmark: the replication pipeline (log reader + distributor +
// apply), measured in changes per second end to end.

#include <benchmark/benchmark.h>

#include "repl/replication.h"

namespace mtcache {
namespace {

struct Pipeline {
  SimClock clock;
  LinkedServerRegistry links;
  std::unique_ptr<Server> backend;
  std::unique_ptr<Server> cache;
  std::unique_ptr<ReplicationSystem> repl;
  int64_t next_id = 1;
};

Pipeline* SharedPipeline() {
  static Pipeline* p = [] {
    auto* pl = new Pipeline();
    pl->backend = std::make_unique<Server>(
        ServerOptions{"backend", "dbo", {}}, &pl->clock, &pl->links);
    pl->cache = std::make_unique<Server>(ServerOptions{"cache", "dbo", {}},
                                         &pl->clock, &pl->links);
    pl->repl = std::make_unique<ReplicationSystem>(&pl->clock);
    Status st = pl->backend->ExecuteScript(
        "CREATE TABLE t (id INT PRIMARY KEY, payload VARCHAR(40), grp INT)");
    if (!st.ok()) std::abort();
    st = pl->cache->ExecuteScript(
        "CREATE TABLE t_copy (id INT PRIMARY KEY, payload VARCHAR(40))");
    if (!st.ok()) std::abort();
    Article article;
    article.name = "t_article";
    article.def.base_table = "t";
    article.def.columns = {"id", "payload"};
    auto sub = pl->repl->Subscribe(pl->backend.get(), article,
                                   pl->cache.get(), "t_copy");
    if (!sub.ok()) std::abort();
    return pl;
  }();
  return p;
}

void BM_ReplicationPipeline(benchmark::State& state) {
  Pipeline* p = SharedPipeline();
  const int kBatch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) {
      std::string id = std::to_string(p->next_id++);
      auto r = p->backend->Execute("INSERT INTO t VALUES (" + id +
                                   ", 'payload-" + id + "', 1)");
      if (!r.ok()) std::abort();
    }
    ExecStats pub, sub;
    if (!p->repl->RunLogReader(p->backend.get(), &pub).ok()) std::abort();
    if (!p->repl->RunDistributionAgent(p->cache.get(), &sub).ok()) {
      std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch);
}
BENCHMARK(BM_ReplicationPipeline)->Arg(10)->Arg(100);

void BM_LogReaderFilteringNonMatching(benchmark::State& state) {
  // Updates to a column outside the article still pass through the log
  // reader; measures pure scan/filter throughput.
  Pipeline* p = SharedPipeline();
  {
    auto r = p->backend->Execute("INSERT INTO t VALUES (999999999, 'x', 0)");
    if (!r.ok()) std::abort();
  }
  for (auto _ : state) {
    auto r = p->backend->Execute(
        "UPDATE t SET grp = grp + 1 WHERE id = 999999999");
    if (!r.ok()) std::abort();
    ExecStats pub;
    if (!p->repl->RunLogReader(p->backend.get(), &pub).ok()) std::abort();
    if (!p->repl->RunDistributionAgent(p->cache.get(), nullptr).ok()) {
      std::abort();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LogReaderFilteringNonMatching);

}  // namespace
}  // namespace mtcache
