// A3 — ablation: pulling ChoosePlan above joins (§5.1.2). Pull-up lets each
// branch be optimized independently and "gives the optimizer the opportunity
// to push a larger query to the backend server", at the price of
// optimization time and final plan size — exactly the trade-off this bench
// prints.

#include "bench/bench_util.h"
#include "mtcache/mtcache.h"

using namespace mtcache;
using namespace mtcache::bench;

namespace {

struct Scenario {
  SimClock clock;
  LinkedServerRegistry links;
  std::unique_ptr<Server> backend;
  std::unique_ptr<Server> cache;
  std::unique_ptr<ReplicationSystem> repl;
  std::unique_ptr<MTCache> mtcache;
};

void Build(Scenario* s) {
  s->backend = std::make_unique<Server>(ServerOptions{"backend", "dbo", {}},
                                        &s->clock, &s->links);
  s->cache = std::make_unique<Server>(ServerOptions{"cache", "dbo", {}},
                                      &s->clock, &s->links);
  s->repl = std::make_unique<ReplicationSystem>(&s->clock);
  Check(s->backend->ExecuteScript(
            "CREATE TABLE customer (ckey INT PRIMARY KEY, name VARCHAR(30)); "
            "CREATE TABLE orders (okey INT PRIMARY KEY, ckey INT, "
            "odate INT, total FLOAT); "
            "CREATE INDEX orders_ckey ON orders (ckey);"),
        "schema");
  for (int i = 1; i <= 2000; ++i) {
    Check(s->backend->ExecuteScript("INSERT INTO customer VALUES (" +
                                    std::to_string(i) + ", 'n" +
                                    std::to_string(i) + "')"),
          "load");
  }
  for (int i = 1; i <= 4000; ++i) {
    Check(s->backend->ExecuteScript(
              "INSERT INTO orders VALUES (" + std::to_string(i) + ", " +
              std::to_string(i % 2000 + 1) + ", " + std::to_string(5000 + i) +
              ", " + std::to_string(i * 1.0) + ")"),
          "load");
  }
  s->backend->RecomputeStats();
  s->mtcache = CheckOk(
      MTCache::Setup(s->cache.get(), s->backend.get(), s->repl.get()),
      "setup");
  Check(s->mtcache->CreateCachedView(
            "cust1000", "SELECT ckey, name FROM customer WHERE ckey <= 1000"),
        "view");
}

}  // namespace

int main() {
  Banner("A3", "ChoosePlan pull-up above joins: plan quality vs plan size",
         "section 5.1.2 (Figure 4)");

  // The paper's example query: a parameterized selection on customer joined
  // with orders, where Cust1000 conditionally contains the customer rows.
  const char* kSql =
      "SELECT c.name, o.odate, o.total FROM customer c, orders o "
      "WHERE c.ckey <= @ckey AND c.ckey = o.ckey";
  const int kReps = 30;

  std::printf("%-12s %14s %10s %12s %14s %12s\n", "pull-up", "opt time (us)",
              "plan ops", "est cost", "alternatives", "remote used");
  double measured[2][2];  // [mode][in/out of range]
  for (int mode = 0; mode < 2; ++mode) {
    Scenario s;
    Build(&s);
    OptimizerOptions opts = s.cache->optimizer_options();
    opts.pull_up_chooseplan = mode == 0;
    s.cache->set_optimizer_options(opts);

    int64_t total_us = 0;
    OptimizeResult last;
    for (int r = 0; r < kReps; ++r) {
      last = CheckOk(s.cache->Explain(kSql), "explain");
      total_us += last.optimize_micros;
    }
    std::printf("%-12s %14lld %10d %12.0f %14d %12s\n",
                mode == 0 ? "ON" : "OFF",
                static_cast<long long>(total_us / kReps), last.plan_size,
                last.est_cost, last.alternatives_considered,
                last.uses_remote ? "yes" : "no");

    // Execution: in-range parameter (local branch) and out-of-range
    // parameter (remote branch).
    for (int in_range = 0; in_range < 2; ++in_range) {
      ParamMap params;
      params["@ckey"] = Value::Int(in_range == 1 ? 400 : 1800);
      ExecStats stats;
      QueryResult result =
          CheckOk(s.cache->Execute(kSql, params, &stats), "execute");
      measured[mode][in_range] = stats.local_cost + stats.remote_cost;
      (void)result;
    }
  }
  std::printf("\nMeasured execution work (local+remote units):\n");
  std::printf("%-12s %18s %18s\n", "pull-up", "@ckey in view", "@ckey beyond");
  std::printf("%-12s %18.0f %18.0f\n", "ON", measured[0][1], measured[0][0]);
  std::printf("%-12s %18.0f %18.0f\n", "OFF", measured[1][1], measured[1][0]);
  std::printf(
      "\nShape check: pull-up costs optimization time and a larger plan but "
      "lets the\nout-of-range branch ship the whole join to the backend.\n");
  return 0;
}
