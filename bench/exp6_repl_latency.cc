// E6 — §6.2.3 replication latency: average commit-to-commit propagation
// delay from the backend to the caches.
//   Light load: one web/cache server, a handful of users (paper: 0.55 s).
//   Heavy load: four saturated web/cache servers plus a fifth web server
//   saturating the backend directly (paper: 1.67 s).

#include "bench/bench_util.h"

using namespace mtcache;
using namespace mtcache::bench;

int main() {
  Banner("E6", "Replication latency under light and heavy load",
         "section 6.2.3 (light: 0.55 s, heavy: 1.67 s)");

  // Light load.
  sim::TestbedConfig light = PaperConfig();
  light.mix = tpcw::WorkloadMix::kOrdering;
  light.caching = true;
  light.num_web_servers = 1;
  sim::Testbed light_bed(light);
  Check(light_bed.Initialize(), "light init");
  sim::TestbedResult lr = CheckOk(light_bed.Run(10, 15, 120), "light run");

  // Heavy load: saturated caches + externally saturated backend.
  sim::TestbedConfig heavy = PaperConfig();
  heavy.mix = tpcw::WorkloadMix::kOrdering;
  heavy.caching = true;
  heavy.num_web_servers = 4;
  heavy.backend_background_util = 0.60;  // the fifth, cache-less web server
  sim::Testbed heavy_bed(heavy);
  Check(heavy_bed.Initialize(), "heavy init");
  sim::TestbedResult probe =
      CheckOk(heavy_bed.FindMaxThroughput(10, 40), "probe");
  // Push past the knee so the caches and backend run saturated.
  sim::TestbedResult hr =
      CheckOk(heavy_bed.Run(probe.users * 2, 15, 120), "heavy run");

  std::printf("%-12s %8s %12s %12s %14s %14s\n", "Scenario", "Users", "WIPS",
              "BackendCPU", "AvgLatency(s)", "MaxLatency(s)");
  std::printf("%-12s %8d %12.1f %11.1f%% %14.2f %14.2f   (paper: 0.55 s)\n",
              "light", lr.users, lr.wips, lr.backend_util * 100,
              lr.repl_avg_latency, lr.repl_max_latency);
  std::printf("%-12s %8d %12.1f %11.1f%% %14.2f %14.2f   (paper: 1.67 s)\n",
              "heavy", hr.users, hr.wips, hr.backend_util * 100,
              hr.repl_avg_latency, hr.repl_max_latency);
  std::printf("\nShape check: heavy-load latency a few times the light-load "
              "latency, both well under the ~3 s page budget.\n");
  return 0;
}
