// M3 — micro-benchmark: optimizer latency, with and without the MTCache
// extensions active (view matching + dynamic plans), on an MTCache server.

#include <benchmark/benchmark.h>

#include "mtcache/mtcache.h"

namespace mtcache {
namespace {

struct Scenario {
  SimClock clock;
  LinkedServerRegistry links;
  std::unique_ptr<Server> backend;
  std::unique_ptr<Server> cache;
  std::unique_ptr<ReplicationSystem> repl;
  std::unique_ptr<MTCache> mtcache;
};

Scenario* SharedScenario() {
  static Scenario* s = [] {
    auto* sc = new Scenario();
    sc->backend = std::make_unique<Server>(
        ServerOptions{"backend", "dbo", {}}, &sc->clock, &sc->links);
    sc->cache = std::make_unique<Server>(ServerOptions{"cache", "dbo", {}},
                                         &sc->clock, &sc->links);
    sc->repl = std::make_unique<ReplicationSystem>(&sc->clock);
    Status st = sc->backend->ExecuteScript(
        "CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(30)); "
        "CREATE TABLE orders (okey INT PRIMARY KEY, ckey INT, total FLOAT); "
        "CREATE INDEX orders_ckey ON orders (ckey);");
    if (!st.ok()) std::abort();
    for (int i = 1; i <= 500; ++i) {
      st = sc->backend->ExecuteScript("INSERT INTO customer VALUES (" +
                                      std::to_string(i) + ", 'n')");
      if (!st.ok()) std::abort();
    }
    sc->backend->RecomputeStats();
    auto setup =
        MTCache::Setup(sc->cache.get(), sc->backend.get(), sc->repl.get());
    if (!setup.ok()) std::abort();
    sc->mtcache = setup.ConsumeValue();
    st = sc->mtcache->CreateCachedView(
        "cust250", "SELECT cid, cname FROM customer WHERE cid <= 250");
    if (!st.ok()) std::abort();
    return sc;
  }();
  return s;
}

const char* kParamJoin =
    "SELECT c.cname, o.total FROM customer c, orders o "
    "WHERE c.cid <= @p AND c.cid = o.ckey";

void BM_OptimizeDynamicPlanQuery(benchmark::State& state) {
  Scenario* s = SharedScenario();
  for (auto _ : state) {
    auto r = s->cache->Explain(kParamJoin);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->plan_size);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizeDynamicPlanQuery);

void BM_OptimizeWithoutViewMatching(benchmark::State& state) {
  Scenario* s = SharedScenario();
  OptimizerOptions saved = s->cache->optimizer_options();
  OptimizerOptions opts = saved;
  opts.enable_view_matching = false;
  s->cache->set_optimizer_options(opts);
  for (auto _ : state) {
    auto r = s->cache->Explain(kParamJoin);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->plan_size);
  }
  s->cache->set_optimizer_options(saved);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizeWithoutViewMatching);

void BM_OptimizeSimpleLookup(benchmark::State& state) {
  Scenario* s = SharedScenario();
  for (auto _ : state) {
    auto r = s->cache->Explain("SELECT cname FROM customer WHERE cid = 42");
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->est_cost);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OptimizeSimpleLookup);

}  // namespace
}  // namespace mtcache
