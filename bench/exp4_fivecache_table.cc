// E4 — §6.2.1 summary table: throughput without caching vs with five
// web/cache servers, plus backend load with caching.
// Paper: Browsing 50 -> 129 WIPS (7.5%), Shopping 82 -> 199 (15.9%),
// Ordering 283 -> 271 (55.4%).

#include "bench/bench_util.h"

using namespace mtcache;
using namespace mtcache::bench;

int main() {
  Banner("E4", "No cache vs five web/cache servers",
         "section 6.2.1 summary table");
  std::printf("%-10s | %10s | %16s %14s | %s\n", "Workload", "NoCache",
              "FiveCaches", "BackendLoad", "Paper (nocache->5, load)");
  const char* paper[3] = {"50 -> 129, 7.5%", "82 -> 199, 15.9%",
                          "283 -> 271, 55.4%"};
  int i = 0;
  for (auto mix : {tpcw::WorkloadMix::kBrowsing, tpcw::WorkloadMix::kShopping,
                   tpcw::WorkloadMix::kOrdering}) {
    sim::TestbedConfig base = PaperConfig();
    base.mix = mix;
    base.caching = false;
    base.num_web_servers = 5;
    sim::Testbed baseline(base);
    Check(baseline.Initialize(), "baseline init");
    sim::TestbedResult rb = CheckOk(baseline.FindMaxThroughput(15, 80), "run");

    sim::TestbedConfig cached = PaperConfig();
    cached.mix = mix;
    cached.caching = true;
    cached.num_web_servers = 5;
    sim::Testbed with_cache(cached);
    Check(with_cache.Initialize(), "cached init");
    sim::TestbedResult rc =
        CheckOk(with_cache.FindMaxThroughput(15, 80), "run");

    std::printf("%-10s | %7.1f    | %13.1f    %12.1f%% | %s\n",
                tpcw::MixName(mix), rb.wips, rc.wips, rc.backend_util * 100,
                paper[i++]);
  }
  return 0;
}
