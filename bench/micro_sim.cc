// M5 — micro-benchmark: the discrete-event simulator itself (event
// throughput and a full closed-loop testbed run), establishing that the
// multi-machine simulation is never the bottleneck of an experiment.

#include <benchmark/benchmark.h>

#include "sim/testbed.h"

namespace mtcache {
namespace sim {
namespace {

void BM_DesEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    Des des;
    int64_t fired = 0;
    // Self-rescheduling event chain.
    std::function<void()> tick = [&]() {
      ++fired;
      if (fired < state.range(0)) des.Schedule(des.now() + 0.001, tick);
    };
    des.Schedule(0, tick);
    des.RunUntil(1e9);
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DesEventThroughput)->Arg(100000);

void BM_MachineQueueing(benchmark::State& state) {
  for (auto _ : state) {
    Des des;
    Machine machine(&des, "m", 2, 1000.0);
    for (int i = 0; i < state.range(0); ++i) {
      machine.Submit(1.0, nullptr);
    }
    des.RunUntil(1e9);
    benchmark::DoNotOptimize(machine.jobs_completed());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MachineQueueing)->Arg(100000);

Testbed* SharedTestbed() {
  static Testbed* testbed = [] {
    TestbedConfig config;
    config.tpcw.num_items = 300;
    config.tpcw.num_authors = 75;
    config.tpcw.num_customers = 500;
    config.tpcw.num_orders = 450;
    config.tpcw.best_seller_window = 60;
    config.num_web_servers = 3;
    config.profile_samples = 8;
    auto* t = new Testbed(config);
    if (!t->Initialize().ok()) std::abort();
    return t;
  }();
  return testbed;
}

void BM_TestbedClosedLoopRun(benchmark::State& state) {
  Testbed* testbed = SharedTestbed();
  for (auto _ : state) {
    auto r = testbed->Run(static_cast<int>(state.range(0)), 10, 60);
    if (!r.ok()) std::abort();
    benchmark::DoNotOptimize(r->wips);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TestbedClosedLoopRun)->Arg(50)->Arg(200);

}  // namespace
}  // namespace sim
}  // namespace mtcache
