// A2 — ablation: dynamic plans (§5.1) for parameterized queries against a
// partial cached view, vs (a) no dynamic plans (the view is unusable for
// parameterized predicates, every call ships to the backend) and (b)
// reoptimizing every call with the literal value plugged in (gets the same
// routing but pays an optimization per call). The paper: "dynamic plans are
// crucial ... because they exploit the cached data efficiently while
// avoiding the need for frequent reoptimization."

#include "bench/bench_util.h"
#include "common/random.h"
#include "mtcache/mtcache.h"

using namespace mtcache;
using namespace mtcache::bench;

namespace {

struct Scenario {
  SimClock clock;
  LinkedServerRegistry links;
  std::unique_ptr<Server> backend;
  std::unique_ptr<Server> cache;
  std::unique_ptr<ReplicationSystem> repl;
  std::unique_ptr<MTCache> mtcache;
};

void Build(Scenario* s) {
  s->backend = std::make_unique<Server>(ServerOptions{"backend", "dbo", {}},
                                        &s->clock, &s->links);
  s->cache = std::make_unique<Server>(ServerOptions{"cache", "dbo", {}},
                                      &s->clock, &s->links);
  s->repl = std::make_unique<ReplicationSystem>(&s->clock);
  Check(s->backend->ExecuteScript(
            "CREATE TABLE customer (cid INT PRIMARY KEY, cname VARCHAR(30), "
            "caddress VARCHAR(60))"),
        "schema");
  for (int i = 1; i <= 2000; ++i) {
    Check(s->backend->ExecuteScript(
              "INSERT INTO customer VALUES (" + std::to_string(i) + ", 'n" +
              std::to_string(i) + "', 'a" + std::to_string(i) + "')"),
          "load");
  }
  s->backend->RecomputeStats();
  s->mtcache = CheckOk(
      MTCache::Setup(s->cache.get(), s->backend.get(), s->repl.get()),
      "setup");
  Check(s->mtcache->CreateCachedView(
            "cust1000",
            "SELECT cid, cname, caddress FROM customer WHERE cid <= 1000"),
        "view");
}

}  // namespace

int main() {
  Banner("A2", "Dynamic plans vs no-dynamic-plans vs per-call reoptimization",
         "section 5.1 (the Cust1000 example); first industrial dynamic plans");

  const int kCalls = 200;
  const char* kSql =
      "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid";

  std::printf("%-24s %12s %12s %14s %14s\n", "strategy", "local work",
              "remote work", "optimizations", "opt time (us)");

  // Parameter stream: uniform over the column domain, so roughly half the
  // calls fall inside the cached view (matching the optimizer's Fl model).
  auto param_at = [](Random* rng) { return rng->Uniform(1, 2000); };

  for (int strategy = 0; strategy < 3; ++strategy) {
    Scenario s;
    Build(&s);
    OptimizerOptions opts = s.cache->optimizer_options();
    opts.enable_dynamic_plans = strategy == 0;
    s.cache->set_optimizer_options(opts);
    Random rng(2003);
    ExecStats stats;
    int64_t opt_time = 0;
    for (int c = 0; c < kCalls; ++c) {
      int64_t p = param_at(&rng);
      if (strategy < 2) {
        ParamMap params;
        params["@cid"] = Value::Int(p);
        CheckOk(s.cache->Execute(kSql, params, &stats), "execute");
      } else {
        // Literal form: a different statement text per value defeats the
        // plan cache, so every call re-optimizes (time measured below).
        std::string sql =
            "SELECT cid, cname, caddress FROM customer WHERE cid <= " +
            std::to_string(p);
        OptimizeResult plan = CheckOk(s.cache->Explain(sql), "explain");
        opt_time += plan.optimize_micros;
        CheckOk(s.cache->Execute(sql, {}, &stats), "execute");
      }
    }
    int64_t optimizations = s.cache->plan_cache_stats().misses;
    const char* name = strategy == 0   ? "dynamic plans (MTCache)"
                       : strategy == 1 ? "no dynamic plans"
                                       : "reoptimize per call";
    std::printf("%-24s %12.0f %12.0f %14lld %14lld\n", name, stats.local_cost,
                stats.remote_cost,
                static_cast<long long>(optimizations),
                static_cast<long long>(opt_time));
  }
  std::printf(
      "\nShape check: dynamic plans serve ~half the calls from the cached "
      "view with ONE\noptimization; no-dynamic-plans ships every call. "
      "Per-call reoptimization gets a\nsimilar split and slightly better "
      "remote plans (the backend sees literals, not\ndefault parameter "
      "selectivities) — at the price of an optimization per call.\n");
  return 0;
}
