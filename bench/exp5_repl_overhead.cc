// E5 — §6.2.2 replication overhead. The backend is saturated by web servers
// hitting it directly (the caches are deployed and keep subscribing but do
// not answer queries), Ordering workload. Two measurements:
//   (1) throughput with the log reader on vs off — the paper saw 283 vs 311
//       WIPS, a ~10% reduction caused by the log reader + distributor;
//   (2) CPU of a middle-tier machine that only applies pushed changes —
//       the paper measured 15%.

#include "bench/bench_util.h"

using namespace mtcache;
using namespace mtcache::bench;

namespace {

sim::TestbedConfig OverheadConfig(bool log_reader_on) {
  sim::TestbedConfig config = PaperConfig();
  config.mix = tpcw::WorkloadMix::kOrdering;
  config.caching = true;             // caches deployed, subscriptions active
  config.drivers_use_cache = false;  // ...but queries go straight to backend
  config.replication_enabled = log_reader_on;
  config.num_web_servers = 5;
  config.app_work = 0;  // cache machines do nothing but apply changes
  return config;
}

}  // namespace

int main() {
  Banner("E5", "Replication overhead on backend and middle tier",
         "section 6.2.2 (log reader on: 283 WIPS, off: 311 WIPS => ~10%; "
         "idle mid-tier apply CPU: 15%)");

  sim::Testbed with_repl(OverheadConfig(true));
  Check(with_repl.Initialize(), "init (log reader on)");
  sim::TestbedResult on =
      CheckOk(with_repl.FindMaxThroughput(15, 80), "run (on)");

  sim::Testbed without_repl(OverheadConfig(false));
  Check(without_repl.Initialize(), "init (log reader off)");
  sim::TestbedResult off =
      CheckOk(without_repl.FindMaxThroughput(15, 80), "run (off)");

  double reduction = off.wips > 0 ? (1.0 - on.wips / off.wips) * 100 : 0;
  std::printf("%-28s %10s %12s\n", "Configuration", "WIPS", "BackendCPU");
  std::printf("%-28s %10.1f %11.1f%%\n", "log reader ON", on.wips,
              on.backend_util * 100);
  std::printf("%-28s %10.1f %11.1f%%\n", "log reader OFF", off.wips,
              off.backend_util * 100);
  std::printf("\nBackend throughput reduction from replication: %.1f%%  "
              "(paper: ~10%%)\n", reduction);
  std::printf("Mid-tier apply-only CPU: %.1f%%  (paper: 15%%)\n",
              on.cache_apply_util * 100);
  std::printf("Shape check: overhead under 15%% on both tiers.\n");
  return 0;
}
