#include <gtest/gtest.h>

#include "engine/server.h"
#include "opt/view_matching.h"

namespace mtcache {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : server_(ServerOptions{"backend", "dbo", {}}, &clock_) {}

  void Exec(const std::string& sql) {
    Status s = server_.ExecuteScript(sql);
    ASSERT_TRUE(s.ok()) << s.ToString() << "\nSQL: " << sql;
  }

  QueryResult Query(const std::string& sql) {
    auto r = server_.Execute(sql);
    EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nSQL: " << sql;
    return r.ok() ? r.ConsumeValue() : QueryResult{};
  }

  void SetUpBasicTables() {
    Exec("CREATE TABLE item (i_id INT PRIMARY KEY, i_title VARCHAR(60), "
         "i_subject VARCHAR(20), i_cost FLOAT)");
    Exec("CREATE TABLE orders (o_id INT PRIMARY KEY, o_c_id INT, o_total FLOAT, "
         "o_date INT)");
    Exec("CREATE INDEX item_subject ON item (i_subject)");
    for (int i = 1; i <= 50; ++i) {
      std::string subject = i % 5 == 0 ? "history" : "fiction";
      Exec("INSERT INTO item VALUES (" + std::to_string(i) + ", 'title" +
           std::to_string(i) + "', '" + subject + "', " +
           std::to_string(i * 1.5) + ")");
    }
    for (int i = 1; i <= 30; ++i) {
      Exec("INSERT INTO orders VALUES (" + std::to_string(i) + ", " +
           std::to_string(i % 10 + 1) + ", " + std::to_string(i * 10.0) +
           ", " + std::to_string(1000 + i) + ")");
    }
    server_.RecomputeStats();
  }

  SimClock clock_;
  Server server_;
};

TEST_F(EngineTest, CreateInsertSelect) {
  Exec("CREATE TABLE t (id INT PRIMARY KEY, name VARCHAR(20))");
  Exec("INSERT INTO t VALUES (1, 'alpha'), (2, 'beta')");
  QueryResult r = Query("SELECT id, name FROM t ORDER BY id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  EXPECT_EQ(r.rows[1][1].AsString(), "beta");
}

TEST_F(EngineTest, WhereFiltering) {
  SetUpBasicTables();
  QueryResult r = Query("SELECT i_id FROM item WHERE i_subject = 'history'");
  EXPECT_EQ(r.rows.size(), 10u);
}

TEST_F(EngineTest, PrimaryKeyLookupUsesIndexSeek) {
  SetUpBasicTables();
  auto plan = server_.Explain("SELECT i_title FROM item WHERE i_id = 7");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = PhysicalToString(*plan->plan);
  EXPECT_NE(text.find("IndexSeek(item.item_pk)"), std::string::npos) << text;
  QueryResult r = Query("SELECT i_title FROM item WHERE i_id = 7");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsString(), "title7");
}

TEST_F(EngineTest, JoinQuery) {
  SetUpBasicTables();
  QueryResult r = Query(
      "SELECT o.o_id, i.i_title FROM orders o JOIN item i ON o.o_c_id = "
      "i.i_id WHERE o.o_total > 250");
  // orders with o_total > 250: o_id 26..30; each joins item o_c_id in 1..10.
  EXPECT_EQ(r.rows.size(), 5u);
}

TEST_F(EngineTest, GroupByAggregates) {
  SetUpBasicTables();
  QueryResult r = Query(
      "SELECT i_subject, COUNT(*) cnt, AVG(i_cost) avgc FROM item "
      "GROUP BY i_subject ORDER BY cnt DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsString(), "fiction");
  EXPECT_EQ(r.rows[0][1].AsInt(), 40);
  EXPECT_EQ(r.rows[1][1].AsInt(), 10);
}

TEST_F(EngineTest, ScalarAggregateOnEmptyInput) {
  Exec("CREATE TABLE empty_t (x INT)");
  QueryResult r = Query("SELECT COUNT(*), SUM(x), MIN(x) FROM empty_t");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
}

TEST_F(EngineTest, TopWithOrderBy) {
  SetUpBasicTables();
  QueryResult r = Query("SELECT TOP 3 o_id FROM orders ORDER BY o_total DESC");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 30);
  EXPECT_EQ(r.rows[2][0].AsInt(), 28);
}

TEST_F(EngineTest, DerivedTableWithTop) {
  SetUpBasicTables();
  QueryResult r = Query(
      "SELECT COUNT(*) FROM (SELECT TOP 10 o_id FROM orders ORDER BY o_date "
      "DESC) recent");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
}

TEST_F(EngineTest, DistinctPreservesFirstAppearance) {
  SetUpBasicTables();
  QueryResult r = Query("SELECT DISTINCT i_subject FROM item");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(EngineTest, LikeSearch) {
  SetUpBasicTables();
  QueryResult r = Query("SELECT i_id FROM item WHERE i_title LIKE 'title1%'");
  // title1, title10..title19 -> 11 rows.
  EXPECT_EQ(r.rows.size(), 11u);
}

TEST_F(EngineTest, UpdateAndDelete) {
  SetUpBasicTables();
  auto upd = server_.Execute("UPDATE item SET i_cost = 99.0 WHERE i_id <= 5");
  ASSERT_TRUE(upd.ok());
  EXPECT_EQ(upd->rows_affected, 5);
  QueryResult r = Query("SELECT COUNT(*) FROM item WHERE i_cost = 99.0");
  EXPECT_EQ(r.rows[0][0].AsInt(), 5);
  auto del = server_.Execute("DELETE FROM item WHERE i_subject = 'history'");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(del->rows_affected, 10);
  r = Query("SELECT COUNT(*) FROM item");
  EXPECT_EQ(r.rows[0][0].AsInt(), 40);
}

TEST_F(EngineTest, ParameterizedQuery) {
  SetUpBasicTables();
  ExecStats stats;
  ParamMap params;
  params["@id"] = Value::Int(3);
  auto r = server_.Execute("SELECT i_title FROM item WHERE i_id = @id",
                           params, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "title3");
  EXPECT_GT(stats.local_cost, 0);
}

TEST_F(EngineTest, PlanCacheHitsOnRepeatedStatement) {
  SetUpBasicTables();
  ParamMap params;
  params["@id"] = Value::Int(3);
  ExecStats stats;
  ASSERT_TRUE(server_
                  .Execute("SELECT i_title FROM item WHERE i_id = @id", params,
                           &stats)
                  .ok());
  int64_t misses = server_.plan_cache_stats().misses;
  params["@id"] = Value::Int(5);
  ASSERT_TRUE(server_
                  .Execute("SELECT i_title FROM item WHERE i_id = @id", params,
                           &stats)
                  .ok());
  EXPECT_EQ(server_.plan_cache_stats().misses, misses);
  EXPECT_GT(server_.plan_cache_stats().hits, 0);
}

TEST_F(EngineTest, InsertSelect) {
  SetUpBasicTables();
  Exec("CREATE TABLE expensive (e_id INT PRIMARY KEY, e_cost FLOAT)");
  auto r = server_.Execute(
      "INSERT INTO expensive (e_id, e_cost) SELECT i_id, i_cost FROM item "
      "WHERE i_cost > 60");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows_affected, 10);
}

TEST_F(EngineTest, TransactionsRollback) {
  SetUpBasicTables();
  Status s = server_.ExecuteScript(
      "BEGIN TRANSACTION; "
      "DELETE FROM orders WHERE o_id <= 10; "
      "ROLLBACK;");
  ASSERT_TRUE(s.ok()) << s.ToString();
  QueryResult r = Query("SELECT COUNT(*) FROM orders");
  EXPECT_EQ(r.rows[0][0].AsInt(), 30);
}

TEST_F(EngineTest, TransactionsCommit) {
  SetUpBasicTables();
  Status s = server_.ExecuteScript(
      "BEGIN TRANSACTION; "
      "DELETE FROM orders WHERE o_id <= 10; "
      "COMMIT;");
  ASSERT_TRUE(s.ok()) << s.ToString();
  QueryResult r = Query("SELECT COUNT(*) FROM orders");
  EXPECT_EQ(r.rows[0][0].AsInt(), 20);
}

TEST_F(EngineTest, NotNullEnforced) {
  Exec("CREATE TABLE strict_t (id INT PRIMARY KEY, req VARCHAR(10) NOT NULL)");
  auto r = server_.Execute("INSERT INTO strict_t (id) VALUES (1)");
  EXPECT_FALSE(r.ok());
}

TEST_F(EngineTest, UniqueViolationReported) {
  Exec("CREATE TABLE u_t (id INT PRIMARY KEY)");
  Exec("INSERT INTO u_t VALUES (1)");
  auto r = server_.Execute("INSERT INTO u_t VALUES (1)");
  EXPECT_EQ(r.status().code(), StatusCode::kAlreadyExists);
}

TEST_F(EngineTest, StoredProcedureWithParamsAndControlFlow) {
  SetUpBasicTables();
  Exec("CREATE PROCEDURE get_item(@id INT) AS BEGIN "
       "SELECT i_id, i_title FROM item WHERE i_id = @id; "
       "END");
  ExecStats stats;
  auto r = server_.CallProcedure("get_item", {Value::Int(12)}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsString(), "title12");
}

TEST_F(EngineTest, StoredProcedureVariablesAndIf) {
  SetUpBasicTables();
  Exec("CREATE PROCEDURE classify(@id INT) AS BEGIN "
       "DECLARE @cost FLOAT; "
       "SELECT @cost = i_cost FROM item WHERE i_id = @id; "
       "IF @cost > 50 BEGIN SELECT 'pricey' verdict END "
       "ELSE BEGIN SELECT 'cheap' verdict END "
       "END");
  auto r = server_.CallProcedure("classify", {Value::Int(40)}, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsString(), "pricey");
  r = server_.CallProcedure("classify", {Value::Int(10)}, nullptr);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsString(), "cheap");
}

TEST_F(EngineTest, ProcedureTransactionAndDml) {
  SetUpBasicTables();
  Exec("CREATE PROCEDURE add_order(@id INT, @cid INT, @total FLOAT) AS BEGIN "
       "BEGIN TRANSACTION; "
       "INSERT INTO orders VALUES (@id, @cid, @total, GETDATE()); "
       "UPDATE item SET i_cost = i_cost + 1 WHERE i_id = @cid; "
       "COMMIT; "
       "END");
  auto r = server_.CallProcedure(
      "add_order", {Value::Int(99), Value::Int(1), Value::Double(5.0)},
      nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  QueryResult check = Query("SELECT COUNT(*) FROM orders");
  EXPECT_EQ(check.rows[0][0].AsInt(), 31);
}

TEST_F(EngineTest, MaterializedViewPopulatedAndMaintained) {
  SetUpBasicTables();
  Exec("CREATE MATERIALIZED VIEW cheap_items AS "
       "SELECT i_id, i_title, i_cost FROM item WHERE i_cost <= 30");
  QueryResult r = Query("SELECT COUNT(*) FROM cheap_items");
  EXPECT_EQ(r.rows[0][0].AsInt(), 20);  // cost = 1.5 * id <= 30 -> id <= 20
  // Insert a matching row: view follows synchronously.
  Exec("INSERT INTO item VALUES (200, 'cheap new', 'fiction', 2.0)");
  r = Query("SELECT COUNT(*) FROM cheap_items");
  EXPECT_EQ(r.rows[0][0].AsInt(), 21);
  // Update pushes a row out of the view region.
  Exec("UPDATE item SET i_cost = 500 WHERE i_id = 200");
  r = Query("SELECT COUNT(*) FROM cheap_items");
  EXPECT_EQ(r.rows[0][0].AsInt(), 20);
  // Delete a contained row.
  Exec("DELETE FROM item WHERE i_id = 1");
  r = Query("SELECT COUNT(*) FROM cheap_items");
  EXPECT_EQ(r.rows[0][0].AsInt(), 19);
}

TEST_F(EngineTest, ViewMatchingSubstitutesMaterializedView) {
  SetUpBasicTables();
  Exec("CREATE MATERIALIZED VIEW cheap_items AS "
       "SELECT i_id, i_title, i_cost FROM item WHERE i_cost <= 30");
  server_.RecomputeStats();
  auto plan = server_.Explain(
      "SELECT i_title FROM item WHERE i_cost <= 10 AND i_id > 2");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = PhysicalToString(*plan->plan);
  EXPECT_NE(text.find("cheap_items"), std::string::npos) << text;
  // Results identical with and without view matching.
  QueryResult with_views = Query(
      "SELECT i_title FROM item WHERE i_cost <= 10 AND i_id > 2");
  OptimizerOptions no_views = server_.optimizer_options();
  no_views.enable_view_matching = false;
  server_.set_optimizer_options(no_views);
  QueryResult without = Query(
      "SELECT i_title FROM item WHERE i_cost <= 10 AND i_id > 2");
  EXPECT_EQ(with_views.rows.size(), without.rows.size());
}

TEST_F(EngineTest, LeftOuterJoin) {
  Exec("CREATE TABLE l (id INT PRIMARY KEY)");
  Exec("CREATE TABLE r (id INT PRIMARY KEY, lid INT)");
  Exec("INSERT INTO l VALUES (1), (2), (3)");
  Exec("INSERT INTO r VALUES (10, 1)");
  QueryResult res = Query(
      "SELECT l.id, r.id FROM l LEFT OUTER JOIN r ON l.id = r.lid "
      "ORDER BY l.id");
  ASSERT_EQ(res.rows.size(), 3u);
  EXPECT_EQ(res.rows[0][1].AsInt(), 10);
  EXPECT_TRUE(res.rows[1][1].is_null());
  EXPECT_TRUE(res.rows[2][1].is_null());
}

TEST_F(EngineTest, PermissionDeniedForUnauthorizedUser) {
  SetUpBasicTables();
  TableDef* item = server_.db().catalog().GetTable("item");
  item->grants["admin"] = {Privilege::kSelect, Privilege::kInsert,
                           Privilege::kUpdate, Privilege::kDelete};
  server_.InvalidatePlanCache();
  // Default user "dbo" is no longer covered once grants are non-empty.
  auto r = server_.Execute("SELECT i_id FROM item");
  EXPECT_EQ(r.status().code(), StatusCode::kPermissionDenied);
}

TEST_F(EngineTest, BestSellerShapedQuery) {
  SetUpBasicTables();
  Exec("CREATE TABLE order_line (ol_o_id INT, ol_i_id INT, ol_qty INT, "
       "PRIMARY KEY (ol_o_id, ol_i_id))");
  for (int o = 1; o <= 30; ++o) {
    for (int k = 0; k < 3; ++k) {
      int item_id = (o * 7 + k * 11) % 50 + 1;
      Exec("INSERT INTO order_line VALUES (" + std::to_string(o) + ", " +
           std::to_string(item_id) + ", " + std::to_string(k + 1) + ")");
    }
  }
  server_.RecomputeStats();
  QueryResult r = Query(
      "SELECT TOP 5 i.i_id, i.i_title, SUM(ol.ol_qty) total "
      "FROM order_line ol, item i, "
      "(SELECT TOP 20 o_id FROM orders ORDER BY o_date DESC) recent "
      "WHERE ol.ol_o_id = recent.o_id AND i.i_id = ol.ol_i_id "
      "GROUP BY i.i_id, i.i_title ORDER BY total DESC");
  EXPECT_LE(r.rows.size(), 5u);
  ASSERT_GE(r.rows.size(), 1u);
  // Totals are non-increasing.
  for (size_t i = 1; i < r.rows.size(); ++i) {
    EXPECT_GE(r.rows[i - 1][2].AsInt(), r.rows[i][2].AsInt());
  }
}

TEST_F(EngineTest, DropTableIndexProcedure) {
  SetUpBasicTables();
  Exec("CREATE PROCEDURE p1 AS BEGIN SELECT 1 one END");
  Exec("DROP PROCEDURE p1");
  EXPECT_FALSE(server_.Execute("EXEC p1").ok());

  Exec("DROP INDEX item_subject ON item");
  EXPECT_EQ(server_.db().catalog().GetTable("item")->FindIndex("item_subject"),
            -1);
  // Queries still work (via seq scan now).
  QueryResult r = Query("SELECT COUNT(*) FROM item WHERE i_subject = 'history'");
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);

  Exec("DROP TABLE orders");
  EXPECT_FALSE(server_.Execute("SELECT * FROM orders").ok());
}

TEST_F(EngineTest, DropTableWithDependentViewRejected) {
  SetUpBasicTables();
  Exec("CREATE MATERIALIZED VIEW mv AS SELECT i_id FROM item");
  auto r = server_.Execute("DROP TABLE item");
  EXPECT_FALSE(r.ok());
  Exec("DROP MATERIALIZED VIEW mv");
  Exec("DROP TABLE item");
}

TEST_F(EngineTest, GrantRevokeStatements) {
  SetUpBasicTables();
  Exec("GRANT SELECT, INSERT ON item TO alice");
  const TableDef* item = server_.db().catalog().GetTable("item");
  EXPECT_TRUE(Catalog::HasPrivilege(*item, "alice", Privilege::kSelect));
  EXPECT_TRUE(Catalog::HasPrivilege(*item, "alice", Privilege::kInsert));
  EXPECT_FALSE(Catalog::HasPrivilege(*item, "alice", Privilege::kDelete));
  // Grants became non-empty: other users lose public access.
  EXPECT_FALSE(Catalog::HasPrivilege(*item, "bob", Privilege::kSelect));
  Exec("REVOKE INSERT ON item FROM alice");
  EXPECT_FALSE(Catalog::HasPrivilege(*item, "alice", Privilege::kInsert));
  EXPECT_TRUE(Catalog::HasPrivilege(*item, "alice", Privilege::kSelect));
  Exec("GRANT ALL ON item TO admin");
  EXPECT_TRUE(Catalog::HasPrivilege(*item, "admin", Privilege::kDelete));
}

TEST_F(EngineTest, ExplainStatementReturnsPlanText) {
  SetUpBasicTables();
  QueryResult r = Query("EXPLAIN SELECT i_title FROM item WHERE i_id = 7");
  ASSERT_GE(r.rows.size(), 2u);
  std::string all;
  for (const Row& row : r.rows) all += row[0].AsString() + "\n";
  EXPECT_NE(all.find("IndexSeek(item.item_pk)"), std::string::npos) << all;
  EXPECT_NE(all.find("estimated cost"), std::string::npos) << all;
}

TEST_F(EngineTest, MixedResultPlanExecutesCorrectly) {
  // §5.1.1 / Figure 3: a regular matview answers the in-range part and the
  // base table tops up the remainder — allowed only for synchronously
  // maintained views. Build the mixed plan directly from view matching and
  // execute it on both sides of the boundary.
  SetUpBasicTables();
  Exec("CREATE MATERIALIZED VIEW cheap_items AS "
       "SELECT i_id, i_title, i_cost FROM item WHERE i_cost <= 30");
  server_.RecomputeStats();

  auto stmt = ParseSql(
      "SELECT i_id, i_title, i_cost, i_subject FROM item WHERE i_cost <= @p");
  ASSERT_TRUE(stmt.ok());
  Binder binder(&server_.db().catalog(), "dbo");
  auto logical = binder.BindSelect(static_cast<const SelectStmt&>(**stmt));
  ASSERT_TRUE(logical.ok());
  // Locate the Filter(Get) site inside Project(Filter(Get)).
  LogicalOp* filter = (*logical)->children[0].get();
  ASSERT_EQ(filter->kind, LogicalKind::kFilter);
  const auto* get = static_cast<const LogicalGet*>(filter->children[0].get());
  std::vector<const BoundExpr*> conjuncts;
  CollectConjuncts(*static_cast<LogicalFilter*>(filter)->predicate,
                   &conjuncts);
  std::set<int> used = {0, 1, 6};  // i_id, i_title, i_cost... and conjunct col
  auto matches = MatchViews(*get, conjuncts, used, server_.db().catalog(),
                            /*allow_mixed_results=*/true);
  const ViewMatch* with_mixed = nullptr;
  for (const auto& m : matches) {
    if (m.mixed != nullptr) with_mixed = &m;
  }
  ASSERT_NE(with_mixed, nullptr) << "regular matview should offer Figure 3";

  Optimizer optimizer(&server_.db().catalog(), {});
  auto plan = optimizer.Optimize(*with_mixed->mixed);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();

  for (double p : {10.0, 30.0, 60.0}) {
    ParamMap params;
    params["@p"] = Value::Double(p);
    ExecContext ctx;
    ctx.storage = &server_.db();
    ctx.params = &params;
    auto mixed_rows = ExecutePlan(*plan->plan, &ctx);
    ASSERT_TRUE(mixed_rows.ok()) << mixed_rows.status().ToString();
    auto direct = server_.Execute(
        "SELECT COUNT(*) FROM item WHERE i_cost <= " + std::to_string(p));
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(static_cast<int64_t>(mixed_rows->rows.size()),
              direct->rows[0][0].AsInt())
        << "@p = " << p;
  }
}

TEST_F(EngineTest, CaseExpressionSearchedAndSimple) {
  SetUpBasicTables();
  QueryResult r = Query(
      "SELECT i_id, CASE WHEN i_cost < 30 THEN 'cheap' "
      "WHEN i_cost < 60 THEN 'mid' ELSE 'pricey' END AS band "
      "FROM item WHERE i_id IN (1, 25, 45) ORDER BY i_id");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][1].AsString(), "cheap");   // 1.5
  EXPECT_EQ(r.rows[1][1].AsString(), "mid");     // 37.5
  EXPECT_EQ(r.rows[2][1].AsString(), "pricey");  // 67.5
  // Simple CASE form + missing ELSE yields NULL.
  QueryResult simple = Query(
      "SELECT CASE i_subject WHEN 'history' THEN 1 END "
      "FROM item WHERE i_id = 4");
  EXPECT_TRUE(simple.rows[0][0].is_null());  // id 4 is fiction
}

TEST_F(EngineTest, CaseInsideAggregatesAndGroups) {
  SetUpBasicTables();
  // Pivot-style conditional aggregation.
  QueryResult r = Query(
      "SELECT SUM(CASE WHEN i_subject = 'history' THEN 1 ELSE 0 END) h, "
      "SUM(CASE WHEN i_subject = 'fiction' THEN 1 ELSE 0 END) f FROM item");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 10);
  EXPECT_EQ(r.rows[0][1].AsInt(), 40);
}

TEST_F(EngineTest, WhileLoopInProcedure) {
  SetUpBasicTables();
  Exec("CREATE PROCEDURE sum_to(@n INT) AS BEGIN "
       "DECLARE @i INT = 1; DECLARE @total INT = 0; "
       "WHILE @i <= @n BEGIN "
       "  SET @total = @total + @i; "
       "  SET @i = @i + 1 "
       "END; "
       "SELECT @total AS total "
       "END");
  auto r = server_.CallProcedure("sum_to", {Value::Int(100)}, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 5050);
}

TEST_F(EngineTest, WhileLoopDrivingDml) {
  Exec("CREATE TABLE seq_t (n INT PRIMARY KEY)");
  Exec("DECLARE @i INT = 1; "
       "WHILE @i <= 20 BEGIN "
       "  INSERT INTO seq_t VALUES (@i); "
       "  SET @i = @i + 1 "
       "END;");
  QueryResult r = Query("SELECT COUNT(*), SUM(n) FROM seq_t");
  EXPECT_EQ(r.rows[0][0].AsInt(), 20);
  EXPECT_EQ(r.rows[0][1].AsInt(), 210);
}

TEST_F(EngineTest, UnionAllConcatenatesSelects) {
  SetUpBasicTables();
  QueryResult r = Query(
      "SELECT i_id FROM item WHERE i_id <= 2 "
      "UNION ALL SELECT i_id FROM item WHERE i_id = 1 "
      "UNION ALL SELECT o_id FROM orders WHERE o_id = 30");
  ASSERT_EQ(r.rows.size(), 4u);  // duplicates preserved
  EXPECT_EQ(r.rows[3][0].AsInt(), 30);
  // Arity / type mismatches rejected.
  EXPECT_FALSE(
      server_.Execute("SELECT i_id, i_title FROM item UNION ALL "
                      "SELECT o_id FROM orders")
          .ok());
  EXPECT_FALSE(
      server_.Execute("SELECT i_id FROM item UNION ALL "
                      "SELECT i_title FROM item")
          .ok());
}

TEST_F(EngineTest, UnionAllWithAggregatedMembers) {
  SetUpBasicTables();
  QueryResult r = Query(
      "SELECT COUNT(*) FROM item UNION ALL SELECT COUNT(*) FROM orders");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 50);
  EXPECT_EQ(r.rows[1][0].AsInt(), 30);
}

TEST_F(EngineTest, GetDateUsesSimulatedClock) {
  clock_.AdvanceTo(1234.0);
  QueryResult r = Query("SELECT GETDATE()");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1234);
}

}  // namespace
}  // namespace mtcache
