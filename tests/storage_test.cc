#include <gtest/gtest.h>

#include "storage/table.h"

namespace mtcache {
namespace {

class StorageTest : public ::testing::Test {
 protected:
  StorageTest() : txn_mgr_(&log_) {
    def_.name = "t";
    def_.schema = Schema({{"id", TypeId::kInt64, "t", false},
                          {"name", TypeId::kString, "t", true},
                          {"qty", TypeId::kInt64, "t", true}});
    def_.primary_key = {0};
    def_.indexes.push_back(IndexDef{"t_pk", {0}, true});
    def_.indexes.push_back(IndexDef{"t_name", {1}, false});
    table_ = std::make_unique<StoredTable>(&def_, &log_);
  }

  Row MakeRow(int64_t id, const std::string& name, int64_t qty) {
    return Row{Value::Int(id), Value::String(name), Value::Int(qty)};
  }

  TableDef def_;
  LogManager log_;
  TransactionManager txn_mgr_;
  std::unique_ptr<StoredTable> table_;
};

TEST_F(StorageTest, InsertAndReadBack) {
  auto txn = txn_mgr_.Begin();
  auto rid = table_->Insert(MakeRow(1, "ab", 5), txn.get());
  ASSERT_TRUE(rid.ok());
  txn_mgr_.Commit(txn.get(), 0.0);
  EXPECT_EQ(table_->row_count(), 1);
  EXPECT_EQ(table_->heap().Get(*rid)[1].AsString(), "ab");
}

TEST_F(StorageTest, UniqueConstraintViolationRejected) {
  auto txn = txn_mgr_.Begin();
  ASSERT_TRUE(table_->Insert(MakeRow(1, "a", 1), txn.get()).ok());
  auto dup = table_->Insert(MakeRow(1, "b", 2), txn.get());
  EXPECT_EQ(dup.status().code(), StatusCode::kAlreadyExists);
  txn_mgr_.Commit(txn.get(), 0.0);
  EXPECT_EQ(table_->row_count(), 1);
}

TEST_F(StorageTest, NonUniqueIndexAllowsDuplicates) {
  auto txn = txn_mgr_.Begin();
  ASSERT_TRUE(table_->Insert(MakeRow(1, "same", 1), txn.get()).ok());
  ASSERT_TRUE(table_->Insert(MakeRow(2, "same", 2), txn.get()).ok());
  txn_mgr_.Commit(txn.get(), 0.0);
  EXPECT_EQ(table_->row_count(), 2);
}

TEST_F(StorageTest, DeleteMaintainsIndexes) {
  auto txn = txn_mgr_.Begin();
  RowId rid = table_->Insert(MakeRow(1, "a", 1), txn.get()).ConsumeValue();
  ASSERT_TRUE(table_->Delete(rid, txn.get()).ok());
  txn_mgr_.Commit(txn.get(), 0.0);
  EXPECT_EQ(table_->row_count(), 0);
  EXPECT_EQ(table_->index(0).size(), 0);
  EXPECT_EQ(table_->index(1).size(), 0);
  // Re-inserting the same key must now succeed.
  auto txn2 = txn_mgr_.Begin();
  EXPECT_TRUE(table_->Insert(MakeRow(1, "a", 1), txn2.get()).ok());
  txn_mgr_.Commit(txn2.get(), 0.0);
}

TEST_F(StorageTest, UpdateMovesIndexEntries) {
  auto txn = txn_mgr_.Begin();
  RowId rid = table_->Insert(MakeRow(1, "old", 1), txn.get()).ConsumeValue();
  ASSERT_TRUE(table_->Update(rid, MakeRow(1, "new", 2), txn.get()).ok());
  txn_mgr_.Commit(txn.get(), 0.0);
  // Name index should find "new", not "old".
  Row key = {Value::String("new")};
  auto it = table_->index(1).SeekGe(key);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.rowid(), rid);
  Row old_key = {Value::String("old")};
  auto it2 = table_->index(1).SeekGe(old_key);
  EXPECT_FALSE(it2.Valid() &&
               BPlusTree::ComparePrefix(it2.key(), old_key) == 0);
}

TEST_F(StorageTest, RollbackUndoesInsert) {
  auto txn = txn_mgr_.Begin();
  ASSERT_TRUE(table_->Insert(MakeRow(1, "a", 1), txn.get()).ok());
  txn_mgr_.Abort(txn.get());
  EXPECT_EQ(table_->row_count(), 0);
  EXPECT_EQ(table_->index(0).size(), 0);
}

TEST_F(StorageTest, RollbackUndoesDeleteAndUpdate) {
  auto setup = txn_mgr_.Begin();
  RowId r1 = table_->Insert(MakeRow(1, "a", 1), setup.get()).ConsumeValue();
  RowId r2 = table_->Insert(MakeRow(2, "b", 2), setup.get()).ConsumeValue();
  txn_mgr_.Commit(setup.get(), 0.0);

  auto txn = txn_mgr_.Begin();
  ASSERT_TRUE(table_->Delete(r1, txn.get()).ok());
  ASSERT_TRUE(table_->Update(r2, MakeRow(2, "bb", 20), txn.get()).ok());
  txn_mgr_.Abort(txn.get());

  EXPECT_EQ(table_->row_count(), 2);
  EXPECT_EQ(table_->heap().Get(r1)[1].AsString(), "a");
  EXPECT_EQ(table_->heap().Get(r2)[1].AsString(), "b");
  EXPECT_EQ(table_->heap().Get(r2)[2].AsInt(), 2);
}

TEST_F(StorageTest, WalRecordsInsertWithAfterImage) {
  auto txn = txn_mgr_.Begin();
  ASSERT_TRUE(table_->Insert(MakeRow(1, "a", 1), txn.get()).ok());
  txn_mgr_.Commit(txn.get(), 3.5);
  std::vector<LogRecord> recs;
  log_.ReadFrom(0, &recs);
  ASSERT_EQ(recs.size(), 3u);  // begin, insert, commit
  EXPECT_EQ(recs[0].type, LogRecordType::kBegin);
  EXPECT_EQ(recs[1].type, LogRecordType::kInsert);
  EXPECT_EQ(recs[1].table, "t");
  EXPECT_EQ(recs[1].after[0].AsInt(), 1);
  EXPECT_EQ(recs[2].type, LogRecordType::kCommit);
  EXPECT_DOUBLE_EQ(recs[2].commit_time, 3.5);
}

TEST_F(StorageTest, WalUpdateCarriesBothImages) {
  auto txn = txn_mgr_.Begin();
  RowId rid = table_->Insert(MakeRow(1, "a", 1), txn.get()).ConsumeValue();
  ASSERT_TRUE(table_->Update(rid, MakeRow(1, "z", 9), txn.get()).ok());
  txn_mgr_.Commit(txn.get(), 0.0);
  std::vector<LogRecord> recs;
  log_.ReadFrom(0, &recs);
  const LogRecord& upd = recs[2];
  ASSERT_EQ(upd.type, LogRecordType::kUpdate);
  EXPECT_EQ(upd.before[1].AsString(), "a");
  EXPECT_EQ(upd.after[1].AsString(), "z");
}

TEST_F(StorageTest, LogTruncation) {
  auto txn = txn_mgr_.Begin();
  ASSERT_TRUE(table_->Insert(MakeRow(1, "a", 1), txn.get()).ok());
  txn_mgr_.Commit(txn.get(), 0.0);
  Lsn end = log_.next_lsn();
  log_.TruncateBefore(end);
  std::vector<LogRecord> recs;
  log_.ReadFrom(0, &recs);
  EXPECT_TRUE(recs.empty());
}

TEST_F(StorageTest, BuildIndexOnExistingData) {
  auto txn = txn_mgr_.Begin();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(
        table_->Insert(MakeRow(i, "n" + std::to_string(i % 5), i), txn.get())
            .ok());
  }
  txn_mgr_.Commit(txn.get(), 0.0);
  def_.indexes.push_back(IndexDef{"t_qty", {2}, false});
  table_->AddIndex();
  EXPECT_EQ(table_->index(2).size(), 50);
  Row key = {Value::Int(25)};
  auto it = table_->index(2).SeekGe(key);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 25);
}

TEST_F(StorageTest, ComputeStatsBasics) {
  auto txn = txn_mgr_.Begin();
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(
        table_->Insert(MakeRow(i, "n" + std::to_string(i % 10), i % 4),
                       txn.get())
            .ok());
  }
  txn_mgr_.Commit(txn.get(), 0.0);
  table_->RecomputeStats();
  const TableStats& stats = def_.stats;
  EXPECT_DOUBLE_EQ(stats.row_count, 100);
  EXPECT_DOUBLE_EQ(stats.columns[0].min, 1);
  EXPECT_DOUBLE_EQ(stats.columns[0].max, 100);
  EXPECT_DOUBLE_EQ(stats.columns[0].ndv, 100);
  EXPECT_DOUBLE_EQ(stats.columns[2].ndv, 4);
  EXPECT_GT(stats.avg_row_bytes, 0);
}

TEST_F(StorageTest, HistogramBuiltAndEquiDepth) {
  auto txn = txn_mgr_.Begin();
  // Skewed distribution: values i*i for i in 1..200 (dense low, sparse high).
  for (int i = 1; i <= 200; ++i) {
    ASSERT_TRUE(
        table_->Insert(MakeRow(i, "n", int64_t(i) * i), txn.get()).ok());
  }
  txn_mgr_.Commit(txn.get(), 0.0);
  table_->RecomputeStats();
  const ColumnStats& qty = def_.stats.columns[2];
  ASSERT_FALSE(qty.hist_bounds.empty());
  EXPECT_TRUE(std::is_sorted(qty.hist_bounds.begin(), qty.hist_bounds.end()));
  // True selectivity of qty <= 10000 is P(i <= 100) = 0.5; the uniform
  // [1,40000] assumption would say 0.25. The histogram must land near truth.
  double est = qty.RangeLeSelectivity(10000);
  EXPECT_NEAR(est, 0.5, 0.06);
  // Tails behave.
  EXPECT_NEAR(qty.RangeLeSelectivity(50000), 1.0, 1e-9);
  EXPECT_NEAR(qty.RangeGeSelectivity(50000), 0.0, 1e-9);
  EXPECT_NEAR(qty.RangeLeSelectivity(10000) + qty.RangeGeSelectivity(10000),
              1.0, 1e-9);
}

TEST_F(StorageTest, HistogramSkippedForTinyTables) {
  auto txn = txn_mgr_.Begin();
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(table_->Insert(MakeRow(i, "n", i), txn.get()).ok());
  }
  txn_mgr_.Commit(txn.get(), 0.0);
  table_->RecomputeStats();
  EXPECT_TRUE(def_.stats.columns[0].hist_bounds.empty());
  // Uniform fallback still works.
  EXPECT_NEAR(def_.stats.columns[0].RangeLeSelectivity(5), 0.44, 0.07);
}

TEST_F(StorageTest, RowIdReuseAfterDelete) {
  auto txn = txn_mgr_.Begin();
  RowId r1 = table_->Insert(MakeRow(1, "a", 1), txn.get()).ConsumeValue();
  ASSERT_TRUE(table_->Delete(r1, txn.get()).ok());
  RowId r2 = table_->Insert(MakeRow(2, "b", 2), txn.get()).ConsumeValue();
  txn_mgr_.Commit(txn.get(), 0.0);
  EXPECT_EQ(r1, r2);  // slot reused
  EXPECT_EQ(table_->row_count(), 1);
}

}  // namespace
}  // namespace mtcache
