#include <gtest/gtest.h>

#include "engine/database.h"
#include "exec/exec.h"

namespace mtcache {
namespace {

/// Direct physical-operator tests: plans are built by hand and run against a
/// small database, checking iterator semantics the SQL-level tests cannot
/// isolate (startup predicates, inclusive/exclusive index bounds, NULL join
/// keys, order preservation).
class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : db_("exec_test_db") {}

  void SetUp() override {
    TableDef def;
    def.name = "nums";
    def.schema = Schema({{"k", TypeId::kInt64, "nums", false},
                         {"v", TypeId::kString, "nums", true},
                         {"grp", TypeId::kInt64, "nums", true}});
    def.primary_key = {0};
    def.indexes.push_back(IndexDef{"nums_pk", {0}, true});
    def.indexes.push_back(IndexDef{"nums_grp", {2}, false});
    ASSERT_TRUE(db_.CreateTable(std::move(def)).ok());
    StoredTable* table = db_.GetStoredTable("nums");
    auto txn = db_.txn_manager().Begin();
    for (int i = 1; i <= 10; ++i) {
      Row row = {Value::Int(i), Value::String("v" + std::to_string(i)),
                 i % 3 == 0 ? Value::Null() : Value::Int(i % 3)};
      ASSERT_TRUE(table->Insert(row, txn.get()).ok());
    }
    db_.txn_manager().Commit(txn.get(), 0.0);
    table->RecomputeStats();
  }

  Schema NumsSchema() { return db_.catalog().GetTable("nums")->schema; }

  PhysicalPtr Scan() {
    auto scan = std::make_unique<PhysSeqScan>();
    scan->def = db_.catalog().GetTable("nums");
    scan->schema = NumsSchema();
    return scan;
  }

  StatusOr<QueryResult> Run(const PhysicalOp& plan, ExecStats* stats = nullptr,
                            const ParamMap& params = {}) {
    ExecContext ctx;
    ctx.storage = &db_;
    ctx.params = &params;
    ctx.stats = stats;
    return ExecutePlan(plan, &ctx);
  }

  Database db_;
};

TEST_F(ExecTest, SeqScanReturnsAllLiveRows) {
  PhysicalPtr scan = Scan();
  auto r = Run(*scan);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 10u);
}

TEST_F(ExecTest, StartupFilterTrueRunsChild) {
  auto filter = std::make_unique<PhysFilter>();
  filter->startup = true;
  filter->predicate = std::make_unique<BoundBinary>(
      BinaryOp::kLe, std::make_unique<BoundParam>("@p", TypeId::kNull),
      std::make_unique<BoundLiteral>(Value::Int(100)), TypeId::kBool);
  filter->schema = NumsSchema();
  filter->children.push_back(Scan());
  ParamMap params;
  params["@p"] = Value::Int(50);
  ExecStats stats;
  auto r = Run(*filter, &stats, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 10u);
  EXPECT_GT(stats.local_cost, 5) << "child scan ran";
}

TEST_F(ExecTest, StartupFilterFalseNeverOpensChild) {
  auto filter = std::make_unique<PhysFilter>();
  filter->startup = true;
  filter->predicate = std::make_unique<BoundBinary>(
      BinaryOp::kLe, std::make_unique<BoundParam>("@p", TypeId::kNull),
      std::make_unique<BoundLiteral>(Value::Int(100)), TypeId::kBool);
  filter->schema = NumsSchema();
  filter->children.push_back(Scan());
  ParamMap params;
  params["@p"] = Value::Int(500);
  ExecStats stats;
  auto r = Run(*filter, &stats, params);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
  // Only the startup evaluation was charged — no scan rows.
  EXPECT_LT(stats.local_cost, 5) << "child must not be opened (§5.1)";
}

PhysicalPtr MakeSeek(const TableDef* def, int index, BExprPtr lo, bool lo_inc,
                     BExprPtr hi, bool hi_inc) {
  auto seek = std::make_unique<PhysIndexSeek>();
  seek->def = def;
  seek->index_ordinal = index;
  seek->lo = std::move(lo);
  seek->lo_inclusive = lo_inc;
  seek->hi = std::move(hi);
  seek->hi_inclusive = hi_inc;
  seek->schema = def->schema;
  return seek;
}

BExprPtr IntLit(int64_t v) {
  return std::make_unique<BoundLiteral>(Value::Int(v));
}

TEST_F(ExecTest, IndexSeekRangeBoundsInclusiveExclusive) {
  const TableDef* def = db_.catalog().GetTable("nums");
  struct Case {
    bool lo_inc, hi_inc;
    size_t expected;  // k in 3..7 with varying inclusivity
  } cases[] = {{true, true, 5}, {false, true, 4}, {true, false, 4},
               {false, false, 3}};
  for (const Case& c : cases) {
    PhysicalPtr seek =
        MakeSeek(def, 0, IntLit(3), c.lo_inc, IntLit(7), c.hi_inc);
    auto r = Run(*seek);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows.size(), c.expected)
        << "lo_inc=" << c.lo_inc << " hi_inc=" << c.hi_inc;
  }
}

TEST_F(ExecTest, IndexSeekEqualityPrefix) {
  const TableDef* def = db_.catalog().GetTable("nums");
  auto seek = std::make_unique<PhysIndexSeek>();
  seek->def = def;
  seek->index_ordinal = 1;  // nums_grp
  seek->eq_prefix.push_back(IntLit(1));
  seek->schema = def->schema;
  auto r = Run(*seek);
  ASSERT_TRUE(r.ok());
  // grp = 1 for k in {1,4,7,10}.
  EXPECT_EQ(r->rows.size(), 4u);
}

TEST_F(ExecTest, IndexSeekNullKeyMatchesNothing) {
  const TableDef* def = db_.catalog().GetTable("nums");
  auto seek = std::make_unique<PhysIndexSeek>();
  seek->def = def;
  seek->index_ordinal = 1;
  seek->eq_prefix.push_back(
      std::make_unique<BoundLiteral>(Value::TypedNull(TypeId::kInt64)));
  seek->schema = def->schema;
  auto r = Run(*seek);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows.empty());
}

TEST_F(ExecTest, HashJoinSkipsNullKeysInner) {
  // Self-join on grp: rows with NULL grp (k = 3,6,9) join nothing.
  auto join = std::make_unique<PhysHashJoin>();
  join->join_kind = JoinKind::kInner;
  join->probe_keys = {2};
  join->build_keys = {2};
  join->schema = Schema::Concat(NumsSchema(), NumsSchema());
  join->children.push_back(Scan());
  join->children.push_back(Scan());
  auto r = Run(*join);
  ASSERT_TRUE(r.ok());
  // grp=1: 4 rows -> 16 pairs; grp=2: 3 rows -> 9 pairs; NULLs: none.
  EXPECT_EQ(r->rows.size(), 25u);
}

TEST_F(ExecTest, HashJoinLeftOuterNullExtendsUnmatchedAndNullKeys) {
  auto join = std::make_unique<PhysHashJoin>();
  join->join_kind = JoinKind::kLeftOuter;
  join->probe_keys = {2};
  join->build_keys = {0};  // grp vs k: grp values 1,2 match k=1,2
  join->schema = Schema::Concat(NumsSchema(), NumsSchema());
  join->children.push_back(Scan());
  join->children.push_back(Scan());
  auto r = Run(*join);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 10u);  // every probe row appears exactly once
  int null_extended = 0;
  for (const Row& row : r->rows) {
    if (row[3].is_null()) ++null_extended;  // right side k is null
  }
  EXPECT_EQ(null_extended, 3) << "the three NULL-grp rows null-extend";
}

TEST_F(ExecTest, NLJoinCrossProduct) {
  auto join = std::make_unique<PhysNLJoin>();
  join->join_kind = JoinKind::kInner;
  join->schema = Schema::Concat(NumsSchema(), NumsSchema());
  join->children.push_back(Scan());
  join->children.push_back(Scan());
  auto r = Run(*join);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 100u);
}

TEST_F(ExecTest, HashAggregateGroupsWithNullGroup) {
  auto agg = std::make_unique<PhysHashAggregate>();
  agg->group_by.push_back(
      std::make_unique<BoundColumnRef>(2, TypeId::kInt64, "grp"));
  AggItem count;
  count.func = AggFunc::kCountStar;
  agg->aggs.push_back(std::move(count));
  AggItem sum;
  sum.func = AggFunc::kSum;
  sum.arg = std::make_unique<BoundColumnRef>(0, TypeId::kInt64, "k");
  agg->aggs.push_back(std::move(sum));
  agg->schema = Schema({{"grp", TypeId::kInt64, "", true},
                        {"cnt", TypeId::kInt64, "", false},
                        {"sum", TypeId::kInt64, "", true}});
  agg->children.push_back(Scan());
  auto r = Run(*agg);
  ASSERT_TRUE(r.ok());
  // Groups: 1, 2, NULL (NULLs group together, SQL GROUP BY semantics).
  EXPECT_EQ(r->rows.size(), 3u);
  int64_t total = 0;
  for (const Row& row : r->rows) total += row[1].AsInt();
  EXPECT_EQ(total, 10);
}

TEST_F(ExecTest, AggregatesIgnoreNullInputs) {
  auto agg = std::make_unique<PhysHashAggregate>();
  AggItem count;
  count.func = AggFunc::kCount;
  count.arg = std::make_unique<BoundColumnRef>(2, TypeId::kInt64, "grp");
  agg->aggs.push_back(std::move(count));
  AggItem min;
  min.func = AggFunc::kMin;
  min.arg = std::make_unique<BoundColumnRef>(2, TypeId::kInt64, "grp");
  agg->aggs.push_back(std::move(min));
  agg->schema = Schema({{"cnt", TypeId::kInt64, "", false},
                        {"mn", TypeId::kInt64, "", true}});
  agg->children.push_back(Scan());
  auto r = Run(*agg);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 7);  // 10 rows - 3 NULLs
  EXPECT_EQ(r->rows[0][1].AsInt(), 1);
}

TEST_F(ExecTest, SortDescThenLimit) {
  auto sort = std::make_unique<PhysSort>();
  SortKey key;
  key.expr = std::make_unique<BoundColumnRef>(0, TypeId::kInt64, "k");
  key.desc = true;
  sort->keys.push_back(std::move(key));
  sort->schema = NumsSchema();
  sort->children.push_back(Scan());

  auto limit = std::make_unique<PhysLimit>();
  limit->limit = 3;
  limit->schema = NumsSchema();
  limit->children.push_back(std::move(sort));

  auto r = Run(*limit);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 10);
  EXPECT_EQ(r->rows[2][0].AsInt(), 8);
}

TEST_F(ExecTest, SortPutsNullsFirst) {
  auto sort = std::make_unique<PhysSort>();
  SortKey key;
  key.expr = std::make_unique<BoundColumnRef>(2, TypeId::kInt64, "grp");
  sort->keys.push_back(std::move(key));
  sort->schema = NumsSchema();
  sort->children.push_back(Scan());
  auto r = Run(*sort);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows[0][2].is_null());
  EXPECT_TRUE(r->rows[2][2].is_null());
  EXPECT_FALSE(r->rows[3][2].is_null());
}

TEST_F(ExecTest, DistinctPreservesArrivalOrder) {
  auto project = std::make_unique<PhysProject>();
  project->exprs.push_back(
      std::make_unique<BoundColumnRef>(2, TypeId::kInt64, "grp"));
  project->schema = Schema({{"grp", TypeId::kInt64, "", true}});
  project->children.push_back(Scan());
  auto distinct = std::make_unique<PhysDistinct>();
  distinct->schema = project->schema;
  distinct->children.push_back(std::move(project));
  auto r = Run(*distinct);
  ASSERT_TRUE(r.ok());
  // Arrival order of first occurrences: grp(k=1)=1, grp(k=2)=2, grp(k=3)=NULL.
  ASSERT_EQ(r->rows.size(), 3u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
  EXPECT_EQ(r->rows[1][0].AsInt(), 2);
  EXPECT_TRUE(r->rows[2][0].is_null());
}

TEST_F(ExecTest, UnionAllConcatenatesInChildOrder) {
  auto mk_filtered = [&](int64_t k) {
    auto filter = std::make_unique<PhysFilter>();
    filter->predicate = std::make_unique<BoundBinary>(
        BinaryOp::kEq, std::make_unique<BoundColumnRef>(0, TypeId::kInt64, "k"),
        IntLit(k), TypeId::kBool);
    filter->schema = NumsSchema();
    filter->children.push_back(Scan());
    return filter;
  };
  auto u = std::make_unique<PhysUnionAll>();
  u->schema = NumsSchema();
  u->children.push_back(mk_filtered(9));
  u->children.push_back(mk_filtered(2));
  auto r = Run(*u);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 9);
  EXPECT_EQ(r->rows[1][0].AsInt(), 2);
}

TEST_F(ExecTest, IndexNLJoinProjectionAndResidual) {
  // Join nums with itself through the pk index: outer grp -> inner k,
  // projecting the inner side to (v) only.
  auto join = std::make_unique<PhysIndexNLJoin>();
  join->join_kind = JoinKind::kInner;
  join->inner_def = db_.catalog().GetTable("nums");
  join->index_ordinal = 0;
  join->outer_key = 2;  // grp
  join->inner_projection.push_back(
      std::make_unique<BoundColumnRef>(1, TypeId::kString, "v"));
  Schema inner_schema({{"v", TypeId::kString, "", true}});
  join->schema = Schema::Concat(NumsSchema(), inner_schema);
  join->children.push_back(Scan());
  auto r = Run(*join);
  ASSERT_TRUE(r.ok());
  // 7 outer rows with non-NULL grp, each matching exactly one inner pk row.
  ASSERT_EQ(r->rows.size(), 7u);
  for (const Row& row : r->rows) {
    int64_t grp = row[2].AsInt();
    EXPECT_EQ(row[3].AsString(), "v" + std::to_string(grp));
  }
}

TEST_F(ExecTest, CostAccountingMatchesOperatorConstants) {
  ExecStats stats;
  PhysicalPtr scan = Scan();
  auto r = Run(*scan, &stats);
  ASSERT_TRUE(r.ok());
  // 10 live slots scanned at kSeqRowCost each.
  EXPECT_DOUBLE_EQ(stats.local_cost, 10.0);
}

}  // namespace
}  // namespace mtcache
