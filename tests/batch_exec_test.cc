// Differential and memory-regression tests for the batched executor path.
//
// The executor has two drain modes sharing one operator tree: the
// row-at-a-time Volcano path (the semantics oracle, ExecContext::use_batch =
// false) and the batched path (the default). Every query here runs on two
// servers that differ only in that flag and must produce identical results —
// first over a hand-written corpus that exercises every operator with a
// native NextBatch, then over a seeded stream of randomly generated queries.
//
// The memory test pins down the copy-free snapshot scan: a 1%-selective
// scan over a 100k-row table with ~100-byte rows must report an operator
// memory high-water of O(rows * sizeof(pointer)), not O(table payload),
// through sys.dm_exec_query_profiles.

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/server.h"

namespace mtcache {
namespace {

// Stringifies one result row; NULLs render distinctly from empty strings.
std::string RowKey(const Row& row) {
  std::string key;
  for (const Value& v : row) {
    key += v.is_null() ? "<null>" : v.ToString();
    key += '\x1f';
  }
  return key;
}

// Canonical form of a result: the row-key sequence, sorted unless the query
// guarantees an order. Schema names ride along so a projection mismatch
// fails even when the values happen to collide.
std::vector<std::string> Canon(const QueryResult& r, bool ordered) {
  std::vector<std::string> keys;
  std::string header;
  for (int i = 0; i < r.schema.num_columns(); ++i) {
    header += r.schema.column(i).name + "|";
  }
  keys.push_back(header);
  std::vector<std::string> rows;
  rows.reserve(r.rows.size());
  for (const Row& row : r.rows) rows.push_back(RowKey(row));
  if (!ordered) std::sort(rows.begin(), rows.end());
  keys.insert(keys.end(), rows.begin(), rows.end());
  return keys;
}

class BatchDiffTest : public ::testing::Test {
 protected:
  BatchDiffTest()
      : batch_(MakeOptions(true)), row_(MakeOptions(false)) {}

  static ServerOptions MakeOptions(bool use_batch) {
    ServerOptions opts;
    opts.name = use_batch ? "batch" : "row";
    opts.use_batch_execution = use_batch;
    return opts;
  }

  void SetUp() override {
    Load(&batch_);
    Load(&row_);
  }

  // ~500 item rows and ~800 orders rows, loaded through the storage layer
  // (the INSERT path would spend the fixture parsing). Deterministic
  // contents, including NULLs in nullable columns.
  static void Load(Server* server) {
    ASSERT_TRUE(server
                    ->ExecuteScript(
                        "CREATE TABLE item (i_id INT PRIMARY KEY, "
                        "i_subject VARCHAR(16), i_cost FLOAT, i_qty INT); "
                        "CREATE INDEX item_qty ON item (i_qty); "
                        "CREATE TABLE orders (o_id INT PRIMARY KEY, "
                        "o_item INT, o_total FLOAT)")
                    .ok());
    static const char* kSubjects[] = {"history", "poetry", "travel", "crime"};
    StoredTable* item = server->db().GetStoredTable("item");
    StoredTable* orders = server->db().GetStoredTable("orders");
    auto txn = server->db().txn_manager().Begin();
    for (int i = 1; i <= 500; ++i) {
      Row r = {Value::Int(i), Value::String(kSubjects[i % 4]),
               i % 11 == 0 ? Value::Null() : Value::Double((i * 7) % 100),
               i % 13 == 0 ? Value::Null() : Value::Int(i % 20)};
      ASSERT_TRUE(item->Insert(r, txn.get()).ok());
    }
    for (int o = 1; o <= 800; ++o) {
      // o_item deliberately overshoots [1, 500] so joins see dangling keys.
      Row r = {Value::Int(o), Value::Int((o * 3) % 600),
               Value::Double((o % 50) * 1.25)};
      ASSERT_TRUE(orders->Insert(r, txn.get()).ok());
    }
    server->db().txn_manager().Commit(txn.get(), 0.0);
    server->RecomputeStats();
  }

  // Runs `sql` on both servers and requires identical results. `ordered` =
  // the query pins its output order, so the sequence must match exactly.
  void ExpectSame(const std::string& sql, bool ordered = false) {
    auto b = batch_.Execute(sql);
    auto r = row_.Execute(sql);
    ASSERT_EQ(b.ok(), r.ok()) << sql << "\nbatch: "
                              << (b.ok() ? "ok" : b.status().ToString())
                              << "\nrow:   "
                              << (r.ok() ? "ok" : r.status().ToString());
    if (!b.ok()) return;  // both failed identically: fine for random corpus
    EXPECT_EQ(Canon(*b, ordered), Canon(*r, ordered)) << sql;
    EXPECT_GE(b->rows.size(), 0u);
  }

  Server batch_;
  Server row_;
};

TEST_F(BatchDiffTest, OperatorCorpusMatchesRowPath) {
  // Scans, predicate/projection pushdown, index seeks with residuals.
  ExpectSame("SELECT * FROM item");
  ExpectSame("SELECT i_id, i_cost FROM item WHERE i_cost < 25.0");
  ExpectSame("SELECT i_id FROM item WHERE i_cost >= 90.0 AND i_qty < 10");
  ExpectSame("SELECT i_subject FROM item WHERE i_id = 37");
  ExpectSame("SELECT i_id, i_subject FROM item WHERE i_id > 100 AND "
             "i_id < 120");
  ExpectSame("SELECT i_id FROM item WHERE i_id > 400 AND i_cost < 50.0");
  ExpectSame("SELECT i_id FROM item WHERE i_qty = 7");
  ExpectSame("SELECT i_id FROM item WHERE i_qty = 7 AND i_cost > 30.0");
  ExpectSame("SELECT i_id FROM item WHERE i_cost IS NULL");
  ExpectSame("SELECT i_id FROM item WHERE i_qty IS NOT NULL AND i_qty > 15");
  ExpectSame("SELECT i_id FROM item WHERE i_subject LIKE 'hist%'");
  // Joins (hash, index-nested-loop, outer) across batch boundaries.
  ExpectSame("SELECT o.o_id, i.i_subject FROM orders o JOIN item i "
             "ON o.o_item = i.i_id");
  ExpectSame("SELECT o.o_id, i.i_cost FROM orders o JOIN item i "
             "ON o.o_item = i.i_id WHERE i.i_cost > 50.0 AND o.o_total < 20.0");
  ExpectSame("SELECT i.i_id, o.o_total FROM item i LEFT OUTER JOIN orders o "
             "ON i.i_id = o.o_item WHERE i.i_id < 50");
  // Aggregation, distinct, sort/limit, unions, subqueries.
  ExpectSame("SELECT i_subject, COUNT(*) cnt, SUM(i_cost) s, AVG(i_qty) a "
             "FROM item GROUP BY i_subject");
  ExpectSame("SELECT COUNT(*), MIN(i_cost), MAX(i_cost) FROM item");
  ExpectSame("SELECT DISTINCT i_subject FROM item");
  ExpectSame("SELECT DISTINCT i_qty FROM item WHERE i_cost > 60.0");
  ExpectSame("SELECT TOP 7 i_id, i_cost FROM item ORDER BY i_cost DESC, i_id",
             /*ordered=*/true);
  ExpectSame("SELECT i_id FROM item ORDER BY i_id", /*ordered=*/true);
  ExpectSame("SELECT i_id FROM item WHERE i_id < 5 UNION ALL "
             "SELECT o_id FROM orders WHERE o_id < 5");
  ExpectSame("SELECT COUNT(*) FROM (SELECT TOP 50 o_id FROM orders "
             "ORDER BY o_total DESC) recent");
  // DMV scan with a pushed-down filter applied at materialization.
  ExpectSame("SELECT name FROM sys.dm_mtcache_views WHERE kind = 'table'");
}

// One batch is 1024 rows: a 500-row table fits in one, an 800-row table and
// every join fan-out crosses the boundary only via multi-table plans above.
// Force multi-batch scans explicitly through a cross-join-sized UNION chain.
TEST_F(BatchDiffTest, MultiBatchResultsMatch) {
  ExpectSame("SELECT i.i_id, o.o_id FROM item i JOIN orders o "
             "ON i.i_qty = o.o_item WHERE i.i_qty < 20");
  ExpectSame("SELECT o_id FROM orders UNION ALL SELECT o_id FROM orders "
             "UNION ALL SELECT i_id FROM item");
}

// 100 seeded random queries over templates that compose projection, range
// and equality predicates (index-seekable and not), joins, aggregates,
// DISTINCT, and ORDER BY ... TOP. The row path is the oracle.
TEST_F(BatchDiffTest, RandomQueryCorpusMatchesRowPath) {
  std::mt19937 rng(424242);
  auto pick = [&rng](int lo, int hi) {
    return std::uniform_int_distribution<int>(lo, hi)(rng);
  };
  static const char* kCmp[] = {"<", "<=", ">", ">=", "="};
  for (int q = 0; q < 100; ++q) {
    std::string sql;
    bool ordered = false;
    switch (pick(0, 5)) {
      case 0: {  // filtered projection over item
        sql = "SELECT i_id, i_cost FROM item WHERE i_cost " +
              std::string(kCmp[pick(0, 4)]) + " " +
              std::to_string(pick(0, 99)) + ".0";
        break;
      }
      case 1: {  // index-seekable range with residual
        int lo = pick(0, 400);
        sql = "SELECT i_id, i_qty FROM item WHERE i_id > " +
              std::to_string(lo) + " AND i_id <= " +
              std::to_string(lo + pick(1, 150)) + " AND i_qty " +
              kCmp[pick(0, 4)] + " " + std::to_string(pick(0, 19));
        break;
      }
      case 2: {  // join with per-side predicates
        sql = "SELECT o.o_id, i.i_subject FROM orders o JOIN item i "
              "ON o.o_item = i.i_id WHERE o.o_total < " +
              std::to_string(pick(1, 62)) + ".0 AND i.i_cost > " +
              std::to_string(pick(0, 80)) + ".0";
        break;
      }
      case 3: {  // grouped aggregate over a filtered scan
        sql = "SELECT i_subject, COUNT(*) c, SUM(i_cost) s FROM item "
              "WHERE i_qty " + std::string(kCmp[pick(0, 4)]) + " " +
              std::to_string(pick(0, 19)) + " GROUP BY i_subject";
        break;
      }
      case 4: {  // distinct projection
        sql = "SELECT DISTINCT i_qty FROM item WHERE i_cost < " +
              std::to_string(pick(1, 99)) + ".0";
        break;
      }
      default: {  // sorted + limited
        sql = "SELECT TOP " + std::to_string(pick(1, 40)) +
              " o_id, o_total FROM orders WHERE o_total > " +
              std::to_string(pick(0, 40)) + ".0 ORDER BY o_total DESC, o_id";
        ordered = true;
        break;
      }
    }
    ExpectSame(sql, ordered);
    if (HasFatalFailure()) return;
  }
}

// DML between executions must be visible to both paths identically (each
// Execute opens a fresh snapshot).
TEST_F(BatchDiffTest, ResultsTrackDmlOnBothPaths) {
  for (Server* s : {&batch_, &row_}) {
    ASSERT_TRUE(s->Execute("UPDATE item SET i_cost = 999.0 WHERE i_id <= 3")
                    .ok());
    ASSERT_TRUE(s->Execute("DELETE FROM orders WHERE o_id > 790").ok());
    ASSERT_TRUE(s->Execute("INSERT INTO item VALUES (1001, 'new', 1.0, 1)")
                    .ok());
  }
  ExpectSame("SELECT i_id FROM item WHERE i_cost > 500.0");
  ExpectSame("SELECT COUNT(*) FROM orders");
  ExpectSame("SELECT o.o_id FROM orders o JOIN item i ON o.o_item = i.i_id "
             "WHERE i.i_cost > 500.0");
}

// ---------------------------------------------------------------------------
// Memory regression: copy-free snapshot scans.
// ---------------------------------------------------------------------------

TEST(BatchScanMemoryTest, SelectiveScanPeaksFarBelowTablePayload) {
  constexpr int64_t kRows = 100000;
  Server server(ServerOptions{});
  ASSERT_TRUE(server
                  .ExecuteScript("CREATE TABLE big (id INT PRIMARY KEY, "
                                 "a INT, pad VARCHAR(100))")
                  .ok());
  StoredTable* big = server.db().GetStoredTable("big");
  const std::string pad(96, 'x');
  auto txn = server.db().txn_manager().Begin();
  for (int64_t i = 0; i < kRows; ++i) {
    Row row = {Value::Int(i), Value::Int(i % 10000), Value::String(pad)};
    ASSERT_TRUE(big->Insert(row, txn.get()).ok());
  }
  server.db().txn_manager().Commit(txn.get(), 0.0);
  server.RecomputeStats();

  server.metrics().set_profiling_enabled(true);
  const std::string sql = "SELECT id, a FROM big WHERE a < 100";  // 1% sel
  auto r = server.Execute(sql);
  server.metrics().set_profiling_enabled(false);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 1000u);

  // Per-operator high-water through the DMV, as a monitoring client would
  // read it. The scan holds kRows refcounted row pointers; with the
  // pre-snapshot executor it held kRows full copies of ~130-byte rows, an
  // order of magnitude more.
  auto peak = server.Execute(
      "SELECT MAX(mem_peak_bytes) FROM sys.dm_exec_query_profiles "
      "WHERE statement = '" + sql + "'");
  ASSERT_TRUE(peak.ok()) << peak.status().ToString();
  ASSERT_EQ(peak->rows.size(), 1u);
  int64_t peak_bytes = peak->rows[0][0].AsInt();
  int64_t ptr_snapshot_bytes = kRows * static_cast<int64_t>(sizeof(RowPtr));
  int64_t payload_floor = kRows * 100;  // 96-byte pad alone, sans overhead
  EXPECT_GT(peak_bytes, 0);
  EXPECT_LE(peak_bytes, 2 * ptr_snapshot_bytes);
  EXPECT_LT(peak_bytes, payload_floor / 2);
}

}  // namespace
}  // namespace mtcache
