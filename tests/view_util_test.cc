#include <gtest/gtest.h>

#include "engine/view_util.h"
#include "sql/parser.h"

namespace mtcache {
namespace {

class ViewUtilTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_.name = "customer";
    base_.schema = Schema({{"cid", TypeId::kInt64, "customer", false},
                           {"cname", TypeId::kString, "customer", true},
                           {"region", TypeId::kString, "customer", true},
                           {"balance", TypeId::kDouble, "customer", true}});
    base_.primary_key = {0};
    base_.indexes.push_back(IndexDef{"customer_pk", {0}, true});
    base_.stats.row_count = 1000;
    base_.stats.columns.resize(4);
    base_.stats.columns[0] = {1, 1000, 1000, 0, {}};
    base_.stats.columns[1] = {0, 1, 900, 0, {}};
    base_.stats.columns[2] = {0, 1, 4, 0, {}};
    base_.stats.columns[3] = {0, 500, 800, 0, {}};
  }

  StatusOr<SelectProjectDef> Build(const std::string& select_sql) {
    auto stmt = ParseSql(select_sql);
    if (!stmt.ok()) return stmt.status();
    return BuildSelectProjectDef(static_cast<const SelectStmt&>(**stmt),
                                 base_);
  }

  TableDef base_;
};

TEST_F(ViewUtilTest, LowersSelectProjectWithConjunctivePredicates) {
  auto def = Build(
      "SELECT cid, cname FROM customer WHERE cid <= 100 AND region = 'east'");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  EXPECT_EQ(def->base_table, "customer");
  EXPECT_EQ(def->columns, (std::vector<std::string>{"cid", "cname"}));
  ASSERT_EQ(def->predicates.size(), 2u);
  EXPECT_EQ(def->predicates[0].column, "cid");
  EXPECT_EQ(def->predicates[0].op, CompareOp::kLe);
  EXPECT_EQ(def->predicates[1].constant.AsString(), "east");
}

TEST_F(ViewUtilTest, StarProjectsEverything) {
  auto def = Build("SELECT * FROM customer");
  ASSERT_TRUE(def.ok());
  EXPECT_EQ(def->columns.size(), 4u);
}

TEST_F(ViewUtilTest, FlippedComparisonNormalized) {
  auto def = Build("SELECT cid FROM customer WHERE 100 >= cid");
  ASSERT_TRUE(def.ok()) << def.status().ToString();
  ASSERT_EQ(def->predicates.size(), 1u);
  EXPECT_EQ(def->predicates[0].column, "cid");
  EXPECT_EQ(def->predicates[0].op, CompareOp::kLe);
}

TEST_F(ViewUtilTest, RejectsNonSelectProjectShapes) {
  EXPECT_FALSE(Build("SELECT cid, COUNT(*) FROM customer GROUP BY cid").ok());
  EXPECT_FALSE(Build("SELECT TOP 5 cid FROM customer").ok());
  EXPECT_FALSE(Build("SELECT DISTINCT region FROM customer").ok());
  EXPECT_FALSE(Build("SELECT cid FROM customer ORDER BY cid").ok());
  EXPECT_FALSE(Build("SELECT cid + 1 FROM customer").ok());
  EXPECT_FALSE(Build("SELECT cid FROM customer WHERE cid <= 10 OR cid > 90").ok());
  EXPECT_FALSE(Build("SELECT cid FROM customer WHERE cname LIKE 'a%'").ok());
  EXPECT_FALSE(Build("SELECT cid FROM customer WHERE cid <= @p").ok());
  EXPECT_FALSE(Build("SELECT zzz FROM customer").ok());
}

TEST_F(ViewUtilTest, ViewTableDefRequiresPrimaryKey) {
  auto def = Build("SELECT cname, region FROM customer");  // no cid
  ASSERT_TRUE(def.ok());
  auto view = MakeViewTableDef("v", base_, *def, RelationKind::kCachedView);
  EXPECT_FALSE(view.ok()) << "pk column missing must be rejected";
  EXPECT_NE(view.status().message().find("primary key"), std::string::npos);
}

TEST_F(ViewUtilTest, ViewTableDefMapsKeyAndBuildsIndex) {
  auto def = Build("SELECT cname, cid FROM customer WHERE cid <= 100");
  ASSERT_TRUE(def.ok());
  auto view = MakeViewTableDef("v", base_, *def, RelationKind::kCachedView);
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view->kind, RelationKind::kCachedView);
  // cid is the SECOND view column.
  EXPECT_EQ(view->primary_key, (std::vector<int>{1}));
  ASSERT_EQ(view->indexes.size(), 1u);
  EXPECT_TRUE(view->indexes[0].unique);
  EXPECT_EQ(view->indexes[0].key_columns, (std::vector<int>{1}));
  EXPECT_EQ(view->schema.column(0).name, "cname");
  EXPECT_EQ(view->schema.column(0).type, TypeId::kString);
}

TEST_F(ViewUtilTest, DerivedStatsScaleWithPredicateSelectivity) {
  auto def = Build("SELECT cid, cname FROM customer WHERE cid <= 250");
  ASSERT_TRUE(def.ok());
  TableStats stats = DeriveViewStats(base_, *def);
  EXPECT_NEAR(stats.row_count, 250, 30);
  ASSERT_EQ(stats.columns.size(), 2u);
  // NDV capped by the derived row count.
  EXPECT_LE(stats.columns[0].ndv, stats.row_count + 1);

  auto eq = Build("SELECT cid, region FROM customer WHERE region = 'east'");
  ASSERT_TRUE(eq.ok());
  TableStats eq_stats = DeriveViewStats(base_, *eq);
  EXPECT_NEAR(eq_stats.row_count, 250, 30);  // ndv(region)=4
}

}  // namespace
}  // namespace mtcache
