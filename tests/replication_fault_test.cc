#include <gtest/gtest.h>

#include "check/consistency.h"
#include "common/random.h"
#include "mtcache/mtcache.h"
#include "repl/fault.h"
#include "sim/des.h"
#include "tpcw/cache_setup.h"
#include "tpcw/datagen.h"
#include "tpcw/procs.h"
#include "tpcw/schema.h"

namespace mtcache {
namespace {

/// A pipeline round under fault injection either succeeds or dies on an
/// injected crash; anything else is a real bug.
void RunRoundTolerantly(ReplicationSystem* repl) {
  Status status = repl->RunOnce(nullptr, nullptr);
  ASSERT_TRUE(status.ok() || status.code() == StatusCode::kUnavailable)
      << status.ToString();
}

// ---------------------------------------------------------------------------
// Focused crash/recovery scenarios on the small customer fixture.
// ---------------------------------------------------------------------------

class ReplicationFaultTest : public ::testing::Test {
 protected:
  ReplicationFaultTest()
      : backend_(ServerOptions{"backend", "dbo", {}}, &clock_, &links_),
        cache_(ServerOptions{"cache", "dbo", {}}, &clock_, &links_),
        repl_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(backend_
                    .ExecuteScript(
                        "CREATE TABLE customer (c_id INT PRIMARY KEY, "
                        "c_name VARCHAR(30), c_region VARCHAR(10), "
                        "c_balance FLOAT)")
                    .ok());
    ASSERT_TRUE(cache_
                    .ExecuteScript(
                        "CREATE TABLE customer_east (c_id INT PRIMARY KEY, "
                        "c_name VARCHAR(30))")
                    .ok());
    Article article;
    article.name = "customer_east_article";
    article.def.base_table = "customer";
    article.def.columns = {"c_id", "c_name"};
    article.def.predicates = {
        {"c_region", CompareOp::kEq, Value::String("east")}};
    auto sub = repl_.Subscribe(&backend_, article, &cache_, "customer_east");
    ASSERT_TRUE(sub.ok()) << sub.status().ToString();
    repl_.set_fault_plan(&plan_);
  }

  void InsertEast(int id) {
    ASSERT_TRUE(backend_
                    .ExecuteScript("INSERT INTO customer VALUES (" +
                                   std::to_string(id) + ", 'c" +
                                   std::to_string(id) + "', 'east', 0.0)")
                    .ok());
  }

  int64_t CountCacheRows() {
    auto r = cache_.Execute("SELECT COUNT(*) FROM customer_east");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->rows[0][0].AsInt();
  }

  void ExpectConsistent() {
    ASSERT_TRUE(DrainPipeline(&repl_, &clock_).ok());
    ConsistencyReport report = ConsistencyChecker(&repl_).Check();
    EXPECT_TRUE(report.ok()) << report.ToString() << plan_.ToString();
  }

  SimClock clock_;
  LinkedServerRegistry links_;
  Server backend_;
  Server cache_;
  ReplicationSystem repl_;
  FaultPlan plan_;
};

TEST_F(ReplicationFaultTest, LogReaderCrashLeavesDurablePositionAndRecovers) {
  plan_.AddRule(FaultSite::kLogReadRecord, FaultAction::kCrash, 1);
  InsertEast(1);
  Status crashed = repl_.RunLogReader(&backend_, nullptr);
  EXPECT_EQ(crashed.code(), StatusCode::kUnavailable) << crashed.ToString();
  // The crashed scan had no effect: nothing scanned, nothing enqueued, the
  // log intact.
  EXPECT_EQ(repl_.metrics().records_scanned, 0);
  EXPECT_EQ(repl_.PendingChanges(), 0);
  EXPECT_GT(backend_.db().log().size(), 0);
  // The restarted reader re-runs the batch from the same LSN.
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 1);
  EXPECT_EQ(repl_.metrics().crashes_injected, 1);
  ExpectConsistent();
}

TEST_F(ReplicationFaultTest, DistributorCrashEnqueuesNothingTwice) {
  plan_.AddRule(FaultSite::kDistributeTxn, FaultAction::kCrash, 1);
  InsertEast(1);
  InsertEast(2);
  EXPECT_EQ(repl_.RunLogReader(&backend_, nullptr).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(repl_.PendingChanges(), 0);
  // Recovery re-distributes the whole batch exactly once.
  ASSERT_TRUE(repl_.RunLogReader(&backend_, nullptr).ok());
  EXPECT_EQ(repl_.PendingChanges(), 2);
  ASSERT_TRUE(repl_.RunDistributionAgent(&cache_, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 2);
  ExpectConsistent();
}

TEST_F(ReplicationFaultTest, SubscriberCrashMidApplyRollsBackAndRetries) {
  InsertEast(1);
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  plan_.AddRule(FaultSite::kApplyChange, FaultAction::kCrash, 2);
  // One source txn with two changes; the subscriber dies on the second.
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "BEGIN TRANSACTION; "
                      "INSERT INTO customer VALUES (2, 'a', 'east', 0.0); "
                      "INSERT INTO customer VALUES (3, 'b', 'east', 0.0); "
                      "COMMIT;")
                  .ok());
  ASSERT_TRUE(repl_.RunLogReader(&backend_, nullptr).ok());
  EXPECT_EQ(repl_.RunDistributionAgent(&cache_, nullptr).code(),
            StatusCode::kUnavailable);
  // Atomicity: the local transaction rolled back, nothing half-applied.
  EXPECT_EQ(CountCacheRows(), 1);
  EXPECT_EQ(repl_.PendingChanges(), 2);
  // After the backoff the delivery is retried and applies in full.
  clock_.Advance(repl_.backoff_max());
  ASSERT_TRUE(repl_.RunDistributionAgent(&cache_, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 3);
  EXPECT_EQ(repl_.metrics().txns_retried, 1);
  ExpectConsistent();
}

TEST_F(ReplicationFaultTest, PostCommitCrashDeduplicatesOnRedelivery) {
  plan_.AddRule(FaultSite::kApplyCommit, FaultAction::kCrash, 1);
  InsertEast(1);
  ASSERT_TRUE(repl_.RunLogReader(&backend_, nullptr).ok());
  // The apply commits, then the agent dies before acking the delivery.
  EXPECT_EQ(repl_.RunDistributionAgent(&cache_, nullptr).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(CountCacheRows(), 1);           // committed...
  EXPECT_EQ(repl_.PendingChanges(), 1);     // ...but still queued.
  // Redelivery must NOT apply twice (the insert would collide on the key).
  clock_.Advance(repl_.backoff_max());
  ASSERT_TRUE(repl_.RunDistributionAgent(&cache_, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 1);
  EXPECT_EQ(repl_.PendingChanges(), 0);
  EXPECT_EQ(repl_.metrics().txns_applied, 1);
  EXPECT_EQ(repl_.metrics().txns_retried, 1);
  ExpectConsistent();
}

TEST_F(ReplicationFaultTest, DroppedDeliveryIsRedeliveredAfterBackoff) {
  plan_.AddRule(FaultSite::kDeliverTxn, FaultAction::kDrop, 1);
  InsertEast(1);
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());  // delivery lost
  EXPECT_EQ(CountCacheRows(), 0);
  EXPECT_EQ(repl_.PendingChanges(), 1);
  EXPECT_EQ(repl_.metrics().deliveries_dropped, 1);
  clock_.Advance(repl_.backoff_max());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 1);
  ExpectConsistent();
}

TEST_F(ReplicationFaultTest, LogReadStallDelaysButNeverLosesChanges) {
  backend_.db().log().set_read_fault_hook(MakeLogReadStallHook(&plan_));
  plan_.AddRule(FaultSite::kLogReadStall, FaultAction::kDelay, 1);
  InsertEast(1);
  // First scan dies on the first log page: nothing is read.
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 0);
  // The reader resumes from the stalled position on its next poll.
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 1);
  ExpectConsistent();
}

TEST_F(ReplicationFaultTest, CommitOrderPrefixInvariantHoldsMidFlight) {
  plan_.AddRule(FaultSite::kApplyCommit, FaultAction::kCrash, 2);
  plan_.AddRule(FaultSite::kDeliverTxn, FaultAction::kDrop, 4);
  ConsistencyChecker checker(&repl_);
  for (int i = 1; i <= 6; ++i) {
    InsertEast(i);
    clock_.Advance(0.1);
    RunRoundTolerantly(&repl_);
    // The ordering invariant holds at every instant, faults or not.
    ConsistencyReport invariants = checker.CheckInvariants();
    EXPECT_TRUE(invariants.ok())
        << "after insert " << i << ":\n" << invariants.ToString();
    clock_.Advance(repl_.backoff_max());
  }
  ExpectConsistent();
}

// ---------------------------------------------------------------------------
// Acceptance demo: a fault schedule that crashes each pipeline stage once and
// drops one delivery, over the full TPC-W cache (all cached views), must
// recover to zero ConsistencyChecker diffs.
// ---------------------------------------------------------------------------

TEST(ReplicationFaultDemoTest, TpcwCacheSurvivesCrashOfEveryPipelineStage) {
  SimClock clock;
  LinkedServerRegistry links;
  Server backend(ServerOptions{"backend", "dbo", {}}, &clock, &links);
  Server cache(ServerOptions{"cache", "dbo", {}}, &clock, &links);
  ReplicationSystem repl(&clock);

  tpcw::TpcwConfig config;
  config.num_items = 60;
  config.num_authors = 15;
  config.num_customers = 50;
  config.num_orders = 40;
  config.avg_lines_per_order = 2;
  config.best_seller_window = 10;
  ASSERT_TRUE(tpcw::CreateSchema(&backend).ok());
  ASSERT_TRUE(tpcw::GenerateData(&backend, config).ok());
  ASSERT_TRUE(tpcw::CreateProcedures(&backend, config).ok());
  clock.AdvanceTo(tpcw::LoadEndTime(config));

  auto setup = MTCache::Setup(&cache, &backend, &repl);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  std::unique_ptr<MTCache> mtcache = setup.ConsumeValue();
  Status cache_setup = tpcw::SetupTpcwCache(mtcache.get(), config);
  ASSERT_TRUE(cache_setup.ok()) << cache_setup.ToString();

  FaultPlan plan;
  plan.AddRule(FaultSite::kLogReadRecord, FaultAction::kCrash, 1);
  plan.AddRule(FaultSite::kDistributeTxn, FaultAction::kCrash, 2);
  plan.AddRule(FaultSite::kApplyChange, FaultAction::kCrash, 1);
  plan.AddRule(FaultSite::kApplyCommit, FaultAction::kCrash, 3);
  plan.AddRule(FaultSite::kDeliverTxn, FaultAction::kDrop, 2);
  repl.set_fault_plan(&plan);

  // A workload touching every published table, interleaved with pipeline
  // rounds so the faults land at different stages of different txns.
  const char* kDml[] = {
      "UPDATE item SET i_stock = i_stock + 5 WHERE i_id <= 10",
      "INSERT INTO orders VALUES (9001, 1, 123, 10.0, 11.0, 'shipped', 1)",
      "INSERT INTO order_line VALUES (9001, 3, 2, 0.0)",
      "BEGIN TRANSACTION; "
      "INSERT INTO order_line VALUES (9001, 7, 1, 0.1); "
      "UPDATE item SET i_title = 'revised' WHERE i_id = 7; "
      "COMMIT;",
      "UPDATE author SET a_bio = 'updated bio' WHERE a_id <= 3",
      "BEGIN TRANSACTION; "
      "INSERT INTO orders VALUES (9002, 2, 124, 5.0, 5.5, 'phantom', 1); "
      "ROLLBACK;",
      "DELETE FROM order_line WHERE ol_o_id = 9001 AND ol_i_id = 3",
      "UPDATE orders SET o_status = 'delivered' WHERE o_id = 9001",
  };
  for (const char* sql : kDml) {
    ASSERT_TRUE(backend.ExecuteScript(sql).ok()) << sql;
    clock.Advance(0.2);
    RunRoundTolerantly(&repl);
  }

  // Every scripted fault must actually have fired.
  EXPECT_EQ(plan.injected(FaultSite::kLogReadRecord), 1) << plan.ToString();
  EXPECT_EQ(plan.injected(FaultSite::kDistributeTxn), 1) << plan.ToString();
  EXPECT_EQ(plan.injected(FaultSite::kApplyChange), 1) << plan.ToString();
  EXPECT_EQ(plan.injected(FaultSite::kApplyCommit), 1) << plan.ToString();
  EXPECT_EQ(plan.injected(FaultSite::kDeliverTxn), 1) << plan.ToString();
  EXPECT_EQ(repl.metrics().crashes_injected, 4);
  EXPECT_EQ(repl.metrics().deliveries_dropped, 1);

  // Recovery: drain and check every TPC-W cached view row-by-row.
  ASSERT_TRUE(DrainPipeline(&repl, &clock).ok());
  ConsistencyReport report =
      ConsistencyChecker(&repl, &backend, &cache).Check();
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_GE(repl.metrics().txns_retried, 1);
}

// ---------------------------------------------------------------------------
// Discrete-event-driven schedule: DML and pipeline polls fire as sim/des.h
// events, with faults landing mid-run; the system must converge afterwards.
// ---------------------------------------------------------------------------

TEST(ReplicationFaultDesTest, EventDrivenScheduleConverges) {
  SimClock clock;
  LinkedServerRegistry links;
  Server backend(ServerOptions{"backend", "dbo", {}}, &clock, &links);
  Server cache(ServerOptions{"cache", "dbo", {}}, &clock, &links);
  ReplicationSystem repl(&clock);
  ASSERT_TRUE(backend
                  .ExecuteScript(
                      "CREATE TABLE ticks (t_id INT PRIMARY KEY, v FLOAT)")
                  .ok());
  ASSERT_TRUE(cache
                  .ExecuteScript(
                      "CREATE TABLE ticks_cache (t_id INT PRIMARY KEY, "
                      "v FLOAT)")
                  .ok());
  Article article;
  article.name = "ticks_article";
  article.def.base_table = "ticks";
  article.def.columns = {"t_id", "v"};
  ASSERT_TRUE(repl.Subscribe(&backend, article, &cache, "ticks_cache").ok());

  FaultPlan plan(42);
  plan.AddRule(FaultSite::kApplyChange, FaultAction::kCrash, 3);
  plan.AddRule(FaultSite::kLogReadRecord, FaultAction::kCrash, 7);
  plan.AddRule(FaultSite::kDeliverTxn, FaultAction::kDrop, 5);
  repl.set_fault_plan(&plan);

  sim::Des des;
  // Writers: one insert every 0.13s for 30 ticks.
  for (int i = 1; i <= 30; ++i) {
    des.Schedule(0.13 * i, [&, i]() {
      clock.AdvanceTo(des.now());
      ASSERT_TRUE(backend
                      .ExecuteScript("INSERT INTO ticks VALUES (" +
                                     std::to_string(i) + ", " +
                                     std::to_string(i * 0.5) + ")")
                      .ok());
    });
  }
  // The pipeline polls every 0.4s, tolerating injected crashes.
  std::function<void()> poll = [&]() {
    clock.AdvanceTo(des.now());
    RunRoundTolerantly(&repl);
    if (des.now() < 6.0) des.Schedule(des.now() + 0.4, poll);
  };
  des.Schedule(0.4, poll);
  des.RunUntil(12.0);
  clock.AdvanceTo(des.now());

  ASSERT_TRUE(DrainPipeline(&repl, &clock).ok());
  ConsistencyReport report = ConsistencyChecker(&repl).Check();
  EXPECT_TRUE(report.ok()) << report.ToString() << plan.ToString();
  auto r = cache.Execute("SELECT COUNT(*) FROM ticks_cache");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 30);
  EXPECT_GT(plan.total_injected(), 0);
}

// ---------------------------------------------------------------------------
// Seeded randomized crash/restart schedules: 200 iterations, each with its
// own workload and fault schedule. After every recovery the checker must
// pass and the commit-order prefix invariant must hold.
// ---------------------------------------------------------------------------

class RandomizedFaultHarness {
 public:
  explicit RandomizedFaultHarness(uint64_t seed)
      : backend_(ServerOptions{"backend", "dbo", {}}, &clock_, &links_),
        cache_(ServerOptions{"cache", "dbo", {}}, &clock_, &links_),
        repl_(&clock_), rng_(seed * 0x9E3779B9ULL + 1), plan_(seed + 1) {}

  void Setup() {
    ASSERT_TRUE(backend_
                    .ExecuteScript(
                        "CREATE TABLE stock (sid INT PRIMARY KEY, "
                        "sym VARCHAR(8), px FLOAT, active INT)")
                    .ok());
    // Two subscriptions with different shapes: a filtered projection and a
    // full-width copy.
    ASSERT_TRUE(cache_
                    .ExecuteScript(
                        "CREATE TABLE active_stock (sid INT PRIMARY KEY, "
                        "sym VARCHAR(8), px FLOAT); "
                        "CREATE TABLE all_stock (sid INT PRIMARY KEY, "
                        "sym VARCHAR(8), px FLOAT, active INT)")
                    .ok());
    Article filtered;
    filtered.name = "active_article";
    filtered.def.base_table = "stock";
    filtered.def.columns = {"sid", "sym", "px"};
    filtered.def.predicates = {{"active", CompareOp::kEq, Value::Int(1)}};
    ASSERT_TRUE(
        repl_.Subscribe(&backend_, filtered, &cache_, "active_stock").ok());
    Article full;
    full.name = "all_article";
    full.def.base_table = "stock";
    full.def.columns = {"sid", "sym", "px", "active"};
    ASSERT_TRUE(repl_.Subscribe(&backend_, full, &cache_, "all_stock").ok());

    // Seed the published table AFTER subscribing: a subscription starts at
    // the current log position (snapshot-then-subscribe semantics), so rows
    // inserted earlier would never replicate. Here the initial load itself
    // flows through the (faulty) pipeline.
    for (int i = 1; i <= 30; ++i) {
      ASSERT_TRUE(backend_
                      .ExecuteScript("INSERT INTO stock VALUES (" +
                                     std::to_string(i) + ", 'S" +
                                     std::to_string(i % 5) + "', " +
                                     std::to_string(i * 1.5) + ", " +
                                     std::to_string(i % 2) + ")")
                      .ok());
    }

    // A randomized fault schedule: each site gets a seed-derived crash /
    // drop / delay probability, plus the WAL read-stall seam.
    plan_.AddRandomRule(FaultSite::kLogReadRecord, FaultAction::kCrash,
                        rng_.NextDouble() * 0.04);
    plan_.AddRandomRule(FaultSite::kDistributeTxn, FaultAction::kCrash,
                        rng_.NextDouble() * 0.1);
    plan_.AddRandomRule(FaultSite::kApplyChange, FaultAction::kCrash,
                        rng_.NextDouble() * 0.1);
    plan_.AddRandomRule(FaultSite::kApplyCommit, FaultAction::kCrash,
                        rng_.NextDouble() * 0.1);
    plan_.AddRandomRule(FaultSite::kDeliverTxn, FaultAction::kDrop,
                        rng_.NextDouble() * 0.15);
    plan_.AddRandomRule(FaultSite::kDeliverTxn, FaultAction::kDelay,
                        rng_.NextDouble() * 0.15);
    plan_.AddRandomRule(FaultSite::kLogReadStall, FaultAction::kDelay,
                        rng_.NextDouble() * 0.05);
    backend_.db().log().set_read_fault_hook(MakeLogReadStallHook(&plan_));
    repl_.set_fault_plan(&plan_);
  }

  void RandomDml() {
    switch (rng_.Uniform(0, 3)) {
      case 0: {
        int64_t id = next_id_++;
        ASSERT_TRUE(backend_
                        .ExecuteScript("INSERT INTO stock VALUES (" +
                                       std::to_string(id) + ", 'N', 1.0, " +
                                       std::to_string(rng_.Uniform(0, 1)) +
                                       ")")
                        .ok());
        break;
      }
      case 1: {
        std::string set = rng_.Bernoulli(0.5) ? "px = px + 1"
                                              : "active = 1 - active";
        ASSERT_TRUE(backend_
                        .ExecuteScript("UPDATE stock SET " + set +
                                       " WHERE sid % 7 = " +
                                       std::to_string(rng_.Uniform(0, 6)))
                        .ok());
        break;
      }
      case 2: {
        ASSERT_TRUE(backend_
                        .ExecuteScript("DELETE FROM stock WHERE sid % 11 = " +
                                       std::to_string(rng_.Uniform(0, 10)))
                        .ok());
        break;
      }
      default: {
        bool commit = rng_.Bernoulli(0.7);
        ASSERT_TRUE(backend_
                        .ExecuteScript(
                            std::string("BEGIN TRANSACTION; ") +
                            "INSERT INTO stock VALUES (" +
                            std::to_string(next_id_++) + ", 'T', 2.0, 1); " +
                            "UPDATE stock SET px = px * 1.1 WHERE active = 1; " +
                            (commit ? "COMMIT;" : "ROLLBACK;"))
                        .ok());
        break;
      }
    }
  }

  void Run() {
    ConsistencyChecker checker(&repl_);
    int rounds = static_cast<int>(rng_.Uniform(3, 6));
    for (int round = 0; round < rounds; ++round) {
      int burst = static_cast<int>(rng_.Uniform(1, 4));
      for (int i = 0; i < burst; ++i) {
        RandomDml();
        if (::testing::Test::HasFatalFailure()) return;
      }
      clock_.Advance(0.05 + rng_.NextDouble() * 0.4);
      RunRoundTolerantly(&repl_);
      if (::testing::Test::HasFatalFailure()) return;
      // The prefix invariant holds mid-flight, with faults still firing.
      ConsistencyReport invariants = checker.CheckInvariants();
      ASSERT_TRUE(invariants.ok())
          << "round " << round << ":\n"
          << invariants.ToString() << plan_.ToString();
    }
    // Recovery: with faults quiesced the pipeline must drain and the cache
    // must equal the recomputed articles, row for row.
    Status drained = DrainPipeline(&repl_, &clock_);
    ASSERT_TRUE(drained.ok()) << drained.ToString() << plan_.ToString();
    ConsistencyReport report = checker.Check();
    ASSERT_TRUE(report.ok()) << report.ToString() << plan_.ToString();
  }

 private:
  SimClock clock_;
  LinkedServerRegistry links_;
  Server backend_;
  Server cache_;
  ReplicationSystem repl_;
  Random rng_;
  FaultPlan plan_;
  int64_t next_id_ = 100;
};

TEST(ReplicationFaultRandomizedTest, TwoHundredSeededSchedulesAllRecover) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    RandomizedFaultHarness harness(seed);
    harness.Setup();
    if (::testing::Test::HasFatalFailure()) return;
    harness.Run();
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace mtcache
