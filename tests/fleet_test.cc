// Tests for the fleet layer (src/sim/fleet.*): deterministic replay of
// DES fleet simulations, end-of-run consistency across every cache (with
// and without fault injection), scaling/offload monotonicity at test scale,
// and the simulated-lag -> sys.dm_repl_lag_histogram plumbing.

#include "sim/fleet.h"

#include <gtest/gtest.h>

#include "check/consistency.h"
#include "tpcw/workload.h"

namespace mtcache {
namespace sim {
namespace {

/// Small but complete TPC-W population (same scale as tpcw_test).
tpcw::TpcwConfig SmallTpcw() {
  tpcw::TpcwConfig config;
  config.num_items = 200;
  config.num_authors = 50;
  config.num_customers = 300;
  config.num_orders = 260;
  config.best_seller_window = 40;
  return config;
}

FleetConfig SmallFleet(int num_caches = 2, double fraction = 1.0) {
  FleetConfig config;
  config.tpcw = SmallTpcw();
  config.num_caches = num_caches;
  config.cached_fraction = fraction;
  config.profile_samples = 4;
  config.seed = 7;
  return config;
}

FleetLoad SmallLoad(tpcw::WorkloadMix mix, int caches, int users) {
  FleetLoad load;
  load.mix = mix;
  load.num_caches = caches;
  load.users = users;
  load.warmup = 3;
  load.measure = 20;
  load.record_trace = true;
  load.seed = 5;
  return load;
}

TEST(FleetTest, InitializeBuildsRealFleet) {
  Fleet fleet(SmallFleet(3));
  ASSERT_TRUE(fleet.Initialize().ok());
  // Every cache holds the cached views and answers through them.
  for (int i = 0; i < 3; ++i) {
    auto r = fleet.cache(i)->Execute("SELECT COUNT(*) FROM item_cache");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->rows[0][0].AsInt(), 200);
  }
  // The profile measured every interaction type.
  for (int t = 0; t < tpcw::kNumInteractions; ++t) {
    EXPECT_EQ(fleet.profile().samples[t].size(), 4u) << "interaction " << t;
  }
}

// Satellite: deterministic replay. Two simulations from identically
// configured fleets with the same seed produce byte-identical interaction
// traces and metric snapshots; a different seed produces a different trace.
TEST(FleetTest, DeterministicReplay) {
  FleetResult first;
  {
    Fleet fleet(SmallFleet());
    ASSERT_TRUE(fleet.Initialize().ok());
    first = std::move(
        fleet.Simulate(SmallLoad(tpcw::WorkloadMix::kShopping, 4, 120))
            .ConsumeValue());
  }
  {
    Fleet fleet(SmallFleet());
    ASSERT_TRUE(fleet.Initialize().ok());
    FleetResult second =
        fleet.Simulate(SmallLoad(tpcw::WorkloadMix::kShopping, 4, 120))
            .ConsumeValue();
    EXPECT_GT(first.interactions, 0);
    EXPECT_FALSE(first.trace.empty());
    EXPECT_EQ(first.trace, second.trace);
    EXPECT_EQ(first.trace_digest, second.trace_digest);
    EXPECT_EQ(first.ToJson(), second.ToJson());
  }
  {
    Fleet fleet(SmallFleet());
    ASSERT_TRUE(fleet.Initialize().ok());
    FleetLoad load = SmallLoad(tpcw::WorkloadMix::kShopping, 4, 120);
    load.seed = 6;
    FleetResult other = fleet.Simulate(load).ConsumeValue();
    EXPECT_NE(first.trace, other.trace);
    EXPECT_NE(first.trace_digest, other.trace_digest);
  }
}

// Replays are deterministic within one fleet too: Simulate does not mutate
// the profile, so re-running the same load reproduces the same digest.
TEST(FleetTest, RepeatSimulationSameFleetIsIdentical) {
  Fleet fleet(SmallFleet());
  ASSERT_TRUE(fleet.Initialize().ok());
  FleetLoad load = SmallLoad(tpcw::WorkloadMix::kBrowsing, 2, 60);
  FleetResult a = fleet.Simulate(load).ConsumeValue();
  FleetResult b = fleet.Simulate(load).ConsumeValue();
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

// Satellite: end-of-run convergence. A 3-cache fleet runs a Shopping-mix
// burst of real interactions; after DrainPipeline the ConsistencyChecker
// proves every cache matches the backend.
TEST(FleetTest, ConvergesAcrossAllCaches) {
  Fleet fleet(SmallFleet(3));
  ASSERT_TRUE(fleet.Initialize().ok());
  ASSERT_TRUE(
      fleet.ExecuteInteractions(tpcw::WorkloadMix::kShopping, 40).ok());
  ASSERT_TRUE(fleet.Drain().ok());
  ConsistencyReport report = fleet.CheckConsistency();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Same run with the fault storm enabled: deliveries dropped, agents and the
// log reader crashing. The pipeline must still converge to consistency at
// the drain point — replication's recovery guarantees, fleet-wide.
TEST(FleetTest, ConvergesAcrossAllCachesUnderFaults) {
  FleetConfig config = SmallFleet(3);
  config.fault_injection = true;
  Fleet fleet(config);
  ASSERT_TRUE(fleet.Initialize().ok());
  ASSERT_TRUE(
      fleet.ExecuteInteractions(tpcw::WorkloadMix::kShopping, 40).ok());
  // The storm must actually have fired for this test to mean anything.
  const ReplicationMetrics& metrics = fleet.repl()->metrics();
  EXPECT_GT(metrics.crashes_injected + metrics.deliveries_dropped, 0);
  ASSERT_TRUE(fleet.Drain().ok());
  ConsistencyReport report = fleet.CheckConsistency();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Partial caching converges too: range-filtered articles replicate only
// their slice, and the checker recomputes that slice as ground truth.
TEST(FleetTest, PartialFractionConverges) {
  Fleet fleet(SmallFleet(2, 0.5));
  ASSERT_TRUE(fleet.Initialize().ok());
  auto r = fleet.cache(0)->Execute("SELECT COUNT(*) FROM item_cache");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 100);  // ceil(0.5 * 200)
  ASSERT_TRUE(
      fleet.ExecuteInteractions(tpcw::WorkloadMix::kOrdering, 30).ok());
  ASSERT_TRUE(fleet.Drain().ok());
  ConsistencyReport report = fleet.CheckConsistency();
  EXPECT_TRUE(report.ok()) << report.ToString();
}

// Satellite: monotonicity at test scale. Offload grows with the cached
// fraction (Browsing), and aggregate QPS at 4 caches >= 1 cache.
TEST(FleetTest, OffloadGrowsWithCachedFraction) {
  Fleet quarter(SmallFleet(2, 0.25));
  ASSERT_TRUE(quarter.Initialize().ok());
  Fleet full(SmallFleet(2, 1.0));
  ASSERT_TRUE(full.Initialize().ok());
  FleetLoad load = SmallLoad(tpcw::WorkloadMix::kBrowsing, 2, 60);
  FleetResult lo = quarter.Simulate(load).ConsumeValue();
  FleetResult hi = full.Simulate(load).ConsumeValue();
  EXPECT_LT(lo.offload_pct, hi.offload_pct);
  EXPECT_GT(hi.offload_pct, 90.0);  // fully cached Browsing is ~all local
}

TEST(FleetTest, AggregateQpsGrowsWithCaches) {
  Fleet fleet(SmallFleet());
  ASSERT_TRUE(fleet.Initialize().ok());
  FleetResult one =
      fleet.Simulate(SmallLoad(tpcw::WorkloadMix::kBrowsing, 1, 50))
          .ConsumeValue();
  FleetResult four =
      fleet.Simulate(SmallLoad(tpcw::WorkloadMix::kBrowsing, 4, 200))
          .ConsumeValue();
  EXPECT_GE(four.cache_qps + four.backend_qps,
            one.cache_qps + one.backend_qps);
  EXPECT_GT(four.wips, one.wips);
}

// Simulated commit->apply lag feeds the same LogHistogram that serves
// sys.dm_repl_lag_histogram, so the DMV reflects the simulated run.
TEST(FleetTest, SimulatedLagReachesDmv) {
  Fleet fleet(SmallFleet());
  ASSERT_TRUE(fleet.Initialize().ok());
  int64_t before = fleet.repl()->metrics().lag_histogram.Count();
  FleetResult r =
      fleet.Simulate(SmallLoad(tpcw::WorkloadMix::kOrdering, 2, 80))
          .ConsumeValue();
  EXPECT_GT(r.lag_samples, 0);
  EXPECT_GT(r.lag_p95, 0.0);
  EXPECT_LE(r.lag_p50, r.lag_p95);
  EXPECT_LE(r.lag_p95, r.lag_max * (1 + 1e-9));
  EXPECT_EQ(fleet.repl()->metrics().lag_histogram.Count(),
            before + r.lag_samples);
  // Through the SQL path: the DMV's total count includes the merged samples.
  auto dmv = fleet.cache(0)->Execute(
      "SELECT SUM(count) FROM sys.dm_repl_lag_histogram");
  ASSERT_TRUE(dmv.ok()) << dmv.status().ToString();
  EXPECT_GE(dmv->rows[0][0].AsInt(), r.lag_samples);
}

TEST(FleetTest, SimulateValidatesLoad) {
  Fleet fleet(SmallFleet());
  ASSERT_TRUE(fleet.Initialize().ok());
  FleetLoad load = SmallLoad(tpcw::WorkloadMix::kShopping, 0, 10);
  EXPECT_FALSE(fleet.Simulate(load).ok());
  load = SmallLoad(tpcw::WorkloadMix::kShopping, 1, 0);
  EXPECT_FALSE(fleet.Simulate(load).ok());
}

TEST(FleetTest, UninitializedFleetRejectsUse) {
  Fleet fleet(SmallFleet());
  EXPECT_FALSE(
      fleet.Simulate(SmallLoad(tpcw::WorkloadMix::kShopping, 1, 10)).ok());
  EXPECT_FALSE(
      fleet.ExecuteInteractions(tpcw::WorkloadMix::kShopping, 1).ok());
}

}  // namespace
}  // namespace sim
}  // namespace mtcache
