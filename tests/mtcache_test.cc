#include <gtest/gtest.h>

#include "mtcache/mtcache.h"

namespace mtcache {
namespace {

/// End-to-end MTCache fixture: one backend with the paper's running example
/// (Customer / Orders), one cache server configured per §4.
class MTCacheTest : public ::testing::Test {
 protected:
  MTCacheTest()
      : backend_(ServerOptions{"backend", "dbo", {}}, &clock_, &links_),
        cache_(ServerOptions{"cache1", "dbo", {}}, &clock_, &links_),
        repl_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(backend_
                    .ExecuteScript(
                        "CREATE TABLE customer (cid INT PRIMARY KEY, "
                        "cname VARCHAR(30), caddress VARCHAR(60), "
                        "cbalance FLOAT); "
                        "CREATE TABLE orders (okey INT PRIMARY KEY, "
                        "ckey INT, odate INT, total FLOAT); "
                        "CREATE INDEX orders_ckey ON orders (ckey);")
                    .ok());
    for (int i = 1; i <= 2000; ++i) {
      ASSERT_TRUE(backend_
                      .ExecuteScript("INSERT INTO customer VALUES (" +
                                     std::to_string(i) + ", 'name" +
                                     std::to_string(i) + "', 'addr" +
                                     std::to_string(i) + "', 0.0)")
                      .ok());
    }
    for (int i = 1; i <= 1000; ++i) {
      ASSERT_TRUE(backend_
                      .ExecuteScript("INSERT INTO orders VALUES (" +
                                     std::to_string(i) + ", " +
                                     std::to_string(i % 2000 + 1) + ", " +
                                     std::to_string(10000 + i) + ", " +
                                     std::to_string(i * 1.0) + ")")
                      .ok());
    }
    backend_.RecomputeStats();
    auto setup = MTCache::Setup(&cache_, &backend_, &repl_);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
    mtcache_ = setup.ConsumeValue();
  }

  SimClock clock_;
  LinkedServerRegistry links_;
  Server backend_;
  Server cache_;
  ReplicationSystem repl_;
  std::unique_ptr<MTCache> mtcache_;
};

TEST_F(MTCacheTest, ShadowCatalogMirrorsBackend) {
  const TableDef* shadow = cache_.db().catalog().GetTable("customer");
  ASSERT_NE(shadow, nullptr);
  EXPECT_TRUE(shadow->shadow);
  EXPECT_EQ(shadow->schema.num_columns(), 4);
  // Shadowed statistics reflect backend data even though no rows are local.
  EXPECT_DOUBLE_EQ(shadow->stats.row_count, 2000);
  EXPECT_EQ(cache_.db().GetStoredTable("customer"), nullptr);
}

TEST_F(MTCacheTest, QueryOnShadowTableExecutesRemotely) {
  auto plan = cache_.Explain("SELECT cname FROM customer WHERE cid = 42");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->uses_remote);
  auto r = cache_.Execute("SELECT cname FROM customer WHERE cid = 42");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "name42");
}

TEST_F(MTCacheTest, RemoteWorkChargedToBackend) {
  ExecStats stats;
  auto r = cache_.Execute("SELECT COUNT(*) FROM customer", {}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 2000);
  EXPECT_GT(stats.remote_cost, 0) << "backend did the scan";
  EXPECT_GT(stats.rows_transferred, 0);
}

TEST_F(MTCacheTest, CachedViewCreationSnapshotsAndSubscribes) {
  Status s = mtcache_->CreateCachedView(
      "cust1000",
      "SELECT cid, cname, caddress FROM customer WHERE cid <= 1000");
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto r = cache_.Execute("SELECT COUNT(*) FROM cust1000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1000);
  const TableDef* view = cache_.db().catalog().GetTable("cust1000");
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view->kind, RelationKind::kCachedView);
  EXPECT_GE(view->subscription_id, 0);
  // Derived (shadow-based) statistics: about half the customers.
  EXPECT_NEAR(view->stats.row_count, 1000, 120);
}

TEST_F(MTCacheTest, CachedViewViaDdlStatement) {
  Status s = cache_.ExecuteScript(
      "CREATE CACHED MATERIALIZED VIEW cust1000 AS "
      "SELECT cid, cname, caddress FROM customer WHERE cid <= 1000");
  ASSERT_TRUE(s.ok()) << s.ToString();
  auto r = cache_.Execute("SELECT COUNT(*) FROM cust1000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1000);
}

TEST_F(MTCacheTest, QueryAnsweredLocallyFromCachedView) {
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  auto plan = cache_.Explain(
      "SELECT cid, cname FROM customer WHERE cid = 77");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = PhysicalToString(*plan->plan);
  EXPECT_NE(text.find("cust1000"), std::string::npos) << text;
  EXPECT_FALSE(plan->uses_remote) << text;
  ExecStats stats;
  auto r = cache_.Execute("SELECT cid, cname FROM customer WHERE cid = 77",
                          {}, &stats);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsString(), "name77");
  EXPECT_DOUBLE_EQ(stats.remote_cost, 0) << "fully offloaded";
}

TEST_F(MTCacheTest, QueryOutsideViewRegionGoesRemote) {
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  ExecStats stats;
  auto r = cache_.Execute("SELECT cid, cname FROM customer WHERE cid = 1500",
                          {}, &stats);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsString(), "name1500");
  EXPECT_GT(stats.remote_cost, 0);
}

TEST_F(MTCacheTest, DynamicPlanForParameterizedQuery) {
  // The paper's §5.1 example: Cust1000 plus "cid <= @cid".
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  auto plan = cache_.Explain(
      "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_TRUE(plan->dynamic_plan) << PhysicalToString(*plan->plan);

  // In-range parameter: answered locally.
  ExecStats local_stats;
  ParamMap params;
  params["@cid"] = Value::Int(500);
  auto r1 = cache_.Execute(
      "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid", params,
      &local_stats);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->rows.size(), 500u);
  EXPECT_DOUBLE_EQ(local_stats.remote_cost, 0);

  // Out-of-range parameter: same (cached!) plan runs the remote branch.
  ExecStats remote_stats;
  params["@cid"] = Value::Int(1500);
  auto r2 = cache_.Execute(
      "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid", params,
      &remote_stats);
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->rows.size(), 1500u);
  EXPECT_GT(remote_stats.remote_cost, 0);
  // Second round used the plan cache, no reoptimization.
  EXPECT_GT(cache_.plan_cache_stats().hits, 0);
}

TEST_F(MTCacheTest, DynamicPlanDisabledFallsBackToRemote) {
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  OptimizerOptions opts = cache_.optimizer_options();
  opts.enable_dynamic_plans = false;
  cache_.set_optimizer_options(opts);
  auto plan = cache_.Explain(
      "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid");
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->dynamic_plan);
}

TEST_F(MTCacheTest, UpdatesForwardedToBackendAndReplicatedBack) {
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  // The application updates through the cache server, transparently.
  ExecStats stats;
  auto upd = cache_.Execute(
      "UPDATE customer SET cname = 'renamed' WHERE cid = 10", {}, &stats);
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(upd->rows_affected, 1);
  EXPECT_GT(stats.remote_cost, 0) << "update ran on the backend";
  // Backend changed immediately; cached view is stale until replication runs.
  auto backend_row =
      backend_.Execute("SELECT cname FROM customer WHERE cid = 10");
  ASSERT_TRUE(backend_row.ok());
  EXPECT_EQ(backend_row->rows[0][0].AsString(), "renamed");
  auto stale = cache_.Execute("SELECT cname FROM cust1000 WHERE cid = 10");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->rows[0][0].AsString(), "name10");
  // Propagate.
  clock_.Advance(0.5);
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  auto fresh = cache_.Execute("SELECT cname FROM cust1000 WHERE cid = 10");
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(fresh->rows[0][0].AsString(), "renamed");
  EXPECT_NEAR(repl_.metrics().AvgLatency(), 0.5, 1e-9);
}

TEST_F(MTCacheTest, InsertAndDeleteForwardedToBackend) {
  auto ins = cache_.Execute(
      "INSERT INTO customer VALUES (5000, 'new', 'addr', 0.0)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  auto r = backend_.Execute("SELECT COUNT(*) FROM customer");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 2001);
  auto del = cache_.Execute("DELETE FROM customer WHERE cid = 5000");
  ASSERT_TRUE(del.ok());
  r = backend_.Execute("SELECT COUNT(*) FROM customer");
  EXPECT_EQ((*r).rows[0][0].AsInt(), 2000);
}

TEST_F(MTCacheTest, ProcedureForwardedWhenNotCopied) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "CREATE PROCEDURE get_customer(@id INT) AS BEGIN "
                      "SELECT cid, cname FROM customer WHERE cid = @id "
                      "END")
                  .ok());
  // Not copied: call through the cache is transparently forwarded (§5.2).
  ExecStats stats;
  auto r = cache_.CallProcedure("get_customer", {Value::Int(7)}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsString(), "name7");
  EXPECT_GT(stats.remote_cost, 0);
}

TEST_F(MTCacheTest, CopiedProcedureRunsLocallyAgainstCachedView) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "CREATE PROCEDURE get_customer(@id INT) AS BEGIN "
                      "SELECT cid, cname FROM customer WHERE cid = @id "
                      "END")
                  .ok());
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  ASSERT_TRUE(mtcache_->CopyProcedure("get_customer").ok());
  ExecStats stats;
  auto r = cache_.CallProcedure("get_customer", {Value::Int(7)}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsString(), "name7");
  EXPECT_DOUBLE_EQ(stats.remote_cost, 0) << "served from the cached view";
}

TEST_F(MTCacheTest, JoinSplitsBetweenLocalViewAndRemoteTable) {
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  // Join of a (locally cached) customer subset with remote orders.
  ExecStats stats;
  auto r = cache_.Execute(
      "SELECT c.cname, o.total FROM customer c JOIN orders o "
      "ON c.cid = o.ckey WHERE c.cid <= 100 AND o.total > 990",
      {}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Validate against the backend executing the same query.
  auto expected = backend_.Execute(
      "SELECT c.cname, o.total FROM customer c JOIN orders o "
      "ON c.cid = o.ckey WHERE c.cid <= 100 AND o.total > 990");
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(r->rows.size(), expected->rows.size());
}

TEST_F(MTCacheTest, DropCachedViewRestoresRemoteRouting) {
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  ASSERT_TRUE(mtcache_->DropCachedView("cust1000").ok());
  auto plan = cache_.Explain("SELECT cname FROM customer WHERE cid = 5");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->uses_remote);
  // And the subscription is gone: backend writes no longer accumulate.
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "UPDATE customer SET cname = 'x' WHERE cid = 5")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(repl_.PendingChanges(), 0);
}

TEST_F(MTCacheTest, CostBasedRoutingPrefersBackendIndex) {
  // Cached view WITHOUT a useful index vs backend WITH one: the optimizer
  // should pick the backend when the predicate is on the indexed column
  // (§1: "if there is an index on the backend that greatly reduces the cost
  // of the query, it will be executed on the backend database").
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView(
                      "orders_all",
                      "SELECT okey, ckey, odate, total FROM orders")
                  .ok());
  // The local copy only has the pk index (okey); backend also has orders_ckey.
  // Equality on ckey: local = full scan of 1000 rows, remote = index seek.
  auto plan = cache_.Explain("SELECT total FROM orders WHERE ckey = 123");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Drop the index information from the local view... it never had it, so
  // cost-based routing should ship this query.
  EXPECT_TRUE(plan->uses_remote) << PhysicalToString(*plan->plan);

  // DBCache-style heuristic routing always uses the cache instead.
  OptimizerOptions opts = cache_.optimizer_options();
  opts.cost_based_routing = false;
  cache_.set_optimizer_options(opts);
  auto heuristic = cache_.Explain("SELECT total FROM orders WHERE ckey = 123");
  ASSERT_TRUE(heuristic.ok());
  EXPECT_FALSE(heuristic->uses_remote)
      << PhysicalToString(*heuristic->plan);
}

TEST_F(MTCacheTest, FreshnessClauseRejectsStaleView) {
  // The §7 extension: "a query might include an optional clause stating
  // that a result up to 30 seconds old is acceptable."
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  const char* kFresh =
      "SELECT cname FROM customer WHERE cid = 5 WITH MAXSTALENESS 30";
  // Freshly snapshotted: the view qualifies.
  auto plan = cache_.Explain(kFresh);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // (Explain goes through the default options; execute instead and check
  // routing by measured work.)
  ExecStats fresh_stats;
  ASSERT_TRUE(cache_.Execute(kFresh, {}, &fresh_stats).ok());
  EXPECT_DOUBLE_EQ(fresh_stats.remote_cost, 0) << "fresh view used";

  // Time passes without any replication round: the view goes stale.
  clock_.Advance(120.0);
  ExecStats stale_stats;
  auto stale = cache_.Execute(kFresh, {}, &stale_stats);
  ASSERT_TRUE(stale.ok()) << stale.status().ToString();
  EXPECT_GT(stale_stats.remote_cost, 0)
      << "stale view must be bypassed in favour of the backend";
  // Without the clause the stale view is still fine (default transparency).
  ExecStats lax_stats;
  ASSERT_TRUE(cache_
                  .Execute("SELECT cname FROM customer WHERE cid = 5", {},
                           &lax_stats)
                  .ok());
  EXPECT_DOUBLE_EQ(lax_stats.remote_cost, 0);

  // A replication round restores freshness.
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  ExecStats refreshed_stats;
  ASSERT_TRUE(cache_.Execute(kFresh, {}, &refreshed_stats).ok());
  EXPECT_DOUBLE_EQ(refreshed_stats.remote_cost, 0) << "fresh again";
}

TEST_F(MTCacheTest, FreshnessClauseParsesAndClones) {
  auto stmt = ParseSql(
      "SELECT cid FROM customer WHERE cid = 1 WITH MAXSTALENESS 30");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  auto* select = static_cast<SelectStmt*>(stmt->get());
  EXPECT_DOUBLE_EQ(select->max_staleness, 30.0);
  auto copy = CloneSelect(*select);
  EXPECT_DOUBLE_EQ(copy->max_staleness, 30.0);
}

TEST_F(MTCacheTest, CachedViewOverBackendMaterializedView) {
  // §4: cached views may be "selections and projections of tables or
  // materialized views residing on the backend server".
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "CREATE MATERIALIZED VIEW big_orders AS "
                      "SELECT okey, ckey, total FROM orders WHERE total > 500")
                  .ok());
  backend_.RecomputeStats();
  // Fresh cache server so the shadow includes the new matview.
  Server cache2(ServerOptions{"cache2", "dbo", {}}, &clock_, &links_);
  auto setup = MTCache::Setup(&cache2, &backend_, &repl_);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  auto mtcache2 = setup.ConsumeValue();
  ASSERT_TRUE(mtcache2
                  ->CreateCachedView(
                      "big_orders_cache",
                      "SELECT okey, ckey, total FROM big_orders "
                      "WHERE total > 900")
                  .ok());
  // Served locally on the cache.
  ExecStats stats;
  auto r = cache2.Execute(
      "SELECT COUNT(*) FROM big_orders WHERE total > 950", {}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 50);
  EXPECT_DOUBLE_EQ(stats.remote_cost, 0);
  // Changes flow base table -> backend matview (sync) -> cached view (repl).
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO orders VALUES (9001, 1, 20000, 999.0)")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  r = cache2.Execute("SELECT COUNT(*) FROM big_orders_cache WHERE total > 950");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 51);
}

TEST_F(MTCacheTest, OverlappingViewsChosenCostBased) {
  // Two views cover cid = 50: a narrow one and a wide one. The narrower
  // (cheaper) view should win the cost comparison.
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust_wide",
                                     "SELECT cid, cname, caddress, cbalance "
                                     "FROM customer WHERE cid <= 1500")
                  .ok());
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust_narrow",
                                     "SELECT cid, cname FROM customer "
                                     "WHERE cid <= 100")
                  .ok());
  auto plan = cache_.Explain("SELECT cname FROM customer WHERE cid = 50");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = PhysicalToString(*plan->plan);
  EXPECT_NE(text.find("cust_narrow"), std::string::npos) << text;
  // A query needing caddress can only use the wide view.
  auto wide = cache_.Explain("SELECT caddress FROM customer WHERE cid = 50");
  ASSERT_TRUE(wide.ok());
  EXPECT_NE(PhysicalToString(*wide->plan).find("cust_wide"),
            std::string::npos);
}

TEST_F(MTCacheTest, DropCachedViewViaDdl) {
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  ASSERT_TRUE(cache_.ExecuteScript("DROP MATERIALIZED VIEW cust1000").ok());
  EXPECT_EQ(cache_.db().catalog().GetTable("cust1000"), nullptr);
  EXPECT_EQ(repl_.PendingChanges(), 0);
  auto plan = cache_.Explain("SELECT cname FROM customer WHERE cid = 5");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->uses_remote);
}

TEST_F(MTCacheTest, RefreshCachedViewRecoversFromDivergence) {
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView("cust1000",
                                     "SELECT cid, cname, caddress FROM "
                                     "customer WHERE cid <= 1000")
                  .ok());
  // Diverge the replica: delete some rows and plant a fake one.
  ASSERT_TRUE(cache_
                  .ExecuteScript(
                      "DELETE FROM cust1000 WHERE cid <= 100; "
                      "INSERT INTO cust1000 VALUES (99999, 'fake', 'fake')")
                  .ok());
  auto broken = cache_.Execute("SELECT COUNT(*) FROM cust1000");
  ASSERT_TRUE(broken.ok());
  EXPECT_EQ(broken->rows[0][0].AsInt(), 901);
  // Resync.
  ASSERT_TRUE(mtcache_->RefreshCachedView("cust1000").ok());
  auto fixed = cache_.Execute("SELECT COUNT(*) FROM cust1000");
  ASSERT_TRUE(fixed.ok());
  EXPECT_EQ(fixed->rows[0][0].AsInt(), 1000);
  // Replication keeps working afterwards.
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "UPDATE customer SET cname = 'post-sync' WHERE cid = 5")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  auto row = cache_.Execute("SELECT cname FROM cust1000 WHERE cid = 5");
  ASSERT_TRUE(row.ok());
  EXPECT_EQ(row->rows[0][0].AsString(), "post-sync");
}

TEST_F(MTCacheTest, ExplicitLinkedServerJoinSection21Example) {
  // The paper's §2.1 distributed-query example: a local orderline table
  // joined with PartServer.part through the linked-server registry.
  Server part_server(ServerOptions{"partserver", "dbo", {}}, &clock_, &links_);
  links_.Register("partserver", &part_server);
  ASSERT_TRUE(part_server
                  .ExecuteScript(
                      "CREATE TABLE part (id INT PRIMARY KEY, "
                      "name VARCHAR(20), type VARCHAR(10))")
                  .ok());
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(part_server
                    .ExecuteScript("INSERT INTO part VALUES (" +
                                   std::to_string(i) + ", 'part" +
                                   std::to_string(i) + "', '" +
                                   (i % 4 == 0 ? "tire" : "other") + "')")
                    .ok());
  }
  part_server.RecomputeStats();
  Server local(ServerOptions{"app", "dbo", {}}, &clock_, &links_);
  ASSERT_TRUE(local
                  .ExecuteScript(
                      "CREATE TABLE orderline (id INT PRIMARY KEY, qty INT)")
                  .ok());
  for (int i = 1; i <= 100; ++i) {
    ASSERT_TRUE(local
                    .ExecuteScript("INSERT INTO orderline VALUES (" +
                                   std::to_string(i) + ", " +
                                   std::to_string(i * 10) + ")")
                    .ok());
  }
  local.RecomputeStats();
  ExecStats stats;
  auto r = local.Execute(
      "SELECT ol.id, ps.name, ol.qty "
      "FROM orderline ol, partserver.part ps "
      "WHERE ol.id = ps.id AND ol.qty > 500 AND ps.type = 'tire'",
      {}, &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // ids 52..100 with id % 4 == 0: 52,56,...,100 -> 13 rows.
  EXPECT_EQ(r->rows.size(), 13u);
  EXPECT_GT(stats.remote_cost, 0) << "the selection was pushed to the link";
}

TEST_F(MTCacheTest, CartesianProductShipsInputsNotTheResult) {
  // §5's extreme example: for a cross product "it is cheaper to ship the
  // individual tables to the local server and evaluate the join locally
  // than performing the join remotely and shipping the much larger result".
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "CREATE TABLE small_a (a INT PRIMARY KEY); "
                      "CREATE TABLE small_b (b INT PRIMARY KEY);")
                  .ok());
  for (int i = 1; i <= 80; ++i) {
    ASSERT_TRUE(backend_
                    .ExecuteScript("INSERT INTO small_a VALUES (" +
                                   std::to_string(i) + "); "
                                   "INSERT INTO small_b VALUES (" +
                                   std::to_string(i) + ")")
                    .ok());
  }
  backend_.RecomputeStats();
  // Fresh cache so the new tables are shadowed.
  Server cache2(ServerOptions{"cache_x", "dbo", {}}, &clock_, &links_);
  auto setup = MTCache::Setup(&cache2, &backend_, &repl_);
  ASSERT_TRUE(setup.ok()) << setup.status().ToString();
  auto mtcache2 = setup.ConsumeValue();
  auto plan = cache2.Explain("SELECT COUNT(*) FROM small_a, small_b");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  std::string text = PhysicalToString(*plan->plan);
  // Two separate RemoteQuery nodes feeding a LOCAL join: the 6400-row cross
  // product is built on the cache, only 160 input rows cross the wire.
  int remote_nodes = 0;
  for (size_t pos = text.find("RemoteQuery"); pos != std::string::npos;
       pos = text.find("RemoteQuery", pos + 1)) {
    ++remote_nodes;
  }
  EXPECT_EQ(remote_nodes, 2) << text;
  EXPECT_NE(text.find("NLJoin"), std::string::npos) << text;
  auto result = cache2.Execute("SELECT COUNT(*) FROM small_a, small_b");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 6400);
}

TEST_F(MTCacheTest, OneCacheServerTwoBackends) {
  // §3: "a cache server may store data from multiple backend servers".
  // A second backend with its own table, shadowed into the same cache.
  Server backend2(ServerOptions{"backend2", "dbo", {}}, &clock_, &links_);
  ASSERT_TRUE(backend2
                  .ExecuteScript(
                      "CREATE TABLE parts (pid INT PRIMARY KEY, "
                      "pname VARCHAR(30))")
                  .ok());
  for (int i = 1; i <= 50; ++i) {
    ASSERT_TRUE(backend2
                    .ExecuteScript("INSERT INTO parts VALUES (" +
                                   std::to_string(i) + ", 'part" +
                                   std::to_string(i) + "')")
                    .ok());
  }
  backend2.RecomputeStats();
  MTCacheOptions opts2;
  opts2.backend_link_name = "backend2";
  auto setup2 = MTCache::Setup(&cache_, &backend2, &repl_, opts2);
  ASSERT_TRUE(setup2.ok()) << setup2.status().ToString();
  auto mtcache2 = setup2.ConsumeValue();

  // Queries route to each table's home backend.
  auto r1 = cache_.Execute("SELECT cname FROM customer WHERE cid = 3");
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_EQ(r1->rows[0][0].AsString(), "name3");
  auto r2 = cache_.Execute("SELECT pname FROM parts WHERE pid = 3");
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_EQ(r2->rows[0][0].AsString(), "part3");

  // DML forwards to the right home server.
  ASSERT_TRUE(cache_
                  .Execute("UPDATE parts SET pname = 'renamed' WHERE pid = 9")
                  .ok());
  auto check = backend2.Execute("SELECT pname FROM parts WHERE pid = 9");
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->rows[0][0].AsString(), "renamed");
  // The first backend is untouched by that update.
  auto untouched = backend_.Execute("SELECT COUNT(*) FROM customer");
  ASSERT_TRUE(untouched.ok());

  // Cached views can come from either backend.
  ASSERT_TRUE(mtcache2
                  ->CreateCachedView("parts_cache", "SELECT * FROM parts")
                  .ok());
  ExecStats stats;
  auto local = cache_.Execute("SELECT COUNT(*) FROM parts", {}, &stats);
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local->rows[0][0].AsInt(), 50);
  EXPECT_DOUBLE_EQ(stats.remote_cost, 0);
}

TEST_F(MTCacheTest, RefreshShadowedStatistics) {
  // Backend grows; the shadow stats are stale until refreshed.
  for (int i = 3000; i < 3500; ++i) {
    ASSERT_TRUE(backend_
                    .ExecuteScript("INSERT INTO customer VALUES (" +
                                   std::to_string(i) + ", 'n', 'a', 0.0)")
                    .ok());
  }
  backend_.RecomputeStats();
  const TableDef* shadow = cache_.db().catalog().GetTable("customer");
  EXPECT_DOUBLE_EQ(shadow->stats.row_count, 2000);
  ASSERT_TRUE(mtcache_->RefreshShadowedStatistics().ok());
  EXPECT_DOUBLE_EQ(shadow->stats.row_count, 2500);
}

}  // namespace
}  // namespace mtcache
