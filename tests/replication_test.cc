#include <gtest/gtest.h>

#include "repl/replication.h"

namespace mtcache {
namespace {

class ReplicationTest : public ::testing::Test {
 protected:
  ReplicationTest()
      : backend_(ServerOptions{"backend", "dbo", {}}, &clock_, &links_),
        cache_(ServerOptions{"cache", "dbo", {}}, &clock_, &links_),
        repl_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(backend_
                    .ExecuteScript(
                        "CREATE TABLE customer (c_id INT PRIMARY KEY, "
                        "c_name VARCHAR(30), c_region VARCHAR(10), "
                        "c_balance FLOAT)")
                    .ok());
    for (int i = 1; i <= 20; ++i) {
      std::string region = i <= 10 ? "east" : "west";
      ASSERT_TRUE(backend_
                      .ExecuteScript("INSERT INTO customer VALUES (" +
                                     std::to_string(i) + ", 'cust" +
                                     std::to_string(i) + "', '" + region +
                                     "', 0.0)")
                      .ok());
    }
    // Target table on the cache: east customers, name+id only.
    ASSERT_TRUE(cache_
                    .ExecuteScript(
                        "CREATE TABLE customer_east (c_id INT PRIMARY KEY, "
                        "c_name VARCHAR(30))")
                    .ok());
    repl_.AddPublisher(&backend_);
    Article article;
    article.name = "customer_east_article";
    article.def.base_table = "customer";
    article.def.columns = {"c_id", "c_name"};
    article.def.predicates = {
        {"c_region", CompareOp::kEq, Value::String("east")}};
    auto sub = repl_.Subscribe(&backend_, article, &cache_, "customer_east");
    ASSERT_TRUE(sub.ok()) << sub.status().ToString();
    sub_id_ = *sub;
  }

  int64_t CountCacheRows() {
    auto r = cache_.Execute("SELECT COUNT(*) FROM customer_east");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->rows[0][0].AsInt();
  }

  SimClock clock_;
  LinkedServerRegistry links_;
  Server backend_;
  Server cache_;
  ReplicationSystem repl_;
  int64_t sub_id_ = 0;
};

TEST_F(ReplicationTest, InsertPropagatesWhenMatchingArticle) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (21, 'new east', 'east', 0.0)")
                  .ok());
  ExecStats pub_stats, sub_stats;
  ASSERT_TRUE(repl_.RunOnce(&pub_stats, &sub_stats).ok());
  EXPECT_EQ(CountCacheRows(), 1);
  EXPECT_GT(pub_stats.local_cost, 0) << "log reader/distributor work";
  EXPECT_GT(sub_stats.local_cost, 0) << "apply work";
}

TEST_F(ReplicationTest, NonMatchingInsertFilteredOut) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (22, 'new west', 'west', 0.0)")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 0);
}

TEST_F(ReplicationTest, ProjectionDropsUnpublishedColumns) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (23, 'eve', 'east', 9.5)")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  auto r = cache_.Execute("SELECT c_id, c_name FROM customer_east");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][1].AsString(), "eve");
}

TEST_F(ReplicationTest, UpdatePropagates) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (24, 'old name', 'east', 0.0)")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "UPDATE customer SET c_name = 'new name' WHERE c_id = 24")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  auto r = cache_.Execute("SELECT c_name FROM customer_east WHERE c_id = 24");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsString(), "new name");
}

TEST_F(ReplicationTest, UpdateMovingRowIntoArticleRegionInserts) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "UPDATE customer SET c_region = 'east' WHERE c_id = 15")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  auto r = cache_.Execute("SELECT c_id FROM customer_east WHERE c_id = 15");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows.size(), 1u);
}

TEST_F(ReplicationTest, UpdateMovingRowOutOfRegionDeletes) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (25, 'mover', 'east', 0.0)")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 1);
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "UPDATE customer SET c_region = 'west' WHERE c_id = 25")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 0);
}

TEST_F(ReplicationTest, DeletePropagates) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (26, 'gone', 'east', 0.0)")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  ASSERT_TRUE(backend_.ExecuteScript("DELETE FROM customer WHERE c_id = 26").ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 0);
}

TEST_F(ReplicationTest, AbortedTransactionNeverShips) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "BEGIN TRANSACTION; "
                      "INSERT INTO customer VALUES (27, 'phantom', 'east', 0.0); "
                      "ROLLBACK;")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 0);
  EXPECT_EQ(repl_.metrics().changes_enqueued, 0);
}

TEST_F(ReplicationTest, MultiStatementTransactionAppliedAtomicallyInOrder) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "BEGIN TRANSACTION; "
                      "INSERT INTO customer VALUES (28, 'a', 'east', 0.0); "
                      "INSERT INTO customer VALUES (29, 'b', 'east', 0.0); "
                      "UPDATE customer SET c_name = 'a2' WHERE c_id = 28; "
                      "COMMIT;")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  auto r = cache_.Execute(
      "SELECT c_id, c_name FROM customer_east ORDER BY c_id");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->rows.size(), 2u);
  EXPECT_EQ(r->rows[0][1].AsString(), "a2");
  EXPECT_EQ(repl_.metrics().txns_applied, 1);
}

TEST_F(ReplicationTest, LatencyMeasuredOnSimulatedClock) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (30, 'timed', 'east', 0.0)")
                  .ok());
  clock_.Advance(0.75);  // replication delay before the agent fires
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_NEAR(repl_.metrics().AvgLatency(), 0.75, 1e-9);
  EXPECT_NEAR(repl_.metrics().latency_max, 0.75, 1e-9);
}

TEST_F(ReplicationTest, LogReaderDisabledStopsPipeline) {
  repl_.set_log_reader_enabled(false);
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (31, 'held', 'east', 0.0)")
                  .ok());
  ExecStats pub_stats;
  ASSERT_TRUE(repl_.RunOnce(&pub_stats, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 0);
  EXPECT_DOUBLE_EQ(pub_stats.local_cost, 0.0);
  // Re-enable: the pending log is drained.
  repl_.set_log_reader_enabled(true);
  ASSERT_TRUE(repl_.RunOnce(&pub_stats, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 1);
}

TEST_F(ReplicationTest, LogTruncatedAfterDistribution) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (32, 'x', 'east', 0.0)")
                  .ok());
  EXPECT_GT(backend_.db().log().size(), 0);
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(backend_.db().log().size(), 0);
}

TEST_F(ReplicationTest, PendingChangesCountsQueue) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (33, 'q', 'east', 0.0)")
                  .ok());
  ASSERT_TRUE(repl_.RunLogReader(&backend_, nullptr).ok());
  EXPECT_EQ(repl_.PendingChanges(), 1);
  ASSERT_TRUE(repl_.RunDistributionAgent(&cache_, nullptr).ok());
  EXPECT_EQ(repl_.PendingChanges(), 0);
}

TEST_F(ReplicationTest, SubscriptionSkipsChangesPredatingItsSnapshot) {
  // Regression: changes logged BEFORE a subscription exists must not be
  // delivered to it (they are covered by the initial snapshot). Here the
  // "snapshot" is simulated by inserting the row into the target directly.
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (40, 'pre', 'east', 0.0)")
                  .ok());
  // A second subscription created after that insert, with the row already
  // present in its target (as a real snapshot would have it).
  ASSERT_TRUE(cache_
                  .ExecuteScript(
                      "CREATE TABLE customer_east2 (c_id INT PRIMARY KEY, "
                      "c_name VARCHAR(30)); "
                      "INSERT INTO customer_east2 VALUES (40, 'pre')")
                  .ok());
  Article article;
  article.name = "late";
  article.def.base_table = "customer";
  article.def.columns = {"c_id", "c_name"};
  article.def.predicates = {
      {"c_region", CompareOp::kEq, Value::String("east")}};
  ASSERT_TRUE(
      repl_.Subscribe(&backend_, article, &cache_, "customer_east2").ok());
  // Without the per-subscription start LSN this round would try to re-insert
  // row 40 into customer_east2 and fail on the unique key.
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  auto r = cache_.Execute("SELECT COUNT(*) FROM customer_east2");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
  // ...while the ORIGINAL (earlier) subscription did receive it.
  EXPECT_EQ(CountCacheRows(), 1);
}

TEST_F(ReplicationTest, ApplyConflictSurfacesAndPreservesAtomicity) {
  // Failure injection: someone tampers with the subscriber's backing table,
  // creating a key collision for the next replicated insert. The apply must
  // fail loudly, roll back the whole transaction's changes (commit-order
  // atomicity), and keep the batch queued for retry after repair.
  ASSERT_TRUE(cache_
                  .ExecuteScript(
                      "INSERT INTO customer_east VALUES (50, 'intruder')")
                  .ok());
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "BEGIN TRANSACTION; "
                      "INSERT INTO customer VALUES (49, 'ok', 'east', 0.0); "
                      "INSERT INTO customer VALUES (50, 'clash', 'east', 0.0); "
                      "COMMIT;")
                  .ok());
  ASSERT_TRUE(repl_.RunLogReader(&backend_, nullptr).ok());
  Status apply = repl_.RunDistributionAgent(&cache_, nullptr);
  EXPECT_EQ(apply.code(), StatusCode::kAlreadyExists) << apply.ToString();
  // Atomic: row 49 must NOT have been half-applied.
  auto r = cache_.Execute("SELECT COUNT(*) FROM customer_east WHERE c_id = 49");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 0);
  EXPECT_EQ(repl_.PendingChanges(), 2);
  // Repair (remove the intruder), wait out the retry backoff, and retry:
  // the batch drains.
  ASSERT_TRUE(
      cache_.ExecuteScript("DELETE FROM customer_east WHERE c_id = 50").ok());
  clock_.Advance(repl_.backoff_max());
  ASSERT_TRUE(repl_.RunDistributionAgent(&cache_, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 2);
  EXPECT_EQ(repl_.PendingChanges(), 0);
  EXPECT_GE(repl_.metrics().txns_retried, 1);
}

TEST_F(ReplicationTest, FailedDeliveryBacksOffUntilClockAdvances) {
  // A failed apply must not be retried hot: the subscription backs off on
  // the simulated clock, so an immediate agent run is a no-op.
  ASSERT_TRUE(cache_
                  .ExecuteScript("INSERT INTO customer_east VALUES (51, 'dup')")
                  .ok());
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (51, 'clash', 'east', 0.0)")
                  .ok());
  ASSERT_TRUE(repl_.RunLogReader(&backend_, nullptr).ok());
  EXPECT_FALSE(repl_.RunDistributionAgent(&cache_, nullptr).ok());
  ASSERT_TRUE(
      cache_.ExecuteScript("DELETE FROM customer_east WHERE c_id = 51").ok());
  // Still backing off: nothing is delivered...
  ASSERT_TRUE(repl_.RunDistributionAgent(&cache_, nullptr).ok());
  EXPECT_EQ(repl_.PendingChanges(), 1);
  // ...until the clock passes the backoff deadline.
  clock_.Advance(repl_.backoff_max());
  ASSERT_TRUE(repl_.RunDistributionAgent(&cache_, nullptr).ok());
  EXPECT_EQ(repl_.PendingChanges(), 0);
  EXPECT_EQ(CountCacheRows(), 1);
}

TEST(ReplicationMetricsTest, AvgLatencyGuardsDivideByZero) {
  // Freshly-reset metrics have latency_count == 0; AvgLatency must return a
  // defined 0.0, not NaN (this pins the divide-by-zero guard).
  ReplicationMetrics metrics;
  EXPECT_EQ(metrics.latency_count, 0);
  EXPECT_EQ(metrics.AvgLatency(), 0.0);
  metrics.latency_sum = 3.5;  // stale sum with no samples still guards
  EXPECT_EQ(metrics.AvgLatency(), 0.0);
  metrics.latency_count = 2;
  EXPECT_DOUBLE_EQ(metrics.AvgLatency(), 1.75);
}

TEST_F(ReplicationTest, DeleteOfAlreadyMissingRowIsIdempotent) {
  // The subscriber may have lost a row (tampering/cleanup); a replicated
  // delete for it must not fail the pipeline.
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (60, 'gone', 'east', 0.0)")
                  .ok());
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  ASSERT_TRUE(
      cache_.ExecuteScript("DELETE FROM customer_east WHERE c_id = 60").ok());
  ASSERT_TRUE(
      backend_.ExecuteScript("DELETE FROM customer WHERE c_id = 60").ok());
  EXPECT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(repl_.PendingChanges(), 0);
}

TEST_F(ReplicationTest, UnsubscribeStopsDeliveryAndDropsQueue) {
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (70, 'x', 'east', 0.0)")
                  .ok());
  ASSERT_TRUE(repl_.RunLogReader(&backend_, nullptr).ok());
  EXPECT_EQ(repl_.PendingChanges(), 1);
  ASSERT_TRUE(repl_.Unsubscribe(sub_id_).ok());
  EXPECT_EQ(repl_.PendingChanges(), 0);
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 0);
  EXPECT_EQ(repl_.Unsubscribe(sub_id_).code(), StatusCode::kNotFound);
}

TEST_F(ReplicationTest, TwoSubscribersBothReceive) {
  Server cache2(ServerOptions{"cache2", "dbo", {}}, &clock_, &links_);
  ASSERT_TRUE(cache2
                  .ExecuteScript(
                      "CREATE TABLE customer_east (c_id INT PRIMARY KEY, "
                      "c_name VARCHAR(30))")
                  .ok());
  Article article;
  article.name = "a2";
  article.def.base_table = "customer";
  article.def.columns = {"c_id", "c_name"};
  article.def.predicates = {
      {"c_region", CompareOp::kEq, Value::String("east")}};
  ASSERT_TRUE(repl_.Subscribe(&backend_, article, &cache2, "customer_east").ok());
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO customer VALUES (34, 'dup', 'east', 0.0)")
                  .ok());
  ASSERT_TRUE(repl_.RunLogReader(&backend_, nullptr).ok());
  ASSERT_TRUE(repl_.RunDistributionAgent(&cache_, nullptr).ok());
  ASSERT_TRUE(repl_.RunDistributionAgent(&cache2, nullptr).ok());
  EXPECT_EQ(CountCacheRows(), 1);
  auto r = cache2.Execute("SELECT COUNT(*) FROM customer_east");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 1);
}

}  // namespace
}  // namespace mtcache
