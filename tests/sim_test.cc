#include <gtest/gtest.h>

#include "sim/testbed.h"

namespace mtcache {
namespace sim {
namespace {

TEST(DesTest, EventsFireInTimeOrder) {
  Des des;
  std::vector<int> fired;
  des.Schedule(2.0, [&] { fired.push_back(2); });
  des.Schedule(1.0, [&] { fired.push_back(1); });
  des.Schedule(3.0, [&] { fired.push_back(3); });
  des.RunUntil(10.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(des.now(), 10.0);
}

TEST(DesTest, EqualTimesFireInScheduleOrder) {
  Des des;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    des.Schedule(1.0, [&, i] { fired.push_back(i); });
  }
  des.RunUntil(2.0);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(DesTest, RunUntilLeavesLaterEventsQueued) {
  Des des;
  int fired = 0;
  des.Schedule(5.0, [&] { ++fired; });
  des.RunUntil(4.0);
  EXPECT_EQ(fired, 0);
  des.RunUntil(6.0);
  EXPECT_EQ(fired, 1);
}

TEST(MachineTest, SingleCpuServesFifo) {
  Des des;
  Machine m(&des, "m", 1, 100.0);  // 100 units/sec
  std::vector<double> completions;
  m.Submit(100, [&] { completions.push_back(des.now()); });  // 1s
  m.Submit(200, [&] { completions.push_back(des.now()); });  // 2s more
  des.RunUntil(100);
  ASSERT_EQ(completions.size(), 2u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 3.0);
  EXPECT_DOUBLE_EQ(m.busy_cpu_seconds(), 3.0);
}

TEST(MachineTest, TwoCpusRunInParallel) {
  Des des;
  Machine m(&des, "m", 2, 100.0);
  std::vector<double> completions;
  m.Submit(100, [&] { completions.push_back(des.now()); });
  m.Submit(100, [&] { completions.push_back(des.now()); });
  m.Submit(100, [&] { completions.push_back(des.now()); });
  des.RunUntil(100);
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_DOUBLE_EQ(completions[0], 1.0);
  EXPECT_DOUBLE_EQ(completions[1], 1.0);
  EXPECT_DOUBLE_EQ(completions[2], 2.0);
}

TEST(MachineTest, UtilizationReflectsLoad) {
  Des des;
  Machine m(&des, "m", 1, 100.0);
  m.Submit(500, nullptr);  // 5 seconds of work
  des.RunUntil(10.0);
  EXPECT_NEAR(m.Utilization(10.0), 0.5, 1e-9);
}

class TestbedTest : public ::testing::Test {
 protected:
  static TestbedConfig SmallConfig(bool caching) {
    TestbedConfig config;
    config.tpcw.num_items = 200;
    config.tpcw.num_authors = 50;
    config.tpcw.num_customers = 300;
    config.tpcw.num_orders = 260;
    config.tpcw.best_seller_window = 40;
    config.num_web_servers = 2;
    config.caching = caching;
    config.profile_samples = 5;
    return config;
  }
};

TEST_F(TestbedTest, ProfileMeasuresEveryInteraction) {
  Testbed testbed(SmallConfig(/*caching=*/true));
  ASSERT_TRUE(testbed.Initialize().ok());
  for (int t = 0; t < tpcw::kNumInteractions; ++t) {
    ASSERT_EQ(testbed.profile().samples[t].size(), 5u);
    double total = 0;
    for (auto [w, b] : testbed.profile().samples[t]) total += w + b;
    EXPECT_GT(total, 0) << tpcw::InteractionName(static_cast<tpcw::Interaction>(t));
  }
  // Update interactions cause replication work; pure reads do not.
  EXPECT_GT(testbed.profile().repl_publisher_cost[static_cast<int>(
                tpcw::Interaction::kBuyConfirm)],
            0);
  EXPECT_DOUBLE_EQ(testbed.profile().repl_publisher_cost[static_cast<int>(
                       tpcw::Interaction::kProductDetail)],
                   0);
}

TEST_F(TestbedTest, RunProducesThroughputAndLatency) {
  Testbed testbed(SmallConfig(/*caching=*/false));
  ASSERT_TRUE(testbed.Initialize().ok());
  auto r = testbed.Run(10, 5, 20);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->wips, 0);
  EXPECT_GT(r->p90_latency, 0);
  EXPECT_GT(r->backend_util, 0);
}

TEST_F(TestbedTest, DeterministicForSameSeed) {
  Testbed a(SmallConfig(false));
  Testbed b(SmallConfig(false));
  ASSERT_TRUE(a.Initialize().ok());
  ASSERT_TRUE(b.Initialize().ok());
  auto ra = a.Run(20, 5, 20);
  auto rb = b.Run(20, 5, 20);
  ASSERT_TRUE(ra.ok() && rb.ok());
  EXPECT_DOUBLE_EQ(ra->wips, rb->wips);
  EXPECT_DOUBLE_EQ(ra->p90_latency, rb->p90_latency);
}

TEST_F(TestbedTest, MoreUsersMoreThroughputUntilSaturation) {
  Testbed testbed(SmallConfig(false));
  ASSERT_TRUE(testbed.Initialize().ok());
  auto r10 = testbed.Run(10, 5, 20);
  auto r40 = testbed.Run(40, 5, 20);
  ASSERT_TRUE(r10.ok() && r40.ok());
  EXPECT_GT(r40->wips, r10->wips);
}

TEST_F(TestbedTest, CachingOffloadsBackend) {
  Testbed plain(SmallConfig(false));
  Testbed cached(SmallConfig(true));
  ASSERT_TRUE(plain.Initialize().ok());
  ASSERT_TRUE(cached.Initialize().ok());
  auto rp = plain.Run(20, 5, 20);
  auto rc = cached.Run(20, 5, 20);
  ASSERT_TRUE(rp.ok() && rc.ok());
  EXPECT_LT(rc->backend_util, rp->backend_util * 0.5)
      << "cache servers should absorb most of the query load";
}

TEST_F(TestbedTest, FindMaxThroughputRespectsLatencyBound) {
  Testbed testbed(SmallConfig(false));
  ASSERT_TRUE(testbed.Initialize().ok());
  auto r = testbed.FindMaxThroughput(5, 20);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_LE(r->p90_latency, testbed.config().latency_limit);
  EXPECT_GT(r->users, 1);
  // At the operating point some tier is the busy resource.
  EXPECT_GT(std::max(r->backend_util, r->max_web_util), 0.5);
}

TEST_F(TestbedTest, BypassModeMeasuresApplyOverhead) {
  TestbedConfig config = SmallConfig(true);
  config.drivers_use_cache = false;
  config.mix = tpcw::WorkloadMix::kOrdering;
  Testbed testbed(config);
  ASSERT_TRUE(testbed.Initialize().ok());
  auto r = testbed.Run(30, 5, 20);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Cache machines only apply replicated changes: some but little CPU.
  EXPECT_GT(r->cache_apply_util, 0);
  EXPECT_LT(r->cache_apply_util, 0.5);
  EXPECT_GT(r->repl_avg_latency, 0);
}

}  // namespace
}  // namespace sim
}  // namespace mtcache
