#include <algorithm>
#include <map>
#include <set>

#include <gtest/gtest.h>

#include "common/random.h"
#include "storage/bptree.h"

namespace mtcache {
namespace {

Row K(int64_t v) { return Row{Value::Int(v)}; }
Row K2(int64_t a, const std::string& b) {
  return Row{Value::Int(a), Value::String(b)};
}

TEST(BPlusTreeTest, EmptyTreeIteration) {
  BPlusTree tree;
  EXPECT_EQ(tree.size(), 0);
  EXPECT_FALSE(tree.Begin().Valid());
  EXPECT_FALSE(tree.SeekGe(K(0)).Valid());
}

TEST(BPlusTreeTest, InsertAndIterateInOrder) {
  BPlusTree tree;
  for (int64_t v : {5, 1, 9, 3, 7}) tree.Insert(K(v), v * 10);
  std::vector<int64_t> keys;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    keys.push_back(it.key()[0].AsInt());
    EXPECT_EQ(it.rowid(), it.key()[0].AsInt() * 10);
  }
  EXPECT_EQ(keys, (std::vector<int64_t>{1, 3, 5, 7, 9}));
}

TEST(BPlusTreeTest, DuplicateKeysAllBothRetained) {
  BPlusTree tree;
  tree.Insert(K(4), 1);
  tree.Insert(K(4), 2);
  tree.Insert(K(4), 3);
  std::set<RowId> rids;
  for (auto it = tree.SeekGe(K(4));
       it.Valid() && BPlusTree::ComparePrefix(it.key(), K(4)) == 0;
       it.Next()) {
    rids.insert(it.rowid());
  }
  EXPECT_EQ(rids, (std::set<RowId>{1, 2, 3}));
}

TEST(BPlusTreeTest, SeekGeLandsOnFirstQualifying) {
  BPlusTree tree;
  for (int64_t v = 0; v < 100; v += 2) tree.Insert(K(v), v);
  auto it = tree.SeekGe(K(31));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 32);
  it = tree.SeekGe(K(32));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 32);
}

TEST(BPlusTreeTest, SeekGtSkipsEqual) {
  BPlusTree tree;
  for (int64_t v = 0; v < 100; v += 2) tree.Insert(K(v), v);
  auto it = tree.SeekGt(K(32));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), 34);
}

TEST(BPlusTreeTest, SeekPastEndInvalid) {
  BPlusTree tree;
  tree.Insert(K(1), 1);
  EXPECT_FALSE(tree.SeekGe(K(2)).Valid());
  EXPECT_FALSE(tree.SeekGt(K(1)).Valid());
}

TEST(BPlusTreeTest, EraseRemovesOnlyMatchingRid) {
  BPlusTree tree;
  tree.Insert(K(4), 1);
  tree.Insert(K(4), 2);
  EXPECT_TRUE(tree.Erase(K(4), 1));
  EXPECT_FALSE(tree.Erase(K(4), 1));
  auto it = tree.SeekGe(K(4));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.rowid(), 2);
  EXPECT_EQ(tree.size(), 1);
}

TEST(BPlusTreeTest, CompositeKeyPrefixSeek) {
  BPlusTree tree;
  tree.Insert(K2(1, "a"), 1);
  tree.Insert(K2(1, "b"), 2);
  tree.Insert(K2(2, "a"), 3);
  // Prefix seek on first column only.
  int count = 0;
  for (auto it = tree.SeekGe(K(1));
       it.Valid() && BPlusTree::ComparePrefix(it.key(), K(1)) == 0;
       it.Next()) {
    ++count;
  }
  EXPECT_EQ(count, 2);
}

TEST(BPlusTreeTest, LargeRandomInsertEraseMatchesReferenceModel) {
  BPlusTree tree;
  std::multimap<int64_t, RowId> model;
  Random rng(42);
  for (int i = 0; i < 20000; ++i) {
    int64_t k = rng.Uniform(0, 500);
    if (rng.Bernoulli(0.7) || model.empty()) {
      tree.Insert(K(k), i);
      model.emplace(k, i);
    } else {
      // Erase a random existing entry.
      auto mit = model.lower_bound(k);
      if (mit == model.end()) mit = model.begin();
      EXPECT_TRUE(tree.Erase(K(mit->first), mit->second));
      model.erase(mit);
    }
  }
  ASSERT_EQ(tree.size(), static_cast<int64_t>(model.size()));
  // Full-order check.
  auto it = tree.Begin();
  for (const auto& [k, rid] : model) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key()[0].AsInt(), k);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
  // Range check for every key value.
  for (int64_t k = 0; k <= 500; k += 13) {
    std::multiset<RowId> expect;
    for (auto [mk, rid] : model) {
      if (mk == k) expect.insert(rid);
    }
    std::multiset<RowId> got;
    for (auto sit = tree.SeekGe(K(k));
         sit.Valid() && BPlusTree::ComparePrefix(sit.key(), K(k)) == 0;
         sit.Next()) {
      got.insert(sit.rowid());
    }
    EXPECT_EQ(got, expect) << "key " << k;
  }
}

TEST(BPlusTreeTest, SequentialInsertDepthStressAndFullScan) {
  BPlusTree tree;
  const int64_t n = 50000;
  for (int64_t v = 0; v < n; ++v) tree.Insert(K(v), v);
  EXPECT_EQ(tree.size(), n);
  int64_t expect = 0;
  for (auto it = tree.Begin(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key()[0].AsInt(), expect);
    ++expect;
  }
  EXPECT_EQ(expect, n);
  auto it = tree.SeekGe(K(n / 2));
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key()[0].AsInt(), n / 2);
}

}  // namespace
}  // namespace mtcache
