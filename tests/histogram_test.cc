// Unit tests for the lock-free log-bucketed histogram backing the latency
// percentiles in sys.dm_exec_query_stats and sys.dm_repl_metrics.

#include "common/histogram.h"

#include <cmath>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mtcache {
namespace {

TEST(LogHistogramTest, BucketBoundaries) {
  // Bucket 0 is the underflow catch-all: zero, negatives, NaN, sub-minimum.
  EXPECT_EQ(LogHistogram::BucketIndex(0.0), 0);
  EXPECT_EQ(LogHistogram::BucketIndex(-1.5), 0);
  EXPECT_EQ(LogHistogram::BucketIndex(std::nan("")), 0);
  EXPECT_EQ(LogHistogram::BucketIndex(std::ldexp(1.0, LogHistogram::kMinExp) / 2),
            0);
  EXPECT_EQ(LogHistogram::BucketLowerBound(0), 0.0);

  // Bucket 1 starts exactly at 2^kMinExp.
  double min_bound = std::ldexp(1.0, LogHistogram::kMinExp);
  EXPECT_EQ(LogHistogram::BucketIndex(min_bound), 1);
  EXPECT_EQ(LogHistogram::BucketLowerBound(1), min_bound);

  // Each value lands in a bucket whose [lo, hi) actually contains it.
  for (double v : {1e-9, 1e-6, 0.001, 0.5, 1.0, 3.0, 1024.0, 1e6}) {
    int i = LogHistogram::BucketIndex(v);
    EXPECT_GE(v, LogHistogram::BucketLowerBound(i)) << v;
    EXPECT_LT(v, LogHistogram::BucketUpperBound(i)) << v;
  }

  // Bucket bounds tile: upper(i) == lower(i+1), and width is exactly 2x.
  for (int i = 1; i < LogHistogram::kBuckets - 2; ++i) {
    EXPECT_EQ(LogHistogram::BucketUpperBound(i),
              LogHistogram::BucketLowerBound(i + 1));
    EXPECT_EQ(LogHistogram::BucketUpperBound(i),
              2 * LogHistogram::BucketLowerBound(i));
  }

  // Overflow: anything at or beyond the top bound hits the last bucket,
  // whose upper bound is infinite.
  int last = LogHistogram::kBuckets - 1;
  EXPECT_EQ(LogHistogram::BucketIndex(1e30), last);
  EXPECT_EQ(LogHistogram::BucketIndex(LogHistogram::BucketLowerBound(last)),
            last);
  EXPECT_TRUE(std::isinf(LogHistogram::BucketUpperBound(last)));
}

TEST(LogHistogramTest, RecordAndSummaryStats) {
  LogHistogram h;
  EXPECT_EQ(h.Count(), 0);
  EXPECT_EQ(h.Avg(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);

  h.Record(1.0);
  h.Record(2.0);
  h.Record(3.0);
  EXPECT_EQ(h.Count(), 3);
  EXPECT_DOUBLE_EQ(h.Sum(), 6.0);
  EXPECT_DOUBLE_EQ(h.Max(), 3.0);
  EXPECT_DOUBLE_EQ(h.Avg(), 2.0);
  EXPECT_EQ(h.BucketCount(LogHistogram::BucketIndex(1.0)), 1);
  // 2.0 and 3.0 share the [2, 4) bucket.
  EXPECT_EQ(h.BucketCount(LogHistogram::BucketIndex(2.0)), 2);
}

TEST(LogHistogramTest, Merge) {
  LogHistogram a, b;
  a.Record(0.5);
  a.Record(8.0);
  b.Record(2.0);
  b.Record(16.0);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 4);
  EXPECT_DOUBLE_EQ(a.Sum(), 26.5);
  EXPECT_DOUBLE_EQ(a.Max(), 16.0);
  for (double v : {0.5, 8.0, 2.0, 16.0}) {
    EXPECT_EQ(a.BucketCount(LogHistogram::BucketIndex(v)), 1) << v;
  }
  // b is untouched by the merge.
  EXPECT_EQ(b.Count(), 2);
}

TEST(LogHistogramTest, PercentileAccuracy) {
  // Uniform values 1..1000: every estimate must be within one power of two
  // of the true percentile (the documented bucket-width error bound), and
  // never above the recorded max.
  LogHistogram h;
  for (int i = 1; i <= 1000; ++i) h.Record(static_cast<double>(i));
  for (double p : {0.10, 0.50, 0.90, 0.95, 0.99}) {
    double truth = 1.0 + p * 999.0;
    double est = h.Percentile(p);
    EXPECT_GE(est, truth / 2) << "p=" << p;
    EXPECT_LE(est, truth * 2) << "p=" << p;
    EXPECT_LE(est, h.Max()) << "p=" << p;
  }
  // Percentiles are monotone in p, and p=1 hits the max exactly.
  EXPECT_LE(h.Percentile(0.5), h.Percentile(0.95));
  EXPECT_LE(h.Percentile(0.95), h.Percentile(0.99));
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1000.0);
  // Out-of-range p clamps instead of misbehaving.
  EXPECT_DOUBLE_EQ(h.Percentile(1.5), h.Percentile(1.0));
  EXPECT_GE(h.Percentile(-0.5), 0.0);
}

TEST(LogHistogramTest, PercentileSingleValueAndUnderflow) {
  LogHistogram one;
  one.Record(0.125);
  // A single sample: every percentile is that sample's bucket, clamped to
  // the max, so the answer is exact.
  EXPECT_DOUBLE_EQ(one.Percentile(0.0), 0.125);
  EXPECT_DOUBLE_EQ(one.Percentile(0.5), 0.125);
  EXPECT_DOUBLE_EQ(one.Percentile(1.0), 0.125);

  // All-underflow data reports 0 (the bucket-0 contract).
  LogHistogram zeros;
  zeros.Record(0.0);
  zeros.Record(0.0);
  EXPECT_DOUBLE_EQ(zeros.Percentile(0.99), 0.0);
}

TEST(LogHistogramTest, ConcurrentRecord) {
  // Record from several threads; totals must be exact (the adds are atomic
  // even though they are relaxed).
  LogHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Record(1.0 + (t * kPerThread + i) % 7);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(h.Count(), kThreads * kPerThread);
  int64_t bucket_total = 0;
  for (int i = 0; i < LogHistogram::kBuckets; ++i) bucket_total += h.BucketCount(i);
  EXPECT_EQ(bucket_total, kThreads * kPerThread);
  EXPECT_DOUBLE_EQ(h.Max(), 7.0);
}

}  // namespace
}  // namespace mtcache
