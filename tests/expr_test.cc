#include <gtest/gtest.h>

#include "binder/binder.h"
#include "expr/bound_expr.h"
#include "sql/parser.h"

namespace mtcache {
namespace {

/// Parses and binds a scalar expression (params allowed, no columns), then
/// evaluates it with the given parameter map.
StatusOr<Value> Eval(const std::string& expr_text,
                     const ParamMap& params = {}) {
  auto stmt = ParseSql("SELECT " + expr_text);
  if (!stmt.ok()) return stmt.status();
  const auto& select = static_cast<const SelectStmt&>(**stmt);
  Catalog catalog;
  Binder binder(&catalog, "dbo");
  auto bound = binder.BindScalar(*select.items[0].expr);
  if (!bound.ok()) return bound.status();
  EvalContext ctx;
  ctx.params = &params;
  ctx.current_time = 777;
  return EvalBound(**bound, nullptr, ctx);
}

Value MustEval(const std::string& expr_text, const ParamMap& params = {}) {
  auto v = Eval(expr_text, params);
  EXPECT_TRUE(v.ok()) << expr_text << ": " << v.status().ToString();
  return v.ok() ? *v : Value::Null();
}

TEST(ExprEvalTest, IntegerArithmetic) {
  EXPECT_EQ(MustEval("1 + 2 * 3").AsInt(), 7);
  EXPECT_EQ(MustEval("10 % 3").AsInt(), 1);
  EXPECT_EQ(MustEval("-(5 - 8)").AsInt(), 3);
}

TEST(ExprEvalTest, IntegerDivisionTruncatesLikeTsql) {
  Value v = MustEval("7 / 2");
  EXPECT_EQ(v.type(), TypeId::kInt64);
  EXPECT_EQ(v.AsInt(), 3);
  Value d = MustEval("7.0 / 2");
  EXPECT_EQ(d.type(), TypeId::kDouble);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 3.5);
}

TEST(ExprEvalTest, DivisionByZeroIsError) {
  EXPECT_FALSE(Eval("1 / 0").ok());
  EXPECT_FALSE(Eval("1 % 0").ok());
}

TEST(ExprEvalTest, StringConcatenationViaPlus) {
  EXPECT_EQ(MustEval("'ab' + 'cd'").AsString(), "abcd");
}

TEST(ExprEvalTest, NullPropagatesThroughArithmetic) {
  EXPECT_TRUE(MustEval("1 + NULL").is_null());
  EXPECT_TRUE(MustEval("NULL * 3").is_null());
}

TEST(ExprEvalTest, ThreeValuedComparison) {
  EXPECT_TRUE(MustEval("NULL = NULL").is_null());
  EXPECT_TRUE(MustEval("1 < NULL").is_null());
  EXPECT_TRUE(MustEval("1 < 2").AsBool());
}

TEST(ExprEvalTest, ThreeValuedAndOr) {
  // FALSE AND UNKNOWN = FALSE; TRUE OR UNKNOWN = TRUE.
  EXPECT_FALSE(MustEval("1 = 2 AND NULL = 1").AsBool());
  EXPECT_FALSE(MustEval("1 = 2 AND NULL = 1").is_null());
  EXPECT_TRUE(MustEval("1 = 1 OR NULL = 1").AsBool());
  // TRUE AND UNKNOWN = UNKNOWN; FALSE OR UNKNOWN = UNKNOWN.
  EXPECT_TRUE(MustEval("1 = 1 AND NULL = 1").is_null());
  EXPECT_TRUE(MustEval("1 = 2 OR NULL = 1").is_null());
}

TEST(ExprEvalTest, NotWithUnknown) {
  EXPECT_TRUE(MustEval("NOT (NULL = 1)").is_null());
  EXPECT_FALSE(MustEval("NOT (1 = 1)").AsBool());
}

TEST(ExprEvalTest, IsNullOperators) {
  EXPECT_TRUE(MustEval("NULL IS NULL").AsBool());
  EXPECT_FALSE(MustEval("5 IS NULL").AsBool());
  EXPECT_TRUE(MustEval("5 IS NOT NULL").AsBool());
}

TEST(ExprEvalTest, LikeWithNullInput) {
  EXPECT_TRUE(MustEval("NULL LIKE 'a%'").is_null());
  EXPECT_TRUE(MustEval("'alpha' LIKE 'a%'").AsBool());
  EXPECT_TRUE(MustEval("'alpha' NOT LIKE 'b%'").AsBool());
}

TEST(ExprEvalTest, InListLowering) {
  EXPECT_TRUE(MustEval("2 IN (1, 2, 3)").AsBool());
  EXPECT_FALSE(MustEval("9 IN (1, 2, 3)").AsBool());
  EXPECT_TRUE(MustEval("9 NOT IN (1, 2, 3)").AsBool());
}

TEST(ExprEvalTest, BetweenLowering) {
  EXPECT_TRUE(MustEval("5 BETWEEN 1 AND 9").AsBool());
  EXPECT_TRUE(MustEval("1 BETWEEN 1 AND 9").AsBool());
  EXPECT_FALSE(MustEval("0 BETWEEN 1 AND 9").AsBool());
  EXPECT_TRUE(MustEval("0 NOT BETWEEN 1 AND 9").AsBool());
}

TEST(ExprEvalTest, BuiltinFunctions) {
  EXPECT_EQ(MustEval("GETDATE()").AsInt(), 777);
  EXPECT_EQ(MustEval("ABS(-4)").AsInt(), 4);
  EXPECT_DOUBLE_EQ(MustEval("ABS(-4.5)").AsDouble(), 4.5);
  EXPECT_EQ(MustEval("LEN('hello')").AsInt(), 5);
  EXPECT_EQ(MustEval("SUBSTRING('hello', 2, 3)").AsString(), "ell");
  EXPECT_DOUBLE_EQ(MustEval("ROUND(3.456, 1)").AsDouble(), 3.5);
  EXPECT_EQ(MustEval("COALESCE(NULL, NULL, 7)").AsInt(), 7);
  EXPECT_TRUE(MustEval("COALESCE(NULL, NULL)").is_null());
}

TEST(ExprEvalTest, ParamsResolveFromMap) {
  ParamMap params;
  params["@x"] = Value::Int(40);
  EXPECT_EQ(MustEval("@x + 2", params).AsInt(), 42);
}

TEST(ExprEvalTest, MissingParamIsError) {
  EXPECT_FALSE(Eval("@nope + 1").ok());
}

// ---------------------------------------------------------------------------
// Analysis utilities
// ---------------------------------------------------------------------------

BExprPtr Col(int ord) {
  return std::make_unique<BoundColumnRef>(ord, TypeId::kInt64,
                                          "c" + std::to_string(ord));
}
BExprPtr Lit(int64_t v) {
  return std::make_unique<BoundLiteral>(Value::Int(v));
}
BExprPtr Cmp(BinaryOp op, BExprPtr l, BExprPtr r) {
  return std::make_unique<BoundBinary>(op, std::move(l), std::move(r),
                                       TypeId::kBool);
}

TEST(ExprUtilTest, CollectConjunctsFlattensAndTree) {
  BExprPtr a = Cmp(BinaryOp::kEq, Col(0), Lit(1));
  BExprPtr b = Cmp(BinaryOp::kLt, Col(1), Lit(2));
  BExprPtr c = Cmp(BinaryOp::kGt, Col(2), Lit(3));
  BExprPtr tree = AndTogether({});
  std::vector<BExprPtr> parts;
  parts.push_back(std::move(a));
  parts.push_back(std::move(b));
  parts.push_back(std::move(c));
  tree = AndTogether(std::move(parts));
  std::vector<const BoundExpr*> out;
  CollectConjuncts(*tree, &out);
  EXPECT_EQ(out.size(), 3u);
}

TEST(ExprUtilTest, AndTogetherEmptyIsNull) {
  EXPECT_EQ(AndTogether({}), nullptr);
}

TEST(ExprUtilTest, ShiftAndRemapColumnRefs) {
  BExprPtr e = Cmp(BinaryOp::kEq, Col(2), Col(5));
  ShiftColumnRefs(e.get(), -2);
  std::vector<int> refs;
  CollectColumnRefs(*e, &refs);
  EXPECT_EQ(refs, (std::vector<int>{0, 3}));

  std::vector<int> mapping = {7, -1, -1, 9};
  EXPECT_TRUE(RemapColumnRefs(e.get(), mapping));
  refs.clear();
  CollectColumnRefs(*e, &refs);
  EXPECT_EQ(refs, (std::vector<int>{7, 9}));
}

TEST(ExprUtilTest, RemapFailsOnUnmappedColumn) {
  BExprPtr e = Cmp(BinaryOp::kEq, Col(1), Lit(0));
  std::vector<int> mapping = {0, -1};
  EXPECT_FALSE(RemapColumnRefs(e.get(), mapping));
}

TEST(ExprUtilTest, IsRowFreeAndHasParam) {
  BExprPtr with_col = Cmp(BinaryOp::kEq, Col(0), Lit(1));
  EXPECT_FALSE(IsRowFree(*with_col));
  BExprPtr param_only = Cmp(
      BinaryOp::kLe, std::make_unique<BoundParam>("@p", TypeId::kNull),
      Lit(1000));
  EXPECT_TRUE(IsRowFree(*param_only));
  EXPECT_TRUE(HasParam(*param_only));
  EXPECT_FALSE(HasParam(*with_col));
}

TEST(ExprUtilTest, CloneIsDeepAndEqual) {
  BExprPtr e = Cmp(BinaryOp::kLe, Col(3), Lit(42));
  BExprPtr copy = CloneBound(*e);
  EXPECT_TRUE(BoundEquals(*e, *copy));
  // Mutate the copy: originals diverge.
  ShiftColumnRefs(copy.get(), 1);
  EXPECT_FALSE(BoundEquals(*e, *copy));
}

TEST(ExprUtilTest, BoundToSqlReparsable) {
  BExprPtr e = Cmp(BinaryOp::kLe, Col(0), Lit(42));
  std::string sql = BoundToSql(*e);
  EXPECT_EQ(sql, "(c0 <= 42)");
}

}  // namespace
}  // namespace mtcache
