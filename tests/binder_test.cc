#include <gtest/gtest.h>

#include "binder/binder.h"
#include "sql/parser.h"

namespace mtcache {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef t;
    t.name = "t";
    t.schema = Schema({{"id", TypeId::kInt64, "t", false},
                       {"name", TypeId::kString, "t", true},
                       {"qty", TypeId::kInt64, "t", true}});
    t.primary_key = {0};
    ASSERT_TRUE(catalog_.CreateTable(std::move(t)).ok());

    TableDef u;
    u.name = "u";
    u.schema = Schema({{"id", TypeId::kInt64, "u", false},
                       {"t_id", TypeId::kInt64, "u", true},
                       {"price", TypeId::kDouble, "u", true}});
    u.primary_key = {0};
    ASSERT_TRUE(catalog_.CreateTable(std::move(u)).ok());
  }

  StatusOr<LogicalPtr> Bind(const std::string& sql,
                            const std::string& user = "dbo") {
    auto stmt = ParseSql(sql);
    if (!stmt.ok()) return stmt.status();
    if ((*stmt)->kind != StmtKind::kSelect) {
      return Status::InvalidArgument("not a select");
    }
    Binder binder(&catalog_, user);
    return binder.BindSelect(static_cast<const SelectStmt&>(**stmt));
  }

  Catalog catalog_;
};

TEST_F(BinderTest, ResolvesColumnsToOrdinals) {
  auto plan = Bind("SELECT name, qty FROM t");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->schema.num_columns(), 2);
  EXPECT_EQ((*plan)->schema.column(0).name, "name");
  EXPECT_EQ((*plan)->schema.column(0).type, TypeId::kString);
}

TEST_F(BinderTest, UnknownTableAndColumnErrors) {
  EXPECT_EQ(Bind("SELECT x FROM missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Bind("SELECT missing_col FROM t").status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(BinderTest, AmbiguousColumnRejected) {
  auto plan = Bind("SELECT id FROM t, u");
  EXPECT_FALSE(plan.ok());
  EXPECT_NE(plan.status().message().find("ambiguous"), std::string::npos);
}

TEST_F(BinderTest, QualifiedColumnsDisambiguate) {
  auto plan = Bind("SELECT t.id, u.id FROM t, u WHERE t.id = u.t_id");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->schema.num_columns(), 2);
}

TEST_F(BinderTest, AliasesRebindQualifiers) {
  auto plan = Bind("SELECT a.id FROM t a, t b WHERE a.id = b.qty");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Unqualified would now be ambiguous.
  EXPECT_FALSE(Bind("SELECT id FROM t a, t b").ok());
}

TEST_F(BinderTest, StarExpandsAllColumns) {
  auto plan = Bind("SELECT * FROM t");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->schema.num_columns(), 3);
  auto qualified = Bind("SELECT u.* FROM t, u");
  ASSERT_TRUE(qualified.ok());
  EXPECT_EQ((*qualified)->schema.num_columns(), 3);
}

TEST_F(BinderTest, TypeMismatchInComparison) {
  EXPECT_FALSE(Bind("SELECT id FROM t WHERE name > 5").ok());
  EXPECT_FALSE(Bind("SELECT id FROM t WHERE name = qty").ok());
  // Numeric cross-type comparisons are fine.
  EXPECT_TRUE(Bind("SELECT id FROM u WHERE price > 5").ok());
}

TEST_F(BinderTest, ArithmeticOnStringsRejected) {
  EXPECT_FALSE(Bind("SELECT name * 2 FROM t").ok());
  // '+' is concatenation for strings.
  EXPECT_TRUE(Bind("SELECT name + 'x' FROM t").ok());
}

TEST_F(BinderTest, AggregateRules) {
  EXPECT_TRUE(Bind("SELECT qty, COUNT(*) FROM t GROUP BY qty").ok());
  // Non-grouped column in the select list.
  auto bad = Bind("SELECT name, COUNT(*) FROM t GROUP BY qty");
  EXPECT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("GROUP BY"), std::string::npos);
  // Aggregates in WHERE are rejected.
  EXPECT_FALSE(Bind("SELECT qty FROM t WHERE COUNT(*) > 1").ok());
  // HAVING may reference aggregates.
  EXPECT_TRUE(
      Bind("SELECT qty FROM t GROUP BY qty HAVING SUM(qty) > 10").ok());
}

TEST_F(BinderTest, DuplicateAggregatesShareOneSlot) {
  auto plan = Bind("SELECT SUM(qty), SUM(qty) + 1 FROM t GROUP BY name");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Walk down to the Aggregate node and count agg items.
  const LogicalOp* node = plan->get();
  while (node->kind != LogicalKind::kAggregate) {
    node = node->children[0].get();
  }
  EXPECT_EQ(static_cast<const LogicalAggregate*>(node)->aggs.size(), 1u);
}

TEST_F(BinderTest, OrderByAliasBindsAboveProjection) {
  auto plan = Bind("SELECT qty * 2 AS doubled FROM t ORDER BY doubled DESC");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Shape: Sort above Project.
  EXPECT_EQ(plan->get()->kind, LogicalKind::kSort);
}

TEST_F(BinderTest, OrderByHiddenColumnBindsBelowProjection) {
  auto plan = Bind("SELECT id FROM t ORDER BY qty DESC");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Shape: Project above Sort (the sort key is not in the output).
  EXPECT_EQ(plan->get()->kind, LogicalKind::kProject);
  EXPECT_EQ(plan->get()->children[0]->kind, LogicalKind::kSort);
}

TEST_F(BinderTest, PermissionChecksUseGrants) {
  catalog_.GetTable("t")->grants["alice"] = {Privilege::kSelect};
  EXPECT_TRUE(Bind("SELECT id FROM t", "alice").ok());
  EXPECT_EQ(Bind("SELECT id FROM t", "bob").status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(BinderTest, InsertArityAndTypes) {
  Binder binder(&catalog_, "dbo");
  auto parse_insert = [&](const std::string& sql) {
    auto stmt = ParseSql(sql);
    EXPECT_TRUE(stmt.ok());
    return binder.BindInsert(static_cast<const InsertStmt&>(**stmt)).status();
  };
  EXPECT_TRUE(parse_insert("INSERT INTO t VALUES (1, 'a', 2)").ok());
  EXPECT_FALSE(parse_insert("INSERT INTO t VALUES (1, 'a')").ok());
  EXPECT_FALSE(parse_insert("INSERT INTO t VALUES (1, 'a', 'not int')").ok());
  EXPECT_TRUE(parse_insert("INSERT INTO t (id, name) VALUES (1, 'a')").ok());
  EXPECT_FALSE(parse_insert("INSERT INTO t (id, zzz) VALUES (1, 2)").ok());
}

TEST_F(BinderTest, UpdateBindsSetsOverTableScope) {
  Binder binder(&catalog_, "dbo");
  auto stmt = ParseSql("UPDATE t SET qty = qty + 1 WHERE name = 'x'");
  ASSERT_TRUE(stmt.ok());
  auto bound = binder.BindUpdate(static_cast<const UpdateStmt&>(**stmt));
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  EXPECT_EQ(bound->sets.size(), 1u);
  EXPECT_EQ(bound->sets[0].first, 2);  // qty ordinal
  EXPECT_NE(bound->where, nullptr);
}

TEST_F(BinderTest, DerivedTableScopesAreIsolated) {
  auto plan = Bind(
      "SELECT d.total FROM (SELECT qty AS total FROM t) d WHERE d.total > 1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  // Inner alias not visible outside.
  EXPECT_FALSE(Bind("SELECT qty FROM (SELECT qty AS total FROM t) d").ok());
}

TEST_F(BinderTest, SelectWithoutFromBindsAgainstDual) {
  auto plan = Bind("SELECT 1 + 2, 'x'");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_EQ((*plan)->schema.num_columns(), 2);
}

}  // namespace
}  // namespace mtcache
