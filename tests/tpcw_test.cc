#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "repl/replication.h"
#include "tpcw/cache_setup.h"
#include "tpcw/datagen.h"
#include "tpcw/procs.h"
#include "tpcw/workload.h"

namespace mtcache {
namespace tpcw {
namespace {

TpcwConfig SmallConfig() {
  TpcwConfig config;
  config.num_items = 200;
  config.num_authors = 50;
  config.num_customers = 300;
  config.num_orders = 260;
  config.best_seller_window = 40;
  return config;
}

class TpcwBackendTest : public ::testing::Test {
 protected:
  TpcwBackendTest()
      : backend_(ServerOptions{"backend", "dbo", {}}, &clock_, &links_) {}

  void SetUp() override {
    config_ = SmallConfig();
    ASSERT_TRUE(CreateSchema(&backend_).ok());
    ASSERT_TRUE(GenerateData(&backend_, config_).ok());
    ASSERT_TRUE(CreateProcedures(&backend_, config_).ok());
    clock_.AdvanceTo(LoadEndTime(config_));
  }

  int64_t Count(const std::string& table) {
    auto r = backend_.Execute("SELECT COUNT(*) FROM " + table);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r->rows[0][0].AsInt();
  }

  SimClock clock_;
  LinkedServerRegistry links_;
  Server backend_;
  TpcwConfig config_;
};

TEST_F(TpcwBackendTest, DataGeneratedAtConfiguredScale) {
  EXPECT_EQ(Count("item"), config_.num_items);
  EXPECT_EQ(Count("author"), config_.num_authors);
  EXPECT_EQ(Count("customer"), config_.num_customers);
  EXPECT_EQ(Count("orders"), config_.num_orders);
  EXPECT_EQ(Count("cc_xacts"), config_.num_orders);
  EXPECT_GE(Count("order_line"), config_.num_orders);
}

TEST_F(TpcwBackendTest, DataIsDeterministicForSeed) {
  Server other(ServerOptions{"backend2", "dbo", {}}, &clock_);
  ASSERT_TRUE(CreateSchema(&other).ok());
  ASSERT_TRUE(GenerateData(&other, config_).ok());
  auto a = backend_.Execute("SELECT i_title FROM item WHERE i_id = 17");
  auto b = other.Execute("SELECT i_title FROM item WHERE i_id = 17");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->rows[0][0].AsString(), b->rows[0][0].AsString());
}

TEST_F(TpcwBackendTest, GetBookReturnsItemWithAuthor) {
  auto r = backend_.CallProcedure("getbook", {Value::Int(5)}, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 5);
  EXPECT_FALSE(r->rows[0][8].is_null());  // a_fname
}

TEST_F(TpcwBackendTest, BestSellersRanksBySales) {
  auto r = backend_.CallProcedure(
      "getbestsellers", {Value::String("history")}, nullptr);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  for (size_t i = 1; i < r->rows.size(); ++i) {
    EXPECT_GE(r->rows[i - 1][4].AsInt(), r->rows[i][4].AsInt());
  }
}

TEST_F(TpcwBackendTest, SearchProceduresReturnBoundedResults) {
  auto subject = backend_.CallProcedure("dosubjectsearch",
                                        {Value::String("arts")}, nullptr);
  ASSERT_TRUE(subject.ok()) << subject.status().ToString();
  EXPECT_LE(subject->rows.size(), 50u);
  auto title = backend_.CallProcedure("dotitlesearch",
                                      {Value::String("%river%")}, nullptr);
  ASSERT_TRUE(title.ok()) << title.status().ToString();
  EXPECT_LE(title->rows.size(), 50u);
  auto author = backend_.CallProcedure("doauthorsearch",
                                       {Value::String("shadow%")}, nullptr);
  ASSERT_TRUE(author.ok()) << author.status().ToString();
}

TEST_F(TpcwBackendTest, CartLifecycleAndOrderPlacement) {
  ASSERT_TRUE(backend_.CallProcedure("createemptycart", {Value::Int(7000)},
                                     nullptr)
                  .ok());
  ASSERT_TRUE(backend_
                  .CallProcedure("additem", {Value::Int(7000), Value::Int(3),
                                             Value::Int(2)},
                                 nullptr)
                  .ok());
  // Adding the same item again increments quantity.
  ASSERT_TRUE(backend_
                  .CallProcedure("additem", {Value::Int(7000), Value::Int(3),
                                             Value::Int(1)},
                                 nullptr)
                  .ok());
  auto cart = backend_.CallProcedure("getcart", {Value::Int(7000)}, nullptr);
  ASSERT_TRUE(cart.ok());
  ASSERT_EQ(cart->rows.size(), 1u);
  EXPECT_EQ(cart->rows[0][1].AsInt(), 3);  // qty 2 + 1
  int64_t orders_before = Count("orders");
  auto order = backend_.CallProcedure(
      "enterorder",
      {Value::Int(900000), Value::Int(1), Value::Int(7000), Value::Int(1),
       Value::Double(82.5)},
      nullptr);
  ASSERT_TRUE(order.ok()) << order.status().ToString();
  EXPECT_EQ(Count("orders"), orders_before + 1);
  EXPECT_EQ(Count("shopping_cart_line"), 0);  // cart cleared
  auto lines = backend_.Execute(
      "SELECT ol_qty FROM order_line WHERE ol_o_id = 900000");
  ASSERT_TRUE(lines.ok());
  ASSERT_EQ(lines->rows.size(), 1u);
  EXPECT_EQ(lines->rows[0][0].AsInt(), 3);
}

TEST_F(TpcwBackendTest, DriverRunsEveryInteraction) {
  TpcwDriver driver(&backend_, config_, /*seed=*/17);
  for (int i = 0; i < kNumInteractions; ++i) {
    Interaction kind = static_cast<Interaction>(i);
    auto stats = driver.Run(kind);
    ASSERT_TRUE(stats.ok())
        << InteractionName(kind) << ": " << stats.status().ToString();
    EXPECT_GT(stats->local_cost + stats->remote_cost, 0)
        << InteractionName(kind);
  }
}

TEST_F(TpcwBackendTest, MixClassFrequenciesMatchPaperTable) {
  TpcwDriver driver(&backend_, config_, 23);
  const int n = 20000;
  struct {
    WorkloadMix mix;
    double expect;
  } cases[] = {{WorkloadMix::kBrowsing, 0.95},
               {WorkloadMix::kShopping, 0.80},
               {WorkloadMix::kOrdering, 0.50}};
  for (const auto& c : cases) {
    int browse = 0;
    for (int i = 0; i < n; ++i) {
      if (IsBrowseClass(driver.Pick(c.mix))) ++browse;
    }
    EXPECT_NEAR(browse / static_cast<double>(n), c.expect, 0.02)
        << MixName(c.mix);
  }
}

// Per-interaction conformance to the TPC-W §6 mix tables: at 30k draws every
// one of the fourteen interaction frequencies matches MixFraction within a
// 5-sigma binomial band (plus a small floor for the sub-percent rows). The
// draws go through TpcwDriver::Pick, the same path every workload run uses.
TEST_F(TpcwBackendTest, MixInteractionFrequenciesMatchSpecTables) {
  const int n = 30000;
  for (WorkloadMix mix : {WorkloadMix::kBrowsing, WorkloadMix::kShopping,
                          WorkloadMix::kOrdering}) {
    TpcwDriver driver(&backend_, config_, 29);
    int counts[kNumInteractions] = {};
    double total = 0;
    for (int i = 0; i < n; ++i) ++counts[static_cast<int>(driver.Pick(mix))];
    for (int t = 0; t < kNumInteractions; ++t) {
      Interaction kind = static_cast<Interaction>(t);
      double expect = MixFraction(mix, kind);
      total += expect;
      double sigma = std::sqrt(expect * (1 - expect) / n);
      double observed = counts[t] / static_cast<double>(n);
      EXPECT_NEAR(observed, expect, 5 * sigma + 0.001)
          << MixName(mix) << "/" << InteractionName(kind);
    }
    // The frequency table itself is a distribution.
    EXPECT_NEAR(total, 1.0, 1e-9) << MixName(mix);
  }
}

TEST_F(TpcwBackendTest, PickInteractionCoversUnitInterval) {
  // Boundary draws map to valid interactions; 0 maps to the first
  // non-zero-frequency entry and draws just under 1 to the last.
  for (WorkloadMix mix : {WorkloadMix::kBrowsing, WorkloadMix::kShopping,
                          WorkloadMix::kOrdering}) {
    Interaction first = PickInteraction(mix, 0.0);
    Interaction last = PickInteraction(mix, 0.999999999);
    EXPECT_GT(MixFraction(mix, first), 0) << MixName(mix);
    EXPECT_GT(MixFraction(mix, last), 0) << MixName(mix);
  }
}

// Every interaction a mix can draw executes without error against the
// seeded schema — a sustained RunNext stream per mix, long enough that the
// common interactions all occur, plus an explicit pass over all fourteen
// kinds (catching the rare ones a finite stream may miss).
TEST_F(TpcwBackendTest, AllMixInteractionsExecuteWithoutError) {
  int mix_index = 0;
  for (WorkloadMix mix : {WorkloadMix::kBrowsing, WorkloadMix::kShopping,
                          WorkloadMix::kOrdering}) {
    // One driver per mix, each in its own client-id residue class so the
    // three streams' generated carts/orders/customers never collide.
    TpcwDriver driver(&backend_, config_, 31, /*driver_index=*/mix_index++,
                      /*driver_stride=*/3);
    int64_t statements_before = driver.statements_issued();
    for (int i = 0; i < 200; ++i) {
      auto result = driver.RunNext(mix);
      ASSERT_TRUE(result.ok())
          << MixName(mix) << " draw " << i << ": "
          << result.status().ToString();
    }
    EXPECT_GT(driver.statements_issued(), statements_before) << MixName(mix);
    for (int t = 0; t < kNumInteractions; ++t) {
      auto stats = driver.Run(static_cast<Interaction>(t));
      ASSERT_TRUE(stats.ok())
          << MixName(mix) << "/"
          << InteractionName(static_cast<Interaction>(t)) << ": "
          << stats.status().ToString();
    }
  }
}

class TpcwCacheTest : public TpcwBackendTest {
 protected:
  TpcwCacheTest()
      : cache_(ServerOptions{"cache1", "dbo", {}}, &clock_, &links_),
        repl_(&clock_) {}

  void SetUp() override {
    TpcwBackendTest::SetUp();
    auto setup = MTCache::Setup(&cache_, &backend_, &repl_);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
    mtcache_ = setup.ConsumeValue();
    Status s = SetupTpcwCache(mtcache_.get(), config_);
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  Server cache_;
  ReplicationSystem repl_;
  std::unique_ptr<MTCache> mtcache_;
};

TEST_F(TpcwCacheTest, CachedViewsPopulated) {
  auto r = cache_.Execute("SELECT COUNT(*) FROM item_cache");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), config_.num_items);
  r = cache_.Execute("SELECT COUNT(*) FROM order_line_cache");
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->rows[0][0].AsInt(), 0);
}

TEST_F(TpcwCacheTest, BrowseProceduresRunFullyLocally) {
  for (const char* proc : {"getbook", "getrelated"}) {
    ExecStats stats;
    auto r = cache_.CallProcedure(proc, {Value::Int(5)}, &stats);
    ASSERT_TRUE(r.ok()) << proc << ": " << r.status().ToString();
    EXPECT_DOUBLE_EQ(stats.remote_cost, 0) << proc;
  }
  ExecStats stats;
  auto r = cache_.CallProcedure("getbestsellers", {Value::String("arts")},
                                &stats);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(stats.remote_cost, 0) << "best sellers offloaded";
}

TEST_F(TpcwCacheTest, CacheResultsMatchBackendResults) {
  for (const char* subject : {"arts", "history", "travel"}) {
    auto local = cache_.CallProcedure("getnewproducts",
                                      {Value::String(subject)}, nullptr);
    auto remote = backend_.CallProcedure("getnewproducts",
                                         {Value::String(subject)}, nullptr);
    ASSERT_TRUE(local.ok() && remote.ok());
    ASSERT_EQ(local->rows.size(), remote->rows.size()) << subject;
    for (size_t i = 0; i < local->rows.size(); ++i) {
      EXPECT_EQ(local->rows[i][0].AsInt(), remote->rows[i][0].AsInt());
    }
  }
}

TEST_F(TpcwCacheTest, UpdatesFlowThroughCacheToBackendAndBack) {
  // Customer table is not cached: getcustomer is copied and runs locally,
  // fetching remotely. Order placement forwards to the backend and then
  // replicates into orders_cache / order_line_cache.
  TpcwDriver driver(&cache_, config_, 99);
  auto stats = driver.Run(Interaction::kBuyConfirm);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_GT(stats->remote_cost, 0);
  auto backend_count = backend_.Execute("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(backend_count.ok());
  EXPECT_EQ(backend_count->rows[0][0].AsInt(), config_.num_orders + 1);
  // Cached copy is stale until replication runs.
  auto cache_count = cache_.Execute("SELECT COUNT(*) FROM orders_cache");
  ASSERT_TRUE(cache_count.ok());
  EXPECT_EQ(cache_count->rows[0][0].AsInt(), config_.num_orders);
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  cache_count = cache_.Execute("SELECT COUNT(*) FROM orders_cache");
  ASSERT_TRUE(cache_count.ok());
  EXPECT_EQ(cache_count->rows[0][0].AsInt(), config_.num_orders + 1);
}

TEST_F(TpcwCacheTest, FreshnessClauseSeesNewOrdersImmediately) {
  // An order placed through the cache is visible to a freshness-bounded
  // query right away (it bypasses the now-stale orders_cache), while the
  // unconstrained query is served the stale cached copy until replication.
  TpcwDriver driver(&cache_, config_, 5);
  ASSERT_TRUE(driver.Run(Interaction::kBuyConfirm).ok());
  clock_.Advance(30);
  auto stale = cache_.Execute("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale->rows[0][0].AsInt(), config_.num_orders);
  auto fresh = cache_.Execute(
      "SELECT COUNT(*) FROM orders WITH MAXSTALENESS 5");
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  EXPECT_EQ(fresh->rows[0][0].AsInt(), config_.num_orders + 1);
}

TEST_F(TpcwCacheTest, ProcedurePlansCachedAcrossCalls) {
  int64_t misses_before = cache_.plan_cache_stats().misses;
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        cache_.CallProcedure("getbook", {Value::Int(i + 1)}, nullptr).ok());
  }
  // One optimization for the procedure's SELECT, not five.
  EXPECT_EQ(cache_.plan_cache_stats().misses, misses_before + 1);
}

TEST_F(TpcwCacheTest, CachedViewsConvergeUnderMixedWorkloadStress) {
  // End-to-end stress: 200 mixed interactions through the cache with
  // periodic replication; afterwards every cached view must equal the
  // select-project of its backend base table, row for row.
  TpcwDriver driver(&cache_, config_, 4242);
  for (int i = 0; i < 200; ++i) {
    auto result = driver.RunNext(WorkloadMix::kOrdering);
    ASSERT_TRUE(result.ok()) << i << ": " << result.status().ToString();
    if (i % 7 == 6) {
      clock_.Advance(0.5);
      ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
    }
  }
  clock_.Advance(0.5);
  ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
  ASSERT_EQ(repl_.PendingChanges(), 0);

  auto canonical = [](Server* server, const std::string& sql) {
    auto r = server->Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status().ToString();
    std::vector<std::string> rows;
    if (r.ok()) {
      for (const Row& row : r->rows) {
        std::string s;
        for (const Value& v : row) s += v.ToSqlLiteral() + "|";
        rows.push_back(std::move(s));
      }
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  for (const char* table : {"item", "author", "orders", "order_line"}) {
    EXPECT_EQ(canonical(&cache_,
                        "SELECT * FROM " + std::string(table) + "_cache"),
              canonical(&backend_, "SELECT * FROM " + std::string(table)))
        << table << " diverged after the stress run";
  }
  // Interactions really happened: orders grew.
  auto grown = backend_.Execute("SELECT COUNT(*) FROM orders");
  ASSERT_TRUE(grown.ok());
  EXPECT_GT(grown->rows[0][0].AsInt(), config_.num_orders);
}

TEST_F(TpcwCacheTest, DriverWorkloadRunsAgainstCache) {
  TpcwDriver driver(&cache_, config_, 7);
  double local = 0;
  double remote = 0;
  for (int i = 0; i < 60; ++i) {
    auto result = driver.RunNext(WorkloadMix::kShopping);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    local += result->second.local_cost;
    remote += result->second.remote_cost;
    if (i % 20 == 19) {
      ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
    }
  }
  // The Shopping mix is read-dominated: most work lands on the cache server.
  EXPECT_GT(local, remote);
}

}  // namespace
}  // namespace tpcw
}  // namespace mtcache
