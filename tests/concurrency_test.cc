#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/consistency.h"
#include "common/random.h"
#include "engine/session.h"
#include "mtcache/mtcache.h"
#include "repl/fault.h"

namespace mtcache {
namespace {

/// Collects the first failure observed on a worker thread so it can be
/// reported from the main thread (gtest assertions are not thread-safe for
/// fatal failures off the main thread).
class ThreadErrors {
 public:
  void Record(const std::string& message) {
    std::lock_guard<std::mutex> guard(mu_);
    ++count_;
    if (first_.empty()) first_ = message;
  }
  int count() const {
    std::lock_guard<std::mutex> guard(mu_);
    return count_;
  }
  std::string first() const {
    std::lock_guard<std::mutex> guard(mu_);
    return first_;
  }

 private:
  mutable std::mutex mu_;
  int count_ = 0;
  std::string first_;
};

/// Single-server concurrency: many sessions against one Server, hammering
/// the plan cache, the metrics registry, and the DMVs from parallel threads.
class ConcurrencyTest : public ::testing::Test {
 protected:
  ConcurrencyTest() : server_(ServerOptions{"backend", "dbo", {}}, &clock_) {}

  void SetUp() override {
    ASSERT_TRUE(server_
                    .ExecuteScript(
                        "CREATE TABLE item (i_id INT PRIMARY KEY, "
                        "i_title VARCHAR(30), i_cost FLOAT)")
                    .ok());
    for (int i = 1; i <= 100; ++i) {
      ASSERT_TRUE(server_
                      .ExecuteScript("INSERT INTO item VALUES (" +
                                     std::to_string(i) + ", 'title" +
                                     std::to_string(i) + "', " +
                                     std::to_string(i * 1.5) + ")")
                      .ok());
    }
    server_.RecomputeStats();
  }

  SimClock clock_;
  Server server_;
};

TEST_F(ConcurrencyTest, ExecuteConcurrentReturnsCorrectResultsInOrder) {
  // A mix of repeated texts (plan-cache hits under the shared lock) and
  // distinct texts (insert-or-discard races on the exclusive path).
  std::vector<std::string> statements;
  std::vector<int64_t> expected;
  Random rng(7);
  for (int i = 0; i < 64; ++i) {
    int64_t id = i % 2 == 0 ? 17 : rng.Uniform(1, 100);
    statements.push_back("SELECT i_id FROM item WHERE i_id = " +
                         std::to_string(id));
    expected.push_back(id);
  }
  std::vector<StatusOr<QueryResult>> results =
      server_.ExecuteConcurrent(statements, 8);
  ASSERT_EQ(results.size(), statements.size());
  for (size_t i = 0; i < results.size(); ++i) {
    ASSERT_TRUE(results[i].ok()) << results[i].status().ToString();
    ASSERT_EQ(results[i]->rows.size(), 1u) << statements[i];
    EXPECT_EQ(results[i]->rows[0][0].AsInt(), expected[i]);
  }
  EXPECT_GT(server_.plan_cache_stats().hits, 0);
}

TEST_F(ConcurrencyTest, SessionStatePersistsAcrossBatchesOnOneWorker) {
  SessionPool pool(&server_, 1);
  ASSERT_TRUE(pool.Submit("SET @x = 41").get().ok());
  auto r = pool.Submit("SELECT @x + 1 AS x").get();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(r->rows[0][0].AsInt(), 42);
}

TEST_F(ConcurrencyTest, PlanCacheSurvivesConcurrentEpochInvalidation) {
  // Readers keep executing while the main thread repeatedly changes
  // optimizer options — the epoch scheme must let in-flight statements
  // finish on their (now-invalidated) plans and later statements recompile,
  // with every answer staying correct throughout.
  ThreadErrors errors;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([this, t, &errors, &stop] {
      Random rng(1000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t id = rng.Uniform(1, 100);
        auto r = server_.Execute("SELECT i_cost FROM item WHERE i_id = " +
                                 std::to_string(id % 8 + 1));
        if (!r.ok()) {
          errors.Record(r.status().ToString());
          return;
        }
        if (r->rows.size() != 1 ||
            r->rows[0][0].AsDouble() != (id % 8 + 1) * 1.5) {
          errors.Record("wrong row for id " + std::to_string(id % 8 + 1));
          return;
        }
      }
    });
  }
  for (int i = 0; i < 50; ++i) {
    OptimizerOptions opts = server_.optimizer_options();
    opts.enable_view_matching = i % 2 == 0;
    server_.set_optimizer_options(opts);
    std::this_thread::yield();
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(errors.count(), 0) << errors.first();
  EXPECT_GE(server_.plan_cache_stats().invalidations, 50);
}

TEST_F(ConcurrencyTest, DmvReadsRaceWithStatementExecution) {
  ThreadErrors errors;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  // Two executors keep the metrics registry and trace ring churning...
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([this, t, &errors, &stop] {
      Random rng(2000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = server_.Execute("SELECT COUNT(*) FROM item WHERE i_id <= " +
                                 std::to_string(rng.Uniform(1, 100)));
        if (!r.ok()) {
          errors.Record(r.status().ToString());
          return;
        }
      }
    });
  }
  // ...while two observers scan every DMV through the ordinary query path.
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([this, &errors, &stop] {
      const std::vector<std::string> dmvs = {
          "SELECT * FROM sys.dm_plan_cache",
          "SELECT * FROM sys.dm_exec_query_stats",
          "SELECT * FROM sys.dm_exec_requests",
      };
      size_t next = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = server_.Execute(dmvs[next++ % dmvs.size()]);
        if (!r.ok()) {
          errors.Record(r.status().ToString());
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.count(), 0) << errors.first();
}

TEST_F(ConcurrencyTest, ProfiledQueriesRaceProfileTogglesAndDmvReads) {
  // Profiling under contention: workers run profiled statements (per-session
  // SET STATISTICS PROFILE batches and EXPLAIN ANALYZE) while the main
  // thread flips the server-wide profiling switch and observers scan the
  // profile/wait-stats DMVs. TSan validates the relaxed profiling guard,
  // the profile ring's spinlock, and the wait-stats counters.
  ThreadErrors errors;
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([this, t, &errors, &stop] {
      Random rng(4000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t id = rng.Uniform(1, 100);
        auto r = server_.Execute(
            t == 0 ? "SET STATISTICS PROFILE ON; "
                     "SELECT i_title FROM item WHERE i_id = " +
                         std::to_string(id) +
                         "; SET STATISTICS PROFILE OFF"
                   : "EXPLAIN ANALYZE SELECT i_cost FROM item WHERE i_id = " +
                         std::to_string(id));
        if (!r.ok()) {
          errors.Record(r.status().ToString());
          return;
        }
      }
    });
  }
  threads.emplace_back([this, &errors, &stop] {
    const std::vector<std::string> dmvs = {
        "SELECT COUNT(*) FROM sys.dm_exec_query_profiles",
        "SELECT * FROM sys.dm_os_wait_stats",
        "SELECT MAX(latency_p99) FROM sys.dm_exec_query_stats",
    };
    size_t next = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      auto r = server_.Execute(dmvs[next++ % dmvs.size()]);
      if (!r.ok()) {
        errors.Record(r.status().ToString());
        return;
      }
    }
  });
  for (int i = 0; i < 100; ++i) {
    server_.metrics().set_profiling_enabled(i % 2 == 0);
    std::this_thread::yield();
  }
  server_.metrics().set_profiling_enabled(false);
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(errors.count(), 0) << errors.first();
  EXPECT_FALSE(server_.metrics().SnapshotProfiles().empty());
}

TEST_F(ConcurrencyTest, SnapshotScansRaceDml) {
  // Copy-free scans vs. writers: scan threads hammer full-table and
  // selective (pushed-predicate) scans, holding refcounted row snapshots,
  // while writer threads update/insert/delete the same rows. TSan validates
  // the snapshot cache (build-once under the table latch, invalidate on
  // every mutation) and shared_ptr row lifetime; the invariant checked here
  // is that every scan sees a consistent point-in-time state — `i_cost` is
  // flipped between two values in one UPDATE, so a scan observing a mix of
  // old and new rows beyond a single transition proves a torn snapshot.
  ThreadErrors errors;
  std::atomic<bool> stop{false};
  std::vector<std::thread> scanners;
  for (int t = 0; t < 3; ++t) {
    scanners.emplace_back([this, t, &errors, &stop] {
      size_t iter = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = (t + iter++) % 2 == 0
                     ? server_.Execute("SELECT i_id, i_cost FROM item")
                     : server_.Execute(
                           "SELECT i_id FROM item WHERE i_cost < 0.0");
        if (!r.ok()) {
          errors.Record(r.status().ToString());
          return;
        }
        // Writers only ever flip costs between x*1.5 and x*1.5 + 1000 and
        // keep ids within [1, 200]; anything else is a torn row.
        for (const Row& row : r->rows) {
          int64_t id = row[0].AsInt();
          if (id < 1 || id > 200) {
            errors.Record("phantom id " + std::to_string(id));
            return;
          }
        }
      }
    });
  }
  std::vector<std::thread> writers;
  for (int t = 0; t < 2; ++t) {
    writers.emplace_back([this, t, &errors, &stop] {
      Random rng(9000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        int64_t id = rng.Uniform(1, 100);
        std::string sql;
        switch (rng.Uniform(0, 3)) {
          case 0:
            sql = "UPDATE item SET i_cost = i_cost + 1000.0 WHERE i_id = " +
                  std::to_string(id);
            break;
          case 1:
            sql = "UPDATE item SET i_cost = " + std::to_string(id * 1.5) +
                  " WHERE i_id = " + std::to_string(id);
            break;
          case 2:
            sql = "INSERT INTO item VALUES (" + std::to_string(100 + id) +
                  ", 'hot', 1.0)";
            break;
          default:
            sql = "DELETE FROM item WHERE i_id = " + std::to_string(100 + id);
            break;
        }
        auto r = server_.Execute(sql);
        // Two writers racing on one row: duplicate-key inserts and
        // NotFound (per-table serialization, not MVCC — see DESIGN.md §8)
        // are expected outcomes, not errors.
        if (!r.ok() && r.status().code() != StatusCode::kAlreadyExists &&
            r.status().code() != StatusCode::kNotFound) {
          errors.Record(r.status().ToString());
          return;
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : scanners) t.join();
  for (std::thread& t : writers) t.join();
  EXPECT_EQ(errors.count(), 0) << errors.first();
  // Survivor sanity: the table is still scannable and keyed consistently.
  auto r = server_.Execute("SELECT COUNT(*) FROM item");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r->rows[0][0].AsInt(), 100);
}

/// Full-topology concurrency: replication pumping with injected faults on
/// the main thread while reader sessions query the cache in parallel.
class ReplicatedConcurrencyTest : public ::testing::Test {
 protected:
  ReplicatedConcurrencyTest()
      : backend_(ServerOptions{"backend", "dbo", {}}, &clock_, &links_),
        cache_(ServerOptions{"cache", "dbo", {}}, &clock_, &links_),
        repl_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(backend_
                    .ExecuteScript(
                        "CREATE TABLE product (p_id INT PRIMARY KEY, "
                        "p_name VARCHAR(30), p_cat VARCHAR(10), "
                        "p_price FLOAT)")
                    .ok());
    for (int i = 1; i <= 40; ++i) {
      ASSERT_TRUE(InsertProduct(i).ok());
    }
    backend_.RecomputeStats();
    auto setup = MTCache::Setup(&cache_, &backend_, &repl_);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
    mtcache_ = setup.ConsumeValue();
    ASSERT_TRUE(mtcache_
                    ->CreateCachedView("hot_products",
                                       "SELECT p_id, p_name FROM product "
                                       "WHERE p_cat = 'hot'")
                    .ok());
  }

  Status InsertProduct(int i) {
    std::string cat = i % 2 == 0 ? "hot" : "cold";
    return backend_.ExecuteScript(
        "INSERT INTO product VALUES (" + std::to_string(i) + ", 'p" +
        std::to_string(i) + "', '" + cat + "', " + std::to_string(i * 2.0) +
        ")");
  }

  SimClock clock_;
  LinkedServerRegistry links_;
  Server backend_;
  Server cache_;
  ReplicationSystem repl_;
  std::unique_ptr<MTCache> mtcache_;
};

TEST_F(ReplicatedConcurrencyTest, ReadersRaceReplicationApplyUnderFaults) {
  FaultPlan plan(11);
  plan.AddRandomRule(FaultSite::kDeliverTxn, FaultAction::kDrop, 0.2);
  plan.AddRandomRule(FaultSite::kApplyCommit, FaultAction::kCrash, 0.1);
  repl_.set_fault_plan(&plan);
  mtcache_->set_fault_plan(&plan);

  ThreadErrors errors;
  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  const int base_hot = 20;
  const int new_rows = 30;  // ids 41..70, half hot
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([this, t, &errors, &stop, base_hot, new_rows] {
      Random rng(3000 + t);
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = cache_.Execute("SELECT COUNT(*) FROM hot_products");
        if (!r.ok()) {
          errors.Record(r.status().ToString());
          return;
        }
        int64_t count = r->rows[0][0].AsInt();
        // Monotonicity is not guaranteed mid-apply, but the count can never
        // leave the [initial, initial + all new hot rows] envelope.
        if (count < base_hot || count > base_hot + new_rows / 2) {
          errors.Record("hot count out of range: " + std::to_string(count));
          return;
        }
        if (rng.Bernoulli(0.3)) std::this_thread::yield();
      }
    });
  }

  // Main thread: interleave backend writes, faulty pipeline rounds, and
  // mid-flight ordering-invariant checks. The fault plan injects drops and
  // apply crashes; retries happen after simulated backoff.
  ConsistencyChecker checker(&repl_, &backend_, &cache_);
  ExecStats pub_stats, sub_stats;
  for (int i = 0; i < new_rows; ++i) {
    ASSERT_TRUE(InsertProduct(41 + i).ok());
    clock_.Advance(1.0);
    repl_.RunOnce(&pub_stats, &sub_stats).ok();  // faults => non-ok is fine
    if (i % 5 == 0) {
      ConsistencyReport mid = checker.CheckInvariants();
      EXPECT_TRUE(mid.ok()) << mid.ToString();
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  ASSERT_EQ(errors.count(), 0) << errors.first();

  // Quiesce and prove full row-level convergence despite the faults.
  ASSERT_TRUE(DrainPipeline(&repl_, &clock_).ok());
  ConsistencyReport report = checker.Check();
  EXPECT_TRUE(report.ok()) << report.ToString() << "\n" << plan.ToString();
  auto final_count = cache_.Execute("SELECT COUNT(*) FROM hot_products");
  ASSERT_TRUE(final_count.ok());
  EXPECT_EQ(final_count->rows[0][0].AsInt(), base_hot + new_rows / 2);
}

TEST_F(ReplicatedConcurrencyTest, RandomizedInterleavingsStayConsistent) {
  // 50 deterministic seeds, each driving a different fault schedule and a
  // different interleaving of writes, pipeline rounds, and concurrent
  // reader batches — the PR-1 schedule machinery, now with real threads.
  for (uint64_t seed = 0; seed < 50; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    FaultPlan plan(seed);
    plan.AddRandomRule(FaultSite::kDeliverTxn, FaultAction::kDrop, 0.15);
    plan.AddRandomRule(FaultSite::kApplyCommit, FaultAction::kCrash, 0.1);
    plan.AddRandomRule(FaultSite::kLogReadRecord, FaultAction::kCrash, 0.05);
    repl_.set_fault_plan(&plan);
    mtcache_->set_fault_plan(&plan);
    Random rng(seed * 7919 + 1);

    int id = 100 + static_cast<int>(seed) * 8;
    ExecStats pub_stats, sub_stats;
    for (int step = 0; step < 4; ++step) {
      ASSERT_TRUE(InsertProduct(id++).ok());
      clock_.Advance(rng.NextDouble() * 2.0);
      int rounds = static_cast<int>(rng.Uniform(0, 2));
      for (int r = 0; r < rounds; ++r) {
        repl_.RunOnce(&pub_stats, &sub_stats).ok();
      }
      // Concurrent reader batches racing whatever the pipeline left
      // in flight this round.
      std::vector<StatusOr<QueryResult>> results = cache_.ExecuteConcurrent(
          {"SELECT COUNT(*) FROM hot_products",
           "SELECT COUNT(*) FROM product",
           "SELECT * FROM sys.dm_mtcache_views"},
          2);
      for (const auto& r : results) {
        ASSERT_TRUE(r.ok()) << r.status().ToString();
      }
      ConsistencyReport mid =
          ConsistencyChecker(&repl_, &backend_, &cache_).CheckInvariants();
      ASSERT_TRUE(mid.ok()) << mid.ToString() << "\n" << plan.ToString();
    }
    ASSERT_TRUE(DrainPipeline(&repl_, &clock_).ok()) << plan.ToString();
    ConsistencyReport report =
        ConsistencyChecker(&repl_, &backend_, &cache_).Check();
    ASSERT_TRUE(report.ok()) << report.ToString() << "\n" << plan.ToString();
    repl_.set_fault_plan(nullptr);
    mtcache_->set_fault_plan(nullptr);
  }
}

}  // namespace
}  // namespace mtcache
