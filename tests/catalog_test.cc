#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace mtcache {
namespace {

TableDef MakeTable(const std::string& name) {
  TableDef def;
  def.name = name;
  def.schema = Schema({{"id", TypeId::kInt64, name, false},
                       {"val", TypeId::kString, name, true}});
  def.primary_key = {0};
  def.indexes.push_back(IndexDef{name + "_pk", {0}, true});
  return def;
}

TEST(CatalogTest, CreateAndGetTable) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable(MakeTable("t1")).ok());
  ASSERT_NE(cat.GetTable("t1"), nullptr);
  EXPECT_EQ(cat.GetTable("t1")->name, "t1");
  EXPECT_EQ(cat.GetTable("nope"), nullptr);
}

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable(MakeTable("t1")).ok());
  Status s = cat.CreateTable(MakeTable("t1"));
  EXPECT_EQ(s.code(), StatusCode::kAlreadyExists);
}

TEST(CatalogTest, DropTable) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable(MakeTable("t1")).ok());
  ASSERT_TRUE(cat.DropTable("t1").ok());
  EXPECT_EQ(cat.GetTable("t1"), nullptr);
  EXPECT_EQ(cat.DropTable("t1").code(), StatusCode::kNotFound);
}

TEST(CatalogTest, ColumnOrdinal) {
  TableDef def = MakeTable("t");
  EXPECT_EQ(def.ColumnOrdinal("id"), 0);
  EXPECT_EQ(def.ColumnOrdinal("val"), 1);
  EXPECT_EQ(def.ColumnOrdinal("zzz"), -1);
}

TEST(CatalogTest, ViewsOverFindsCachedViews) {
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable(MakeTable("base")).ok());
  TableDef view = MakeTable("v1");
  view.kind = RelationKind::kCachedView;
  view.view_def = SelectProjectDef{"base", {"id", "val"}, {}};
  ASSERT_TRUE(cat.CreateTable(std::move(view)).ok());
  auto views = cat.ViewsOver("base");
  ASSERT_EQ(views.size(), 1u);
  EXPECT_EQ(views[0]->name, "v1");
  EXPECT_TRUE(cat.ViewsOver("other").empty());
}

TEST(CatalogTest, ProcedureLifecycle) {
  Catalog cat;
  ProcedureDef proc;
  proc.name = "getitem";
  proc.params = {{"@id", TypeId::kInt64}};
  proc.body_source = "SELECT id FROM t WHERE id = @id";
  ASSERT_TRUE(cat.CreateProcedure(proc).ok());
  ASSERT_NE(cat.GetProcedure("getitem"), nullptr);
  EXPECT_EQ(cat.CreateProcedure(proc).code(), StatusCode::kAlreadyExists);
  ASSERT_TRUE(cat.DropProcedure("getitem").ok());
  EXPECT_EQ(cat.GetProcedure("getitem"), nullptr);
}

TEST(CatalogTest, PermissionsDefaultPublic) {
  TableDef def = MakeTable("t");
  EXPECT_TRUE(Catalog::HasPrivilege(def, "anyone", Privilege::kSelect));
}

TEST(CatalogTest, PermissionsEnforced) {
  TableDef def = MakeTable("t");
  def.grants["alice"] = {Privilege::kSelect};
  EXPECT_TRUE(Catalog::HasPrivilege(def, "alice", Privilege::kSelect));
  EXPECT_FALSE(Catalog::HasPrivilege(def, "alice", Privilege::kInsert));
  EXPECT_FALSE(Catalog::HasPrivilege(def, "bob", Privilege::kSelect));
}

TEST(SimplePredicateTest, Matches) {
  SimplePredicate p{"c", CompareOp::kLe, Value::Int(1000)};
  EXPECT_TRUE(p.Matches(Value::Int(1000)));
  EXPECT_TRUE(p.Matches(Value::Int(5)));
  EXPECT_FALSE(p.Matches(Value::Int(1001)));
  EXPECT_FALSE(p.Matches(Value::Null()));
}

TEST(SimplePredicateTest, AllOps) {
  Value ten = Value::Int(10);
  EXPECT_TRUE((SimplePredicate{"c", CompareOp::kEq, ten}).Matches(ten));
  EXPECT_TRUE((SimplePredicate{"c", CompareOp::kNe, ten}).Matches(Value::Int(9)));
  EXPECT_TRUE((SimplePredicate{"c", CompareOp::kLt, ten}).Matches(Value::Int(9)));
  EXPECT_FALSE((SimplePredicate{"c", CompareOp::kLt, ten}).Matches(ten));
  EXPECT_TRUE((SimplePredicate{"c", CompareOp::kGt, ten}).Matches(Value::Int(11)));
  EXPECT_TRUE((SimplePredicate{"c", CompareOp::kGe, ten}).Matches(ten));
}

TEST(SelectProjectDefTest, ToSelectSql) {
  SelectProjectDef def;
  def.base_table = "customer";
  def.columns = {"cid", "cname"};
  def.predicates = {{"cid", CompareOp::kLe, Value::Int(1000)}};
  EXPECT_EQ(def.ToSelectSql(),
            "SELECT cid, cname FROM customer WHERE cid <= 1000");
}

TEST(SelectProjectDefTest, RowMatches) {
  SelectProjectDef def;
  def.base_table = "t";
  def.columns = {"a"};
  def.predicates = {{"a", CompareOp::kGt, Value::Int(5)},
                    {"b", CompareOp::kEq, Value::String("x")}};
  Row row = {Value::Int(6), Value::String("x")};
  EXPECT_TRUE(def.RowMatches({0, 1}, row));
  Row bad = {Value::Int(6), Value::String("y")};
  EXPECT_FALSE(def.RowMatches({0, 1}, bad));
}

TEST(CompareOpTest, FlipSymmetry) {
  EXPECT_EQ(FlipCompareOp(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(FlipCompareOp(CompareOp::kLe), CompareOp::kGe);
  EXPECT_EQ(FlipCompareOp(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(FlipCompareOp(FlipCompareOp(CompareOp::kGe)), CompareOp::kGe);
}

}  // namespace
}  // namespace mtcache
