#include <gtest/gtest.h>

#include <cstdlib>

#include "types/schema.h"
#include "types/value.h"

namespace mtcache {
namespace {

TEST(ValueTest, NullProperties) {
  Value v = Value::Null();
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToSqlLiteral(), "NULL");
}

TEST(ValueTest, IntRoundTrip) {
  Value v = Value::Int(42);
  EXPECT_FALSE(v.is_null());
  EXPECT_EQ(v.type(), TypeId::kInt64);
  EXPECT_EQ(v.AsInt(), 42);
  EXPECT_EQ(v.ToSqlLiteral(), "42");
}

TEST(ValueTest, StringQuotingInLiteral) {
  Value v = Value::String("it's");
  EXPECT_EQ(v.ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(v.ToString(), "it's");
}

TEST(ValueTest, DoubleLiteralRoundTripsExactly) {
  // std::to_string's fixed 6 fractional digits used to truncate these, so a
  // literal forwarded through unparse -> parse changed value.
  const double cases[] = {0.1234567891,      1e-7,    0.1, 1.0 / 3.0, 1e30,
                          123456.789012345, -2.5e-9, 4.0, -0.0078125};
  for (double d : cases) {
    std::string lit = Value::Double(d).ToSqlLiteral();
    EXPECT_EQ(std::strtod(lit.c_str(), nullptr), d) << lit;
  }
}

TEST(ValueTest, DoubleLiteralStaysFloatTyped) {
  // A whole-number double must keep a '.' or exponent, or re-parsing the
  // literal silently turns it into an int.
  EXPECT_EQ(Value::Double(4).ToSqlLiteral(), "4.0");
  EXPECT_EQ(Value::Double(-4).ToSqlLiteral(), "-4.0");
}

TEST(ValueTest, DoubleLiteralPrefersShortestExactForm) {
  EXPECT_EQ(Value::Double(0.1).ToSqlLiteral(), "0.1");
  EXPECT_EQ(Value::Double(2.5).ToSqlLiteral(), "2.5");
}

TEST(ValueTest, CompareInts) {
  EXPECT_LT(Value::Int(1).Compare(Value::Int(2)), 0);
  EXPECT_EQ(Value::Int(2).Compare(Value::Int(2)), 0);
  EXPECT_GT(Value::Int(3).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, CompareMixedNumeric) {
  EXPECT_EQ(Value::Int(2).Compare(Value::Double(2.0)), 0);
  EXPECT_LT(Value::Int(2).Compare(Value::Double(2.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_LT(Value::String("abc").Compare(Value::String("abd")), 0);
  EXPECT_EQ(Value::String("x").Compare(Value::String("x")), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-1000)), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
  EXPECT_GT(Value::Int(0).Compare(Value::Null()), 0);
}

TEST(ValueTest, HashEqualForEqualValues) {
  EXPECT_EQ(Value::Int(7).Hash(), Value::Int(7).Hash());
  EXPECT_EQ(Value::String("a").Hash(), Value::String("a").Hash());
  // Whole doubles hash like equal ints (join compatibility).
  EXPECT_EQ(Value::Double(7.0).Hash(), Value::Int(7).Hash());
}

TEST(ValueTest, SizeBytes) {
  EXPECT_DOUBLE_EQ(Value::Int(1).SizeBytes(), 8);
  EXPECT_DOUBLE_EQ(Value::String("abcd").SizeBytes(), 8);  // 4 + len
}

TEST(ValueTest, AsStatDoubleMonotoneOnStrings) {
  double a = Value::String("apple").AsStatDouble();
  double b = Value::String("banana").AsStatDouble();
  EXPECT_LT(a, b);
}

TEST(RowTest, HashRowDiffersOnContent) {
  Row a = {Value::Int(1), Value::String("x")};
  Row b = {Value::Int(1), Value::String("y")};
  EXPECT_NE(HashRow(a), HashRow(b));
  Row c = {Value::Int(1), Value::String("x")};
  EXPECT_EQ(HashRow(a), HashRow(c));
}

TEST(SchemaTest, FindColumnUnqualified) {
  Schema s({{"id", TypeId::kInt64, "t", false},
            {"name", TypeId::kString, "t", true}});
  EXPECT_EQ(s.FindColumn("name", ""), 1);
  EXPECT_EQ(s.FindColumn("missing", ""), -1);
}

TEST(SchemaTest, FindColumnQualified) {
  Schema s({{"id", TypeId::kInt64, "a", false},
            {"id", TypeId::kInt64, "b", false}});
  EXPECT_EQ(s.FindColumn("id", "a"), 0);
  EXPECT_EQ(s.FindColumn("id", "b"), 1);
  EXPECT_EQ(s.FindColumn("id", ""), -2);  // ambiguous
}

TEST(SchemaTest, Concat) {
  Schema a({{"x", TypeId::kInt64, "l", false}});
  Schema b({{"y", TypeId::kString, "r", true}});
  Schema c = Schema::Concat(a, b);
  ASSERT_EQ(c.num_columns(), 2);
  EXPECT_EQ(c.column(0).name, "x");
  EXPECT_EQ(c.column(1).name, "y");
}

}  // namespace
}  // namespace mtcache
