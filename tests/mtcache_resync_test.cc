#include <algorithm>

#include <gtest/gtest.h>

#include "check/consistency.h"
#include "mtcache/mtcache.h"
#include "repl/fault.h"

namespace mtcache {
namespace {

/// Snapshot/resync crash tests: killing a cached-view copy mid-flight must
/// either roll back cleanly or complete on retry — never leave a
/// half-populated backing table visible to the optimizer.
class MtcacheResyncTest : public ::testing::Test {
 protected:
  MtcacheResyncTest()
      : backend_(ServerOptions{"backend", "dbo", {}}, &clock_, &links_),
        cache_(ServerOptions{"cache", "dbo", {}}, &clock_, &links_),
        repl_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(backend_
                    .ExecuteScript(
                        "CREATE TABLE product (p_id INT PRIMARY KEY, "
                        "p_name VARCHAR(30), p_cat VARCHAR(10), "
                        "p_price FLOAT)")
                    .ok());
    for (int i = 1; i <= 40; ++i) {
      std::string cat = i % 2 == 0 ? "hot" : "cold";
      ASSERT_TRUE(backend_
                      .ExecuteScript("INSERT INTO product VALUES (" +
                                     std::to_string(i) + ", 'p" +
                                     std::to_string(i) + "', '" + cat +
                                     "', " + std::to_string(i * 2.0) + ")")
                      .ok());
    }
    backend_.RecomputeStats();
    auto setup = MTCache::Setup(&cache_, &backend_, &repl_);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
    mtcache_ = setup.ConsumeValue();
    mtcache_->set_fault_plan(&plan_);
    repl_.set_fault_plan(&plan_);
  }

  Status CreateHotView() {
    return mtcache_->CreateCachedView(
        "hot_products",
        "SELECT p_id, p_name FROM product WHERE p_cat = 'hot'");
  }

  /// Rows currently in a backing table, straight off the heap (bypasses the
  /// optimizer, which might otherwise route around a broken replica).
  std::vector<std::string> BackingRows(const std::string& name) {
    std::vector<std::string> rows;
    StoredTable* table = cache_.db().GetStoredTable(name);
    if (table == nullptr) return rows;
    for (RowId rid = 0; rid < table->heap().slot_count(); ++rid) {
      if (!table->heap().IsLive(rid)) continue;
      std::string s;
      for (const Value& v : table->heap().Get(rid)) {
        s += v.ToSqlLiteral();
        s += "|";
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  void ExpectConsistent() {
    ASSERT_TRUE(DrainPipeline(&repl_, &clock_).ok());
    ConsistencyReport report =
        ConsistencyChecker(&repl_, &backend_, &cache_).Check();
    EXPECT_TRUE(report.ok()) << report.ToString();
  }

  SimClock clock_;
  LinkedServerRegistry links_;
  Server backend_;
  Server cache_;
  ReplicationSystem repl_;
  std::unique_ptr<MTCache> mtcache_;
  FaultPlan plan_;
};

TEST_F(MtcacheResyncTest, CreateCrashMidCopyRollsBackCompletely) {
  plan_.AddRule(FaultSite::kSnapshotRow, FaultAction::kCrash, 5);
  Status crashed = CreateHotView();
  EXPECT_EQ(crashed.code(), StatusCode::kUnavailable) << crashed.ToString();
  // Nothing of the view survives: no catalog entry, no storage, so the
  // optimizer cannot possibly match a query to a half-populated replica.
  EXPECT_EQ(cache_.db().catalog().GetTable("hot_products"), nullptr);
  EXPECT_EQ(cache_.db().GetStoredTable("hot_products"), nullptr);
  EXPECT_EQ(mtcache_->DropCachedView("hot_products").code(),
            StatusCode::kNotFound);
  // Queries on the cache still answer correctly (routed to the backend).
  auto r = cache_.Execute(
      "SELECT COUNT(*) FROM product WHERE p_cat = 'hot'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 20);
}

TEST_F(MtcacheResyncTest, CreateCompletesOnRetryAfterCrash) {
  plan_.AddRule(FaultSite::kSnapshotRow, FaultAction::kCrash, 5);
  EXPECT_EQ(CreateHotView().code(), StatusCode::kUnavailable);
  // The retry starts from scratch and completes.
  ASSERT_TRUE(CreateHotView().ok());
  EXPECT_EQ(static_cast<int64_t>(BackingRows("hot_products").size()), 20);
  // The recovered view replicates normally from its new snapshot position.
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO product VALUES (41, 'p41', 'hot', 82.0)")
                  .ok());
  ExpectConsistent();
  EXPECT_EQ(static_cast<int64_t>(BackingRows("hot_products").size()), 21);
}

TEST_F(MtcacheResyncTest, RefreshCrashMidCopyRestoresOldContents) {
  ASSERT_TRUE(CreateHotView().ok());
  // Simulate divergence (the condition a resync repairs): tamper a row out
  // of the backing table behind replication's back.
  {
    StoredTable* backing = cache_.db().GetStoredTable("hot_products");
    ASSERT_NE(backing, nullptr);
    auto txn = cache_.db().txn_manager().Begin();
    RowId victim = -1;
    for (RowId rid = 0; rid < backing->heap().slot_count(); ++rid) {
      if (backing->heap().IsLive(rid)) {
        victim = rid;
        break;
      }
    }
    ASSERT_GE(victim, 0);
    ASSERT_TRUE(backing->Delete(victim, txn.get()).ok());
    cache_.db().txn_manager().Commit(txn.get(), clock_.Now());
  }
  std::vector<std::string> tampered = BackingRows("hot_products");
  ASSERT_EQ(tampered.size(), 19u);

  // Visit counts are absolute over the plan's lifetime; aim the crash at
  // the 7th row of the upcoming refresh copy.
  plan_.AddRule(FaultSite::kSnapshotRow, FaultAction::kCrash,
                plan_.visits(FaultSite::kSnapshotRow) + 7);
  Status crashed = mtcache_->RefreshCachedView("hot_products");
  EXPECT_EQ(crashed.code(), StatusCode::kUnavailable) << crashed.ToString();
  // Rolled back cleanly: the exact pre-refresh contents, not a half-copied
  // mix of old and new rows.
  EXPECT_EQ(BackingRows("hot_products"), tampered);
  // The view is left unsubscribed, and the checker refuses to bless it.
  const TableDef* def = cache_.db().catalog().GetTable("hot_products");
  ASSERT_NE(def, nullptr);
  EXPECT_LT(def->subscription_id, 0);
  ConsistencyReport report =
      ConsistencyChecker(&repl_, &backend_, &cache_).Check();
  EXPECT_FALSE(report.ok());

  // Retrying the refresh repairs everything, including divergence that
  // accumulated while the view was dead.
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO product VALUES (42, 'p42', 'hot', 84.0)")
                  .ok());
  ASSERT_TRUE(mtcache_->RefreshCachedView("hot_products").ok());
  EXPECT_EQ(static_cast<int64_t>(BackingRows("hot_products").size()), 21);
  ExpectConsistent();
}

TEST_F(MtcacheResyncTest, OtherViewsKeepReplicatingWhileOneResyncFails) {
  ASSERT_TRUE(CreateHotView().ok());
  ASSERT_TRUE(mtcache_
                  ->CreateCachedView(
                      "cheap_products",
                      "SELECT p_id, p_price FROM product WHERE p_price <= 20")
                  .ok());
  plan_.AddRule(FaultSite::kSnapshotRow, FaultAction::kCrash,
                plan_.visits(FaultSite::kSnapshotRow) + 7);
  EXPECT_EQ(mtcache_->RefreshCachedView("hot_products").code(),
            StatusCode::kUnavailable);
  // The untouched view still receives changes.
  ASSERT_TRUE(backend_
                  .ExecuteScript(
                      "INSERT INTO product VALUES (43, 'p43', 'cold', 3.0)")
                  .ok());
  ASSERT_TRUE(DrainPipeline(&repl_, &clock_).ok());
  std::vector<std::string> cheap = BackingRows("cheap_products");
  EXPECT_EQ(cheap.size(), 11u);  // 10 loaded + the new cheap row
  // Repair the failed view; everything converges.
  ASSERT_TRUE(mtcache_->RefreshCachedView("hot_products").ok());
  ExpectConsistent();
}

}  // namespace
}  // namespace mtcache
