#include <gtest/gtest.h>

#include "sql/parser.h"

namespace mtcache {
namespace {

std::unique_ptr<SelectStmt> MustSelect(const std::string& sql) {
  auto result = ParseSql(sql);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << " for: " << sql;
  if (!result.ok()) return nullptr;
  EXPECT_EQ((*result)->kind, StmtKind::kSelect);
  return std::unique_ptr<SelectStmt>(
      static_cast<SelectStmt*>(result.ConsumeValue().release()));
}

TEST(LexerTest, BasicTokens) {
  auto toks = Tokenize("SELECT a, 42 FROM t WHERE x <= 3.5 AND y = 'it''s'");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "select");
  EXPECT_EQ((*toks)[3].int_val, 42);
  bool found_string = false;
  for (const Token& t : *toks) {
    if (t.type == TokenType::kString) {
      EXPECT_EQ(t.text, "it's");
      found_string = true;
    }
  }
  EXPECT_TRUE(found_string);
}

TEST(LexerTest, ParamsAndComments) {
  auto toks = Tokenize("-- comment line\nSELECT @P1");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].text, "select");
  EXPECT_EQ((*toks)[1].type, TokenType::kParam);
  EXPECT_EQ((*toks)[1].text, "@p1");
}

TEST(LexerTest, NotEqualVariants) {
  auto toks = Tokenize("a <> b != c");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[1].text, "<>");
  EXPECT_EQ((*toks)[3].text, "<>");
}

TEST(LexerTest, UnterminatedStringRejected) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, FloatExponentForms) {
  auto toks = Tokenize("1e-7 2.5E+3 3e2 1e");
  ASSERT_TRUE(toks.ok());
  EXPECT_EQ((*toks)[0].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*toks)[0].float_val, 1e-7);
  EXPECT_EQ((*toks)[1].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*toks)[1].float_val, 2500.0);
  EXPECT_EQ((*toks)[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ((*toks)[2].float_val, 300.0);
  // No digit after the 'e': lexes as (int, identifier), same as before
  // exponents were supported.
  EXPECT_EQ((*toks)[3].type, TokenType::kInt);
  EXPECT_EQ((*toks)[4].type, TokenType::kIdent);
}

TEST(ParserTest, DoubleLiteralUnparseParseRoundTrip) {
  const double cases[] = {0.1234567891, 1e-7, 1e30, 4.0, -2.5e-9};
  for (double d : cases) {
    std::string sql = "SELECT " + Value::Double(d).ToSqlLiteral() + " FROM t";
    auto sel = MustSelect(sql);
    ASSERT_NE(sel, nullptr);
    const Expr* e = sel->items[0].expr.get();
    bool negated = e->kind == ExprKind::kUnary;
    if (negated) e = static_cast<const UnaryExpr*>(e)->operand.get();
    ASSERT_EQ(e->kind, ExprKind::kLiteral) << sql;
    const Value& v = static_cast<const LiteralExpr*>(e)->value;
    ASSERT_EQ(v.type(), TypeId::kDouble) << sql;
    EXPECT_EQ(negated ? -v.AsDouble() : v.AsDouble(), d) << sql;
  }
}

TEST(ParserTest, SimpleSelect) {
  auto sel = MustSelect("SELECT cid, cname FROM customer WHERE cid <= 1000");
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->items.size(), 2u);
  ASSERT_EQ(sel->from.size(), 1u);
  EXPECT_EQ(sel->from[0].name, "customer");
  ASSERT_NE(sel->where, nullptr);
  EXPECT_EQ(sel->where->kind, ExprKind::kBinary);
}

TEST(ParserTest, SelectStarAndQualifiedStar) {
  auto sel = MustSelect("SELECT * FROM t");
  ASSERT_NE(sel, nullptr);
  EXPECT_TRUE(sel->items[0].star);
  auto sel2 = MustSelect("SELECT t.* FROM t");
  ASSERT_NE(sel2, nullptr);
  EXPECT_TRUE(sel2->items[0].star);
  EXPECT_EQ(sel2->items[0].star_qualifier, "t");
}

TEST(ParserTest, TopAndDistinct) {
  auto sel = MustSelect("SELECT DISTINCT TOP 50 a FROM t");
  ASSERT_NE(sel, nullptr);
  EXPECT_TRUE(sel->distinct);
  EXPECT_EQ(sel->top, 50);
}

TEST(ParserTest, JoinWithOn) {
  auto sel = MustSelect(
      "SELECT c.name, o.total FROM customer c JOIN orders o ON c.id = o.cid");
  ASSERT_NE(sel, nullptr);
  ASSERT_EQ(sel->joins.size(), 1u);
  EXPECT_EQ(sel->joins[0].kind, JoinKind::kInner);
  EXPECT_EQ(sel->joins[0].table.name, "orders");
  EXPECT_EQ(sel->joins[0].table.alias, "o");
  EXPECT_EQ(sel->from[0].alias, "c");
}

TEST(ParserTest, LeftOuterJoin) {
  auto sel = MustSelect("SELECT a FROM t LEFT OUTER JOIN u ON t.x = u.x");
  ASSERT_NE(sel, nullptr);
  ASSERT_EQ(sel->joins.size(), 1u);
  EXPECT_EQ(sel->joins[0].kind, JoinKind::kLeftOuter);
}

TEST(ParserTest, CommaJoinList) {
  auto sel = MustSelect(
      "SELECT 1 FROM a, b, c WHERE a.x = b.x AND b.y = c.y");
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->from.size(), 3u);
}

TEST(ParserTest, DerivedTable) {
  auto sel = MustSelect(
      "SELECT r.o_id FROM (SELECT TOP 10 o_id FROM orders ORDER BY o_date "
      "DESC) r");
  ASSERT_NE(sel, nullptr);
  ASSERT_EQ(sel->from.size(), 1u);
  EXPECT_NE(sel->from[0].derived, nullptr);
  EXPECT_EQ(sel->from[0].alias, "r");
  EXPECT_EQ(sel->from[0].derived->top, 10);
}

TEST(ParserTest, GroupByHavingOrderBy) {
  auto sel = MustSelect(
      "SELECT i_id, SUM(qty) total FROM ol GROUP BY i_id "
      "HAVING SUM(qty) > 5 ORDER BY total DESC, i_id");
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->group_by.size(), 1u);
  ASSERT_NE(sel->having, nullptr);
  ASSERT_EQ(sel->order_by.size(), 2u);
  EXPECT_TRUE(sel->order_by[0].desc);
  EXPECT_FALSE(sel->order_by[1].desc);
  EXPECT_EQ(sel->items[1].alias, "total");
}

TEST(ParserTest, Aggregates) {
  auto sel = MustSelect("SELECT COUNT(*), AVG(x), MIN(y) FROM t");
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->items[0].expr->kind, ExprKind::kAggregate);
  auto* cnt = static_cast<AggregateExpr*>(sel->items[0].expr.get());
  EXPECT_EQ(cnt->func, AggFunc::kCountStar);
}

TEST(ParserTest, ParameterizedQuery) {
  auto sel = MustSelect(
      "SELECT cid, cname, caddress FROM customer WHERE cid <= @cid");
  ASSERT_NE(sel, nullptr);
  auto* cmp = static_cast<BinaryExpr*>(sel->where.get());
  EXPECT_EQ(cmp->op, BinaryOp::kLe);
  EXPECT_EQ(cmp->right->kind, ExprKind::kParam);
  EXPECT_EQ(static_cast<ParamExpr*>(cmp->right.get())->name, "@cid");
}

TEST(ParserTest, LikeInBetween) {
  auto sel = MustSelect(
      "SELECT a FROM t WHERE title LIKE '%db%' AND x IN (1, 2, 3) "
      "AND y BETWEEN 5 AND 9 AND z IS NOT NULL");
  ASSERT_NE(sel, nullptr);
}

TEST(ParserTest, ScalarAssignmentSelect) {
  auto sel = MustSelect("SELECT @c = COUNT(*) FROM t WHERE x = 1");
  ASSERT_NE(sel, nullptr);
  ASSERT_EQ(sel->into_vars.size(), 1u);
  EXPECT_EQ(sel->into_vars[0], "@c");
}

TEST(ParserTest, LinkedServerTableRef) {
  auto sel = MustSelect(
      "SELECT ol.id, ps.name FROM orderline ol, partserver.part ps "
      "WHERE ol.id = ps.id");
  ASSERT_NE(sel, nullptr);
  EXPECT_EQ(sel->from[1].server, "partserver");
  EXPECT_EQ(sel->from[1].name, "part");
}

TEST(ParserTest, InsertValues) {
  auto r = ParseSql("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* ins = static_cast<InsertStmt*>(r->get());
  EXPECT_EQ(ins->table, "t");
  EXPECT_EQ(ins->columns.size(), 2u);
  EXPECT_EQ(ins->rows.size(), 2u);
}

TEST(ParserTest, InsertSelect) {
  auto r = ParseSql("INSERT INTO ol (a) SELECT x FROM cart WHERE cart_id = 3");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* ins = static_cast<InsertStmt*>(r->get());
  EXPECT_NE(ins->select, nullptr);
}

TEST(ParserTest, UpdateDelete) {
  auto r = ParseSql("UPDATE t SET a = a + 1, b = 'z' WHERE id = @id");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* upd = static_cast<UpdateStmt*>(r->get());
  EXPECT_EQ(upd->sets.size(), 2u);
  auto r2 = ParseSql("DELETE FROM t WHERE id = 3");
  ASSERT_TRUE(r2.ok());
}

TEST(ParserTest, CreateTable) {
  auto r = ParseSql(
      "CREATE TABLE item (i_id INT PRIMARY KEY, i_title VARCHAR(60) NOT NULL, "
      "i_cost FLOAT, i_pub_date DATETIME)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* ct = static_cast<CreateTableStmt*>(r->get());
  EXPECT_EQ(ct->table, "item");
  ASSERT_EQ(ct->columns.size(), 4u);
  EXPECT_TRUE(ct->columns[0].primary_key);
  EXPECT_EQ(ct->columns[1].type, TypeId::kString);
  EXPECT_TRUE(ct->columns[1].not_null);
  EXPECT_EQ(ct->columns[2].type, TypeId::kDouble);
  EXPECT_EQ(ct->columns[3].type, TypeId::kInt64);
}

TEST(ParserTest, CreateTableCompositePk) {
  auto r = ParseSql(
      "CREATE TABLE ol (o_id INT, ol_num INT, PRIMARY KEY (o_id, ol_num))");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* ct = static_cast<CreateTableStmt*>(r->get());
  EXPECT_EQ(ct->primary_key, (std::vector<std::string>{"o_id", "ol_num"}));
}

TEST(ParserTest, CreateIndex) {
  auto r = ParseSql("CREATE UNIQUE INDEX i_pk ON item (i_id)");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* ci = static_cast<CreateIndexStmt*>(r->get());
  EXPECT_TRUE(ci->unique);
  EXPECT_EQ(ci->table, "item");
}

TEST(ParserTest, CreateCachedMaterializedView) {
  auto r = ParseSql(
      "CREATE CACHED MATERIALIZED VIEW cust1000 AS "
      "SELECT cid, cname FROM customer WHERE cid <= 1000");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* cv = static_cast<CreateViewStmt*>(r->get());
  EXPECT_TRUE(cv->cached);
  EXPECT_EQ(cv->view, "cust1000");
  EXPECT_NE(cv->select, nullptr);
}

TEST(ParserTest, CreateProcedureCapturesBody) {
  auto r = ParseSql(
      "CREATE PROCEDURE getcart(@id INT) AS BEGIN "
      "SELECT * FROM cart WHERE id = @id; "
      "IF @id > 0 BEGIN SELECT 1 FROM t END "
      "END");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* cp = static_cast<CreateProcedureStmt*>(r->get());
  EXPECT_EQ(cp->name, "getcart");
  ASSERT_EQ(cp->params.size(), 1u);
  EXPECT_EQ(cp->params[0].first, "@id");
  // Body text contains both statements and balanced inner BEGIN/END.
  EXPECT_NE(cp->body_source.find("IF @id > 0"), std::string::npos);
  EXPECT_NE(cp->body_source.find("SELECT 1 FROM t"), std::string::npos);
  // The body can itself be parsed as a script.
  auto body = ParseSqlScript(cp->body_source);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ(body->size(), 2u);
}

TEST(ParserTest, ProcedureBodyWithTransaction) {
  auto r = ParseSql(
      "CREATE PROCEDURE buy(@c INT) AS BEGIN "
      "BEGIN TRANSACTION; "
      "INSERT INTO orders (o_id) VALUES (@c); "
      "COMMIT "
      "END");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* cp = static_cast<CreateProcedureStmt*>(r->get());
  auto body = ParseSqlScript(cp->body_source);
  ASSERT_TRUE(body.ok()) << body.status().ToString();
  EXPECT_EQ((*body)[0]->kind, StmtKind::kBeginTxn);
  EXPECT_EQ((*body)[2]->kind, StmtKind::kCommitTxn);
}

TEST(ParserTest, ExecStatement) {
  auto r = ParseSql("EXEC getbestsellers 'history', @p");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* ex = static_cast<ExecStmt*>(r->get());
  EXPECT_EQ(ex->procedure, "getbestsellers");
  EXPECT_EQ(ex->args.size(), 2u);
}

TEST(ParserTest, DeclareSetIfScript) {
  auto r = ParseSqlScript(
      "DECLARE @total FLOAT = 0; "
      "SET @total = @total + 1.5; "
      "IF @total > 1 BEGIN SET @total = 0 END ELSE SET @total = 2;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 3u);
  EXPECT_EQ((*r)[0]->kind, StmtKind::kDeclare);
  EXPECT_EQ((*r)[1]->kind, StmtKind::kSetVar);
  auto* iff = static_cast<IfStmt*>((*r)[2].get());
  EXPECT_EQ(iff->then_branch.size(), 1u);
  EXPECT_EQ(iff->else_branch.size(), 1u);
}

TEST(ParserTest, OperatorPrecedence) {
  auto sel = MustSelect("SELECT a FROM t WHERE a + 2 * 3 = 8 OR b = 1 AND c = 2");
  ASSERT_NE(sel, nullptr);
  // Root must be OR.
  auto* root = static_cast<BinaryExpr*>(sel->where.get());
  EXPECT_EQ(root->op, BinaryOp::kOr);
  // Left: (a + (2*3)) = 8
  auto* left = static_cast<BinaryExpr*>(root->left.get());
  EXPECT_EQ(left->op, BinaryOp::kEq);
  auto* add = static_cast<BinaryExpr*>(left->left.get());
  EXPECT_EQ(add->op, BinaryOp::kAdd);
  EXPECT_EQ(static_cast<BinaryExpr*>(add->right.get())->op, BinaryOp::kMul);
}

TEST(ParserTest, ExprToSqlRoundTrip) {
  auto sel = MustSelect("SELECT a FROM t WHERE x <= @p AND name LIKE 'a%'");
  ASSERT_NE(sel, nullptr);
  std::string text = ExprToSql(*sel->where);
  EXPECT_NE(text.find("x <= @p"), std::string::npos);
  EXPECT_NE(text.find("LIKE 'a%'"), std::string::npos);
  // Re-parse the unparsed text inside a query.
  auto again = ParseSql("SELECT a FROM t WHERE " + text);
  EXPECT_TRUE(again.ok()) << again.status().ToString();
}

TEST(ParserTest, CloneSelectDeepCopies) {
  auto sel = MustSelect(
      "SELECT TOP 5 a, SUM(b) s FROM t JOIN u ON t.x = u.x WHERE t.y > @p "
      "GROUP BY a ORDER BY s DESC");
  ASSERT_NE(sel, nullptr);
  auto copy = CloneSelect(*sel);
  EXPECT_EQ(copy->top, 5);
  EXPECT_EQ(copy->joins.size(), 1u);
  EXPECT_EQ(copy->order_by.size(), 1u);
  // Mutating the copy leaves the original intact.
  copy->top = 99;
  EXPECT_EQ(sel->top, 5);
}

TEST(ParserTest, SyntaxErrorsReported) {
  EXPECT_FALSE(ParseSql("SELECT FROM").ok());
  EXPECT_FALSE(ParseSql("SELEC a FROM t").ok());
  EXPECT_FALSE(ParseSql("INSERT INTO t VALUE (1)").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSql("CREATE PROCEDURE p AS BEGIN SELECT 1").ok());
}

TEST(ParserTest, DropStatements) {
  auto table = ParseSql("DROP TABLE t");
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(static_cast<DropStmt*>(table->get())->what, DropKind::kTable);

  auto index = ParseSql("DROP INDEX idx ON t");
  ASSERT_TRUE(index.ok());
  auto* di = static_cast<DropStmt*>(index->get());
  EXPECT_EQ(di->what, DropKind::kIndex);
  EXPECT_EQ(di->name, "idx");
  EXPECT_EQ(di->table, "t");

  auto view = ParseSql("DROP MATERIALIZED VIEW v");
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(static_cast<DropStmt*>(view->get())->what, DropKind::kView);

  auto proc = ParseSql("DROP PROCEDURE p");
  ASSERT_TRUE(proc.ok());
  EXPECT_EQ(static_cast<DropStmt*>(proc->get())->what, DropKind::kProcedure);

  EXPECT_FALSE(ParseSql("DROP banana b").ok());
}

TEST(ParserTest, GrantRevokeStatements) {
  auto grant = ParseSql("GRANT SELECT, INSERT ON t TO alice");
  ASSERT_TRUE(grant.ok()) << grant.status().ToString();
  auto* g = static_cast<GrantStmt*>(grant->get());
  EXPECT_TRUE(g->grant);
  EXPECT_EQ(g->privileges, (std::vector<std::string>{"select", "insert"}));
  EXPECT_EQ(g->table, "t");
  EXPECT_EQ(g->user, "alice");

  auto revoke = ParseSql("REVOKE ALL ON t FROM bob");
  ASSERT_TRUE(revoke.ok());
  EXPECT_FALSE(static_cast<GrantStmt*>(revoke->get())->grant);
  // GRANT ... FROM is a syntax error (and vice versa).
  EXPECT_FALSE(ParseSql("GRANT SELECT ON t FROM alice").ok());
}

TEST(ParserTest, ExplainStatement) {
  auto r = ParseSql("EXPLAIN SELECT a FROM t WHERE a > 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* e = static_cast<ExplainStmt*>(r->get());
  EXPECT_FALSE(e->analyze);
  ASSERT_NE(e->target, nullptr);
  ASSERT_EQ(e->target->kind, StmtKind::kSelect);
  EXPECT_EQ(static_cast<SelectStmt*>(e->target.get())->items.size(), 1u);
}

TEST(ParserTest, ExplainAnalyze) {
  auto r = ParseSql("EXPLAIN ANALYZE SELECT a FROM t");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto* e = static_cast<ExplainStmt*>(r->get());
  EXPECT_TRUE(e->analyze);
  ASSERT_NE(e->target, nullptr);
  EXPECT_EQ(e->target->kind, StmtKind::kSelect);
  // ANALYZE would execute the statement; that is only allowed for SELECT.
  EXPECT_FALSE(ParseSql("EXPLAIN ANALYZE DELETE FROM t").ok());
}

TEST(ParserTest, ExplainDml) {
  auto ins = ParseSql("EXPLAIN INSERT INTO t VALUES (1)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  EXPECT_EQ(static_cast<ExplainStmt*>(ins->get())->target->kind,
            StmtKind::kInsert);
  auto upd = ParseSql("EXPLAIN UPDATE t SET a = 2 WHERE a = 1");
  ASSERT_TRUE(upd.ok()) << upd.status().ToString();
  EXPECT_EQ(static_cast<ExplainStmt*>(upd->get())->target->kind,
            StmtKind::kUpdate);
  auto del = ParseSql("EXPLAIN DELETE FROM t WHERE a = 1");
  ASSERT_TRUE(del.ok()) << del.status().ToString();
  EXPECT_EQ(static_cast<ExplainStmt*>(del->get())->target->kind,
            StmtKind::kDelete);
  // Non-plannable statements stay rejected.
  EXPECT_FALSE(ParseSql("EXPLAIN CREATE TABLE t (a INT)").ok());
}

TEST(ParserTest, SetStatisticsProfile) {
  auto on = ParseSql("SET STATISTICS PROFILE ON");
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  auto* s = static_cast<SetOptionStmt*>(on->get());
  EXPECT_EQ(s->option, "statistics profile");
  EXPECT_TRUE(s->on);
  auto off = ParseSql("SET STATISTICS PROFILE OFF");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(static_cast<SetOptionStmt*>(off->get())->on);
  EXPECT_FALSE(ParseSql("SET STATISTICS PROFILE MAYBE").ok());
  // Plain variable SET still parses.
  auto var = ParseSql("SET @x = 1");
  ASSERT_TRUE(var.ok());
  EXPECT_EQ(var->get()->kind, StmtKind::kSetVar);
}

TEST(ParserTest, MaxStalenessClause) {
  auto r = ParseSql("SELECT a FROM t WHERE a = 1 WITH MAXSTALENESS 30");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_DOUBLE_EQ(static_cast<SelectStmt*>(r->get())->max_staleness, 30.0);
  auto frac = ParseSql("SELECT a FROM t WITH MAXSTALENESS 0.5");
  ASSERT_TRUE(frac.ok());
  EXPECT_DOUBLE_EQ(static_cast<SelectStmt*>(frac->get())->max_staleness, 0.5);
  EXPECT_FALSE(ParseSql("SELECT a FROM t WITH MAXSTALENESS").ok());
  EXPECT_FALSE(ParseSql("SELECT a FROM t WITH MAXSTALENESS 'soon'").ok());
}

TEST(ParserTest, CaseExpressions) {
  auto searched = MustSelect(
      "SELECT CASE WHEN a > 1 THEN 'big' WHEN a > 0 THEN 'small' "
      "ELSE 'neg' END FROM t");
  ASSERT_NE(searched, nullptr);
  auto* c = static_cast<CaseExpr*>(searched->items[0].expr.get());
  EXPECT_EQ(c->operand, nullptr);
  EXPECT_EQ(c->branches.size(), 2u);
  EXPECT_NE(c->else_expr, nullptr);

  auto simple = MustSelect("SELECT CASE a WHEN 1 THEN 'one' END FROM t");
  ASSERT_NE(simple, nullptr);
  auto* s = static_cast<CaseExpr*>(simple->items[0].expr.get());
  EXPECT_NE(s->operand, nullptr);
  EXPECT_EQ(s->else_expr, nullptr);

  // Round trip through ExprToSql.
  std::string text = ExprToSql(*searched->items[0].expr);
  EXPECT_NE(text.find("CASE WHEN"), std::string::npos);
  EXPECT_TRUE(ParseSql("SELECT " + text + " FROM t").ok()) << text;

  EXPECT_FALSE(ParseSql("SELECT CASE END FROM t").ok());
  EXPECT_FALSE(ParseSql("SELECT CASE WHEN a THEN 1 FROM t").ok());
}

TEST(ParserTest, WhileStatement) {
  auto r = ParseSqlScript(
      "DECLARE @i INT = 0; WHILE @i < 10 BEGIN SET @i = @i + 1 END;");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->size(), 2u);
  auto* w = static_cast<WhileStmt*>((*r)[1].get());
  EXPECT_NE(w->condition, nullptr);
  EXPECT_EQ(w->body.size(), 1u);
  // Single-statement body without BEGIN/END.
  auto single = ParseSqlScript("WHILE @i < 10 SET @i = @i + 1;");
  ASSERT_TRUE(single.ok()) << single.status().ToString();
}

TEST(ParserTest, UnionAllChains) {
  auto sel = MustSelect(
      "SELECT a FROM t WHERE a = 1 UNION ALL SELECT a FROM t WHERE a = 2 "
      "UNION ALL SELECT b FROM u");
  ASSERT_NE(sel, nullptr);
  ASSERT_NE(sel->union_next, nullptr);
  ASSERT_NE(sel->union_next->union_next, nullptr);
  EXPECT_EQ(sel->union_next->union_next->from[0].name, "u");
  // Plain UNION (without ALL) is not supported.
  EXPECT_FALSE(ParseSql("SELECT a FROM t UNION SELECT a FROM t").ok());
}

TEST(ParserTest, ScriptSplitting) {
  auto r = ParseSqlScript("SELECT 1; SELECT 2; ; SELECT 3;");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace mtcache
