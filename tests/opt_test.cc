#include <gtest/gtest.h>

#include "binder/binder.h"
#include "engine/server.h"
#include "opt/cardinality.h"
#include "opt/optimizer.h"
#include "opt/unparse.h"
#include "opt/view_matching.h"
#include "sql/parser.h"

namespace mtcache {
namespace {

// ---------------------------------------------------------------------------
// Fixtures: a standalone catalog with synthetic statistics (no storage
// needed: the optimizer works purely from the catalog, which is the whole
// point of shadowed statistics).
// ---------------------------------------------------------------------------

ColumnStats MakeStats(double min, double max, double ndv) {
  ColumnStats cs;
  cs.min = min;
  cs.max = max;
  cs.ndv = ndv;
  return cs;
}

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef customer;
    customer.name = "customer";
    customer.schema = Schema({{"cid", TypeId::kInt64, "customer", false},
                              {"cname", TypeId::kString, "customer", true},
                              {"region", TypeId::kString, "customer", true}});
    customer.primary_key = {0};
    customer.indexes.push_back(IndexDef{"customer_pk", {0}, true});
    customer.stats.row_count = 10000;
    customer.stats.columns = {MakeStats(1, 10000, 10000),
                              MakeStats(0, 1, 9000), MakeStats(0, 1, 4)};
    ASSERT_TRUE(catalog_.CreateTable(std::move(customer)).ok());

    TableDef orders;
    orders.name = "orders";
    orders.schema = Schema({{"okey", TypeId::kInt64, "orders", false},
                            {"ckey", TypeId::kInt64, "orders", true},
                            {"total", TypeId::kDouble, "orders", true}});
    orders.primary_key = {0};
    orders.indexes.push_back(IndexDef{"orders_pk", {0}, true});
    orders.indexes.push_back(IndexDef{"orders_ckey", {1}, false});
    orders.stats.row_count = 50000;
    orders.stats.columns = {MakeStats(1, 50000, 50000),
                            MakeStats(1, 10000, 10000),
                            MakeStats(0, 5000, 20000)};
    ASSERT_TRUE(catalog_.CreateTable(std::move(orders)).ok());
  }

  LogicalPtr Bind(const std::string& sql) {
    auto stmt = ParseSql(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status().ToString();
    Binder binder(&catalog_, "dbo");
    auto plan = binder.BindSelect(static_cast<const SelectStmt&>(**stmt));
    EXPECT_TRUE(plan.ok()) << plan.status().ToString() << "\n" << sql;
    return plan.ok() ? plan.ConsumeValue() : nullptr;
  }

  OptimizeResult Optimize(const std::string& sql,
                          OptimizerOptions opts = {}) {
    LogicalPtr logical = Bind(sql);
    Optimizer optimizer(&catalog_, opts);
    auto result = optimizer.Optimize(*logical);
    EXPECT_TRUE(result.ok()) << result.status().ToString() << "\n" << sql;
    return result.ok() ? result.ConsumeValue() : OptimizeResult{};
  }

  Catalog catalog_;
};

TEST_F(OptimizerTest, PointLookupPicksPkIndexSeek) {
  OptimizeResult r = Optimize("SELECT cname FROM customer WHERE cid = 7");
  std::string text = PhysicalToString(*r.plan);
  EXPECT_NE(text.find("IndexSeek(customer.customer_pk)"), std::string::npos)
      << text;
  EXPECT_LT(r.est_rows, 3);
}

TEST_F(OptimizerTest, UnselectivePredicatePrefersSeqScan) {
  OptimizeResult r = Optimize("SELECT cname FROM customer WHERE cid > 5");
  std::string text = PhysicalToString(*r.plan);
  EXPECT_NE(text.find("SeqScan(customer)"), std::string::npos) << text;
}

TEST_F(OptimizerTest, RangePredicateUsesIndexWhenSelective) {
  OptimizeResult r = Optimize(
      "SELECT cname FROM customer WHERE cid >= 100 AND cid <= 120");
  std::string text = PhysicalToString(*r.plan);
  EXPECT_NE(text.find("IndexSeek(customer.customer_pk)"), std::string::npos)
      << text;
}

TEST_F(OptimizerTest, EquiJoinWithIndexedInnerUsesIndexNLJoin) {
  OptimizeResult r = Optimize(
      "SELECT c.cname, o.total FROM customer c, orders o "
      "WHERE c.cid = 3 AND c.cid = o.ckey");
  std::string text = PhysicalToString(*r.plan);
  EXPECT_NE(text.find("IndexNLJoin(orders.orders_ckey)"), std::string::npos)
      << text;
}

TEST_F(OptimizerTest, JoinCommutesBuildOntoSmallerInput) {
  // Left side is the big orders table, right side the smaller customer
  // table: building on the (selective) left side is wrong; the planner
  // should either keep build=right or probe the orders index. Conversely,
  // with a tiny filtered LEFT input and a huge right input, the commuted
  // plan (build on left) wins.
  OptimizeResult r = Optimize(
      "SELECT c.cname FROM customer c, orders o "
      "WHERE c.region = 'east' AND c.cid = o.okey");
  std::string text = PhysicalToString(*r.plan);
  if (text.find("HashJoin") != std::string::npos) {
    // If a hash join was chosen, the build side (second child) must be the
    // filtered customer input, i.e. the plan is the commuted one whose
    // first child scans orders.
    EXPECT_NE(text.find("Project"), std::string::npos) << text;
  } else {
    // Otherwise the index path on orders.okey is fine too.
    EXPECT_NE(text.find("IndexNLJoin"), std::string::npos) << text;
  }
  // Execution correctness of the commuted shape is covered by the
  // property-based equivalence suite.
}

TEST_F(OptimizerTest, LargeJoinPrefersHashJoin) {
  // Whole-table join: per-probe index seeks are costlier than one build.
  OptimizeResult r = Optimize(
      "SELECT COUNT(*) FROM orders o, customer c WHERE o.ckey = c.cid");
  std::string text = PhysicalToString(*r.plan);
  EXPECT_NE(text.find("HashJoin"), std::string::npos) << text;
}

TEST_F(OptimizerTest, FilterPushdownThroughJoin) {
  OptimizeResult r = Optimize(
      "SELECT c.cname FROM customer c, orders o "
      "WHERE c.cid = o.ckey AND c.region = 'east' AND o.total > 4999");
  std::string text = PhysicalToString(*r.plan);
  // Both single-table conjuncts sit below the join as filters/seeks, not in
  // a residual above it.
  size_t join_pos = text.find("Join");
  ASSERT_NE(join_pos, std::string::npos);
  size_t region_pos = text.find("region");
  size_t total_pos = text.find("total >");
  EXPECT_GT(region_pos, join_pos) << text;  // below = printed after the join
  EXPECT_GT(total_pos, join_pos) << text;
}

TEST_F(OptimizerTest, CardinalityEstimatesAreSane) {
  LogicalPtr scan = Bind("SELECT cid FROM customer");
  RelStats all = EstimateLogical(*scan);
  EXPECT_DOUBLE_EQ(all.rows, 10000);

  LogicalPtr eq = Bind("SELECT cid FROM customer WHERE cid = 5");
  EXPECT_NEAR(EstimateLogical(*eq).rows, 1, 1);

  LogicalPtr half = Bind("SELECT cid FROM customer WHERE cid <= 5000");
  EXPECT_NEAR(EstimateLogical(*half).rows, 5000, 500);

  LogicalPtr join = Bind(
      "SELECT c.cid FROM customer c, orders o WHERE c.cid = o.ckey");
  EXPECT_NEAR(EstimateLogical(*join).rows, 50000, 5000);
}

TEST_F(OptimizerTest, GuardProbabilityUniformAssumption) {
  ColumnStats cs = MakeStats(0, 1000, 1000);
  EXPECT_NEAR(EstimateGuardProbability(CompareOp::kLe, 250, cs), 0.25, 1e-9);
  EXPECT_NEAR(EstimateGuardProbability(CompareOp::kGe, 250, cs), 0.75, 1e-9);
  EXPECT_NEAR(EstimateGuardProbability(CompareOp::kLe, 2000, cs), 1.0, 1e-9);
}

TEST_F(OptimizerTest, SelectivityOfLiteralPredicates) {
  // Predicate ordinals reference the base-table schema, so take the stats
  // straight from the catalog (what the Get node would report).
  RelStats stats;
  const TableDef* customer = catalog_.GetTable("customer");
  stats.rows = customer->stats.row_count;
  stats.cols = customer->stats.columns;
  Binder binder(&catalog_, "dbo");
  auto parse_pred = [&](const std::string& where) {
    auto stmt = ParseSql("SELECT cid FROM customer WHERE " + where);
    auto plan = binder.BindSelect(static_cast<const SelectStmt&>(**stmt));
    // plan: Project(Filter(Get)); grab the filter predicate.
    const LogicalOp* filter = plan->get()->children[0].get();
    EXPECT_EQ(filter->kind, LogicalKind::kFilter);
    return CloneBound(*static_cast<const LogicalFilter*>(filter)->predicate);
  };
  EXPECT_NEAR(EstimateSelectivity(*parse_pred("cid = 7"), stats), 1e-4, 1e-5);
  EXPECT_NEAR(EstimateSelectivity(*parse_pred("cid <= 2500"), stats), 0.25,
              0.01);
  EXPECT_NEAR(EstimateSelectivity(*parse_pred("region = 'east'"), stats),
              0.25, 0.01);
  double d = EstimateSelectivity(*parse_pred("cid <= 2500 AND region = 'east'"),
                                 stats);
  EXPECT_NEAR(d, 0.0625, 0.01);  // independence
}

// ---------------------------------------------------------------------------
// View matching unit tests (structural, no execution).
// ---------------------------------------------------------------------------

class ViewMatchingTest : public OptimizerTest {
 protected:
  void AddView(const std::string& name, std::vector<std::string> columns,
               std::vector<SimplePredicate> preds,
               RelationKind kind = RelationKind::kCachedView) {
    const TableDef* base = catalog_.GetTable("customer");
    TableDef view;
    view.name = name;
    view.kind = kind;
    view.view_def = SelectProjectDef{"customer", columns, preds};
    for (const std::string& col : columns) {
      int ord = base->ColumnOrdinal(col);
      ColumnInfo info = base->schema.column(ord);
      info.table = name;
      view.schema.AddColumn(info);
      view.stats.columns.push_back(base->stats.columns[ord]);
    }
    view.primary_key = {0};
    view.indexes.push_back(IndexDef{name + "_pk", {0}, true});
    view.stats.row_count = 5000;
    view.freshness_time = 0;
    ASSERT_TRUE(catalog_.CreateTable(std::move(view)).ok());
  }

  std::vector<ViewMatch> Match(const std::string& sql) {
    LogicalPtr plan = Bind(sql);
    // Normalized shape from the binder here: Project(Filter(Get)) or
    // Project(Get).
    LogicalOp* node = plan->children[0].get();
    const BoundExpr* pred = nullptr;
    const LogicalGet* get = nullptr;
    if (node->kind == LogicalKind::kFilter) {
      pred = static_cast<LogicalFilter*>(node)->predicate.get();
      get = static_cast<const LogicalGet*>(node->children[0].get());
    } else {
      get = static_cast<const LogicalGet*>(node);
    }
    std::vector<const BoundExpr*> conjuncts;
    if (pred != nullptr) CollectConjuncts(*pred, &conjuncts);
    std::set<int> used;
    for (const auto& e :
         static_cast<LogicalProject*>(plan.get())->exprs) {
      std::vector<int> refs;
      CollectColumnRefs(*e, &refs);
      used.insert(refs.begin(), refs.end());
    }
    matches_storage_ = MatchViews(*get, conjuncts, used, catalog_,
                                  /*allow_mixed_results=*/true);
    return std::move(matches_storage_);
  }

  std::vector<ViewMatch> matches_storage_;
};

TEST_F(ViewMatchingTest, UnconditionalContainment) {
  AddView("cust5000", {"cid", "cname"},
          {{"cid", CompareOp::kLe, Value::Int(5000)}});
  auto matches = Match("SELECT cname FROM customer WHERE cid <= 3000");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].guard, nullptr);
  EXPECT_NE(matches[0].substitute, nullptr);
}

TEST_F(ViewMatchingTest, NoMatchWhenRegionNotContained) {
  AddView("cust5000", {"cid", "cname"},
          {{"cid", CompareOp::kLe, Value::Int(5000)}});
  auto matches = Match("SELECT cname FROM customer WHERE cid <= 7000");
  EXPECT_TRUE(matches.empty());
}

TEST_F(ViewMatchingTest, NoMatchWhenColumnMissing) {
  AddView("cust_noname", {"cid"}, {});
  auto matches = Match("SELECT cname FROM customer WHERE cid = 5");
  EXPECT_TRUE(matches.empty());
}

TEST_F(ViewMatchingTest, EqualityImpliesRange) {
  AddView("cust5000", {"cid", "cname"},
          {{"cid", CompareOp::kLe, Value::Int(5000)}});
  auto matches = Match("SELECT cname FROM customer WHERE cid = 123");
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(matches[0].guard, nullptr);
}

TEST_F(ViewMatchingTest, ParameterizedMatchProducesGuard) {
  AddView("cust5000", {"cid", "cname"},
          {{"cid", CompareOp::kLe, Value::Int(5000)}});
  auto matches = Match("SELECT cname FROM customer WHERE cid <= @p");
  ASSERT_EQ(matches.size(), 1u);
  ASSERT_NE(matches[0].guard, nullptr);
  EXPECT_EQ(BoundToSql(*matches[0].guard), "(@p <= 5000)");
  // Fl under the uniform assumption: 5000 of [1,10000] ~ 0.5.
  EXPECT_NEAR(matches[0].guard_prob, 0.5, 0.05);
}

TEST_F(ViewMatchingTest, ParameterizedEqualityGuard) {
  AddView("cust5000", {"cid", "cname"},
          {{"cid", CompareOp::kLe, Value::Int(5000)}});
  auto matches = Match("SELECT cname FROM customer WHERE cid = @p");
  ASSERT_EQ(matches.size(), 1u);
  ASSERT_NE(matches[0].guard, nullptr);
  EXPECT_EQ(BoundToSql(*matches[0].guard), "(@p <= 5000)");
}

TEST_F(ViewMatchingTest, MixedPlanOnlyForRegularMatviews) {
  AddView("cached_v", {"cid", "cname"},
          {{"cid", CompareOp::kLe, Value::Int(5000)}},
          RelationKind::kCachedView);
  auto cached = Match("SELECT cname FROM customer WHERE cid <= @p");
  ASSERT_EQ(cached.size(), 1u);
  EXPECT_EQ(cached[0].mixed, nullptr) << "cached views never mix (§5.1.1)";

  ASSERT_TRUE(catalog_.DropTable("cached_v").ok());
  AddView("regular_v", {"cid", "cname"},
          {{"cid", CompareOp::kLe, Value::Int(5000)}},
          RelationKind::kMaterializedView);
  auto regular = Match("SELECT cname FROM customer WHERE cid <= @p");
  ASSERT_EQ(regular.size(), 1u);
  EXPECT_NE(regular[0].mixed, nullptr);
  EXPECT_EQ(regular[0].mixed->kind, LogicalKind::kUnionAll);
}

TEST_F(ViewMatchingTest, MultiplePredicatesAllMustBeImplied) {
  AddView("east5000", {"cid", "cname", "region"},
          {{"cid", CompareOp::kLe, Value::Int(5000)},
           {"region", CompareOp::kEq, Value::String("east")}});
  auto ok = Match(
      "SELECT cname FROM customer WHERE cid <= 100 AND region = 'east'");
  EXPECT_EQ(ok.size(), 1u);
  auto missing_region = Match("SELECT cname FROM customer WHERE cid <= 100");
  EXPECT_TRUE(missing_region.empty());
}

TEST_F(ViewMatchingTest, FreshnessGateSkipsStaleViews) {
  AddView("cust5000", {"cid", "cname"},
          {{"cid", CompareOp::kLe, Value::Int(5000)}});
  TableDef* view = catalog_.GetTable("cust5000");
  view->freshness_time = 100.0;

  LogicalPtr plan = Bind("SELECT cname FROM customer WHERE cid <= 10");
  LogicalOp* filter = plan->children[0].get();
  const auto* get =
      static_cast<const LogicalGet*>(filter->children[0].get());
  std::vector<const BoundExpr*> conjuncts;
  CollectConjuncts(*static_cast<LogicalFilter*>(filter)->predicate,
                   &conjuncts);
  std::set<int> used = {0, 1};
  // Stale beyond budget: now=200, staleness budget 30 -> 100s behind.
  EXPECT_TRUE(MatchViews(*get, conjuncts, used, catalog_, true, 30.0, 200.0)
                  .empty());
  // Within budget.
  EXPECT_EQ(MatchViews(*get, conjuncts, used, catalog_, true, 150.0, 200.0)
                .size(),
            1u);
  // No budget: always eligible.
  EXPECT_EQ(MatchViews(*get, conjuncts, used, catalog_, true).size(), 1u);
}

// ---------------------------------------------------------------------------
// Unparser round trips (shipped SQL must re-parse and re-bind remotely).
// ---------------------------------------------------------------------------

class UnparseTest : public OptimizerTest {};

TEST_F(UnparseTest, RoundTripsThroughParserAndBinder) {
  const char* kQueries[] = {
      "SELECT cname FROM customer WHERE cid <= 100",
      "SELECT c.cname, o.total FROM customer c, orders o WHERE c.cid = o.ckey "
      "AND o.total > 10",
      "SELECT region, COUNT(*) FROM customer GROUP BY region",
      "SELECT TOP 5 okey FROM orders ORDER BY total DESC",
      "SELECT DISTINCT region FROM customer",
      "SELECT cname FROM customer WHERE cid <= @p AND cname LIKE 'a%'",
      "SELECT CASE WHEN cid > 100 THEN region ELSE cname END FROM customer",
  };
  for (const char* sql : kQueries) {
    LogicalPtr plan = Bind(sql);
    ASSERT_TRUE(IsUnparsable(*plan)) << sql;
    auto text = LogicalToSql(*plan);
    ASSERT_TRUE(text.ok()) << sql << ": " << text.status().ToString();
    // The shipped text must parse and bind on a server with the same
    // catalog (the backend's situation).
    auto reparsed = ParseSql(*text);
    ASSERT_TRUE(reparsed.ok()) << *text;
    Binder binder(&catalog_, "dbo");
    auto rebound =
        binder.BindSelect(static_cast<const SelectStmt&>(**reparsed));
    ASSERT_TRUE(rebound.ok()) << *text << "\n" << rebound.status().ToString();
    // Same output arity.
    EXPECT_EQ((*rebound)->schema.num_columns(), plan->schema.num_columns())
        << sql;
  }
}

TEST_F(UnparseTest, DualScanIsNotShippable) {
  LogicalPtr plan = Bind("SELECT 1 + 1");
  EXPECT_FALSE(IsUnparsable(*plan));
}

// ---------------------------------------------------------------------------
// Normalization shapes via plan text.
// ---------------------------------------------------------------------------

TEST_F(OptimizerTest, PredicateNotPushedPastLimit) {
  // Filtering above TOP must not leak below it (semantics!).
  LogicalPtr inner = Bind(
      "SELECT x.okey FROM (SELECT TOP 10 okey FROM orders ORDER BY total "
      "DESC) x WHERE x.okey > 100");
  Optimizer optimizer(&catalog_, {});
  auto result = optimizer.Optimize(*inner);
  ASSERT_TRUE(result.ok());
  std::string text = PhysicalToString(*result->plan);
  // The okey filter must appear ABOVE (printed before) the Limit.
  size_t filter_pos = text.find("okey > 100");
  size_t limit_pos = text.find("Limit");
  ASSERT_NE(filter_pos, std::string::npos) << text;
  ASSERT_NE(limit_pos, std::string::npos) << text;
  EXPECT_LT(filter_pos, limit_pos) << text;
}

TEST_F(OptimizerTest, OuterJoinPredicateNotPushedToNullSide) {
  OptimizeResult r = Optimize(
      "SELECT c.cname FROM customer c LEFT OUTER JOIN orders o "
      "ON c.cid = o.ckey WHERE o.total IS NULL");
  std::string text = PhysicalToString(*r.plan);
  // The IS NULL test must sit above the join.
  size_t join_pos = text.find("Join");
  size_t null_pos = text.find("IS NULL");
  ASSERT_NE(join_pos, std::string::npos);
  ASSERT_NE(null_pos, std::string::npos);
  EXPECT_LT(null_pos, join_pos) << text;
}

}  // namespace
}  // namespace mtcache
