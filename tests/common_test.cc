#include <gtest/gtest.h>

#include "common/random.h"
#include "common/sim_clock.h"
#include "common/status.h"
#include "common/string_util.h"

namespace mtcache {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("table t");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NotFound: table t");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::PermissionDenied("x").code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotImplemented("x").code(), StatusCode::kNotImplemented);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

StatusOr<int> ReturnsValue() { return 42; }
StatusOr<int> ReturnsError() { return Status::Internal("boom"); }

Status UsesAssignOrReturn(int* out) {
  MT_ASSIGN_OR_RETURN(int v, ReturnsValue());
  *out = v;
  return Status::Ok();
}

Status PropagatesError(int* out) {
  MT_ASSIGN_OR_RETURN(int v, ReturnsError());
  *out = v;
  return Status::Ok();
}

TEST(StatusOrTest, MacroAssignsValue) {
  int out = 0;
  ASSERT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 42);
}

TEST(StatusOrTest, MacroPropagatesError) {
  int out = 0;
  Status s = PropagatesError(&out);
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(out, 0);
}

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RandomTest, UniformStaysInRange) {
  Random r(123);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.Uniform(5, 9);
    EXPECT_GE(v, 5);
    EXPECT_LE(v, 9);
  }
}

TEST(RandomTest, ExponentialMeanApproximately) {
  Random r(99);
  double total = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += r.Exponential(2.0);
  EXPECT_NEAR(total / n, 2.0, 0.1);
}

TEST(RandomTest, AlphaStringRespectsLengthBounds) {
  Random r(5);
  for (int i = 0; i < 100; ++i) {
    std::string s = r.AlphaString(3, 8);
    EXPECT_GE(s.size(), 3u);
    EXPECT_LE(s.size(), 8u);
    for (char c : s) {
      EXPECT_GE(c, 'a');
      EXPECT_LE(c, 'z');
    }
  }
}

TEST(StringUtilTest, ToLower) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringUtilTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("WHERE", "where"));
  EXPECT_FALSE(EqualsIgnoreCase("WHERE", "were"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(StringUtilTest, LikeMatchPercent) {
  EXPECT_TRUE(LikeMatch("hello world", "%world"));
  EXPECT_TRUE(LikeMatch("hello world", "hello%"));
  EXPECT_TRUE(LikeMatch("hello world", "%lo wo%"));
  EXPECT_TRUE(LikeMatch("abc", "%"));
  EXPECT_FALSE(LikeMatch("abc", "abd%"));
}

TEST(StringUtilTest, LikeMatchUnderscore) {
  EXPECT_TRUE(LikeMatch("cat", "c_t"));
  EXPECT_FALSE(LikeMatch("caat", "c_t"));
  EXPECT_TRUE(LikeMatch("caat", "c__t"));
}

TEST(StringUtilTest, LikeMatchExact) {
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
  EXPECT_FALSE(LikeMatch("ab", "abc"));
}

TEST(StringUtilTest, SqlQuoteEscapesQuotes) {
  EXPECT_EQ(SqlQuote("o'brien"), "'o''brien'");
  EXPECT_EQ(SqlQuote("plain"), "'plain'");
}

TEST(SimClockTest, AdvancesMonotonically) {
  SimClock clock;
  EXPECT_DOUBLE_EQ(clock.Now(), 0.0);
  clock.Advance(1.5);
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
  clock.AdvanceTo(1.0);  // backwards move ignored
  EXPECT_DOUBLE_EQ(clock.Now(), 1.5);
  clock.AdvanceTo(3.0);
  EXPECT_DOUBLE_EQ(clock.Now(), 3.0);
}

}  // namespace
}  // namespace mtcache
