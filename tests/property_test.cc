#include <algorithm>

#include <gtest/gtest.h>

#include "check/consistency.h"
#include "common/random.h"
#include "mtcache/mtcache.h"

namespace mtcache {
namespace {

// ===========================================================================
// Property 1 — routing transparency: for randomly generated queries, the
// cache server returns exactly what the backend returns, under EVERY
// optimizer configuration (view matching on/off, dynamic plans on/off,
// cost-based vs heuristic routing, pull-up on/off). This is the paper's
// transparency requirement stated as an executable property.
// ===========================================================================

class QueryEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  QueryEquivalenceTest()
      : backend_(ServerOptions{"backend", "dbo", {}}, &clock_, &links_),
        cache_(ServerOptions{"cache", "dbo", {}}, &clock_, &links_),
        repl_(&clock_), rng_(GetParam() * 7919 + 13) {}

  void SetUp() override {
    ASSERT_TRUE(backend_
                    .ExecuteScript(
                        "CREATE TABLE customer (cid INT PRIMARY KEY, "
                        "cname VARCHAR(30), region VARCHAR(10), "
                        "balance FLOAT); "
                        "CREATE TABLE orders (okey INT PRIMARY KEY, "
                        "ckey INT, qty INT, total FLOAT); "
                        "CREATE INDEX orders_ckey ON orders (ckey);")
                    .ok());
    static const char* kRegions[] = {"east", "west", "north", "south"};
    for (int i = 1; i <= 300; ++i) {
      ASSERT_TRUE(backend_
                      .ExecuteScript(
                          "INSERT INTO customer VALUES (" + std::to_string(i) +
                          ", 'name" + std::to_string(i % 37) + "', '" +
                          kRegions[i % 4] + "', " + std::to_string(i * 0.5) +
                          ")")
                      .ok());
    }
    for (int i = 1; i <= 600; ++i) {
      ASSERT_TRUE(backend_
                      .ExecuteScript(
                          "INSERT INTO orders VALUES (" + std::to_string(i) +
                          ", " + std::to_string(i % 300 + 1) + ", " +
                          std::to_string(i % 7 + 1) + ", " +
                          std::to_string(i * 1.25) + ")")
                      .ok());
    }
    backend_.RecomputeStats();
    auto setup = MTCache::Setup(&cache_, &backend_, &repl_);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
    mtcache_ = setup.ConsumeValue();
    // A partial customer view and a full orders view, so random queries hit
    // unconditional matches, conditional matches, and misses.
    ASSERT_TRUE(mtcache_
                    ->CreateCachedView("cust150",
                                       "SELECT cid, cname, region FROM "
                                       "customer WHERE cid <= 150")
                    .ok());
    ASSERT_TRUE(mtcache_
                    ->CreateCachedView(
                        "orders_all",
                        "SELECT okey, ckey, qty, total FROM orders")
                    .ok());
  }

  // --- random query generator ---------------------------------------------

  std::string RandomCustomerPredicate(ParamMap* params, int* param_counter) {
    switch (rng_.Uniform(0, 4)) {
      case 0:
        return "cid = " + std::to_string(rng_.Uniform(1, 320));
      case 1:
        return "cid <= " + std::to_string(rng_.Uniform(1, 320));
      case 2: {
        static const char* kRegions[] = {"east", "west", "north", "nowhere"};
        return std::string("region = '") + kRegions[rng_.Uniform(0, 3)] + "'";
      }
      case 3:
        return "cname LIKE 'name1%'";
      default: {
        // Parameterized: exercises dynamic plans.
        std::string name = "@p" + std::to_string((*param_counter)++);
        (*params)[name] = Value::Int(rng_.Uniform(1, 320));
        return "cid <= " + name;
      }
    }
  }

  std::string RandomQuery(ParamMap* params) {
    int param_counter = 0;
    int shape = static_cast<int>(rng_.Uniform(0, 7));
    std::string sql;
    switch (shape) {
      case 0:  // select-project-filter on customer
        sql = "SELECT cid, cname FROM customer WHERE " +
              RandomCustomerPredicate(params, &param_counter);
        break;
      case 1:  // conjunction
        sql = "SELECT cid, region FROM customer WHERE " +
              RandomCustomerPredicate(params, &param_counter) + " AND " +
              RandomCustomerPredicate(params, &param_counter);
        break;
      case 2:  // join
        sql = "SELECT c.cid, o.total FROM customer c, orders o "
              "WHERE c.cid = o.ckey AND " +
              RandomCustomerPredicate(params, &param_counter);
        break;
      case 3:  // aggregation
        sql = "SELECT region, COUNT(*), SUM(balance) FROM customer WHERE " +
              RandomCustomerPredicate(params, &param_counter) +
              " GROUP BY region";
        break;
      case 4:  // top-k
        sql = "SELECT TOP 7 okey, total FROM orders WHERE qty = " +
              std::to_string(rng_.Uniform(1, 7)) + " ORDER BY total DESC, okey";
        break;
      case 5:  // CASE projection
        sql = "SELECT cid, CASE WHEN balance > " +
              std::to_string(rng_.Uniform(10, 140)) +
              " THEN 'rich' WHEN region = 'east' THEN 'east' ELSE 'other' "
              "END FROM customer WHERE " +
              RandomCustomerPredicate(params, &param_counter);
        break;
      default:  // UNION ALL of two filtered selects
        sql = "SELECT cid FROM customer WHERE " +
              RandomCustomerPredicate(params, &param_counter) +
              " UNION ALL SELECT ckey FROM orders WHERE okey <= " +
              std::to_string(rng_.Uniform(1, 40));
        break;
    }
    return sql;
  }

  // Canonical form for comparison: sorted multiset of rendered rows.
  static std::vector<std::string> Canonical(const QueryResult& result) {
    std::vector<std::string> rows;
    for (const Row& row : result.rows) {
      std::string s;
      for (const Value& v : row) {
        s += v.ToSqlLiteral();
        s += "|";
      }
      rows.push_back(std::move(s));
    }
    std::sort(rows.begin(), rows.end());
    return rows;
  }

  SimClock clock_;
  LinkedServerRegistry links_;
  Server backend_;
  Server cache_;
  ReplicationSystem repl_;
  std::unique_ptr<MTCache> mtcache_;
  Random rng_;
};

TEST_P(QueryEquivalenceTest, CacheAgreesWithBackendUnderAllConfigs) {
  struct Config {
    const char* name;
    void (*tweak)(OptimizerOptions*);
  };
  static const Config kConfigs[] = {
      {"default", [](OptimizerOptions*) {}},
      {"no view matching",
       [](OptimizerOptions* o) { o->enable_view_matching = false; }},
      {"no dynamic plans",
       [](OptimizerOptions* o) { o->enable_dynamic_plans = false; }},
      {"heuristic routing",
       [](OptimizerOptions* o) { o->cost_based_routing = false; }},
      {"no pull-up",
       [](OptimizerOptions* o) { o->pull_up_chooseplan = false; }},
      {"no mixed results",
       [](OptimizerOptions* o) { o->allow_mixed_results = false; }},
  };
  const OptimizerOptions base = cache_.optimizer_options();

  for (int q = 0; q < 25; ++q) {
    ParamMap params;
    std::string sql = RandomQuery(&params);
    ExecStats stats;
    auto expected = backend_.Execute(sql, params, &stats);
    ASSERT_TRUE(expected.ok()) << sql << "\n" << expected.status().ToString();
    std::vector<std::string> want = Canonical(*expected);

    for (const Config& config : kConfigs) {
      OptimizerOptions opts = base;
      config.tweak(&opts);
      cache_.set_optimizer_options(opts);
      auto got = cache_.Execute(sql, params, &stats);
      ASSERT_TRUE(got.ok())
          << config.name << ": " << sql << "\n" << got.status().ToString();
      EXPECT_EQ(Canonical(*got), want) << config.name << ": " << sql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueryEquivalenceTest, ::testing::Range(0, 8));

// ===========================================================================
// Property 2 — replication convergence: after any randomized DML workload
// over the published tables, the invariant checker proves every cached view
// equals the select-project of its base table, and the transactions applied
// at the cache are a prefix of backend commit order. The workload generator
// draws inserts, updates, deletes, and multi-statement transactions over
// several tables; the ConsistencyChecker recomputes ground truth itself, so
// no per-view expected-rows fixture is needed.
// ===========================================================================

class ReplicationConvergenceTest : public ::testing::TestWithParam<int> {
 protected:
  ReplicationConvergenceTest()
      : backend_(ServerOptions{"backend", "dbo", {}}, &clock_, &links_),
        cache_(ServerOptions{"cache", "dbo", {}}, &clock_, &links_),
        repl_(&clock_), rng_(GetParam() * 104729 + 7) {}

  void SetUp() override {
    ASSERT_TRUE(backend_
                    .ExecuteScript(
                        "CREATE TABLE stock (sid INT PRIMARY KEY, "
                        "sym VARCHAR(8), px FLOAT, active INT); "
                        "CREATE TABLE trades (tid INT PRIMARY KEY, "
                        "sid INT, qty INT, side VARCHAR(4))")
                    .ok());
    for (int i = 1; i <= 60; ++i) {
      ASSERT_TRUE(backend_
                      .ExecuteScript("INSERT INTO stock VALUES (" +
                                     std::to_string(i) + ", 'S" +
                                     std::to_string(i % 9) + "', " +
                                     std::to_string(i * 1.5) + ", " +
                                     std::to_string(i % 2) + ")")
                      .ok());
    }
    for (int i = 1; i <= 40; ++i) {
      ASSERT_TRUE(backend_
                      .ExecuteScript("INSERT INTO trades VALUES (" +
                                     std::to_string(i) + ", " +
                                     std::to_string(i % 60 + 1) + ", " +
                                     std::to_string(i % 5 + 1) + ", '" +
                                     (i % 2 == 0 ? "buy" : "sell") + "')")
                      .ok());
    }
    backend_.RecomputeStats();
    auto setup = MTCache::Setup(&cache_, &backend_, &repl_);
    ASSERT_TRUE(setup.ok());
    mtcache_ = setup.ConsumeValue();
    // Three view shapes: filtered projection, range predicate, full copy.
    ASSERT_TRUE(mtcache_
                    ->CreateCachedView("active_stock",
                                       "SELECT sid, sym, px FROM stock "
                                       "WHERE active = 1")
                    .ok());
    ASSERT_TRUE(mtcache_
                    ->CreateCachedView("cheap_stock",
                                       "SELECT sid, px FROM stock "
                                       "WHERE px <= 40")
                    .ok());
    ASSERT_TRUE(mtcache_
                    ->CreateCachedView("trades_all",
                                       "SELECT tid, sid, qty, side "
                                       "FROM trades")
                    .ok());
    next_id_ = 1000;
  }

  void RandomDml() {
    switch (rng_.Uniform(0, 5)) {
      case 0: {  // insert (sometimes into the article regions, sometimes not)
        int64_t id = next_id_++;
        ASSERT_TRUE(backend_
                        .ExecuteScript("INSERT INTO stock VALUES (" +
                                       std::to_string(id) + ", 'N', " +
                                       std::to_string(rng_.Uniform(1, 80)) +
                                       ".0, " +
                                       std::to_string(rng_.Uniform(0, 1)) +
                                       ")")
                        .ok());
        break;
      }
      case 1: {  // update price (moves rows across cheap_stock's range) or
                 // flip membership in active_stock
        std::string set = rng_.Bernoulli(0.5)
                              ? "px = px + " + std::to_string(rng_.Uniform(1, 30))
                              : "active = 1 - active";
        ASSERT_TRUE(backend_
                        .ExecuteScript("UPDATE stock SET " + set +
                                       " WHERE sid % 13 = " +
                                       std::to_string(rng_.Uniform(0, 12)))
                        .ok());
        break;
      }
      case 2: {  // delete a stripe
        ASSERT_TRUE(backend_
                        .ExecuteScript("DELETE FROM stock WHERE sid % 17 = " +
                                       std::to_string(rng_.Uniform(0, 16)))
                        .ok());
        break;
      }
      case 3: {  // trade flow on the second published table
        ASSERT_TRUE(backend_
                        .ExecuteScript("INSERT INTO trades VALUES (" +
                                       std::to_string(next_id_++) + ", " +
                                       std::to_string(rng_.Uniform(1, 60)) +
                                       ", 1, 'buy')")
                        .ok());
        break;
      }
      case 4: {  // cross-table multi-statement transaction
        ASSERT_TRUE(backend_
                        .ExecuteScript(
                            std::string("BEGIN TRANSACTION; ") +
                            "INSERT INTO trades VALUES (" +
                            std::to_string(next_id_++) +
                            ", 1, 2, 'sell'); " +
                            "UPDATE stock SET px = px + 0.5 WHERE sid = 1; " +
                            "COMMIT;")
                        .ok());
        break;
      }
      default: {  // multi-statement transaction, sometimes rolled back
        bool commit = rng_.Bernoulli(0.7);
        ASSERT_TRUE(backend_
                        .ExecuteScript(
                            std::string("BEGIN TRANSACTION; ") +
                            "INSERT INTO stock VALUES (" +
                            std::to_string(next_id_++) + ", 'T', 2.0, 1); " +
                            "UPDATE stock SET px = px * 1.1 WHERE active = 1; " +
                            (commit ? "COMMIT;" : "ROLLBACK;"))
                        .ok());
        break;
      }
    }
  }

  SimClock clock_;
  LinkedServerRegistry links_;
  Server backend_;
  Server cache_;
  ReplicationSystem repl_;
  std::unique_ptr<MTCache> mtcache_;
  Random rng_;
  int64_t next_id_ = 1000;
};

TEST_P(ReplicationConvergenceTest, CheckerProvesViewsEqualAfterEveryRound) {
  ConsistencyChecker checker(&repl_, &backend_, &cache_);
  for (int round = 0; round < 10; ++round) {
    int burst = static_cast<int>(rng_.Uniform(1, 5));
    for (int i = 0; i < burst; ++i) RandomDml();
    clock_.Advance(0.3);
    ASSERT_TRUE(repl_.RunOnce(nullptr, nullptr).ok());
    // One fault-free round fully propagates the burst; the checker
    // recomputes every view against the backend and diffs row-by-row, and
    // verifies applied txns are a prefix of commit order.
    ConsistencyReport report = checker.Check();
    EXPECT_TRUE(report.ok())
        << "diverged after round " << round << ":\n" << report.ToString();
  }
  // No residue left anywhere in the pipeline.
  EXPECT_TRUE(repl_.Quiesced());
  EXPECT_EQ(repl_.PendingChanges(), 0);
  EXPECT_EQ(backend_.db().log().size(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReplicationConvergenceTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace mtcache
