#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "check/consistency.h"
#include "mtcache/mtcache.h"
#include "repl/fault.h"

namespace mtcache {
namespace {

// Column lookup by name, so the tests don't depend on DMV column order.
int ColumnOrdinal(const QueryResult& r, const std::string& col) {
  for (int i = 0; i < r.schema.num_columns(); ++i) {
    if (r.schema.column(i).name == col) return i;
  }
  ADD_FAILURE() << "no column " << col;
  return -1;
}

int64_t IntCol(const QueryResult& r, const std::string& col, size_t row = 0) {
  int ord = ColumnOrdinal(r, col);
  return ord < 0 ? -1 : r.rows[row][ord].AsInt();
}

double DoubleCol(const QueryResult& r, const std::string& col,
                 size_t row = 0) {
  int ord = ColumnOrdinal(r, col);
  return ord < 0 ? -1 : r.rows[row][ord].AsDouble();
}

std::string StringCol(const QueryResult& r, const std::string& col,
                      size_t row = 0) {
  int ord = ColumnOrdinal(r, col);
  return ord < 0 ? "" : r.rows[row][ord].AsString();
}

// ---------------------------------------------------------------------------
// Standalone server: plan-cache counters, trace ring, rollups.
// ---------------------------------------------------------------------------

class DmvTest : public ::testing::Test {
 protected:
  DmvTest() : server_(ServerOptions{"s", "dbo", {}}) {}

  void SetUp() override {
    ASSERT_TRUE(server_
                    .ExecuteScript(
                        "CREATE TABLE t (id INT PRIMARY KEY, x FLOAT)")
                    .ok());
    for (int i = 1; i <= 20; ++i) {
      ASSERT_TRUE(server_
                      .ExecuteScript("INSERT INTO t VALUES (" +
                                     std::to_string(i) + ", " +
                                     std::to_string(i * 0.5) + ")")
                      .ok());
    }
  }

  Server server_;
};

TEST_F(DmvTest, PlanCacheCountersVisibleThroughDmv) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server_.Execute("SELECT id FROM t WHERE x > 1.0").ok());
  }
  // 1 miss + 2 hits so far; the DMV query below is itself a miss, counted
  // before its scan materializes the row.
  auto r = server_.Execute("SELECT * FROM sys.dm_plan_cache");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(IntCol(*r, "hits"), 2);
  EXPECT_EQ(IntCol(*r, "misses"), 2);
  EXPECT_EQ(IntCol(*r, "uncacheable"), 0);
  EXPECT_DOUBLE_EQ(DoubleCol(*r, "hit_rate"), 0.5);
  EXPECT_EQ(IntCol(*r, "cached_statements"), 2);
}

TEST_F(DmvTest, InvalidationCountedAndRepansAfterFlush) {
  ASSERT_TRUE(server_.Execute("SELECT COUNT(*) FROM t").ok());
  ASSERT_TRUE(server_.Execute("SELECT COUNT(*) FROM t").ok());
  EXPECT_EQ(server_.plan_cache_stats().hits, 1);
  int64_t invalidations_before = server_.plan_cache_stats().invalidations;
  server_.InvalidatePlanCache();
  EXPECT_EQ(server_.plan_cache_stats().invalidations,
            invalidations_before + 1);
  // Replanned from scratch: a miss, not a hit.
  ASSERT_TRUE(server_.Execute("SELECT COUNT(*) FROM t").ok());
  EXPECT_EQ(server_.plan_cache_stats().hits, 1);
  EXPECT_EQ(server_.plan_cache_stats().misses, 2);
  auto r = server_.Execute("SELECT invalidations FROM sys.dm_plan_cache");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(IntCol(*r, "invalidations"), invalidations_before + 1);
}

TEST_F(DmvTest, FreshnessQueriesCountedUncacheableNotMissed) {
  ASSERT_TRUE(
      server_.Execute("SELECT id FROM t WHERE id <= 5 WITH MAXSTALENESS 10")
          .ok());
  EXPECT_EQ(server_.plan_cache_stats().uncacheable, 1);
  // A statement that was never cache-eligible must not dilute the hit-rate.
  EXPECT_EQ(server_.plan_cache_stats().misses, 0);
  EXPECT_EQ(server_.plan_cache_stats().hits, 0);
}

TEST_F(DmvTest, UncachedPlansDoNotPolluteTheSharedCache) {
  // Regression: uncacheable (freshness-constrained) plans used to be stashed
  // under a "#uncached" sentinel key in the statement cache, where the next
  // such statement clobbered the entry while a pointer to it was live, and
  // the sentinel inflated cache-size accounting.
  ASSERT_TRUE(
      server_.Execute("SELECT id FROM t WHERE id <= 5 WITH MAXSTALENESS 10")
          .ok());
  auto r = server_.Execute("SELECT cached_statements FROM sys.dm_plan_cache");
  ASSERT_TRUE(r.ok());
  // Only the DMV query itself was cached; with the sentinel bug this reads 2.
  EXPECT_EQ(IntCol(*r, "cached_statements"), 1);
}

TEST_F(DmvTest, TraceRingKeepsLastNStatements) {
  server_.metrics().set_trace_capacity(4);
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(
        server_.Execute("SELECT id FROM t WHERE id = " + std::to_string(i))
            .ok());
  }
  ASSERT_EQ(server_.metrics().trace().size(), 4u);
  EXPECT_EQ(server_.metrics().trace().back().text,
            "SELECT id FROM t WHERE id = 6");
  EXPECT_EQ(server_.metrics().trace().front().text,
            "SELECT id FROM t WHERE id = 3");
  // Ids stay monotonic across eviction.
  EXPECT_EQ(server_.metrics().trace().back().query_id,
            server_.metrics().trace().front().query_id + 3);
  // The ring is queryable: at scan-open the COUNT query is not yet recorded.
  auto r = server_.Execute("SELECT COUNT(*) FROM sys.dm_exec_requests");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), 4);
}

TEST_F(DmvTest, QueryStatsRollUpRepeatedExecutions) {
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(server_.Execute("SELECT COUNT(*) FROM t").ok());
  }
  auto r = server_.Execute(
      "SELECT executions, rows_returned, local_cost FROM "
      "sys.dm_exec_query_stats WHERE statement = 'SELECT COUNT(*) FROM t'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(IntCol(*r, "executions"), 3);
  EXPECT_EQ(IntCol(*r, "rows_returned"), 3);
  EXPECT_GT(DoubleCol(*r, "local_cost"), 0);
}

TEST_F(DmvTest, TraceRecordsLocalRoutingAndMeasuredCost) {
  ASSERT_TRUE(server_.Execute("SELECT COUNT(*) FROM t").ok());
  const QueryTrace& t = server_.metrics().trace().back();
  EXPECT_EQ(t.routing, "local");
  EXPECT_GT(t.measured_cost, 0);
  EXPECT_DOUBLE_EQ(t.stats.remote_cost, 0);
  EXPECT_EQ(t.rows_returned, 1);
  EXPECT_NE(t.plan.find("SeqScan"), std::string::npos) << t.plan;
}

TEST_F(DmvTest, DmvsAreReadOnlyAndUnknownNamesRejected) {
  EXPECT_FALSE(server_.Execute("SELECT * FROM sys.dm_no_such_view").ok());
  EXPECT_FALSE(
      server_.Execute("INSERT INTO sys.dm_plan_cache VALUES (1)").ok());
}

// ---------------------------------------------------------------------------
// MTCache deployment: optimizer decisions, ChoosePlan branches, currency
// checks, view currency, and replication metrics.
// ---------------------------------------------------------------------------

class DmvMtcacheTest : public ::testing::Test {
 protected:
  DmvMtcacheTest()
      : backend_(ServerOptions{"backend", "dbo", {}}, &clock_, &links_),
        cache_(ServerOptions{"cache1", "dbo", {}}, &clock_, &links_),
        repl_(&clock_) {}

  void SetUp() override {
    ASSERT_TRUE(backend_
                    .ExecuteScript(
                        "CREATE TABLE customer (cid INT PRIMARY KEY, "
                        "cname VARCHAR(30), cbalance FLOAT)")
                    .ok());
    for (int i = 1; i <= 300; ++i) {
      ASSERT_TRUE(backend_
                      .ExecuteScript("INSERT INTO customer VALUES (" +
                                     std::to_string(i) + ", 'name" +
                                     std::to_string(i) + "', 0.0)")
                      .ok());
    }
    backend_.RecomputeStats();
    auto setup = MTCache::Setup(&cache_, &backend_, &repl_);
    ASSERT_TRUE(setup.ok()) << setup.status().ToString();
    mtcache_ = setup.ConsumeValue();
    ASSERT_TRUE(mtcache_
                    ->CreateCachedView("cust200",
                                       "SELECT cid, cname FROM customer "
                                       "WHERE cid <= 200")
                    .ok());
  }

  SimClock clock_;
  LinkedServerRegistry links_;
  Server backend_;
  Server cache_;
  ReplicationSystem repl_;
  std::unique_ptr<MTCache> mtcache_;
};

TEST_F(DmvMtcacheTest, ViewMatchHitsAndMissesCounted) {
  ASSERT_TRUE(
      cache_.Execute("SELECT cid, cname FROM customer WHERE cid = 77").ok());
  EXPECT_EQ(cache_.metrics().optimizer.view_match_hits, 1);
  EXPECT_EQ(cache_.metrics().optimizer.view_match_misses, 0);
  EXPECT_EQ(cache_.metrics().trace().back().routing, "local");

  // Outside the view region with a constant predicate: decided statically,
  // a definite miss that ships the query to the backend.
  ASSERT_TRUE(
      cache_.Execute("SELECT cid, cname FROM customer WHERE cid = 250").ok());
  EXPECT_EQ(cache_.metrics().optimizer.view_match_misses, 1);
  EXPECT_EQ(cache_.metrics().optimizer.remote_plans, 1);
  EXPECT_EQ(cache_.metrics().trace().back().routing, "remote");
  EXPECT_GT(cache_.metrics().trace().back().stats.remote_cost, 0);
}

TEST_F(DmvMtcacheTest, ChoosePlanBranchCountersFollowTheParameter) {
  const std::string sql =
      "SELECT cid, cname FROM customer WHERE cid <= @cid";
  ParamMap params;
  params["@cid"] = Value::Int(100);
  ASSERT_TRUE(cache_.Execute(sql, params, nullptr).ok());
  EXPECT_GE(cache_.metrics().optimizer.view_match_conditional, 1);
  EXPECT_EQ(cache_.metrics().optimizer.dynamic_plans, 1);
  EXPECT_EQ(cache_.metrics().chooseplan.local_branches, 1);
  EXPECT_EQ(cache_.metrics().chooseplan.remote_branches, 0);
  EXPECT_GE(cache_.metrics().chooseplan.guards_evaluated, 2);
  EXPECT_EQ(cache_.metrics().trace().back().routing, "dynamic");

  // Same cached plan, parameter outside the view: the remote arm runs.
  params["@cid"] = Value::Int(250);
  ASSERT_TRUE(cache_.Execute(sql, params, nullptr).ok());
  EXPECT_EQ(cache_.metrics().chooseplan.local_branches, 1);
  EXPECT_EQ(cache_.metrics().chooseplan.remote_branches, 1);
  EXPECT_GT(cache_.plan_cache_stats().hits, 0) << "plan was reused";

  auto r = cache_.Execute(
      "SELECT chooseplan_local, chooseplan_remote, dynamic_plans "
      "FROM sys.dm_plan_cache");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(IntCol(*r, "chooseplan_local"), 1);
  EXPECT_EQ(IntCol(*r, "chooseplan_remote"), 1);
  EXPECT_EQ(IntCol(*r, "dynamic_plans"), 1);
}

TEST_F(DmvMtcacheTest, CurrencyCheckCountersGateOnStaleness) {
  // The snapshot just ran, so the view is current for any positive bound.
  ExecStats fresh_stats;
  ASSERT_TRUE(cache_
                  .Execute(
                      "SELECT cid, cname FROM customer WHERE cid = 50 "
                      "WITH MAXSTALENESS 100",
                      {}, &fresh_stats)
                  .ok());
  EXPECT_GE(cache_.metrics().optimizer.currency_checks_passed, 1);
  EXPECT_EQ(cache_.metrics().optimizer.currency_fallbacks, 0);
  EXPECT_DOUBLE_EQ(fresh_stats.remote_cost, 0);

  // Let the view age past the bound with no replication catching it up.
  clock_.Advance(200);
  ExecStats stale_stats;
  ASSERT_TRUE(cache_
                  .Execute(
                      "SELECT cid, cname FROM customer WHERE cid = 50 "
                      "WITH MAXSTALENESS 100",
                      {}, &stale_stats)
                  .ok());
  EXPECT_GE(cache_.metrics().optimizer.currency_fallbacks, 1);
  EXPECT_GT(stale_stats.remote_cost, 0) << "stale view must be bypassed";
  EXPECT_EQ(cache_.plan_cache_stats().uncacheable, 2);
}

TEST_F(DmvMtcacheTest, MtcacheViewsDmvReportsCurrency) {
  clock_.Advance(5);
  auto r = cache_.Execute("SELECT * FROM sys.dm_mtcache_views");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(StringCol(*r, "name"), "cust200");
  EXPECT_EQ(StringCol(*r, "kind"), "cached");
  EXPECT_EQ(StringCol(*r, "base_table"), "customer");
  EXPECT_GE(IntCol(*r, "subscription_id"), 0);
  EXPECT_DOUBLE_EQ(DoubleCol(*r, "staleness"), 5.0);
  // The backend has no cached views, and its DMVs are independent.
  auto b = backend_.Execute("SELECT COUNT(*) FROM sys.dm_mtcache_views");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->rows[0][0].AsInt(), 0);
}

TEST_F(DmvMtcacheTest, ReplMetricsDmvAfterFaultedRun) {
  FaultPlan plan;
  plan.AddRule(FaultSite::kApplyChange, FaultAction::kCrash, 1);
  repl_.set_fault_plan(&plan);
  ASSERT_TRUE(
      backend_
          .ExecuteScript(
              "UPDATE customer SET cname = 'renamed' WHERE cid <= 5")
          .ok());
  clock_.Advance(0.25);
  for (int round = 0; round < 4; ++round) {
    Status s = repl_.RunOnce(nullptr, nullptr);
    ASSERT_TRUE(s.ok() || s.code() == StatusCode::kUnavailable)
        << s.ToString();
    clock_.Advance(repl_.backoff_max());
  }
  ASSERT_TRUE(DrainPipeline(&repl_, &clock_).ok());
  ConsistencyReport report =
      ConsistencyChecker(&repl_, &backend_, &cache_).Check();
  ASSERT_TRUE(report.ok()) << report.ToString();

  auto r = cache_.Execute("SELECT * FROM sys.dm_repl_metrics");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r->rows.size(), 1u);
  EXPECT_EQ(IntCol(*r, "crashes_injected"), 1);
  EXPECT_GE(IntCol(*r, "txns_retried"), 1);
  EXPECT_GE(IntCol(*r, "changes_applied"), 5);
  EXPECT_GE(IntCol(*r, "txns_applied"), 1);
  EXPECT_GE(IntCol(*r, "records_scanned"), 5);
  EXPECT_GT(DoubleCol(*r, "latency_avg"), 0);
  // Without an installed provider (standalone backend) the row is all-zero.
  auto b = backend_.Execute("SELECT txns_applied FROM sys.dm_repl_metrics");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(IntCol(*b, "txns_applied"), 0);
}

TEST_F(DmvMtcacheTest, DmvQueriesAreLocalOnlyDespiteBackendLink) {
  // A DMV scan on the cache server must never ship to the backend, even
  // though every shadow table around it does.
  ExecStats stats;
  auto r = cache_.Execute("SELECT * FROM sys.dm_plan_cache", {}, &stats);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(stats.remote_cost, 0);
  EXPECT_EQ(cache_.metrics().trace().back().routing, "local");
}

// ---------------------------------------------------------------------------
// Golden schemas: the sys.dm_* column names and types are a public surface
// (bench JSON artifacts and EXPERIMENTS.md recipes key on them). Renaming or
// retyping a column must be a deliberate act that updates this test.
// ---------------------------------------------------------------------------

using GoldenColumn = std::pair<std::string, TypeId>;

void ExpectSchema(Server* server, const std::string& dmv,
                  const std::vector<GoldenColumn>& golden) {
  auto r = server->Execute("SELECT * FROM sys." + dmv);
  ASSERT_TRUE(r.ok()) << dmv << ": " << r.status().ToString();
  ASSERT_EQ(static_cast<size_t>(r->schema.num_columns()), golden.size())
      << dmv;
  for (size_t i = 0; i < golden.size(); ++i) {
    EXPECT_EQ(r->schema.column(static_cast<int>(i)).name, golden[i].first)
        << dmv << " column " << i;
    EXPECT_EQ(r->schema.column(static_cast<int>(i)).type, golden[i].second)
        << dmv << " column " << golden[i].first;
  }
}

TEST_F(DmvTest, GoldenSchemas) {
  const TypeId I = TypeId::kInt64, D = TypeId::kDouble, S = TypeId::kString;
  ExpectSchema(&server_, "dm_plan_cache",
               {{"hits", I},
                {"misses", I},
                {"uncacheable", I},
                {"invalidations", I},
                {"hit_rate", D},
                {"cached_statements", I},
                {"cached_procedure_plans", I},
                {"view_match_hits", I},
                {"view_match_misses", I},
                {"view_match_conditional", I},
                {"dynamic_plans", I},
                {"remote_plans", I},
                {"chooseplan_guards", I},
                {"chooseplan_local", I},
                {"chooseplan_remote", I},
                {"currency_checks_passed", I},
                {"currency_fallbacks", I}});
  ExpectSchema(&server_, "dm_exec_query_stats",
               {{"statement", S},
                {"executions", I},
                {"rows_returned", I},
                {"local_cost", D},
                {"remote_cost", D},
                {"rows_transferred", I},
                {"bytes_transferred", D},
                {"remote_queries", I},
                {"latency_avg", D},
                {"latency_max", D},
                {"latency_p50", D},
                {"latency_p95", D},
                {"latency_p99", D}});
  ExpectSchema(&server_, "dm_exec_requests",
               {{"query_id", I},
                {"statement", S},
                {"routing", S},
                {"est_cost", D},
                {"measured_cost", D},
                {"local_cost", D},
                {"remote_cost", D},
                {"rows_returned", I},
                {"rows_transferred", I},
                {"remote_queries", I},
                {"elapsed_seconds", D},
                {"entries_dropped", I},
                {"plan", S}});
  ExpectSchema(&server_, "dm_exec_query_profiles",
               {{"query_id", I},
                {"statement", S},
                {"op_id", I},
                {"parent_id", I},
                {"operator", S},
                {"est_rows", D},
                {"actual_rows", I},
                {"opens", I},
                {"next_calls", I},
                {"open_seconds", D},
                {"next_seconds", D},
                {"close_seconds", D},
                {"mem_peak_bytes", I}});
  ExpectSchema(&server_, "dm_mtcache_views",
               {{"name", S},
                {"kind", S},
                {"base_table", S},
                {"subscription_id", I},
                {"freshness_time", D},
                {"staleness", D},
                {"row_count", D}});
  ExpectSchema(&server_, "dm_repl_metrics",
               {{"records_scanned", I},
                {"changes_enqueued", I},
                {"changes_applied", I},
                {"txns_applied", I},
                {"txns_retried", I},
                {"crashes_injected", I},
                {"deliveries_dropped", I},
                {"latency_avg", D},
                {"latency_max", D},
                {"latency_count", I},
                {"latency_p50", D},
                {"latency_p95", D},
                {"latency_p99", D}});
  ExpectSchema(&server_, "dm_repl_lag_histogram",
               {{"bucket_lo", D}, {"bucket_hi", D}, {"count", I},
                {"cumulative", I}});
  ExpectSchema(&server_, "dm_os_wait_stats",
               {{"wait_type", S},
                {"acquisitions", I},
                {"contentions", I},
                {"wait_seconds", D},
                {"max_wait_seconds", D}});
}

TEST_F(DmvTest, EntriesDroppedSurfacesRingEviction) {
  EXPECT_EQ(server_.metrics().entries_dropped(), 0);
  for (int i = 1; i <= 6; ++i) {
    ASSERT_TRUE(
        server_.Execute("SELECT id FROM t WHERE id = " + std::to_string(i))
            .ok());
  }
  // Shrinking the ring evicts and counts the overflow immediately.
  server_.metrics().set_trace_capacity(2);
  int64_t after_shrink = server_.metrics().entries_dropped();
  EXPECT_GE(after_shrink, 4);
  // Normal capacity-overflow eviction counts too.
  ASSERT_TRUE(server_.Execute("SELECT COUNT(*) FROM t").ok());
  ASSERT_TRUE(server_.Execute("SELECT MAX(id) FROM t").ok());
  EXPECT_GE(server_.metrics().entries_dropped(), after_shrink + 1);
  // The counter rides along on every dm_exec_requests row, snapshotted at
  // scan-open (before this DMV query's own trace entry evicts anything).
  int64_t at_scan = server_.metrics().entries_dropped();
  auto r = server_.Execute(
      "SELECT MAX(entries_dropped) FROM sys.dm_exec_requests");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0].AsInt(), at_scan);
}

TEST_F(DmvTest, ProfileRingKeepsLastNTrees) {
  server_.metrics().set_profiling_enabled(true);
  for (int i = 1; i <= 20; ++i) {
    ASSERT_TRUE(
        server_.Execute("SELECT id FROM t WHERE id = " + std::to_string(i))
            .ok());
  }
  server_.metrics().set_profiling_enabled(false);
  auto profiles = server_.metrics().SnapshotProfiles();
  ASSERT_EQ(profiles.size(), 16u);  // ring capacity: last 16 kept
  EXPECT_EQ(profiles.back().text, "SELECT id FROM t WHERE id = 20");
  EXPECT_EQ(profiles.front().text, "SELECT id FROM t WHERE id = 5");
  // Profile ids come from the same sequence as the trace ring, so a profile
  // joins back to its dm_exec_requests row.
  EXPECT_GT(profiles.back().query_id, profiles.front().query_id);
  for (const auto& rec : profiles) {
    EXPECT_EQ(rec.root.actual_rows, 1) << rec.text;
    EXPECT_GT(rec.root.opens, 0) << rec.text;
  }
  // The DMV flattening: every profiled tree contributes a root row op_id=0
  // with parent_id=-1 joined to its query_id.
  auto r = server_.Execute(
      "SELECT COUNT(*) FROM sys.dm_exec_query_profiles WHERE parent_id = -1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0].AsInt(), 16);
}

TEST_F(DmvMtcacheTest, ReplLagHistogramRowsMatchLatencyCount) {
  ASSERT_TRUE(
      backend_
          .ExecuteScript("UPDATE customer SET cname = 'lagged' WHERE cid <= 8")
          .ok());
  clock_.Advance(0.5);
  ASSERT_TRUE(DrainPipeline(&repl_, &clock_).ok());
  auto metrics = cache_.Execute(
      "SELECT latency_count FROM sys.dm_repl_metrics");
  ASSERT_TRUE(metrics.ok());
  int64_t latency_count = IntCol(*metrics, "latency_count");
  ASSERT_GT(latency_count, 0);

  auto r = cache_.Execute("SELECT * FROM sys.dm_repl_lag_histogram");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->rows.empty());
  // Buckets are emitted in ascending order, cumulative sums the counts, and
  // the final cumulative equals the total number of recorded lags.
  int64_t running = 0;
  double prev_lo = -1;
  for (size_t i = 0; i < r->rows.size(); ++i) {
    double lo = DoubleCol(*r, "bucket_lo", i);
    EXPECT_GT(lo, prev_lo);
    prev_lo = lo;
    running += IntCol(*r, "count", i);
    EXPECT_EQ(IntCol(*r, "cumulative", i), running);
  }
  EXPECT_EQ(running, latency_count);
  // p50/p95/p99 in dm_repl_metrics come from the same histogram.
  auto p = cache_.Execute(
      "SELECT latency_p50, latency_p99 FROM sys.dm_repl_metrics");
  ASSERT_TRUE(p.ok());
  EXPECT_GT(DoubleCol(*p, "latency_p50"), 0);
  EXPECT_GE(DoubleCol(*p, "latency_p99"), DoubleCol(*p, "latency_p50"));
}

TEST_F(DmvTest, QueryStatsConsistentUnderConcurrentExecution) {
  // Hammer one statement (returning exactly 5 rows per execution) from
  // several threads while another thread repeatedly snapshots
  // dm_exec_query_stats. Every snapshot of the rollup row must be
  // internally consistent — rows_returned exactly 5 * executions — which
  // fails if the DMV reads the registry without a lock and sees a torn
  // half-updated rollup.
  const std::string kStmt = "SELECT id FROM t WHERE id <= 5";
  ASSERT_TRUE(server_.Execute(kStmt).ok());  // seed the rollup row

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 3; ++t) {
    workers.emplace_back([this, &kStmt, &stop, &failures] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (!server_.Execute(kStmt).ok()) {
          ++failures;
          return;
        }
      }
    });
  }
  std::string bad_snapshot;
  for (int i = 0; i < 100; ++i) {
    auto r = server_.Execute(
        "SELECT * FROM sys.dm_exec_query_stats WHERE statement = '" + kStmt +
        "'");
    if (!r.ok()) {
      bad_snapshot = r.status().ToString();
      ++failures;
      break;
    }
    if (r->rows.size() != 1) continue;  // rollup key mismatch is a test bug
    int64_t executions = IntCol(*r, "executions");
    int64_t rows_returned = IntCol(*r, "rows_returned");
    if (rows_returned != executions * 5) {
      bad_snapshot = "executions=" + std::to_string(executions) +
                     " rows_returned=" + std::to_string(rows_returned);
      ++failures;
      break;
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : workers) t.join();
  EXPECT_EQ(failures.load(), 0) << bad_snapshot;
}

}  // namespace
}  // namespace mtcache
