#!/usr/bin/env bash
# One-command build + test.
#
#   scripts/check.sh          # configure + build + full test suite
#   scripts/check.sh asan     # same, under -fsanitize=address,undefined,
#                             # running the fault-injection suites
#
# The asan mode exercises the crash/restart paths with memory checking on:
# replication_fault_test (incl. the 200-seed randomized schedules),
# mtcache_resync_test, and property_test.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-default}"
case "$mode" in
  default)
    cmake --preset default
    cmake --build --preset default -j "$(nproc)"
    ctest --preset default
    # Smoke the observability layer end to end: every sys.dm_* view must
    # execute and the core counters must have moved; then one experiment
    # binary must emit its JSON line with an embedded DMV snapshot.
    ./build/examples/dmv_smoke
    exp1_out="$(./build/bench/exp1_baseline_throughput --smoke)"
    grep -q '"backend_dmv"' <<<"$exp1_out"
    ;;
  asan)
    cmake --preset asan
    cmake --build --preset asan -j "$(nproc)" --target \
      replication_fault_test mtcache_resync_test property_test \
      replication_test mtcache_test
    (cd build-asan && ctest --output-on-failure -j "$(nproc)" -R \
      'ReplicationFault|MtcacheResync|ReplicationConvergence|Replication(Test|Metrics)|MTCache')
    ;;
  *)
    echo "usage: $0 [default|asan]" >&2
    exit 2
    ;;
esac
