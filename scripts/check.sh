#!/usr/bin/env bash
# One-command build + test.
#
#   scripts/check.sh          # configure + build + full test suite
#   scripts/check.sh asan     # same, under -fsanitize=address,undefined,
#                             # running the fault-injection suites
#   scripts/check.sh tsan     # -fsanitize=thread, running the concurrency
#                             # suites (any data race fails the run)
#   scripts/check.sh profile  # profiling smoke gate: EXPLAIN ANALYZE actuals,
#                             # trace spans, percentile/wait DMVs, and a
#                             # Chrome trace artifact from a traced bench run
#   scripts/check.sh batch    # batched-executor gate: batch-vs-row
#                             # differential corpus + scan memory regression,
#                             # then the scan-throughput bench in smoke mode
#   scripts/check.sh exp3     # fleet gate: deterministic-replay/convergence
#                             # tests (ctest -L fleet) + the exp3 fleet sweep
#                             # in smoke mode, emitting BENCH_exp3_tpcw.json
#
# The asan mode exercises the crash/restart paths with memory checking on:
# replication_fault_test (incl. the 200-seed randomized schedules),
# mtcache_resync_test, and property_test. The tsan mode runs every test
# labeled `concurrency` (ctest -L) — the multi-session engine tests and the
# DMV-read-during-execution tests — plus the threaded bench smoke.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-default}"
case "$mode" in
  default)
    cmake --preset default
    cmake --build --preset default -j "$(nproc)"
    ctest --preset default
    # Smoke the observability layer end to end: every sys.dm_* view must
    # execute and the core counters must have moved; then one experiment
    # binary must emit its JSON line with an embedded DMV snapshot, and the
    # closed-loop threaded mode must emit its scaling JSON.
    ./build/examples/dmv_smoke
    exp1_out="$(./build/bench/exp1_baseline_throughput --smoke)"
    grep -q '"backend_dmv"' <<<"$exp1_out"
    exp1_threads_out="$(./build/bench/exp1_baseline_throughput --threads 8 --smoke)"
    grep -q '"aggregate_speedup"' <<<"$exp1_threads_out"
    ;;
  asan)
    cmake --preset asan
    cmake --build --preset asan -j "$(nproc)" --target \
      replication_fault_test mtcache_resync_test property_test \
      replication_test mtcache_test dmv_smoke
    (cd build-asan && ctest --output-on-failure -j "$(nproc)" -R \
      'ReplicationFault|MtcacheResync|ReplicationConvergence|Replication(Test|Metrics)|MTCache')
    # The DMV walk under ASan: catches lifetime bugs in the virtual-table
    # row materialization that the plain build would miss.
    ./build-asan/examples/dmv_smoke
    ;;
  tsan)
    cmake --preset tsan
    cmake --build --preset tsan -j "$(nproc)" --target \
      concurrency_test dmv_test fleet_test exp1_baseline_throughput
    # halt_on_error: the first data race fails the suite instead of
    # scrolling past; second_deadlock_stack helps debug lock inversions.
    # The fleet label rides along: its DES runs are single-threaded by
    # design, so any TSan report there is a real bug in the shared layers.
    export TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1"
    (cd build-tsan && ctest --output-on-failure -L 'concurrency|fleet')
    ./build-tsan/bench/exp1_baseline_throughput --threads 4 --smoke
    ;;
  profile)
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" --target \
      profile_smoke exp1_baseline_throughput
    # The smoke binary asserts EXPLAIN ANALYZE reports nonzero per-operator
    # actuals on TPC-W queries (including the backend round-trip span for a
    # remotely routed one), dm_exec_query_profiles / percentile / wait-stats
    # DMVs are live, and EXPLAIN covers DML.
    ./build/examples/profile_smoke
    # A traced bench run must produce a loadable Chrome trace_event artifact.
    ./build/bench/exp1_baseline_throughput --threads 2 --smoke \
      --trace build/trace_exp1.json
    grep -q '"traceEvents"' build/trace_exp1.json
    ;;
  batch)
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" --target \
      batch_exec_test exec_test exp2_scan_throughput
    # The differential corpus proves batch ≡ row (the row path is the
    # oracle); the memory test pins the copy-free snapshot high-water; the
    # exec suite re-checks operator semantics and cost parity.
    (cd build && ctest --output-on-failure -R 'BatchDiff|BatchScanMemory|Exec')
    # Scan throughput smoke: the JSON line is the before/after artifact
    # (committed as BENCH_exp2_scan.json on real runs).
    exp2_out="$(./build/bench/exp2_scan_throughput --smoke)"
    grep -q '"scanned_rows_per_sec"' <<<"$exp2_out"
    ;;
  exp3)
    cmake --preset default
    cmake --build --preset default -j "$(nproc)" --target \
      fleet_test tpcw_test exp3_tpcw
    # Deterministic replay, fleet-wide convergence (clean + fault storm),
    # and the mix-conformance suite the fleet's interaction stream rests on.
    (cd build && ctest --output-on-failure -j "$(nproc)" -L fleet)
    (cd build && ctest --output-on-failure -R 'Mix|AllMixInteractions')
    # The sweep in smoke mode: shape checks (offload monotone in cached
    # fraction, QPS growing with caches) run inside the binary; the JSON
    # artifact must carry results and the lag DMV snapshot.
    ./build/bench/exp3_tpcw --smoke --out build/BENCH_exp3_tpcw.json
    grep -q '"dm_repl_lag_histogram"' build/BENCH_exp3_tpcw.json
    grep -q '"offload_pct"' build/BENCH_exp3_tpcw.json
    ;;
  *)
    echo "usage: $0 [default|asan|tsan|profile|batch|exp3]" >&2
    exit 2
    ;;
esac
