#!/usr/bin/env bash
# One-command build + test.
#
#   scripts/check.sh          # configure + build + full test suite
#   scripts/check.sh asan     # same, under -fsanitize=address,undefined,
#                             # running the fault-injection suites
#
# The asan mode exercises the crash/restart paths with memory checking on:
# replication_fault_test (incl. the 200-seed randomized schedules),
# mtcache_resync_test, and property_test.
set -euo pipefail
cd "$(dirname "$0")/.."

mode="${1:-default}"
case "$mode" in
  default)
    cmake --preset default
    cmake --build --preset default -j "$(nproc)"
    ctest --preset default
    ;;
  asan)
    cmake --preset asan
    cmake --build --preset asan -j "$(nproc)" --target \
      replication_fault_test mtcache_resync_test property_test \
      replication_test mtcache_test
    (cd build-asan && ctest --output-on-failure -j "$(nproc)" -R \
      'ReplicationFault|MtcacheResync|ReplicationConvergence|Replication(Test|Metrics)|MTCache')
    ;;
  *)
    echo "usage: $0 [default|asan]" >&2
    exit 2
    ;;
esac
