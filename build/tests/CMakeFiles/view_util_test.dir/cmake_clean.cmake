file(REMOVE_RECURSE
  "CMakeFiles/view_util_test.dir/view_util_test.cc.o"
  "CMakeFiles/view_util_test.dir/view_util_test.cc.o.d"
  "view_util_test"
  "view_util_test.pdb"
  "view_util_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_util_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
