# Empty dependencies file for view_util_test.
# This may be replaced when dependencies are built.
