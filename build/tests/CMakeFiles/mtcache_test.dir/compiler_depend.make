# Empty compiler generated dependencies file for mtcache_test.
# This may be replaced when dependencies are built.
