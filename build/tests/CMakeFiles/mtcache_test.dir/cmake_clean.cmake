file(REMOVE_RECURSE
  "CMakeFiles/mtcache_test.dir/mtcache_test.cc.o"
  "CMakeFiles/mtcache_test.dir/mtcache_test.cc.o.d"
  "mtcache_test"
  "mtcache_test.pdb"
  "mtcache_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mtcache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
