# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_test[1]_include.cmake")
include("/root/repo/build/tests/bptree_test[1]_include.cmake")
include("/root/repo/build/tests/storage_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/replication_test[1]_include.cmake")
include("/root/repo/build/tests/mtcache_test[1]_include.cmake")
include("/root/repo/build/tests/tpcw_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/expr_test[1]_include.cmake")
include("/root/repo/build/tests/opt_test[1]_include.cmake")
include("/root/repo/build/tests/binder_test[1]_include.cmake")
include("/root/repo/build/tests/exec_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/view_util_test[1]_include.cmake")
