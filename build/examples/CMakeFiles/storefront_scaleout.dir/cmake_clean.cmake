file(REMOVE_RECURSE
  "CMakeFiles/storefront_scaleout.dir/storefront_scaleout.cpp.o"
  "CMakeFiles/storefront_scaleout.dir/storefront_scaleout.cpp.o.d"
  "storefront_scaleout"
  "storefront_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storefront_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
