# Empty compiler generated dependencies file for storefront_scaleout.
# This may be replaced when dependencies are built.
