file(REMOVE_RECURSE
  "CMakeFiles/replication_pipeline.dir/replication_pipeline.cpp.o"
  "CMakeFiles/replication_pipeline.dir/replication_pipeline.cpp.o.d"
  "replication_pipeline"
  "replication_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replication_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
