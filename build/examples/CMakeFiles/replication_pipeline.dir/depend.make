# Empty dependencies file for replication_pipeline.
# This may be replaced when dependencies are built.
