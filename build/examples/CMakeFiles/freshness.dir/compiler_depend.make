# Empty compiler generated dependencies file for freshness.
# This may be replaced when dependencies are built.
