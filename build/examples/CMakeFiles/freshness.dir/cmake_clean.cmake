file(REMOVE_RECURSE
  "CMakeFiles/freshness.dir/freshness.cpp.o"
  "CMakeFiles/freshness.dir/freshness.cpp.o.d"
  "freshness"
  "freshness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/freshness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
