file(REMOVE_RECURSE
  "CMakeFiles/dynamic_plans.dir/dynamic_plans.cpp.o"
  "CMakeFiles/dynamic_plans.dir/dynamic_plans.cpp.o.d"
  "dynamic_plans"
  "dynamic_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
