# Empty dependencies file for dynamic_plans.
# This may be replaced when dependencies are built.
