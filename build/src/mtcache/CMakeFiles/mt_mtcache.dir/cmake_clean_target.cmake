file(REMOVE_RECURSE
  "libmt_mtcache.a"
)
