# Empty dependencies file for mt_mtcache.
# This may be replaced when dependencies are built.
