file(REMOVE_RECURSE
  "CMakeFiles/mt_mtcache.dir/mtcache.cc.o"
  "CMakeFiles/mt_mtcache.dir/mtcache.cc.o.d"
  "libmt_mtcache.a"
  "libmt_mtcache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_mtcache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
