file(REMOVE_RECURSE
  "libmt_sql.a"
)
