# Empty compiler generated dependencies file for mt_sql.
# This may be replaced when dependencies are built.
