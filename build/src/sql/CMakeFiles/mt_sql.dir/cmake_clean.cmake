file(REMOVE_RECURSE
  "CMakeFiles/mt_sql.dir/ast.cc.o"
  "CMakeFiles/mt_sql.dir/ast.cc.o.d"
  "CMakeFiles/mt_sql.dir/lexer.cc.o"
  "CMakeFiles/mt_sql.dir/lexer.cc.o.d"
  "CMakeFiles/mt_sql.dir/parser.cc.o"
  "CMakeFiles/mt_sql.dir/parser.cc.o.d"
  "libmt_sql.a"
  "libmt_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
