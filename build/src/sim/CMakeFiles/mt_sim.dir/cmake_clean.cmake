file(REMOVE_RECURSE
  "CMakeFiles/mt_sim.dir/testbed.cc.o"
  "CMakeFiles/mt_sim.dir/testbed.cc.o.d"
  "libmt_sim.a"
  "libmt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
