# Empty dependencies file for mt_sim.
# This may be replaced when dependencies are built.
