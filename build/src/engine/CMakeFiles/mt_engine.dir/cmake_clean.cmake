file(REMOVE_RECURSE
  "CMakeFiles/mt_engine.dir/database.cc.o"
  "CMakeFiles/mt_engine.dir/database.cc.o.d"
  "CMakeFiles/mt_engine.dir/server.cc.o"
  "CMakeFiles/mt_engine.dir/server.cc.o.d"
  "CMakeFiles/mt_engine.dir/view_util.cc.o"
  "CMakeFiles/mt_engine.dir/view_util.cc.o.d"
  "libmt_engine.a"
  "libmt_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
