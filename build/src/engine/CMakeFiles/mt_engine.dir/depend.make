# Empty dependencies file for mt_engine.
# This may be replaced when dependencies are built.
