file(REMOVE_RECURSE
  "libmt_engine.a"
)
