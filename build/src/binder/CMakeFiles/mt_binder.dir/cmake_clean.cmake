file(REMOVE_RECURSE
  "CMakeFiles/mt_binder.dir/binder.cc.o"
  "CMakeFiles/mt_binder.dir/binder.cc.o.d"
  "libmt_binder.a"
  "libmt_binder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_binder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
