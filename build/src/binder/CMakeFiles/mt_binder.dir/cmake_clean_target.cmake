file(REMOVE_RECURSE
  "libmt_binder.a"
)
