# Empty dependencies file for mt_binder.
# This may be replaced when dependencies are built.
