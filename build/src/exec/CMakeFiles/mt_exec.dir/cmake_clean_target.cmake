file(REMOVE_RECURSE
  "libmt_exec.a"
)
