file(REMOVE_RECURSE
  "CMakeFiles/mt_exec.dir/exec.cc.o"
  "CMakeFiles/mt_exec.dir/exec.cc.o.d"
  "libmt_exec.a"
  "libmt_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
