# Empty compiler generated dependencies file for mt_exec.
# This may be replaced when dependencies are built.
