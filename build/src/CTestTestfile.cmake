# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("types")
subdirs("catalog")
subdirs("storage")
subdirs("sql")
subdirs("expr")
subdirs("opt")
subdirs("binder")
subdirs("exec")
subdirs("engine")
subdirs("repl")
subdirs("mtcache")
subdirs("tpcw")
subdirs("sim")
