# Empty compiler generated dependencies file for mt_storage.
# This may be replaced when dependencies are built.
