file(REMOVE_RECURSE
  "libmt_storage.a"
)
