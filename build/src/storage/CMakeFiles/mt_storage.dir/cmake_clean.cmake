file(REMOVE_RECURSE
  "CMakeFiles/mt_storage.dir/bptree.cc.o"
  "CMakeFiles/mt_storage.dir/bptree.cc.o.d"
  "CMakeFiles/mt_storage.dir/table.cc.o"
  "CMakeFiles/mt_storage.dir/table.cc.o.d"
  "CMakeFiles/mt_storage.dir/wal.cc.o"
  "CMakeFiles/mt_storage.dir/wal.cc.o.d"
  "libmt_storage.a"
  "libmt_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
