file(REMOVE_RECURSE
  "CMakeFiles/mt_common.dir/random.cc.o"
  "CMakeFiles/mt_common.dir/random.cc.o.d"
  "CMakeFiles/mt_common.dir/status.cc.o"
  "CMakeFiles/mt_common.dir/status.cc.o.d"
  "CMakeFiles/mt_common.dir/string_util.cc.o"
  "CMakeFiles/mt_common.dir/string_util.cc.o.d"
  "libmt_common.a"
  "libmt_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
