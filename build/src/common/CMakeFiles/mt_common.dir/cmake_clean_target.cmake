file(REMOVE_RECURSE
  "libmt_common.a"
)
