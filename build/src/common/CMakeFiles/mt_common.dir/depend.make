# Empty dependencies file for mt_common.
# This may be replaced when dependencies are built.
