file(REMOVE_RECURSE
  "libmt_types.a"
)
