# Empty dependencies file for mt_types.
# This may be replaced when dependencies are built.
