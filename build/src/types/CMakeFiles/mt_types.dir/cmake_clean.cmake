file(REMOVE_RECURSE
  "CMakeFiles/mt_types.dir/schema.cc.o"
  "CMakeFiles/mt_types.dir/schema.cc.o.d"
  "CMakeFiles/mt_types.dir/value.cc.o"
  "CMakeFiles/mt_types.dir/value.cc.o.d"
  "libmt_types.a"
  "libmt_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
