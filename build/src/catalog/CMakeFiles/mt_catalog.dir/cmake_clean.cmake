file(REMOVE_RECURSE
  "CMakeFiles/mt_catalog.dir/catalog.cc.o"
  "CMakeFiles/mt_catalog.dir/catalog.cc.o.d"
  "CMakeFiles/mt_catalog.dir/statistics.cc.o"
  "CMakeFiles/mt_catalog.dir/statistics.cc.o.d"
  "CMakeFiles/mt_catalog.dir/view_def.cc.o"
  "CMakeFiles/mt_catalog.dir/view_def.cc.o.d"
  "libmt_catalog.a"
  "libmt_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
