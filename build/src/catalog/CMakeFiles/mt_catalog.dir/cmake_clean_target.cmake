file(REMOVE_RECURSE
  "libmt_catalog.a"
)
