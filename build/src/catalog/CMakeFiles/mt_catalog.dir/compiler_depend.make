# Empty compiler generated dependencies file for mt_catalog.
# This may be replaced when dependencies are built.
