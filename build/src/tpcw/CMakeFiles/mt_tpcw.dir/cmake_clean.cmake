file(REMOVE_RECURSE
  "CMakeFiles/mt_tpcw.dir/cache_setup.cc.o"
  "CMakeFiles/mt_tpcw.dir/cache_setup.cc.o.d"
  "CMakeFiles/mt_tpcw.dir/datagen.cc.o"
  "CMakeFiles/mt_tpcw.dir/datagen.cc.o.d"
  "CMakeFiles/mt_tpcw.dir/procs.cc.o"
  "CMakeFiles/mt_tpcw.dir/procs.cc.o.d"
  "CMakeFiles/mt_tpcw.dir/schema.cc.o"
  "CMakeFiles/mt_tpcw.dir/schema.cc.o.d"
  "CMakeFiles/mt_tpcw.dir/workload.cc.o"
  "CMakeFiles/mt_tpcw.dir/workload.cc.o.d"
  "libmt_tpcw.a"
  "libmt_tpcw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_tpcw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
