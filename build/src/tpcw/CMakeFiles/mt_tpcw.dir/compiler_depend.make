# Empty compiler generated dependencies file for mt_tpcw.
# This may be replaced when dependencies are built.
