file(REMOVE_RECURSE
  "libmt_tpcw.a"
)
