# Empty compiler generated dependencies file for mt_repl.
# This may be replaced when dependencies are built.
