file(REMOVE_RECURSE
  "libmt_repl.a"
)
