file(REMOVE_RECURSE
  "CMakeFiles/mt_repl.dir/replication.cc.o"
  "CMakeFiles/mt_repl.dir/replication.cc.o.d"
  "libmt_repl.a"
  "libmt_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
