file(REMOVE_RECURSE
  "CMakeFiles/mt_expr.dir/bound_expr.cc.o"
  "CMakeFiles/mt_expr.dir/bound_expr.cc.o.d"
  "libmt_expr.a"
  "libmt_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
