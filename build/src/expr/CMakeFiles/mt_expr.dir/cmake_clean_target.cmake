file(REMOVE_RECURSE
  "libmt_expr.a"
)
