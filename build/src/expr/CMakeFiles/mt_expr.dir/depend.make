# Empty dependencies file for mt_expr.
# This may be replaced when dependencies are built.
