file(REMOVE_RECURSE
  "libmt_opt.a"
)
