# Empty dependencies file for mt_opt.
# This may be replaced when dependencies are built.
