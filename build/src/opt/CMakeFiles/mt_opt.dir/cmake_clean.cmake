file(REMOVE_RECURSE
  "CMakeFiles/mt_opt.dir/cardinality.cc.o"
  "CMakeFiles/mt_opt.dir/cardinality.cc.o.d"
  "CMakeFiles/mt_opt.dir/logical.cc.o"
  "CMakeFiles/mt_opt.dir/logical.cc.o.d"
  "CMakeFiles/mt_opt.dir/optimizer.cc.o"
  "CMakeFiles/mt_opt.dir/optimizer.cc.o.d"
  "CMakeFiles/mt_opt.dir/physical.cc.o"
  "CMakeFiles/mt_opt.dir/physical.cc.o.d"
  "CMakeFiles/mt_opt.dir/unparse.cc.o"
  "CMakeFiles/mt_opt.dir/unparse.cc.o.d"
  "CMakeFiles/mt_opt.dir/view_matching.cc.o"
  "CMakeFiles/mt_opt.dir/view_matching.cc.o.d"
  "libmt_opt.a"
  "libmt_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mt_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
