
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/cardinality.cc" "src/opt/CMakeFiles/mt_opt.dir/cardinality.cc.o" "gcc" "src/opt/CMakeFiles/mt_opt.dir/cardinality.cc.o.d"
  "/root/repo/src/opt/logical.cc" "src/opt/CMakeFiles/mt_opt.dir/logical.cc.o" "gcc" "src/opt/CMakeFiles/mt_opt.dir/logical.cc.o.d"
  "/root/repo/src/opt/optimizer.cc" "src/opt/CMakeFiles/mt_opt.dir/optimizer.cc.o" "gcc" "src/opt/CMakeFiles/mt_opt.dir/optimizer.cc.o.d"
  "/root/repo/src/opt/physical.cc" "src/opt/CMakeFiles/mt_opt.dir/physical.cc.o" "gcc" "src/opt/CMakeFiles/mt_opt.dir/physical.cc.o.d"
  "/root/repo/src/opt/unparse.cc" "src/opt/CMakeFiles/mt_opt.dir/unparse.cc.o" "gcc" "src/opt/CMakeFiles/mt_opt.dir/unparse.cc.o.d"
  "/root/repo/src/opt/view_matching.cc" "src/opt/CMakeFiles/mt_opt.dir/view_matching.cc.o" "gcc" "src/opt/CMakeFiles/mt_opt.dir/view_matching.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/expr/CMakeFiles/mt_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/mt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/mt_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mt_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/mt_sql.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
