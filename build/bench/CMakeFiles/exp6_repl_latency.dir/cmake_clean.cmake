file(REMOVE_RECURSE
  "CMakeFiles/exp6_repl_latency.dir/exp6_repl_latency.cc.o"
  "CMakeFiles/exp6_repl_latency.dir/exp6_repl_latency.cc.o.d"
  "exp6_repl_latency"
  "exp6_repl_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp6_repl_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
