# Empty compiler generated dependencies file for exp6_repl_latency.
# This may be replaced when dependencies are built.
