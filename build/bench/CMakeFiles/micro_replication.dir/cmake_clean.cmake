file(REMOVE_RECURSE
  "CMakeFiles/micro_replication.dir/micro_replication.cc.o"
  "CMakeFiles/micro_replication.dir/micro_replication.cc.o.d"
  "micro_replication"
  "micro_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
