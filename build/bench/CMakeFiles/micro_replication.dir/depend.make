# Empty dependencies file for micro_replication.
# This may be replaced when dependencies are built.
