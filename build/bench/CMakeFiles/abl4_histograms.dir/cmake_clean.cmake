file(REMOVE_RECURSE
  "CMakeFiles/abl4_histograms.dir/abl4_histograms.cc.o"
  "CMakeFiles/abl4_histograms.dir/abl4_histograms.cc.o.d"
  "abl4_histograms"
  "abl4_histograms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl4_histograms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
