# Empty compiler generated dependencies file for abl4_histograms.
# This may be replaced when dependencies are built.
