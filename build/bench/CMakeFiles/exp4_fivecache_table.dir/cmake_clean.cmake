file(REMOVE_RECURSE
  "CMakeFiles/exp4_fivecache_table.dir/exp4_fivecache_table.cc.o"
  "CMakeFiles/exp4_fivecache_table.dir/exp4_fivecache_table.cc.o.d"
  "exp4_fivecache_table"
  "exp4_fivecache_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp4_fivecache_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
