# Empty compiler generated dependencies file for exp4_fivecache_table.
# This may be replaced when dependencies are built.
