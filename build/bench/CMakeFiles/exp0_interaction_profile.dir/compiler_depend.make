# Empty compiler generated dependencies file for exp0_interaction_profile.
# This may be replaced when dependencies are built.
