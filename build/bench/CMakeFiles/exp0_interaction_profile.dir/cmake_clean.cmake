file(REMOVE_RECURSE
  "CMakeFiles/exp0_interaction_profile.dir/exp0_interaction_profile.cc.o"
  "CMakeFiles/exp0_interaction_profile.dir/exp0_interaction_profile.cc.o.d"
  "exp0_interaction_profile"
  "exp0_interaction_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp0_interaction_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
