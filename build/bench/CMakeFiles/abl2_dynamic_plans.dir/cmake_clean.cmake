file(REMOVE_RECURSE
  "CMakeFiles/abl2_dynamic_plans.dir/abl2_dynamic_plans.cc.o"
  "CMakeFiles/abl2_dynamic_plans.dir/abl2_dynamic_plans.cc.o.d"
  "abl2_dynamic_plans"
  "abl2_dynamic_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl2_dynamic_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
