# Empty dependencies file for abl2_dynamic_plans.
# This may be replaced when dependencies are built.
