# Empty compiler generated dependencies file for abl3_chooseplan_pullup.
# This may be replaced when dependencies are built.
