file(REMOVE_RECURSE
  "CMakeFiles/abl3_chooseplan_pullup.dir/abl3_chooseplan_pullup.cc.o"
  "CMakeFiles/abl3_chooseplan_pullup.dir/abl3_chooseplan_pullup.cc.o.d"
  "abl3_chooseplan_pullup"
  "abl3_chooseplan_pullup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl3_chooseplan_pullup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
