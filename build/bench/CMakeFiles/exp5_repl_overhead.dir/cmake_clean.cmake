file(REMOVE_RECURSE
  "CMakeFiles/exp5_repl_overhead.dir/exp5_repl_overhead.cc.o"
  "CMakeFiles/exp5_repl_overhead.dir/exp5_repl_overhead.cc.o.d"
  "exp5_repl_overhead"
  "exp5_repl_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp5_repl_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
