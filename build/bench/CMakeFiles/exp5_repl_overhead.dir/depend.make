# Empty dependencies file for exp5_repl_overhead.
# This may be replaced when dependencies are built.
