
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/exp5_repl_overhead.cc" "bench/CMakeFiles/exp5_repl_overhead.dir/exp5_repl_overhead.cc.o" "gcc" "bench/CMakeFiles/exp5_repl_overhead.dir/exp5_repl_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tpcw/CMakeFiles/mt_tpcw.dir/DependInfo.cmake"
  "/root/repo/build/src/mtcache/CMakeFiles/mt_mtcache.dir/DependInfo.cmake"
  "/root/repo/build/src/repl/CMakeFiles/mt_repl.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/mt_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/mt_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/binder/CMakeFiles/mt_binder.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mt_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/mt_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/mt_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/mt_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/mt_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/types/CMakeFiles/mt_types.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mt_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
