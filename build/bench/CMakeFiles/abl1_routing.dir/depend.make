# Empty dependencies file for abl1_routing.
# This may be replaced when dependencies are built.
