file(REMOVE_RECURSE
  "CMakeFiles/abl1_routing.dir/abl1_routing.cc.o"
  "CMakeFiles/abl1_routing.dir/abl1_routing.cc.o.d"
  "abl1_routing"
  "abl1_routing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl1_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
