file(REMOVE_RECURSE
  "CMakeFiles/exp1_baseline_throughput.dir/exp1_baseline_throughput.cc.o"
  "CMakeFiles/exp1_baseline_throughput.dir/exp1_baseline_throughput.cc.o.d"
  "exp1_baseline_throughput"
  "exp1_baseline_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp1_baseline_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
