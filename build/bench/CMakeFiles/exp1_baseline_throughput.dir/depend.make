# Empty dependencies file for exp1_baseline_throughput.
# This may be replaced when dependencies are built.
