file(REMOVE_RECURSE
  "CMakeFiles/exp2_fig6_scaleout.dir/exp2_fig6_scaleout.cc.o"
  "CMakeFiles/exp2_fig6_scaleout.dir/exp2_fig6_scaleout.cc.o.d"
  "exp2_fig6_scaleout"
  "exp2_fig6_scaleout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/exp2_fig6_scaleout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
