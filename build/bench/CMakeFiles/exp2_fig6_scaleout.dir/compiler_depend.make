# Empty compiler generated dependencies file for exp2_fig6_scaleout.
# This may be replaced when dependencies are built.
