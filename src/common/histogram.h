#ifndef MTCACHE_COMMON_HISTOGRAM_H_
#define MTCACHE_COMMON_HISTOGRAM_H_

#include <cmath>
#include <cstdint>
#include <cstring>

#include "common/atomics.h"

namespace mtcache {

/// Lock-free log-bucketed histogram for latency-style measurements.
///
/// Buckets are powers of two spanning [2^kMinExp, 2^(kMinExp+kBuckets-2)):
/// bucket 0 catches everything below 2^kMinExp (including zero), bucket i
/// (1 <= i < kBuckets-1) covers [2^(kMinExp+i-1), 2^(kMinExp+i)), and the
/// last bucket catches everything at or above the top bound. With
/// kMinExp = -30 and 64 buckets the range is ~1 nanosecond-unit to ~4.6e9
/// units — wide enough for seconds-valued latencies and for abstract cost
/// units alike, with <= 2x relative bucket width (percentile error bound:
/// a reported percentile is within one power of two of the true value, and
/// the interpolated estimate is within ~50% relative error worst case).
///
/// Record() is two relaxed atomic adds plus two relaxed max-CAS loops —
/// safe from any thread, never blocking. Reads (Percentile, Snapshot via
/// copy) are relaxed per-field, which matches the sys.dm_* point-in-time
/// contract. Copying yields an independent plain snapshot.
class LogHistogram {
 public:
  static constexpr int kBuckets = 64;
  static constexpr int kMinExp = -30;  // bucket 1 lower bound = 2^-30

  LogHistogram() = default;
  LogHistogram(const LogHistogram&) = default;
  LogHistogram& operator=(const LogHistogram&) = default;

  /// Maps a value to its bucket index. Negative and sub-minimum values land
  /// in bucket 0; values beyond the top bound land in the last bucket.
  static int BucketIndex(double v) {
    if (!(v >= kMinBound())) return 0;  // also catches NaN
    int exp = 0;
    std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
    // v in [2^(exp-1), 2^exp)  =>  bucket index (exp-1) - kMinExp + 1.
    int idx = exp - kMinExp;
    if (idx < 1) return 0;
    if (idx > kBuckets - 1) return kBuckets - 1;
    return idx;
  }

  /// Inclusive lower bound of bucket i (0 for bucket 0).
  static double BucketLowerBound(int i) {
    if (i <= 0) return 0.0;
    return std::ldexp(1.0, kMinExp + i - 1);
  }

  /// Exclusive upper bound of bucket i (+inf for the overflow bucket).
  static double BucketUpperBound(int i) {
    if (i >= kBuckets - 1) return HUGE_VAL;
    return std::ldexp(1.0, kMinExp + i);
  }

  void Record(double v) {
    ++buckets_[BucketIndex(v)];
    ++count_;
    sum_ += v;
    max_.UpdateMax(v);
  }

  /// Folds `other` into this histogram (relaxed per-bucket adds).
  void Merge(const LogHistogram& other) {
    for (int i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i].load();
    count_ += other.count_.load();
    sum_ += other.sum_.load();
    max_.UpdateMax(other.max_.load());
  }

  int64_t Count() const { return count_.load(); }
  double Sum() const { return sum_.load(); }
  double Max() const { return max_.load(); }
  double Avg() const {
    int64_t n = count_.load();
    return n > 0 ? sum_.load() / static_cast<double>(n) : 0.0;
  }
  int64_t BucketCount(int i) const { return buckets_[i].load(); }

  /// Estimates the p-th percentile (p in [0, 1]) by locating the bucket that
  /// holds the rank and interpolating linearly within it. Returns 0 when
  /// empty. The estimate never exceeds the recorded max and is exact for
  /// bucket-0 values.
  double Percentile(double p) const {
    if (p < 0.0) p = 0.0;
    if (p > 1.0) p = 1.0;
    // Snapshot buckets once so the rank math is self-consistent even while
    // writers keep recording.
    int64_t counts[kBuckets];
    int64_t total = 0;
    for (int i = 0; i < kBuckets; ++i) {
      counts[i] = buckets_[i].load();
      total += counts[i];
    }
    if (total == 0) return 0.0;
    double rank = p * static_cast<double>(total - 1);
    int64_t seen = 0;
    for (int i = 0; i < kBuckets; ++i) {
      if (counts[i] == 0) continue;
      if (rank < static_cast<double>(seen + counts[i])) {
        if (i == 0) return 0.0;  // sub-minimum values: report 0
        double lo = BucketLowerBound(i);
        double hi = (i == kBuckets - 1) ? max_.load() : BucketUpperBound(i);
        if (hi < lo) hi = lo;
        double frac =
            (rank - static_cast<double>(seen)) / static_cast<double>(counts[i]);
        double v = lo + frac * (hi - lo);
        double mx = max_.load();
        return v > mx ? mx : v;
      }
      seen += counts[i];
    }
    return max_.load();
  }

 private:
  static constexpr double kMinBound() { return 9.313225746154785e-10; }  // 2^-30

  RelaxedInt64 buckets_[kBuckets];
  RelaxedInt64 count_;
  RelaxedDouble sum_;
  RelaxedDouble max_;
};

}  // namespace mtcache

#endif  // MTCACHE_COMMON_HISTOGRAM_H_
