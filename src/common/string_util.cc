#include "common/string_util.h"

#include <cctype>

namespace mtcache {

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

namespace {

// Recursive matcher over (value position, pattern position). Patterns in our
// workloads are short, so the worst-case backtracking is irrelevant.
bool LikeMatchAt(std::string_view value, size_t vi, std::string_view pattern,
                 size_t pi) {
  while (pi < pattern.size()) {
    char pc = pattern[pi];
    if (pc == '%') {
      // Collapse consecutive '%'.
      while (pi < pattern.size() && pattern[pi] == '%') ++pi;
      if (pi == pattern.size()) return true;
      for (size_t k = vi; k <= value.size(); ++k) {
        if (LikeMatchAt(value, k, pattern, pi)) return true;
      }
      return false;
    }
    if (vi >= value.size()) return false;
    if (pc != '_' && pc != value[vi]) return false;
    ++vi;
    ++pi;
  }
  return vi == value.size();
}

}  // namespace

bool LikeMatch(std::string_view value, std::string_view pattern) {
  return LikeMatchAt(value, 0, pattern, 0);
}

std::string SqlQuote(std::string_view s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out.push_back(c);
  }
  out += "'";
  return out;
}

}  // namespace mtcache
