#ifndef MTCACHE_COMMON_STATUS_H_
#define MTCACHE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace mtcache {

/// Error codes used throughout the system. Modeled after the usual
/// database-engine convention (RocksDB/absl): functions that can fail return
/// a Status (or StatusOr<T>) instead of throwing; exceptions are not used.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kOutOfRange,
  kNotImplemented,
  kAborted,
  kInternal,
  kUnavailable,
};

/// A Status is a cheap value type carrying success or an error code plus a
/// human-readable message. The default-constructed Status is OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>", for logs and test failure output.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// StatusOr<T> carries either a value or a non-OK Status. Access to the value
/// when the status is non-OK is a programming error (checked in debug).
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {}
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() { return *value_; }
  const T& value() const { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }
  T& operator*() { return *value_; }
  const T& operator*() const { return *value_; }

  /// Moves the contained value out; only valid when ok().
  T ConsumeValue() { return std::move(*value_); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace mtcache

/// Propagates a non-OK Status to the caller.
#define MT_RETURN_IF_ERROR(expr)                 \
  do {                                           \
    ::mtcache::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (0)

#define MT_STATUS_CONCAT_INNER_(x, y) x##y
#define MT_STATUS_CONCAT_(x, y) MT_STATUS_CONCAT_INNER_(x, y)

/// Evaluates a StatusOr expression; on error propagates the Status, otherwise
/// moves the value into `lhs` (which may include a declaration).
#define MT_ASSIGN_OR_RETURN(lhs, expr)                                \
  auto MT_STATUS_CONCAT_(_statusor_, __LINE__) = (expr);              \
  if (!MT_STATUS_CONCAT_(_statusor_, __LINE__).ok())                  \
    return MT_STATUS_CONCAT_(_statusor_, __LINE__).status();          \
  lhs = std::move(MT_STATUS_CONCAT_(_statusor_, __LINE__)).ConsumeValue()

#endif  // MTCACHE_COMMON_STATUS_H_
