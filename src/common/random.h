#ifndef MTCACHE_COMMON_RANDOM_H_
#define MTCACHE_COMMON_RANDOM_H_

#include <cstdint>
#include <string>

namespace mtcache {

/// Deterministic pseudo-random generator (xorshift64*). All randomness in the
/// system (data generation, workload mixes, simulation) flows through
/// explicitly seeded Random instances so every experiment is reproducible.
class Random {
 public:
  explicit Random(uint64_t seed) : state_(seed == 0 ? 0x9E3779B97F4A7C15ULL : seed) {}

  uint64_t NextU64() {
    uint64_t x = state_;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    state_ = x;
    return x * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextU64() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// True with probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (for think times).
  double Exponential(double mean);

  /// Random lowercase string of length in [min_len, max_len].
  std::string AlphaString(int min_len, int max_len);

 private:
  uint64_t state_;
};

}  // namespace mtcache

#endif  // MTCACHE_COMMON_RANDOM_H_
