#ifndef MTCACHE_COMMON_SIM_CLOCK_H_
#define MTCACHE_COMMON_SIM_CLOCK_H_

namespace mtcache {

/// Simulated wall clock, in seconds. The replication agents and the
/// multi-server testbed never read real time; they are driven by whoever owns
/// the clock (a test, an example, or the discrete-event simulator). This
/// keeps every experiment deterministic.
class SimClock {
 public:
  SimClock() : now_(0.0) {}

  double Now() const { return now_; }

  /// Moves time forward. Going backwards is a programming error and ignored.
  void AdvanceTo(double t) {
    if (t > now_) now_ = t;
  }
  void Advance(double dt) {
    if (dt > 0) now_ += dt;
  }

 private:
  double now_;
};

}  // namespace mtcache

#endif  // MTCACHE_COMMON_SIM_CLOCK_H_
