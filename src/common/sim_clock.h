#ifndef MTCACHE_COMMON_SIM_CLOCK_H_
#define MTCACHE_COMMON_SIM_CLOCK_H_

#include <atomic>

namespace mtcache {

/// Simulated wall clock, in seconds. The replication agents and the
/// multi-server testbed never read real time; they are driven by whoever owns
/// the clock (a test, an example, or the discrete-event simulator). This
/// keeps every experiment deterministic.
///
/// The value is a relaxed atomic so a driver thread can advance time while
/// session threads read Now() (GETDATE(), staleness checks) without a data
/// race. Advancement is still logically single-writer in every harness; the
/// CAS loops below only make torn reads impossible, they are not a
/// synchronization point.
class SimClock {
 public:
  SimClock() : now_(0.0) {}

  double Now() const { return now_.load(std::memory_order_relaxed); }

  /// Moves time forward. Going backwards is a programming error and ignored.
  void AdvanceTo(double t) {
    double cur = now_.load(std::memory_order_relaxed);
    while (t > cur &&
           !now_.compare_exchange_weak(cur, t, std::memory_order_relaxed)) {
    }
  }
  void Advance(double dt) {
    if (dt <= 0) return;
    double cur = now_.load(std::memory_order_relaxed);
    while (!now_.compare_exchange_weak(cur, cur + dt,
                                       std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> now_;
};

}  // namespace mtcache

#endif  // MTCACHE_COMMON_SIM_CLOCK_H_
