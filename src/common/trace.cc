#include "common/trace.h"

#include <chrono>
#include <cstdio>
#include <functional>
#include <mutex>
#include <thread>

namespace mtcache {

namespace {

thread_local SpanScope* g_current_span = nullptr;

int64_t MonotonicNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t ThisThreadHash() {
  return std::hash<std::thread::id>()(std::this_thread::get_id());
}

void EscapeJsonInto(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_ns_(MonotonicNanos()) {}

TraceRecorder& TraceRecorder::Global() {
  static TraceRecorder* recorder = new TraceRecorder();
  return *recorder;
}

int64_t TraceRecorder::NowMicros() const {
  return (MonotonicNanos() - epoch_ns_) / 1000;
}

void TraceRecorder::Record(const TraceSpan& span) {
  std::lock_guard<SpinLock> lock(ring_lock_);
  if (ring_.size() >= capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back(span);
}

std::vector<TraceSpan> TraceRecorder::Snapshot() const {
  std::lock_guard<SpinLock> lock(ring_lock_);
  return std::vector<TraceSpan>(ring_.begin(), ring_.end());
}

void TraceRecorder::Clear() {
  std::lock_guard<SpinLock> lock(ring_lock_);
  ring_.clear();
  dropped_ = 0;
}

SpanScope::SpanScope(const char* name, std::string detail) {
  TraceRecorder& rec = TraceRecorder::Global();
  if (!rec.enabled()) return;
  active_ = true;
  span_.name = name;
  span_.detail = std::move(detail);
  span_.span_id = rec.NextId();
  if (g_current_span != nullptr && g_current_span->active_) {
    span_.trace_id = g_current_span->span_.trace_id;
    span_.parent_id = g_current_span->span_.span_id;
  } else {
    span_.trace_id = rec.NextId();
    span_.parent_id = 0;
  }
  span_.thread_hash = ThisThreadHash();
  span_.start_us = rec.NowMicros();
  prev_ = g_current_span;
  g_current_span = this;
}

SpanScope::~SpanScope() {
  if (!active_) return;
  TraceRecorder& rec = TraceRecorder::Global();
  span_.dur_us = rec.NowMicros() - span_.start_us;
  if (span_.dur_us < 0) span_.dur_us = 0;
  g_current_span = prev_;
  rec.Record(span_);
}

void SpanScope::AppendDetail(const std::string& more) {
  if (!active_) return;
  if (!span_.detail.empty()) span_.detail += " ";
  span_.detail += more;
}

std::string ChromeTraceJson(const std::vector<TraceSpan>& spans) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  char buf[256];
  for (const TraceSpan& s : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    EscapeJsonInto(s.name, &out);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    // Compress the hash into a small readable id space for the viewer.
    std::snprintf(buf, sizeof(buf),
                  "%llu,\"ts\":%lld,\"dur\":%lld,",
                  static_cast<unsigned long long>(s.thread_hash % 100000),
                  static_cast<long long>(s.start_us),
                  static_cast<long long>(s.dur_us));
    out += buf;
    std::snprintf(buf, sizeof(buf),
                  "\"args\":{\"trace_id\":%llu,\"span_id\":%llu,"
                  "\"parent_id\":%llu,\"detail\":\"",
                  static_cast<unsigned long long>(s.trace_id),
                  static_cast<unsigned long long>(s.span_id),
                  static_cast<unsigned long long>(s.parent_id));
    out += buf;
    EscapeJsonInto(s.detail, &out);
    out += "\"}}";
  }
  out += "]}";
  return out;
}

}  // namespace mtcache
