#include "common/random.h"

#include <cmath>

namespace mtcache {

double Random::Exponential(double mean) {
  double u = NextDouble();
  if (u <= 0.0) u = 1e-12;
  return -mean * std::log(u);
}

std::string Random::AlphaString(int min_len, int max_len) {
  int len = static_cast<int>(Uniform(min_len, max_len));
  std::string out;
  out.reserve(len);
  for (int i = 0; i < len; ++i) {
    out.push_back(static_cast<char>('a' + Uniform(0, 25)));
  }
  return out;
}

}  // namespace mtcache
