#ifndef MTCACHE_COMMON_WAIT_STATS_H_
#define MTCACHE_COMMON_WAIT_STATS_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

#include "common/atomics.h"

namespace mtcache {

/// Instrumented synchronization sites, mirrored one-to-one as rows of the
/// sys.dm_os_wait_stats DMV. Keep WaitSiteName() in sync when adding sites.
enum class WaitSite {
  kTableLatchShared = 0,   // StoredTable::latch() shared (scans, DML reads)
  kTableLatchExclusive,    // StoredTable::latch() exclusive (DML mutation)
  kPlanCacheShared,        // Server::plan_cache_mu_ shared (lookup)
  kPlanCacheExclusive,     // Server::plan_cache_mu_ exclusive (insert/flush)
  kWalMutex,               // LogManager::mu_
  kCount,
};

const char* WaitSiteName(WaitSite site);

/// Per-site accounting: every acquisition bumps `acquisitions` (one relaxed
/// add — the uncontended fast path costs a try_lock plus that add); only when
/// try_lock fails do we bump `contentions` and time the blocking acquire.
struct WaitSiteStats {
  RelaxedInt64 acquisitions;
  RelaxedInt64 contentions;
  RelaxedDouble wait_seconds;      // total time spent blocked
  RelaxedDouble max_wait_seconds;  // worst single block
};

struct WaitStats {
  WaitSiteStats site[static_cast<int>(WaitSite::kCount)];

  WaitSiteStats& at(WaitSite s) { return site[static_cast<int>(s)]; }
  const WaitSiteStats& at(WaitSite s) const {
    return site[static_cast<int>(s)];
  }
  void RecordWait(WaitSite s, double seconds) {
    WaitSiteStats& w = at(s);
    ++w.contentions;
    w.wait_seconds += seconds;
    w.max_wait_seconds.UpdateMax(seconds);
  }
};

/// Process-global wait accounting, matching sys.dm_os_wait_stats semantics
/// (server-wide since startup). All fields are relaxed atomics; safe to read
/// from DMV scans while latch sites keep recording.
WaitStats& GlobalWaitStats();

namespace internal {

inline double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace internal

/// RAII shared acquire of a std::shared_mutex with wait accounting.
class SharedLatchWait {
 public:
  SharedLatchWait(std::shared_mutex& mu, WaitSite site) : mu_(mu) {
    WaitStats& ws = GlobalWaitStats();
    ++ws.at(site).acquisitions;
    if (!mu_.try_lock_shared()) {
      auto t0 = std::chrono::steady_clock::now();
      mu_.lock_shared();
      ws.RecordWait(site, internal::SecondsSince(t0));
    }
  }
  ~SharedLatchWait() { mu_.unlock_shared(); }
  SharedLatchWait(const SharedLatchWait&) = delete;
  SharedLatchWait& operator=(const SharedLatchWait&) = delete;

 private:
  std::shared_mutex& mu_;
};

/// RAII exclusive acquire of a std::shared_mutex with wait accounting.
class ExclusiveLatchWait {
 public:
  ExclusiveLatchWait(std::shared_mutex& mu, WaitSite site) : mu_(mu) {
    WaitStats& ws = GlobalWaitStats();
    ++ws.at(site).acquisitions;
    if (!mu_.try_lock()) {
      auto t0 = std::chrono::steady_clock::now();
      mu_.lock();
      ws.RecordWait(site, internal::SecondsSince(t0));
    }
  }
  ~ExclusiveLatchWait() { mu_.unlock(); }
  ExclusiveLatchWait(const ExclusiveLatchWait&) = delete;
  ExclusiveLatchWait& operator=(const ExclusiveLatchWait&) = delete;

 private:
  std::shared_mutex& mu_;
};

/// RAII acquire of a std::mutex with wait accounting (WAL append path).
class MutexWait {
 public:
  MutexWait(std::mutex& mu, WaitSite site) : mu_(mu) {
    WaitStats& ws = GlobalWaitStats();
    ++ws.at(site).acquisitions;
    if (!mu_.try_lock()) {
      auto t0 = std::chrono::steady_clock::now();
      mu_.lock();
      ws.RecordWait(site, internal::SecondsSince(t0));
    }
  }
  ~MutexWait() { mu_.unlock(); }
  MutexWait(const MutexWait&) = delete;
  MutexWait& operator=(const MutexWait&) = delete;

 private:
  std::mutex& mu_;
};

}  // namespace mtcache

#endif  // MTCACHE_COMMON_WAIT_STATS_H_
