#ifndef MTCACHE_COMMON_STRING_UTIL_H_
#define MTCACHE_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mtcache {

/// ASCII lower-casing; SQL identifiers are case-insensitive and normalized to
/// lower case everywhere in the catalog.
std::string ToLower(std::string_view s);

/// Case-insensitive ASCII equality, used for keyword matching in the lexer.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins the pieces with the separator: Join({"a","b"}, ", ") == "a, b".
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// SQL LIKE pattern matching with '%' (any run) and '_' (any single char).
bool LikeMatch(std::string_view value, std::string_view pattern);

/// Quotes a string as a SQL literal: abc -> 'abc', with '' doubling.
std::string SqlQuote(std::string_view s);

}  // namespace mtcache

#endif  // MTCACHE_COMMON_STRING_UTIL_H_
