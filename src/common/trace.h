#ifndef MTCACHE_COMMON_TRACE_H_
#define MTCACHE_COMMON_TRACE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/atomics.h"

namespace mtcache {

/// One completed span. Spans form a tree via parent_id within a trace_id;
/// the root query span has parent_id == 0. Timestamps are real (steady_clock)
/// microseconds relative to recorder start — replication lag measured in
/// simulated time lives in sys.dm_repl_lag_histogram instead, but the span
/// *structure* (log-reader pickup → distribute → apply vs. the originating
/// query span) is visible here as the cross-tier gap.
struct TraceSpan {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;
  const char* name = "";  // static string: span site name
  std::string detail;     // per-instance detail (statement text, server name)
  int64_t start_us = 0;
  int64_t dur_us = 0;
  uint64_t thread_hash = 0;
};

/// Process-global span recorder. Disabled by default: SpanScope checks one
/// relaxed atomic load and does nothing else, so instrumented code paths pay
/// near-zero cost until tracing is switched on (bench --trace, tests).
/// Completed spans land in a bounded ring under a SpinLock; overflow bumps
/// `dropped` rather than blocking.
class TraceRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  static TraceRecorder& Global();

  bool enabled() const { return enabled_.load() != 0; }
  void set_enabled(bool on) { enabled_.store(on ? 1 : 0); }

  /// Allocates a fresh id (used for both trace ids and span ids).
  uint64_t NextId() { return static_cast<uint64_t>(next_id_++); }

  void Record(const TraceSpan& span);

  std::vector<TraceSpan> Snapshot() const;
  int64_t dropped() const { return dropped_.load(); }
  void Clear();

  /// Microseconds since recorder construction (monotonic).
  int64_t NowMicros() const;

 private:
  TraceRecorder();

  RelaxedInt64 enabled_;
  RelaxedInt64 next_id_{1};
  RelaxedInt64 dropped_;
  int64_t epoch_ns_ = 0;
  mutable SpinLock ring_lock_;
  std::deque<TraceSpan> ring_;
  size_t capacity_ = kDefaultCapacity;
};

/// RAII span. When the recorder is disabled, construction is a single relaxed
/// load. When enabled, it allocates a span id, pushes itself on a thread-local
/// parent stack (so nested scopes — plan lookup inside a query, a remote
/// round-trip inside execution — chain parent ids automatically, including
/// synchronous "remote" calls which run on the caller's thread), and records
/// the completed span on destruction.
class SpanScope {
 public:
  explicit SpanScope(const char* name, std::string detail = std::string());
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

  bool active() const { return active_; }
  uint64_t trace_id() const { return span_.trace_id; }
  uint64_t span_id() const { return span_.span_id; }

  /// Appends to the span's detail string (e.g. outcome annotations).
  void AppendDetail(const std::string& more);

 private:
  bool active_ = false;
  TraceSpan span_;
  SpanScope* prev_ = nullptr;  // saved thread-local parent
};

/// Renders spans as a Chrome trace_event JSON document (complete "X" events,
/// chrome://tracing / Perfetto compatible). Thread ids come from the
/// recording thread's hash so concurrent sessions get separate rows.
std::string ChromeTraceJson(const std::vector<TraceSpan>& spans);

}  // namespace mtcache

#endif  // MTCACHE_COMMON_TRACE_H_
