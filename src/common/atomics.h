#ifndef MTCACHE_COMMON_ATOMICS_H_
#define MTCACHE_COMMON_ATOMICS_H_

#include <atomic>
#include <cstdint>

namespace mtcache {

/// Copyable relaxed atomic counter. Metric structs are bumped from many
/// threads (sessions, the replication agent, the optimizer) and read by DMV
/// scans; each field is independently atomic — a multi-field snapshot is only
/// point-in-time per field, which is exactly the SQL Server sys.dm_* contract.
/// Copying reads the source relaxed; the copy itself is a fresh atomic, so
/// struct-level copies (snapshots, resets) keep working.
class RelaxedInt64 {
 public:
  RelaxedInt64(int64_t v = 0) : v_(v) {}  // NOLINT(runtime/explicit)
  RelaxedInt64(const RelaxedInt64& other) : v_(other.load()) {}
  RelaxedInt64& operator=(const RelaxedInt64& other) {
    store(other.load());
    return *this;
  }
  RelaxedInt64& operator=(int64_t v) {
    store(v);
    return *this;
  }

  int64_t load() const { return v_.load(std::memory_order_relaxed); }
  void store(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  operator int64_t() const { return load(); }

  RelaxedInt64& operator++() {
    v_.fetch_add(1, std::memory_order_relaxed);
    return *this;
  }
  int64_t operator++(int) { return v_.fetch_add(1, std::memory_order_relaxed); }
  RelaxedInt64& operator+=(int64_t d) {
    v_.fetch_add(d, std::memory_order_relaxed);
    return *this;
  }
  /// Atomically raises the stored value to at least `candidate` (memory
  /// high-water marks, max latencies in integer units).
  void UpdateMax(int64_t candidate) {
    int64_t cur = load();
    while (cur < candidate &&
           !v_.compare_exchange_weak(cur, candidate,
                                     std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<int64_t> v_;
};

/// Copyable relaxed atomic double, for accumulated sums/maxima that cross
/// threads (replication latency, cached-view freshness timestamps).
class RelaxedDouble {
 public:
  RelaxedDouble(double v = 0) : v_(v) {}  // NOLINT(runtime/explicit)
  RelaxedDouble(const RelaxedDouble& other) : v_(other.load()) {}
  RelaxedDouble& operator=(const RelaxedDouble& other) {
    store(other.load());
    return *this;
  }
  RelaxedDouble& operator=(double v) {
    store(v);
    return *this;
  }

  double load() const { return v_.load(std::memory_order_relaxed); }
  void store(double v) { v_.store(v, std::memory_order_relaxed); }
  operator double() const { return load(); }

  RelaxedDouble& operator+=(double d) {
    double cur = load();
    while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
    }
    return *this;
  }
  /// Atomically raises the stored value to at least `candidate`.
  void UpdateMax(double candidate) {
    double cur = load();
    while (cur < candidate &&
           !v_.compare_exchange_weak(cur, candidate,
                                     std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> v_;
};

/// Minimal test-and-set spinlock for tiny critical sections (the metrics
/// trace ring): a handful of instructions under contention measured in
/// nanoseconds, where a std::mutex park/unpark would dominate. Use with
/// std::lock_guard.
class SpinLock {
 public:
  SpinLock() = default;
  SpinLock(const SpinLock&) = delete;
  SpinLock& operator=(const SpinLock&) = delete;

  void lock() {
    while (flag_.test_and_set(std::memory_order_acquire)) {
#if defined(__cpp_lib_atomic_flag_test)
      while (flag_.test(std::memory_order_relaxed)) {
      }
#endif
    }
  }
  void unlock() { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

}  // namespace mtcache

#endif  // MTCACHE_COMMON_ATOMICS_H_
