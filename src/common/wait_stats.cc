#include "common/wait_stats.h"

namespace mtcache {

const char* WaitSiteName(WaitSite site) {
  switch (site) {
    case WaitSite::kTableLatchShared:
      return "TABLE_LATCH_SH";
    case WaitSite::kTableLatchExclusive:
      return "TABLE_LATCH_EX";
    case WaitSite::kPlanCacheShared:
      return "PLAN_CACHE_SH";
    case WaitSite::kPlanCacheExclusive:
      return "PLAN_CACHE_EX";
    case WaitSite::kWalMutex:
      return "WAL_MUTEX";
    case WaitSite::kCount:
      break;
  }
  return "UNKNOWN";
}

WaitStats& GlobalWaitStats() {
  static WaitStats stats;
  return stats;
}

}  // namespace mtcache
