#ifndef MTCACHE_MTCACHE_MTCACHE_H_
#define MTCACHE_MTCACHE_MTCACHE_H_

#include <memory>
#include <string>

#include "engine/server.h"
#include "repl/replication.h"

namespace mtcache {

struct MTCacheOptions {
  /// Linked-server name under which the backend is registered.
  std::string backend_link_name = "backend";
  /// Remote cost multiplier (§5: the backend is assumed loaded).
  double remote_cost_factor = 1.25;
};

/// The MTCache layer for one cache server attached to one backend server.
///
/// Setup mirrors §4: (1) the generated script that configures the server and
/// creates the shadow database (CreateShadowDatabase), (2) the DBA's script
/// creating cached views — `CREATE CACHED MATERIALIZED VIEW` statements
/// executed on the cache server route here through the engine hook — and
/// (3) "rerouting ODBC sources", which in this reproduction is simply
/// pointing the application at the cache Server object.
class MTCache {
 public:
  /// Configures `cache` as a mid-tier cache of `backend`: registers the
  /// linked server, points shadow-table routing at it, clones the backend
  /// catalog (tables, indexes, views, permissions, and statistics — but no
  /// data), and installs the cached-view DDL handler. The returned object
  /// must outlive `cache`.
  static StatusOr<std::unique_ptr<MTCache>> Setup(Server* cache,
                                                  Server* backend,
                                                  ReplicationSystem* repl,
                                                  MTCacheOptions options = {});

  /// Creates a cached materialized view: local backing table + matching
  /// replication subscription (auto-created publication), initial snapshot
  /// from the backend, and shadow-derived statistics (§4).
  Status CreateCachedView(const std::string& name,
                          const std::string& select_sql);
  Status CreateCachedView(const std::string& name, const SelectStmt& select);

  /// Drops the view's subscription and backing table.
  Status DropCachedView(const std::string& name);

  /// Full re-synchronization of a cached view: drops its subscription,
  /// replaces the local contents with a fresh backend snapshot, and
  /// re-subscribes from the current log position. Recovery path for a
  /// replica that diverged (tampering, missed changes).
  Status RefreshCachedView(const std::string& name);

  /// Copies a stored procedure from the backend so it runs locally; calls to
  /// procedures that are not copied forward transparently (§5.2).
  Status CopyProcedure(const std::string& name);

  /// Re-copies table/index statistics from the backend and recomputes local
  /// statistics on cached views. (§7 lists refreshing shadowed catalog
  /// information as future work; the statistics half is implemented here.)
  Status RefreshShadowedStatistics();

  /// Fault schedule consulted during snapshot copies (FaultSite::
  /// kSnapshotRow). A crash mid-copy rolls the snapshot back cleanly:
  /// CreateCachedView drops the half-built view entirely; RefreshCachedView
  /// restores the previous contents and leaves the view unsubscribed (the
  /// consistency checker flags it until the refresh is retried). Not owned;
  /// null = no faults.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }

  Server* cache() { return cache_; }
  Server* backend() { return backend_; }

 private:
  MTCache(Server* cache, Server* backend, ReplicationSystem* repl,
          MTCacheOptions options)
      : cache_(cache), backend_(backend), repl_(repl),
        options_(std::move(options)) {}

  Status CloneCatalog();
  /// Fires the snapshot-row fault site; true when the copy must crash.
  bool SnapshotRowCrash();

  Server* cache_;
  Server* backend_;
  ReplicationSystem* repl_;
  MTCacheOptions options_;
  FaultPlan* fault_plan_ = nullptr;
};

}  // namespace mtcache

#endif  // MTCACHE_MTCACHE_MTCACHE_H_
