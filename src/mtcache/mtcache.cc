#include "mtcache/mtcache.h"

#include <mutex>
#include <shared_mutex>

#include "engine/view_util.h"
#include "sql/parser.h"

namespace mtcache {

StatusOr<std::unique_ptr<MTCache>> MTCache::Setup(Server* cache,
                                                  Server* backend,
                                                  ReplicationSystem* repl,
                                                  MTCacheOptions options) {
  if (cache->links() == nullptr) {
    return Status::InvalidArgument(
        "cache server needs a linked-server registry");
  }
  cache->links()->Register(options.backend_link_name, backend);
  // The backend link is the only one this topology ever needs; freezing the
  // registry here marks the end of setup so concurrent execution can read it
  // without a lock (read-only after Freeze, asserted in debug builds).
  cache->links()->Freeze();

  OptimizerOptions opt = cache->optimizer_options();
  opt.backend_server = options.backend_link_name;
  opt.remote_cost_factor = options.remote_cost_factor;
  cache->set_optimizer_options(opt);

  std::unique_ptr<MTCache> mtcache(
      new MTCache(cache, backend, repl, std::move(options)));
  MT_RETURN_IF_ERROR(mtcache->CloneCatalog());

  MTCache* raw = mtcache.get();
  cache->set_cached_view_handler(
      [raw](Server*, const CreateViewStmt& stmt) -> Status {
        return raw->CreateCachedView(stmt.view, *stmt.select);
      });
  cache->set_cached_view_drop_handler(
      [raw](Server*, const std::string& view) -> Status {
        return raw->DropCachedView(view);
      });
  repl->AddPublisher(backend);
  // Surface the replication pipeline's counters through the cache server's
  // sys.dm_repl_metrics DMV. Translated into the engine-layer snapshot
  // struct because the engine cannot depend on repl headers.
  ReplicationSystem* repl_raw = repl;
  cache->metrics().set_repl_metrics_provider([repl_raw]() {
    const ReplicationMetrics& m = repl_raw->metrics();
    ReplMetricsSnapshot snap;
    snap.records_scanned = m.records_scanned;
    snap.changes_enqueued = m.changes_enqueued;
    snap.changes_applied = m.changes_applied;
    snap.txns_applied = m.txns_applied;
    snap.txns_retried = m.txns_retried;
    snap.crashes_injected = m.crashes_injected;
    snap.deliveries_dropped = m.deliveries_dropped;
    snap.latency_avg = m.AvgLatency();
    snap.latency_max = m.latency_max;
    snap.latency_count = m.latency_count;
    snap.latency_p50 = m.lag_histogram.Percentile(0.50);
    snap.latency_p95 = m.lag_histogram.Percentile(0.95);
    snap.latency_p99 = m.lag_histogram.Percentile(0.99);
    // Only occupied buckets cross the boundary: dm_repl_lag_histogram rows.
    for (int i = 0; i < LogHistogram::kBuckets; ++i) {
      int64_t count = m.lag_histogram.BucketCount(i);
      if (count == 0) continue;
      ReplLagBucket bucket;
      bucket.lo = LogHistogram::BucketLowerBound(i);
      bucket.hi = LogHistogram::BucketUpperBound(i);
      bucket.count = count;
      snap.lag_buckets.push_back(bucket);
    }
    return snap;
  });
  return mtcache;
}

Status MTCache::CloneCatalog() {
  const Catalog& src = backend_->db().catalog();
  for (const std::string& name : src.TableNames()) {
    const TableDef* def = src.GetTable(name);
    TableDef shadow;
    shadow.name = def->name;
    shadow.schema = def->schema;
    shadow.primary_key = def->primary_key;
    shadow.indexes = def->indexes;
    shadow.stats = def->stats;  // shadowed statistics (§3)
    shadow.kind = def->kind;
    shadow.view_def = def->view_def;
    shadow.grants = def->grants;
    shadow.shadow = true;  // catalog only; no rows
    shadow.home_server = options_.backend_link_name;
    MT_RETURN_IF_ERROR(cache_->db().CreateTable(std::move(shadow)));
  }
  cache_->InvalidatePlanCache();
  return Status::Ok();
}

Status MTCache::CreateCachedView(const std::string& name,
                                 const std::string& select_sql) {
  MT_ASSIGN_OR_RETURN(StmtPtr stmt, ParseSql(select_sql));
  if (stmt->kind != StmtKind::kSelect) {
    return Status::InvalidArgument("cached view definition must be a SELECT");
  }
  return CreateCachedView(name, static_cast<const SelectStmt&>(*stmt));
}

Status MTCache::CreateCachedView(const std::string& name,
                                 const SelectStmt& select) {
  if (select.from.empty()) {
    return Status::InvalidArgument("cached view must select from a table");
  }
  // The shadow copy of the base table carries schema, keys, and the
  // shadowed statistics the derived view statistics come from.
  TableDef* base = cache_->db().catalog().GetTable(select.from[0].name);
  if (base == nullptr) {
    return Status::NotFound("base table not in shadow catalog: " +
                            select.from[0].name);
  }
  MT_ASSIGN_OR_RETURN(SelectProjectDef def,
                      BuildSelectProjectDef(select, *base));
  MT_ASSIGN_OR_RETURN(
      TableDef view_def,
      MakeViewTableDef(name, *base, def, RelationKind::kCachedView));
  MT_RETURN_IF_ERROR(cache_->db().CreateTable(std::move(view_def)));

  // Initial snapshot: run the article's select-project on the backend and
  // bulk-insert locally, then subscribe from the current log position.
  // (Single-threaded system: no writes can slip between the two steps.)
  StoredTable* backing = cache_->db().GetStoredTable(name);
  ExecStats snapshot_stats;
  auto snapshot =
      backend_->Execute(def.ToSelectSql(), ParamMap{}, &snapshot_stats);
  if (!snapshot.ok()) {
    cache_->db().DropTable(name).ok();
    return snapshot.status();
  }
  {
    auto txn = cache_->db().txn_manager().Begin();
    for (const Row& row : snapshot->rows) {
      if (SnapshotRowCrash()) {
        // Mid-snapshot crash: roll the copy back and drop the half-built
        // view so the optimizer never sees a partially populated replica.
        // Retrying CreateCachedView starts over from scratch.
        cache_->db().txn_manager().Abort(txn.get());
        cache_->db().DropTable(name).ok();
        cache_->InvalidatePlanCache();
        return Status::Unavailable("injected crash: snapshot of " + name +
                                   " died mid-copy");
      }
      auto inserted = backing->Insert(row, txn.get());
      if (!inserted.ok()) {
        cache_->db().txn_manager().Abort(txn.get());
        cache_->db().DropTable(name).ok();
        return inserted.status();
      }
    }
    cache_->db().txn_manager().Commit(txn.get(), cache_->db().Now());
  }

  Article article;
  article.name = name + "_article";
  article.def = def;
  auto subscription = repl_->Subscribe(backend_, article, cache_, name);
  if (!subscription.ok()) {
    cache_->db().DropTable(name).ok();
    return subscription.status();
  }
  TableDef* created = cache_->db().catalog().GetTable(name);
  created->subscription_id = *subscription;
  created->freshness_time = cache_->db().Now();  // snapshot is current now
  cache_->InvalidatePlanCache();
  return Status::Ok();
}

Status MTCache::DropCachedView(const std::string& name) {
  TableDef* def = cache_->db().catalog().GetTable(name);
  if (def == nullptr || def->kind != RelationKind::kCachedView) {
    return Status::NotFound("cached view not found: " + name);
  }
  if (def->subscription_id >= 0) {
    MT_RETURN_IF_ERROR(repl_->Unsubscribe(def->subscription_id));
  }
  MT_RETURN_IF_ERROR(cache_->db().DropTable(name));
  cache_->InvalidatePlanCache();
  return Status::Ok();
}

Status MTCache::RefreshCachedView(const std::string& name) {
  TableDef* def = cache_->db().catalog().GetTable(name);
  if (def == nullptr || def->kind != RelationKind::kCachedView) {
    return Status::NotFound("cached view not found: " + name);
  }
  StoredTable* backing = cache_->db().GetStoredTable(name);
  if (backing == nullptr) {
    return Status::Internal("cached view has no storage: " + name);
  }
  // Stop delivery first so nothing lands between clear and re-subscribe.
  if (def->subscription_id >= 0) {
    MT_RETURN_IF_ERROR(repl_->Unsubscribe(def->subscription_id));
    def->subscription_id = -1;
  }
  // Replace the contents with a fresh snapshot, atomically.
  ExecStats snapshot_stats;
  MT_ASSIGN_OR_RETURN(
      QueryResult snapshot,
      backend_->Execute(def->view_def->ToSelectSql(), ParamMap{},
                        &snapshot_stats));
  {
    auto txn = cache_->db().txn_manager().Begin();
    // Collect the live rids under a shared latch first; Delete takes the
    // exclusive latch internally per row.
    std::vector<RowId> live;
    {
      std::shared_lock<std::shared_mutex> latch(backing->latch());
      for (RowId rid = 0; rid < backing->heap().slot_count(); ++rid) {
        if (backing->heap().IsLive(rid)) live.push_back(rid);
      }
    }
    for (RowId rid : live) {
      Status status = backing->Delete(rid, txn.get());
      if (!status.ok()) {
        cache_->db().txn_manager().Abort(txn.get());
        return status;
      }
    }
    for (const Row& row : snapshot.rows) {
      if (SnapshotRowCrash()) {
        // Mid-refresh crash: the abort restores the previous contents, so
        // no half-populated state is ever visible. The view is left
        // unsubscribed (subscription_id == -1) and possibly stale — exactly
        // the condition RefreshCachedView repairs — and the consistency
        // checker flags it until the refresh is retried.
        cache_->db().txn_manager().Abort(txn.get());
        cache_->InvalidatePlanCache();
        return Status::Unavailable("injected crash: resync of " + name +
                                   " died mid-copy");
      }
      auto inserted = backing->Insert(row, txn.get());
      if (!inserted.ok()) {
        cache_->db().txn_manager().Abort(txn.get());
        return inserted.status();
      }
    }
    cache_->db().txn_manager().Commit(txn.get(), cache_->db().Now());
  }
  Article article;
  article.name = name + "_article";
  article.def = *def->view_def;
  MT_ASSIGN_OR_RETURN(int64_t subscription,
                      repl_->Subscribe(backend_, article, cache_, name));
  def->subscription_id = subscription;
  def->freshness_time = cache_->db().Now();
  backing->RecomputeStats();
  cache_->InvalidatePlanCache();
  return Status::Ok();
}

bool MTCache::SnapshotRowCrash() {
  return fault_plan_ != nullptr &&
         fault_plan_->Decide(FaultSite::kSnapshotRow) == FaultAction::kCrash;
}

Status MTCache::CopyProcedure(const std::string& name) {
  const ProcedureDef* def = backend_->db().catalog().GetProcedure(name);
  if (def == nullptr) {
    return Status::NotFound("procedure not found on backend: " + name);
  }
  return cache_->db().catalog().CreateProcedure(*def);
}

Status MTCache::RefreshShadowedStatistics() {
  const Catalog& src = backend_->db().catalog();
  for (const std::string& name : cache_->db().catalog().TableNames()) {
    TableDef* local = cache_->db().catalog().GetTable(name);
    if (local->shadow) {
      const TableDef* remote = src.GetTable(name);
      if (remote != nullptr) local->stats = remote->stats;
    } else if (local->kind == RelationKind::kCachedView) {
      StoredTable* table = cache_->db().GetStoredTable(name);
      if (table != nullptr) table->RecomputeStats();
    }
  }
  cache_->InvalidatePlanCache();
  return Status::Ok();
}

}  // namespace mtcache
