#include "exec/exec.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>

#include "common/wait_stats.h"
#include "opt/cost_model.h"

namespace mtcache {

namespace {

Row ConcatRows(const Row& left, const Row& right) {
  Row out = left;
  out.insert(out.end(), right.begin(), right.end());
  return out;
}

int64_t RowsBytes(const std::vector<Row>& rows) {
  double bytes = 0;
  for (const Row& r : rows) bytes += RowSizeBytes(r);
  return static_cast<int64_t>(bytes);
}

struct RowHasher {
  size_t operator()(const Row& row) const { return HashRow(row); }
};
struct RowEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (a[i].Compare(b[i]) != 0) return false;
      // NULL == NULL in hash-key identity terms (group-by semantics).
      if (a[i].is_null() != b[i].is_null()) return false;
    }
    return true;
  }
};

// Drains every row of `child` (already opened) through `fn`, using whichever
// drive mode the context selects. Used by pipeline breakers that materialize
// their whole input anyway (hash build, aggregation, sort, NL inner), so the
// subtree below them still runs its batch path.
template <typename Fn>
Status DrainRows(ExecNode* child, ExecContext* ctx, const Fn& fn) {
  if (ctx->use_batch) {
    RowBatch batch;
    while (true) {
      MT_ASSIGN_OR_RETURN(bool more, child->NextBatch(ctx, &batch));
      if (!more) return Status::Ok();
      for (const Row* row : batch.rows) MT_RETURN_IF_ERROR(fn(*row));
    }
  }
  Row row;
  while (true) {
    MT_ASSIGN_OR_RETURN(bool more, child->Next(ctx, &row));
    if (!more) return Status::Ok();
    MT_RETURN_IF_ERROR(fn(row));
  }
}

// Pulls rows one at a time over a child's NextBatch stream: operators with
// inherently row-at-a-time control flow (nested-loops outer sides) still
// drive their input through the batch path. The returned pointer is valid
// until the next Pull; nullptr signals end of stream.
class BatchRowReader {
 public:
  void Reset(ExecNode* child) {
    child_ = child;
    batch_.Clear();
    pos_ = 0;
    done_ = false;
  }

  StatusOr<const Row*> Pull(ExecContext* ctx) {
    while (pos_ >= batch_.size()) {
      if (done_) return static_cast<const Row*>(nullptr);
      MT_ASSIGN_OR_RETURN(bool more, child_->NextBatch(ctx, &batch_));
      pos_ = 0;
      if (!more) {
        done_ = true;
        return static_cast<const Row*>(nullptr);
      }
    }
    return batch_.rows[pos_++];
  }

 private:
  ExecNode* child_ = nullptr;
  RowBatch batch_;
  int64_t pos_ = 0;
  bool done_ = false;
};

class DualScanExec : public ExecNode {
 public:
  Status Open(ExecContext*) override {
    done_ = false;
    return Status::Ok();
  }
  StatusOr<bool> Next(ExecContext*, Row* row) override {
    if (done_) return false;
    done_ = true;
    row->clear();
    return true;
  }

 private:
  bool done_ = false;
};

// Sequential scan over an immutable table snapshot. Open pins the table's
// refcounted row-version snapshot (O(1) when cached, one pointer-copy pass
// under a briefly-held shared latch otherwise) and never touches storage
// again: no latch is held across Next, concurrent DML installs fresh row
// versions without disturbing the pinned ones, and no payload is copied —
// the batch path hands parents pointers straight into the snapshot.
//
// A predicate/projection folded into the scan by the optimizer is applied
// here: non-qualifying rows never leave the operator, and projected rows are
// built directly into the output batch. Costing stays commensurate with the
// unfused Filter/Project plan: kSeqRowCost per live row visited,
// kFilterRowCost per pushed-predicate test, kProjectRowCost per projected
// output row, and the dead-slot remainder charged once at exhaustion.
class SeqScanExec : public ExecNode {
 public:
  explicit SeqScanExec(const PhysSeqScan& op) : op_(op) {}

  Status Open(ExecContext* ctx) override {
    snapshot_.reset();
    virtual_rows_.clear();
    pos_ = 0;
    charged_tail_ = false;
    if (op_.def->virtual_table) {
      // Virtual tables (sys.dm_* DMVs) are materialized at Open time so a
      // query sees one consistent snapshot of the counters. The pushed
      // predicate travels into the provider: non-matching rows are dropped
      // while the registry is being rendered, before they are accumulated.
      if (ctx->virtual_tables == nullptr) {
        return Status::Internal("no virtual-table provider for " +
                                op_.def->name);
      }
      int64_t tested = 0;
      VirtualRowFilter filter;
      if (op_.pushed_predicate != nullptr) {
        filter = [this, ctx, &tested](const Row& row) -> StatusOr<bool> {
          ++tested;
          return EvalPredicate(*op_.pushed_predicate, &row, ctx->Eval());
        };
      }
      MT_ASSIGN_OR_RETURN(virtual_rows_, ctx->virtual_tables->VirtualTableRows(
                                             op_.def->name, filter));
      // Rows the pushed predicate rejected were still rendered and tested;
      // charge them now (kept rows are charged as they are emitted).
      int64_t rejected = tested - static_cast<int64_t>(virtual_rows_.size());
      if (rejected > 0) {
        ctx->Charge((CostModel::kSeqRowCost + CostModel::kFilterRowCost) *
                    static_cast<double>(rejected));
      }
      return Status::Ok();
    }
    StoredTable* table = ctx->storage != nullptr
                             ? ctx->storage->GetStoredTable(op_.def->name)
                             : nullptr;
    if (table == nullptr) {
      return Status::Internal("no storage for table " + op_.def->name);
    }
    snapshot_ = table->ScanSnapshot();
    return Status::Ok();
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    if (op_.def->virtual_table) {
      if (pos_ >= virtual_rows_.size()) return false;
      Row& r = virtual_rows_[pos_++];
      ctx->Charge(PerEmittedRowCost());
      if (!op_.pushed_projection.empty()) {
        MT_RETURN_IF_ERROR(ProjectInto(r, ctx, row));
      } else {
        // Rows are re-rendered on every Open, so hand this one off.
        *row = std::move(r);
      }
      return true;
    }
    const std::vector<RowPtr>& rows = snapshot_->rows;
    while (pos_ < rows.size()) {
      const Row& r = *rows[pos_++];
      ctx->Charge(CostModel::kSeqRowCost);
      if (op_.pushed_predicate != nullptr) {
        ctx->Charge(CostModel::kFilterRowCost);
        MT_ASSIGN_OR_RETURN(
            bool pass, EvalPredicate(*op_.pushed_predicate, &r, ctx->Eval()));
        if (!pass) continue;
      }
      if (!op_.pushed_projection.empty()) {
        ctx->Charge(CostModel::kProjectRowCost);
        MT_RETURN_IF_ERROR(ProjectInto(r, ctx, row));
      } else {
        *row = r;
      }
      return true;
    }
    ChargeTail(ctx);
    return false;
  }

  StatusOr<bool> NextBatch(ExecContext* ctx, RowBatch* batch) override {
    batch->Clear();
    if (op_.def->virtual_table) {
      while (pos_ < virtual_rows_.size() && !batch->full()) {
        if (!op_.pushed_projection.empty()) {
          Row out;
          MT_RETURN_IF_ERROR(ProjectInto(virtual_rows_[pos_], ctx, &out));
          batch->PushOwned(std::move(out));
        } else {
          batch->PushRef(&virtual_rows_[pos_]);
        }
        ++pos_;
      }
      ctx->Charge(PerEmittedRowCost() * static_cast<double>(batch->size()));
      return batch->size() > 0;
    }
    const std::vector<RowPtr>& rows = snapshot_->rows;
    // Loop chunks until at least one row qualifies (a selective pushed
    // predicate may reject a whole chunk) or the snapshot is exhausted.
    while (batch->size() == 0 && pos_ < rows.size()) {
      size_t chunk = std::min(static_cast<size_t>(RowBatch::kMaxRows),
                              rows.size() - pos_);
      ctx->Charge(CostModel::kSeqRowCost * static_cast<double>(chunk));
      scratch_.clear();
      scratch_.reserve(chunk);
      for (size_t i = 0; i < chunk; ++i) {
        scratch_.push_back(rows[pos_ + i].get());
      }
      pos_ += chunk;
      if (op_.pushed_predicate != nullptr) {
        ctx->Charge(CostModel::kFilterRowCost * static_cast<double>(chunk));
        MT_RETURN_IF_ERROR(EvalPredicateBatch(*op_.pushed_predicate, scratch_,
                                              ctx->Eval(), &keep_));
        size_t out = 0;
        for (size_t i = 0; i < chunk; ++i) {
          if (keep_[i]) scratch_[out++] = scratch_[i];
        }
        scratch_.resize(out);
      }
      if (!op_.pushed_projection.empty()) {
        ctx->Charge(CostModel::kProjectRowCost *
                    static_cast<double>(scratch_.size()));
        for (const Row* r : scratch_) {
          Row proj;
          MT_RETURN_IF_ERROR(ProjectInto(*r, ctx, &proj));
          batch->PushOwned(std::move(proj));
        }
      } else {
        for (const Row* r : scratch_) batch->PushRef(r);
      }
    }
    if (batch->size() > 0) return true;
    ChargeTail(ctx);
    return false;
  }

  void Close() override {
    snapshot_.reset();  // unpin the row versions
    virtual_rows_.clear();
    scratch_.clear();
  }

  int64_t MemoryBytes() const override {
    // The snapshot shares the table's row versions; the scan's private
    // footprint is the pointer vector, not the payloads.
    int64_t bytes = RowsBytes(virtual_rows_);
    if (snapshot_ != nullptr) {
      bytes += static_cast<int64_t>(snapshot_->rows.size() * sizeof(RowPtr));
    }
    return bytes;
  }

 private:
  double PerEmittedRowCost() const {
    double c = CostModel::kSeqRowCost;
    if (op_.pushed_predicate != nullptr) c += CostModel::kFilterRowCost;
    if (!op_.pushed_projection.empty()) c += CostModel::kProjectRowCost;
    return c;
  }

  Status ProjectInto(const Row& in, ExecContext* ctx, Row* out) const {
    out->clear();
    out->reserve(op_.pushed_projection.size());
    for (const BExprPtr& e : op_.pushed_projection) {
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*e, &in, ctx->Eval()));
      out->push_back(std::move(v));
    }
    return Status::Ok();
  }

  void ChargeTail(ExecContext* ctx) {
    if (charged_tail_) return;
    int64_t dead = snapshot_ != nullptr ? snapshot_->dead_slots : 0;
    ctx->Charge(CostModel::kSeqRowCost * static_cast<double>(dead));
    charged_tail_ = true;
  }

  const PhysSeqScan& op_;
  HeapSnapshotPtr snapshot_;
  std::vector<Row> virtual_rows_;  // DMV rows (owned; stored scans share)
  std::vector<const Row*> scratch_;
  std::vector<char> keep_;
  size_t pos_ = 0;
  bool charged_tail_ = false;
};

// Index seek. The in-range row versions are pinned (refcounted, payload-free)
// under one shared latch at Open; folded predicate/projection are applied at
// emission exactly as in SeqScanExec.
class IndexSeekExec : public ExecNode {
 public:
  explicit IndexSeekExec(const PhysIndexSeek& op) : op_(op) {}

  Status Open(ExecContext* ctx) override {
    StoredTable* table = ctx->storage != nullptr
                             ? ctx->storage->GetStoredTable(op_.def->name)
                             : nullptr;
    if (table == nullptr) {
      return Status::Internal("no storage for table " + op_.def->name);
    }
    ctx->Charge(CostModel::kIndexSeekCost);
    rows_.clear();
    pos_ = 0;
    dead_entries_ = 0;
    charged_tail_ = false;

    Row prefix;
    for (const BExprPtr& e : op_.eq_prefix) {
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*e, nullptr, ctx->Eval()));
      if (v.is_null()) return Status::Ok();  // = NULL matches nothing
      prefix.push_back(std::move(v));
    }
    Value hi;
    bool has_hi = false;
    if (op_.hi != nullptr) {
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*op_.hi, nullptr, ctx->Eval()));
      if (v.is_null()) return Status::Ok();
      hi = std::move(v);
      has_hi = true;
    }
    Row seek = prefix;
    if (op_.lo != nullptr) {
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*op_.lo, nullptr, ctx->Eval()));
      if (v.is_null()) return Status::Ok();
      seek.push_back(std::move(v));
    }

    // Walk the in-range index entries and pin the live row versions under
    // one shared latch; the iterator never survives past this block and no
    // payload is copied.
    SharedLatchWait latch(table->latch(), WaitSite::kTableLatchShared);
    const BPlusTree& index = table->index(op_.index_ordinal);
    BPlusTree::Iterator it;
    if (op_.lo != nullptr) {
      it = op_.lo_inclusive ? index.SeekGe(seek) : index.SeekGt(seek);
    } else {
      it = prefix.empty() ? index.Begin() : index.SeekGe(seek);
    }
    for (; it.Valid(); it.Next()) {
      const Row& key = it.key();
      // Stop when the equality prefix no longer matches.
      if (!prefix.empty() && BPlusTree::ComparePrefix(key, prefix) != 0) break;
      if (has_hi) {
        size_t range_pos = prefix.size();
        if (range_pos < key.size()) {
          int c = key[range_pos].Compare(hi);
          if (c > 0 || (c == 0 && !op_.hi_inclusive)) break;
        }
      }
      RowId rid = it.rowid();
      if (!table->heap().IsLive(rid)) {
        ++dead_entries_;
        continue;
      }
      rows_.push_back(table->heap().GetRef(rid));
    }
    return Status::Ok();
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    while (pos_ < rows_.size()) {
      const Row& r = *rows_[pos_++];
      ctx->Charge(CostModel::kIndexRowCost);
      if (op_.pushed_predicate != nullptr) {
        ctx->Charge(CostModel::kFilterRowCost);
        MT_ASSIGN_OR_RETURN(
            bool pass, EvalPredicate(*op_.pushed_predicate, &r, ctx->Eval()));
        if (!pass) continue;
      }
      if (!op_.pushed_projection.empty()) {
        ctx->Charge(CostModel::kProjectRowCost);
        MT_RETURN_IF_ERROR(ProjectInto(r, ctx, row));
      } else {
        *row = r;
      }
      return true;
    }
    ChargeTail(ctx);
    return false;
  }

  StatusOr<bool> NextBatch(ExecContext* ctx, RowBatch* batch) override {
    batch->Clear();
    while (batch->size() == 0 && pos_ < rows_.size()) {
      size_t chunk = std::min(static_cast<size_t>(RowBatch::kMaxRows),
                              rows_.size() - pos_);
      ctx->Charge(CostModel::kIndexRowCost * static_cast<double>(chunk));
      scratch_.clear();
      scratch_.reserve(chunk);
      for (size_t i = 0; i < chunk; ++i) {
        scratch_.push_back(rows_[pos_ + i].get());
      }
      pos_ += chunk;
      if (op_.pushed_predicate != nullptr) {
        ctx->Charge(CostModel::kFilterRowCost * static_cast<double>(chunk));
        MT_RETURN_IF_ERROR(EvalPredicateBatch(*op_.pushed_predicate, scratch_,
                                              ctx->Eval(), &keep_));
        size_t out = 0;
        for (size_t i = 0; i < chunk; ++i) {
          if (keep_[i]) scratch_[out++] = scratch_[i];
        }
        scratch_.resize(out);
      }
      if (!op_.pushed_projection.empty()) {
        ctx->Charge(CostModel::kProjectRowCost *
                    static_cast<double>(scratch_.size()));
        for (const Row* r : scratch_) {
          Row proj;
          MT_RETURN_IF_ERROR(ProjectInto(*r, ctx, &proj));
          batch->PushOwned(std::move(proj));
        }
      } else {
        for (const Row* r : scratch_) batch->PushRef(r);
      }
    }
    if (batch->size() > 0) return true;
    ChargeTail(ctx);
    return false;
  }

  void Close() override {
    rows_.clear();
    scratch_.clear();
  }

  int64_t MemoryBytes() const override {
    // Pinned pointers only; payloads belong to the table's version store.
    return static_cast<int64_t>(rows_.size() * sizeof(RowPtr));
  }

 private:
  Status ProjectInto(const Row& in, ExecContext* ctx, Row* out) const {
    out->clear();
    out->reserve(op_.pushed_projection.size());
    for (const BExprPtr& e : op_.pushed_projection) {
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*e, &in, ctx->Eval()));
      out->push_back(std::move(v));
    }
    return Status::Ok();
  }

  void ChargeTail(ExecContext* ctx) {
    if (charged_tail_) return;
    ctx->Charge(CostModel::kIndexRowCost * static_cast<double>(dead_entries_));
    charged_tail_ = true;
  }

  const PhysIndexSeek& op_;
  std::vector<RowPtr> rows_;
  std::vector<const Row*> scratch_;
  std::vector<char> keep_;
  size_t pos_ = 0;
  int64_t dead_entries_ = 0;
  bool charged_tail_ = false;
};

// True if the subtree contains a RemoteQuery: classifies a startup-guarded
// ChoosePlan branch as the local or the remote alternative.
bool SubtreeShipsRemote(const PhysicalOp& op) {
  if (op.kind == PhysicalKind::kRemoteQuery) return true;
  for (const auto& child : op.children) {
    if (SubtreeShipsRemote(*child)) return true;
  }
  return false;
}

class FilterExec : public ExecNode {
 public:
  FilterExec(const PhysFilter& op, std::unique_ptr<ExecNode> child)
      : op_(op), child_(std::move(child)),
        guards_remote_(op.startup && !op.children.empty() &&
                       SubtreeShipsRemote(*op.children[0])) {}

  Status Open(ExecContext* ctx) override {
    if (op_.startup) {
      // Startup predicate: parameters only, evaluated once. If false, the
      // child is never opened (dynamic-plan branch selection, §5.1).
      MT_ASSIGN_OR_RETURN(bool pass,
                          EvalPredicate(*op_.predicate, nullptr, ctx->Eval()));
      ctx->Charge(CostModel::kFilterRowCost);
      if (ctx->branch_stats != nullptr) {
        ++ctx->branch_stats->guards_evaluated;
        if (pass) {
          if (guards_remote_) {
            ++ctx->branch_stats->remote_branches;
          } else {
            ++ctx->branch_stats->local_branches;
          }
        }
      }
      open_ = pass;
      if (!open_) return Status::Ok();
      return child_->Open(ctx);
    }
    open_ = true;
    return child_->Open(ctx);
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    if (!open_) return false;
    while (true) {
      MT_ASSIGN_OR_RETURN(bool more, child_->Next(ctx, row));
      if (!more) return false;
      if (op_.startup) return true;  // rows pass through
      ctx->Charge(CostModel::kFilterRowCost);
      MT_ASSIGN_OR_RETURN(bool pass,
                          EvalPredicate(*op_.predicate, row, ctx->Eval()));
      if (pass) return true;
    }
  }

  StatusOr<bool> NextBatch(ExecContext* ctx, RowBatch* batch) override {
    batch->Clear();
    if (!open_) return false;
    if (op_.startup) return child_->NextBatch(ctx, batch);
    // Surviving rows are passed through by reference; they stay owned by
    // input_, which lives until our next NextBatch/Close.
    while (batch->size() == 0) {
      MT_ASSIGN_OR_RETURN(bool more, child_->NextBatch(ctx, &input_));
      if (!more) return false;
      ctx->Charge(CostModel::kFilterRowCost *
                  static_cast<double>(input_.size()));
      MT_RETURN_IF_ERROR(
          EvalPredicateBatch(*op_.predicate, input_.rows, ctx->Eval(), &keep_));
      for (size_t i = 0; i < input_.rows.size(); ++i) {
        if (keep_[i]) batch->PushRef(input_.rows[i]);
      }
    }
    return true;
  }

  void Close() override {
    if (open_) child_->Close();
    open_ = false;
    input_.Clear();
  }

 private:
  const PhysFilter& op_;
  std::unique_ptr<ExecNode> child_;
  // True when this startup guard protects a branch that ships work to a
  // remote server (ChoosePlan's "remote" arm); computed once at build time.
  bool guards_remote_;
  bool open_ = false;
  RowBatch input_;
  std::vector<char> keep_;
};

class ProjectExec : public ExecNode {
 public:
  ProjectExec(const PhysProject& op, std::unique_ptr<ExecNode> child)
      : op_(op), child_(std::move(child)) {}

  Status Open(ExecContext* ctx) override { return child_->Open(ctx); }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    Row input;
    MT_ASSIGN_OR_RETURN(bool more, child_->Next(ctx, &input));
    if (!more) return false;
    ctx->Charge(CostModel::kProjectRowCost);
    row->clear();
    row->reserve(op_.exprs.size());
    for (const BExprPtr& e : op_.exprs) {
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*e, &input, ctx->Eval()));
      row->push_back(std::move(v));
    }
    return true;
  }

  StatusOr<bool> NextBatch(ExecContext* ctx, RowBatch* batch) override {
    batch->Clear();
    MT_ASSIGN_OR_RETURN(bool more, child_->NextBatch(ctx, &input_));
    if (!more) return false;
    ctx->Charge(CostModel::kProjectRowCost *
                static_cast<double>(input_.size()));
    for (const Row* in : input_.rows) {
      Row out;
      out.reserve(op_.exprs.size());
      for (const BExprPtr& e : op_.exprs) {
        MT_ASSIGN_OR_RETURN(Value v, EvalBound(*e, in, ctx->Eval()));
        out.push_back(std::move(v));
      }
      batch->PushOwned(std::move(out));
    }
    return true;
  }

  void Close() override {
    child_->Close();
    input_.Clear();
  }

 private:
  const PhysProject& op_;
  std::unique_ptr<ExecNode> child_;
  RowBatch input_;
};

// Block nested loops: the inner (right) input is materialized at Open. The
// outer side streams through BatchRowReader under batch drive, so scans
// below it still run copy-free.
class NLJoinExec : public ExecNode {
 public:
  NLJoinExec(const PhysNLJoin& op, std::unique_ptr<ExecNode> left,
             std::unique_ptr<ExecNode> right)
      : op_(op), left_(std::move(left)), right_(std::move(right)) {}

  Status Open(ExecContext* ctx) override {
    MT_RETURN_IF_ERROR(left_->Open(ctx));
    MT_RETURN_IF_ERROR(right_->Open(ctx));
    inner_.clear();
    MT_RETURN_IF_ERROR(DrainRows(right_.get(), ctx, [this](const Row& row) {
      inner_.push_back(row);
      return Status::Ok();
    }));
    right_->Close();
    reader_.Reset(left_.get());
    have_outer_ = false;
    inner_pos_ = 0;
    return Status::Ok();
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    while (true) {
      if (!have_outer_) {
        if (ctx->use_batch) {
          MT_ASSIGN_OR_RETURN(const Row* o, reader_.Pull(ctx));
          if (o == nullptr) return false;
          outer_ = *o;
        } else {
          MT_ASSIGN_OR_RETURN(bool more, left_->Next(ctx, &outer_));
          if (!more) return false;
        }
        have_outer_ = true;
        outer_matched_ = false;
        inner_pos_ = 0;
      }
      while (inner_pos_ < inner_.size()) {
        const Row& inner = inner_[inner_pos_++];
        ctx->Charge(CostModel::kNLInnerRowCost);
        Row combined = ConcatRows(outer_, inner);
        bool pass = true;
        if (op_.condition != nullptr) {
          MT_ASSIGN_OR_RETURN(
              pass, EvalPredicate(*op_.condition, &combined, ctx->Eval()));
        }
        if (pass) {
          outer_matched_ = true;
          *row = std::move(combined);
          return true;
        }
      }
      // Inner exhausted for this outer row.
      bool emit_null_extended =
          op_.join_kind == JoinKind::kLeftOuter && !outer_matched_;
      have_outer_ = false;
      if (emit_null_extended) {
        *row = outer_;
        int right_width =
            op_.schema.num_columns() - static_cast<int>(outer_.size());
        for (int i = 0; i < right_width; ++i) row->push_back(Value::Null());
        return true;
      }
    }
  }

  void Close() override {
    left_->Close();
    inner_.clear();
  }

  int64_t MemoryBytes() const override { return RowsBytes(inner_); }

 private:
  const PhysNLJoin& op_;
  std::unique_ptr<ExecNode> left_;
  std::unique_ptr<ExecNode> right_;
  std::vector<Row> inner_;
  BatchRowReader reader_;
  Row outer_;
  bool have_outer_ = false;
  bool outer_matched_ = false;
  size_t inner_pos_ = 0;
};

// Index nested loops: seek the inner table's index once per outer row. The
// matching inner row versions are pinned (payload-free) under one shared
// latch per outer row.
class IndexNLJoinExec : public ExecNode {
 public:
  IndexNLJoinExec(const PhysIndexNLJoin& op, std::unique_ptr<ExecNode> outer)
      : op_(op), outer_(std::move(outer)) {}

  Status Open(ExecContext* ctx) override {
    table_ = ctx->storage != nullptr
                 ? ctx->storage->GetStoredTable(op_.inner_def->name)
                 : nullptr;
    if (table_ == nullptr) {
      return Status::Internal("no storage for table " + op_.inner_def->name);
    }
    MT_RETURN_IF_ERROR(outer_->Open(ctx));
    reader_.Reset(outer_.get());
    have_outer_ = false;
    return Status::Ok();
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    while (true) {
      if (!have_outer_) {
        if (ctx->use_batch) {
          MT_ASSIGN_OR_RETURN(const Row* o, reader_.Pull(ctx));
          if (o == nullptr) return false;
          outer_row_ = *o;
        } else {
          MT_ASSIGN_OR_RETURN(bool more, outer_->Next(ctx, &outer_row_));
          if (!more) return false;
        }
        have_outer_ = true;
        outer_matched_ = false;
        matches_.clear();
        match_pos_ = 0;
        const Value& key = outer_row_[op_.outer_key];
        ctx->Charge(CostModel::kIndexSeekCost);
        if (!key.is_null()) {  // NULL keys never match
          // Pin this outer row's matching inner row versions under one
          // shared latch; predicates/projections are evaluated below, after
          // the latch is released.
          Row seek_key{key};
          int64_t entries = 0;
          {
            SharedLatchWait latch(table_->latch(),
                                  WaitSite::kTableLatchShared);
            for (auto it = table_->index(op_.index_ordinal).SeekGe(seek_key);
                 it.Valid() &&
                 BPlusTree::ComparePrefix(it.key(), seek_key) == 0;
                 it.Next()) {
              ++entries;
              RowId rid = it.rowid();
              if (!table_->heap().IsLive(rid)) continue;
              matches_.push_back(table_->heap().GetRef(rid));
            }
          }
          ctx->Charge(CostModel::kIndexRowCost * static_cast<double>(entries));
        }
      }
      while (match_pos_ < matches_.size()) {
        const Row& inner = *matches_[match_pos_++];
        if (op_.inner_predicate != nullptr) {
          MT_ASSIGN_OR_RETURN(
              bool pass,
              EvalPredicate(*op_.inner_predicate, &inner, ctx->Eval()));
          if (!pass) continue;
        }
        Row inner_out;
        if (!op_.inner_projection.empty()) {
          inner_out.reserve(op_.inner_projection.size());
          for (const BExprPtr& e : op_.inner_projection) {
            MT_ASSIGN_OR_RETURN(Value v, EvalBound(*e, &inner, ctx->Eval()));
            inner_out.push_back(std::move(v));
          }
        } else {
          inner_out = inner;
        }
        Row combined = ConcatRows(outer_row_, inner_out);
        if (op_.residual != nullptr) {
          MT_ASSIGN_OR_RETURN(
              bool pass,
              EvalPredicate(*op_.residual, &combined, ctx->Eval()));
          if (!pass) continue;
        }
        outer_matched_ = true;
        *row = std::move(combined);
        return true;
      }
      bool emit_null_extended =
          op_.join_kind == JoinKind::kLeftOuter && !outer_matched_;
      have_outer_ = false;
      if (emit_null_extended) {
        *row = outer_row_;
        int right_width = op_.schema.num_columns() -
                          static_cast<int>(outer_row_.size());
        for (int i = 0; i < right_width; ++i) row->push_back(Value::Null());
        return true;
      }
    }
  }

  void Close() override {
    outer_->Close();
    matches_.clear();
  }

  int64_t MemoryBytes() const override {
    return static_cast<int64_t>(matches_.size() * sizeof(RowPtr));
  }

 private:
  const PhysIndexNLJoin& op_;
  std::unique_ptr<ExecNode> outer_;
  StoredTable* table_ = nullptr;
  BatchRowReader reader_;
  std::vector<RowPtr> matches_;
  size_t match_pos_ = 0;
  Row outer_row_;
  bool have_outer_ = false;
  bool outer_matched_ = false;
};

class HashJoinExec : public ExecNode {
 public:
  HashJoinExec(const PhysHashJoin& op, std::unique_ptr<ExecNode> probe,
               std::unique_ptr<ExecNode> build)
      : op_(op), probe_(std::move(probe)), build_(std::move(build)) {}

  Status Open(ExecContext* ctx) override {
    MT_RETURN_IF_ERROR(build_->Open(ctx));
    table_.clear();
    MT_RETURN_IF_ERROR(
        DrainRows(build_.get(), ctx, [this, ctx](const Row& row) {
          ctx->Charge(CostModel::kHashBuildRowCost);
          Row key;
          bool has_null = false;
          for (int k : op_.build_keys) {
            if (row[k].is_null()) has_null = true;
            key.push_back(row[k]);
          }
          if (!has_null) table_[std::move(key)].push_back(row);
          return Status::Ok();  // NULL keys never join
        }));
    build_->Close();
    MT_RETURN_IF_ERROR(probe_->Open(ctx));
    match_list_ = nullptr;
    match_pos_ = 0;
    probe_batch_.Clear();
    probe_pos_ = 0;
    probe_ptr_ = nullptr;
    return Status::Ok();
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    while (true) {
      if (match_list_ != nullptr) {
        while (match_pos_ < match_list_->size()) {
          const Row& build_row = (*match_list_)[match_pos_++];
          Row combined = ConcatRows(probe_row_, build_row);
          bool pass = true;
          if (op_.residual != nullptr) {
            MT_ASSIGN_OR_RETURN(
                pass, EvalPredicate(*op_.residual, &combined, ctx->Eval()));
          }
          if (pass) {
            probe_matched_ = true;
            *row = std::move(combined);
            return true;
          }
        }
        bool emit_null_extended =
            op_.join_kind == JoinKind::kLeftOuter && !probe_matched_;
        match_list_ = nullptr;
        if (emit_null_extended) {
          *row = NullExtended(probe_row_);
          return true;
        }
      }
      MT_ASSIGN_OR_RETURN(bool more, probe_->Next(ctx, &probe_row_));
      if (!more) return false;
      ctx->Charge(CostModel::kHashProbeRowCost);
      probe_matched_ = false;
      Row key;
      bool has_null = false;
      for (int k : op_.probe_keys) {
        if (probe_row_[k].is_null()) has_null = true;
        key.push_back(probe_row_[k]);
      }
      if (has_null) {
        if (op_.join_kind == JoinKind::kLeftOuter) {
          *row = NullExtended(probe_row_);
          return true;
        }
        continue;
      }
      auto it = table_.find(key);
      if (it != table_.end()) {
        match_list_ = &it->second;
        match_pos_ = 0;
      } else if (op_.join_kind == JoinKind::kLeftOuter) {
        *row = NullExtended(probe_row_);
        return true;
      }
    }
  }

  StatusOr<bool> NextBatch(ExecContext* ctx, RowBatch* batch) override {
    batch->Clear();
    while (!batch->full()) {
      if (match_list_ != nullptr) {
        while (match_pos_ < match_list_->size() && !batch->full()) {
          const Row& build_row = (*match_list_)[match_pos_++];
          Row combined = ConcatRows(*probe_ptr_, build_row);
          bool pass = true;
          if (op_.residual != nullptr) {
            MT_ASSIGN_OR_RETURN(
                pass, EvalPredicate(*op_.residual, &combined, ctx->Eval()));
          }
          if (pass) {
            probe_matched_ = true;
            batch->PushOwned(std::move(combined));
          }
        }
        if (match_pos_ < match_list_->size()) break;  // batch full; resume
        bool emit_null_extended =
            op_.join_kind == JoinKind::kLeftOuter && !probe_matched_;
        if (emit_null_extended && batch->full()) break;  // resume here
        match_list_ = nullptr;
        if (emit_null_extended) batch->PushOwned(NullExtended(*probe_ptr_));
        continue;
      }
      if (probe_pos_ >= probe_batch_.size()) {
        MT_ASSIGN_OR_RETURN(bool more, probe_->NextBatch(ctx, &probe_batch_));
        probe_pos_ = 0;
        if (!more) break;  // probe exhausted
      }
      probe_ptr_ = probe_batch_.rows[probe_pos_++];
      ctx->Charge(CostModel::kHashProbeRowCost);
      probe_matched_ = false;
      Row key;
      bool has_null = false;
      for (int k : op_.probe_keys) {
        if ((*probe_ptr_)[k].is_null()) has_null = true;
        key.push_back((*probe_ptr_)[k]);
      }
      if (has_null) {
        if (op_.join_kind == JoinKind::kLeftOuter) {
          batch->PushOwned(NullExtended(*probe_ptr_));
        }
        continue;
      }
      auto it = table_.find(key);
      if (it != table_.end()) {
        match_list_ = &it->second;
        match_pos_ = 0;
      } else if (op_.join_kind == JoinKind::kLeftOuter) {
        batch->PushOwned(NullExtended(*probe_ptr_));
      }
    }
    return batch->size() > 0;
  }

  void Close() override {
    probe_->Close();
    table_.clear();
    probe_batch_.Clear();
  }

  int64_t MemoryBytes() const override {
    double bytes = 0;
    for (const auto& [key, rows] : table_) {
      bytes += RowSizeBytes(key);
      for (const Row& r : rows) bytes += RowSizeBytes(r);
    }
    return static_cast<int64_t>(bytes);
  }

 private:
  Row NullExtended(const Row& left) const {
    Row out = left;
    int right_width =
        op_.schema.num_columns() - static_cast<int>(left.size());
    for (int i = 0; i < right_width; ++i) out.push_back(Value::Null());
    return out;
  }

  const PhysHashJoin& op_;
  std::unique_ptr<ExecNode> probe_;
  std::unique_ptr<ExecNode> build_;
  std::unordered_map<Row, std::vector<Row>, RowHasher, RowEq> table_;
  Row probe_row_;                      // row-path probe cursor
  RowBatch probe_batch_;               // batch-path probe cursor
  int64_t probe_pos_ = 0;
  const Row* probe_ptr_ = nullptr;     // into probe_batch_
  bool probe_matched_ = false;
  const std::vector<Row>* match_list_ = nullptr;
  size_t match_pos_ = 0;
};

class HashAggregateExec : public ExecNode {
 public:
  HashAggregateExec(const PhysHashAggregate& op,
                    std::unique_ptr<ExecNode> child)
      : op_(op), child_(std::move(child)) {}

  struct AggState {
    int64_t count = 0;          // non-null inputs (or all rows for COUNT(*))
    double sum = 0;
    bool sum_is_int = true;
    Value min;
    Value max;
  };

  Status Open(ExecContext* ctx) override {
    MT_RETURN_IF_ERROR(child_->Open(ctx));
    groups_.clear();
    order_.clear();
    MT_RETURN_IF_ERROR(DrainRows(child_.get(), ctx, [this, ctx](
                                                        const Row& row) {
      return Absorb(row, ctx);
    }));
    child_->Close();
    // Scalar aggregate over an empty input still produces one row.
    if (op_.group_by.empty() && groups_.empty()) {
      auto [it, inserted] =
          groups_.try_emplace(Row{}, std::vector<AggState>(op_.aggs.size()));
      if (inserted) order_.push_back(&*it);
    }
    emit_pos_ = 0;
    return Status::Ok();
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    if (emit_pos_ >= order_.size()) return false;
    ctx->Charge(CostModel::kProjectRowCost);
    const auto& [key, states] = *order_[emit_pos_++];
    *row = key;
    for (size_t i = 0; i < op_.aggs.size(); ++i) {
      const AggItem& item = op_.aggs[i];
      const AggState& st = states[i];
      switch (item.func) {
        case AggFunc::kCountStar:
        case AggFunc::kCount:
          row->push_back(Value::Int(st.count));
          break;
        case AggFunc::kSum:
          if (st.count == 0) {
            row->push_back(Value::Null());
          } else if (st.sum_is_int) {
            row->push_back(Value::Int(static_cast<int64_t>(std::llround(st.sum))));
          } else {
            row->push_back(Value::Double(st.sum));
          }
          break;
        case AggFunc::kAvg:
          row->push_back(st.count == 0 ? Value::Null()
                                       : Value::Double(st.sum / st.count));
          break;
        case AggFunc::kMin:
          row->push_back(st.count == 0 ? Value::Null() : st.min);
          break;
        case AggFunc::kMax:
          row->push_back(st.count == 0 ? Value::Null() : st.max);
          break;
      }
    }
    return true;
  }

  int64_t MemoryBytes() const override {
    double bytes = 0;
    for (const auto& [key, states] : groups_) {
      bytes += RowSizeBytes(key);
      bytes += static_cast<double>(states.size() * sizeof(AggState));
    }
    return static_cast<int64_t>(bytes);
  }

 private:
  Status Absorb(const Row& row, ExecContext* ctx) {
    ctx->Charge(CostModel::kAggRowCost);
    Row key;
    for (const BExprPtr& g : op_.group_by) {
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*g, &row, ctx->Eval()));
      key.push_back(std::move(v));
    }
    auto [it, inserted] =
        groups_.try_emplace(key, std::vector<AggState>(op_.aggs.size()));
    if (inserted) order_.push_back(&*it);
    std::vector<AggState>& states = it->second;
    for (size_t i = 0; i < op_.aggs.size(); ++i) {
      const AggItem& item = op_.aggs[i];
      AggState& st = states[i];
      if (item.func == AggFunc::kCountStar) {
        ++st.count;
        continue;
      }
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*item.arg, &row, ctx->Eval()));
      if (v.is_null()) continue;
      ++st.count;
      switch (item.func) {
        case AggFunc::kSum:
        case AggFunc::kAvg:
          st.sum += v.AsDouble();
          if (v.type() == TypeId::kDouble) st.sum_is_int = false;
          break;
        case AggFunc::kMin:
          if (st.count == 1 || v.Compare(st.min) < 0) st.min = v;
          break;
        case AggFunc::kMax:
          if (st.count == 1 || v.Compare(st.max) > 0) st.max = v;
          break;
        default:
          break;
      }
    }
    return Status::Ok();
  }

  const PhysHashAggregate& op_;
  std::unique_ptr<ExecNode> child_;
  std::unordered_map<Row, std::vector<AggState>, RowHasher, RowEq> groups_;
  std::vector<std::pair<const Row, std::vector<AggState>>*> order_;
  size_t emit_pos_ = 0;
};

class SortExec : public ExecNode {
 public:
  SortExec(const PhysSort& op, std::unique_ptr<ExecNode> child)
      : op_(op), child_(std::move(child)) {}

  Status Open(ExecContext* ctx) override {
    MT_RETURN_IF_ERROR(child_->Open(ctx));
    rows_.clear();
    std::vector<Row> keys;
    MT_RETURN_IF_ERROR(
        DrainRows(child_.get(), ctx, [&](const Row& row) -> Status {
          Row key;
          for (const SortKey& k : op_.keys) {
            MT_ASSIGN_OR_RETURN(Value v, EvalBound(*k.expr, &row, ctx->Eval()));
            key.push_back(std::move(v));
          }
          keys.push_back(std::move(key));
          rows_.push_back(row);
          return Status::Ok();
        }));
    child_->Close();
    double n = std::max<double>(rows_.size(), 2);
    ctx->Charge(CostModel::kSortRowCost * n * std::log2(n));

    std::vector<size_t> perm(rows_.size());
    for (size_t i = 0; i < perm.size(); ++i) perm[i] = i;
    std::stable_sort(perm.begin(), perm.end(), [&](size_t a, size_t b) {
      for (size_t k = 0; k < op_.keys.size(); ++k) {
        int c = keys[a][k].Compare(keys[b][k]);
        if (c != 0) return op_.keys[k].desc ? c > 0 : c < 0;
      }
      return false;
    });
    std::vector<Row> sorted;
    sorted.reserve(rows_.size());
    for (size_t i : perm) sorted.push_back(std::move(rows_[i]));
    rows_ = std::move(sorted);
    pos_ = 0;
    return Status::Ok();
  }

  StatusOr<bool> Next(ExecContext*, Row* row) override {
    if (pos_ >= rows_.size()) return false;
    // The buffer is rebuilt on every Open, so hand rows off instead of
    // copying them a second time.
    *row = std::move(rows_[pos_++]);
    return true;
  }

  StatusOr<bool> NextBatch(ExecContext*, RowBatch* batch) override {
    batch->Clear();
    while (pos_ < rows_.size() && !batch->full()) {
      batch->PushRef(&rows_[pos_++]);
    }
    return batch->size() > 0;
  }

  void Close() override { rows_.clear(); }

  int64_t MemoryBytes() const override { return RowsBytes(rows_); }

 private:
  const PhysSort& op_;
  std::unique_ptr<ExecNode> child_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// Limit stays row-at-a-time on purpose: pulling whole batches from the child
// would overshoot the limit (the child does work for rows that are then
// discarded) and change cost/profile actuals relative to the demand-driven
// contract. The inherited NextBatch adapter batches its output for parents.
class LimitExec : public ExecNode {
 public:
  LimitExec(const PhysLimit& op, std::unique_ptr<ExecNode> child)
      : op_(op), child_(std::move(child)) {}

  Status Open(ExecContext* ctx) override {
    emitted_ = 0;
    return child_->Open(ctx);
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    if (emitted_ >= op_.limit) return false;
    MT_ASSIGN_OR_RETURN(bool more, child_->Next(ctx, row));
    if (!more) return false;
    ++emitted_;
    return true;
  }

  void Close() override { child_->Close(); }

 private:
  const PhysLimit& op_;
  std::unique_ptr<ExecNode> child_;
  int64_t emitted_ = 0;
};

// Order-preserving duplicate elimination.
class DistinctExec : public ExecNode {
 public:
  explicit DistinctExec(std::unique_ptr<ExecNode> child)
      : child_(std::move(child)) {}

  Status Open(ExecContext* ctx) override {
    seen_.clear();
    return child_->Open(ctx);
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    while (true) {
      MT_ASSIGN_OR_RETURN(bool more, child_->Next(ctx, row));
      if (!more) return false;
      ctx->Charge(CostModel::kDistinctRowCost);
      if (seen_.insert(*row).second) return true;
    }
  }

  StatusOr<bool> NextBatch(ExecContext* ctx, RowBatch* batch) override {
    batch->Clear();
    while (batch->size() == 0) {
      MT_ASSIGN_OR_RETURN(bool more, child_->NextBatch(ctx, &input_));
      if (!more) return false;
      ctx->Charge(CostModel::kDistinctRowCost *
                  static_cast<double>(input_.size()));
      for (const Row* r : input_.rows) {
        auto [it, inserted] = seen_.insert(*r);
        // unordered_set nodes are stable: the reference outlives rehashes
        // and later inserts, so first-seen rows pass through by pointer.
        if (inserted) batch->PushRef(&*it);
      }
    }
    return true;
  }

  void Close() override {
    child_->Close();
    seen_.clear();
    input_.Clear();
  }

  int64_t MemoryBytes() const override {
    double bytes = 0;
    for (const Row& r : seen_) bytes += RowSizeBytes(r);
    return static_cast<int64_t>(bytes);
  }

 private:
  std::unique_ptr<ExecNode> child_;
  std::unordered_set<Row, RowHasher, RowEq> seen_;
  RowBatch input_;
};

class UnionAllExec : public ExecNode {
 public:
  explicit UnionAllExec(std::vector<std::unique_ptr<ExecNode>> children)
      : children_(std::move(children)) {}

  Status Open(ExecContext* ctx) override {
    current_ = 0;
    opened_ = false;
    // Children are opened lazily so startup predicates can skip branches
    // without paying their Open cost... except FilterExec handles that
    // itself, so eager open per-branch as we reach it is fine.
    (void)ctx;
    return Status::Ok();
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    while (current_ < children_.size()) {
      if (!opened_) {
        MT_RETURN_IF_ERROR(children_[current_]->Open(ctx));
        opened_ = true;
      }
      MT_ASSIGN_OR_RETURN(bool more, children_[current_]->Next(ctx, row));
      if (more) return true;
      children_[current_]->Close();
      ++current_;
      opened_ = false;
    }
    return false;
  }

  StatusOr<bool> NextBatch(ExecContext* ctx, RowBatch* batch) override {
    batch->Clear();
    while (current_ < children_.size()) {
      if (!opened_) {
        MT_RETURN_IF_ERROR(children_[current_]->Open(ctx));
        opened_ = true;
      }
      MT_ASSIGN_OR_RETURN(bool more,
                          children_[current_]->NextBatch(ctx, batch));
      if (more) return true;  // batch borrows the (still-open) child's rows
      children_[current_]->Close();
      ++current_;
      opened_ = false;
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<ExecNode>> children_;
  size_t current_ = 0;
  bool opened_ = false;
};

class RemoteQueryExec : public ExecNode {
 public:
  explicit RemoteQueryExec(const PhysRemoteQuery& op) : op_(op) {}

  Status Open(ExecContext* ctx) override {
    if (ctx->remote == nullptr) {
      return Status::Internal("no linked-server registry for remote query");
    }
    ParamMap params = ctx->params != nullptr ? *ctx->params : ParamMap{};
    MT_ASSIGN_OR_RETURN(
        QueryResult result,
        ctx->remote->ExecuteRemote(op_.server, op_.sql, params, ctx->stats));
    rows_ = std::move(result.rows);
    // Receiving the transferred rows is local work (DataTransfer cost).
    double bytes = 0;
    for (const Row& r : rows_) bytes += RowSizeBytes(r);
    if (ctx->stats != nullptr) {
      ctx->stats->rows_transferred += static_cast<int64_t>(rows_.size());
      ctx->stats->bytes_transferred += bytes;
      ctx->stats->local_cost +=
          CostModel::kTransferStartup + bytes * CostModel::kTransferByteCost;
      ++ctx->stats->remote_queries;
    }
    pos_ = 0;
    return Status::Ok();
  }

  StatusOr<bool> Next(ExecContext*, Row* row) override {
    if (pos_ >= rows_.size()) return false;
    // Re-fetched on every Open; hand rows off instead of copying.
    *row = std::move(rows_[pos_++]);
    return true;
  }

  StatusOr<bool> NextBatch(ExecContext*, RowBatch* batch) override {
    batch->Clear();
    while (pos_ < rows_.size() && !batch->full()) {
      batch->PushRef(&rows_[pos_++]);
    }
    return batch->size() > 0;
  }

  void Close() override { rows_.clear(); }

  int64_t MemoryBytes() const override { return RowsBytes(rows_); }

 private:
  const PhysRemoteQuery& op_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// Timing/counting decorator around any ExecNode, writing into its mirrored
// OperatorProfile node. Timings are recursive (a parent's Next time includes
// its children's); EXPLAIN ANALYZE renders them as-is, like SQL Server's
// actual execution plans. Memory is sampled after Open (materialize-at-Open
// operators peak there) and before Close (operators that accumulate during
// Next, e.g. Distinct), which brackets every operator's high-water mark
// without per-row O(n) walks.
class ProfiledNode : public ExecNode {
 public:
  ProfiledNode(std::unique_ptr<ExecNode> inner, OperatorProfile* prof)
      : inner_(std::move(inner)), prof_(prof) {}

  Status Open(ExecContext* ctx) override {
    ++prof_->opens;
    auto t0 = std::chrono::steady_clock::now();
    Status s = inner_->Open(ctx);
    prof_->open_seconds += Elapsed(t0);
    SampleMemory();
    return s;
  }

  StatusOr<bool> Next(ExecContext* ctx, Row* row) override {
    ++prof_->next_calls;
    auto t0 = std::chrono::steady_clock::now();
    StatusOr<bool> more = inner_->Next(ctx, row);
    prof_->next_seconds += Elapsed(t0);
    if (more.ok() && more.value()) ++prof_->actual_rows;
    return more;
  }

  // actual_rows stays an exact output-row count under either drive mode;
  // next_calls counts NextBatch invocations on the batch path.
  StatusOr<bool> NextBatch(ExecContext* ctx, RowBatch* batch) override {
    ++prof_->next_calls;
    auto t0 = std::chrono::steady_clock::now();
    StatusOr<bool> more = inner_->NextBatch(ctx, batch);
    prof_->next_seconds += Elapsed(t0);
    if (more.ok() && more.value()) prof_->actual_rows += batch->size();
    return more;
  }

  void Close() override {
    SampleMemory();
    auto t0 = std::chrono::steady_clock::now();
    inner_->Close();
    prof_->close_seconds += Elapsed(t0);
  }

  int64_t MemoryBytes() const override { return inner_->MemoryBytes(); }

 private:
  static double Elapsed(std::chrono::steady_clock::time_point t0) {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }
  void SampleMemory() {
    int64_t bytes = inner_->MemoryBytes();
    if (bytes > prof_->mem_peak_bytes) prof_->mem_peak_bytes = bytes;
  }

  std::unique_ptr<ExecNode> inner_;
  OperatorProfile* prof_;
};

// Shared builder: compiles children first (wrapped when profiling), then the
// node itself. `profile` mirrors `plan` (same shape) or is null.
StatusOr<std::unique_ptr<ExecNode>> BuildNode(const PhysicalOp& plan,
                                              OperatorProfile* profile) {
  std::vector<std::unique_ptr<ExecNode>> children;
  for (size_t i = 0; i < plan.children.size(); ++i) {
    OperatorProfile* child_prof =
        profile != nullptr ? &profile->children[i] : nullptr;
    MT_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> node,
                        BuildNode(*plan.children[i], child_prof));
    children.push_back(std::move(node));
  }
  std::unique_ptr<ExecNode> node;
  switch (plan.kind) {
    case PhysicalKind::kDualScan:
      node = std::make_unique<DualScanExec>();
      break;
    case PhysicalKind::kSeqScan:
      node = std::make_unique<SeqScanExec>(
          static_cast<const PhysSeqScan&>(plan));
      break;
    case PhysicalKind::kIndexSeek:
      node = std::make_unique<IndexSeekExec>(
          static_cast<const PhysIndexSeek&>(plan));
      break;
    case PhysicalKind::kFilter:
      node = std::make_unique<FilterExec>(static_cast<const PhysFilter&>(plan),
                                          std::move(children[0]));
      break;
    case PhysicalKind::kProject:
      node = std::make_unique<ProjectExec>(
          static_cast<const PhysProject&>(plan), std::move(children[0]));
      break;
    case PhysicalKind::kNLJoin:
      node = std::make_unique<NLJoinExec>(static_cast<const PhysNLJoin&>(plan),
                                          std::move(children[0]),
                                          std::move(children[1]));
      break;
    case PhysicalKind::kIndexNLJoin:
      node = std::make_unique<IndexNLJoinExec>(
          static_cast<const PhysIndexNLJoin&>(plan), std::move(children[0]));
      break;
    case PhysicalKind::kHashJoin:
      node = std::make_unique<HashJoinExec>(
          static_cast<const PhysHashJoin&>(plan), std::move(children[0]),
          std::move(children[1]));
      break;
    case PhysicalKind::kHashAggregate:
      node = std::make_unique<HashAggregateExec>(
          static_cast<const PhysHashAggregate&>(plan), std::move(children[0]));
      break;
    case PhysicalKind::kSort:
      node = std::make_unique<SortExec>(static_cast<const PhysSort&>(plan),
                                        std::move(children[0]));
      break;
    case PhysicalKind::kLimit:
      node = std::make_unique<LimitExec>(static_cast<const PhysLimit&>(plan),
                                         std::move(children[0]));
      break;
    case PhysicalKind::kDistinct:
      node = std::make_unique<DistinctExec>(std::move(children[0]));
      break;
    case PhysicalKind::kUnionAll:
      node = std::make_unique<UnionAllExec>(std::move(children));
      break;
    case PhysicalKind::kRemoteQuery:
      node = std::make_unique<RemoteQueryExec>(
          static_cast<const PhysRemoteQuery&>(plan));
      break;
  }
  if (node == nullptr) return Status::Internal("unhandled physical operator");
  if (profile != nullptr) {
    node = std::make_unique<ProfiledNode>(std::move(node), profile);
  }
  return node;
}

}  // namespace

OperatorProfile MakeProfileTree(const PhysicalOp& plan) {
  OperatorProfile prof;
  prof.op_name = PhysicalOpLabel(plan);
  prof.est_rows = plan.est_rows;
  prof.est_cost = plan.est_cost;
  prof.children.reserve(plan.children.size());
  for (const auto& child : plan.children) {
    prof.children.push_back(MakeProfileTree(*child));
  }
  return prof;
}

StatusOr<std::unique_ptr<ExecNode>> BuildExecutor(const PhysicalOp& plan) {
  return BuildNode(plan, nullptr);
}

StatusOr<std::unique_ptr<ExecNode>> BuildProfiledExecutor(
    const PhysicalOp& plan, OperatorProfile* profile) {
  return BuildNode(plan, profile);
}

StatusOr<QueryResult> ExecutePlan(const PhysicalOp& plan, ExecContext* ctx,
                                  OperatorProfile* profile) {
  MT_ASSIGN_OR_RETURN(std::unique_ptr<ExecNode> root,
                      BuildNode(plan, profile));
  MT_RETURN_IF_ERROR(root->Open(ctx));
  QueryResult result;
  result.schema = plan.schema;
  if (ctx->use_batch) {
    RowBatch batch;
    while (true) {
      MT_ASSIGN_OR_RETURN(bool more, root->NextBatch(ctx, &batch));
      if (!more) break;
      for (const Row* row : batch.rows) result.rows.push_back(*row);
    }
  } else {
    Row row;
    while (true) {
      MT_ASSIGN_OR_RETURN(bool more, root->Next(ctx, &row));
      if (!more) break;
      result.rows.push_back(row);
    }
  }
  root->Close();
  return result;
}

}  // namespace mtcache
