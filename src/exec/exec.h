#ifndef MTCACHE_EXEC_EXEC_H_
#define MTCACHE_EXEC_EXEC_H_

#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/atomics.h"
#include "common/status.h"
#include "expr/bound_expr.h"
#include "opt/physical.h"
#include "storage/table.h"

namespace mtcache {

/// A query's result rows (or affected-row count for DML).
struct QueryResult {
  Schema schema;
  std::vector<Row> rows;
  int64_t rows_affected = 0;
};

/// Measured work, in the same cost units as the optimizer's estimates.
/// `local_cost` is work done by the executing server; `remote_cost` is work
/// the call pushed onto other servers (the backend). The multi-server
/// simulation converts these into CPU service demand.
struct ExecStats {
  double local_cost = 0;
  double remote_cost = 0;
  double bytes_transferred = 0;
  int64_t rows_transferred = 0;
  int64_t remote_queries = 0;

  void Add(const ExecStats& other) {
    local_cost += other.local_cost;
    remote_cost += other.remote_cost;
    bytes_transferred += other.bytes_transferred;
    rows_transferred += other.rows_transferred;
    remote_queries += other.remote_queries;
  }
};

/// Supplies stored tables to scans. Implemented by engine::Database.
class StorageProvider {
 public:
  virtual ~StorageProvider() = default;
  virtual StoredTable* GetStoredTable(const std::string& name) = 0;
};

/// Row filter pushed into virtual-table materialization: returns true iff
/// the candidate row should be included. Evaluated against the DMV's output
/// schema while its rows are being rendered, so a selective predicate (e.g.
/// WHERE query_id = ?) stops non-matching registry entries from ever being
/// accumulated or copied. A null function means no pushdown.
using VirtualRowFilter = std::function<StatusOr<bool>(const Row&)>;

/// Materializes rows for virtual tables (TableDef::virtual_table, the
/// sys.dm_* DMVs). Implemented by engine::Server, which renders its
/// MetricsRegistry at scan-open time.
class VirtualTableProvider {
 public:
  virtual ~VirtualTableProvider() = default;
  virtual StatusOr<std::vector<Row>> VirtualTableRows(
      const std::string& name, const VirtualRowFilter& filter) = 0;
};

/// Runtime counters for dynamic-plan branch selection, bumped by FilterExec
/// when a startup guard is evaluated. The engine points ExecContext at the
/// copy inside its MetricsRegistry; relaxed atomics, since every session's
/// executor bumps the same instance.
struct ChoosePlanRuntimeStats {
  RelaxedInt64 guards_evaluated = 0;  // startup predicates evaluated at Open
  RelaxedInt64 local_branches = 0;    // guard passed, branch runs locally
  RelaxedInt64 remote_branches = 0;   // guard passed, branch ships RemoteQuery
};

/// Executes shipped SQL on a linked server. Implemented by engine::Server.
/// Implementations must charge the callee's work to `stats->remote_cost` and
/// account the returned volume in bytes/rows_transferred.
class RemoteExecutor {
 public:
  virtual ~RemoteExecutor() = default;
  virtual StatusOr<QueryResult> ExecuteRemote(const std::string& server,
                                              const std::string& sql,
                                              const ParamMap& params,
                                              ExecStats* stats) = 0;
};

struct ExecContext {
  const ParamMap* params = nullptr;
  double now = 0;  // GETDATE() on the simulated clock
  StorageProvider* storage = nullptr;
  RemoteExecutor* remote = nullptr;
  ExecStats* stats = nullptr;
  VirtualTableProvider* virtual_tables = nullptr;
  ChoosePlanRuntimeStats* branch_stats = nullptr;  // may be null
  /// Batch-at-a-time execution (NextBatch) vs the row-at-a-time Volcano
  /// path. The row path is kept fully functional as the differential-test
  /// oracle and for embedders that drive Next directly.
  bool use_batch = true;

  void Charge(double cost) const {
    if (stats != nullptr) stats->local_cost += cost;
  }
  EvalContext Eval() const {
    EvalContext ctx;
    ctx.params = params;
    ctx.current_time = now;
    return ctx;
  }
};

/// A batch of rows flowing between operators on the NextBatch path. Rows are
/// exposed as `const Row*`: an operator that merely passes stored or
/// child-owned rows along pushes pointers (PushRef, copy-free), while an
/// operator that creates rows (projection, aggregation) parks them in the
/// batch-owned `arena` (PushOwned — a deque, so earlier pointers stay stable
/// as rows are appended). Pointers in `rows` are valid until the next
/// NextBatch/Close call on the node that produced the batch.
struct RowBatch {
  static constexpr int kMaxRows = 1024;

  std::vector<const Row*> rows;
  std::deque<Row> arena;

  void Clear() {
    rows.clear();
    arena.clear();
  }
  int64_t size() const { return static_cast<int64_t>(rows.size()); }
  bool full() const { return rows.size() >= static_cast<size_t>(kMaxRows); }
  void PushRef(const Row* row) { rows.push_back(row); }
  void PushOwned(Row row) {
    arena.push_back(std::move(row));
    rows.push_back(&arena.back());
  }
};

/// Volcano-style iterator. Open may be called again after Close (nested
/// loops rescan their inner input).
class ExecNode {
 public:
  virtual ~ExecNode() = default;
  virtual Status Open(ExecContext* ctx) = 0;
  /// Returns true and fills *row, or false at end of stream.
  virtual StatusOr<bool> Next(ExecContext* ctx, Row* row) = 0;
  /// Batch-at-a-time variant: clears *batch, fills it with up to
  /// RowBatch::kMaxRows rows, and returns true iff at least one row was
  /// produced (short, non-empty batches are allowed mid-stream). Row pointers
  /// remain valid until the next NextBatch/Close on this node. The default
  /// adapts row-at-a-time Next, so every operator works under either drive
  /// mode; hot operators override with a native batch implementation.
  virtual StatusOr<bool> NextBatch(ExecContext* ctx, RowBatch* batch) {
    batch->Clear();
    Row row;
    while (!batch->full()) {
      auto more = Next(ctx, &row);
      if (!more.ok()) return more.status();
      if (!more.value()) break;
      batch->PushOwned(std::move(row));
    }
    return batch->size() > 0;
  }
  virtual void Close() {}
  /// Current bytes held in operator-private materializations (hash tables,
  /// sort buffers, scan snapshots). Sampled by the profiler after Open and
  /// before Close to compute a memory high-water mark; 0 for streaming ops.
  virtual int64_t MemoryBytes() const { return 0; }
};

/// Per-operator actuals for one query execution (EXPLAIN ANALYZE /
/// SET STATISTICS PROFILE). The tree mirrors the physical plan exactly and
/// is built up front by MakeProfileTree, so node addresses stay stable while
/// the wrapped executor writes into them. Plain fields: each execution owns
/// its private tree; snapshots are taken after the query completes.
struct OperatorProfile {
  std::string op_name;  // PhysicalOpLabel of the mirrored plan node
  double est_rows = 0;
  double est_cost = 0;
  int64_t actual_rows = 0;  // rows emitted by Next
  int64_t opens = 0;        // Open calls (inner of a rescanning join > 1)
  int64_t next_calls = 0;
  double open_seconds = 0;   // real time inside Open (recursive)
  double next_seconds = 0;   // real time inside Next (recursive)
  double close_seconds = 0;  // real time inside Close (recursive)
  int64_t mem_peak_bytes = 0;
  std::vector<OperatorProfile> children;
};

/// Builds an empty profile tree mirroring `plan` (labels + estimates filled,
/// actuals zero). Pass its root to BuildProfiledExecutor/ExecutePlan.
OperatorProfile MakeProfileTree(const PhysicalOp& plan);

/// Compiles a physical plan into an executor tree.
StatusOr<std::unique_ptr<ExecNode>> BuildExecutor(const PhysicalOp& plan);

/// As BuildExecutor, but wraps every operator in a timing/counting decorator
/// writing into the matching OperatorProfile node. `profile` must outlive the
/// returned executor and must come from MakeProfileTree(plan).
StatusOr<std::unique_ptr<ExecNode>> BuildProfiledExecutor(
    const PhysicalOp& plan, OperatorProfile* profile);

/// Convenience: build, open, drain, close. When `profile` is non-null the
/// executor tree is profiled (per-operator actuals land in the tree).
StatusOr<QueryResult> ExecutePlan(const PhysicalOp& plan, ExecContext* ctx,
                                  OperatorProfile* profile = nullptr);

}  // namespace mtcache

#endif  // MTCACHE_EXEC_EXEC_H_
