#include "sql/lexer.h"

#include <cctype>

#include "common/string_util.h"

namespace mtcache {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.type = TokenType::kIdent;
      tok.text = ToLower(sql.substr(start, i - start));
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '@') {
      size_t start = i;
      ++i;
      if (i >= n || !IsIdentStart(sql[i])) {
        return Status::InvalidArgument("lone '@' at offset " +
                                       std::to_string(start));
      }
      while (i < n && IsIdentChar(sql[i])) ++i;
      tok.type = TokenType::kParam;
      tok.text = ToLower(sql.substr(start, i - start));  // includes '@'
      tokens.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      bool is_float = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      if (i < n && sql[i] == '.' && i + 1 < n &&
          std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        is_float = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
      }
      // Scientific notation: [eE][+-]?digits. Only consumed when a digit
      // actually follows, so `1e` stays (int, ident) as before.
      if (i < n && (sql[i] == 'e' || sql[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (sql[exp] == '+' || sql[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(sql[exp]))) {
          is_float = true;
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        }
      }
      std::string text = sql.substr(start, i - start);
      if (is_float) {
        tok.type = TokenType::kFloat;
        tok.float_val = std::stod(text);
      } else {
        tok.type = TokenType::kInt;
        tok.int_val = std::stoll(text);
      }
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {  // escaped quote
            text.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text.push_back(sql[i]);
        ++i;
      }
      if (!closed) {
        return Status::InvalidArgument("unterminated string literal");
      }
      tok.type = TokenType::kString;
      tok.text = std::move(text);
      tokens.push_back(std::move(tok));
      continue;
    }
    // Multi-char operators.
    auto emit = [&](const std::string& sym, size_t len) {
      tok.type = TokenType::kSymbol;
      tok.text = sym;
      tokens.push_back(tok);
      i += len;
    };
    if (c == '<') {
      if (i + 1 < n && sql[i + 1] == '=') {
        emit("<=", 2);
      } else if (i + 1 < n && sql[i + 1] == '>') {
        emit("<>", 2);
      } else {
        emit("<", 1);
      }
      continue;
    }
    if (c == '>') {
      if (i + 1 < n && sql[i + 1] == '=') {
        emit(">=", 2);
      } else {
        emit(">", 1);
      }
      continue;
    }
    if (c == '!' && i + 1 < n && sql[i + 1] == '=') {
      emit("<>", 2);
      continue;
    }
    static const std::string kSingles = "(),.;=+-*/%";
    if (kSingles.find(c) != std::string::npos) {
      emit(std::string(1, c), 1);
      continue;
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' at offset " + std::to_string(i));
  }
  Token end;
  end.type = TokenType::kEnd;
  end.offset = n;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace mtcache
