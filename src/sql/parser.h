#ifndef MTCACHE_SQL_PARSER_H_
#define MTCACHE_SQL_PARSER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/lexer.h"

namespace mtcache {

/// Recursive-descent parser for the engine's T-SQL-like dialect.
///
/// Supported statements: SELECT (DISTINCT, TOP, joins incl. LEFT OUTER,
/// derived tables, GROUP BY/HAVING/ORDER BY, CASE, UNION ALL, scalar
/// assignment `SELECT @v = expr`, WITH MAXSTALENESS), INSERT (VALUES and
/// INSERT..SELECT), UPDATE, DELETE, CREATE TABLE / INDEX / [CACHED]
/// MATERIALIZED VIEW / PROCEDURE, DROP, GRANT/REVOKE, EXPLAIN [ANALYZE]
/// (SELECT/INSERT/UPDATE/DELETE; ANALYZE only on SELECT), EXEC, DECLARE,
/// SET @var / SET STATISTICS PROFILE ON|OFF, IF/ELSE, WHILE, RETURN,
/// BEGIN TRANSACTION / COMMIT / ROLLBACK.
class Parser {
 public:
  explicit Parser(std::string sql) : sql_(std::move(sql)) {}

  /// Parses the whole input as a ';'-separated statement list.
  StatusOr<std::vector<StmtPtr>> ParseScript();

  /// Parses exactly one statement (trailing ';' allowed).
  StatusOr<StmtPtr> ParseSingleStatement();

 private:
  // -- token stream helpers --
  const Token& Peek(int ahead = 0) const;
  void Advance() { ++pos_; }
  bool CheckIdent(const char* kw) const;
  bool MatchIdent(const char* kw);
  bool CheckSymbol(const char* sym) const;
  bool MatchSymbol(const char* sym);
  Status ExpectIdent(const char* kw);
  Status ExpectSymbol(const char* sym);
  StatusOr<std::string> ExpectName(const char* what);
  Status ErrorHere(const std::string& message) const;

  // -- statements --
  StatusOr<StmtPtr> ParseStatement();
  StatusOr<std::unique_ptr<SelectStmt>> ParseSelect();
  StatusOr<StmtPtr> ParseInsert();
  StatusOr<StmtPtr> ParseUpdate();
  StatusOr<StmtPtr> ParseDelete();
  StatusOr<StmtPtr> ParseCreate();
  StatusOr<StmtPtr> ParseCreateTable();
  StatusOr<StmtPtr> ParseCreateIndex(bool unique);
  StatusOr<StmtPtr> ParseCreateView(bool cached);
  StatusOr<StmtPtr> ParseCreateProcedure();
  StatusOr<StmtPtr> ParseDrop();
  StatusOr<StmtPtr> ParseGrant();
  StatusOr<StmtPtr> ParseExec();
  StatusOr<StmtPtr> ParseDeclare();
  StatusOr<StmtPtr> ParseSet();
  StatusOr<StmtPtr> ParseIf();
  StatusOr<std::vector<StmtPtr>> ParseBlockOrSingle();

  StatusOr<TableRef> ParseTableRef();
  StatusOr<TypeId> ParseType();

  // -- expressions (precedence climbing) --
  StatusOr<ExprPtr> ParseExpr();       // OR
  StatusOr<ExprPtr> ParseAndExpr();
  StatusOr<ExprPtr> ParseNotExpr();
  StatusOr<ExprPtr> ParsePredicate();  // comparisons, LIKE, IN, BETWEEN, IS
  StatusOr<ExprPtr> ParseAdditive();
  StatusOr<ExprPtr> ParseMultiplicative();
  StatusOr<ExprPtr> ParseUnaryExpr();
  StatusOr<ExprPtr> ParsePrimary();

  std::string sql_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

/// Convenience wrappers.
StatusOr<StmtPtr> ParseSql(const std::string& sql);
StatusOr<std::vector<StmtPtr>> ParseSqlScript(const std::string& sql);

}  // namespace mtcache

#endif  // MTCACHE_SQL_PARSER_H_
