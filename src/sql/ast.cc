#include "sql/ast.h"

namespace mtcache {

namespace {

const char* BinaryOpSymbol(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kMod: return "%";
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

const char* AggFuncName(AggFunc f) {
  switch (f) {
    case AggFunc::kCountStar:
    case AggFunc::kCount: return "COUNT";
    case AggFunc::kSum: return "SUM";
    case AggFunc::kAvg: return "AVG";
    case AggFunc::kMin: return "MIN";
    case AggFunc::kMax: return "MAX";
  }
  return "?";
}

}  // namespace

ExprPtr CloneExpr(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral: {
      const auto& e = static_cast<const LiteralExpr&>(expr);
      return std::make_unique<LiteralExpr>(e.value);
    }
    case ExprKind::kColumnRef: {
      const auto& e = static_cast<const ColumnRefExpr&>(expr);
      return std::make_unique<ColumnRefExpr>(e.table, e.column);
    }
    case ExprKind::kParam: {
      const auto& e = static_cast<const ParamExpr&>(expr);
      return std::make_unique<ParamExpr>(e.name);
    }
    case ExprKind::kUnary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      return std::make_unique<UnaryExpr>(e.op, CloneExpr(*e.operand));
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      return std::make_unique<BinaryExpr>(e.op, CloneExpr(*e.left),
                                          CloneExpr(*e.right));
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      return std::make_unique<LikeExpr>(CloneExpr(*e.input),
                                        CloneExpr(*e.pattern), e.negated);
    }
    case ExprKind::kIn: {
      const auto& e = static_cast<const InExpr&>(expr);
      std::vector<ExprPtr> list;
      for (const auto& item : e.list) list.push_back(CloneExpr(*item));
      return std::make_unique<InExpr>(CloneExpr(*e.input), std::move(list),
                                      e.negated);
    }
    case ExprKind::kBetween: {
      const auto& e = static_cast<const BetweenExpr&>(expr);
      return std::make_unique<BetweenExpr>(
          CloneExpr(*e.input), CloneExpr(*e.lo), CloneExpr(*e.hi));
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      return std::make_unique<IsNullExpr>(CloneExpr(*e.input), e.negated);
    }
    case ExprKind::kFunction: {
      const auto& e = static_cast<const FunctionExpr&>(expr);
      std::vector<ExprPtr> args;
      for (const auto& a : e.args) args.push_back(CloneExpr(*a));
      return std::make_unique<FunctionExpr>(e.name, std::move(args));
    }
    case ExprKind::kAggregate: {
      const auto& e = static_cast<const AggregateExpr&>(expr);
      return std::make_unique<AggregateExpr>(
          e.func, e.arg ? CloneExpr(*e.arg) : nullptr);
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(expr);
      auto copy = std::make_unique<CaseExpr>();
      copy->operand = e.operand ? CloneExpr(*e.operand) : nullptr;
      for (const auto& [when, then] : e.branches) {
        copy->branches.emplace_back(CloneExpr(*when), CloneExpr(*then));
      }
      copy->else_expr = e.else_expr ? CloneExpr(*e.else_expr) : nullptr;
      return copy;
    }
  }
  return nullptr;
}

std::string ExprToSql(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return static_cast<const LiteralExpr&>(expr).value.ToSqlLiteral();
    case ExprKind::kColumnRef: {
      const auto& e = static_cast<const ColumnRefExpr&>(expr);
      return e.table.empty() ? e.column : e.table + "." + e.column;
    }
    case ExprKind::kParam:
      return static_cast<const ParamExpr&>(expr).name;
    case ExprKind::kUnary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      if (e.op == UnaryOp::kNot) return "NOT (" + ExprToSql(*e.operand) + ")";
      return "-(" + ExprToSql(*e.operand) + ")";
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      return "(" + ExprToSql(*e.left) + " " + BinaryOpSymbol(e.op) + " " +
             ExprToSql(*e.right) + ")";
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      return "(" + ExprToSql(*e.input) + (e.negated ? " NOT LIKE " : " LIKE ") +
             ExprToSql(*e.pattern) + ")";
    }
    case ExprKind::kIn: {
      const auto& e = static_cast<const InExpr&>(expr);
      std::string out = "(" + ExprToSql(*e.input) +
                        (e.negated ? " NOT IN (" : " IN (");
      for (size_t i = 0; i < e.list.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToSql(*e.list[i]);
      }
      out += "))";
      return out;
    }
    case ExprKind::kBetween: {
      const auto& e = static_cast<const BetweenExpr&>(expr);
      return "(" + ExprToSql(*e.input) + " BETWEEN " + ExprToSql(*e.lo) +
             " AND " + ExprToSql(*e.hi) + ")";
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      return "(" + ExprToSql(*e.input) +
             (e.negated ? " IS NOT NULL)" : " IS NULL)");
    }
    case ExprKind::kFunction: {
      const auto& e = static_cast<const FunctionExpr&>(expr);
      std::string out = e.name + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprToSql(*e.args[i]);
      }
      out += ")";
      return out;
    }
    case ExprKind::kAggregate: {
      const auto& e = static_cast<const AggregateExpr&>(expr);
      std::string out = AggFuncName(e.func);
      out += "(";
      out += e.func == AggFunc::kCountStar ? "*" : ExprToSql(*e.arg);
      out += ")";
      return out;
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(expr);
      std::string out = "CASE";
      if (e.operand != nullptr) out += " " + ExprToSql(*e.operand);
      for (const auto& [when, then] : e.branches) {
        out += " WHEN " + ExprToSql(*when) + " THEN " + ExprToSql(*then);
      }
      if (e.else_expr != nullptr) out += " ELSE " + ExprToSql(*e.else_expr);
      out += " END";
      return out;
    }
  }
  return "?";
}

std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& stmt) {
  auto out = std::make_unique<SelectStmt>();
  out->distinct = stmt.distinct;
  out->top = stmt.top;
  out->max_staleness = stmt.max_staleness;
  for (const SelectItem& item : stmt.items) {
    SelectItem copy;
    copy.expr = item.expr ? CloneExpr(*item.expr) : nullptr;
    copy.alias = item.alias;
    copy.star = item.star;
    copy.star_qualifier = item.star_qualifier;
    out->items.push_back(std::move(copy));
  }
  out->into_vars = stmt.into_vars;
  for (const TableRef& ref : stmt.from) {
    TableRef copy;
    copy.server = ref.server;
    copy.name = ref.name;
    copy.alias = ref.alias;
    if (ref.derived) copy.derived = CloneSelect(*ref.derived);
    out->from.push_back(std::move(copy));
  }
  for (const JoinClause& join : stmt.joins) {
    JoinClause copy;
    copy.kind = join.kind;
    copy.table.server = join.table.server;
    copy.table.name = join.table.name;
    copy.table.alias = join.table.alias;
    if (join.table.derived) copy.table.derived = CloneSelect(*join.table.derived);
    copy.on = join.on ? CloneExpr(*join.on) : nullptr;
    out->joins.push_back(std::move(copy));
  }
  out->where = stmt.where ? CloneExpr(*stmt.where) : nullptr;
  for (const auto& g : stmt.group_by) out->group_by.push_back(CloneExpr(*g));
  out->having = stmt.having ? CloneExpr(*stmt.having) : nullptr;
  for (const auto& o : stmt.order_by) {
    OrderByItem copy;
    copy.expr = CloneExpr(*o.expr);
    copy.desc = o.desc;
    out->order_by.push_back(std::move(copy));
  }
  if (stmt.union_next != nullptr) {
    out->union_next = CloneSelect(*stmt.union_next);
  }
  return out;
}

}  // namespace mtcache
