#ifndef MTCACHE_SQL_AST_H_
#define MTCACHE_SQL_AST_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "types/value.h"

namespace mtcache {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kParam,
  kUnary,
  kBinary,
  kLike,
  kIn,
  kBetween,
  kIsNull,
  kFunction,
  kAggregate,
  kCase,
};

/// Unbound expression node. Dispatch is by `kind` + static_cast (the style
/// guide discourages RTTI; kind tags are the usual database-engine idiom).
struct Expr {
  explicit Expr(ExprKind k) : kind(k) {}
  virtual ~Expr() = default;
  const ExprKind kind;
};

using ExprPtr = std::unique_ptr<Expr>;

struct LiteralExpr : Expr {
  explicit LiteralExpr(Value v) : Expr(ExprKind::kLiteral), value(std::move(v)) {}
  Value value;
};

struct ColumnRefExpr : Expr {
  ColumnRefExpr(std::string t, std::string c)
      : Expr(ExprKind::kColumnRef), table(std::move(t)), column(std::move(c)) {}
  std::string table;   // optional qualifier (lower-cased), may be empty
  std::string column;  // lower-cased
};

/// Run-time parameter or procedure-local variable; name includes '@'.
struct ParamExpr : Expr {
  explicit ParamExpr(std::string n) : Expr(ExprKind::kParam), name(std::move(n)) {}
  std::string name;
};

enum class UnaryOp { kNot, kNeg };

struct UnaryExpr : Expr {
  UnaryExpr(UnaryOp o, ExprPtr e)
      : Expr(ExprKind::kUnary), op(o), operand(std::move(e)) {}
  UnaryOp op;
  ExprPtr operand;
};

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNe, kLt, kLe, kGt, kGe,
  kAnd, kOr,
};

struct BinaryExpr : Expr {
  BinaryExpr(BinaryOp o, ExprPtr l, ExprPtr r)
      : Expr(ExprKind::kBinary), op(o), left(std::move(l)), right(std::move(r)) {}
  BinaryOp op;
  ExprPtr left;
  ExprPtr right;
};

struct LikeExpr : Expr {
  LikeExpr(ExprPtr in, ExprPtr pat, bool neg)
      : Expr(ExprKind::kLike), input(std::move(in)), pattern(std::move(pat)),
        negated(neg) {}
  ExprPtr input;
  ExprPtr pattern;
  bool negated;
};

struct InExpr : Expr {
  InExpr(ExprPtr in, std::vector<ExprPtr> l, bool neg)
      : Expr(ExprKind::kIn), input(std::move(in)), list(std::move(l)),
        negated(neg) {}
  ExprPtr input;
  std::vector<ExprPtr> list;
  bool negated;
};

struct BetweenExpr : Expr {
  BetweenExpr(ExprPtr in, ExprPtr l, ExprPtr h)
      : Expr(ExprKind::kBetween), input(std::move(in)), lo(std::move(l)),
        hi(std::move(h)) {}
  ExprPtr input;
  ExprPtr lo;
  ExprPtr hi;
};

struct IsNullExpr : Expr {
  IsNullExpr(ExprPtr in, bool neg)
      : Expr(ExprKind::kIsNull), input(std::move(in)), negated(neg) {}
  ExprPtr input;
  bool negated;
};

/// Scalar function call (GETDATE, ABS, LEN, ...). Names lower-cased.
struct FunctionExpr : Expr {
  FunctionExpr(std::string n, std::vector<ExprPtr> a)
      : Expr(ExprKind::kFunction), name(std::move(n)), args(std::move(a)) {}
  std::string name;
  std::vector<ExprPtr> args;
};

enum class AggFunc { kCountStar, kCount, kSum, kAvg, kMin, kMax };

struct AggregateExpr : Expr {
  AggregateExpr(AggFunc f, ExprPtr a)
      : Expr(ExprKind::kAggregate), func(f), arg(std::move(a)) {}
  AggFunc func;
  ExprPtr arg;  // null for COUNT(*)
};

/// CASE expression: searched (`CASE WHEN cond THEN x ... END`) when
/// `operand` is null, simple (`CASE input WHEN v THEN x ... END`) otherwise.
struct CaseExpr : Expr {
  CaseExpr() : Expr(ExprKind::kCase) {}
  ExprPtr operand;  // may be null
  std::vector<std::pair<ExprPtr, ExprPtr>> branches;  // (when, then)
  ExprPtr else_expr;  // may be null -> NULL
};

/// Deep copy (expressions are trees of unique_ptr).
ExprPtr CloneExpr(const Expr& expr);

/// Renders back to SQL text (used by the remote-subquery unparser and by
/// EXPLAIN-style output).
std::string ExprToSql(const Expr& expr);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StmtKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kCreateIndex,
  kCreateView,
  kCreateProcedure,
  kDrop,
  kGrant,
  kExplain,
  kExec,
  kDeclare,
  kSetVar,
  kSetOption,
  kIf,
  kWhile,
  kReturn,
  kBeginTxn,
  kCommitTxn,
  kRollbackTxn,
};

struct Stmt {
  explicit Stmt(StmtKind k) : kind(k) {}
  virtual ~Stmt() = default;
  const StmtKind kind;
};

using StmtPtr = std::unique_ptr<Stmt>;

struct SelectStmt;

/// An entry in the FROM clause: a base table (optionally linked-server
/// qualified, `server.table`) or a derived table `(SELECT ...) alias`.
struct TableRef {
  std::string server;  // linked-server name; empty = local
  std::string name;    // base table name; empty for derived tables
  std::unique_ptr<SelectStmt> derived;
  std::string alias;   // empty = use `name`
};

enum class JoinKind { kInner, kLeftOuter };

struct JoinClause {
  JoinKind kind = JoinKind::kInner;
  TableRef table;
  ExprPtr on;
};

struct SelectItem {
  ExprPtr expr;        // null when star
  std::string alias;   // output name; empty = derived from expr
  bool star = false;
  std::string star_qualifier;  // t.* ; empty for bare *
};

struct OrderByItem {
  ExprPtr expr;
  bool desc = false;
};

struct SelectStmt : Stmt {
  SelectStmt() : Stmt(StmtKind::kSelect) {}
  bool distinct = false;
  int64_t top = -1;  // TOP n; -1 = none
  std::vector<SelectItem> items;
  /// T-SQL scalar assignment form `SELECT @v = expr, ...`: parallel to
  /// `items`; empty strings for non-assigned items. When any entry is set the
  /// statement assigns instead of returning rows.
  std::vector<std::string> into_vars;
  std::vector<TableRef> from;       // comma-list (implicit cross join)
  std::vector<JoinClause> joins;    // explicit JOIN ... ON, left-deep
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderByItem> order_by;
  /// `WITH MAXSTALENESS n` (seconds): the query accepts results up to n
  /// seconds old, so the optimizer may use cached views no staler than that.
  /// -1 = no requirement (any staleness acceptable — the paper's default).
  /// This implements the SQL extension the paper's §7 calls for.
  double max_staleness = -1;
  /// `... UNION ALL SELECT ...` continuation; arities must match.
  std::unique_ptr<SelectStmt> union_next;
};

struct InsertStmt : Stmt {
  InsertStmt() : Stmt(StmtKind::kInsert) {}
  std::string server;  // linked-server qualifier; empty = local
  std::string table;
  std::vector<std::string> columns;  // empty = all, in schema order
  std::vector<std::vector<ExprPtr>> rows;  // VALUES rows
  std::unique_ptr<SelectStmt> select;      // INSERT ... SELECT form
};

struct UpdateStmt : Stmt {
  UpdateStmt() : Stmt(StmtKind::kUpdate) {}
  std::string server;
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> sets;
  ExprPtr where;
};

struct DeleteStmt : Stmt {
  DeleteStmt() : Stmt(StmtKind::kDelete) {}
  std::string server;
  std::string table;
  ExprPtr where;
};

struct ColumnDefAst {
  std::string name;
  TypeId type = TypeId::kInt64;
  bool not_null = false;
  bool primary_key = false;
};

struct CreateTableStmt : Stmt {
  CreateTableStmt() : Stmt(StmtKind::kCreateTable) {}
  std::string table;
  std::vector<ColumnDefAst> columns;
  std::vector<std::string> primary_key;  // table-level PRIMARY KEY (...)
};

struct CreateIndexStmt : Stmt {
  CreateIndexStmt() : Stmt(StmtKind::kCreateIndex) {}
  std::string index;
  std::string table;
  std::vector<std::string> columns;
  bool unique = false;
};

/// CREATE [CACHED] MATERIALIZED VIEW v AS SELECT <cols> FROM t [WHERE ...].
/// The select is validated (select-project, conjunctive simple predicates)
/// when the statement executes.
struct CreateViewStmt : Stmt {
  CreateViewStmt() : Stmt(StmtKind::kCreateView) {}
  std::string view;
  bool cached = false;
  std::unique_ptr<SelectStmt> select;
};

struct CreateProcedureStmt : Stmt {
  CreateProcedureStmt() : Stmt(StmtKind::kCreateProcedure) {}
  std::string name;
  std::vector<std::pair<std::string, TypeId>> params;
  std::string body_source;  // raw text between BEGIN and matching END
};

enum class DropKind { kTable, kIndex, kView, kProcedure };

/// DROP TABLE t / DROP INDEX i ON t / DROP MATERIALIZED VIEW v /
/// DROP PROCEDURE p.
struct DropStmt : Stmt {
  DropStmt() : Stmt(StmtKind::kDrop) {}
  DropKind what = DropKind::kTable;
  std::string name;
  std::string table;  // for DROP INDEX ... ON table
};

/// GRANT SELECT, INSERT ON t TO user  /  REVOKE ... ON t FROM user.
struct GrantStmt : Stmt {
  GrantStmt() : Stmt(StmtKind::kGrant) {}
  bool grant = true;  // false = REVOKE
  std::vector<std::string> privileges;  // lower-cased keywords
  std::string table;
  std::string user;
};

/// EXPLAIN [ANALYZE] <statement>: returns the optimized physical plan as
/// text. Targets SELECT, INSERT, UPDATE, or DELETE (write-path plans show
/// the access path plus forwarding/maintenance annotations). With ANALYZE
/// the target SELECT is executed and per-operator actuals are reported.
struct ExplainStmt : Stmt {
  ExplainStmt() : Stmt(StmtKind::kExplain) {}
  bool analyze = false;
  StmtPtr target;  // kSelect, kInsert, kUpdate, or kDelete
};

struct ExecStmt : Stmt {
  ExecStmt() : Stmt(StmtKind::kExec) {}
  std::string procedure;
  std::vector<ExprPtr> args;  // positional
};

struct DeclareStmt : Stmt {
  DeclareStmt() : Stmt(StmtKind::kDeclare) {}
  std::string var;  // includes '@'
  TypeId type = TypeId::kInt64;
  ExprPtr init;  // optional
};

struct SetVarStmt : Stmt {
  SetVarStmt() : Stmt(StmtKind::kSetVar) {}
  std::string var;
  ExprPtr value;
};

/// Session option toggle, T-SQL style: `SET STATISTICS PROFILE ON|OFF`.
/// `option` is the lower-cased option name ("statistics profile").
struct SetOptionStmt : Stmt {
  SetOptionStmt() : Stmt(StmtKind::kSetOption) {}
  std::string option;
  bool on = false;
};

struct IfStmt : Stmt {
  IfStmt() : Stmt(StmtKind::kIf) {}
  ExprPtr condition;
  std::vector<StmtPtr> then_branch;
  std::vector<StmtPtr> else_branch;
};

struct WhileStmt : Stmt {
  WhileStmt() : Stmt(StmtKind::kWhile) {}
  ExprPtr condition;
  std::vector<StmtPtr> body;
};

struct ReturnStmt : Stmt {
  ReturnStmt() : Stmt(StmtKind::kReturn) {}
};

struct BeginTxnStmt : Stmt {
  BeginTxnStmt() : Stmt(StmtKind::kBeginTxn) {}
};
struct CommitTxnStmt : Stmt {
  CommitTxnStmt() : Stmt(StmtKind::kCommitTxn) {}
};
struct RollbackTxnStmt : Stmt {
  RollbackTxnStmt() : Stmt(StmtKind::kRollbackTxn) {}
};

/// Deep copy of a SELECT statement (used when a view definition is reused).
std::unique_ptr<SelectStmt> CloneSelect(const SelectStmt& stmt);

}  // namespace mtcache

#endif  // MTCACHE_SQL_AST_H_
