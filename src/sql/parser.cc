#include "sql/parser.h"

#include <set>

#include "common/string_util.h"

namespace mtcache {

namespace {

// Identifiers that terminate an implicit table alias.
const std::set<std::string>& AliasStopWords() {
  static const std::set<std::string>* kWords = new std::set<std::string>{
      "where", "join", "inner", "left", "right", "outer", "on",
      "group", "order", "having", "union", "and", "or", "select",
      "set", "values", "as", "asc", "desc", "when", "then", "else", "end",
      "if", "begin", "return", "declare", "exec", "insert", "update",
      "delete", "create", "drop", "commit", "rollback", "with", "while"};
  return *kWords;
}

}  // namespace

const Token& Parser::Peek(int ahead) const {
  size_t i = pos_ + ahead;
  if (i >= tokens_.size()) i = tokens_.size() - 1;  // kEnd sentinel
  return tokens_[i];
}

bool Parser::CheckIdent(const char* kw) const {
  const Token& t = Peek();
  return t.type == TokenType::kIdent && t.text == kw;
}

bool Parser::MatchIdent(const char* kw) {
  if (CheckIdent(kw)) {
    Advance();
    return true;
  }
  return false;
}

bool Parser::CheckSymbol(const char* sym) const {
  const Token& t = Peek();
  return t.type == TokenType::kSymbol && t.text == sym;
}

bool Parser::MatchSymbol(const char* sym) {
  if (CheckSymbol(sym)) {
    Advance();
    return true;
  }
  return false;
}

Status Parser::ExpectIdent(const char* kw) {
  if (!MatchIdent(kw)) {
    return ErrorHere(std::string("expected '") + kw + "'");
  }
  return Status::Ok();
}

Status Parser::ExpectSymbol(const char* sym) {
  if (!MatchSymbol(sym)) {
    return ErrorHere(std::string("expected '") + sym + "'");
  }
  return Status::Ok();
}

StatusOr<std::string> Parser::ExpectName(const char* what) {
  const Token& t = Peek();
  if (t.type != TokenType::kIdent) {
    return ErrorHere(std::string("expected ") + what);
  }
  std::string name = t.text;
  Advance();
  return name;
}

Status Parser::ErrorHere(const std::string& message) const {
  const Token& t = Peek();
  std::string near = t.type == TokenType::kEnd ? "<end>" : t.text;
  return Status::InvalidArgument(message + " near '" + near + "' (offset " +
                                 std::to_string(t.offset) + ")");
}

StatusOr<std::vector<StmtPtr>> Parser::ParseScript() {
  MT_ASSIGN_OR_RETURN(tokens_, Tokenize(sql_));
  pos_ = 0;
  std::vector<StmtPtr> out;
  while (Peek().type != TokenType::kEnd) {
    if (MatchSymbol(";")) continue;
    MT_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
    out.push_back(std::move(stmt));
  }
  return out;
}

StatusOr<StmtPtr> Parser::ParseSingleStatement() {
  MT_ASSIGN_OR_RETURN(tokens_, Tokenize(sql_));
  pos_ = 0;
  MT_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
  MatchSymbol(";");
  if (Peek().type != TokenType::kEnd) {
    return ErrorHere("unexpected trailing input");
  }
  return stmt;
}

StatusOr<StmtPtr> Parser::ParseStatement() {
  if (CheckIdent("select")) {
    MT_ASSIGN_OR_RETURN(auto sel, ParseSelect());
    return StmtPtr(std::move(sel));
  }
  if (CheckIdent("insert")) return ParseInsert();
  if (CheckIdent("update")) return ParseUpdate();
  if (CheckIdent("delete")) return ParseDelete();
  if (CheckIdent("create")) return ParseCreate();
  if (CheckIdent("drop")) return ParseDrop();
  if (CheckIdent("grant") || CheckIdent("revoke")) return ParseGrant();
  if (MatchIdent("explain")) {
    auto stmt = std::make_unique<ExplainStmt>();
    stmt->analyze = MatchIdent("analyze");
    MT_ASSIGN_OR_RETURN(stmt->target, ParseStatement());
    switch (stmt->target->kind) {
      case StmtKind::kSelect:
        break;
      case StmtKind::kInsert:
      case StmtKind::kUpdate:
      case StmtKind::kDelete:
        if (stmt->analyze) {
          return Status::InvalidArgument(
              "EXPLAIN ANALYZE supports only SELECT (DML would execute "
              "twice); use plain EXPLAIN for write-path plans");
        }
        break;
      default:
        return Status::InvalidArgument(
            "EXPLAIN supports SELECT, INSERT, UPDATE, and DELETE");
    }
    return StmtPtr(std::move(stmt));
  }
  if (CheckIdent("exec") || CheckIdent("execute")) return ParseExec();
  if (CheckIdent("declare")) return ParseDeclare();
  if (CheckIdent("set")) return ParseSet();
  if (CheckIdent("if")) return ParseIf();
  if (MatchIdent("while")) {
    auto stmt = std::make_unique<WhileStmt>();
    MT_ASSIGN_OR_RETURN(stmt->condition, ParseExpr());
    MT_ASSIGN_OR_RETURN(stmt->body, ParseBlockOrSingle());
    return StmtPtr(std::move(stmt));
  }
  if (MatchIdent("return")) return StmtPtr(std::make_unique<ReturnStmt>());
  if (CheckIdent("begin")) {
    // Only BEGIN TRANSACTION is a statement here (blocks appear via IF).
    Advance();
    if (MatchIdent("transaction") || MatchIdent("tran")) {
      return StmtPtr(std::make_unique<BeginTxnStmt>());
    }
    return ErrorHere("expected TRANSACTION after BEGIN");
  }
  if (MatchIdent("commit")) {
    if (!MatchIdent("transaction")) MatchIdent("tran");
    return StmtPtr(std::make_unique<CommitTxnStmt>());
  }
  if (MatchIdent("rollback")) {
    if (!MatchIdent("transaction")) MatchIdent("tran");
    return StmtPtr(std::make_unique<RollbackTxnStmt>());
  }
  return ErrorHere("expected a statement");
}

StatusOr<std::unique_ptr<SelectStmt>> Parser::ParseSelect() {
  MT_RETURN_IF_ERROR(ExpectIdent("select"));
  auto stmt = std::make_unique<SelectStmt>();
  if (MatchIdent("distinct")) stmt->distinct = true;
  if (CheckIdent("top") && Peek(1).type == TokenType::kInt) {
    Advance();
    stmt->top = Peek().int_val;
    Advance();
  }
  // Select list.
  bool any_assignment = false;
  do {
    SelectItem item;
    std::string into_var;
    if (Peek().type == TokenType::kParam && Peek(1).type == TokenType::kSymbol &&
        Peek(1).text == "=") {
      into_var = Peek().text;
      Advance();
      Advance();
      any_assignment = true;
    }
    if (CheckSymbol("*")) {
      Advance();
      item.star = true;
    } else if (Peek().type == TokenType::kIdent &&
               Peek(1).type == TokenType::kSymbol && Peek(1).text == "." &&
               Peek(2).type == TokenType::kSymbol && Peek(2).text == "*") {
      item.star = true;
      item.star_qualifier = Peek().text;
      Advance();
      Advance();
      Advance();
    } else {
      MT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchIdent("as")) {
        MT_ASSIGN_OR_RETURN(item.alias, ExpectName("alias"));
      } else if (Peek().type == TokenType::kIdent &&
                 AliasStopWords().count(Peek().text) == 0 &&
                 !CheckIdent("from")) {
        item.alias = Peek().text;
        Advance();
      }
    }
    stmt->items.push_back(std::move(item));
    stmt->into_vars.push_back(into_var);
  } while (MatchSymbol(","));
  if (!any_assignment) stmt->into_vars.clear();

  if (MatchIdent("from")) {
    MT_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    stmt->from.push_back(std::move(first));
    // Comma-joined tables and explicit JOINs, in any interleaving.
    while (true) {
      if (MatchSymbol(",")) {
        MT_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        stmt->from.push_back(std::move(ref));
        continue;
      }
      JoinKind kind = JoinKind::kInner;
      bool is_join = false;
      if (MatchIdent("inner")) {
        MT_RETURN_IF_ERROR(ExpectIdent("join"));
        is_join = true;
      } else if (MatchIdent("left")) {
        MatchIdent("outer");
        MT_RETURN_IF_ERROR(ExpectIdent("join"));
        kind = JoinKind::kLeftOuter;
        is_join = true;
      } else if (MatchIdent("join")) {
        is_join = true;
      }
      if (!is_join) break;
      JoinClause join;
      join.kind = kind;
      MT_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      MT_RETURN_IF_ERROR(ExpectIdent("on"));
      MT_ASSIGN_OR_RETURN(join.on, ParseExpr());
      stmt->joins.push_back(std::move(join));
    }
  }
  if (MatchIdent("where")) {
    MT_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  if (MatchIdent("group")) {
    MT_RETURN_IF_ERROR(ExpectIdent("by"));
    do {
      MT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->group_by.push_back(std::move(e));
    } while (MatchSymbol(","));
  }
  if (MatchIdent("having")) {
    MT_ASSIGN_OR_RETURN(stmt->having, ParseExpr());
  }
  if (MatchIdent("order")) {
    MT_RETURN_IF_ERROR(ExpectIdent("by"));
    do {
      OrderByItem item;
      MT_ASSIGN_OR_RETURN(item.expr, ParseExpr());
      if (MatchIdent("desc")) {
        item.desc = true;
      } else {
        MatchIdent("asc");
      }
      stmt->order_by.push_back(std::move(item));
    } while (MatchSymbol(","));
  }
  if (MatchIdent("union")) {
    MT_RETURN_IF_ERROR(ExpectIdent("all"));
    MT_ASSIGN_OR_RETURN(stmt->union_next, ParseSelect());
  }
  if (MatchIdent("with")) {
    MT_RETURN_IF_ERROR(ExpectIdent("maxstaleness"));
    const Token& t = Peek();
    if (t.type == TokenType::kInt) {
      stmt->max_staleness = static_cast<double>(t.int_val);
    } else if (t.type == TokenType::kFloat) {
      stmt->max_staleness = t.float_val;
    } else {
      return ErrorHere("expected a number after MAXSTALENESS");
    }
    Advance();
  }
  return stmt;
}

StatusOr<TableRef> Parser::ParseTableRef() {
  TableRef ref;
  if (MatchSymbol("(")) {
    MT_ASSIGN_OR_RETURN(ref.derived, ParseSelect());
    MT_RETURN_IF_ERROR(ExpectSymbol(")"));
    MatchIdent("as");
    MT_ASSIGN_OR_RETURN(ref.alias, ExpectName("derived-table alias"));
    return ref;
  }
  MT_ASSIGN_OR_RETURN(std::string first, ExpectName("table name"));
  if (MatchSymbol(".")) {
    ref.server = first;
    MT_ASSIGN_OR_RETURN(ref.name, ExpectName("table name"));
  } else {
    ref.name = first;
  }
  if (MatchIdent("as")) {
    MT_ASSIGN_OR_RETURN(ref.alias, ExpectName("alias"));
  } else if (Peek().type == TokenType::kIdent &&
             AliasStopWords().count(Peek().text) == 0 &&
             !CheckIdent("from")) {
    ref.alias = Peek().text;
    Advance();
  }
  return ref;
}

StatusOr<StmtPtr> Parser::ParseInsert() {
  MT_RETURN_IF_ERROR(ExpectIdent("insert"));
  MT_RETURN_IF_ERROR(ExpectIdent("into"));
  auto stmt = std::make_unique<InsertStmt>();
  MT_ASSIGN_OR_RETURN(std::string first, ExpectName("table name"));
  if (MatchSymbol(".")) {
    stmt->server = first;
    MT_ASSIGN_OR_RETURN(stmt->table, ExpectName("table name"));
  } else {
    stmt->table = first;
  }
  if (CheckSymbol("(") ) {
    // Could be a column list or the start of INSERT..SELECT's values? Column
    // list only: '(' ident ... ')'
    Advance();
    do {
      MT_ASSIGN_OR_RETURN(std::string col, ExpectName("column name"));
      stmt->columns.push_back(std::move(col));
    } while (MatchSymbol(","));
    MT_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  if (MatchIdent("values")) {
    do {
      MT_RETURN_IF_ERROR(ExpectSymbol("("));
      std::vector<ExprPtr> row;
      do {
        MT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        row.push_back(std::move(e));
      } while (MatchSymbol(","));
      MT_RETURN_IF_ERROR(ExpectSymbol(")"));
      stmt->rows.push_back(std::move(row));
    } while (MatchSymbol(","));
  } else if (CheckIdent("select")) {
    MT_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
  } else {
    return ErrorHere("expected VALUES or SELECT");
  }
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseUpdate() {
  MT_RETURN_IF_ERROR(ExpectIdent("update"));
  auto stmt = std::make_unique<UpdateStmt>();
  MT_ASSIGN_OR_RETURN(std::string first, ExpectName("table name"));
  if (MatchSymbol(".")) {
    stmt->server = first;
    MT_ASSIGN_OR_RETURN(stmt->table, ExpectName("table name"));
  } else {
    stmt->table = first;
  }
  MT_RETURN_IF_ERROR(ExpectIdent("set"));
  do {
    MT_ASSIGN_OR_RETURN(std::string col, ExpectName("column name"));
    MT_RETURN_IF_ERROR(ExpectSymbol("="));
    MT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    stmt->sets.emplace_back(std::move(col), std::move(e));
  } while (MatchSymbol(","));
  if (MatchIdent("where")) {
    MT_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseDelete() {
  MT_RETURN_IF_ERROR(ExpectIdent("delete"));
  MT_RETURN_IF_ERROR(ExpectIdent("from"));
  auto stmt = std::make_unique<DeleteStmt>();
  MT_ASSIGN_OR_RETURN(std::string first, ExpectName("table name"));
  if (MatchSymbol(".")) {
    stmt->server = first;
    MT_ASSIGN_OR_RETURN(stmt->table, ExpectName("table name"));
  } else {
    stmt->table = first;
  }
  if (MatchIdent("where")) {
    MT_ASSIGN_OR_RETURN(stmt->where, ParseExpr());
  }
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseCreate() {
  MT_RETURN_IF_ERROR(ExpectIdent("create"));
  if (CheckIdent("table")) return ParseCreateTable();
  if (MatchIdent("unique")) {
    MT_RETURN_IF_ERROR(ExpectIdent("index"));
    return ParseCreateIndex(/*unique=*/true);
  }
  if (MatchIdent("index")) return ParseCreateIndex(/*unique=*/false);
  if (MatchIdent("cached")) {
    MT_RETURN_IF_ERROR(ExpectIdent("materialized"));
    MT_RETURN_IF_ERROR(ExpectIdent("view"));
    return ParseCreateView(/*cached=*/true);
  }
  if (MatchIdent("materialized")) {
    MT_RETURN_IF_ERROR(ExpectIdent("view"));
    return ParseCreateView(/*cached=*/false);
  }
  if (MatchIdent("procedure") || MatchIdent("proc")) {
    return ParseCreateProcedure();
  }
  return ErrorHere("expected TABLE, INDEX, MATERIALIZED VIEW, or PROCEDURE");
}

StatusOr<TypeId> Parser::ParseType() {
  MT_ASSIGN_OR_RETURN(std::string name, ExpectName("type name"));
  // Optional length argument: VARCHAR(40), CHAR(10), ...
  if (MatchSymbol("(")) {
    if (Peek().type == TokenType::kInt) Advance();
    MT_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  if (name == "int" || name == "integer" || name == "bigint" ||
      name == "smallint" || name == "datetime" || name == "date") {
    return TypeId::kInt64;
  }
  if (name == "float" || name == "double" || name == "real" ||
      name == "numeric" || name == "decimal") {
    return TypeId::kDouble;
  }
  if (name == "varchar" || name == "char" || name == "text" ||
      name == "string" || name == "nvarchar") {
    return TypeId::kString;
  }
  if (name == "bool" || name == "boolean" || name == "bit") {
    return TypeId::kBool;
  }
  return Status::InvalidArgument("unknown type: " + name);
}

StatusOr<StmtPtr> Parser::ParseCreateTable() {
  MT_RETURN_IF_ERROR(ExpectIdent("table"));
  auto stmt = std::make_unique<CreateTableStmt>();
  MT_ASSIGN_OR_RETURN(stmt->table, ExpectName("table name"));
  MT_RETURN_IF_ERROR(ExpectSymbol("("));
  do {
    if (MatchIdent("primary")) {
      MT_RETURN_IF_ERROR(ExpectIdent("key"));
      MT_RETURN_IF_ERROR(ExpectSymbol("("));
      do {
        MT_ASSIGN_OR_RETURN(std::string col, ExpectName("column name"));
        stmt->primary_key.push_back(std::move(col));
      } while (MatchSymbol(","));
      MT_RETURN_IF_ERROR(ExpectSymbol(")"));
      continue;
    }
    ColumnDefAst col;
    MT_ASSIGN_OR_RETURN(col.name, ExpectName("column name"));
    MT_ASSIGN_OR_RETURN(col.type, ParseType());
    while (true) {
      if (MatchIdent("not")) {
        MT_RETURN_IF_ERROR(ExpectIdent("null"));
        col.not_null = true;
        continue;
      }
      if (MatchIdent("null")) continue;
      if (MatchIdent("primary")) {
        MT_RETURN_IF_ERROR(ExpectIdent("key"));
        col.primary_key = true;
        col.not_null = true;
        continue;
      }
      break;
    }
    stmt->columns.push_back(std::move(col));
  } while (MatchSymbol(","));
  MT_RETURN_IF_ERROR(ExpectSymbol(")"));
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseCreateIndex(bool unique) {
  auto stmt = std::make_unique<CreateIndexStmt>();
  stmt->unique = unique;
  MT_ASSIGN_OR_RETURN(stmt->index, ExpectName("index name"));
  MT_RETURN_IF_ERROR(ExpectIdent("on"));
  MT_ASSIGN_OR_RETURN(stmt->table, ExpectName("table name"));
  MT_RETURN_IF_ERROR(ExpectSymbol("("));
  do {
    MT_ASSIGN_OR_RETURN(std::string col, ExpectName("column name"));
    stmt->columns.push_back(std::move(col));
  } while (MatchSymbol(","));
  MT_RETURN_IF_ERROR(ExpectSymbol(")"));
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseCreateView(bool cached) {
  auto stmt = std::make_unique<CreateViewStmt>();
  stmt->cached = cached;
  MT_ASSIGN_OR_RETURN(stmt->view, ExpectName("view name"));
  MT_RETURN_IF_ERROR(ExpectIdent("as"));
  MT_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseCreateProcedure() {
  auto stmt = std::make_unique<CreateProcedureStmt>();
  MT_ASSIGN_OR_RETURN(stmt->name, ExpectName("procedure name"));
  if (MatchSymbol("(")) {
    if (!CheckSymbol(")")) {
      do {
        const Token& t = Peek();
        if (t.type != TokenType::kParam) {
          return ErrorHere("expected @parameter");
        }
        std::string pname = t.text;
        Advance();
        MT_ASSIGN_OR_RETURN(TypeId type, ParseType());
        stmt->params.emplace_back(std::move(pname), type);
      } while (MatchSymbol(","));
    }
    MT_RETURN_IF_ERROR(ExpectSymbol(")"));
  }
  MT_RETURN_IF_ERROR(ExpectIdent("as"));
  MT_RETURN_IF_ERROR(ExpectIdent("begin"));
  // Capture the raw body text up to the matching END. BEGIN TRANSACTION /
  // COMMIT / ROLLBACK do not open or close blocks.
  size_t body_start = Peek().offset;
  int depth = 1;
  while (depth > 0) {
    const Token& t = Peek();
    if (t.type == TokenType::kEnd) {
      return ErrorHere("unterminated procedure body (missing END)");
    }
    if (t.type == TokenType::kIdent && t.text == "begin") {
      const Token& next = Peek(1);
      bool is_txn = next.type == TokenType::kIdent &&
                    (next.text == "transaction" || next.text == "tran");
      if (!is_txn) ++depth;
    } else if (t.type == TokenType::kIdent && t.text == "end") {
      --depth;
      if (depth == 0) {
        stmt->body_source = sql_.substr(body_start, t.offset - body_start);
        Advance();
        break;
      }
    }
    Advance();
  }
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseDrop() {
  MT_RETURN_IF_ERROR(ExpectIdent("drop"));
  auto stmt = std::make_unique<DropStmt>();
  if (MatchIdent("table")) {
    stmt->what = DropKind::kTable;
  } else if (MatchIdent("index")) {
    stmt->what = DropKind::kIndex;
  } else if (MatchIdent("materialized")) {
    MT_RETURN_IF_ERROR(ExpectIdent("view"));
    stmt->what = DropKind::kView;
  } else if (MatchIdent("view")) {
    stmt->what = DropKind::kView;
  } else if (MatchIdent("procedure") || MatchIdent("proc")) {
    stmt->what = DropKind::kProcedure;
  } else {
    return ErrorHere("expected TABLE, INDEX, VIEW, or PROCEDURE");
  }
  MT_ASSIGN_OR_RETURN(stmt->name, ExpectName("object name"));
  if (stmt->what == DropKind::kIndex) {
    MT_RETURN_IF_ERROR(ExpectIdent("on"));
    MT_ASSIGN_OR_RETURN(stmt->table, ExpectName("table name"));
  }
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseGrant() {
  auto stmt = std::make_unique<GrantStmt>();
  if (MatchIdent("grant")) {
    stmt->grant = true;
  } else {
    MT_RETURN_IF_ERROR(ExpectIdent("revoke"));
    stmt->grant = false;
  }
  do {
    MT_ASSIGN_OR_RETURN(std::string priv, ExpectName("privilege"));
    stmt->privileges.push_back(std::move(priv));
  } while (MatchSymbol(","));
  MT_RETURN_IF_ERROR(ExpectIdent("on"));
  MT_ASSIGN_OR_RETURN(stmt->table, ExpectName("table name"));
  MT_RETURN_IF_ERROR(stmt->grant ? ExpectIdent("to") : ExpectIdent("from"));
  MT_ASSIGN_OR_RETURN(stmt->user, ExpectName("user name"));
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseExec() {
  Advance();  // exec / execute
  auto stmt = std::make_unique<ExecStmt>();
  MT_ASSIGN_OR_RETURN(stmt->procedure, ExpectName("procedure name"));
  // Positional arguments: only value-shaped starts qualify, so an EXEC with
  // no arguments followed by another statement does not swallow its keyword.
  auto looks_like_arg = [&] {
    const Token& t = Peek();
    return t.type == TokenType::kInt || t.type == TokenType::kFloat ||
           t.type == TokenType::kString || t.type == TokenType::kParam ||
           (t.type == TokenType::kSymbol && (t.text == "-" || t.text == "(")) ||
           (t.type == TokenType::kIdent &&
            (t.text == "null" || t.text == "true" || t.text == "false"));
  };
  if (looks_like_arg()) {
    do {
      MT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      stmt->args.push_back(std::move(e));
    } while (MatchSymbol(","));
  }
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseDeclare() {
  MT_RETURN_IF_ERROR(ExpectIdent("declare"));
  auto stmt = std::make_unique<DeclareStmt>();
  const Token& t = Peek();
  if (t.type != TokenType::kParam) return ErrorHere("expected @variable");
  stmt->var = t.text;
  Advance();
  MT_ASSIGN_OR_RETURN(stmt->type, ParseType());
  if (MatchSymbol("=")) {
    MT_ASSIGN_OR_RETURN(stmt->init, ParseExpr());
  }
  return StmtPtr(std::move(stmt));
}

StatusOr<StmtPtr> Parser::ParseSet() {
  MT_RETURN_IF_ERROR(ExpectIdent("set"));
  // T-SQL session option form: SET STATISTICS PROFILE ON|OFF.
  if (MatchIdent("statistics")) {
    MT_RETURN_IF_ERROR(ExpectIdent("profile"));
    auto opt = std::make_unique<SetOptionStmt>();
    opt->option = "statistics profile";
    if (MatchIdent("on")) {
      opt->on = true;
    } else if (MatchIdent("off")) {
      opt->on = false;
    } else {
      return ErrorHere("expected ON or OFF");
    }
    return StmtPtr(std::move(opt));
  }
  auto stmt = std::make_unique<SetVarStmt>();
  const Token& t = Peek();
  if (t.type != TokenType::kParam) return ErrorHere("expected @variable");
  stmt->var = t.text;
  Advance();
  MT_RETURN_IF_ERROR(ExpectSymbol("="));
  MT_ASSIGN_OR_RETURN(stmt->value, ParseExpr());
  return StmtPtr(std::move(stmt));
}

StatusOr<std::vector<StmtPtr>> Parser::ParseBlockOrSingle() {
  std::vector<StmtPtr> out;
  if (CheckIdent("begin") && !(Peek(1).type == TokenType::kIdent &&
                               (Peek(1).text == "transaction" ||
                                Peek(1).text == "tran"))) {
    Advance();  // begin
    while (!CheckIdent("end")) {
      if (Peek().type == TokenType::kEnd) {
        return ErrorHere("unterminated block (missing END)");
      }
      if (MatchSymbol(";")) continue;
      MT_ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
      out.push_back(std::move(s));
    }
    Advance();  // end
  } else {
    MT_ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
    out.push_back(std::move(s));
  }
  return out;
}

StatusOr<StmtPtr> Parser::ParseIf() {
  MT_RETURN_IF_ERROR(ExpectIdent("if"));
  auto stmt = std::make_unique<IfStmt>();
  MT_ASSIGN_OR_RETURN(stmt->condition, ParseExpr());
  MT_ASSIGN_OR_RETURN(stmt->then_branch, ParseBlockOrSingle());
  if (MatchIdent("else")) {
    MT_ASSIGN_OR_RETURN(stmt->else_branch, ParseBlockOrSingle());
  }
  return StmtPtr(std::move(stmt));
}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

StatusOr<ExprPtr> Parser::ParseExpr() {
  MT_ASSIGN_OR_RETURN(ExprPtr left, ParseAndExpr());
  while (MatchIdent("or")) {
    MT_ASSIGN_OR_RETURN(ExprPtr right, ParseAndExpr());
    left = std::make_unique<BinaryExpr>(BinaryOp::kOr, std::move(left),
                                        std::move(right));
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseAndExpr() {
  MT_ASSIGN_OR_RETURN(ExprPtr left, ParseNotExpr());
  while (MatchIdent("and")) {
    MT_ASSIGN_OR_RETURN(ExprPtr right, ParseNotExpr());
    left = std::make_unique<BinaryExpr>(BinaryOp::kAnd, std::move(left),
                                        std::move(right));
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseNotExpr() {
  if (MatchIdent("not")) {
    MT_ASSIGN_OR_RETURN(ExprPtr e, ParseNotExpr());
    return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(e)));
  }
  return ParsePredicate();
}

StatusOr<ExprPtr> Parser::ParsePredicate() {
  MT_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());
  // IS [NOT] NULL
  if (MatchIdent("is")) {
    bool negated = MatchIdent("not");
    MT_RETURN_IF_ERROR(ExpectIdent("null"));
    return ExprPtr(std::make_unique<IsNullExpr>(std::move(left), negated));
  }
  bool negated = false;
  if (CheckIdent("not") && (Peek(1).type == TokenType::kIdent &&
                            (Peek(1).text == "like" || Peek(1).text == "in" ||
                             Peek(1).text == "between"))) {
    Advance();
    negated = true;
  }
  if (MatchIdent("like")) {
    MT_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
    return ExprPtr(std::make_unique<LikeExpr>(std::move(left),
                                              std::move(pattern), negated));
  }
  if (MatchIdent("in")) {
    MT_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ExprPtr> list;
    do {
      MT_ASSIGN_OR_RETURN(ExprPtr e, ParseAdditive());
      list.push_back(std::move(e));
    } while (MatchSymbol(","));
    MT_RETURN_IF_ERROR(ExpectSymbol(")"));
    return ExprPtr(
        std::make_unique<InExpr>(std::move(left), std::move(list), negated));
  }
  if (MatchIdent("between")) {
    MT_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
    MT_RETURN_IF_ERROR(ExpectIdent("and"));
    MT_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
    ExprPtr between = std::make_unique<BetweenExpr>(
        std::move(left), std::move(lo), std::move(hi));
    if (negated) {
      return ExprPtr(
          std::make_unique<UnaryExpr>(UnaryOp::kNot, std::move(between)));
    }
    return between;
  }
  if (negated) return ErrorHere("expected LIKE, IN, or BETWEEN after NOT");
  // Comparison operators.
  struct OpMap {
    const char* sym;
    BinaryOp op;
  };
  static const OpMap kOps[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
                               {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe},
                               {"<", BinaryOp::kLt},  {">", BinaryOp::kGt}};
  for (const OpMap& m : kOps) {
    if (MatchSymbol(m.sym)) {
      MT_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
      return ExprPtr(std::make_unique<BinaryExpr>(m.op, std::move(left),
                                                  std::move(right)));
    }
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseAdditive() {
  MT_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
  while (true) {
    BinaryOp op;
    if (MatchSymbol("+")) {
      op = BinaryOp::kAdd;
    } else if (MatchSymbol("-")) {
      op = BinaryOp::kSub;
    } else {
      break;
    }
    MT_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseMultiplicative() {
  MT_ASSIGN_OR_RETURN(ExprPtr left, ParseUnaryExpr());
  while (true) {
    BinaryOp op;
    if (MatchSymbol("*")) {
      op = BinaryOp::kMul;
    } else if (MatchSymbol("/")) {
      op = BinaryOp::kDiv;
    } else if (MatchSymbol("%")) {
      op = BinaryOp::kMod;
    } else {
      break;
    }
    MT_ASSIGN_OR_RETURN(ExprPtr right, ParseUnaryExpr());
    left = std::make_unique<BinaryExpr>(op, std::move(left), std::move(right));
  }
  return left;
}

StatusOr<ExprPtr> Parser::ParseUnaryExpr() {
  if (MatchSymbol("-")) {
    MT_ASSIGN_OR_RETURN(ExprPtr e, ParseUnaryExpr());
    return ExprPtr(std::make_unique<UnaryExpr>(UnaryOp::kNeg, std::move(e)));
  }
  return ParsePrimary();
}

StatusOr<ExprPtr> Parser::ParsePrimary() {
  const Token& t = Peek();
  switch (t.type) {
    case TokenType::kInt: {
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::Int(t.int_val)));
    }
    case TokenType::kFloat: {
      Advance();
      return ExprPtr(
          std::make_unique<LiteralExpr>(Value::Double(t.float_val)));
    }
    case TokenType::kString: {
      Advance();
      return ExprPtr(std::make_unique<LiteralExpr>(Value::String(t.text)));
    }
    case TokenType::kParam: {
      Advance();
      return ExprPtr(std::make_unique<ParamExpr>(t.text));
    }
    case TokenType::kSymbol: {
      if (t.text == "(") {
        Advance();
        MT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        MT_RETURN_IF_ERROR(ExpectSymbol(")"));
        return e;
      }
      break;
    }
    case TokenType::kIdent: {
      std::string name = t.text;
      // Reserved clause keywords cannot start an expression; catching them
      // here turns "SELECT FROM" into a syntax error instead of a query over
      // a column named "from".
      static const std::set<std::string>* kReserved = new std::set<std::string>{
          "from", "where", "group", "having", "order", "join", "inner",
          "left", "right", "outer", "on", "select", "and", "or", "union",
          "as", "end", "begin", "else", "values", "into", "by", "when",
          "then", "asc", "desc"};
      if (kReserved->count(name) > 0) {
        return ErrorHere("expected an expression");
      }
      // NULL / TRUE / FALSE literals.
      if (name == "null") {
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Null()));
      }
      if (name == "true") {
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(true)));
      }
      if (name == "false") {
        Advance();
        return ExprPtr(std::make_unique<LiteralExpr>(Value::Bool(false)));
      }
      // CASE expressions.
      if (name == "case") {
        Advance();
        auto expr = std::make_unique<CaseExpr>();
        if (!CheckIdent("when")) {
          MT_ASSIGN_OR_RETURN(expr->operand, ParseExpr());
        }
        while (MatchIdent("when")) {
          MT_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
          MT_RETURN_IF_ERROR(ExpectIdent("then"));
          MT_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
          expr->branches.emplace_back(std::move(when), std::move(then));
        }
        if (expr->branches.empty()) {
          return ErrorHere("CASE requires at least one WHEN branch");
        }
        if (MatchIdent("else")) {
          MT_ASSIGN_OR_RETURN(expr->else_expr, ParseExpr());
        }
        MT_RETURN_IF_ERROR(ExpectIdent("end"));
        return ExprPtr(std::move(expr));
      }
      // Aggregates.
      if (Peek(1).type == TokenType::kSymbol && Peek(1).text == "(") {
        AggFunc agg;
        bool is_agg = true;
        if (name == "count") {
          agg = AggFunc::kCount;
        } else if (name == "sum") {
          agg = AggFunc::kSum;
        } else if (name == "avg") {
          agg = AggFunc::kAvg;
        } else if (name == "min") {
          agg = AggFunc::kMin;
        } else if (name == "max") {
          agg = AggFunc::kMax;
        } else {
          is_agg = false;
        }
        if (is_agg) {
          Advance();  // name
          Advance();  // (
          if (agg == AggFunc::kCount && MatchSymbol("*")) {
            MT_RETURN_IF_ERROR(ExpectSymbol(")"));
            return ExprPtr(std::make_unique<AggregateExpr>(AggFunc::kCountStar,
                                                           nullptr));
          }
          MT_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
          MT_RETURN_IF_ERROR(ExpectSymbol(")"));
          return ExprPtr(
              std::make_unique<AggregateExpr>(agg, std::move(arg)));
        }
        // Scalar function.
        Advance();  // name
        Advance();  // (
        std::vector<ExprPtr> args;
        if (!CheckSymbol(")")) {
          do {
            MT_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
            args.push_back(std::move(e));
          } while (MatchSymbol(","));
        }
        MT_RETURN_IF_ERROR(ExpectSymbol(")"));
        return ExprPtr(
            std::make_unique<FunctionExpr>(name, std::move(args)));
      }
      // Column reference (possibly qualified).
      Advance();
      if (CheckSymbol(".") && Peek(1).type == TokenType::kIdent) {
        Advance();  // .
        std::string col = Peek().text;
        Advance();
        return ExprPtr(std::make_unique<ColumnRefExpr>(name, col));
      }
      return ExprPtr(std::make_unique<ColumnRefExpr>("", name));
    }
    default:
      break;
  }
  return ErrorHere("expected an expression");
}

StatusOr<StmtPtr> ParseSql(const std::string& sql) {
  Parser parser(sql);
  return parser.ParseSingleStatement();
}

StatusOr<std::vector<StmtPtr>> ParseSqlScript(const std::string& sql) {
  Parser parser(sql);
  return parser.ParseScript();
}

}  // namespace mtcache
