#ifndef MTCACHE_SQL_LEXER_H_
#define MTCACHE_SQL_LEXER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace mtcache {

enum class TokenType {
  kIdent,    // identifier or keyword (keywords matched case-insensitively)
  kParam,    // @name
  kInt,      // integer literal
  kFloat,    // floating literal
  kString,   // 'quoted'
  kSymbol,   // punctuation/operator: ( ) , . ; = <> <= >= < > + - * / %
  kEnd,
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;   // identifiers lower-cased; symbols verbatim
  int64_t int_val = 0;
  double float_val = 0;
  size_t offset = 0;  // byte offset in the source (for proc body capture)
};

/// Tokenizes a SQL string. Comments (`-- ...` to end of line) are skipped.
StatusOr<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace mtcache

#endif  // MTCACHE_SQL_LEXER_H_
