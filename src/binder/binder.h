#ifndef MTCACHE_BINDER_BINDER_H_
#define MTCACHE_BINDER_BINDER_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "expr/bound_expr.h"
#include "opt/logical.h"
#include "sql/ast.h"

namespace mtcache {

/// Bound DML statements. The engine executes these directly against storage
/// (or forwards them to the backend when the target table is a shadow).
struct BoundInsert {
  TableDef* table = nullptr;
  std::vector<int> column_ordinals;            // target ordinals, schema order
  std::vector<std::vector<BExprPtr>> rows;     // VALUES form
  LogicalPtr select;                           // INSERT..SELECT form
};

struct BoundUpdate {
  TableDef* table = nullptr;
  std::vector<std::pair<int, BExprPtr>> sets;  // (column ordinal, value expr)
  BExprPtr where;                              // over the table schema
};

struct BoundDelete {
  TableDef* table = nullptr;
  BExprPtr where;
};

/// Name resolution, permission checks, and type checking. Turns a SELECT
/// AST into a logical plan and DML ASTs into bound forms. The binder only
/// needs the *catalog* — on an MTCache server the shadow catalog makes all
/// of this work locally even though the data is remote (§3).
class Binder {
 public:
  /// Resolves an explicit linked-server qualifier (`server.table`) to that
  /// server's catalog; returns null for unknown servers.
  using LinkedCatalogResolver = std::function<Catalog*(const std::string&)>;

  /// Resolves a table under the reserved `sys` qualifier (the DMVs) to its
  /// virtual TableDef; returns null for unknown names. The returned def must
  /// outlive every plan bound against it (the Server owns its DmvCatalog).
  using VirtualTableResolver =
      std::function<const TableDef*(const std::string&)>;

  /// `catalog` must outlive the binder. `user` is checked against grants.
  Binder(Catalog* catalog, std::string user,
         LinkedCatalogResolver resolver = nullptr,
         VirtualTableResolver virtual_resolver = nullptr)
      : catalog_(catalog), user_(std::move(user)),
        resolver_(std::move(resolver)),
        virtual_resolver_(std::move(virtual_resolver)) {}

  StatusOr<LogicalPtr> BindSelect(const SelectStmt& stmt);
  StatusOr<BoundInsert> BindInsert(const InsertStmt& stmt);
  StatusOr<BoundUpdate> BindUpdate(const UpdateStmt& stmt);
  StatusOr<BoundDelete> BindDelete(const DeleteStmt& stmt);

  /// Binds a scalar expression with no table scope (procedure SET/IF/DECLARE).
  StatusOr<BExprPtr> BindScalar(const Expr& expr);

 private:
  struct AggState {
    std::vector<BExprPtr>* group_by = nullptr;  // bound over input scope
    std::vector<AggItem>* aggs = nullptr;       // collected aggregates
    int num_groups = 0;
    bool active = false;
  };

  StatusOr<BExprPtr> BindExpr(const Expr& expr, const Schema& scope,
                              AggState* agg);
  StatusOr<BExprPtr> BindColumn(const ColumnRefExpr& expr, const Schema& scope);
  StatusOr<LogicalPtr> BindTableRef(const TableRef& ref);

  Status CheckPrivilege(const TableDef& table, Privilege priv) const;

  Catalog* catalog_;
  std::string user_;
  LinkedCatalogResolver resolver_;
  VirtualTableResolver virtual_resolver_;
};

/// True if any aggregate function appears in the (unbound) expression.
bool HasAggregate(const Expr& expr);

}  // namespace mtcache

#endif  // MTCACHE_BINDER_BINDER_H_
