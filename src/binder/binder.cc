#include "binder/binder.h"

#include <set>

namespace mtcache {

namespace {

bool IsNumeric(TypeId t) {
  return t == TypeId::kInt64 || t == TypeId::kDouble || t == TypeId::kBool ||
         t == TypeId::kNull;
}

// Two types can meet in a comparison if either side is flexible (param/null).
bool Comparable(TypeId a, TypeId b) {
  if (a == TypeId::kNull || b == TypeId::kNull) return true;
  if (IsNumeric(a) && IsNumeric(b)) return true;
  return a == b;
}

}  // namespace

bool HasAggregate(const Expr& expr) {
  switch (expr.kind) {
    case ExprKind::kAggregate:
      return true;
    case ExprKind::kUnary:
      return HasAggregate(*static_cast<const UnaryExpr&>(expr).operand);
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      return HasAggregate(*e.left) || HasAggregate(*e.right);
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      return HasAggregate(*e.input) || HasAggregate(*e.pattern);
    }
    case ExprKind::kIn: {
      const auto& e = static_cast<const InExpr&>(expr);
      if (HasAggregate(*e.input)) return true;
      for (const auto& item : e.list) {
        if (HasAggregate(*item)) return true;
      }
      return false;
    }
    case ExprKind::kBetween: {
      const auto& e = static_cast<const BetweenExpr&>(expr);
      return HasAggregate(*e.input) || HasAggregate(*e.lo) ||
             HasAggregate(*e.hi);
    }
    case ExprKind::kIsNull:
      return HasAggregate(*static_cast<const IsNullExpr&>(expr).input);
    case ExprKind::kFunction: {
      for (const auto& a : static_cast<const FunctionExpr&>(expr).args) {
        if (HasAggregate(*a)) return true;
      }
      return false;
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(expr);
      if (e.operand != nullptr && HasAggregate(*e.operand)) return true;
      for (const auto& [when, then] : e.branches) {
        if (HasAggregate(*when) || HasAggregate(*then)) return true;
      }
      return e.else_expr != nullptr && HasAggregate(*e.else_expr);
    }
    default:
      return false;
  }
}

Status Binder::CheckPrivilege(const TableDef& table, Privilege priv) const {
  if (!Catalog::HasPrivilege(table, user_, priv)) {
    return Status::PermissionDenied("user " + user_ +
                                    " lacks privilege on table " + table.name);
  }
  return Status::Ok();
}

StatusOr<BExprPtr> Binder::BindColumn(const ColumnRefExpr& expr,
                                      const Schema& scope) {
  int ord = scope.FindColumn(expr.column, expr.table);
  if (ord == -2) {
    return Status::InvalidArgument("ambiguous column: " + expr.column);
  }
  if (ord < 0) {
    std::string full =
        expr.table.empty() ? expr.column : expr.table + "." + expr.column;
    return Status::InvalidArgument("unknown column: " + full);
  }
  const ColumnInfo& col = scope.column(ord);
  std::string name =
      col.table.empty() ? col.name : col.table + "." + col.name;
  return BExprPtr(std::make_unique<BoundColumnRef>(ord, col.type, name));
}

StatusOr<BExprPtr> Binder::BindExpr(const Expr& expr, const Schema& scope,
                                    AggState* agg) {
  // In aggregate mode, expressions above the Aggregate may only reference
  // group-by columns and aggregates; both rewrite to column refs into the
  // Aggregate's output.
  if (agg != nullptr && agg->active) {
    if (expr.kind == ExprKind::kAggregate) {
      const auto& e = static_cast<const AggregateExpr&>(expr);
      AggItem item;
      item.func = e.func;
      if (e.arg != nullptr) {
        AggState none;
        MT_ASSIGN_OR_RETURN(item.arg, BindExpr(*e.arg, scope, &none));
      }
      // Deduplicate structurally identical aggregates.
      for (size_t i = 0; i < agg->aggs->size(); ++i) {
        const AggItem& existing = (*agg->aggs)[i];
        bool same = existing.func == item.func &&
                    ((existing.arg == nullptr && item.arg == nullptr) ||
                     (existing.arg != nullptr && item.arg != nullptr &&
                      BoundEquals(*existing.arg, *item.arg)));
        if (same) {
          TypeId t = existing.func == AggFunc::kAvg ? TypeId::kDouble
                     : existing.arg ? existing.arg->type
                                    : TypeId::kInt64;
          if (existing.func == AggFunc::kCount ||
              existing.func == AggFunc::kCountStar) {
            t = TypeId::kInt64;
          }
          return BExprPtr(std::make_unique<BoundColumnRef>(
              agg->num_groups + static_cast<int>(i), t,
              "agg" + std::to_string(i)));
        }
      }
      TypeId t = item.func == AggFunc::kAvg ? TypeId::kDouble
                 : item.arg ? item.arg->type
                            : TypeId::kInt64;
      if (item.func == AggFunc::kCount || item.func == AggFunc::kCountStar) {
        t = TypeId::kInt64;
      }
      agg->aggs->push_back(std::move(item));
      int idx = static_cast<int>(agg->aggs->size()) - 1;
      return BExprPtr(std::make_unique<BoundColumnRef>(
          agg->num_groups + idx, t, "agg" + std::to_string(idx)));
    }
    if (expr.kind == ExprKind::kColumnRef) {
      // Must match a group-by expression.
      AggState none;
      MT_ASSIGN_OR_RETURN(
          BExprPtr bound,
          BindExpr(expr, scope, &none));
      for (size_t i = 0; i < agg->group_by->size(); ++i) {
        if (BoundEquals(*(*agg->group_by)[i], *bound)) {
          const auto& ref = static_cast<const BoundColumnRef&>(*bound);
          return BExprPtr(std::make_unique<BoundColumnRef>(
              static_cast<int>(i), bound->type, ref.name));
        }
      }
      return Status::InvalidArgument(
          "column must appear in GROUP BY: " +
          static_cast<const ColumnRefExpr&>(expr).column);
    }
    // Fall through: other node kinds recurse with agg mode preserved.
  }

  switch (expr.kind) {
    case ExprKind::kLiteral: {
      const auto& e = static_cast<const LiteralExpr&>(expr);
      return BExprPtr(std::make_unique<BoundLiteral>(e.value));
    }
    case ExprKind::kColumnRef:
      return BindColumn(static_cast<const ColumnRefExpr&>(expr), scope);
    case ExprKind::kParam: {
      const auto& e = static_cast<const ParamExpr&>(expr);
      return BExprPtr(std::make_unique<BoundParam>(e.name, TypeId::kNull));
    }
    case ExprKind::kUnary: {
      const auto& e = static_cast<const UnaryExpr&>(expr);
      MT_ASSIGN_OR_RETURN(BExprPtr operand, BindExpr(*e.operand, scope, agg));
      TypeId t =
          e.op == UnaryOp::kNot ? TypeId::kBool : operand->type;
      if (e.op == UnaryOp::kNeg && !IsNumeric(operand->type)) {
        return Status::InvalidArgument("cannot negate a non-numeric value");
      }
      return BExprPtr(
          std::make_unique<BoundUnary>(e.op, std::move(operand), t));
    }
    case ExprKind::kBinary: {
      const auto& e = static_cast<const BinaryExpr&>(expr);
      MT_ASSIGN_OR_RETURN(BExprPtr left, BindExpr(*e.left, scope, agg));
      MT_ASSIGN_OR_RETURN(BExprPtr right, BindExpr(*e.right, scope, agg));
      TypeId t = TypeId::kBool;
      switch (e.op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          if (e.op == BinaryOp::kAdd && (left->type == TypeId::kString ||
                                         right->type == TypeId::kString)) {
            t = TypeId::kString;  // concatenation
          } else if (!IsNumeric(left->type) || !IsNumeric(right->type)) {
            return Status::InvalidArgument("arithmetic on non-numeric values");
          } else if (left->type == TypeId::kDouble ||
                     right->type == TypeId::kDouble) {
            t = TypeId::kDouble;
          } else if (left->type == TypeId::kNull ||
                     right->type == TypeId::kNull) {
            t = TypeId::kNull;  // parameter-dependent
          } else {
            t = TypeId::kInt64;
          }
          break;
        }
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          if (!Comparable(left->type, right->type)) {
            return Status::InvalidArgument(
                "cannot compare " + std::string(TypeName(left->type)) +
                " with " + TypeName(right->type));
          }
          t = TypeId::kBool;
          break;
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          t = TypeId::kBool;
          break;
      }
      return BExprPtr(std::make_unique<BoundBinary>(
          e.op, std::move(left), std::move(right), t));
    }
    case ExprKind::kLike: {
      const auto& e = static_cast<const LikeExpr&>(expr);
      MT_ASSIGN_OR_RETURN(BExprPtr input, BindExpr(*e.input, scope, agg));
      MT_ASSIGN_OR_RETURN(BExprPtr pattern, BindExpr(*e.pattern, scope, agg));
      return BExprPtr(std::make_unique<BoundLike>(
          std::move(input), std::move(pattern), e.negated));
    }
    case ExprKind::kIn: {
      // Lower to an OR (or AND of <>) chain.
      const auto& e = static_cast<const InExpr&>(expr);
      BExprPtr result;
      for (const auto& item : e.list) {
        MT_ASSIGN_OR_RETURN(BExprPtr input, BindExpr(*e.input, scope, agg));
        MT_ASSIGN_OR_RETURN(BExprPtr rhs, BindExpr(*item, scope, agg));
        auto cmp = std::make_unique<BoundBinary>(
            e.negated ? BinaryOp::kNe : BinaryOp::kEq, std::move(input),
            std::move(rhs), TypeId::kBool);
        if (!result) {
          result = std::move(cmp);
        } else {
          result = std::make_unique<BoundBinary>(
              e.negated ? BinaryOp::kAnd : BinaryOp::kOr, std::move(result),
              std::move(cmp), TypeId::kBool);
        }
      }
      if (!result) {
        return Status::InvalidArgument("empty IN list");
      }
      return result;
    }
    case ExprKind::kBetween: {
      // Lower to (x >= lo AND x <= hi).
      const auto& e = static_cast<const BetweenExpr&>(expr);
      MT_ASSIGN_OR_RETURN(BExprPtr in1, BindExpr(*e.input, scope, agg));
      MT_ASSIGN_OR_RETURN(BExprPtr in2, BindExpr(*e.input, scope, agg));
      MT_ASSIGN_OR_RETURN(BExprPtr lo, BindExpr(*e.lo, scope, agg));
      MT_ASSIGN_OR_RETURN(BExprPtr hi, BindExpr(*e.hi, scope, agg));
      auto ge = std::make_unique<BoundBinary>(BinaryOp::kGe, std::move(in1),
                                              std::move(lo), TypeId::kBool);
      auto le = std::make_unique<BoundBinary>(BinaryOp::kLe, std::move(in2),
                                              std::move(hi), TypeId::kBool);
      return BExprPtr(std::make_unique<BoundBinary>(
          BinaryOp::kAnd, std::move(ge), std::move(le), TypeId::kBool));
    }
    case ExprKind::kIsNull: {
      const auto& e = static_cast<const IsNullExpr&>(expr);
      MT_ASSIGN_OR_RETURN(BExprPtr input, BindExpr(*e.input, scope, agg));
      return BExprPtr(
          std::make_unique<BoundIsNull>(std::move(input), e.negated));
    }
    case ExprKind::kFunction: {
      const auto& e = static_cast<const FunctionExpr&>(expr);
      std::vector<BExprPtr> args;
      for (const auto& a : e.args) {
        MT_ASSIGN_OR_RETURN(BExprPtr bound, BindExpr(*a, scope, agg));
        args.push_back(std::move(bound));
      }
      struct FnSpec {
        const char* name;
        BuiltinFn fn;
        int min_args;
        int max_args;
        TypeId type;
      };
      static const FnSpec kFns[] = {
          {"getdate", BuiltinFn::kGetDate, 0, 0, TypeId::kInt64},
          {"abs", BuiltinFn::kAbs, 1, 1, TypeId::kNull},
          {"len", BuiltinFn::kLen, 1, 1, TypeId::kInt64},
          {"substring", BuiltinFn::kSubstring, 3, 3, TypeId::kString},
          {"round", BuiltinFn::kRound, 1, 2, TypeId::kDouble},
          {"coalesce", BuiltinFn::kCoalesce, 1, 8, TypeId::kNull},
      };
      for (const FnSpec& spec : kFns) {
        if (e.name != spec.name) continue;
        int n = static_cast<int>(args.size());
        if (n < spec.min_args || n > spec.max_args) {
          return Status::InvalidArgument("wrong argument count for " + e.name);
        }
        TypeId t = spec.type;
        if (t == TypeId::kNull && !args.empty()) t = args[0]->type;
        return BExprPtr(
            std::make_unique<BoundFunction>(spec.fn, std::move(args), t));
      }
      return Status::InvalidArgument("unknown function: " + e.name);
    }
    case ExprKind::kCase: {
      const auto& e = static_cast<const CaseExpr&>(expr);
      std::vector<std::pair<BExprPtr, BExprPtr>> branches;
      TypeId t = TypeId::kNull;
      for (const auto& [when, then] : e.branches) {
        BExprPtr cond;
        if (e.operand != nullptr) {
          // Simple CASE lowers to `operand = when`.
          MT_ASSIGN_OR_RETURN(BExprPtr lhs, BindExpr(*e.operand, scope, agg));
          MT_ASSIGN_OR_RETURN(BExprPtr rhs, BindExpr(*when, scope, agg));
          if (!Comparable(lhs->type, rhs->type)) {
            return Status::InvalidArgument("CASE operand/WHEN type mismatch");
          }
          cond = std::make_unique<BoundBinary>(BinaryOp::kEq, std::move(lhs),
                                               std::move(rhs), TypeId::kBool);
        } else {
          MT_ASSIGN_OR_RETURN(cond, BindExpr(*when, scope, agg));
        }
        MT_ASSIGN_OR_RETURN(BExprPtr result, BindExpr(*then, scope, agg));
        if (t == TypeId::kNull) t = result->type;
        branches.emplace_back(std::move(cond), std::move(result));
      }
      BExprPtr else_bound;
      if (e.else_expr != nullptr) {
        MT_ASSIGN_OR_RETURN(else_bound, BindExpr(*e.else_expr, scope, agg));
        if (t == TypeId::kNull) t = else_bound->type;
      }
      return BExprPtr(std::make_unique<BoundCase>(
          std::move(branches), std::move(else_bound), t));
    }
    case ExprKind::kAggregate:
      return Status::InvalidArgument(
          "aggregate not allowed in this context");
  }
  return Status::Internal("unhandled expression kind");
}

StatusOr<BExprPtr> Binder::BindScalar(const Expr& expr) {
  Schema empty;
  AggState none;
  return BindExpr(expr, empty, &none);
}

StatusOr<LogicalPtr> Binder::BindTableRef(const TableRef& ref) {
  if (ref.derived != nullptr) {
    MT_ASSIGN_OR_RETURN(LogicalPtr plan, BindSelect(*ref.derived));
    // Re-qualify the derived table's output columns with its alias.
    Schema requalified;
    for (const ColumnInfo& col : plan->schema.columns()) {
      ColumnInfo copy = col;
      copy.table = ref.alias;
      requalified.AddColumn(std::move(copy));
    }
    plan->schema = std::move(requalified);
    return plan;
  }
  // `sys` is a reserved qualifier, not a linked server: sys.dm_* resolve to
  // the server's virtual DMV tables and plan as ordinary local scans.
  if (ref.server == "sys") {
    if (virtual_resolver_ == nullptr) {
      return Status::InvalidArgument(
          "no DMVs available in this binding context");
    }
    const TableDef* def = virtual_resolver_(ref.name);
    if (def == nullptr) {
      return Status::NotFound("unknown DMV: sys." + ref.name);
    }
    auto get = std::make_unique<LogicalGet>();
    get->table = def->name;  // full dotted name, e.g. "sys.dm_plan_cache"
    get->alias = ref.alias.empty() ? ref.name : ref.alias;
    get->server = "";  // DMVs are always local: never shipped remotely
    get->def = def;
    for (const ColumnInfo& col : def->schema.columns()) {
      ColumnInfo copy = col;
      copy.table = get->alias;
      get->schema.AddColumn(std::move(copy));
    }
    return LogicalPtr(std::move(get));
  }
  Catalog* catalog = catalog_;
  if (!ref.server.empty()) {
    if (resolver_ == nullptr) {
      return Status::InvalidArgument("unknown linked server: " + ref.server);
    }
    catalog = resolver_(ref.server);
    if (catalog == nullptr) {
      return Status::InvalidArgument("unknown linked server: " + ref.server);
    }
  }
  TableDef* def = catalog->GetTable(ref.name);
  if (def == nullptr) {
    return Status::NotFound("table not found: " + ref.name);
  }
  MT_RETURN_IF_ERROR(CheckPrivilege(*def, Privilege::kSelect));
  auto get = std::make_unique<LogicalGet>();
  get->table = ref.name;
  get->alias = ref.alias.empty() ? ref.name : ref.alias;
  get->server = ref.server;
  get->def = def;
  for (const ColumnInfo& col : def->schema.columns()) {
    ColumnInfo copy = col;
    copy.table = get->alias;
    get->schema.AddColumn(std::move(copy));
  }
  return LogicalPtr(std::move(get));
}

StatusOr<LogicalPtr> Binder::BindSelect(const SelectStmt& stmt) {
  // ---- FROM ----
  LogicalPtr plan;
  if (stmt.from.empty()) {
    // Row-free SELECT (e.g. SELECT GETDATE()): single-row dual source.
    auto dual = std::make_unique<LogicalGet>();
    dual->table = "";  // dual
    plan = std::move(dual);
  } else {
    MT_ASSIGN_OR_RETURN(plan, BindTableRef(stmt.from[0]));
    for (size_t i = 1; i < stmt.from.size(); ++i) {
      MT_ASSIGN_OR_RETURN(LogicalPtr right, BindTableRef(stmt.from[i]));
      auto join = std::make_unique<LogicalJoin>();
      join->join_kind = JoinKind::kInner;
      join->schema = Schema::Concat(plan->schema, right->schema);
      join->children.push_back(std::move(plan));
      join->children.push_back(std::move(right));
      plan = std::move(join);
    }
    for (const JoinClause& jc : stmt.joins) {
      MT_ASSIGN_OR_RETURN(LogicalPtr right, BindTableRef(jc.table));
      Schema combined = Schema::Concat(plan->schema, right->schema);
      auto join = std::make_unique<LogicalJoin>();
      join->join_kind = jc.kind;
      if (jc.on != nullptr) {
        AggState none;
        MT_ASSIGN_OR_RETURN(join->condition, BindExpr(*jc.on, combined, &none));
      }
      join->schema = combined;
      join->children.push_back(std::move(plan));
      join->children.push_back(std::move(right));
      plan = std::move(join);
    }
  }

  // ---- WHERE ----
  if (stmt.where != nullptr) {
    if (HasAggregate(*stmt.where)) {
      return Status::InvalidArgument("aggregates are not allowed in WHERE");
    }
    AggState none;
    MT_ASSIGN_OR_RETURN(BExprPtr pred, BindExpr(*stmt.where, plan->schema, &none));
    auto filter = std::make_unique<LogicalFilter>();
    filter->predicate = std::move(pred);
    filter->schema = plan->schema;
    filter->children.push_back(std::move(plan));
    plan = std::move(filter);
  }

  // ---- Aggregation ----
  bool has_agg = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (item.expr != nullptr && HasAggregate(*item.expr)) has_agg = true;
  }
  if (stmt.having != nullptr) has_agg = true;

  Schema input_scope = plan->schema;  // scope below aggregation
  std::vector<BExprPtr> group_by;
  std::vector<AggItem> aggs;
  AggState agg_state;

  if (has_agg) {
    for (const auto& g : stmt.group_by) {
      AggState none;
      MT_ASSIGN_OR_RETURN(BExprPtr bound, BindExpr(*g, input_scope, &none));
      if (bound->kind != BoundExprKind::kColumnRef) {
        return Status::NotImplemented("GROUP BY items must be columns");
      }
      group_by.push_back(std::move(bound));
    }
    agg_state.group_by = &group_by;
    agg_state.aggs = &aggs;
    agg_state.num_groups = static_cast<int>(group_by.size());
    agg_state.active = true;
  }

  // ---- Select list ----
  std::vector<BExprPtr> proj_exprs;
  Schema proj_schema;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      if (has_agg) {
        return Status::InvalidArgument("* not allowed with GROUP BY");
      }
      for (int i = 0; i < input_scope.num_columns(); ++i) {
        const ColumnInfo& col = input_scope.column(i);
        if (!item.star_qualifier.empty() && col.table != item.star_qualifier) {
          continue;
        }
        std::string name =
            col.table.empty() ? col.name : col.table + "." + col.name;
        proj_exprs.push_back(
            std::make_unique<BoundColumnRef>(i, col.type, name));
        proj_schema.AddColumn(col);
      }
      continue;
    }
    MT_ASSIGN_OR_RETURN(BExprPtr bound,
                        BindExpr(*item.expr, input_scope, &agg_state));
    std::string out_name = item.alias;
    if (out_name.empty()) {
      if (item.expr->kind == ExprKind::kColumnRef) {
        out_name = static_cast<const ColumnRefExpr&>(*item.expr).column;
      } else {
        out_name = "col" + std::to_string(proj_schema.num_columns());
      }
    }
    ColumnInfo info;
    info.name = out_name;
    info.type = bound->type;
    proj_schema.AddColumn(std::move(info));
    proj_exprs.push_back(std::move(bound));
  }

  // ---- HAVING ----
  BExprPtr having;
  if (stmt.having != nullptr) {
    MT_ASSIGN_OR_RETURN(having, BindExpr(*stmt.having, input_scope, &agg_state));
  }

  // ---- ORDER BY (bind keys before building the pipeline) ----
  // Keys are bound either over the pre-projection scope (below the Project)
  // or, if that fails, over the projection's output (above it).
  std::vector<SortKey> sort_keys;
  bool sort_above_project = false;
  if (!stmt.order_by.empty()) {
    bool all_input_ok = true;
    std::vector<SortKey> keys_input;
    for (const OrderByItem& ob : stmt.order_by) {
      auto bound = BindExpr(*ob.expr, input_scope, &agg_state);
      if (!bound.ok()) {
        all_input_ok = false;
        break;
      }
      SortKey key;
      key.expr = bound.ConsumeValue();
      key.desc = ob.desc;
      keys_input.push_back(std::move(key));
    }
    if (all_input_ok) {
      sort_keys = std::move(keys_input);
    } else {
      // Try the projection output schema (aliases).
      for (const OrderByItem& ob : stmt.order_by) {
        AggState none;
        MT_ASSIGN_OR_RETURN(BExprPtr bound,
                            BindExpr(*ob.expr, proj_schema, &none));
        SortKey key;
        key.expr = std::move(bound);
        key.desc = ob.desc;
        sort_keys.push_back(std::move(key));
      }
      sort_above_project = true;
    }
  }

  // ---- Build the upper pipeline ----
  if (has_agg) {
    auto agg = std::make_unique<LogicalAggregate>();
    Schema agg_schema;
    for (const auto& g : group_by) {
      const auto& ref = static_cast<const BoundColumnRef&>(*g);
      ColumnInfo col = input_scope.column(ref.ordinal);
      agg_schema.AddColumn(col);
    }
    for (size_t i = 0; i < aggs.size(); ++i) {
      ColumnInfo col;
      col.name = "agg" + std::to_string(i);
      TypeId t = aggs[i].func == AggFunc::kAvg ? TypeId::kDouble
                 : aggs[i].arg ? aggs[i].arg->type
                               : TypeId::kInt64;
      if (aggs[i].func == AggFunc::kCount ||
          aggs[i].func == AggFunc::kCountStar) {
        t = TypeId::kInt64;
      }
      col.type = t;
      agg_schema.AddColumn(std::move(col));
    }
    agg->group_by = std::move(group_by);
    agg->aggs = std::move(aggs);
    agg->schema = std::move(agg_schema);
    agg->children.push_back(std::move(plan));
    plan = std::move(agg);

    if (having != nullptr) {
      auto filter = std::make_unique<LogicalFilter>();
      filter->predicate = std::move(having);
      filter->schema = plan->schema;
      filter->children.push_back(std::move(plan));
      plan = std::move(filter);
    }
  }

  if (!sort_keys.empty() && !sort_above_project) {
    auto sort = std::make_unique<LogicalSort>();
    sort->keys = std::move(sort_keys);
    sort->schema = plan->schema;
    sort->children.push_back(std::move(plan));
    plan = std::move(sort);
    sort_keys.clear();
  }

  auto project = std::make_unique<LogicalProject>();
  project->exprs = std::move(proj_exprs);
  project->schema = std::move(proj_schema);
  project->children.push_back(std::move(plan));
  plan = std::move(project);

  if (stmt.distinct) {
    auto distinct = std::make_unique<LogicalDistinct>();
    distinct->schema = plan->schema;
    distinct->children.push_back(std::move(plan));
    plan = std::move(distinct);
  }

  if (!sort_keys.empty()) {  // sort_above_project
    auto sort = std::make_unique<LogicalSort>();
    sort->keys = std::move(sort_keys);
    sort->schema = plan->schema;
    sort->children.push_back(std::move(plan));
    plan = std::move(sort);
  }

  if (stmt.top >= 0) {
    auto limit = std::make_unique<LogicalLimit>();
    limit->limit = stmt.top;
    limit->schema = plan->schema;
    limit->children.push_back(std::move(plan));
    plan = std::move(limit);
  }

  // ---- UNION ALL continuation ----
  if (stmt.union_next != nullptr) {
    MT_ASSIGN_OR_RETURN(LogicalPtr next, BindSelect(*stmt.union_next));
    if (next->schema.num_columns() != plan->schema.num_columns()) {
      return Status::InvalidArgument("UNION ALL arity mismatch");
    }
    for (int i = 0; i < plan->schema.num_columns(); ++i) {
      if (!Comparable(plan->schema.column(i).type,
                      next->schema.column(i).type)) {
        return Status::InvalidArgument(
            "UNION ALL type mismatch in column " +
            plan->schema.column(i).name);
      }
    }
    auto union_all = std::make_unique<LogicalUnionAll>();
    union_all->schema = plan->schema;
    // Flatten right-nested unions into one n-ary node.
    union_all->children.push_back(std::move(plan));
    if (next->kind == LogicalKind::kUnionAll) {
      for (auto& child : next->children) {
        union_all->children.push_back(std::move(child));
      }
    } else {
      union_all->children.push_back(std::move(next));
    }
    plan = std::move(union_all);
  }

  return plan;
}

StatusOr<BoundInsert> Binder::BindInsert(const InsertStmt& stmt) {
  TableDef* def = catalog_->GetTable(stmt.table);
  if (def == nullptr) {
    return Status::NotFound("table not found: " + stmt.table);
  }
  MT_RETURN_IF_ERROR(CheckPrivilege(*def, Privilege::kInsert));
  BoundInsert out;
  out.table = def;
  if (stmt.columns.empty()) {
    for (int i = 0; i < def->schema.num_columns(); ++i) {
      out.column_ordinals.push_back(i);
    }
  } else {
    for (const std::string& col : stmt.columns) {
      int ord = def->ColumnOrdinal(col);
      if (ord < 0) {
        return Status::InvalidArgument("unknown column: " + col);
      }
      out.column_ordinals.push_back(ord);
    }
  }
  if (stmt.select != nullptr) {
    MT_ASSIGN_OR_RETURN(out.select, BindSelect(*stmt.select));
    if (out.select->schema.num_columns() !=
        static_cast<int>(out.column_ordinals.size())) {
      return Status::InvalidArgument("INSERT..SELECT arity mismatch");
    }
    return out;
  }
  Schema empty;
  AggState none;
  for (const auto& row : stmt.rows) {
    if (row.size() != out.column_ordinals.size()) {
      return Status::InvalidArgument("INSERT arity mismatch");
    }
    std::vector<BExprPtr> bound_row;
    for (size_t i = 0; i < row.size(); ++i) {
      MT_ASSIGN_OR_RETURN(BExprPtr bound, BindExpr(*row[i], empty, &none));
      TypeId want = def->schema.column(out.column_ordinals[i]).type;
      if (!Comparable(bound->type, want)) {
        return Status::InvalidArgument(
            "type mismatch for column " +
            def->schema.column(out.column_ordinals[i]).name);
      }
      bound_row.push_back(std::move(bound));
    }
    out.rows.push_back(std::move(bound_row));
  }
  return out;
}

StatusOr<BoundUpdate> Binder::BindUpdate(const UpdateStmt& stmt) {
  TableDef* def = catalog_->GetTable(stmt.table);
  if (def == nullptr) {
    return Status::NotFound("table not found: " + stmt.table);
  }
  MT_RETURN_IF_ERROR(CheckPrivilege(*def, Privilege::kUpdate));
  BoundUpdate out;
  out.table = def;
  Schema scope;
  for (const ColumnInfo& col : def->schema.columns()) {
    ColumnInfo copy = col;
    copy.table = def->name;
    scope.AddColumn(std::move(copy));
  }
  AggState none;
  for (const auto& [col, expr] : stmt.sets) {
    int ord = def->ColumnOrdinal(col);
    if (ord < 0) {
      return Status::InvalidArgument("unknown column: " + col);
    }
    MT_ASSIGN_OR_RETURN(BExprPtr bound, BindExpr(*expr, scope, &none));
    if (!Comparable(bound->type, def->schema.column(ord).type)) {
      return Status::InvalidArgument("type mismatch for column " + col);
    }
    out.sets.emplace_back(ord, std::move(bound));
  }
  if (stmt.where != nullptr) {
    MT_ASSIGN_OR_RETURN(out.where, BindExpr(*stmt.where, scope, &none));
  }
  return out;
}

StatusOr<BoundDelete> Binder::BindDelete(const DeleteStmt& stmt) {
  TableDef* def = catalog_->GetTable(stmt.table);
  if (def == nullptr) {
    return Status::NotFound("table not found: " + stmt.table);
  }
  MT_RETURN_IF_ERROR(CheckPrivilege(*def, Privilege::kDelete));
  BoundDelete out;
  out.table = def;
  if (stmt.where != nullptr) {
    Schema scope;
    for (const ColumnInfo& col : def->schema.columns()) {
      ColumnInfo copy = col;
      copy.table = def->name;
      scope.AddColumn(std::move(copy));
    }
    AggState none;
    MT_ASSIGN_OR_RETURN(out.where, BindExpr(*stmt.where, scope, &none));
  }
  return out;
}

}  // namespace mtcache
