#include "repl/fault.h"

namespace mtcache {

const char* FaultSiteName(FaultSite site) {
  switch (site) {
    case FaultSite::kLogReadStall:
      return "log_read_stall";
    case FaultSite::kLogReadRecord:
      return "log_read_record";
    case FaultSite::kDistributeTxn:
      return "distribute_txn";
    case FaultSite::kDeliverTxn:
      return "deliver_txn";
    case FaultSite::kApplyChange:
      return "apply_change";
    case FaultSite::kApplyCommit:
      return "apply_commit";
    case FaultSite::kSnapshotRow:
      return "snapshot_row";
  }
  return "unknown";
}

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kNone:
      return "none";
    case FaultAction::kCrash:
      return "crash";
    case FaultAction::kDrop:
      return "drop";
    case FaultAction::kDelay:
      return "delay";
  }
  return "unknown";
}

void FaultPlan::AddRule(FaultSite site, FaultAction action, int64_t nth,
                        int64_t count) {
  Rule rule;
  rule.site = site;
  rule.action = action;
  rule.nth = nth;
  rule.count = count;
  rules_.push_back(rule);
}

void FaultPlan::AddRandomRule(FaultSite site, FaultAction action, double p) {
  Rule rule;
  rule.site = site;
  rule.action = action;
  rule.probability = p;
  rules_.push_back(rule);
}

FaultAction FaultPlan::Decide(FaultSite site) {
  int64_t visit = ++visits_[site];
  if (!enabled_) return FaultAction::kNone;
  for (const Rule& rule : rules_) {
    if (rule.site != site) continue;
    bool fire = false;
    if (rule.nth > 0) {
      fire = visit >= rule.nth && visit < rule.nth + rule.count;
    } else if (rule.probability > 0) {
      fire = rng_.Bernoulli(rule.probability);
    }
    if (fire) {
      ++injected_[site];
      ++total_injected_;
      return rule.action;
    }
  }
  return FaultAction::kNone;
}

int64_t FaultPlan::visits(FaultSite site) const {
  auto it = visits_.find(site);
  return it == visits_.end() ? 0 : it->second;
}

int64_t FaultPlan::injected(FaultSite site) const {
  auto it = injected_.find(site);
  return it == injected_.end() ? 0 : it->second;
}

std::string FaultPlan::ToString() const {
  std::string out = "FaultPlan{";
  for (const Rule& rule : rules_) {
    out += "\n  ";
    out += FaultSiteName(rule.site);
    out += " -> ";
    out += FaultActionName(rule.action);
    if (rule.nth > 0) {
      out += " @visit " + std::to_string(rule.nth);
      if (rule.count != 1) out += "+" + std::to_string(rule.count);
    } else {
      out += " p=" + std::to_string(rule.probability);
    }
  }
  for (const auto& [site, visits] : visits_) {
    out += "\n  " + std::string(FaultSiteName(site)) + ": " +
           std::to_string(visits) + " visits, " +
           std::to_string(injected(site)) + " injected";
  }
  out += "\n}";
  return out;
}

LogManager::ReadFaultHook MakeLogReadStallHook(FaultPlan* plan) {
  return [plan](Lsn) {
    return plan->Decide(FaultSite::kLogReadStall) != FaultAction::kNone;
  };
}

}  // namespace mtcache
