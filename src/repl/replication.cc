#include "repl/replication.h"

#include <mutex>
#include <shared_mutex>
#include <utility>

#include "common/trace.h"
#include "common/wait_stats.h"
#include "opt/cost_model.h"

namespace mtcache {

void ReplicationSystem::AddPublisher(Server* publisher) {
  if (publishers_.count(publisher) > 0) return;
  PublisherState state;
  state.server = publisher;
  state.next_lsn = publisher->db().log().next_lsn();
  publishers_[publisher] = std::move(state);
}

StatusOr<int64_t> ReplicationSystem::Subscribe(Server* publisher,
                                               const Article& article,
                                               Server* subscriber,
                                               const std::string& target_table) {
  AddPublisher(publisher);
  const TableDef* base =
      publisher->db().catalog().GetTable(article.def.base_table);
  if (base == nullptr) {
    return Status::NotFound("published table not found: " +
                            article.def.base_table);
  }
  for (const std::string& col : article.def.columns) {
    if (base->ColumnOrdinal(col) < 0) {
      return Status::InvalidArgument("article column not in table: " + col);
    }
  }
  if (subscriber->db().GetStoredTable(target_table) == nullptr) {
    return Status::NotFound("subscription target table not found: " +
                            target_table);
  }
  auto sub = std::make_unique<Subscription>();
  sub->id = next_subscription_id_++;
  sub->publisher = publisher;
  sub->article = article;
  sub->subscriber = subscriber;
  sub->target_table = target_table;
  sub->start_lsn = publisher->db().log().next_lsn();
  int64_t id = sub->id;
  subscriptions_[id] = std::move(sub);
  return id;
}

Status ReplicationSystem::Unsubscribe(int64_t subscription_id) {
  if (subscriptions_.erase(subscription_id) == 0) {
    return Status::NotFound("unknown subscription");
  }
  return Status::Ok();
}

Status ReplicationSystem::Crash(const std::string& what) {
  ++metrics_.crashes_injected;
  return Status::Unavailable("injected crash: " + what);
}

void ReplicationSystem::RecordFailure(Subscription* sub) {
  ++sub->consecutive_failures;
  int shift = sub->consecutive_failures - 1;
  if (shift > 16) shift = 16;
  double backoff = backoff_base_ * static_cast<double>(int64_t{1} << shift);
  if (backoff > backoff_max_) backoff = backoff_max_;
  double now = clock_ != nullptr ? clock_->Now() : 0.0;
  sub->retry_after = now + backoff;
}

Status ReplicationSystem::RunLogReader(Server* publisher,
                                       ExecStats* publisher_stats) {
  if (!log_reader_enabled_) return Status::Ok();
  // Pipeline stage 1+2 span: WAL pickup and per-commit distribution. The
  // distributor runs inline here (the kCommit case), so its repl.distribute
  // spans nest under this one through the thread-local span stack.
  SpanScope span("repl.log_reader", TraceRecorder::Global().enabled()
                                        ? publisher->name()
                                        : std::string());
  auto it = publishers_.find(publisher);
  if (it == publishers_.end()) {
    return Status::NotFound("server is not a registered publisher");
  }
  PublisherState& state = it->second;
  std::vector<LogRecord> records;
  Lsn scanned_to = publisher->db().log().ReadFrom(state.next_lsn, &records);

  // The scan runs against shadow state: a copy of the open-transaction map
  // and a staging area for distributed txns. Only a fully successful pass
  // commits them (plus the read position, metrics, and log truncation), so
  // an injected crash anywhere below leaves the durable state exactly as it
  // was and the restarted reader re-runs the batch from the same LSN —
  // transactions are distributed exactly once.
  std::map<TxnId, std::vector<LogRecord>> open_txns = state.open_txns;
  std::vector<std::pair<Subscription*, PendingTxn>> staged;
  int64_t records_scanned = 0;
  int64_t changes_enqueued = 0;
  double publisher_cost = 0;

  for (LogRecord& rec : records) {
    if (Decide(FaultSite::kLogReadRecord) == FaultAction::kCrash) {
      return Crash("log reader died at lsn " + std::to_string(rec.lsn) +
                   " on " + publisher->name());
    }
    ++records_scanned;
    publisher_cost += CostModel::kLogReadRecordCost;
    switch (rec.type) {
      case LogRecordType::kBegin:
        open_txns[rec.txn];  // start accumulating
        break;
      case LogRecordType::kInsert:
      case LogRecordType::kDelete:
      case LogRecordType::kUpdate:
        open_txns[rec.txn].push_back(std::move(rec));
        break;
      case LogRecordType::kAbort:
        open_txns.erase(rec.txn);
        break;
      case LogRecordType::kCommit: {
        auto txn_it = open_txns.find(rec.txn);
        if (txn_it == open_txns.end()) break;
        std::vector<LogRecord> changes = std::move(txn_it->second);
        open_txns.erase(txn_it);
        if (Decide(FaultSite::kDistributeTxn) == FaultAction::kCrash) {
          return Crash("distributor died on txn " + std::to_string(rec.txn));
        }
        SpanScope distribute_span(
            "repl.distribute", TraceRecorder::Global().enabled()
                                   ? "txn " + std::to_string(rec.txn)
                                   : std::string());
        // Filter and project per subscription (the distributor's job).
        for (auto& [id, sub] : subscriptions_) {
          if (sub->publisher != publisher) continue;
          const SelectProjectDef& def = sub->article.def;
          const TableDef* base =
              publisher->db().catalog().GetTable(def.base_table);
          if (base == nullptr) continue;
          std::vector<int> pred_cols;
          for (const SimplePredicate& pred : def.predicates) {
            pred_cols.push_back(base->ColumnOrdinal(pred.column));
          }
          auto project = [&](const Row& row) {
            Row out;
            for (const std::string& col : def.columns) {
              out.push_back(row[base->ColumnOrdinal(col)]);
            }
            return out;
          };
          PendingTxn pending;
          pending.source_txn = rec.txn;
          pending.commit_time = rec.commit_time;
          for (const LogRecord& change : changes) {
            if (change.table != def.base_table) continue;
            // Changes predating the subscription's snapshot are already in
            // the initial copy.
            if (change.lsn < sub->start_lsn) continue;
            bool before_in = change.type != LogRecordType::kInsert &&
                             def.RowMatches(pred_cols, change.before);
            bool after_in = change.type != LogRecordType::kDelete &&
                            def.RowMatches(pred_cols, change.after);
            ReplChange out;
            if (!before_in && after_in) {
              out.op = LogRecordType::kInsert;
              out.after = project(change.after);
            } else if (before_in && !after_in) {
              out.op = LogRecordType::kDelete;
              out.before = project(change.before);
            } else if (before_in && after_in) {
              out.op = LogRecordType::kUpdate;
              out.before = project(change.before);
              out.after = project(change.after);
            } else {
              continue;  // change entirely outside the article
            }
            pending.changes.push_back(std::move(out));
            ++changes_enqueued;
            publisher_cost += CostModel::kDistributeRecordCost;
          }
          if (!pending.changes.empty()) {
            staged.emplace_back(sub.get(), std::move(pending));
          }
        }
        break;
      }
    }
  }

  // Commit the scan: queues first (the distribution database), then the
  // reader's durable position and the accounting.
  for (auto& [sub, pending] : staged) {
    sub->enqueued_history.push_back(pending.source_txn);
    sub->queue.push_back(std::move(pending));
  }
  state.open_txns = std::move(open_txns);
  state.next_lsn = scanned_to;
  metrics_.records_scanned += records_scanned;
  metrics_.changes_enqueued += changes_enqueued;
  if (publisher_stats != nullptr) {
    publisher_stats->local_cost += publisher_cost;
  }

  // Processed records are no longer needed: "once changes have been
  // propagated to all subscribers, they are deleted" — here the distribution
  // database owns them, so the publisher log can truncate.
  if (state.open_txns.empty()) {
    publisher->db().log().TruncateBefore(state.next_lsn);
    if (state.next_lsn == publisher->db().log().next_lsn()) {
      state.last_scan_time = clock_ != nullptr ? clock_->Now() : 0.0;
    }
  }
  return Status::Ok();
}

Status ReplicationSystem::ApplyTxn(Subscription* sub, const PendingTxn& txn,
                                   ExecStats* stats) {
  // Pipeline stage 3 span: subscriber apply of one source transaction.
  SpanScope span("repl.apply",
                 TraceRecorder::Global().enabled()
                     ? sub->target_table + " txn " +
                           std::to_string(txn.source_txn)
                     : std::string());
  Database& db = sub->subscriber->db();
  StoredTable* table = db.GetStoredTable(sub->target_table);
  if (table == nullptr) {
    return Status::NotFound("subscription target table vanished: " +
                            sub->target_table);
  }
  const TableDef& def = table->def();

  // Locate a target row by primary key values extracted from an image.
  auto key_of = [&](const Row& image) {
    Row key;
    for (int ord : def.primary_key) key.push_back(image[ord]);
    return key;
  };
  auto find_row = [&](const Row& image) -> RowId {
    if (def.indexes.empty() || def.primary_key.empty()) return -1;
    Row key = key_of(image);
    // Shared latch: sessions may be scanning the cached view while the
    // distribution agent applies changes from the replication thread.
    SharedLatchWait latch(table->latch(), WaitSite::kTableLatchShared);
    for (auto it = table->index(0).SeekGe(key);
         it.Valid() && BPlusTree::ComparePrefix(it.key(), key) == 0;
         it.Next()) {
      if (table->heap().IsLive(it.rowid())) return it.rowid();
    }
    return -1;
  };

  auto local_txn = db.txn_manager().Begin();
  Status status = Status::Ok();
  int64_t applied_changes = 0;
  for (const ReplChange& change : txn.changes) {
    if (Decide(FaultSite::kApplyChange) == FaultAction::kCrash) {
      // The subscriber dies mid-apply: its local transaction rolls back, so
      // no partial txn is ever visible, and the delivery is retried.
      db.txn_manager().Abort(local_txn.get());
      return Crash("subscriber died applying txn " +
                   std::to_string(txn.source_txn) + " into " +
                   sub->target_table);
    }
    if (stats != nullptr) {
      stats->local_cost += CostModel::kApplyRecordCost +
                           def.indexes.size() * CostModel::kIndexMaintRowCost;
    }
    switch (change.op) {
      case LogRecordType::kInsert: {
        auto inserted = table->Insert(change.after, local_txn.get());
        status = inserted.status();
        break;
      }
      case LogRecordType::kDelete: {
        RowId rid = find_row(change.before);
        if (rid >= 0) status = table->Delete(rid, local_txn.get());
        break;
      }
      case LogRecordType::kUpdate: {
        RowId rid = find_row(change.before);
        if (rid >= 0) {
          status = table->Update(rid, change.after, local_txn.get());
        } else {
          auto inserted = table->Insert(change.after, local_txn.get());
          status = inserted.status();
        }
        break;
      }
      default:
        break;
    }
    if (!status.ok()) break;
    ++applied_changes;
  }
  if (!status.ok()) {
    db.txn_manager().Abort(local_txn.get());
    return status;
  }
  double now = clock_ != nullptr ? clock_->Now() : 0.0;
  db.txn_manager().Commit(local_txn.get(), now);
  // The applied marker is recorded together with the commit (in a real
  // subscriber it lives in the same database), so redelivery after a crash
  // in the ack window below is detected and skipped — exactly-once apply.
  sub->last_applied_txn = txn.source_txn;
  sub->applied_history.push_back(txn.source_txn);
  metrics_.changes_applied += applied_changes;
  ++metrics_.txns_applied;
  double latency = now - txn.commit_time;
  if (latency >= 0) {
    metrics_.latency_sum += latency;
    metrics_.latency_max.UpdateMax(latency);
    ++metrics_.latency_count;
    metrics_.lag_histogram.Record(latency);
  }
  if (Decide(FaultSite::kApplyCommit) == FaultAction::kCrash) {
    // Crash after the local commit but before the delivery is acked: the
    // txn stays queued and will be redelivered, hitting the dedup above.
    return Crash("subscriber died after committing txn " +
                 std::to_string(txn.source_txn) + ", before ack");
  }
  return Status::Ok();
}

Status ReplicationSystem::RunDistributionAgent(Server* subscriber,
                                               ExecStats* subscriber_stats) {
  double now = clock_ != nullptr ? clock_->Now() : 0.0;
  for (auto& [id, sub] : subscriptions_) {
    if (sub->subscriber != subscriber) continue;
    if (sub->retry_after > now) continue;  // backing off after a failure
    while (!sub->queue.empty()) {
      PendingTxn& txn = sub->queue.front();
      // Redelivery of a transaction whose apply already committed (the
      // agent crashed in the ack window): ack it without re-applying.
      if (txn.source_txn == sub->last_applied_txn) {
        ++metrics_.txns_retried;
        sub->queue.pop_front();
        continue;
      }
      FaultAction delivery = Decide(FaultSite::kDeliverTxn);
      if (delivery == FaultAction::kDrop) {
        // Lost in transit. The distribution database still holds it, so it
        // is redelivered after a backoff.
        ++metrics_.deliveries_dropped;
        RecordFailure(sub.get());
        break;
      }
      if (delivery == FaultAction::kDelay) break;  // stalls; next poll
      if (delivery == FaultAction::kCrash) {
        RecordFailure(sub.get());
        return Crash("distribution agent died delivering to " +
                     subscriber->name());
      }
      if (txn.attempts > 0) ++metrics_.txns_retried;
      ++txn.attempts;
      Status applied = ApplyTxn(sub.get(), txn, subscriber_stats);
      if (!applied.ok()) {
        RecordFailure(sub.get());
        return applied;
      }
      sub->queue.pop_front();
      sub->consecutive_failures = 0;
      sub->retry_after = 0;
    }
    if (!sub->queue.empty()) continue;
    // Queue drained: the replica is current as of the publisher's last
    // fully-processed log position (freshness bookkeeping, §7 extension).
    auto pub = publishers_.find(sub->publisher);
    if (pub != publishers_.end()) {
      TableDef* target =
          subscriber->db().catalog().GetTable(sub->target_table);
      if (target != nullptr) {
        target->freshness_time.UpdateMax(pub->second.last_scan_time);
      }
    }
  }
  return Status::Ok();
}

Status ReplicationSystem::RunOnce(ExecStats* publisher_stats,
                                  ExecStats* subscriber_stats) {
  for (auto& [server, state] : publishers_) {
    MT_RETURN_IF_ERROR(RunLogReader(server, publisher_stats));
  }
  // Collect distinct subscribers.
  std::vector<Server*> subscribers;
  for (auto& [id, sub] : subscriptions_) {
    bool seen = false;
    for (Server* s : subscribers) {
      if (s == sub->subscriber) seen = true;
    }
    if (!seen) subscribers.push_back(sub->subscriber);
  }
  for (Server* s : subscribers) {
    MT_RETURN_IF_ERROR(RunDistributionAgent(s, subscriber_stats));
  }
  return Status::Ok();
}

int64_t ReplicationSystem::PendingChanges() const {
  int64_t total = 0;
  for (const auto& [id, sub] : subscriptions_) {
    for (const PendingTxn& txn : sub->queue) {
      total += static_cast<int64_t>(txn.changes.size());
    }
  }
  return total;
}

bool ReplicationSystem::Quiesced() const {
  for (const auto& [id, sub] : subscriptions_) {
    if (!sub->queue.empty()) return false;
  }
  for (const auto& [server, state] : publishers_) {
    if (!state.open_txns.empty()) return false;
    if (state.next_lsn != server->db().log().next_lsn()) return false;
  }
  return true;
}

std::vector<SubscriptionInfo> ReplicationSystem::DescribeSubscriptions() const {
  std::vector<SubscriptionInfo> out;
  for (const auto& [id, sub] : subscriptions_) {
    SubscriptionInfo info;
    info.id = sub->id;
    info.publisher = sub->publisher;
    info.subscriber = sub->subscriber;
    info.def = sub->article.def;
    info.target_table = sub->target_table;
    info.queued_txns = static_cast<int64_t>(sub->queue.size());
    info.enqueued_txns = sub->enqueued_history;
    info.applied_txns = sub->applied_history;
    out.push_back(std::move(info));
  }
  return out;
}

}  // namespace mtcache
