#include "repl/replication.h"

#include "opt/cost_model.h"

namespace mtcache {

void ReplicationSystem::AddPublisher(Server* publisher) {
  if (publishers_.count(publisher) > 0) return;
  PublisherState state;
  state.server = publisher;
  state.next_lsn = publisher->db().log().next_lsn();
  publishers_[publisher] = std::move(state);
}

StatusOr<int64_t> ReplicationSystem::Subscribe(Server* publisher,
                                               const Article& article,
                                               Server* subscriber,
                                               const std::string& target_table) {
  AddPublisher(publisher);
  const TableDef* base =
      publisher->db().catalog().GetTable(article.def.base_table);
  if (base == nullptr) {
    return Status::NotFound("published table not found: " +
                            article.def.base_table);
  }
  for (const std::string& col : article.def.columns) {
    if (base->ColumnOrdinal(col) < 0) {
      return Status::InvalidArgument("article column not in table: " + col);
    }
  }
  if (subscriber->db().GetStoredTable(target_table) == nullptr) {
    return Status::NotFound("subscription target table not found: " +
                            target_table);
  }
  auto sub = std::make_unique<Subscription>();
  sub->id = next_subscription_id_++;
  sub->publisher = publisher;
  sub->article = article;
  sub->subscriber = subscriber;
  sub->target_table = target_table;
  sub->start_lsn = publisher->db().log().next_lsn();
  int64_t id = sub->id;
  subscriptions_[id] = std::move(sub);
  return id;
}

Status ReplicationSystem::Unsubscribe(int64_t subscription_id) {
  if (subscriptions_.erase(subscription_id) == 0) {
    return Status::NotFound("unknown subscription");
  }
  return Status::Ok();
}

Status ReplicationSystem::RunLogReader(Server* publisher,
                                       ExecStats* publisher_stats) {
  if (!log_reader_enabled_) return Status::Ok();
  auto it = publishers_.find(publisher);
  if (it == publishers_.end()) {
    return Status::NotFound("server is not a registered publisher");
  }
  PublisherState& state = it->second;
  std::vector<LogRecord> records;
  state.next_lsn = publisher->db().log().ReadFrom(state.next_lsn, &records);

  for (LogRecord& rec : records) {
    ++metrics_.records_scanned;
    if (publisher_stats != nullptr) {
      publisher_stats->local_cost += CostModel::kLogReadRecordCost;
    }
    switch (rec.type) {
      case LogRecordType::kBegin:
        state.open_txns[rec.txn];  // start accumulating
        break;
      case LogRecordType::kInsert:
      case LogRecordType::kDelete:
      case LogRecordType::kUpdate:
        state.open_txns[rec.txn].push_back(std::move(rec));
        break;
      case LogRecordType::kAbort:
        state.open_txns.erase(rec.txn);
        break;
      case LogRecordType::kCommit: {
        auto txn_it = state.open_txns.find(rec.txn);
        if (txn_it == state.open_txns.end()) break;
        std::vector<LogRecord> changes = std::move(txn_it->second);
        state.open_txns.erase(txn_it);
        // Filter and project per subscription (the distributor's job).
        for (auto& [id, sub] : subscriptions_) {
          if (sub->publisher != publisher) continue;
          const SelectProjectDef& def = sub->article.def;
          const TableDef* base =
              publisher->db().catalog().GetTable(def.base_table);
          if (base == nullptr) continue;
          std::vector<int> pred_cols;
          for (const SimplePredicate& pred : def.predicates) {
            pred_cols.push_back(base->ColumnOrdinal(pred.column));
          }
          auto project = [&](const Row& row) {
            Row out;
            for (const std::string& col : def.columns) {
              out.push_back(row[base->ColumnOrdinal(col)]);
            }
            return out;
          };
          PendingTxn pending;
          pending.source_txn = rec.txn;
          pending.commit_time = rec.commit_time;
          for (const LogRecord& change : changes) {
            if (change.table != def.base_table) continue;
            // Changes predating the subscription's snapshot are already in
            // the initial copy.
            if (change.lsn < sub->start_lsn) continue;
            bool before_in = change.type != LogRecordType::kInsert &&
                             def.RowMatches(pred_cols, change.before);
            bool after_in = change.type != LogRecordType::kDelete &&
                            def.RowMatches(pred_cols, change.after);
            ReplChange out;
            if (!before_in && after_in) {
              out.op = LogRecordType::kInsert;
              out.after = project(change.after);
            } else if (before_in && !after_in) {
              out.op = LogRecordType::kDelete;
              out.before = project(change.before);
            } else if (before_in && after_in) {
              out.op = LogRecordType::kUpdate;
              out.before = project(change.before);
              out.after = project(change.after);
            } else {
              continue;  // change entirely outside the article
            }
            pending.changes.push_back(std::move(out));
            ++metrics_.changes_enqueued;
            if (publisher_stats != nullptr) {
              publisher_stats->local_cost += CostModel::kDistributeRecordCost;
            }
          }
          if (!pending.changes.empty()) {
            sub->queue.push_back(std::move(pending));
          }
        }
        break;
      }
    }
  }

  // Processed records are no longer needed: "once changes have been
  // propagated to all subscribers, they are deleted" — here the distribution
  // database owns them, so the publisher log can truncate.
  if (state.open_txns.empty()) {
    publisher->db().log().TruncateBefore(state.next_lsn);
    state.last_scan_time = clock_ != nullptr ? clock_->Now() : 0.0;
  }
  return Status::Ok();
}

Status ReplicationSystem::ApplyTxn(Subscription* sub, const PendingTxn& txn,
                                   ExecStats* stats) {
  Database& db = sub->subscriber->db();
  StoredTable* table = db.GetStoredTable(sub->target_table);
  if (table == nullptr) {
    return Status::NotFound("subscription target table vanished: " +
                            sub->target_table);
  }
  const TableDef& def = table->def();

  // Locate a target row by primary key values extracted from an image.
  auto key_of = [&](const Row& image) {
    Row key;
    for (int ord : def.primary_key) key.push_back(image[ord]);
    return key;
  };
  auto find_row = [&](const Row& image) -> RowId {
    if (def.indexes.empty() || def.primary_key.empty()) return -1;
    Row key = key_of(image);
    for (auto it = table->index(0).SeekGe(key);
         it.Valid() && BPlusTree::ComparePrefix(it.key(), key) == 0;
         it.Next()) {
      if (table->heap().IsLive(it.rowid())) return it.rowid();
    }
    return -1;
  };

  auto local_txn = db.txn_manager().Begin();
  Status status = Status::Ok();
  for (const ReplChange& change : txn.changes) {
    if (stats != nullptr) {
      stats->local_cost += CostModel::kApplyRecordCost +
                           def.indexes.size() * CostModel::kIndexMaintRowCost;
    }
    switch (change.op) {
      case LogRecordType::kInsert: {
        auto inserted = table->Insert(change.after, local_txn.get());
        status = inserted.status();
        break;
      }
      case LogRecordType::kDelete: {
        RowId rid = find_row(change.before);
        if (rid >= 0) status = table->Delete(rid, local_txn.get());
        break;
      }
      case LogRecordType::kUpdate: {
        RowId rid = find_row(change.before);
        if (rid >= 0) {
          status = table->Update(rid, change.after, local_txn.get());
        } else {
          auto inserted = table->Insert(change.after, local_txn.get());
          status = inserted.status();
        }
        break;
      }
      default:
        break;
    }
    if (!status.ok()) break;
    ++metrics_.changes_applied;
  }
  if (!status.ok()) {
    db.txn_manager().Abort(local_txn.get());
    return status;
  }
  double now = clock_ != nullptr ? clock_->Now() : 0.0;
  db.txn_manager().Commit(local_txn.get(), now);
  ++metrics_.txns_applied;
  double latency = now - txn.commit_time;
  if (latency >= 0) {
    metrics_.latency_sum += latency;
    metrics_.latency_max = std::max(metrics_.latency_max, latency);
    ++metrics_.latency_count;
  }
  return Status::Ok();
}

Status ReplicationSystem::RunDistributionAgent(Server* subscriber,
                                               ExecStats* subscriber_stats) {
  for (auto& [id, sub] : subscriptions_) {
    if (sub->subscriber != subscriber) continue;
    while (!sub->queue.empty()) {
      MT_RETURN_IF_ERROR(ApplyTxn(sub.get(), sub->queue.front(),
                                  subscriber_stats));
      sub->queue.pop_front();
    }
    // Queue drained: the replica is current as of the publisher's last
    // fully-processed log position (freshness bookkeeping, §7 extension).
    auto pub = publishers_.find(sub->publisher);
    if (pub != publishers_.end()) {
      TableDef* target =
          subscriber->db().catalog().GetTable(sub->target_table);
      if (target != nullptr) {
        target->freshness_time =
            std::max(target->freshness_time, pub->second.last_scan_time);
      }
    }
  }
  return Status::Ok();
}

Status ReplicationSystem::RunOnce(ExecStats* publisher_stats,
                                  ExecStats* subscriber_stats) {
  for (auto& [server, state] : publishers_) {
    MT_RETURN_IF_ERROR(RunLogReader(server, publisher_stats));
  }
  // Collect distinct subscribers.
  std::vector<Server*> subscribers;
  for (auto& [id, sub] : subscriptions_) {
    bool seen = false;
    for (Server* s : subscribers) {
      if (s == sub->subscriber) seen = true;
    }
    if (!seen) subscribers.push_back(sub->subscriber);
  }
  for (Server* s : subscribers) {
    MT_RETURN_IF_ERROR(RunDistributionAgent(s, subscriber_stats));
  }
  return Status::Ok();
}

int64_t ReplicationSystem::PendingChanges() const {
  int64_t total = 0;
  for (const auto& [id, sub] : subscriptions_) {
    for (const PendingTxn& txn : sub->queue) {
      total += static_cast<int64_t>(txn.changes.size());
    }
  }
  return total;
}

}  // namespace mtcache
