#ifndef MTCACHE_REPL_REPLICATION_H_
#define MTCACHE_REPL_REPLICATION_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/view_def.h"
#include "common/sim_clock.h"
#include "engine/server.h"

namespace mtcache {

/// A replication article: a select-project expression over a published table
/// (§2.2: "an article may contain only a subset of the columns and rows of
/// the underlying table or materialized view").
struct Article {
  std::string name;
  SelectProjectDef def;
};

/// A publication groups articles on one publisher.
struct Publication {
  std::string name;
  std::vector<Article> articles;
};

/// One filtered/projected change bound for a subscriber.
struct ReplChange {
  LogRecordType op = LogRecordType::kInsert;  // insert/delete/update
  Row before;  // projected to article columns (delete/update)
  Row after;   // projected to article columns (insert/update)
};

/// A committed source transaction's changes for one subscription. Changes
/// propagate "one complete (committed) transaction at a time in commit
/// order", so subscribers always see transactionally consistent states.
struct PendingTxn {
  TxnId source_txn = 0;
  double commit_time = 0;
  std::vector<ReplChange> changes;
};

struct ReplicationMetrics {
  int64_t records_scanned = 0;     // log reader work
  int64_t changes_enqueued = 0;    // distributor work
  int64_t changes_applied = 0;     // subscriber work
  int64_t txns_applied = 0;
  double latency_sum = 0;          // commit-to-commit, seconds
  double latency_max = 0;
  int64_t latency_count = 0;

  double AvgLatency() const {
    return latency_count > 0 ? latency_sum / latency_count : 0.0;
  }
};

/// The replication pipeline: publishers' log readers, the distribution
/// database, and push distribution agents. All components are polled
/// explicitly (by tests, examples, or the multi-server simulation), never by
/// background threads, so every run is deterministic.
class ReplicationSystem {
 public:
  explicit ReplicationSystem(SimClock* clock) : clock_(clock) {}

  /// Registers a publisher. Log reading starts at the *current* end of its
  /// log: pre-existing data must be carried over by a snapshot (the cached
  /// view manager does this before subscribing).
  void AddPublisher(Server* publisher);

  /// Creates a publication implicitly (one article) and a push subscription
  /// delivering the article's changes into `target_table` on `subscriber`.
  /// Returns the subscription id.
  StatusOr<int64_t> Subscribe(Server* publisher, const Article& article,
                              Server* subscriber,
                              const std::string& target_table);

  Status Unsubscribe(int64_t subscription_id);

  /// Log reader + distributor step for one publisher: scans new WAL records,
  /// groups them per committed transaction, filters/projects them per
  /// article, and enqueues them in the distribution database. Work is
  /// charged to `publisher_stats` — this is the §6.2.2 backend overhead.
  /// When `enabled=false` (the log reader is "turned off"), nothing happens.
  Status RunLogReader(Server* publisher, ExecStats* publisher_stats);

  /// Push distribution agent for one subscriber: applies every pending
  /// transaction, in commit order, inside a subscriber-local transaction.
  /// Apply work is charged to `subscriber_stats` (§6.2.2 mid-tier overhead);
  /// commit-to-commit latency is recorded in the metrics (§6.2.3).
  Status RunDistributionAgent(Server* subscriber, ExecStats* subscriber_stats);

  /// Convenience: one full pipeline round for every publisher + subscriber.
  Status RunOnce(ExecStats* publisher_stats, ExecStats* subscriber_stats);

  /// Total changes sitting in the distribution database.
  int64_t PendingChanges() const;

  const ReplicationMetrics& metrics() const { return metrics_; }
  void ResetMetrics() { metrics_ = ReplicationMetrics(); }

  /// The §6.2.2 experiment switch: with the log reader off, no replication
  /// work happens at all (and the distribution queue stops growing).
  void set_log_reader_enabled(bool enabled) { log_reader_enabled_ = enabled; }
  bool log_reader_enabled() const { return log_reader_enabled_; }

 private:
  struct Subscription {
    int64_t id = 0;
    Server* publisher = nullptr;
    Article article;
    Server* subscriber = nullptr;
    std::string target_table;
    /// Changes logged before this LSN predate the subscription's snapshot
    /// and must not be delivered (they are already in the initial copy).
    Lsn start_lsn = 0;
    std::deque<PendingTxn> queue;  // the distribution database
  };

  struct PublisherState {
    Server* server = nullptr;
    Lsn next_lsn = 1;
    // Open transactions being accumulated from the log.
    std::map<TxnId, std::vector<LogRecord>> open_txns;
    /// Time up to which the publisher's log has been fully processed. A
    /// subscription whose queue is drained is current as of this time
    /// (drives TableDef::freshness_time for the §7 freshness extension).
    double last_scan_time = 0;
  };

  Status ApplyTxn(Subscription* sub, const PendingTxn& txn,
                  ExecStats* stats);

  SimClock* clock_;
  bool log_reader_enabled_ = true;
  std::map<Server*, PublisherState> publishers_;
  std::map<int64_t, std::unique_ptr<Subscription>> subscriptions_;
  int64_t next_subscription_id_ = 1;
  ReplicationMetrics metrics_;
};

}  // namespace mtcache

#endif  // MTCACHE_REPL_REPLICATION_H_
