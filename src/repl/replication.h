#ifndef MTCACHE_REPL_REPLICATION_H_
#define MTCACHE_REPL_REPLICATION_H_

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/view_def.h"
#include "common/atomics.h"
#include "common/histogram.h"
#include "common/sim_clock.h"
#include "engine/server.h"
#include "repl/fault.h"

namespace mtcache {

/// A replication article: a select-project expression over a published table
/// (§2.2: "an article may contain only a subset of the columns and rows of
/// the underlying table or materialized view").
struct Article {
  std::string name;
  SelectProjectDef def;
};

/// A publication groups articles on one publisher.
struct Publication {
  std::string name;
  std::vector<Article> articles;
};

/// One filtered/projected change bound for a subscriber.
struct ReplChange {
  LogRecordType op = LogRecordType::kInsert;  // insert/delete/update
  Row before;  // projected to article columns (delete/update)
  Row after;   // projected to article columns (insert/update)
};

/// A committed source transaction's changes for one subscription. Changes
/// propagate "one complete (committed) transaction at a time in commit
/// order", so subscribers always see transactionally consistent states.
struct PendingTxn {
  TxnId source_txn = 0;
  double commit_time = 0;
  std::vector<ReplChange> changes;
  /// Delivery attempts so far (drives the txns_retried metric).
  int64_t attempts = 0;
};

/// Relaxed atomics: the pipeline bumps these from the replication driver
/// while concurrent sessions read them through the sys.dm_repl_metrics
/// provider on other threads.
struct ReplicationMetrics {
  RelaxedInt64 records_scanned = 0;     // log reader work
  RelaxedInt64 changes_enqueued = 0;    // distributor work
  RelaxedInt64 changes_applied = 0;     // subscriber work
  RelaxedInt64 txns_applied = 0;
  RelaxedInt64 txns_retried = 0;        // deliveries re-attempted after fail
  RelaxedInt64 crashes_injected = 0;    // pipeline crashes taken (FaultPlan)
  RelaxedInt64 deliveries_dropped = 0;  // deliveries lost in transit (retried)
  RelaxedDouble latency_sum = 0;        // commit-to-commit, seconds
  RelaxedDouble latency_max = 0;
  RelaxedInt64 latency_count = 0;
  /// Full commit→apply lag distribution (simulated seconds): the source of
  /// sys.dm_repl_lag_histogram and the p50/p95/p99 in sys.dm_repl_metrics.
  LogHistogram lag_histogram;

  double AvgLatency() const {
    int64_t n = latency_count;
    return n > 0 ? latency_sum / n : 0.0;
  }
};

/// Read-only snapshot of one subscription's state, for the consistency
/// checker: the article definition to recompute against the publisher, the
/// target to diff, and the enqueue/apply histories for the commit-order
/// prefix invariant.
struct SubscriptionInfo {
  int64_t id = 0;
  Server* publisher = nullptr;
  Server* subscriber = nullptr;
  SelectProjectDef def;
  std::string target_table;
  int64_t queued_txns = 0;
  std::vector<TxnId> enqueued_txns;  // commit order, as distributed
  std::vector<TxnId> applied_txns;   // local-commit order
};

/// The replication pipeline: publishers' log readers, the distribution
/// database, and push distribution agents. All components are polled
/// explicitly (by tests, examples, or the multi-server simulation), never by
/// background threads, so every run is deterministic.
///
/// Failure model: a FaultPlan (set_fault_plan) can crash any stage
/// mid-operation, drop or delay deliveries, and stall WAL reads. Every stage
/// recovers on its next poll:
///   - The log reader works on shadow state (copies of its open-transaction
///     map plus a staging area for distributed txns) and commits the scan —
///     read position, open txns, queues, log truncation — only when the whole
///     batch succeeds. A crash discards the shadow state, so the restarted
///     reader resumes from the durable LSN and re-distributes exactly once.
///   - The distribution database (per-subscription queues) is durable; a
///     dropped or delayed delivery stays queued and is retried.
///   - The subscriber applies each txn inside a local transaction and records
///     the source txn id in the same commit, so a crash mid-apply rolls back
///     cleanly and a crash after commit but before the ack is deduplicated on
///     redelivery (exactly-once apply).
///   - A failed subscription backs off exponentially on the simulated clock
///     before its next delivery attempt.
class ReplicationSystem {
 public:
  explicit ReplicationSystem(SimClock* clock) : clock_(clock) {}

  /// Registers a publisher. Log reading starts at the *current* end of its
  /// log: pre-existing data must be carried over by a snapshot (the cached
  /// view manager does this before subscribing).
  void AddPublisher(Server* publisher);

  /// Creates a publication implicitly (one article) and a push subscription
  /// delivering the article's changes into `target_table` on `subscriber`.
  /// Returns the subscription id.
  StatusOr<int64_t> Subscribe(Server* publisher, const Article& article,
                              Server* subscriber,
                              const std::string& target_table);

  Status Unsubscribe(int64_t subscription_id);

  /// Log reader + distributor step for one publisher: scans new WAL records,
  /// groups them per committed transaction, filters/projects them per
  /// article, and enqueues them in the distribution database. Work is
  /// charged to `publisher_stats` — this is the §6.2.2 backend overhead.
  /// When `enabled=false` (the log reader is "turned off"), nothing happens.
  /// Returns kUnavailable when an injected fault crashed the reader; the
  /// scan had no effect and the next call resumes from the same position.
  Status RunLogReader(Server* publisher, ExecStats* publisher_stats);

  /// Push distribution agent for one subscriber: applies every pending
  /// transaction, in commit order, inside a subscriber-local transaction.
  /// Apply work is charged to `subscriber_stats` (§6.2.2 mid-tier overhead);
  /// commit-to-commit latency is recorded in the metrics (§6.2.3).
  /// Returns kUnavailable when an injected fault crashed the agent;
  /// undelivered txns stay queued and are retried after a backoff.
  Status RunDistributionAgent(Server* subscriber, ExecStats* subscriber_stats);

  /// Convenience: one full pipeline round for every publisher + subscriber.
  Status RunOnce(ExecStats* publisher_stats, ExecStats* subscriber_stats);

  /// Total changes sitting in the distribution database.
  int64_t PendingChanges() const;

  /// True when nothing is in flight anywhere: no queued deliveries, no open
  /// transactions being accumulated, and every publisher log fully scanned.
  /// This is the quiesce point at which the consistency checker's row-level
  /// diff is meaningful.
  bool Quiesced() const;

  const ReplicationMetrics& metrics() const { return metrics_; }
  void ResetMetrics() { metrics_ = ReplicationMetrics(); }

  /// Folds externally measured commit→apply lag samples into the pipeline
  /// metrics. The DES fleet simulation replays profiled replication work on
  /// virtual machines and records each transaction's simulated lag here, so
  /// sys.dm_repl_lag_histogram (served off metrics().lag_histogram) reports
  /// the simulated fleet's distribution through the same DMV path as a real
  /// run's.
  void MergeLagHistogram(const LogHistogram& lag) {
    metrics_.lag_histogram.Merge(lag);
  }

  /// Snapshots of all live subscriptions (see SubscriptionInfo).
  std::vector<SubscriptionInfo> DescribeSubscriptions() const;

  /// The §6.2.2 experiment switch: with the log reader off, no replication
  /// work happens at all (and the distribution queue stops growing).
  void set_log_reader_enabled(bool enabled) { log_reader_enabled_ = enabled; }
  bool log_reader_enabled() const { return log_reader_enabled_; }

  /// Installs a fault schedule (null = no faults). Not owned.
  void set_fault_plan(FaultPlan* plan) { fault_plan_ = plan; }
  FaultPlan* fault_plan() const { return fault_plan_; }

  /// Exponential backoff applied to a subscription after a failed delivery:
  /// base * 2^(consecutive failures - 1), capped at max, on the sim clock.
  void set_retry_backoff(double base_seconds, double max_seconds) {
    backoff_base_ = base_seconds;
    backoff_max_ = max_seconds;
  }
  double backoff_max() const { return backoff_max_; }

 private:
  struct Subscription {
    int64_t id = 0;
    Server* publisher = nullptr;
    Article article;
    Server* subscriber = nullptr;
    std::string target_table;
    /// Changes logged before this LSN predate the subscription's snapshot
    /// and must not be delivered (they are already in the initial copy).
    Lsn start_lsn = 0;
    std::deque<PendingTxn> queue;  // the distribution database
    /// Source txn id of the last transaction applied at the subscriber,
    /// recorded atomically with the local commit (the moral equivalent of
    /// MSreplication_subscriptions' transaction sequence number). Dedupes
    /// redelivery after a crash in the ack window.
    TxnId last_applied_txn = 0;
    /// Full histories, in order, for the commit-order prefix invariant.
    std::vector<TxnId> enqueued_history;
    std::vector<TxnId> applied_history;
    // Retry/backoff state after failed deliveries.
    int consecutive_failures = 0;
    double retry_after = 0;
  };

  struct PublisherState {
    Server* server = nullptr;
    /// Durable read position: only advances when a whole scan batch has been
    /// distributed, so a crashed scan is re-run from here.
    Lsn next_lsn = 1;
    // Open transactions being accumulated from the log.
    std::map<TxnId, std::vector<LogRecord>> open_txns;
    /// Time up to which the publisher's log has been fully processed. A
    /// subscription whose queue is drained is current as of this time
    /// (drives TableDef::freshness_time for the §7 freshness extension).
    double last_scan_time = 0;
  };

  Status ApplyTxn(Subscription* sub, const PendingTxn& txn,
                  ExecStats* stats);

  FaultAction Decide(FaultSite site) {
    return fault_plan_ != nullptr ? fault_plan_->Decide(site)
                                  : FaultAction::kNone;
  }
  /// Records an injected crash and returns the kUnavailable status the
  /// crashed component surfaces to its caller.
  Status Crash(const std::string& what);
  void RecordFailure(Subscription* sub);

  SimClock* clock_;
  bool log_reader_enabled_ = true;
  FaultPlan* fault_plan_ = nullptr;
  double backoff_base_ = 0.05;
  double backoff_max_ = 1.0;
  std::map<Server*, PublisherState> publishers_;
  std::map<int64_t, std::unique_ptr<Subscription>> subscriptions_;
  int64_t next_subscription_id_ = 1;
  ReplicationMetrics metrics_;
};

}  // namespace mtcache

#endif  // MTCACHE_REPL_REPLICATION_H_
