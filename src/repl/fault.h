#ifndef MTCACHE_REPL_FAULT_H_
#define MTCACHE_REPL_FAULT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/random.h"
#include "storage/wal.h"

namespace mtcache {

/// Injection points threaded through the replication pipeline and the cached
/// view snapshot path. Each site is visited once per unit of work (record,
/// transaction, row), so scripted rules can target "the Nth apply" exactly.
enum class FaultSite {
  kLogReadStall,    // storage seam: WAL page read fails mid-scan (kDelay)
  kLogReadRecord,   // log reader processing a scanned record
  kDistributeTxn,   // distributor filtering/enqueueing a committed txn
  kDeliverTxn,      // delivery of a PendingTxn to a subscriber (drop/delay)
  kApplyChange,     // subscriber applying one change inside the local txn
  kApplyCommit,     // after the local commit, before the delivery is acked
  kSnapshotRow,     // copying one row of a cached-view snapshot
};

enum class FaultAction {
  kNone,   // proceed normally
  kCrash,  // the component dies mid-operation and loses its volatile state
  kDrop,   // the delivery is lost in transit (stays durable at the source)
  kDelay,  // the component stalls; work resumes on a later poll
};

const char* FaultSiteName(FaultSite site);
const char* FaultActionName(FaultAction action);

/// A deterministic fault schedule. Two kinds of rules compose:
///   - scripted: fire on the Nth..(N+count-1)th visit to a site;
///   - probabilistic: fire with probability p per visit, drawn from the
///     plan's seeded RNG (same seed => identical fault schedule).
/// The ReplicationSystem and MTCache consult the plan at each FaultSite; a
/// null plan (the default) means no faults, and a disabled plan counts visits
/// but injects nothing (used while draining the pipeline for a consistency
/// check).
class FaultPlan {
 public:
  FaultPlan() : rng_(1) {}
  explicit FaultPlan(uint64_t seed) : rng_(seed) {}

  /// Scripted rule: on visits [nth, nth+count) to `site`, return `action`.
  /// Visits are 1-based and counted across the plan's lifetime.
  void AddRule(FaultSite site, FaultAction action, int64_t nth,
               int64_t count = 1);

  /// Probabilistic rule: each visit to `site` fires `action` with
  /// probability `p` (evaluated after scripted rules).
  void AddRandomRule(FaultSite site, FaultAction action, double p);

  /// Called by the pipeline at each injection point. Always counts the
  /// visit; returns kNone when disabled.
  FaultAction Decide(FaultSite site);

  /// Disabling stops injection without losing visit counters; DrainPipeline
  /// uses this to quiesce the system before a consistency check.
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  int64_t visits(FaultSite site) const;
  int64_t injected(FaultSite site) const;
  int64_t total_injected() const { return total_injected_; }

  /// One line per rule plus counters — pasted into test failure output so a
  /// failing seed's schedule can be reproduced from the log alone.
  std::string ToString() const;

 private:
  struct Rule {
    FaultSite site;
    FaultAction action;
    int64_t nth = 0;    // scripted when > 0
    int64_t count = 1;
    double probability = 0;  // probabilistic when > 0
  };

  std::vector<Rule> rules_;
  std::map<FaultSite, int64_t> visits_;
  std::map<FaultSite, int64_t> injected_;
  int64_t total_injected_ = 0;
  bool enabled_ = true;
  Random rng_;
};

/// Adapts a plan to the LogManager's read-fault seam: the hook stalls the
/// WAL scan (a failed log page read) whenever the plan fires kLogReadStall.
/// Install with `log.set_read_fault_hook(MakeLogReadStallHook(&plan))`; the
/// plan must outlive the log manager's use of the hook.
LogManager::ReadFaultHook MakeLogReadStallHook(FaultPlan* plan);

}  // namespace mtcache

#endif  // MTCACHE_REPL_FAULT_H_
