#include "check/consistency.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

namespace mtcache {

namespace {

std::string RenderRow(const Row& row) {
  std::string out;
  for (const Value& v : row) {
    out += v.ToSqlLiteral();
    out += "|";
  }
  return out;
}

/// Sorted multiset of rendered rows from a query result.
StatusOr<std::vector<std::string>> BackendRows(Server* server,
                                               const std::string& sql) {
  MT_ASSIGN_OR_RETURN(QueryResult result, server->Execute(sql));
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Row& row : result.rows) rows.push_back(RenderRow(row));
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Sorted multiset of rendered rows read straight off the target's heap —
/// deliberately below the query layer, so the diff sees exactly what
/// replication wrote, with no optimizer/routing in the way. Taken under a
/// shared table latch so the checker can run while agents are applying.
std::vector<std::string> StoredRows(StoredTable* table) {
  std::vector<std::string> rows;
  std::shared_lock<std::shared_mutex> latch(table->latch());
  const HeapTable& heap = table->heap();
  for (RowId rid = 0; rid < heap.slot_count(); ++rid) {
    if (heap.IsLive(rid)) rows.push_back(RenderRow(heap.Get(rid)));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

/// Multiset difference a \ b of two sorted vectors.
std::vector<std::string> Difference(const std::vector<std::string>& a,
                                    const std::vector<std::string>& b) {
  std::vector<std::string> out;
  std::set_difference(a.begin(), a.end(), b.begin(), b.end(),
                      std::back_inserter(out));
  return out;
}

void DiffTarget(int64_t subscription_id, const std::string& target,
                const std::vector<std::string>& expected,
                const std::vector<std::string>& actual,
                ConsistencyReport* report) {
  ConsistencyReport::TargetDiff diff;
  diff.subscription_id = subscription_id;
  diff.target_table = target;
  diff.missing = Difference(expected, actual);
  diff.extra = Difference(actual, expected);
  if (!diff.missing.empty() || !diff.extra.empty()) {
    report->diffs.push_back(std::move(diff));
  }
}

}  // namespace

std::string ConsistencyReport::ToString() const {
  if (ok()) return "consistent";
  std::string out;
  for (const TargetDiff& diff : diffs) {
    out += "target " + diff.target_table + " (subscription " +
           std::to_string(diff.subscription_id) + "): " +
           std::to_string(diff.missing.size()) + " missing, " +
           std::to_string(diff.extra.size()) + " extra\n";
    for (const std::string& row : diff.missing) out += "  missing: " + row + "\n";
    for (const std::string& row : diff.extra) out += "  extra:   " + row + "\n";
  }
  for (const std::string& violation : violations) {
    out += "violation: " + violation + "\n";
  }
  return out;
}

ConsistencyReport ConsistencyChecker::Check() const {
  ConsistencyReport report = CheckInvariants();
  for (const SubscriptionInfo& sub : repl_->DescribeSubscriptions()) {
    auto expected = BackendRows(sub.publisher, sub.def.ToSelectSql());
    if (!expected.ok()) {
      report.violations.push_back("recompute failed for subscription " +
                                  std::to_string(sub.id) + ": " +
                                  expected.status().ToString());
      continue;
    }
    StoredTable* target =
        sub.subscriber->db().GetStoredTable(sub.target_table);
    if (target == nullptr) {
      report.violations.push_back("subscription " + std::to_string(sub.id) +
                                  " target has no storage: " +
                                  sub.target_table);
      continue;
    }
    DiffTarget(sub.id, sub.target_table, *expected, StoredRows(target),
               &report);
  }
  if (cache_ != nullptr && backend_ != nullptr) {
    // Cached views whose subscription died (e.g. a refresh crashed between
    // unsubscribe and resubscribe) are invisible to the subscription walk;
    // recompute them straight from their view definition.
    for (const std::string& name : cache_->db().catalog().TableNames()) {
      const TableDef* def = cache_->db().catalog().GetTable(name);
      if (def->kind != RelationKind::kCachedView || !def->view_def) continue;
      if (def->subscription_id >= 0) continue;  // covered above
      report.violations.push_back("cached view " + name +
                                  " has no live subscription");
      StoredTable* backing = cache_->db().GetStoredTable(name);
      if (backing == nullptr) continue;
      auto expected = BackendRows(backend_, def->view_def->ToSelectSql());
      if (!expected.ok()) continue;
      DiffTarget(-1, name, *expected, StoredRows(backing), &report);
    }
  }
  return report;
}

ConsistencyReport ConsistencyChecker::CheckInvariants() const {
  ConsistencyReport report;
  for (const SubscriptionInfo& sub : repl_->DescribeSubscriptions()) {
    if (sub.applied_txns.size() > sub.enqueued_txns.size()) {
      report.violations.push_back(
          "subscription " + std::to_string(sub.id) + " applied " +
          std::to_string(sub.applied_txns.size()) + " txns but only " +
          std::to_string(sub.enqueued_txns.size()) + " were distributed");
      continue;
    }
    for (size_t i = 0; i < sub.applied_txns.size(); ++i) {
      if (sub.applied_txns[i] != sub.enqueued_txns[i]) {
        report.violations.push_back(
            "subscription " + std::to_string(sub.id) +
            " applied txns are not a prefix of commit order at position " +
            std::to_string(i) + ": applied " +
            std::to_string(sub.applied_txns[i]) + ", distributed " +
            std::to_string(sub.enqueued_txns[i]));
        break;
      }
    }
    // The queue must hold exactly the distributed-but-unapplied suffix
    // (modulo the one txn that may sit in the ack window after a
    // post-commit crash).
    int64_t outstanding = static_cast<int64_t>(sub.enqueued_txns.size()) -
                          static_cast<int64_t>(sub.applied_txns.size());
    if (sub.queued_txns < outstanding || sub.queued_txns > outstanding + 1) {
      report.violations.push_back(
          "subscription " + std::to_string(sub.id) + " queue holds " +
          std::to_string(sub.queued_txns) + " txns, expected " +
          std::to_string(outstanding) + " (+1 in the ack window)");
    }
  }
  return report;
}

Status DrainPipeline(ReplicationSystem* repl, SimClock* clock,
                     int max_rounds) {
  FaultPlan* plan = repl->fault_plan();
  bool was_enabled = plan != nullptr && plan->enabled();
  if (plan != nullptr) plan->set_enabled(false);
  Status status = Status::Ok();
  int round = 0;
  for (; round < max_rounds && !repl->Quiesced(); ++round) {
    status = repl->RunOnce(nullptr, nullptr);
    if (!status.ok()) break;
    // Step past any retry backoff so failed subscriptions re-deliver.
    if (clock != nullptr) clock->Advance(repl->backoff_max());
  }
  if (plan != nullptr) plan->set_enabled(was_enabled);
  if (!status.ok()) return status;
  if (!repl->Quiesced()) {
    return Status::Unavailable("pipeline failed to quiesce after " +
                               std::to_string(max_rounds) + " rounds");
  }
  return Status::Ok();
}

}  // namespace mtcache
