#ifndef MTCACHE_CHECK_CONSISTENCY_H_
#define MTCACHE_CHECK_CONSISTENCY_H_

#include <string>
#include <vector>

#include "repl/replication.h"

namespace mtcache {

/// Result of a cache-consistency check. Empty diffs + violations == the
/// cache provably matches the backend at this quiesce point.
struct ConsistencyReport {
  struct TargetDiff {
    int64_t subscription_id = 0;
    std::string target_table;
    std::vector<std::string> missing;  // in the backend recompute, not cached
    std::vector<std::string> extra;    // cached, not in the backend recompute
  };
  std::vector<TargetDiff> diffs;
  /// Broken invariants (commit-order prefix, dead subscriptions, ...).
  std::vector<std::string> violations;

  bool ok() const { return diffs.empty() && violations.empty(); }
  /// Human-readable summary for test failure output.
  std::string ToString() const;
};

/// Recomputes ground truth and diffs it against the caches. Two invariant
/// families:
///   1. Row-level: for every subscription, the target table's contents equal
///      the article's select-project recomputed against the publisher's base
///      table (meaningful only when the pipeline is quiesced — see
///      DrainPipeline). The row diff is reported row by row.
///   2. Ordering: the transactions applied at each subscriber are a prefix
///      of the transactions distributed to it, in commit order — holds at
///      ALL times, faults or not, so it is checked mid-flight too.
class ConsistencyChecker {
 public:
  /// Checks every live subscription in `repl`. If `cache` is non-null, also
  /// checks every cached view in its catalog (catching views whose
  /// subscription died, which the subscription walk alone would miss);
  /// their definitions are recomputed against `backend`.
  explicit ConsistencyChecker(ReplicationSystem* repl,
                              Server* backend = nullptr,
                              Server* cache = nullptr)
      : repl_(repl), backend_(backend), cache_(cache) {}

  /// Full check: row-level diffs + ordering invariants. Call at a quiesce
  /// point (after DrainPipeline) — otherwise in-flight txns show up as
  /// row diffs.
  ConsistencyReport Check() const;

  /// Ordering invariants only; safe to call mid-flight, with faults live.
  ConsistencyReport CheckInvariants() const;

 private:
  ReplicationSystem* repl_;
  Server* backend_;
  Server* cache_;
};

/// Drives the pipeline to a quiesce point: disables the fault plan (and
/// re-enables it before returning), then repeatedly runs full rounds,
/// advancing `clock` past any retry backoff, until ReplicationSystem::
/// Quiesced() or `max_rounds` is exhausted (kUnavailable in that case —
/// something is wedged, not just slow).
Status DrainPipeline(ReplicationSystem* repl, SimClock* clock,
                     int max_rounds = 200);

}  // namespace mtcache

#endif  // MTCACHE_CHECK_CONSISTENCY_H_
