#include "expr/bound_expr.h"

#include <cmath>

#include "common/string_util.h"

namespace mtcache {

BExprPtr CloneBound(const BoundExpr& expr) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral: {
      const auto& e = static_cast<const BoundLiteral&>(expr);
      return std::make_unique<BoundLiteral>(e.value);
    }
    case BoundExprKind::kColumnRef: {
      const auto& e = static_cast<const BoundColumnRef&>(expr);
      return std::make_unique<BoundColumnRef>(e.ordinal, e.type, e.name);
    }
    case BoundExprKind::kParam: {
      const auto& e = static_cast<const BoundParam&>(expr);
      return std::make_unique<BoundParam>(e.name, e.type);
    }
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(expr);
      return std::make_unique<BoundUnary>(e.op, CloneBound(*e.operand), e.type);
    }
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      return std::make_unique<BoundBinary>(e.op, CloneBound(*e.left),
                                           CloneBound(*e.right), e.type);
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      return std::make_unique<BoundLike>(CloneBound(*e.input),
                                         CloneBound(*e.pattern), e.negated);
    }
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      return std::make_unique<BoundIsNull>(CloneBound(*e.input), e.negated);
    }
    case BoundExprKind::kFunction: {
      const auto& e = static_cast<const BoundFunction&>(expr);
      std::vector<BExprPtr> args;
      for (const auto& a : e.args) args.push_back(CloneBound(*a));
      return std::make_unique<BoundFunction>(e.fn, std::move(args), e.type);
    }
    case BoundExprKind::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      std::vector<std::pair<BExprPtr, BExprPtr>> branches;
      for (const auto& [when, then] : e.branches) {
        branches.emplace_back(CloneBound(*when), CloneBound(*then));
      }
      return std::make_unique<BoundCase>(
          std::move(branches),
          e.else_expr ? CloneBound(*e.else_expr) : nullptr, e.type);
    }
  }
  return nullptr;
}

namespace {

// Arithmetic with numeric promotion; NULL-in -> NULL-out.
StatusOr<Value> EvalArith(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::Null();
  bool use_double =
      l.type() == TypeId::kDouble || r.type() == TypeId::kDouble;
  if (use_double) {
    double a = l.AsDouble();
    double b = r.AsDouble();
    switch (op) {
      case BinaryOp::kAdd: return Value::Double(a + b);
      case BinaryOp::kSub: return Value::Double(a - b);
      case BinaryOp::kMul: return Value::Double(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Double(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Double(std::fmod(a, b));
      default:
        break;
    }
  } else {
    int64_t a = l.AsInt();
    int64_t b = r.AsInt();
    switch (op) {
      case BinaryOp::kAdd: return Value::Int(a + b);
      case BinaryOp::kSub: return Value::Int(a - b);
      case BinaryOp::kMul: return Value::Int(a * b);
      case BinaryOp::kDiv:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(a / b);
      case BinaryOp::kMod:
        if (b == 0) return Status::InvalidArgument("division by zero");
        return Value::Int(a % b);
      default:
        break;
    }
  }
  return Status::Internal("non-arithmetic op in EvalArith");
}

// Comparison with SQL NULL semantics (NULL compare -> NULL).
Value EvalCompare(BinaryOp op, const Value& l, const Value& r) {
  if (l.is_null() || r.is_null()) return Value::TypedNull(TypeId::kBool);
  int c = l.Compare(r);
  bool result = false;
  switch (op) {
    case BinaryOp::kEq: result = c == 0; break;
    case BinaryOp::kNe: result = c != 0; break;
    case BinaryOp::kLt: result = c < 0; break;
    case BinaryOp::kLe: result = c <= 0; break;
    case BinaryOp::kGt: result = c > 0; break;
    case BinaryOp::kGe: result = c >= 0; break;
    default: break;
  }
  return Value::Bool(result);
}

// Three-valued AND/OR.
Value EvalLogic(BinaryOp op, const Value& l, const Value& r) {
  auto truth = [](const Value& v) -> int {
    if (v.is_null()) return -1;  // unknown
    return v.AsBool() ? 1 : 0;
  };
  int a = truth(l);
  int b = truth(r);
  if (op == BinaryOp::kAnd) {
    if (a == 0 || b == 0) return Value::Bool(false);
    if (a == 1 && b == 1) return Value::Bool(true);
    return Value::TypedNull(TypeId::kBool);
  }
  // OR
  if (a == 1 || b == 1) return Value::Bool(true);
  if (a == 0 && b == 0) return Value::Bool(false);
  return Value::TypedNull(TypeId::kBool);
}

}  // namespace

StatusOr<Value> EvalBound(const BoundExpr& expr, const Row* row,
                          const EvalContext& ctx) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral:
      return static_cast<const BoundLiteral&>(expr).value;
    case BoundExprKind::kColumnRef: {
      const auto& e = static_cast<const BoundColumnRef&>(expr);
      if (row == nullptr || e.ordinal >= static_cast<int>(row->size())) {
        return Status::Internal("column reference without a row (ordinal " +
                                std::to_string(e.ordinal) + ")");
      }
      return (*row)[e.ordinal];
    }
    case BoundExprKind::kParam: {
      const auto& e = static_cast<const BoundParam&>(expr);
      if (ctx.params == nullptr) {
        return Status::InvalidArgument("no parameters supplied for " + e.name);
      }
      auto it = ctx.params->find(e.name);
      if (it == ctx.params->end()) {
        return Status::InvalidArgument("missing parameter " + e.name);
      }
      return it->second;
    }
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(expr);
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*e.operand, row, ctx));
      if (e.op == UnaryOp::kNeg) {
        if (v.is_null()) return Value::Null();
        if (v.type() == TypeId::kDouble) return Value::Double(-v.AsDouble());
        return Value::Int(-v.AsInt());
      }
      // NOT with three-valued logic.
      if (v.is_null()) return Value::TypedNull(TypeId::kBool);
      return Value::Bool(!v.AsBool());
    }
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      MT_ASSIGN_OR_RETURN(Value l, EvalBound(*e.left, row, ctx));
      MT_ASSIGN_OR_RETURN(Value r, EvalBound(*e.right, row, ctx));
      switch (e.op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod: {
          // String concatenation via '+'.
          if (e.op == BinaryOp::kAdd && (l.type() == TypeId::kString ||
                                         r.type() == TypeId::kString)) {
            if (l.is_null() || r.is_null()) return Value::Null();
            return Value::String(l.ToString() + r.ToString());
          }
          return EvalArith(e.op, l, r);
        }
        case BinaryOp::kEq:
        case BinaryOp::kNe:
        case BinaryOp::kLt:
        case BinaryOp::kLe:
        case BinaryOp::kGt:
        case BinaryOp::kGe:
          return EvalCompare(e.op, l, r);
        case BinaryOp::kAnd:
        case BinaryOp::kOr:
          return EvalLogic(e.op, l, r);
      }
      return Status::Internal("unhandled binary op");
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*e.input, row, ctx));
      MT_ASSIGN_OR_RETURN(Value p, EvalBound(*e.pattern, row, ctx));
      if (v.is_null() || p.is_null()) return Value::TypedNull(TypeId::kBool);
      bool match = LikeMatch(v.ToString(), p.ToString());
      return Value::Bool(e.negated ? !match : match);
    }
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      MT_ASSIGN_OR_RETURN(Value v, EvalBound(*e.input, row, ctx));
      bool isnull = v.is_null();
      return Value::Bool(e.negated ? !isnull : isnull);
    }
    case BoundExprKind::kFunction: {
      const auto& e = static_cast<const BoundFunction&>(expr);
      std::vector<Value> args;
      for (const auto& a : e.args) {
        MT_ASSIGN_OR_RETURN(Value v, EvalBound(*a, row, ctx));
        args.push_back(std::move(v));
      }
      switch (e.fn) {
        case BuiltinFn::kGetDate:
          return Value::Int(static_cast<int64_t>(ctx.current_time));
        case BuiltinFn::kAbs:
          if (args[0].is_null()) return Value::Null();
          if (args[0].type() == TypeId::kDouble) {
            return Value::Double(std::fabs(args[0].AsDouble()));
          }
          return Value::Int(std::llabs(args[0].AsInt()));
        case BuiltinFn::kLen:
          if (args[0].is_null()) return Value::Null();
          return Value::Int(static_cast<int64_t>(args[0].ToString().size()));
        case BuiltinFn::kSubstring: {
          if (args[0].is_null()) return Value::Null();
          std::string s = args[0].ToString();
          int64_t start = args[1].AsInt();  // 1-based, per T-SQL
          int64_t len = args[2].AsInt();
          if (start < 1) start = 1;
          if (start > static_cast<int64_t>(s.size())) return Value::String("");
          return Value::String(s.substr(start - 1, len));
        }
        case BuiltinFn::kRound: {
          if (args[0].is_null()) return Value::Null();
          double scale = args.size() > 1 ? std::pow(10, args[1].AsInt()) : 1;
          return Value::Double(std::round(args[0].AsDouble() * scale) / scale);
        }
        case BuiltinFn::kCoalesce: {
          for (const Value& v : args) {
            if (!v.is_null()) return v;
          }
          return Value::Null();
        }
      }
      return Status::Internal("unhandled builtin");
    }
    case BoundExprKind::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      for (const auto& [when, then] : e.branches) {
        MT_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*when, row, ctx));
        if (pass) return EvalBound(*then, row, ctx);
      }
      if (e.else_expr != nullptr) return EvalBound(*e.else_expr, row, ctx);
      return Value::TypedNull(e.type);
    }
  }
  return Status::Internal("unhandled bound expr kind");
}

StatusOr<bool> EvalPredicate(const BoundExpr& expr, const Row* row,
                             const EvalContext& ctx) {
  MT_ASSIGN_OR_RETURN(Value v, EvalBound(expr, row, ctx));
  return !v.is_null() && v.AsBool();
}

namespace {

// True for the comparison operators EvalCompare handles.
bool IsCompareOp(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return true;
    default:
      return false;
  }
}

// Comparison result against filter semantics: `c` is Value::Compare order of
// (column, rhs); both sides known non-NULL.
bool ComparePasses(BinaryOp op, int c) {
  switch (op) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNe: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLe: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGe: return c >= 0;
    default: return false;
  }
}

// Mirror of kNe etc. for the flipped operand order (rhs cmp column).
BinaryOp FlipCompare(BinaryOp op) {
  switch (op) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return op;  // Eq/Ne are symmetric
  }
}

}  // namespace

Status EvalPredicateBatch(const BoundExpr& expr,
                          const std::vector<const Row*>& rows,
                          const EvalContext& ctx, std::vector<char>* keep) {
  keep->assign(rows.size(), 1);
  std::vector<const BoundExpr*> conjuncts;
  CollectConjuncts(expr, &conjuncts);
  for (const BoundExpr* conjunct : conjuncts) {
    // Fast shape: <column> cmp <row-free expr> (either operand order).
    // Evaluate the row-free side once, then one Compare per surviving row.
    // SQL NULL semantics are preserved explicitly: a NULL on either side
    // makes the comparison unknown, which a filter treats as rejection
    // (Value::Compare alone would call NULL == NULL a match).
    if (conjunct->kind == BoundExprKind::kBinary) {
      const auto& bin = static_cast<const BoundBinary&>(*conjunct);
      if (IsCompareOp(bin.op)) {
        const BoundExpr* col = nullptr;
        const BoundExpr* free_side = nullptr;
        BinaryOp op = bin.op;
        if (bin.left->kind == BoundExprKind::kColumnRef &&
            IsRowFree(*bin.right)) {
          col = bin.left.get();
          free_side = bin.right.get();
        } else if (bin.right->kind == BoundExprKind::kColumnRef &&
                   IsRowFree(*bin.left)) {
          col = bin.right.get();
          free_side = bin.left.get();
          op = FlipCompare(op);
        }
        if (col != nullptr) {
          MT_ASSIGN_OR_RETURN(Value rhs, EvalBound(*free_side, nullptr, ctx));
          if (rhs.is_null()) {
            // cmp NULL is unknown for every row: nothing in the batch passes.
            keep->assign(rows.size(), 0);
            return Status::Ok();
          }
          int ordinal = static_cast<const BoundColumnRef&>(*col).ordinal;
          // This loop is the first to touch each row's memory on a cold
          // scan, so it eats two dependent DRAM misses per row (Row header,
          // then the Value array). A two-stage prefetch pipeline — headers
          // kAhead out, the tested Value one half-window out, by which time
          // its header is already cached — overlaps those misses across
          // iterations instead of serializing them.
          constexpr size_t kAhead = 16;
          const size_t n = rows.size();
          for (size_t i = 0; i < n; ++i) {
            if (i + kAhead < n) __builtin_prefetch(rows[i + kAhead]);
            if (i + kAhead / 2 < n) {
              __builtin_prefetch(rows[i + kAhead / 2]->data() + ordinal);
            }
            if (!(*keep)[i]) continue;
            const Value& lhs = (*rows[i])[ordinal];
            if (lhs.is_null() || !ComparePasses(op, lhs.Compare(rhs))) {
              (*keep)[i] = 0;
            }
          }
          continue;
        }
      }
    }
    // General conjunct: per-row evaluation on the rows still alive. AND of
    // conjuncts is TRUE iff every conjunct is TRUE, so conjunct-wise
    // filtering matches EvalPredicate over the whole tree.
    for (size_t i = 0; i < rows.size(); ++i) {
      if (!(*keep)[i]) continue;
      MT_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*conjunct, rows[i], ctx));
      if (!pass) (*keep)[i] = 0;
    }
  }
  return Status::Ok();
}

void CollectConjuncts(const BoundExpr& expr,
                      std::vector<const BoundExpr*>* out) {
  if (expr.kind == BoundExprKind::kBinary) {
    const auto& e = static_cast<const BoundBinary&>(expr);
    if (e.op == BinaryOp::kAnd) {
      CollectConjuncts(*e.left, out);
      CollectConjuncts(*e.right, out);
      return;
    }
  }
  out->push_back(&expr);
}

BExprPtr AndTogether(std::vector<BExprPtr> conjuncts) {
  BExprPtr result;
  for (auto& c : conjuncts) {
    if (!result) {
      result = std::move(c);
    } else {
      result = std::make_unique<BoundBinary>(BinaryOp::kAnd, std::move(result),
                                             std::move(c), TypeId::kBool);
    }
  }
  return result;
}

namespace {

template <typename Fn>
void VisitBound(const BoundExpr& expr, Fn&& fn) {
  fn(expr);
  switch (expr.kind) {
    case BoundExprKind::kUnary:
      VisitBound(*static_cast<const BoundUnary&>(expr).operand, fn);
      break;
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      VisitBound(*e.left, fn);
      VisitBound(*e.right, fn);
      break;
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      VisitBound(*e.input, fn);
      VisitBound(*e.pattern, fn);
      break;
    }
    case BoundExprKind::kIsNull:
      VisitBound(*static_cast<const BoundIsNull&>(expr).input, fn);
      break;
    case BoundExprKind::kFunction:
      for (const auto& a : static_cast<const BoundFunction&>(expr).args) {
        VisitBound(*a, fn);
      }
      break;
    case BoundExprKind::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      for (const auto& [when, then] : e.branches) {
        VisitBound(*when, fn);
        VisitBound(*then, fn);
      }
      if (e.else_expr != nullptr) VisitBound(*e.else_expr, fn);
      break;
    }
    default:
      break;
  }
}

template <typename Fn>
void VisitBoundMutable(BoundExpr* expr, Fn&& fn) {
  fn(expr);
  switch (expr->kind) {
    case BoundExprKind::kUnary:
      VisitBoundMutable(static_cast<BoundUnary*>(expr)->operand.get(), fn);
      break;
    case BoundExprKind::kBinary: {
      auto* e = static_cast<BoundBinary*>(expr);
      VisitBoundMutable(e->left.get(), fn);
      VisitBoundMutable(e->right.get(), fn);
      break;
    }
    case BoundExprKind::kLike: {
      auto* e = static_cast<BoundLike*>(expr);
      VisitBoundMutable(e->input.get(), fn);
      VisitBoundMutable(e->pattern.get(), fn);
      break;
    }
    case BoundExprKind::kIsNull:
      VisitBoundMutable(static_cast<BoundIsNull*>(expr)->input.get(), fn);
      break;
    case BoundExprKind::kFunction:
      for (auto& a : static_cast<BoundFunction*>(expr)->args) {
        VisitBoundMutable(a.get(), fn);
      }
      break;
    case BoundExprKind::kCase: {
      auto* e = static_cast<BoundCase*>(expr);
      for (auto& [when, then] : e->branches) {
        VisitBoundMutable(when.get(), fn);
        VisitBoundMutable(then.get(), fn);
      }
      if (e->else_expr != nullptr) VisitBoundMutable(e->else_expr.get(), fn);
      break;
    }
    default:
      break;
  }
}

}  // namespace

void CollectColumnRefs(const BoundExpr& expr, std::vector<int>* ordinals) {
  VisitBound(expr, [&](const BoundExpr& e) {
    if (e.kind == BoundExprKind::kColumnRef) {
      ordinals->push_back(static_cast<const BoundColumnRef&>(e).ordinal);
    }
  });
}

bool IsRowFree(const BoundExpr& expr) {
  std::vector<int> refs;
  CollectColumnRefs(expr, &refs);
  return refs.empty();
}

bool HasParam(const BoundExpr& expr) {
  bool found = false;
  VisitBound(expr, [&](const BoundExpr& e) {
    if (e.kind == BoundExprKind::kParam) found = true;
  });
  return found;
}

void ShiftColumnRefs(BoundExpr* expr, int delta) {
  VisitBoundMutable(expr, [&](BoundExpr* e) {
    if (e->kind == BoundExprKind::kColumnRef) {
      static_cast<BoundColumnRef*>(e)->ordinal += delta;
    }
  });
}

bool RemapColumnRefs(BoundExpr* expr, const std::vector<int>& mapping) {
  bool ok = true;
  VisitBoundMutable(expr, [&](BoundExpr* e) {
    if (e->kind == BoundExprKind::kColumnRef) {
      auto* ref = static_cast<BoundColumnRef*>(e);
      if (ref->ordinal < 0 || ref->ordinal >= static_cast<int>(mapping.size()) ||
          mapping[ref->ordinal] < 0) {
        ok = false;
      } else {
        ref->ordinal = mapping[ref->ordinal];
      }
    }
  });
  return ok;
}

std::string BoundToSql(const BoundExpr& expr) {
  switch (expr.kind) {
    case BoundExprKind::kLiteral:
      return static_cast<const BoundLiteral&>(expr).value.ToSqlLiteral();
    case BoundExprKind::kColumnRef:
      return static_cast<const BoundColumnRef&>(expr).name;
    case BoundExprKind::kParam:
      return static_cast<const BoundParam&>(expr).name;
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(expr);
      return (e.op == UnaryOp::kNot ? "NOT (" : "-(") +
             BoundToSql(*e.operand) + ")";
    }
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(expr);
      const char* sym = "?";
      switch (e.op) {
        case BinaryOp::kAdd: sym = "+"; break;
        case BinaryOp::kSub: sym = "-"; break;
        case BinaryOp::kMul: sym = "*"; break;
        case BinaryOp::kDiv: sym = "/"; break;
        case BinaryOp::kMod: sym = "%"; break;
        case BinaryOp::kEq: sym = "="; break;
        case BinaryOp::kNe: sym = "<>"; break;
        case BinaryOp::kLt: sym = "<"; break;
        case BinaryOp::kLe: sym = "<="; break;
        case BinaryOp::kGt: sym = ">"; break;
        case BinaryOp::kGe: sym = ">="; break;
        case BinaryOp::kAnd: sym = "AND"; break;
        case BinaryOp::kOr: sym = "OR"; break;
      }
      return "(" + BoundToSql(*e.left) + " " + sym + " " +
             BoundToSql(*e.right) + ")";
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(expr);
      return "(" + BoundToSql(*e.input) +
             (e.negated ? " NOT LIKE " : " LIKE ") + BoundToSql(*e.pattern) +
             ")";
    }
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(expr);
      return "(" + BoundToSql(*e.input) +
             (e.negated ? " IS NOT NULL)" : " IS NULL)");
    }
    case BoundExprKind::kFunction: {
      const auto& e = static_cast<const BoundFunction&>(expr);
      const char* name = "?";
      switch (e.fn) {
        case BuiltinFn::kGetDate: name = "GETDATE"; break;
        case BuiltinFn::kAbs: name = "ABS"; break;
        case BuiltinFn::kLen: name = "LEN"; break;
        case BuiltinFn::kSubstring: name = "SUBSTRING"; break;
        case BuiltinFn::kRound: name = "ROUND"; break;
        case BuiltinFn::kCoalesce: name = "COALESCE"; break;
      }
      std::string out = std::string(name) + "(";
      for (size_t i = 0; i < e.args.size(); ++i) {
        if (i > 0) out += ", ";
        out += BoundToSql(*e.args[i]);
      }
      out += ")";
      return out;
    }
    case BoundExprKind::kCase: {
      const auto& e = static_cast<const BoundCase&>(expr);
      std::string out = "CASE";
      for (const auto& [when, then] : e.branches) {
        out += " WHEN " + BoundToSql(*when) + " THEN " + BoundToSql(*then);
      }
      if (e.else_expr != nullptr) out += " ELSE " + BoundToSql(*e.else_expr);
      out += " END";
      return out;
    }
  }
  return "?";
}

bool BoundEquals(const BoundExpr& a, const BoundExpr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case BoundExprKind::kLiteral:
      return static_cast<const BoundLiteral&>(a).value ==
             static_cast<const BoundLiteral&>(b).value;
    case BoundExprKind::kColumnRef:
      return static_cast<const BoundColumnRef&>(a).ordinal ==
             static_cast<const BoundColumnRef&>(b).ordinal;
    case BoundExprKind::kParam:
      return static_cast<const BoundParam&>(a).name ==
             static_cast<const BoundParam&>(b).name;
    case BoundExprKind::kUnary: {
      const auto& ea = static_cast<const BoundUnary&>(a);
      const auto& eb = static_cast<const BoundUnary&>(b);
      return ea.op == eb.op && BoundEquals(*ea.operand, *eb.operand);
    }
    case BoundExprKind::kBinary: {
      const auto& ea = static_cast<const BoundBinary&>(a);
      const auto& eb = static_cast<const BoundBinary&>(b);
      return ea.op == eb.op && BoundEquals(*ea.left, *eb.left) &&
             BoundEquals(*ea.right, *eb.right);
    }
    case BoundExprKind::kLike: {
      const auto& ea = static_cast<const BoundLike&>(a);
      const auto& eb = static_cast<const BoundLike&>(b);
      return ea.negated == eb.negated && BoundEquals(*ea.input, *eb.input) &&
             BoundEquals(*ea.pattern, *eb.pattern);
    }
    case BoundExprKind::kIsNull: {
      const auto& ea = static_cast<const BoundIsNull&>(a);
      const auto& eb = static_cast<const BoundIsNull&>(b);
      return ea.negated == eb.negated && BoundEquals(*ea.input, *eb.input);
    }
    case BoundExprKind::kFunction: {
      const auto& ea = static_cast<const BoundFunction&>(a);
      const auto& eb = static_cast<const BoundFunction&>(b);
      if (ea.fn != eb.fn || ea.args.size() != eb.args.size()) return false;
      for (size_t i = 0; i < ea.args.size(); ++i) {
        if (!BoundEquals(*ea.args[i], *eb.args[i])) return false;
      }
      return true;
    }
    case BoundExprKind::kCase: {
      const auto& ea = static_cast<const BoundCase&>(a);
      const auto& eb = static_cast<const BoundCase&>(b);
      if (ea.branches.size() != eb.branches.size()) return false;
      for (size_t i = 0; i < ea.branches.size(); ++i) {
        if (!BoundEquals(*ea.branches[i].first, *eb.branches[i].first) ||
            !BoundEquals(*ea.branches[i].second, *eb.branches[i].second)) {
          return false;
        }
      }
      if ((ea.else_expr == nullptr) != (eb.else_expr == nullptr)) return false;
      return ea.else_expr == nullptr ||
             BoundEquals(*ea.else_expr, *eb.else_expr);
    }
  }
  return false;
}

}  // namespace mtcache
