#ifndef MTCACHE_EXPR_BOUND_EXPR_H_
#define MTCACHE_EXPR_BOUND_EXPR_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "types/value.h"

namespace mtcache {

/// Map of run-time parameter/variable name (with '@') to value.
using ParamMap = std::map<std::string, Value>;

enum class BoundExprKind {
  kLiteral,
  kColumnRef,
  kParam,
  kUnary,
  kBinary,
  kLike,
  kIsNull,
  kFunction,
  kCase,
};

/// Built-in scalar functions.
enum class BuiltinFn { kGetDate, kAbs, kLen, kSubstring, kRound, kCoalesce };

/// A type-checked expression over an input row shape. Column references are
/// resolved to ordinals (the name is kept for unparsing remote SQL). IN and
/// BETWEEN are lowered to OR/AND chains during binding, so they do not appear
/// here. Aggregates never appear in bound scalar expressions either: the
/// binder replaces them with column references into the Aggregate operator's
/// output.
struct BoundExpr {
  BoundExpr(BoundExprKind k, TypeId t) : kind(k), type(t) {}
  virtual ~BoundExpr() = default;
  const BoundExprKind kind;
  TypeId type;
};

using BExprPtr = std::unique_ptr<BoundExpr>;

struct BoundLiteral : BoundExpr {
  explicit BoundLiteral(Value v)
      : BoundExpr(BoundExprKind::kLiteral, v.type()), value(std::move(v)) {}
  Value value;
};

struct BoundColumnRef : BoundExpr {
  BoundColumnRef(int ord, TypeId t, std::string n)
      : BoundExpr(BoundExprKind::kColumnRef, t), ordinal(ord),
        name(std::move(n)) {}
  int ordinal;
  std::string name;  // output name for unparsing; may be qualified
};

struct BoundParam : BoundExpr {
  BoundParam(std::string n, TypeId t)
      : BoundExpr(BoundExprKind::kParam, t), name(std::move(n)) {}
  std::string name;
};

struct BoundUnary : BoundExpr {
  BoundUnary(UnaryOp o, BExprPtr e, TypeId t)
      : BoundExpr(BoundExprKind::kUnary, t), op(o), operand(std::move(e)) {}
  UnaryOp op;
  BExprPtr operand;
};

struct BoundBinary : BoundExpr {
  BoundBinary(BinaryOp o, BExprPtr l, BExprPtr r, TypeId t)
      : BoundExpr(BoundExprKind::kBinary, t), op(o), left(std::move(l)),
        right(std::move(r)) {}
  BinaryOp op;
  BExprPtr left;
  BExprPtr right;
};

struct BoundLike : BoundExpr {
  BoundLike(BExprPtr in, BExprPtr pat, bool neg)
      : BoundExpr(BoundExprKind::kLike, TypeId::kBool), input(std::move(in)),
        pattern(std::move(pat)), negated(neg) {}
  BExprPtr input;
  BExprPtr pattern;
  bool negated;
};

struct BoundIsNull : BoundExpr {
  BoundIsNull(BExprPtr in, bool neg)
      : BoundExpr(BoundExprKind::kIsNull, TypeId::kBool), input(std::move(in)),
        negated(neg) {}
  BExprPtr input;
  bool negated;
};

struct BoundFunction : BoundExpr {
  BoundFunction(BuiltinFn f, std::vector<BExprPtr> a, TypeId t)
      : BoundExpr(BoundExprKind::kFunction, t), fn(f), args(std::move(a)) {}
  BuiltinFn fn;
  std::vector<BExprPtr> args;
};

/// Searched CASE after binding: simple CASE is lowered to comparisons by the
/// binder, so `whens` are boolean conditions here.
struct BoundCase : BoundExpr {
  BoundCase(std::vector<std::pair<BExprPtr, BExprPtr>> b, BExprPtr e, TypeId t)
      : BoundExpr(BoundExprKind::kCase, t), branches(std::move(b)),
        else_expr(std::move(e)) {}
  std::vector<std::pair<BExprPtr, BExprPtr>> branches;
  BExprPtr else_expr;  // null -> NULL
};

/// Deep copy.
BExprPtr CloneBound(const BoundExpr& expr);

/// Evaluation context: parameter values plus the engine's notion of now
/// (GETDATE on a simulated clock).
struct EvalContext {
  const ParamMap* params = nullptr;
  double current_time = 0;
};

/// Evaluates against an input row (may be null for row-free expressions).
/// SQL three-valued logic: unknown is represented as a NULL value.
StatusOr<Value> EvalBound(const BoundExpr& expr, const Row* row,
                          const EvalContext& ctx);

/// True iff the expression evaluated to non-NULL TRUE (filter semantics).
StatusOr<bool> EvalPredicate(const BoundExpr& expr, const Row* row,
                             const EvalContext& ctx);

/// Batch filter evaluation: sets (*keep)[i] to 1 iff `expr` evaluates to
/// non-NULL TRUE on *rows[i], exactly as EvalPredicate would. The predicate
/// is split into conjuncts once per batch; for the common
/// column-compared-to-row-free-expression conjuncts the row-free side is
/// evaluated once and each row costs a single Value::Compare — no per-row
/// StatusOr<Value> temporaries. Rows already rejected by an earlier conjunct
/// are skipped, and a conjunct whose row-free side is NULL rejects the whole
/// batch without touching any row (NULL compares to unknown, never TRUE).
/// Complex conjuncts fall back to EvalPredicate per surviving row.
Status EvalPredicateBatch(const BoundExpr& expr,
                          const std::vector<const Row*>& rows,
                          const EvalContext& ctx, std::vector<char>* keep);

// ---------------------------------------------------------------------------
// Analysis utilities (used by the optimizer)
// ---------------------------------------------------------------------------

/// Splits an AND tree into conjuncts (pointers into the expression).
void CollectConjuncts(const BoundExpr& expr,
                      std::vector<const BoundExpr*>* out);

/// Rebuilds an AND tree from cloned conjuncts; returns null for empty input.
BExprPtr AndTogether(std::vector<BExprPtr> conjuncts);

/// Records every column ordinal referenced.
void CollectColumnRefs(const BoundExpr& expr, std::vector<int>* ordinals);

/// True if no column references appear (literals/params/functions only);
/// such predicates can serve as ChoosePlan guards / startup predicates.
bool IsRowFree(const BoundExpr& expr);

/// True if any run-time parameter appears.
bool HasParam(const BoundExpr& expr);

/// Adds `delta` to every column ordinal (join input re-rooting).
void ShiftColumnRefs(BoundExpr* expr, int delta);

/// Remaps column ordinals through `mapping` (old ordinal -> new ordinal);
/// returns false if an ordinal has no mapping (mapping[i] < 0).
bool RemapColumnRefs(BoundExpr* expr, const std::vector<int>& mapping);

/// Renders bound expressions back to SQL (remote shipping / EXPLAIN). Column
/// references print their stored (possibly qualified) name.
std::string BoundToSql(const BoundExpr& expr);

/// Structural equality (used to match GROUP BY items and aggregates).
bool BoundEquals(const BoundExpr& a, const BoundExpr& b);

}  // namespace mtcache

#endif  // MTCACHE_EXPR_BOUND_EXPR_H_
