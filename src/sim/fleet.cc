#include "sim/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "tpcw/datagen.h"
#include "tpcw/procs.h"
#include "tpcw/schema.h"

namespace mtcache {
namespace sim {

using tpcw::Interaction;
using tpcw::kNumInteractions;
using tpcw::TpcwDriver;

namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t FnvMix(uint64_t hash, const char* data, size_t len) {
  for (size_t i = 0; i < len; ++i) {
    hash ^= static_cast<unsigned char>(data[i]);
    hash *= kFnvPrime;
  }
  return hash;
}

/// Percentile of a sorted latency vector (nearest-rank with floor, the same
/// convention for every caller so results stay byte-reproducible).
double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t index = static_cast<size_t>(p * (sorted.size() - 1));
  if (index >= sorted.size()) index = sorted.size() - 1;
  return sorted[index];
}

bool TolerableReplStatus(const Status& status) {
  // Injected pipeline crashes surface as kUnavailable; the component
  // recovers on its next poll. Anything else is a real failure.
  return status.ok() || status.code() == StatusCode::kUnavailable;
}

}  // namespace

std::string FleetResult::ToJson() const {
  char buf[1024];
  std::snprintf(
      buf, sizeof(buf),
      "{\"mix\": \"%s\", \"caches\": %d, \"cached_fraction\": %.4f, "
      "\"users\": %d, \"interactions\": %lld, \"wips\": %.3f, "
      "\"cache_qps\": %.3f, \"backend_qps\": %.3f, "
      "\"cache_db_units_per_sec\": %.1f, \"backend_db_units_per_sec\": %.1f, "
      "\"offload_pct\": %.3f, "
      "\"latency_avg\": %.6f, \"latency_p50\": %.6f, \"latency_p95\": %.6f, "
      "\"latency_p99\": %.6f, "
      "\"backend_util\": %.4f, \"cache_util_avg\": %.4f, "
      "\"cache_util_max\": %.4f, "
      "\"lag_avg\": %.6f, \"lag_p50\": %.6f, \"lag_p95\": %.6f, "
      "\"lag_p99\": %.6f, \"lag_max\": %.6f, \"lag_samples\": %lld, "
      "\"trace_digest\": \"%016llx\"}",
      mix.c_str(), num_caches, cached_fraction, users,
      static_cast<long long>(interactions), wips, cache_qps, backend_qps,
      cache_db_units_per_sec, backend_db_units_per_sec, offload_pct,
      latency_avg, latency_p50, latency_p95, latency_p99, backend_util,
      cache_util_avg, cache_util_max, lag_avg, lag_p50, lag_p95, lag_p99,
      lag_max, static_cast<long long>(lag_samples),
      static_cast<unsigned long long>(trace_digest));
  return buf;
}

Fleet::Fleet(FleetConfig config) : config_(std::move(config)) {}

Fleet::~Fleet() {
  // The fault plan is consulted by repl_ / mtcaches_; members destruct in
  // reverse declaration order, so detach it first to be explicit.
  if (repl_ != nullptr) repl_->set_fault_plan(nullptr);
  for (auto& mtcache : mtcaches_) mtcache->set_fault_plan(nullptr);
}

Status Fleet::BuildSystem() {
  if (config_.num_caches < 1) {
    return Status::InvalidArgument("fleet needs at least one cache server");
  }
  backend_ = std::make_unique<Server>(ServerOptions{"backend", "dbo", {}},
                                      &clock_, &links_);
  MT_RETURN_IF_ERROR(tpcw::CreateSchema(backend_.get()));
  MT_RETURN_IF_ERROR(tpcw::GenerateData(backend_.get(), config_.tpcw));
  MT_RETURN_IF_ERROR(tpcw::CreateProcedures(backend_.get(), config_.tpcw));
  clock_.AdvanceTo(tpcw::LoadEndTime(config_.tpcw));

  repl_ = std::make_unique<ReplicationSystem>(&clock_);
  for (int i = 0; i < config_.num_caches; ++i) {
    caches_.push_back(std::make_unique<Server>(
        ServerOptions{"cache" + std::to_string(i + 1), "dbo", {}}, &clock_,
        &links_));
    auto setup =
        MTCache::Setup(caches_.back().get(), backend_.get(), repl_.get());
    MT_RETURN_IF_ERROR(setup.status());
    mtcaches_.push_back(setup.ConsumeValue());
    MT_RETURN_IF_ERROR(tpcw::SetupTpcwCache(mtcaches_.back().get(),
                                            config_.tpcw,
                                            config_.cached_fraction));
  }
  // Per-cache session drivers with disjoint client id spaces; residue class
  // num_caches is reserved for the profiling driver.
  for (int i = 0; i < config_.num_caches; ++i) {
    drivers_.push_back(std::make_unique<TpcwDriver>(
        caches_[i].get(), config_.tpcw, config_.seed ^ (0x51ed0000ULL + i),
        /*driver_index=*/i, /*driver_stride=*/config_.num_caches + 1));
  }
  return Status::Ok();
}

Status Fleet::ReplicationRound() {
  Status reader = repl_->RunLogReader(backend_.get(), nullptr);
  if (!TolerableReplStatus(reader)) return reader;
  for (auto& cache : caches_) {
    Status apply = repl_->RunDistributionAgent(cache.get(), nullptr);
    if (!TolerableReplStatus(apply)) return apply;
  }
  return Status::Ok();
}

Status Fleet::ProfileInteractions() {
  TpcwDriver driver(caches_[0].get(), config_.tpcw, config_.seed ^ 0xfeed,
                    /*driver_index=*/config_.num_caches,
                    /*driver_stride=*/config_.num_caches + 1);
  for (int t = 0; t < kNumInteractions; ++t) {
    Interaction kind = static_cast<Interaction>(t);
    double pub_total = 0;
    double apply_total = 0;
    double txn_total = 0;
    for (int s = 0; s < config_.profile_samples; ++s) {
      int64_t statements_before = driver.statements_issued();
      MT_ASSIGN_OR_RETURN(ExecStats stats, driver.Run(kind));
      FleetProfile::Sample sample;
      sample.cache_cost = stats.local_cost;
      sample.backend_cost = stats.remote_cost;
      sample.cache_statements = driver.statements_issued() - statements_before;
      sample.backend_statements = stats.remote_queries;
      profile_.samples[t].push_back(sample);

      int64_t txns_before = repl_->metrics().txns_applied;
      ExecStats pub;
      MT_RETURN_IF_ERROR(repl_->RunLogReader(backend_.get(), &pub));
      pub_total += pub.local_cost;
      for (size_t c = 0; c < caches_.size(); ++c) {
        ExecStats apply;
        MT_RETURN_IF_ERROR(
            repl_->RunDistributionAgent(caches_[c].get(), &apply));
        if (c == 0) apply_total += apply.local_cost;
      }
      int64_t txns_delta = repl_->metrics().txns_applied - txns_before;
      txn_total += static_cast<double>(txns_delta) /
                   static_cast<double>(caches_.size());
    }
    profile_.repl_publisher_cost[t] = pub_total / config_.profile_samples;
    profile_.repl_apply_cost[t] = apply_total / config_.profile_samples;
    profile_.repl_txns[t] = txn_total / config_.profile_samples;
  }
  return Status::Ok();
}

Status Fleet::Initialize() {
  MT_RETURN_IF_ERROR(BuildSystem());
  MT_RETURN_IF_ERROR(ProfileInteractions());
  if (config_.fault_injection) {
    // A light but omnipresent storm: deliveries dropped in transit, agents
    // and the log reader crashing mid-operation, occasional WAL read stalls.
    // Deterministic for a fixed seed (the plan's own RNG drives every draw).
    fault_plan_ = std::make_unique<FaultPlan>(config_.seed ^ 0xfa17);
    fault_plan_->AddRandomRule(FaultSite::kDeliverTxn, FaultAction::kDrop,
                               0.10);
    fault_plan_->AddRandomRule(FaultSite::kApplyChange, FaultAction::kCrash,
                               0.02);
    fault_plan_->AddRandomRule(FaultSite::kApplyCommit, FaultAction::kCrash,
                               0.01);
    fault_plan_->AddRandomRule(FaultSite::kLogReadRecord, FaultAction::kCrash,
                               0.01);
    fault_plan_->AddRandomRule(FaultSite::kDeliverTxn, FaultAction::kDelay,
                               0.05);
    repl_->set_fault_plan(fault_plan_.get());
  }
  initialized_ = true;
  return Status::Ok();
}

Status Fleet::ExecuteInteractions(tpcw::WorkloadMix mix, int per_cache,
                                  int repl_every) {
  if (!initialized_) return Status::Internal("fleet not initialized");
  if (repl_every < 1) repl_every = 1;
  int64_t executed = 0;
  for (int round = 0; round < per_cache; ++round) {
    for (size_t i = 0; i < drivers_.size(); ++i) {
      auto result = drivers_[i]->RunNext(mix);
      MT_RETURN_IF_ERROR(result.status());
      clock_.Advance(0.01);
      if (++executed % repl_every == 0) {
        clock_.Advance(0.25);  // let delayed/backed-off deliveries retry
        MT_RETURN_IF_ERROR(ReplicationRound());
      }
    }
  }
  return Status::Ok();
}

Status Fleet::Drain() {
  return DrainPipeline(repl_.get(), &clock_,
                       /*max_rounds=*/200 + 50 * config_.num_caches);
}

ConsistencyReport Fleet::CheckConsistency() const {
  // One checker pass per cache so dead cached views (subscription gone) are
  // caught on every server. Each pass also re-walks the global subscription
  // list, so a real divergence may be reported once per cache — harmless:
  // the tests assert on merged.ok(), and a clean fleet merges empty.
  ConsistencyReport merged;
  for (const auto& cache : caches_) {
    ConsistencyReport report =
        ConsistencyChecker(repl_.get(), backend_.get(), cache.get()).Check();
    for (auto& diff : report.diffs) merged.diffs.push_back(std::move(diff));
    for (auto& violation : report.violations) {
      if (std::find(merged.violations.begin(), merged.violations.end(),
                    violation) == merged.violations.end()) {
        merged.violations.push_back(std::move(violation));
      }
    }
  }
  return merged;
}

StatusOr<FleetResult> Fleet::Simulate(const FleetLoad& load) {
  if (!initialized_) return Status::Internal("fleet not initialized");
  if (load.num_caches < 1) {
    return Status::InvalidArgument("simulated fleet needs >= 1 cache");
  }
  if (load.users < 1) {
    return Status::InvalidArgument("simulated fleet needs >= 1 user");
  }
  const int num_caches = load.num_caches;

  Des des;
  Random rng((config_.seed * 0x9E3779B97F4A7C15ULL) ^
             (load.seed * 0x2545F4914F6CDD1DULL) ^
             static_cast<uint64_t>(load.users));

  Machine backend(&des, "backend", config_.backend_cpus, config_.unit_rate);
  std::vector<std::unique_ptr<Machine>> cache_machines;
  for (int i = 0; i < num_caches; ++i) {
    cache_machines.push_back(std::make_unique<Machine>(
        &des, "cache" + std::to_string(i + 1), config_.cache_cpus,
        config_.unit_rate));
  }

  const double warmup_end = load.warmup;
  const double run_end = load.warmup + load.measure;

  // Measurement accumulators (measure window only).
  std::vector<double> latencies;
  int64_t completed = 0;
  int64_t cache_statements = 0;
  int64_t backend_statements = 0;
  double cache_db_units = 0;
  double backend_db_units = 0;
  bool counters_reset = false;

  // Trace (every completed interaction, warmup and all: the replay tests
  // compare full runs, not windows).
  int64_t trace_seq = 0;
  uint64_t digest = kFnvOffset;
  std::string trace;
  char line[160];

  // Replication pipeline state: work and source commit times accumulated
  // between distribution-agent polls.
  struct ReplBatch {
    double pub_cost = 0;
    double apply_cost = 0;
    std::vector<double> commit_times;  // one entry per source txn
  };
  auto pending = std::make_shared<ReplBatch>();
  LogHistogram lag;

  auto sample_demand = [&](Interaction kind) -> const FleetProfile::Sample& {
    const auto& list = profile_.samples[static_cast<int>(kind)];
    return list[rng.Uniform(0, static_cast<int64_t>(list.size()) - 1)];
  };

  // Closed-loop users: think -> cache-tier job (app + local db work) ->
  // backend job when the interaction pushed work remotely -> record ->
  // think again. User u is pinned to cache u % num_caches for its lifetime.
  struct UserFns {
    std::function<void(int)> start_think;
    std::function<void(int)> arrive;
  };
  auto fns = std::make_shared<UserFns>();
  fns->start_think = [&, fns](int user) {
    double think = config_.think_time * (0.95 + 0.1 * rng.NextDouble());
    des.Schedule(des.now() + think, [fns, user]() { fns->arrive(user); });
  };
  fns->arrive = [&, fns](int user) {
    if (des.now() >= run_end) return;  // wind down
    Interaction kind = tpcw::PickInteraction(load.mix, rng.NextDouble());
    const FleetProfile::Sample& demand = sample_demand(kind);
    int t = static_cast<int>(kind);
    int cache_index = user % num_caches;
    double started = des.now();
    auto finish = [&, fns, user, cache_index, started, t, demand]() {
      bool in_window = des.now() >= warmup_end && des.now() < run_end;
      if (in_window) {
        latencies.push_back(des.now() - started);
        ++completed;
        cache_statements += demand.cache_statements;
        backend_statements += demand.backend_statements;
        cache_db_units += demand.cache_cost;
        backend_db_units += demand.backend_cost;
      }
      int n = std::snprintf(line, sizeof(line),
                            "%lld u%d c%d %s %.6f %.6f\n",
                            static_cast<long long>(trace_seq++), user,
                            cache_index,
                            tpcw::InteractionName(static_cast<Interaction>(t)),
                            started, des.now());
      digest = FnvMix(digest, line, static_cast<size_t>(n));
      if (load.record_trace) trace.append(line, static_cast<size_t>(n));
      // Replication work this interaction caused at the publisher and at
      // every subscribing cache.
      pending->pub_cost += profile_.repl_publisher_cost[t];
      pending->apply_cost += profile_.repl_apply_cost[t];
      double txn_rate = profile_.repl_txns[t];
      if (txn_rate > 0) {
        // Fractional rates (e.g. 0.4 source txns per Shopping Cart) are
        // realized probabilistically so the long-run average matches.
        int txns = static_cast<int>(std::floor(txn_rate));
        if (rng.NextDouble() < txn_rate - txns) ++txns;
        for (int k = 0; k < txns; ++k) {
          pending->commit_times.push_back(des.now());
        }
      }
      fns->start_think(user);
    };
    Machine* my_cache = cache_machines[cache_index].get();
    double cache_demand = config_.app_work + demand.cache_cost;
    double backend_demand = demand.backend_cost;
    my_cache->Submit(cache_demand, [&, fns, backend_demand, finish]() {
      if (backend_demand > 0) {
        backend.Submit(backend_demand, finish);
      } else {
        finish();
      }
    });
  };

  for (int u = 0; u < load.users; ++u) {
    double offset = config_.think_time * rng.NextDouble();
    des.Schedule(offset, [fns, u]() { fns->arrive(u); });
  }

  // Replication agents: a periodic log-reader/distributor poll on the
  // backend whose completion fans apply jobs out to every cache machine.
  // Each batched source txn's commit->apply lag is recorded per subscriber
  // — this is the distribution sys.dm_repl_lag_histogram reports.
  std::function<void()> poll = [&]() {
    if (des.now() >= run_end) return;
    if (pending->pub_cost > 0 || !pending->commit_times.empty()) {
      auto batch = std::make_shared<ReplBatch>(std::move(*pending));
      *pending = ReplBatch{};
      backend.Submit(batch->pub_cost + 1, [&, batch]() {
        for (int c = 0; c < num_caches; ++c) {
          cache_machines[c]->Submit(batch->apply_cost + 1, [&, batch]() {
            if (des.now() < warmup_end || des.now() >= run_end) return;
            for (double commit_time : batch->commit_times) {
              lag.Record(des.now() - commit_time);
            }
          });
        }
      });
    }
    des.Schedule(des.now() + config_.repl_poll_interval, poll);
  };
  des.Schedule(config_.repl_poll_interval, poll);

  // Warmup boundary: reset machine utilization counters.
  des.Schedule(warmup_end, [&]() {
    backend.ResetCounters();
    for (auto& machine : cache_machines) machine->ResetCounters();
    counters_reset = true;
  });

  des.RunUntil(run_end);

  FleetResult result;
  result.mix = tpcw::MixName(load.mix);
  result.num_caches = num_caches;
  result.cached_fraction = config_.cached_fraction;
  result.users = load.users;
  result.interactions = completed;
  result.wips = completed / load.measure;
  result.cache_qps = cache_statements / load.measure;
  result.backend_qps = backend_statements / load.measure;
  result.cache_db_units_per_sec = cache_db_units / load.measure;
  result.backend_db_units_per_sec = backend_db_units / load.measure;
  double total_db = cache_db_units + backend_db_units;
  result.offload_pct = total_db > 0 ? 100.0 * cache_db_units / total_db : 0;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    double sum = 0;
    for (double l : latencies) sum += l;
    result.latency_avg = sum / latencies.size();
    result.latency_p50 = SortedPercentile(latencies, 0.50);
    result.latency_p95 = SortedPercentile(latencies, 0.95);
    result.latency_p99 = SortedPercentile(latencies, 0.99);
  }
  double window = counters_reset ? load.measure : run_end;
  result.backend_util = std::min(backend.Utilization(window), 1.0);
  double total_util = 0;
  for (auto& machine : cache_machines) {
    double util = std::min(machine->Utilization(window), 1.0);
    result.cache_util_max = std::max(result.cache_util_max, util);
    total_util += util;
  }
  result.cache_util_avg = total_util / num_caches;
  result.lag_samples = lag.Count();
  result.lag_avg = lag.Avg();
  result.lag_p50 = lag.Percentile(0.50);
  result.lag_p95 = lag.Percentile(0.95);
  result.lag_p99 = lag.Percentile(0.99);
  result.lag_max = lag.Max();
  result.trace_digest = digest;
  result.trace = std::move(trace);

  // Surface the simulated run's lag distribution through the real
  // pipeline's metrics: sys.dm_repl_lag_histogram on every cache now
  // includes these samples (the DMV is served off the shared metrics).
  repl_->MergeLagHistogram(lag);
  return result;
}

}  // namespace sim
}  // namespace mtcache
