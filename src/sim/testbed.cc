#include "sim/testbed.h"

#include <algorithm>

#include "tpcw/datagen.h"
#include "tpcw/procs.h"

namespace mtcache {
namespace sim {

using tpcw::Interaction;
using tpcw::kNumInteractions;
using tpcw::TpcwDriver;

Status Testbed::BuildSystem() {
  backend_ = std::make_unique<Server>(
      ServerOptions{"backend", "dbo", {}}, &clock_, &links_);
  MT_RETURN_IF_ERROR(tpcw::CreateSchema(backend_.get()));
  MT_RETURN_IF_ERROR(tpcw::GenerateData(backend_.get(), config_.tpcw));
  MT_RETURN_IF_ERROR(tpcw::CreateProcedures(backend_.get(), config_.tpcw));
  clock_.AdvanceTo(tpcw::LoadEndTime(config_.tpcw));

  if (config_.caching) {
    repl_ = std::make_unique<ReplicationSystem>(&clock_);
    for (int i = 0; i < config_.num_web_servers; ++i) {
      caches_.push_back(std::make_unique<Server>(
          ServerOptions{"cache" + std::to_string(i + 1), "dbo", {}}, &clock_,
          &links_));
      auto setup = MTCache::Setup(caches_.back().get(), backend_.get(),
                                  repl_.get());
      MT_RETURN_IF_ERROR(setup.status());
      mtcaches_.push_back(setup.ConsumeValue());
      MT_RETURN_IF_ERROR(
          tpcw::SetupTpcwCache(mtcaches_.back().get(), config_.tpcw));
    }
  }
  return Status::Ok();
}

Status Testbed::ProfileInteractions() {
  Server* connection =
      (config_.caching && config_.drivers_use_cache) ? caches_[0].get()
                                                     : backend_.get();
  TpcwDriver driver(connection, config_.tpcw, config_.seed ^ 0xfeed);

  for (int t = 0; t < kNumInteractions; ++t) {
    Interaction kind = static_cast<Interaction>(t);
    double pub_total = 0;
    double apply_total = 0;
    for (int s = 0; s < config_.profile_samples; ++s) {
      MT_ASSIGN_OR_RETURN(ExecStats stats, driver.Run(kind));
      profile_.samples[t].emplace_back(stats.local_cost, stats.remote_cost);
      if (config_.caching && config_.replication_enabled && repl_ != nullptr) {
        ExecStats pub;
        MT_RETURN_IF_ERROR(repl_->RunLogReader(backend_.get(), &pub));
        pub_total += pub.local_cost;
        for (size_t c = 0; c < caches_.size(); ++c) {
          ExecStats apply;
          MT_RETURN_IF_ERROR(
              repl_->RunDistributionAgent(caches_[c].get(), &apply));
          if (c == 0) apply_total += apply.local_cost;
        }
      }
    }
    profile_.repl_publisher_cost[t] = pub_total / config_.profile_samples;
    profile_.repl_apply_cost[t] = apply_total / config_.profile_samples;
  }
  return Status::Ok();
}

Status Testbed::Initialize() {
  MT_RETURN_IF_ERROR(BuildSystem());
  return ProfileInteractions();
}

StatusOr<TestbedResult> Testbed::Run(int users, double warmup,
                                     double measure) {
  Des des;
  Random rng(config_.seed * 7919 + users);

  // Machines.
  Machine backend(&des, "backend", config_.backend_cpus, config_.unit_rate);
  std::vector<std::unique_ptr<Machine>> web;
  for (int i = 0; i < config_.num_web_servers; ++i) {
    web.push_back(std::make_unique<Machine>(
        &des, "web" + std::to_string(i + 1), config_.web_cpus,
        config_.unit_rate));
  }

  // Measurement state.
  double warmup_end = warmup;
  double run_end = warmup + measure;
  std::vector<double> latencies;
  int64_t completed = 0;
  bool counters_reset = false;

  // Replication pipeline state: update work accumulated between polls.
  struct ReplBatch {
    double pub_cost = 0;
    double apply_cost = 0;
    double commit_time_sum = 0;
    int commits = 0;
  };
  ReplBatch pending;
  double repl_latency_sum = 0;
  double repl_latency_max = 0;
  int64_t repl_latency_count = 0;
  bool repl_active = config_.caching && config_.replication_enabled &&
                     !caches_.empty();

  // Mix + per-interaction demand sampling.
  auto sample = [&](Interaction kind) {
    const auto& list = profile_.samples[static_cast<int>(kind)];
    return list[rng.Uniform(0, static_cast<int64_t>(list.size()) - 1)];
  };
  TpcwDriver mix_picker(nullptr, config_.tpcw, config_.seed ^ 0xabcd);

  // Closed-loop users. Each user cycles: think -> web server job ->
  // (optional) backend job -> record latency -> think again.
  struct UserFns {
    std::function<void(int)> start_think;
    std::function<void(int)> arrive;
  };
  auto fns = std::make_shared<UserFns>();
  fns->start_think = [&, fns](int user) {
    double think = config_.think_time * (0.95 + 0.1 * rng.NextDouble());
    des.Schedule(des.now() + think, [fns, user]() { fns->arrive(user); });
  };
  fns->arrive = [&, fns](int user) {
    if (des.now() >= run_end) return;  // wind down
    Interaction kind = mix_picker.Pick(config_.mix);
    auto [web_db, backend_db] = sample(kind);
    int t = static_cast<int>(kind);
    double web_demand = config_.app_work;
    double backend_demand = 0;
    if (config_.caching && config_.drivers_use_cache) {
      web_demand += web_db;
      backend_demand = backend_db;
    } else {
      backend_demand = web_db + backend_db;
    }
    double started = des.now();
    Machine* my_web = web[user % web.size()].get();
    auto finish = [&, fns, user, started, t]() {
      if (des.now() >= warmup_end && des.now() < run_end) {
        latencies.push_back(des.now() - started);
        ++completed;
      }
      // Replication work caused by this interaction.
      if (repl_active) {
        pending.pub_cost += profile_.repl_publisher_cost[t];
        pending.apply_cost += profile_.repl_apply_cost[t];
        if (profile_.repl_publisher_cost[t] > 0) {
          pending.commit_time_sum += des.now();
          ++pending.commits;
        }
      }
      fns->start_think(user);
    };
    my_web->Submit(web_demand, [&, fns, backend_demand, finish]() {
      if (backend_demand > 0) {
        backend.Submit(backend_demand, finish);
      } else {
        finish();
      }
    });
  };

  for (int u = 0; u < users; ++u) {
    // Stagger initial arrivals across one think time.
    double offset = config_.think_time * rng.NextDouble();
    des.Schedule(offset, [fns, u]() { fns->arrive(u); });
  }

  // Replication agents: periodic log-reader poll on the backend; its
  // completion fans apply jobs out to every cache server. Propagation
  // latency = apply commit time - average source commit time of the batch.
  std::function<void()> poll = [&]() {
    if (des.now() >= run_end + 30) return;
    if (repl_active && (pending.pub_cost > 0 || pending.commits > 0)) {
      ReplBatch batch = pending;
      pending = ReplBatch{};
      backend.Submit(batch.pub_cost + 1, [&, batch]() {
        for (size_t c = 0; c < caches_.size() && c < web.size(); ++c) {
          bool record = c == 0;
          // Cache servers are co-located with the web machines (§3).
          Machine* cache_machine = web[c].get();
          cache_machine->Submit(batch.apply_cost + 1, [&, batch, record]() {
            if (!record || batch.commits == 0) return;
            double latency =
                des.now() - batch.commit_time_sum / batch.commits;
            if (des.now() >= warmup_end && des.now() < run_end) {
              repl_latency_sum += latency * batch.commits;
              repl_latency_count += batch.commits;
              repl_latency_max = std::max(repl_latency_max, latency);
            }
          });
        }
      });
    }
    des.Schedule(des.now() + config_.repl_poll_interval, poll);
  };
  if (repl_active) des.Schedule(config_.repl_poll_interval, poll);

  // External background load on the backend (§6.2.3 heavy-load setup).
  std::function<void()> background = [&]() {
    if (des.now() >= run_end) return;
    const double tick = 0.05;
    backend.Submit(config_.backend_background_util * config_.backend_cpus *
                       config_.unit_rate * tick,
                   nullptr);
    des.Schedule(des.now() + tick, background);
  };
  if (config_.backend_background_util > 0) des.Schedule(0.0, background);

  // Warmup boundary: reset utilization counters.
  des.Schedule(warmup_end, [&]() {
    backend.ResetCounters();
    for (auto& w : web) w->ResetCounters();
    counters_reset = true;
  });

  des.RunUntil(run_end);

  TestbedResult result;
  result.users = users;
  result.interactions = completed;
  result.wips = completed / measure;
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    size_t p90_index =
        std::min(latencies.size() - 1,
                 static_cast<size_t>(latencies.size() * 0.9));
    result.p90_latency = latencies[p90_index];
    double sum = 0;
    for (double l : latencies) sum += l;
    result.avg_latency = sum / latencies.size();
  }
  double window = counters_reset ? measure : run_end;
  result.backend_util = std::min(backend.Utilization(window), 1.0);
  double total_web = 0;
  for (auto& w : web) {
    double u = std::min(w->Utilization(window), 1.0);
    result.max_web_util = std::max(result.max_web_util, u);
    total_web += u;
  }
  result.avg_web_util = web.empty() ? 0 : total_web / web.size();
  if (repl_latency_count > 0) {
    result.repl_avg_latency = repl_latency_sum / repl_latency_count;
    result.repl_max_latency = repl_latency_max;
  }
  // When drivers bypass the caches, cache machines only apply changes; in
  // that mode web machines carry only app work + apply work, so their
  // utilization IS the apply overhead.
  if (config_.caching && !config_.drivers_use_cache) {
    result.cache_apply_util = result.avg_web_util;
  }
  return result;
}

StatusOr<TestbedResult> Testbed::FindMaxThroughput(double warmup,
                                                   double measure) {
  auto acceptable = [&](const TestbedResult& r) {
    double bottleneck = std::max(r.backend_util, r.max_web_util);
    return r.p90_latency <= config_.latency_limit && bottleneck <= 0.92;
  };

  MT_ASSIGN_OR_RETURN(TestbedResult best, Run(1, warmup, measure));
  if (!acceptable(best)) return best;

  // Exponential growth until the latency bound (or 92% CPU) is exceeded.
  int lo = 1;
  int hi = 2;
  while (hi <= 1 << 20) {
    MT_ASSIGN_OR_RETURN(TestbedResult r, Run(hi, warmup, measure));
    if (!acceptable(r)) break;
    best = r;
    lo = hi;
    hi *= 2;
  }
  // Refine between lo and hi.
  while (hi - lo > std::max(1, lo / 16)) {
    int mid = lo + (hi - lo) / 2;
    MT_ASSIGN_OR_RETURN(TestbedResult r, Run(mid, warmup, measure));
    if (acceptable(r)) {
      best = r;
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return best;
}

}  // namespace sim
}  // namespace mtcache
