#ifndef MTCACHE_SIM_DES_H_
#define MTCACHE_SIM_DES_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace mtcache {
namespace sim {

/// Minimal deterministic discrete-event simulator. Events at equal times
/// fire in scheduling order.
class Des {
 public:
  using Callback = std::function<void()>;

  double now() const { return now_; }

  void Schedule(double at, Callback fn) {
    if (at < now_) at = now_;
    heap_.push(Event{at, next_seq_++, std::move(fn)});
  }

  /// Runs events until the clock passes `until` (events after it stay
  /// queued) or the queue drains.
  void RunUntil(double until) {
    while (!heap_.empty() && heap_.top().time <= until) {
      Event ev = std::move(const_cast<Event&>(heap_.top()));
      heap_.pop();
      now_ = ev.time;
      ev.fn();
    }
    if (now_ < until) now_ = until;
  }

 private:
  struct Event {
    double time;
    int64_t seq;
    Callback fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> heap_;
  double now_ = 0;
  int64_t next_seq_ = 0;
};

/// A machine with `cpus` identical processors serving a FIFO queue of jobs.
/// A job occupies one CPU for demand/unit_rate seconds (no intra-job
/// parallelism, matching real query execution). Tracks busy time for CPU
/// utilization reporting — the paper's Figure 6(b) metric.
class Machine {
 public:
  Machine(Des* des, std::string name, int cpus, double unit_rate)
      : des_(des), name_(std::move(name)), cpus_(cpus), unit_rate_(unit_rate) {}

  const std::string& name() const { return name_; }

  void Submit(double demand, Des::Callback done) {
    queue_.push_back(Job{demand, std::move(done)});
    TryStart();
  }

  /// CPU-seconds consumed so far (across all CPUs).
  double busy_cpu_seconds() const { return busy_cpu_seconds_; }
  int64_t jobs_completed() const { return jobs_completed_; }
  int queue_length() const { return static_cast<int>(queue_.size()) + busy_; }

  /// Resets the utilization accumulator (warmup handling).
  void ResetCounters() {
    busy_cpu_seconds_ = 0;
    jobs_completed_ = 0;
  }

  /// Utilization over a window of `elapsed` seconds.
  double Utilization(double elapsed) const {
    if (elapsed <= 0) return 0;
    return busy_cpu_seconds_ / (elapsed * cpus_);
  }

 private:
  struct Job {
    double demand;
    Des::Callback done;
  };

  void TryStart() {
    while (busy_ < cpus_ && !queue_.empty()) {
      Job job = std::move(queue_.front());
      queue_.pop_front();
      ++busy_;
      double service = job.demand / unit_rate_;
      busy_cpu_seconds_ += service;
      Des::Callback done = std::move(job.done);
      des_->Schedule(des_->now() + service, [this, done = std::move(done)]() {
        --busy_;
        ++jobs_completed_;
        if (done) done();
        TryStart();
      });
    }
  }

  Des* des_;
  std::string name_;
  int cpus_;
  double unit_rate_;
  int busy_ = 0;
  std::deque<Job> queue_;
  double busy_cpu_seconds_ = 0;
  int64_t jobs_completed_ = 0;
};

}  // namespace sim
}  // namespace mtcache

#endif  // MTCACHE_SIM_DES_H_
