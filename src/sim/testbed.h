#ifndef MTCACHE_SIM_TESTBED_H_
#define MTCACHE_SIM_TESTBED_H_

#include <memory>
#include <vector>

#include "mtcache/mtcache.h"
#include "sim/des.h"
#include "tpcw/cache_setup.h"
#include "tpcw/workload.h"

namespace mtcache {
namespace sim {

/// Configuration of the simulated lab (§6.1.2: dual-CPU backend, single-CPU
/// web/cache servers, 1-second user think time, 90% latency bound).
struct TestbedConfig {
  tpcw::TpcwConfig tpcw;
  tpcw::WorkloadMix mix = tpcw::WorkloadMix::kShopping;
  int num_web_servers = 1;
  /// Deploy MTCache on the web servers (shadow DBs, cached views, procs).
  bool caching = true;
  /// Route the drivers' connections at the cache servers. When false with
  /// caching=true, drivers hit the backend directly while the caches keep
  /// subscribing — the §6.2.2 replication-overhead setup.
  bool drivers_use_cache = true;
  bool replication_enabled = true;

  // Machine model.
  int backend_cpus = 2;
  int web_cpus = 1;
  /// Cost units one CPU processes per second (calibration constant mapping
  /// the engine's measured work units to time; absolute WIPS scale with it,
  /// shapes do not).
  double unit_rate = 100000;
  /// Non-database (IIS/ISAPI page generation) work per interaction on the
  /// web server. On the paper's hardware this was a large share of a web
  /// server's CPU, which is what kept Ordering from gaining throughput when
  /// caches were added (§6.2.1).
  double app_work = 800;
  double think_time = 1.0;           // paper: fixed one second
  /// Log-reader / distribution-agent wake-up period ("a separate agent
  /// process that wakes up periodically", §2.2).
  double repl_poll_interval = 0.75;
  double latency_limit = 3.0;        // 90th percentile bound
  /// Fraction of backend capacity consumed by an external load stream (the
  /// §6.2.3 heavy-load setup drives the backend directly from an extra web
  /// server while the caches serve their own saturated users).
  double backend_background_util = 0.0;
  int profile_samples = 25;          // real executions per interaction type
  uint64_t seed = 42;
};

struct TestbedResult {
  int users = 0;
  double wips = 0;
  double p90_latency = 0;
  double avg_latency = 0;
  double backend_util = 0;
  double max_web_util = 0;
  double avg_web_util = 0;
  /// Replication propagation latency (commit on backend to commit on cache).
  double repl_avg_latency = 0;
  double repl_max_latency = 0;
  /// Mean utilization of cache machines that only apply changes (only
  /// meaningful when drivers bypass the caches).
  double cache_apply_util = 0;
  int64_t interactions = 0;
};

/// Measured per-interaction work profile (averaged real executions).
struct InteractionProfile {
  // Sampled (web_cost, backend_cost) pairs per interaction type.
  std::vector<std::pair<double, double>> samples[tpcw::kNumInteractions];
  // Replication pipeline work caused per interaction of each type.
  double repl_publisher_cost[tpcw::kNumInteractions] = {};
  double repl_apply_cost[tpcw::kNumInteractions] = {};  // per cache server
};

/// The simulated multi-machine testbed. Interactions execute *for real*
/// through the engine during profiling; the discrete-event simulation then
/// replays their measured service demands against queueing machines with
/// think-time-driven closed-loop users. See DESIGN.md §2 for why this
/// preserves the paper's shapes.
class Testbed {
 public:
  explicit Testbed(TestbedConfig config) : config_(std::move(config)) {}

  /// Builds the real system (backend + caches + replication), loads TPC-W,
  /// and measures the interaction profile.
  Status Initialize();

  /// Runs the closed-loop simulation with `users` emulated browsers.
  StatusOr<TestbedResult> Run(int users, double warmup = 20,
                              double measure = 100);

  /// The paper's methodology: raise the number of users until the latency
  /// bound is barely met (and the bottleneck stays at <= ~90% CPU); returns
  /// the measurement at that operating point.
  StatusOr<TestbedResult> FindMaxThroughput(double warmup = 15,
                                            double measure = 60);

  const InteractionProfile& profile() const { return profile_; }
  Server* backend() { return backend_.get(); }
  Server* cache(int i) { return caches_[i].get(); }
  ReplicationSystem* repl() { return repl_.get(); }
  const TestbedConfig& config() const { return config_; }

 private:
  Status BuildSystem();
  Status ProfileInteractions();

  TestbedConfig config_;
  SimClock clock_;
  LinkedServerRegistry links_;
  std::unique_ptr<Server> backend_;
  std::vector<std::unique_ptr<Server>> caches_;
  std::unique_ptr<ReplicationSystem> repl_;
  std::vector<std::unique_ptr<MTCache>> mtcaches_;
  InteractionProfile profile_;
};

}  // namespace sim
}  // namespace mtcache

#endif  // MTCACHE_SIM_TESTBED_H_
