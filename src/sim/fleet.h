#ifndef MTCACHE_SIM_FLEET_H_
#define MTCACHE_SIM_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "check/consistency.h"
#include "common/histogram.h"
#include "mtcache/mtcache.h"
#include "repl/fault.h"
#include "sim/des.h"
#include "tpcw/cache_setup.h"
#include "tpcw/workload.h"

namespace mtcache {
namespace sim {

/// Configuration of a mid-tier cache fleet: one real backend Server plus
/// `num_caches` real MTCache servers (catalog clones, cached views at
/// `cached_fraction`, replication subscriptions), and the machine model the
/// discrete-event simulation replays measured work against. The real system
/// is where interactions execute for real (profiling, consistency tests);
/// the DES is where tens of thousands of closed-loop users replay the
/// measured service demands against an arbitrarily large simulated fleet.
struct FleetConfig {
  tpcw::TpcwConfig tpcw;
  /// Real MTCache servers built by Initialize(). Profiling and consistency
  /// checks run against these; Simulate() may model more (FleetLoad).
  int num_caches = 2;
  /// Fraction of each cacheable table's rows covered by its cached view
  /// (see tpcw::SetupTpcwCache's fraction overload).
  double cached_fraction = 1.0;
  int profile_samples = 20;
  uint64_t seed = 42;
  /// Installs a seeded probabilistic FaultPlan (crash/drop/delay across the
  /// replication pipeline) after setup, so ExecuteInteractions runs against
  /// a faulty pipeline. Same seed => identical fault schedule.
  bool fault_injection = false;

  // Machine model for Simulate(). Defaults are "one modern box per tier":
  // a core processes unit_rate cost units per second.
  int backend_cpus = 2;
  int cache_cpus = 1;
  double unit_rate = 100000;
  /// Non-database page-generation work per interaction on the cache/web box.
  double app_work = 800;
  double think_time = 1.0;
  double repl_poll_interval = 0.75;
};

/// One simulated closed-loop run over an initialized fleet's profile.
struct FleetLoad {
  tpcw::WorkloadMix mix = tpcw::WorkloadMix::kShopping;
  /// Simulated cache machines. May exceed the real fleet: per-cache service
  /// demands come from the profile, so the DES scales the topology freely.
  int num_caches = 1;
  /// Total closed-loop users, pinned user -> cache (user % num_caches): a
  /// session's statements all route through its cache, the §4 ODBC
  /// re-routing at fleet scale.
  int users = 100;
  double warmup = 10;
  double measure = 60;
  /// Keep the full per-interaction trace text in FleetResult::trace. Off by
  /// default (a million-interaction run would hold ~60 MB); the 64-bit FNV
  /// digest over the same bytes is always computed.
  bool record_trace = false;
  /// Combined with FleetConfig::seed; two Simulate calls with equal seeds
  /// (and equal profiles) produce byte-identical traces and results.
  uint64_t seed = 1;
};

/// Measured per-interaction service demands and statement routing, averaged
/// or sampled from real executions through a cache server.
struct FleetProfile {
  struct Sample {
    double cache_cost = 0;    // work on the cache server (local_cost)
    double backend_cost = 0;  // work pushed to the backend (remote_cost)
    int64_t cache_statements = 0;    // statements issued at the cache tier
    int64_t backend_statements = 0;  // remote queries sent to the backend
  };
  std::vector<Sample> samples[tpcw::kNumInteractions];
  /// Replication pipeline work caused per interaction of each type.
  double repl_publisher_cost[tpcw::kNumInteractions] = {};
  double repl_apply_cost[tpcw::kNumInteractions] = {};  // per cache server
  /// Average source transactions distributed per interaction of each type
  /// (drives per-txn commit->apply lag accounting in the DES).
  double repl_txns[tpcw::kNumInteractions] = {};
};

/// One Simulate() measurement. ToJson() is byte-stable for a fixed seed —
/// the deterministic-replay tests compare it directly.
struct FleetResult {
  std::string mix;
  int num_caches = 0;
  double cached_fraction = 0;
  int users = 0;
  int64_t interactions = 0;  // completed inside the measure window
  double wips = 0;           // interactions per simulated second

  // Per-tier statement throughput and database work.
  double cache_qps = 0;    // statements/sec served at the cache tier
  double backend_qps = 0;  // statements/sec reaching the backend
  double cache_db_units_per_sec = 0;
  double backend_db_units_per_sec = 0;
  /// Share of database work kept off the backend:
  /// 100 * cache_db / (cache_db + backend_db).
  double offload_pct = 0;

  double latency_avg = 0;
  double latency_p50 = 0;
  double latency_p95 = 0;
  double latency_p99 = 0;

  double backend_util = 0;
  double cache_util_avg = 0;
  double cache_util_max = 0;

  // Commit->apply replication lag across every simulated subscription
  // (percentiles via the same LogHistogram that backs
  // sys.dm_repl_lag_histogram; Simulate merges the samples into the real
  // pipeline's metrics so the DMV reflects the run).
  double lag_avg = 0;
  double lag_p50 = 0;
  double lag_p95 = 0;
  double lag_p99 = 0;
  double lag_max = 0;
  int64_t lag_samples = 0;

  /// FNV-1a over every interaction trace record (warmup included).
  uint64_t trace_digest = 0;
  /// Full trace text, one record per completed interaction in completion
  /// order: "seq user cache interaction start end". Only populated when
  /// FleetLoad::record_trace is set.
  std::string trace;

  /// Single-line JSON (trace text excluded, digest included).
  std::string ToJson() const;
};

/// A backend + N MTCache servers wired through replication, profiled once,
/// then replayed at fleet scale on the discrete-event testbed. Everything is
/// deterministic under a fixed seed: the real system (data generation,
/// profiling, fault schedules) and the DES (event order, think-time jitter,
/// demand sampling), which is what makes the fleet a testable artifact.
class Fleet {
 public:
  explicit Fleet(FleetConfig config);
  ~Fleet();

  /// Builds the real fleet (backend, caches, cached views at the configured
  /// fraction, subscriptions), measures the interaction profile, and — when
  /// fault_injection is set — installs the fault plan.
  Status Initialize();

  /// Closed-loop DES run replaying the profile against `load.num_caches`
  /// simulated cache machines. Also folds the run's simulated commit->apply
  /// lag into the real pipeline's metrics (sys.dm_repl_lag_histogram).
  StatusOr<FleetResult> Simulate(const FleetLoad& load);

  /// Executes `per_cache` real interactions through each cache server's
  /// dedicated driver (disjoint client id spaces), interleaving a full
  /// replication round every `repl_every` interactions. Injected pipeline
  /// crashes (kUnavailable) are tolerated — they are the point of the
  /// fault-injection runs; any other error is returned.
  Status ExecuteInteractions(tpcw::WorkloadMix mix, int per_cache,
                             int repl_every = 7);

  /// Drives the replication pipeline to a quiesce point (DrainPipeline:
  /// faults disabled, clock advanced past backoffs).
  Status Drain();

  /// Runs the ConsistencyChecker for every cache (row diffs of each
  /// subscription recomputed against the backend + commit-order invariants
  /// + dead-view detection) and merges the reports. Meaningful after
  /// Drain().
  ConsistencyReport CheckConsistency() const;

  const FleetProfile& profile() const { return profile_; }
  const FleetConfig& config() const { return config_; }
  Server* backend() { return backend_.get(); }
  Server* cache(int i) { return caches_[i].get(); }
  MTCache* mtcache(int i) { return mtcaches_[i].get(); }
  ReplicationSystem* repl() { return repl_.get(); }
  FaultPlan* fault_plan() { return fault_plan_.get(); }
  SimClock* clock() { return &clock_; }

 private:
  Status BuildSystem();
  Status ProfileInteractions();
  /// One log-reader + all-subscriber distribution round, tolerating
  /// injected kUnavailable crashes. Charges nothing (profiling uses the
  /// stats-charging variant inline).
  Status ReplicationRound();

  FleetConfig config_;
  SimClock clock_;
  LinkedServerRegistry links_;
  std::unique_ptr<Server> backend_;
  std::vector<std::unique_ptr<Server>> caches_;
  std::unique_ptr<ReplicationSystem> repl_;
  std::vector<std::unique_ptr<MTCache>> mtcaches_;
  /// One driver per cache, index i / stride num_caches+1 (the profiling
  /// driver owns the last residue class), so concurrent client id spaces
  /// stay disjoint across the fleet.
  std::vector<std::unique_ptr<tpcw::TpcwDriver>> drivers_;
  std::unique_ptr<FaultPlan> fault_plan_;
  FleetProfile profile_;
  bool initialized_ = false;
};

}  // namespace sim
}  // namespace mtcache

#endif  // MTCACHE_SIM_FLEET_H_
