#ifndef MTCACHE_CATALOG_CATALOG_H_
#define MTCACHE_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "catalog/statistics.h"
#include "catalog/view_def.h"
#include "common/atomics.h"
#include "common/status.h"
#include "types/schema.h"

namespace mtcache {

/// Privileges checked by the binder. The shadow database duplicates the
/// backend's grants so authorization happens locally on the cache server.
enum class Privilege { kSelect, kInsert, kUpdate, kDelete, kExecute };

/// A secondary (or primary) index over a table. Keys are composite column
/// ordinal lists; storage keeps the corresponding B+-tree.
struct IndexDef {
  std::string name;
  std::vector<int> key_columns;  // ordinals into the table schema
  bool unique = false;
};

/// What kind of relation a TableDef describes.
enum class RelationKind {
  kBaseTable,
  kMaterializedView,  // regular matview (transactionally consistent)
  kCachedView,        // MTCache cached view: replica maintained by replication
};

/// A table, materialized view, or cached view. Views carry their
/// select-project definition; cached views additionally record the
/// subscription keeping them up to date. A `shadow` table exists in the
/// catalog (for parsing, permissions, and statistics) but holds no local
/// rows: the optimizer treats it as a Remote data source.
struct TableDef {
  std::string name;  // lower-cased
  Schema schema;
  std::vector<int> primary_key;  // ordinals; may be empty
  std::vector<IndexDef> indexes;
  TableStats stats;
  RelationKind kind = RelationKind::kBaseTable;
  std::optional<SelectProjectDef> view_def;  // set for (cached) matviews
  bool shadow = false;      // catalog-only: data lives on the backend
  /// Rows are produced on demand by the engine (sys.dm_* DMVs) instead of
  /// coming from storage. Virtual tables are read-only, local-only (never
  /// shipped remotely), and have no indexes.
  bool virtual_table = false;
  /// For shadow tables: the linked-server name of the backend that owns the
  /// data. A cache server may shadow tables from several backends (§3).
  std::string home_server;
  int64_t subscription_id = -1;  // for cached views: repl subscription
  /// For cached views: the publisher time this replica is known to be
  /// current as of (maintained by the replication agents). Queries with
  /// freshness requirements compare against this. -1 = unknown. Relaxed
  /// atomic: the replication driver advances it while concurrent sessions
  /// read it for currency checks and dm_mtcache_views.
  RelaxedDouble freshness_time = -1;
  // Grants: user -> privileges. An empty map means "granted to public".
  std::map<std::string, std::set<Privilege>> grants;

  int FindIndex(const std::string& index_name) const;
  /// Returns the ordinal of `column` in the schema, or -1.
  int ColumnOrdinal(const std::string& column) const;
};

/// A stored procedure. The body is kept as source text (a sequence of
/// statements in our T-SQL-like dialect); the engine compiles and caches it.
/// On the cache server, only procedures the DBA copied over exist locally;
/// calls to others are transparently forwarded to the backend (§5.2).
struct ProcedureDef {
  std::string name;  // lower-cased
  std::vector<std::pair<std::string, TypeId>> params;  // names include '@'
  std::string body_source;
  std::map<std::string, std::set<Privilege>> grants;
};

/// The catalog of one database: relations and procedures. No locking —
/// the whole system is single-threaded and deterministic by design.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  Status CreateTable(TableDef def);
  Status DropTable(const std::string& name);
  /// Returns nullptr if absent. The pointer stays valid until drop.
  TableDef* GetTable(const std::string& name);
  const TableDef* GetTable(const std::string& name) const;

  Status CreateProcedure(ProcedureDef def);
  Status DropProcedure(const std::string& name);
  const ProcedureDef* GetProcedure(const std::string& name) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> ProcedureNames() const;

  /// All cached views defined over the given base table (used by view
  /// matching and by replication change filtering).
  std::vector<const TableDef*> ViewsOver(const std::string& base_table) const;

  /// True if `user` holds `priv` on the table (empty grants = public).
  static bool HasPrivilege(const TableDef& table, const std::string& user,
                           Privilege priv);

 private:
  std::map<std::string, std::unique_ptr<TableDef>> tables_;
  std::map<std::string, ProcedureDef> procedures_;
};

}  // namespace mtcache

#endif  // MTCACHE_CATALOG_CATALOG_H_
