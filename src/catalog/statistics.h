#ifndef MTCACHE_CATALOG_STATISTICS_H_
#define MTCACHE_CATALOG_STATISTICS_H_

#include <string>
#include <vector>

namespace mtcache {

/// Per-column statistics used for cardinality estimation. Numeric columns
/// use real min/max; strings are projected to doubles by Value::AsStatDouble
/// so range selectivity is still monotone. When an equi-depth histogram is
/// present, range selectivity interpolates within its buckets instead of
/// assuming a uniform [min,max] — important for skewed columns.
struct ColumnStats {
  double min = 0;
  double max = 0;
  double ndv = 1;        // number of distinct values
  double null_frac = 0;  // fraction of NULLs
  /// Equi-depth histogram: ascending bucket upper bounds. Each of the
  /// `hist_bounds.size()` buckets holds the same number of rows; the first
  /// bucket spans [min, hist_bounds[0]]. Empty = no histogram.
  std::vector<double> hist_bounds;

  /// Selectivity of `col = literal` under uniformity within distinct values.
  double EqSelectivity() const { return ndv > 0 ? 1.0 / ndv : 1.0; }
  /// Selectivity of `col <= x`.
  double RangeLeSelectivity(double x) const;
  double RangeGeSelectivity(double x) const;
};

/// Per-table statistics. On an MTCache server these are *shadowed*: copied
/// from the backend so the local optimizer costs plans as if it could see the
/// backend data (§3: "all statistics on the shadow tables, indexes and
/// materialized views reflect their state on the backend database").
struct TableStats {
  double row_count = 0;
  double avg_row_bytes = 64;
  std::vector<ColumnStats> columns;

  bool empty() const { return columns.empty(); }
};

}  // namespace mtcache

#endif  // MTCACHE_CATALOG_STATISTICS_H_
