#include "catalog/view_def.h"

#include "common/string_util.h"

namespace mtcache {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

CompareOp FlipCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return CompareOp::kEq;
    case CompareOp::kNe:
      return CompareOp::kNe;
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kGe:
      return CompareOp::kLe;
  }
  return op;
}

bool SimplePredicate::Matches(const Value& v) const {
  if (v.is_null()) return false;  // SQL: NULL op x is not true
  int c = v.Compare(constant);
  switch (op) {
    case CompareOp::kEq:
      return c == 0;
    case CompareOp::kNe:
      return c != 0;
    case CompareOp::kLt:
      return c < 0;
    case CompareOp::kLe:
      return c <= 0;
    case CompareOp::kGt:
      return c > 0;
    case CompareOp::kGe:
      return c >= 0;
  }
  return false;
}

std::string SimplePredicate::ToString() const {
  return column + " " + CompareOpSymbol(op) + " " + constant.ToSqlLiteral();
}

bool SelectProjectDef::RowMatches(const std::vector<int>& pred_col_ordinals,
                                  const Row& row) const {
  for (size_t i = 0; i < predicates.size(); ++i) {
    int ord = pred_col_ordinals[i];
    if (ord < 0 || ord >= static_cast<int>(row.size())) return false;
    if (!predicates[i].Matches(row[ord])) return false;
  }
  return true;
}

std::string SelectProjectDef::ToSelectSql() const {
  std::string sql = "SELECT " + Join(columns, ", ") + " FROM " + base_table;
  if (!predicates.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < predicates.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += predicates[i].ToString();
    }
  }
  return sql;
}

}  // namespace mtcache
