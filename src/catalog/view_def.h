#ifndef MTCACHE_CATALOG_VIEW_DEF_H_
#define MTCACHE_CATALOG_VIEW_DEF_H_

#include <string>
#include <vector>

#include "types/value.h"

namespace mtcache {

/// Comparison operators appearing in simple predicates.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpSymbol(CompareOp op);
/// Flips the operand order: a < b  <->  b > a.
CompareOp FlipCompareOp(CompareOp op);

/// One conjunct of a select-project definition: `column op constant`.
/// Materialized-view and replication-article predicates are restricted to
/// conjunctions of these (the paper's cached views are "selections and
/// projections of tables or materialized views", §1/§4), which is what makes
/// view matching and log-change filtering tractable.
struct SimplePredicate {
  std::string column;  // base-table column name, lower-cased
  CompareOp op = CompareOp::kEq;
  Value constant;

  /// Evaluates against a value of the named column.
  bool Matches(const Value& v) const;

  std::string ToString() const;
};

/// A select-project expression over a single base table (or matview): the
/// shape shared by cached materialized views (§4) and replication articles
/// (§2.2: "an article is defined by a select-project expression over a table
/// or a materialized view").
struct SelectProjectDef {
  std::string base_table;            // lower-cased
  std::vector<std::string> columns;  // projected base columns, in view order
  std::vector<SimplePredicate> predicates;  // conjunction; empty = all rows

  /// True if `row_columns/row` (full base-table row) satisfies all
  /// predicates. `col_of` maps column name -> ordinal in the base row.
  bool RowMatches(const std::vector<int>& pred_col_ordinals,
                  const Row& row) const;

  /// Renders as SQL text (SELECT c1, c2 FROM t WHERE ...), used when the
  /// subscription snapshot runs through the normal query path.
  std::string ToSelectSql() const;
};

}  // namespace mtcache

#endif  // MTCACHE_CATALOG_VIEW_DEF_H_
