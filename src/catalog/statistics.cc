#include "catalog/statistics.h"

#include <algorithm>

namespace mtcache {

double ColumnStats::RangeLeSelectivity(double x) const {
  if (!hist_bounds.empty()) {
    // Equi-depth: each bucket carries 1/B of the rows. Count full buckets
    // below x, then interpolate linearly inside the straddled bucket.
    const double bucket_frac = 1.0 / hist_bounds.size();
    double lo = min;
    for (size_t i = 0; i < hist_bounds.size(); ++i) {
      double hi = hist_bounds[i];
      if (x >= hi) {
        lo = hi;
        continue;
      }
      double within = hi > lo ? (x - lo) / (hi - lo) : 1.0;
      within = std::clamp(within, 0.0, 1.0);
      return std::clamp(i * bucket_frac + within * bucket_frac, 0.0, 1.0);
    }
    return 1.0;
  }
  if (max <= min) return x >= max ? 1.0 : 0.0;
  double f = (x - min) / (max - min);
  return std::clamp(f, 0.0, 1.0);
}

double ColumnStats::RangeGeSelectivity(double x) const {
  if (!hist_bounds.empty()) {
    return std::clamp(1.0 - RangeLeSelectivity(x), 0.0, 1.0);
  }
  if (max <= min) return x <= min ? 1.0 : 0.0;
  double f = (max - x) / (max - min);
  return std::clamp(f, 0.0, 1.0);
}

}  // namespace mtcache
