#include "catalog/catalog.h"

namespace mtcache {

int TableDef::FindIndex(const std::string& index_name) const {
  for (size_t i = 0; i < indexes.size(); ++i) {
    if (indexes[i].name == index_name) return static_cast<int>(i);
  }
  return -1;
}

int TableDef::ColumnOrdinal(const std::string& column) const {
  for (int i = 0; i < schema.num_columns(); ++i) {
    if (schema.column(i).name == column) return i;
  }
  return -1;
}

Status Catalog::CreateTable(TableDef def) {
  if (tables_.count(def.name) > 0) {
    return Status::AlreadyExists("table " + def.name + " already exists");
  }
  std::string name = def.name;
  tables_[name] = std::make_unique<TableDef>(std::move(def));
  return Status::Ok();
}

Status Catalog::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return Status::NotFound("table " + name + " does not exist");
  }
  return Status::Ok();
}

TableDef* Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

const TableDef* Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : it->second.get();
}

Status Catalog::CreateProcedure(ProcedureDef def) {
  if (procedures_.count(def.name) > 0) {
    return Status::AlreadyExists("procedure " + def.name + " already exists");
  }
  std::string name = def.name;
  procedures_.emplace(name, std::move(def));
  return Status::Ok();
}

Status Catalog::DropProcedure(const std::string& name) {
  if (procedures_.erase(name) == 0) {
    return Status::NotFound("procedure " + name + " does not exist");
  }
  return Status::Ok();
}

const ProcedureDef* Catalog::GetProcedure(const std::string& name) const {
  auto it = procedures_.find(name);
  return it == procedures_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, def] : tables_) names.push_back(name);
  return names;
}

std::vector<std::string> Catalog::ProcedureNames() const {
  std::vector<std::string> names;
  names.reserve(procedures_.size());
  for (const auto& [name, def] : procedures_) names.push_back(name);
  return names;
}

std::vector<const TableDef*> Catalog::ViewsOver(
    const std::string& base_table) const {
  std::vector<const TableDef*> views;
  for (const auto& [name, def] : tables_) {
    if (def->view_def.has_value() && def->view_def->base_table == base_table) {
      views.push_back(def.get());
    }
  }
  return views;
}

bool Catalog::HasPrivilege(const TableDef& table, const std::string& user,
                           Privilege priv) {
  if (table.grants.empty()) return true;  // granted to public
  auto it = table.grants.find(user);
  if (it == table.grants.end()) return false;
  return it->second.count(priv) > 0;
}

}  // namespace mtcache
