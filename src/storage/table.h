#ifndef MTCACHE_STORAGE_TABLE_H_
#define MTCACHE_STORAGE_TABLE_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "storage/bptree.h"
#include "storage/wal.h"
#include "types/value.h"

namespace mtcache {

class Transaction;

/// A heap row version. Rows are immutable once installed: DML installs a new
/// version (a fresh shared_ptr) instead of mutating in place, so a scan
/// snapshot taken before the change keeps the old payload alive and never
/// observes a torn row.
using RowPtr = std::shared_ptr<const Row>;

/// One consistent, immutable view of a table's live rows, shared refcounted
/// between the table's snapshot cache and any number of in-flight scans.
/// `rows` holds the live rows in slot order; `dead_slots` is how many slots
/// were skipped (scans charge the dead remainder for costing parity with a
/// slot-by-slot walk).
struct HeapSnapshot {
  std::vector<RowPtr> rows;
  int64_t dead_slots = 0;
};
using HeapSnapshotPtr = std::shared_ptr<const HeapSnapshot>;

/// Slotted in-memory row store. RowIds are slot numbers; deleted slots go to
/// a free list and may be reused (a reuse bumps nothing — replication
/// identifies rows by key, not RowId, so reuse is safe).
class HeapTable {
 public:
  RowId Insert(Row row);
  /// Re-inserts a row at a specific slot (transaction rollback of a delete).
  void RestoreAt(RowId rid, Row row);
  bool Delete(RowId rid);
  bool Update(RowId rid, Row row);

  bool IsLive(RowId rid) const {
    return rid >= 0 && rid < static_cast<RowId>(rows_.size()) && live_[rid];
  }
  /// Callers must check IsLive first: a dead slot holds no row version.
  const Row& Get(RowId rid) const { return *rows_[rid]; }
  /// The refcounted version at `rid`, for snapshot assembly (no payload
  /// copy). Same liveness contract as Get.
  const RowPtr& GetRef(RowId rid) const { return rows_[rid]; }
  int64_t live_count() const { return live_count_; }
  RowId slot_count() const { return static_cast<RowId>(rows_.size()); }

 private:
  std::vector<RowPtr> rows_;
  std::vector<bool> live_;
  std::vector<RowId> free_list_;
  int64_t live_count_ = 0;
};

/// A stored relation: heap plus the B+-trees for each index in the TableDef.
/// All mutations go through the logged, transactional entry points, which
/// enforce unique constraints, maintain every index, write WAL records, and
/// register undo actions with the transaction.
///
/// Concurrency: a table-granularity reader/writer latch. Every mutation
/// entry point (logged and physical) takes the latch exclusive internally
/// for the duration of that single row change, so DML against one table
/// serializes while concurrent SELECTs of other tables proceed. Readers take
/// it shared via latch() just long enough to materialize the rows they need
/// (scans copy matching rows at Open; they never hold the latch across
/// Next). Because no code path ever holds two table latches at once — each
/// mutation latches exactly one table, and rollback undoes entries one
/// self-latching call at a time — there is no lock-order cycle to worry
/// about. DDL (AddIndex/BuildIndex/RemoveIndex/RecomputeStats) is
/// setup-only and must not run concurrently with queries.
class StoredTable {
 public:
  /// `def` and `log` must outlive the table. `log` may be null for catalogs
  /// that do not replicate (e.g. scratch databases in tests).
  StoredTable(TableDef* def, LogManager* log);

  const TableDef& def() const { return *def_; }
  TableDef* mutable_def() { return def_; }
  HeapTable& heap() { return heap_; }
  const HeapTable& heap() const { return heap_; }

  /// Number of live rows.
  int64_t row_count() const { return heap_.live_count(); }

  // --- Logged, transactional mutations -------------------------------------

  StatusOr<RowId> Insert(const Row& row, Transaction* txn);
  Status Delete(RowId rid, Transaction* txn);
  Status Update(RowId rid, const Row& new_row, Transaction* txn);

  // --- Physical (unlogged) mutations, used only by transaction rollback ----

  void PhysicalDelete(RowId rid);
  void PhysicalRestore(RowId rid, const Row& row);
  void PhysicalUpdate(RowId rid, const Row& row);

  // --- Index access ---------------------------------------------------------

  /// The B+-tree for index ordinal `i` (position in def().indexes).
  const BPlusTree& index(int i) const { return indexes_[i]; }
  /// (Re)builds index ordinal `i` from the heap (CREATE INDEX on a table
  /// that already has rows).
  void BuildIndex(int i);
  /// Appends a new index tree; call after pushing the IndexDef into def().
  void AddIndex();
  /// Drops index ordinal `i`'s tree; call after erasing the IndexDef.
  void RemoveIndex(int i) { indexes_.erase(indexes_.begin() + i); }

  /// Extracts the key columns of `row` for index `i`.
  Row IndexKey(int i, const Row& row) const;

  /// Recomputes the TableDef's statistics from the stored rows.
  void RecomputeStats();

  /// The table latch. Readers lock it shared while copying rows out of the
  /// heap/indexes; mutations lock it exclusive internally. Exposed so the
  /// executor and engine read paths can take shared guards.
  std::shared_mutex& latch() const { return latch_; }

  /// An immutable snapshot of the live rows, built lazily and cached until
  /// the next mutation. A repeat scan of an unchanged table is O(1): it
  /// bumps one refcount and shares the cached row-pointer vector. A cold
  /// snapshot is built under a briefly-held shared latch in O(slots) pointer
  /// copies — row payloads are never copied. The returned snapshot stays
  /// valid (and its rows torn-free) for as long as the caller holds it, no
  /// matter what DML runs meanwhile.
  HeapSnapshotPtr ScanSnapshot() const;

 private:
  Status CheckUnique(const Row& row, RowId ignore_rid) const;
  void IndexInsert(const Row& row, RowId rid);
  void IndexErase(const Row& row, RowId rid);
  /// Drops the cached snapshot. Called by every mutation while it holds the
  /// exclusive latch, so a concurrent ScanSnapshot (shared latch) can never
  /// publish a stale cache over the invalidation.
  void InvalidateSnapshot();

  TableDef* def_;
  LogManager* log_;
  HeapTable heap_;
  std::vector<BPlusTree> indexes_;
  mutable std::shared_mutex latch_;
  /// Guards snapshot_ only (the cache slot, not the snapshot contents —
  /// those are immutable). Separate from latch_ so two concurrent cold
  /// readers, both holding latch_ shared, can still race to publish safely.
  mutable std::mutex snapshot_mu_;
  mutable HeapSnapshotPtr snapshot_;
};

/// Undo entry captured by StoredTable mutations.
struct UndoEntry {
  StoredTable* table = nullptr;
  LogRecordType op = LogRecordType::kInsert;
  RowId rid = 0;
  Row before;  // for delete/update undo
};

/// A transaction: id, state, and the undo chain. Commit/abort are driven by
/// the TransactionManager; statement execution appends undo entries here.
class Transaction {
 public:
  explicit Transaction(TxnId id) : id_(id) {}

  TxnId id() const { return id_; }
  bool active() const { return active_; }

  void AddUndo(UndoEntry entry) { undo_.push_back(std::move(entry)); }

  /// Applies undo entries in reverse and deactivates. Called by Abort.
  void Rollback();
  void MarkCommitted() { active_ = false; }

 private:
  TxnId id_;
  bool active_ = true;
  std::vector<UndoEntry> undo_;
};

/// Hands out transactions and writes Begin/Commit/Abort to the WAL. The
/// commit timestamp comes from the owner (simulated clock) so replication
/// latency can be measured.
class TransactionManager {
 public:
  explicit TransactionManager(LogManager* log) : log_(log) {}

  std::unique_ptr<Transaction> Begin();
  void Commit(Transaction* txn, double commit_time);
  void Abort(Transaction* txn);

 private:
  LogManager* log_;
  std::atomic<TxnId> next_txn_{1};  // sessions begin transactions in parallel
};

/// Recomputes TableStats by scanning the heap.
TableStats ComputeTableStats(const Schema& schema, const HeapTable& heap);

}  // namespace mtcache

#endif  // MTCACHE_STORAGE_TABLE_H_
