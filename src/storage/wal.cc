#include "storage/wal.h"

namespace mtcache {

Lsn LogManager::ReadFrom(Lsn from, std::vector<LogRecord>* out) const {
  MutexWait guard(mu_, WaitSite::kWalMutex);
  if (from < first_lsn_) from = first_lsn_;
  for (const LogRecord& rec : records_) {
    if (rec.lsn < from) continue;
    if (read_fault_hook_ && read_fault_hook_(rec.lsn)) return rec.lsn;
    out->push_back(rec);
  }
  return next_lsn_;
}

void LogManager::TruncateBefore(Lsn up_to) {
  MutexWait guard(mu_, WaitSite::kWalMutex);
  while (!records_.empty() && records_.front().lsn < up_to) {
    records_.pop_front();
  }
  if (up_to > first_lsn_) first_lsn_ = up_to;
}

}  // namespace mtcache
