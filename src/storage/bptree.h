#ifndef MTCACHE_STORAGE_BPTREE_H_
#define MTCACHE_STORAGE_BPTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "types/value.h"

namespace mtcache {

/// Row identifier: slot number in a table's heap.
using RowId = int64_t;

/// In-memory B+-tree over composite Value keys, mapping key -> RowId.
/// Duplicate user keys are supported by treating (key, rowid) as the full
/// unique key. Leaves are chained for range scans (index seeks produce
/// ordered output). Deletion removes entries from leaves without rebalancing;
/// for this system's insert-heavy workloads the resulting slack is
/// irrelevant and keeps the structure simple.
class BPlusTree {
 public:
  static constexpr int kFanout = 64;

  BPlusTree();
  ~BPlusTree();
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;

  void Insert(const Row& key, RowId rid);
  /// Removes the (key, rid) entry; returns false if absent.
  bool Erase(const Row& key, RowId rid);

  int64_t size() const { return size_; }

  struct Node;

  /// Forward iterator over (key, rowid) entries in key order.
  class Iterator {
   public:
    bool Valid() const { return node_ != nullptr; }
    const Row& key() const;
    RowId rowid() const;
    void Next();

   private:
    friend class BPlusTree;
    Node* node_ = nullptr;
    int pos_ = 0;
  };

  Iterator Begin() const;
  /// First entry with user key >= `key` (prefix comparison over the leading
  /// key.size() columns).
  Iterator SeekGe(const Row& key) const;
  /// First entry with user key > `key` (prefix comparison).
  Iterator SeekGt(const Row& key) const;

  /// Lexicographic comparison of the first min(|a|,|b|) columns; ties broken
  /// short-is-smaller only when requested by full == true.
  static int ComparePrefix(const Row& a, const Row& b);

 private:
  std::unique_ptr<Node> root_;
  int64_t size_ = 0;
};

}  // namespace mtcache

#endif  // MTCACHE_STORAGE_BPTREE_H_
