#ifndef MTCACHE_STORAGE_WAL_H_
#define MTCACHE_STORAGE_WAL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/wait_stats.h"
#include "types/value.h"

namespace mtcache {

using Lsn = int64_t;
using TxnId = int64_t;

enum class LogRecordType { kBegin, kCommit, kAbort, kInsert, kDelete, kUpdate };

/// One write-ahead-log record. Data records carry full before/after row
/// images, which is exactly what SQL Server's transactional replication log
/// reader extracts (§2.2: "changes to a published table or view are
/// collected by log sniffing").
struct LogRecord {
  Lsn lsn = 0;
  TxnId txn = 0;
  LogRecordType type = LogRecordType::kBegin;
  std::string table;   // lower-cased; empty for Begin/Commit/Abort
  Row before;          // Delete/Update
  Row after;           // Insert/Update
  double commit_time = 0;  // Commit records: simulated commit timestamp
};

/// The database log. Append-only; readers (the replication log reader) poll
/// from a saved position. Records already propagated to all subscribers can
/// be truncated. Internally synchronized: concurrent sessions append while
/// the replication log reader scans from another thread.
class LogManager {
 public:
  LogManager() = default;
  LogManager(const LogManager&) = delete;
  LogManager& operator=(const LogManager&) = delete;

  Lsn Append(LogRecord record) {
    // Wait-accounted: sessions appending race the replication log reader's
    // scans here (sys.dm_os_wait_stats WAL_MUTEX). The cheap const getters
    // below keep plain guards so polling doesn't dominate the counts.
    MutexWait guard(mu_, WaitSite::kWalMutex);
    record.lsn = next_lsn_++;
    Lsn lsn = record.lsn;
    records_.push_back(std::move(record));
    return lsn;
  }

  Lsn next_lsn() const {
    std::lock_guard<std::mutex> guard(mu_);
    return next_lsn_;
  }
  Lsn first_lsn() const {
    std::lock_guard<std::mutex> guard(mu_);
    return first_lsn_;
  }
  int64_t size() const {
    std::lock_guard<std::mutex> guard(mu_);
    return static_cast<int64_t>(records_.size());
  }

  /// Copies records with lsn in [from, next_lsn()) into `out`; returns the
  /// new read position. A read-fault hook (below) can stop the scan early,
  /// in which case the returned position is the first *unread* lsn — the
  /// caller resumes from there on its next poll.
  Lsn ReadFrom(Lsn from, std::vector<LogRecord>* out) const;

  /// Fault-injection seam for the log-reader path: called before each record
  /// is handed out; returning true aborts the scan at that record (a torn /
  /// failed log page read). Replication recovery resumes from the returned
  /// position, so a stalled read only delays propagation, never loses it.
  using ReadFaultHook = std::function<bool(Lsn lsn)>;
  void set_read_fault_hook(ReadFaultHook hook) { read_fault_hook_ = std::move(hook); }

  /// Drops records with lsn < up_to (done after distribution, §2.2: "once
  /// changes have been propagated to all subscribers, they are deleted").
  void TruncateBefore(Lsn up_to);

 private:
  mutable std::mutex mu_;  // guards records_, next_lsn_, first_lsn_
  std::deque<LogRecord> records_;
  Lsn next_lsn_ = 1;
  Lsn first_lsn_ = 1;
  ReadFaultHook read_fault_hook_;
};

}  // namespace mtcache

#endif  // MTCACHE_STORAGE_WAL_H_
