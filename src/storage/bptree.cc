#include "storage/bptree.h"

#include <cassert>

namespace mtcache {

struct BPlusTree::Node {
  bool leaf = true;
  // Internal: keys are separators; children.size() == keys.size() + 1 and
  // keys[i] is the smallest (key,rid) entry under children[i+1].
  // Leaf: keys[i]/rids[i] are the entries.
  std::vector<Row> keys;
  std::vector<RowId> rids;  // parallel to keys (leaf entries or separators)
  std::vector<std::unique_ptr<Node>> children;
  Node* next = nullptr;  // leaf chain
};

namespace {

// Full-entry comparison: lexicographic over columns then rowid.
int CompareEntry(const Row& a, RowId arid, const Row& b, RowId brid) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  if (arid != brid) return arid < brid ? -1 : 1;
  return 0;
}

}  // namespace

int BPlusTree::ComparePrefix(const Row& a, const Row& b) {
  size_t n = a.size() < b.size() ? a.size() : b.size();
  for (size_t i = 0; i < n; ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c;
  }
  return 0;
}

BPlusTree::BPlusTree() : root_(std::make_unique<Node>()) {}
BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

namespace {

// Finds the child index to descend into for an entry (key, rid).
int ChildIndex(const BPlusTree::Node& node, const Row& key, RowId rid) {
  int lo = 0;
  int hi = static_cast<int>(node.keys.size());
  // First separator strictly greater than the entry -> descend left of it.
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (CompareEntry(node.keys[mid], node.rids[mid], key, rid) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

struct SplitResult {
  bool split = false;
  Row sep_key;
  RowId sep_rid = 0;
  std::unique_ptr<BPlusTree::Node> right;
};

SplitResult InsertRec(BPlusTree::Node* node, const Row& key, RowId rid) {
  if (node->leaf) {
    // Position for insertion (keep sorted by (key, rid)).
    int lo = 0;
    int hi = static_cast<int>(node->keys.size());
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (CompareEntry(node->keys[mid], node->rids[mid], key, rid) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    node->keys.insert(node->keys.begin() + lo, key);
    node->rids.insert(node->rids.begin() + lo, rid);
  } else {
    int ci = ChildIndex(*node, key, rid);
    SplitResult child_split = InsertRec(node->children[ci].get(), key, rid);
    if (child_split.split) {
      node->keys.insert(node->keys.begin() + ci, std::move(child_split.sep_key));
      node->rids.insert(node->rids.begin() + ci, child_split.sep_rid);
      node->children.insert(node->children.begin() + ci + 1,
                            std::move(child_split.right));
    }
  }

  SplitResult result;
  if (static_cast<int>(node->keys.size()) <= BPlusTree::kFanout) return result;

  // Split the node in half.
  int mid = static_cast<int>(node->keys.size()) / 2;
  auto right = std::make_unique<BPlusTree::Node>();
  right->leaf = node->leaf;
  if (node->leaf) {
    right->keys.assign(node->keys.begin() + mid, node->keys.end());
    right->rids.assign(node->rids.begin() + mid, node->rids.end());
    node->keys.resize(mid);
    node->rids.resize(mid);
    right->next = node->next;
    node->next = right.get();
    result.sep_key = right->keys.front();
    result.sep_rid = right->rids.front();
  } else {
    // Separator at `mid` moves up.
    result.sep_key = std::move(node->keys[mid]);
    result.sep_rid = node->rids[mid];
    right->keys.assign(std::make_move_iterator(node->keys.begin() + mid + 1),
                       std::make_move_iterator(node->keys.end()));
    right->rids.assign(node->rids.begin() + mid + 1, node->rids.end());
    for (size_t i = mid + 1; i < node->children.size(); ++i) {
      right->children.push_back(std::move(node->children[i]));
    }
    node->keys.resize(mid);
    node->rids.resize(mid);
    node->children.resize(mid + 1);
  }
  result.split = true;
  result.right = std::move(right);
  return result;
}

}  // namespace

void BPlusTree::Insert(const Row& key, RowId rid) {
  SplitResult split = InsertRec(root_.get(), key, rid);
  if (split.split) {
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    new_root->keys.push_back(std::move(split.sep_key));
    new_root->rids.push_back(split.sep_rid);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(split.right));
    root_ = std::move(new_root);
  }
  ++size_;
}

bool BPlusTree::Erase(const Row& key, RowId rid) {
  Node* node = root_.get();
  while (!node->leaf) {
    node = node->children[ChildIndex(*node, key, rid)].get();
  }
  for (size_t i = 0; i < node->keys.size(); ++i) {
    if (CompareEntry(node->keys[i], node->rids[i], key, rid) == 0) {
      node->keys.erase(node->keys.begin() + i);
      node->rids.erase(node->rids.begin() + i);
      --size_;
      return true;
    }
  }
  return false;
}

const Row& BPlusTree::Iterator::key() const { return node_->keys[pos_]; }
RowId BPlusTree::Iterator::rowid() const { return node_->rids[pos_]; }

void BPlusTree::Iterator::Next() {
  ++pos_;
  while (node_ != nullptr && pos_ >= static_cast<int>(node_->keys.size())) {
    node_ = node_->next;
    pos_ = 0;
  }
}

BPlusTree::Iterator BPlusTree::Begin() const {
  const Node* node = root_.get();
  while (!node->leaf) node = node->children.front().get();
  Iterator it;
  it.node_ = const_cast<Node*>(node);
  it.pos_ = -1;
  it.Next();
  return it;
}

BPlusTree::Iterator BPlusTree::SeekGe(const Row& key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    int lo = 0;
    int hi = static_cast<int>(node->keys.size());
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (ComparePrefix(node->keys[mid], key) >= 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    node = node->children[lo].get();
  }
  Iterator it;
  while (node != nullptr) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (ComparePrefix(node->keys[i], key) >= 0) {
        it.node_ = const_cast<Node*>(node);
        it.pos_ = static_cast<int>(i);
        return it;
      }
    }
    node = node->next;
  }
  return it;
}

BPlusTree::Iterator BPlusTree::SeekGt(const Row& key) const {
  const Node* node = root_.get();
  while (!node->leaf) {
    int lo = 0;
    int hi = static_cast<int>(node->keys.size());
    while (lo < hi) {
      int mid = (lo + hi) / 2;
      if (ComparePrefix(node->keys[mid], key) > 0) {
        hi = mid;
      } else {
        lo = mid + 1;
      }
    }
    node = node->children[lo].get();
  }
  Iterator it;
  while (node != nullptr) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      if (ComparePrefix(node->keys[i], key) > 0) {
        it.node_ = const_cast<Node*>(node);
        it.pos_ = static_cast<int>(i);
        return it;
      }
    }
    node = node->next;
  }
  return it;
}

}  // namespace mtcache
