#include "storage/table.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "common/wait_stats.h"

namespace mtcache {

RowId HeapTable::Insert(Row row) {
  RowId rid;
  RowPtr version = std::make_shared<const Row>(std::move(row));
  if (!free_list_.empty()) {
    rid = free_list_.back();
    free_list_.pop_back();
    rows_[rid] = std::move(version);
    live_[rid] = true;
  } else {
    rid = static_cast<RowId>(rows_.size());
    rows_.push_back(std::move(version));
    live_.push_back(true);
  }
  ++live_count_;
  return rid;
}

void HeapTable::RestoreAt(RowId rid, Row row) {
  if (rid >= static_cast<RowId>(rows_.size())) {
    rows_.resize(rid + 1);
    live_.resize(rid + 1, false);
  }
  // The slot may sit on the free list; lazily skip it there (Insert checks
  // liveness are not needed because free slots are only produced by Delete).
  for (size_t i = 0; i < free_list_.size(); ++i) {
    if (free_list_[i] == rid) {
      free_list_[i] = free_list_.back();
      free_list_.pop_back();
      break;
    }
  }
  rows_[rid] = std::make_shared<const Row>(std::move(row));
  live_[rid] = true;
  ++live_count_;
}

bool HeapTable::Delete(RowId rid) {
  if (!IsLive(rid)) return false;
  live_[rid] = false;
  // Drop this slot's reference; in-flight snapshots keep the version alive.
  rows_[rid].reset();
  free_list_.push_back(rid);
  --live_count_;
  return true;
}

bool HeapTable::Update(RowId rid, Row row) {
  if (!IsLive(rid)) return false;
  // Install a new version rather than mutating in place: snapshots taken
  // before this update still point at the old, fully-formed row.
  rows_[rid] = std::make_shared<const Row>(std::move(row));
  return true;
}

StoredTable::StoredTable(TableDef* def, LogManager* log)
    : def_(def), log_(log) {
  indexes_.resize(def_->indexes.size());
}

HeapSnapshotPtr StoredTable::ScanSnapshot() const {
  {
    std::lock_guard<std::mutex> cache(snapshot_mu_);
    if (snapshot_ != nullptr) return snapshot_;
  }
  // Cold path: assemble the live-row pointer vector under the shared table
  // latch (mutations excluded), then publish while the latch is still held —
  // an invalidating writer has to wait for the latch, so it can never be
  // overtaken by this publish.
  SharedLatchWait latch(latch_, WaitSite::kTableLatchShared);
  auto snap = std::make_shared<HeapSnapshot>();
  snap->rows.reserve(heap_.live_count());
  for (RowId rid = 0; rid < heap_.slot_count(); ++rid) {
    if (heap_.IsLive(rid)) {
      snap->rows.push_back(heap_.GetRef(rid));
    } else {
      ++snap->dead_slots;
    }
  }
  std::lock_guard<std::mutex> cache(snapshot_mu_);
  if (snapshot_ == nullptr) snapshot_ = std::move(snap);
  return snapshot_;
}

void StoredTable::InvalidateSnapshot() {
  std::lock_guard<std::mutex> cache(snapshot_mu_);
  snapshot_.reset();
}

Row StoredTable::IndexKey(int i, const Row& row) const {
  const IndexDef& idx = def_->indexes[i];
  Row key;
  key.reserve(idx.key_columns.size());
  for (int col : idx.key_columns) key.push_back(row[col]);
  return key;
}

Status StoredTable::CheckUnique(const Row& row, RowId ignore_rid) const {
  for (size_t i = 0; i < def_->indexes.size(); ++i) {
    if (!def_->indexes[i].unique) continue;
    Row key = IndexKey(static_cast<int>(i), row);
    for (auto it = indexes_[i].SeekGe(key);
         it.Valid() && BPlusTree::ComparePrefix(it.key(), key) == 0;
         it.Next()) {
      if (it.rowid() != ignore_rid) {
        return Status::AlreadyExists("unique constraint violation on index " +
                                     def_->indexes[i].name + " of table " +
                                     def_->name);
      }
    }
  }
  return Status::Ok();
}

void StoredTable::IndexInsert(const Row& row, RowId rid) {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    indexes_[i].Insert(IndexKey(static_cast<int>(i), row), rid);
  }
}

void StoredTable::IndexErase(const Row& row, RowId rid) {
  for (size_t i = 0; i < indexes_.size(); ++i) {
    indexes_[i].Erase(IndexKey(static_cast<int>(i), row), rid);
  }
}

StatusOr<RowId> StoredTable::Insert(const Row& row, Transaction* txn) {
  if (static_cast<int>(row.size()) != def_->schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   def_->name);
  }
  ExclusiveLatchWait latch(latch_, WaitSite::kTableLatchExclusive);
  MT_RETURN_IF_ERROR(CheckUnique(row, -1));
  RowId rid = heap_.Insert(row);
  IndexInsert(row, rid);
  InvalidateSnapshot();
  if (log_ != nullptr) {
    LogRecord rec;
    rec.txn = txn->id();
    rec.type = LogRecordType::kInsert;
    rec.table = def_->name;
    rec.after = row;
    log_->Append(std::move(rec));
  }
  txn->AddUndo(UndoEntry{this, LogRecordType::kInsert, rid, {}});
  return rid;
}

Status StoredTable::Delete(RowId rid, Transaction* txn) {
  ExclusiveLatchWait latch(latch_, WaitSite::kTableLatchExclusive);
  if (!heap_.IsLive(rid)) {
    return Status::NotFound("rowid not live in table " + def_->name);
  }
  Row before = heap_.Get(rid);
  IndexErase(before, rid);
  heap_.Delete(rid);
  InvalidateSnapshot();
  if (log_ != nullptr) {
    LogRecord rec;
    rec.txn = txn->id();
    rec.type = LogRecordType::kDelete;
    rec.table = def_->name;
    rec.before = before;
    log_->Append(std::move(rec));
  }
  txn->AddUndo(UndoEntry{this, LogRecordType::kDelete, rid, std::move(before)});
  return Status::Ok();
}

Status StoredTable::Update(RowId rid, const Row& new_row, Transaction* txn) {
  ExclusiveLatchWait latch(latch_, WaitSite::kTableLatchExclusive);
  if (!heap_.IsLive(rid)) {
    return Status::NotFound("rowid not live in table " + def_->name);
  }
  if (static_cast<int>(new_row.size()) != def_->schema.num_columns()) {
    return Status::InvalidArgument("row arity mismatch for table " +
                                   def_->name);
  }
  MT_RETURN_IF_ERROR(CheckUnique(new_row, rid));
  Row before = heap_.Get(rid);
  IndexErase(before, rid);
  heap_.Update(rid, new_row);
  IndexInsert(new_row, rid);
  InvalidateSnapshot();
  if (log_ != nullptr) {
    LogRecord rec;
    rec.txn = txn->id();
    rec.type = LogRecordType::kUpdate;
    rec.table = def_->name;
    rec.before = before;
    rec.after = new_row;
    log_->Append(std::move(rec));
  }
  txn->AddUndo(UndoEntry{this, LogRecordType::kUpdate, rid, std::move(before)});
  return Status::Ok();
}

void StoredTable::PhysicalDelete(RowId rid) {
  ExclusiveLatchWait latch(latch_, WaitSite::kTableLatchExclusive);
  if (!heap_.IsLive(rid)) return;
  IndexErase(heap_.Get(rid), rid);
  heap_.Delete(rid);
  InvalidateSnapshot();
}

void StoredTable::PhysicalRestore(RowId rid, const Row& row) {
  ExclusiveLatchWait latch(latch_, WaitSite::kTableLatchExclusive);
  heap_.RestoreAt(rid, row);
  IndexInsert(row, rid);
  InvalidateSnapshot();
}

void StoredTable::PhysicalUpdate(RowId rid, const Row& row) {
  ExclusiveLatchWait latch(latch_, WaitSite::kTableLatchExclusive);
  if (!heap_.IsLive(rid)) return;
  IndexErase(heap_.Get(rid), rid);
  heap_.Update(rid, row);
  IndexInsert(row, rid);
  InvalidateSnapshot();
}

void StoredTable::AddIndex() {
  indexes_.emplace_back();
  BuildIndex(static_cast<int>(indexes_.size()) - 1);
}

void StoredTable::BuildIndex(int i) {
  indexes_[i] = BPlusTree();
  for (RowId rid = 0; rid < heap_.slot_count(); ++rid) {
    if (!heap_.IsLive(rid)) continue;
    indexes_[i].Insert(IndexKey(i, heap_.Get(rid)), rid);
  }
}

void StoredTable::RecomputeStats() {
  def_->stats = ComputeTableStats(def_->schema, heap_);
}

void Transaction::Rollback() {
  for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
    switch (it->op) {
      case LogRecordType::kInsert:
        it->table->PhysicalDelete(it->rid);
        break;
      case LogRecordType::kDelete:
        it->table->PhysicalRestore(it->rid, it->before);
        break;
      case LogRecordType::kUpdate:
        it->table->PhysicalUpdate(it->rid, it->before);
        break;
      default:
        break;
    }
  }
  undo_.clear();
  active_ = false;
}

std::unique_ptr<Transaction> TransactionManager::Begin() {
  auto txn = std::make_unique<Transaction>(next_txn_++);
  if (log_ != nullptr) {
    LogRecord rec;
    rec.txn = txn->id();
    rec.type = LogRecordType::kBegin;
    log_->Append(std::move(rec));
  }
  return txn;
}

void TransactionManager::Commit(Transaction* txn, double commit_time) {
  if (log_ != nullptr) {
    LogRecord rec;
    rec.txn = txn->id();
    rec.type = LogRecordType::kCommit;
    rec.commit_time = commit_time;
    log_->Append(std::move(rec));
  }
  txn->MarkCommitted();
}

void TransactionManager::Abort(Transaction* txn) {
  txn->Rollback();
  if (log_ != nullptr) {
    LogRecord rec;
    rec.txn = txn->id();
    rec.type = LogRecordType::kAbort;
    log_->Append(std::move(rec));
  }
}

TableStats ComputeTableStats(const Schema& schema, const HeapTable& heap) {
  constexpr int kHistogramBuckets = 32;
  constexpr size_t kHistogramSampleCap = 50000;

  TableStats stats;
  stats.row_count = static_cast<double>(heap.live_count());
  stats.columns.resize(schema.num_columns());
  std::vector<std::unordered_set<size_t>> distinct(schema.num_columns());
  std::vector<std::vector<double>> samples(schema.num_columns());
  std::vector<int64_t> nulls(schema.num_columns(), 0);
  std::vector<bool> seen(schema.num_columns(), false);
  // Sample stride keeps the per-column value sample bounded.
  RowId stride = 1;
  if (heap.live_count() > static_cast<int64_t>(kHistogramSampleCap)) {
    stride = heap.live_count() / kHistogramSampleCap + 1;
  }
  double total_bytes = 0;
  int64_t live_seen = 0;
  for (RowId rid = 0; rid < heap.slot_count(); ++rid) {
    if (!heap.IsLive(rid)) continue;
    ++live_seen;
    const Row& row = heap.Get(rid);
    total_bytes += RowSizeBytes(row);
    for (int c = 0; c < schema.num_columns(); ++c) {
      const Value& v = row[c];
      if (v.is_null()) {
        ++nulls[c];
        continue;
      }
      double x = v.AsStatDouble();
      ColumnStats& cs = stats.columns[c];
      if (!seen[c]) {
        cs.min = cs.max = x;
        seen[c] = true;
      } else {
        if (x < cs.min) cs.min = x;
        if (x > cs.max) cs.max = x;
      }
      if (distinct[c].size() < 100000) distinct[c].insert(v.Hash());
      if (live_seen % stride == 0) samples[c].push_back(x);
    }
  }
  for (int c = 0; c < schema.num_columns(); ++c) {
    ColumnStats& cs = stats.columns[c];
    cs.ndv = distinct[c].empty() ? 1 : static_cast<double>(distinct[c].size());
    cs.null_frac =
        stats.row_count > 0 ? nulls[c] / stats.row_count : 0.0;
    // Equi-depth histogram from the sampled values.
    std::vector<double>& vals = samples[c];
    if (vals.size() >= 2 * kHistogramBuckets) {
      std::sort(vals.begin(), vals.end());
      cs.hist_bounds.clear();
      for (int b = 1; b <= kHistogramBuckets; ++b) {
        size_t idx = vals.size() * b / kHistogramBuckets;
        if (idx > 0) --idx;
        cs.hist_bounds.push_back(vals[idx]);
      }
    }
  }
  stats.avg_row_bytes =
      stats.row_count > 0 ? total_bytes / stats.row_count : 64;
  return stats;
}

}  // namespace mtcache
