#include "tpcw/schema.h"

namespace mtcache {
namespace tpcw {

const char* const kSubjects[] = {
    "arts",      "biographies", "business",  "children", "computers",
    "cooking",   "health",      "history",   "home",     "humor",
    "literature", "mystery",    "non-fiction", "parenting", "politics",
    "reference", "religion",    "romance",   "self-help", "science",
    "science-fiction", "sports", "travel",   "youth"};
const int kNumSubjects = 24;

Status CreateSchema(Server* server) {
  return server->ExecuteScript(R"sql(
CREATE TABLE country (
  co_id INT PRIMARY KEY,
  co_name VARCHAR(50)
);
CREATE TABLE address (
  addr_id INT PRIMARY KEY,
  addr_street VARCHAR(40),
  addr_city VARCHAR(30),
  addr_zip VARCHAR(11),
  addr_co_id INT
);
CREATE TABLE customer (
  c_id INT PRIMARY KEY,
  c_uname VARCHAR(20) NOT NULL,
  c_passwd VARCHAR(20),
  c_fname VARCHAR(15),
  c_lname VARCHAR(15),
  c_addr_id INT,
  c_email VARCHAR(50),
  c_since INT,
  c_login INT,
  c_discount FLOAT
);
CREATE TABLE author (
  a_id INT PRIMARY KEY,
  a_fname VARCHAR(20),
  a_lname VARCHAR(20),
  a_bio VARCHAR(100)
);
CREATE TABLE item (
  i_id INT PRIMARY KEY,
  i_title VARCHAR(60),
  i_a_id INT,
  i_pub_date INT,
  i_subject VARCHAR(20),
  i_desc VARCHAR(100),
  i_srp FLOAT,
  i_cost FLOAT,
  i_stock INT,
  i_related1 INT
);
CREATE TABLE orders (
  o_id INT PRIMARY KEY,
  o_c_id INT,
  o_date INT,
  o_sub_total FLOAT,
  o_total FLOAT,
  o_status VARCHAR(16),
  o_ship_addr_id INT
);
CREATE TABLE order_line (
  ol_o_id INT,
  ol_i_id INT,
  ol_qty INT,
  ol_discount FLOAT,
  PRIMARY KEY (ol_o_id, ol_i_id)
);
CREATE TABLE cc_xacts (
  cx_o_id INT PRIMARY KEY,
  cx_type VARCHAR(10),
  cx_amount FLOAT,
  cx_date INT
);
CREATE TABLE shopping_cart (
  sc_id INT PRIMARY KEY,
  sc_date INT
);
CREATE TABLE shopping_cart_line (
  scl_sc_id INT,
  scl_i_id INT,
  scl_qty INT,
  PRIMARY KEY (scl_sc_id, scl_i_id)
);
CREATE UNIQUE INDEX customer_uname ON customer (c_uname);
CREATE INDEX item_subject ON item (i_subject);
CREATE INDEX item_author ON item (i_a_id);
CREATE INDEX item_pubdate ON item (i_pub_date);
CREATE INDEX author_lname ON author (a_lname);
CREATE INDEX orders_cid ON orders (o_c_id);
CREATE INDEX orders_date ON orders (o_date);
CREATE INDEX orderline_item ON order_line (ol_i_id);
)sql");
}

}  // namespace tpcw
}  // namespace mtcache
