#ifndef MTCACHE_TPCW_WORKLOAD_H_
#define MTCACHE_TPCW_WORKLOAD_H_

#include <utility>
#include <vector>

#include "common/random.h"
#include "engine/server.h"
#include "tpcw/schema.h"

namespace mtcache {
namespace tpcw {

/// The fourteen TPC-W web interactions (§6.1.1).
enum class Interaction {
  kHome,
  kNewProducts,
  kBestSellers,
  kProductDetail,
  kSearchRequest,
  kSearchResults,
  kShoppingCart,
  kCustomerRegistration,
  kBuyRequest,
  kBuyConfirm,
  kOrderInquiry,
  kOrderDisplay,
  kAdminRequest,
  kAdminConfirm,
};
constexpr int kNumInteractions = 14;

const char* InteractionName(Interaction kind);

/// Browse vs Order activity class (the paper's table in §6.1.1).
bool IsBrowseClass(Interaction kind);

/// The three benchmark workloads: relative frequency of the two classes.
enum class WorkloadMix { kBrowsing, kShopping, kOrdering };

const char* MixName(WorkloadMix mix);
/// 0.95 / 0.80 / 0.50.
double BrowseFraction(WorkloadMix mix);

/// Relative frequency (in [0, 1]) of one interaction in one mix, straight
/// from the TPC-W §6 WIPSb/WIPS/WIPSo tables. Sums to 1 over the fourteen
/// interactions of a mix. Public so conformance tests and the fleet
/// simulator draw from the same tables as the driver.
double MixFraction(WorkloadMix mix, Interaction kind);

/// Maps a uniform draw u01 in [0, 1) to an interaction according to the
/// mix's frequency table. TpcwDriver::Pick and the DES fleet both route
/// through this, so a simulated session and a real one see identical mixes.
Interaction PickInteraction(WorkloadMix mix, double u01);

/// Emulates the database portion of TPC-W user sessions against one SQL
/// connection target (the backend directly, or an MTCache server — switching
/// between the two is the "ODBC re-routing" of §4 and requires no change
/// here). Executes interactions as stored-procedure calls and reports the
/// measured work split (local vs backend) per interaction.
class TpcwDriver {
 public:
  /// `driver_index`/`driver_stride` partition client-generated ids (carts,
  /// new orders, new customers) across concurrent drivers.
  TpcwDriver(Server* connection, const TpcwConfig& config, uint64_t seed,
             int driver_index = 0, int driver_stride = 1);

  /// Draws an interaction kind according to the mix.
  Interaction Pick(WorkloadMix mix);

  /// Executes one interaction (several procedure calls); returns measured
  /// stats: local_cost = work on the connection's server, remote_cost = work
  /// it pushed to the backend.
  StatusOr<ExecStats> Run(Interaction kind);

  /// Pick + Run.
  StatusOr<std::pair<Interaction, ExecStats>> RunNext(WorkloadMix mix);

  int64_t interactions_run() const { return interactions_run_; }

  /// Statements issued at the connection's tier (procedure calls the driver
  /// routed to its session). Together with ExecStats::remote_queries this
  /// splits an interaction's statement count between the cache tier and the
  /// backend — the per-tier QPS accounting of the fleet experiments.
  int64_t statements_issued() const { return statements_issued_; }

 private:
  struct Cart {
    int64_t id = 0;
    int items = 0;
  };

  StatusOr<ExecStats> Call(const std::string& proc,
                           const std::vector<Value>& args);
  Status EnsureCart(ExecStats* stats);

  int64_t RandomCustomer() { return rng_.Uniform(1, config_.num_customers); }
  int64_t RandomItem() { return rng_.Uniform(1, config_.num_items); }
  std::string RandomSubject();
  std::string RandomUser() { return "user" + std::to_string(RandomCustomer()); }

  Server* server_;
  TpcwConfig config_;
  Random rng_;
  int64_t next_cart_id_;
  int64_t next_order_id_;
  int64_t next_customer_id_;
  int64_t id_stride_;
  std::vector<Cart> carts_;
  int64_t interactions_run_ = 0;
  int64_t statements_issued_ = 0;
};

}  // namespace tpcw
}  // namespace mtcache

#endif  // MTCACHE_TPCW_WORKLOAD_H_
