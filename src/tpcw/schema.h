#ifndef MTCACHE_TPCW_SCHEMA_H_
#define MTCACHE_TPCW_SCHEMA_H_

#include "common/status.h"
#include "engine/server.h"

namespace mtcache {
namespace tpcw {

/// Scale factors. The paper ran 10,000 items / 10,000 EBs (≈28.8M customers);
/// these defaults are laptop-scale but keep the spec's ratios, and the
/// benches raise them. `best_seller_window` scales the paper's "last 3333
/// orders" proportionally.
struct TpcwConfig {
  int num_items = 1000;
  int num_authors = 250;        // spec: items / 4
  int num_customers = 2880;     // spec: 2880 * EBs / 10
  int num_orders = 2590;        // spec ratio: 0.9 * customers
  int avg_lines_per_order = 3;
  int best_seller_window = 333;
  uint64_t seed = 20030609;     // SIGMOD 2003 :-)
};

/// Base timestamp of the generated history. Run clocks should start at
/// LoadEndTime() so GETDATE() produces timestamps *after* the loaded orders
/// (keeps "the last N orders" semantics right for new orders).
constexpr int64_t kTpcwEpochBase = 1000000000;

inline double LoadEndTime(const TpcwConfig& config) {
  return static_cast<double>(kTpcwEpochBase + (config.num_orders + 1) * 60);
}

/// Creates the TPC-W tables (the eight spec tables plus the two shopping-cart
/// tables) and the backend's indexes.
Status CreateSchema(Server* server);

/// The subjects catalog (item.i_subject domain).
extern const char* const kSubjects[];
extern const int kNumSubjects;

}  // namespace tpcw
}  // namespace mtcache

#endif  // MTCACHE_TPCW_SCHEMA_H_
