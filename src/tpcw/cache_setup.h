#ifndef MTCACHE_TPCW_CACHE_SETUP_H_
#define MTCACHE_TPCW_CACHE_SETUP_H_

#include "common/status.h"
#include "mtcache/mtcache.h"
#include "tpcw/schema.h"

namespace mtcache {
namespace tpcw {

/// Implements the paper's caching strategy (§6.1.2): cached views projecting
/// the item, author, orders, and order_line tables; indexes on the cache
/// identical to the backend ("it would have been unfair to make the backend
/// seem unnecessarily slow as a result of less aggressive indexing"); and
/// the read-dominated procedures copied over.
Status SetupTpcwCache(MTCache* mtcache, const TpcwConfig& config);

}  // namespace tpcw
}  // namespace mtcache

#endif  // MTCACHE_TPCW_CACHE_SETUP_H_
