#ifndef MTCACHE_TPCW_CACHE_SETUP_H_
#define MTCACHE_TPCW_CACHE_SETUP_H_

#include "common/status.h"
#include "mtcache/mtcache.h"
#include "tpcw/schema.h"

namespace mtcache {
namespace tpcw {

/// Implements the paper's caching strategy (§6.1.2): cached views projecting
/// the item, author, orders, and order_line tables; indexes on the cache
/// identical to the backend ("it would have been unfair to make the backend
/// seem unnecessarily slow as a result of less aggressive indexing"); and
/// the read-dominated procedures copied over.
Status SetupTpcwCache(MTCache* mtcache, const TpcwConfig& config);

/// Same strategy, but each cached view covers only the first
/// ceil(cached_fraction * rows) of its base table by primary key — the
/// "fraction of data cached" dial of the fleet experiments. The views carry
/// a range predicate, so their replication articles filter rows (§2.2) and
/// the optimizer matches them only where the predicate is provably implied:
/// parameterized point lookups get the §5 dynamic plans (local inside the
/// range, remote outside), while queries without a key conjunct fall back to
/// the backend entirely. cached_fraction >= 1 creates the full views;
/// cached_fraction <= 0 creates none (procedures are still copied, so every
/// statement executes locally and fetches remotely).
Status SetupTpcwCache(MTCache* mtcache, const TpcwConfig& config,
                      double cached_fraction);

}  // namespace tpcw
}  // namespace mtcache

#endif  // MTCACHE_TPCW_CACHE_SETUP_H_
