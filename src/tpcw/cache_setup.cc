#include "tpcw/cache_setup.h"

#include <cmath>

#include "common/string_util.h"
#include "tpcw/procs.h"

namespace mtcache {
namespace tpcw {

Status SetupTpcwCache(MTCache* mtcache, const TpcwConfig& config) {
  return SetupTpcwCache(mtcache, config, 1.0);
}

Status SetupTpcwCache(MTCache* mtcache, const TpcwConfig& config,
                      double cached_fraction) {
  // Primary-key column and loaded row population per cacheable table; the
  // fraction dial cuts each table's cached range on its key. order_line has
  // no single-column pk, so its range rides on ol_o_id, keeping it aligned
  // with the orders range (an order's lines are cached iff the order is).
  struct CachedTable {
    const char* table;
    const char* key;
    int64_t rows;
  };
  const CachedTable kCachedTables[] = {
      {"item", "i_id", config.num_items},
      {"author", "a_id", config.num_authors},
      {"orders", "o_id", config.num_orders},
      {"order_line", "ol_o_id", config.num_orders},
  };
  for (const CachedTable& entry : kCachedTables) {
    if (cached_fraction <= 0) break;
    const char* table = entry.table;
    std::string view = std::string(table) + "_cache";
    std::string select = "SELECT * FROM " + std::string(table);
    if (cached_fraction < 1.0) {
      int64_t bound = static_cast<int64_t>(
          std::llround(std::ceil(cached_fraction * entry.rows)));
      if (bound < 1) bound = 1;
      select += " WHERE " + std::string(entry.key) +
                " <= " + std::to_string(bound);
    }
    MT_RETURN_IF_ERROR(mtcache->CreateCachedView(view, select));
    // Mirror the backend's secondary indexes (the pk index is created with
    // the view). Full-column projections keep column names identical.
    const TableDef* base =
        mtcache->backend()->db().catalog().GetTable(table);
    for (const IndexDef& index : base->indexes) {
      if (index.name == std::string(table) + "_pk") continue;
      std::vector<std::string> cols;
      for (int ord : index.key_columns) {
        cols.push_back(base->schema.column(ord).name);
      }
      std::string ddl = std::string(index.unique ? "CREATE UNIQUE INDEX "
                                                 : "CREATE INDEX ") +
                        index.name + "_c ON " + view + " (" +
                        Join(cols, ", ") + ")";
      MT_RETURN_IF_ERROR(mtcache->cache()->ExecuteScript(ddl));
    }
  }
  for (const std::string& proc : ProceduresToCopy()) {
    MT_RETURN_IF_ERROR(mtcache->CopyProcedure(proc));
  }
  return Status::Ok();
}

}  // namespace tpcw
}  // namespace mtcache
