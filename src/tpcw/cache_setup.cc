#include "tpcw/cache_setup.h"

#include "common/string_util.h"
#include "tpcw/procs.h"

namespace mtcache {
namespace tpcw {

Status SetupTpcwCache(MTCache* mtcache, const TpcwConfig& config) {
  (void)config;
  static const char* const kCachedTables[] = {"item", "author", "orders",
                                              "order_line"};
  for (const char* table : kCachedTables) {
    std::string view = std::string(table) + "_cache";
    MT_RETURN_IF_ERROR(mtcache->CreateCachedView(
        view, "SELECT * FROM " + std::string(table)));
    // Mirror the backend's secondary indexes (the pk index is created with
    // the view). Full-column projections keep column names identical.
    const TableDef* base =
        mtcache->backend()->db().catalog().GetTable(table);
    for (const IndexDef& index : base->indexes) {
      if (index.name == std::string(table) + "_pk") continue;
      std::vector<std::string> cols;
      for (int ord : index.key_columns) {
        cols.push_back(base->schema.column(ord).name);
      }
      std::string ddl = std::string(index.unique ? "CREATE UNIQUE INDEX "
                                                 : "CREATE INDEX ") +
                        index.name + "_c ON " + view + " (" +
                        Join(cols, ", ") + ")";
      MT_RETURN_IF_ERROR(mtcache->cache()->ExecuteScript(ddl));
    }
  }
  for (const std::string& proc : ProceduresToCopy()) {
    MT_RETURN_IF_ERROR(mtcache->CopyProcedure(proc));
  }
  return Status::Ok();
}

}  // namespace tpcw
}  // namespace mtcache
