#ifndef MTCACHE_TPCW_PROCS_H_
#define MTCACHE_TPCW_PROCS_H_

#include <vector>

#include "common/status.h"
#include "engine/server.h"
#include "tpcw/schema.h"

namespace mtcache {
namespace tpcw {

/// Creates the benchmark's stored procedures on the backend (§6.1.1: "all
/// database requests are implemented as SQL Server stored procedures").
/// The best-seller window (paper: last 3333 orders) is baked in from config.
Status CreateProcedures(Server* backend, const TpcwConfig& config);

/// The procedures the DBA copies to each cache server (§6.1.2: 24 of 29
/// copied; the rest are update-dominated and stay on the backend).
const std::vector<std::string>& ProceduresToCopy();

/// The update-dominated procedures that stay on the backend only.
const std::vector<std::string>& BackendOnlyProcedures();

}  // namespace tpcw
}  // namespace mtcache

#endif  // MTCACHE_TPCW_PROCS_H_
