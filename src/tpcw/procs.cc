#include "tpcw/procs.h"

namespace mtcache {
namespace tpcw {

Status CreateProcedures(Server* backend, const TpcwConfig& config) {
  std::string window = std::to_string(config.best_seller_window);
  std::string sql = R"sql(
CREATE PROCEDURE getName(@c_id INT) AS BEGIN
  SELECT c_fname, c_lname FROM customer WHERE c_id = @c_id
END;

CREATE PROCEDURE getBook(@i_id INT) AS BEGIN
  SELECT i.i_id, i.i_title, i.i_subject, i.i_desc, i.i_cost, i.i_srp,
         i.i_pub_date, i.i_stock, a.a_fname, a.a_lname
  FROM item i, author a
  WHERE i.i_id = @i_id AND a.a_id = i.i_a_id
END;

CREATE PROCEDURE getCustomer(@uname VARCHAR(20)) AS BEGIN
  SELECT c_id, c_uname, c_passwd, c_fname, c_lname, c_email, c_discount
  FROM customer WHERE c_uname = @uname
END;

CREATE PROCEDURE doSubjectSearch(@subject VARCHAR(20)) AS BEGIN
  SELECT TOP 50 i.i_id, i.i_title, i.i_cost, a.a_fname, a.a_lname
  FROM item i, author a
  WHERE i.i_subject = @subject AND a.a_id = i.i_a_id
  ORDER BY i.i_title
END;

CREATE PROCEDURE doTitleSearch(@title VARCHAR(60)) AS BEGIN
  SELECT TOP 50 i.i_id, i.i_title, i.i_cost, a.a_fname, a.a_lname
  FROM item i, author a
  WHERE i.i_title LIKE @title AND a.a_id = i.i_a_id
  ORDER BY i.i_title
END;

CREATE PROCEDURE doAuthorSearch(@lname VARCHAR(20)) AS BEGIN
  SELECT TOP 50 i.i_id, i.i_title, i.i_cost, a.a_fname, a.a_lname
  FROM item i, author a
  WHERE a.a_lname LIKE @lname AND i.i_a_id = a.a_id
  ORDER BY i.i_title
END;

CREATE PROCEDURE getNewProducts(@subject VARCHAR(20)) AS BEGIN
  SELECT TOP 50 i.i_id, i.i_title, i.i_pub_date, i.i_cost,
         a.a_fname, a.a_lname
  FROM item i, author a
  WHERE i.i_subject = @subject AND a.a_id = i.i_a_id
  ORDER BY i.i_pub_date DESC, i.i_title
END;

CREATE PROCEDURE getBestSellers(@subject VARCHAR(20)) AS BEGIN
  SELECT TOP 50 i.i_id, i.i_title, a.a_fname, a.a_lname,
         SUM(ol.ol_qty) AS total
  FROM order_line ol, item i, author a,
       (SELECT TOP )sql" + window + R"sql( o_id FROM orders
        ORDER BY o_date DESC) recent
  WHERE ol.ol_o_id = recent.o_id AND i.i_id = ol.ol_i_id
        AND a.a_id = i.i_a_id AND i.i_subject = @subject
  GROUP BY i.i_id, i.i_title, a.a_fname, a.a_lname
  ORDER BY total DESC
END;

CREATE PROCEDURE getRelated(@i_id INT) AS BEGIN
  SELECT i2.i_id, i2.i_title, i2.i_cost
  FROM item i1, item i2
  WHERE i1.i_id = @i_id AND i1.i_related1 = i2.i_id
END;

CREATE PROCEDURE getUserName(@c_id INT) AS BEGIN
  SELECT c_uname FROM customer WHERE c_id = @c_id
END;

CREATE PROCEDURE getPassword(@uname VARCHAR(20)) AS BEGIN
  SELECT c_passwd FROM customer WHERE c_uname = @uname
END;

CREATE PROCEDURE getStock(@i_id INT) AS BEGIN
  SELECT i_stock FROM item WHERE i_id = @i_id
END;

CREATE PROCEDURE getCDiscount(@c_id INT) AS BEGIN
  SELECT c_discount FROM customer WHERE c_id = @c_id
END;

CREATE PROCEDURE getMostRecentOrder(@uname VARCHAR(20)) AS BEGIN
  DECLARE @cid INT;
  SELECT @cid = c_id FROM customer WHERE c_uname = @uname;
  DECLARE @oid INT;
  SELECT @oid = MAX(o_id) FROM orders WHERE o_c_id = @cid;
  SELECT o.o_id, o.o_date, o.o_sub_total, o.o_total, o.o_status,
         ol.ol_i_id, ol.ol_qty, i.i_title
  FROM orders o, order_line ol, item i
  WHERE o.o_id = @oid AND ol.ol_o_id = o.o_id AND i.i_id = ol.ol_i_id
END;

CREATE PROCEDURE getCart(@sc_id INT) AS BEGIN
  SELECT scl.scl_i_id, scl.scl_qty, i.i_title, i.i_cost, i.i_srp
  FROM shopping_cart_line scl, item i
  WHERE scl.scl_sc_id = @sc_id AND i.i_id = scl.scl_i_id
END;

CREATE PROCEDURE createEmptyCart(@sc_id INT) AS BEGIN
  INSERT INTO shopping_cart VALUES (@sc_id, GETDATE())
END;

CREATE PROCEDURE addItem(@sc_id INT, @i_id INT, @qty INT) AS BEGIN
  DECLARE @cnt INT;
  SELECT @cnt = COUNT(*) FROM shopping_cart_line
  WHERE scl_sc_id = @sc_id AND scl_i_id = @i_id;
  IF @cnt > 0 BEGIN
    UPDATE shopping_cart_line SET scl_qty = scl_qty + @qty
    WHERE scl_sc_id = @sc_id AND scl_i_id = @i_id
  END ELSE BEGIN
    INSERT INTO shopping_cart_line VALUES (@sc_id, @i_id, @qty)
  END
END;

CREATE PROCEDURE refreshCart(@sc_id INT, @i_id INT, @qty INT) AS BEGIN
  IF @qty = 0 BEGIN
    DELETE FROM shopping_cart_line
    WHERE scl_sc_id = @sc_id AND scl_i_id = @i_id
  END ELSE BEGIN
    UPDATE shopping_cart_line SET scl_qty = @qty
    WHERE scl_sc_id = @sc_id AND scl_i_id = @i_id
  END
END;

CREATE PROCEDURE resetCartTime(@sc_id INT) AS BEGIN
  UPDATE shopping_cart SET sc_date = GETDATE() WHERE sc_id = @sc_id
END;

CREATE PROCEDURE refreshSession(@c_id INT) AS BEGIN
  UPDATE customer SET c_login = GETDATE() WHERE c_id = @c_id
END;

CREATE PROCEDURE createNewCustomer(@c_id INT, @addr_id INT,
    @uname VARCHAR(20), @passwd VARCHAR(20), @fname VARCHAR(15),
    @lname VARCHAR(15), @email VARCHAR(50), @street VARCHAR(40),
    @city VARCHAR(30), @zip VARCHAR(11), @co_id INT,
    @discount FLOAT) AS BEGIN
  BEGIN TRANSACTION;
  INSERT INTO address VALUES (@addr_id, @street, @city, @zip, @co_id);
  INSERT INTO customer VALUES (@c_id, @uname, @passwd, @fname, @lname,
      @addr_id, @email, GETDATE(), GETDATE(), @discount);
  COMMIT;
  SELECT @c_id AS c_id
END;

CREATE PROCEDURE enterAddress(@addr_id INT, @street VARCHAR(40),
    @city VARCHAR(30), @zip VARCHAR(11), @co_id INT) AS BEGIN
  INSERT INTO address VALUES (@addr_id, @street, @city, @zip, @co_id)
END;

CREATE PROCEDURE enterOrder(@o_id INT, @c_id INT, @sc_id INT,
    @ship_addr INT, @total FLOAT) AS BEGIN
  BEGIN TRANSACTION;
  INSERT INTO orders VALUES (@o_id, @c_id, GETDATE(), @total, @total,
      'pending', @ship_addr);
  INSERT INTO order_line (ol_o_id, ol_i_id, ol_qty, ol_discount)
  SELECT @o_id, scl_i_id, scl_qty, 0.0 FROM shopping_cart_line
  WHERE scl_sc_id = @sc_id;
  INSERT INTO cc_xacts VALUES (@o_id, 'visa', @total, GETDATE());
  DELETE FROM shopping_cart_line WHERE scl_sc_id = @sc_id;
  COMMIT;
  SELECT @o_id AS o_id
END;

CREATE PROCEDURE adminUpdate(@i_id INT, @cost FLOAT) AS BEGIN
  UPDATE item SET i_cost = @cost, i_pub_date = GETDATE() WHERE i_id = @i_id
END;

CREATE PROCEDURE getOrderStatus(@o_id INT) AS BEGIN
  SELECT o_id, o_date, o_total, o_status FROM orders WHERE o_id = @o_id
END;
)sql";
  return backend->ExecuteScript(sql);
}

const std::vector<std::string>& ProceduresToCopy() {
  // Read-dominated procedures the DBA offloads (§6.1.2). getCart reads
  // uncached cart data — it still runs locally and fetches remotely, which
  // the paper explicitly allows (§5.2).
  static const std::vector<std::string>* kProcs = new std::vector<std::string>{
      "getname",       "getbook",        "getcustomer",  "dosubjectsearch",
      "dotitlesearch", "doauthorsearch", "getnewproducts",
      "getbestsellers", "getrelated",    "getusername",  "getpassword",
      "getstock",      "getcdiscount",   "getmostrecentorder", "getcart",
      "getorderstatus"};
  return *kProcs;
}

const std::vector<std::string>& BackendOnlyProcedures() {
  static const std::vector<std::string>* kProcs = new std::vector<std::string>{
      "createemptycart", "additem",        "refreshcart", "resetcarttime",
      "refreshsession",  "createnewcustomer", "enteraddress", "enterorder",
      "adminupdate"};
  return *kProcs;
}

}  // namespace tpcw
}  // namespace mtcache
