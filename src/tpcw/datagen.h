#ifndef MTCACHE_TPCW_DATAGEN_H_
#define MTCACHE_TPCW_DATAGEN_H_

#include "common/status.h"
#include "engine/server.h"
#include "tpcw/schema.h"

namespace mtcache {
namespace tpcw {

/// Populates the TPC-W tables on `backend` (bulk loader: writes go straight
/// to storage in one transaction, then the load's WAL tail is truncated so
/// replication subscriptions created afterwards start clean) and recomputes
/// statistics. Deterministic for a given config.seed.
Status GenerateData(Server* backend, const TpcwConfig& config);

/// Dictionary used for titles and names; title/author searches draw their
/// patterns from it so LIKE queries hit realistic fractions of the data.
const std::vector<std::string>& TitleWords();

}  // namespace tpcw
}  // namespace mtcache

#endif  // MTCACHE_TPCW_DATAGEN_H_
