#include "tpcw/datagen.h"

#include "common/random.h"

namespace mtcache {
namespace tpcw {

namespace {

constexpr int64_t kEpochBase = kTpcwEpochBase;

Value Str(std::string s) { return Value::String(std::move(s)); }
Value I(int64_t v) { return Value::Int(v); }
Value D(double v) { return Value::Double(v); }

}  // namespace

const std::vector<std::string>& TitleWords() {
  static const std::vector<std::string>* kWords = new std::vector<std::string>{
      "shadow", "river",  "winter", "garden", "secret", "night",  "stone",
      "empire", "silent", "golden", "broken", "hidden", "storm",  "crystal",
      "forest", "dragon", "summer", "letter", "bridge", "island", "mirror",
      "voyage", "thunder", "canyon", "harbor", "meadow", "ember",  "willow",
      "falcon", "orchid", "quartz", "zephyr"};
  return *kWords;
}

Status GenerateData(Server* backend, const TpcwConfig& config) {
  Random rng(config.seed);
  Database& db = backend->db();
  const std::vector<std::string>& words = TitleWords();
  auto word = [&]() { return words[rng.Uniform(0, words.size() - 1)]; };

  auto txn = db.txn_manager().Begin();
  auto insert = [&](const char* table, Row row) -> Status {
    StoredTable* stored = db.GetStoredTable(table);
    if (stored == nullptr) {
      return Status::NotFound(std::string("table not found: ") + table);
    }
    return stored->Insert(std::move(row), txn.get()).status();
  };

  // country
  static const char* kCountries[] = {"united states", "united kingdom",
                                     "canada", "germany", "france", "japan"};
  for (int i = 0; i < 6; ++i) {
    MT_RETURN_IF_ERROR(insert("country", {I(i + 1), Str(kCountries[i])}));
  }

  // author
  for (int a = 1; a <= config.num_authors; ++a) {
    MT_RETURN_IF_ERROR(insert(
        "author", {I(a), Str(word()), Str(word() + std::to_string(a % 97)),
                   Str("bio of author " + std::to_string(a))}));
  }

  // item: titles are three dictionary words, subjects uniform, pub dates
  // spread over ~3 years, related item links form a ring.
  for (int i = 1; i <= config.num_items; ++i) {
    std::string title = word() + " " + word() + " " + word();
    double srp = 1.0 + (rng.NextU64() % 9900) / 100.0;
    MT_RETURN_IF_ERROR(insert(
        "item",
        {I(i), Str(title), I(rng.Uniform(1, config.num_authors)),
         I(kEpochBase - rng.Uniform(0, 3 * 365) * 86400),
         Str(kSubjects[rng.Uniform(0, kNumSubjects - 1)]),
         Str("description of " + title), D(srp), D(srp * 0.85),
         I(rng.Uniform(10, 500)), I(i % config.num_items + 1)}));
  }

  // address + customer
  for (int c = 1; c <= config.num_customers; ++c) {
    MT_RETURN_IF_ERROR(insert(
        "address", {I(c), Str(std::to_string(c) + " " + word() + " st"),
                    Str(word() + " city"), Str(std::to_string(10000 + c % 89999)),
                    I(rng.Uniform(1, 6))}));
    MT_RETURN_IF_ERROR(insert(
        "customer",
        {I(c), Str("user" + std::to_string(c)), Str("pw" + std::to_string(c)),
         Str(word()), Str(word()), I(c),
         Str("user" + std::to_string(c) + "@example.com"),
         I(kEpochBase - rng.Uniform(0, 2 * 365) * 86400),
         I(kEpochBase - rng.Uniform(0, 30) * 86400),
         D(rng.Uniform(0, 50) / 100.0)}));
  }

  // orders + order_line + cc_xacts: order dates increase with o_id so
  // "the last N orders" is a contiguous recent range.
  for (int o = 1; o <= config.num_orders; ++o) {
    double sub_total = 0;
    int lines = 1 + static_cast<int>(rng.Uniform(0, 2 * config.avg_lines_per_order - 2));
    // Distinct items per order via stride.
    int first_item = static_cast<int>(rng.Uniform(1, config.num_items));
    for (int l = 0; l < lines; ++l) {
      int item_id = (first_item + l * 37) % config.num_items + 1;
      int qty = static_cast<int>(rng.Uniform(1, 5));
      sub_total += qty * 25.0;
      MT_RETURN_IF_ERROR(insert(
          "order_line",
          {I(o), I(item_id), I(qty), D(rng.Uniform(0, 10) / 100.0)}));
    }
    int64_t date = kEpochBase + o * 60;  // one order a minute
    MT_RETURN_IF_ERROR(insert(
        "orders", {I(o), I(rng.Uniform(1, config.num_customers)), I(date),
                   D(sub_total), D(sub_total * 1.0825),
                   Str(o % 10 == 0 ? "pending" : "shipped"),
                   I(rng.Uniform(1, config.num_customers))}));
    MT_RETURN_IF_ERROR(insert(
        "cc_xacts", {I(o), Str("visa"), D(sub_total * 1.0825), I(date)}));
  }

  db.txn_manager().Commit(txn.get(), db.Now());
  // The bulk load predates any subscription: drop it from the log.
  db.log().TruncateBefore(db.log().next_lsn());
  backend->RecomputeStats();
  return Status::Ok();
}

}  // namespace tpcw
}  // namespace mtcache
