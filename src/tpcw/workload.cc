#include "tpcw/workload.h"

#include "tpcw/datagen.h"

namespace mtcache {
namespace tpcw {

const char* InteractionName(Interaction kind) {
  switch (kind) {
    case Interaction::kHome: return "Home";
    case Interaction::kNewProducts: return "NewProducts";
    case Interaction::kBestSellers: return "BestSellers";
    case Interaction::kProductDetail: return "ProductDetail";
    case Interaction::kSearchRequest: return "SearchRequest";
    case Interaction::kSearchResults: return "SearchResults";
    case Interaction::kShoppingCart: return "ShoppingCart";
    case Interaction::kCustomerRegistration: return "CustomerRegistration";
    case Interaction::kBuyRequest: return "BuyRequest";
    case Interaction::kBuyConfirm: return "BuyConfirm";
    case Interaction::kOrderInquiry: return "OrderInquiry";
    case Interaction::kOrderDisplay: return "OrderDisplay";
    case Interaction::kAdminRequest: return "AdminRequest";
    case Interaction::kAdminConfirm: return "AdminConfirm";
  }
  return "?";
}

bool IsBrowseClass(Interaction kind) {
  switch (kind) {
    case Interaction::kHome:
    case Interaction::kNewProducts:
    case Interaction::kBestSellers:
    case Interaction::kProductDetail:
    case Interaction::kSearchRequest:
    case Interaction::kSearchResults:
      return true;
    default:
      return false;
  }
}

const char* MixName(WorkloadMix mix) {
  switch (mix) {
    case WorkloadMix::kBrowsing: return "Browsing";
    case WorkloadMix::kShopping: return "Shopping";
    case WorkloadMix::kOrdering: return "Ordering";
  }
  return "?";
}

double BrowseFraction(WorkloadMix mix) {
  switch (mix) {
    case WorkloadMix::kBrowsing: return 0.95;
    case WorkloadMix::kShopping: return 0.80;
    case WorkloadMix::kOrdering: return 0.50;
  }
  return 0.8;
}

namespace {

// The TPC-W interaction frequency tables (percent) for the three workloads
// (WIPSb / WIPS / WIPSo). Note how differently the classes are composed:
// Best Sellers is 11% of the Browsing mix but only 0.46% of Ordering. The
// Browse-class totals are the paper's 95% / 80% / 50%.
// Order: Home, NewProducts, BestSellers, ProductDetail, SearchRequest,
// SearchResults, ShoppingCart, CustomerRegistration, BuyRequest, BuyConfirm,
// OrderInquiry, OrderDisplay, AdminRequest, AdminConfirm.
const double kMixTable[3][kNumInteractions] = {
    // Browsing (WIPSb)
    {29.00, 11.00, 11.00, 21.00, 12.00, 11.00, 2.00, 0.82, 0.75, 0.69, 0.30,
     0.25, 0.10, 0.09},
    // Shopping (WIPS)
    {16.00, 5.00, 5.00, 17.00, 20.00, 17.00, 11.60, 3.00, 2.60, 1.20, 0.75,
     0.66, 0.10, 0.09},
    // Ordering (WIPSo)
    {9.12, 0.46, 0.46, 12.35, 14.53, 13.08, 13.53, 12.86, 12.73, 10.18, 0.25,
     0.22, 0.12, 0.09},
};

int MixIndex(WorkloadMix mix) {
  switch (mix) {
    case WorkloadMix::kBrowsing: return 0;
    case WorkloadMix::kShopping: return 1;
    case WorkloadMix::kOrdering: return 2;
  }
  return 1;
}

double MixTotal(WorkloadMix mix) {
  const double* table = kMixTable[MixIndex(mix)];
  double total = 0;
  for (int i = 0; i < kNumInteractions; ++i) total += table[i];
  return total;
}

}  // namespace

double MixFraction(WorkloadMix mix, Interaction kind) {
  return kMixTable[MixIndex(mix)][static_cast<int>(kind)] / MixTotal(mix);
}

Interaction PickInteraction(WorkloadMix mix, double u01) {
  const double* table = kMixTable[MixIndex(mix)];
  double x = u01 * MixTotal(mix);
  for (int i = 0; i < kNumInteractions; ++i) {
    x -= table[i];
    if (x <= 0) return static_cast<Interaction>(i);
  }
  return Interaction::kHome;
}

TpcwDriver::TpcwDriver(Server* connection, const TpcwConfig& config,
                       uint64_t seed, int driver_index, int driver_stride)
    : server_(connection), config_(config), rng_(seed ^ 0x5bd1e995u),
      id_stride_(driver_stride) {
  // Client-generated id spaces, disjoint per driver and clear of loaded data.
  next_cart_id_ = 1000000 + driver_index;
  next_order_id_ = config.num_orders + 1000 + driver_index;
  next_customer_id_ = config.num_customers + 1000 + driver_index;
}

std::string TpcwDriver::RandomSubject() {
  return kSubjects[rng_.Uniform(0, kNumSubjects - 1)];
}

Interaction TpcwDriver::Pick(WorkloadMix mix) {
  return PickInteraction(mix, rng_.NextDouble());
}

StatusOr<ExecStats> TpcwDriver::Call(const std::string& proc,
                                     const std::vector<Value>& args) {
  ExecStats stats;
  ++statements_issued_;
  MT_RETURN_IF_ERROR(server_->CallProcedure(proc, args, &stats).status());
  return stats;
}

Status TpcwDriver::EnsureCart(ExecStats* stats) {
  if (!carts_.empty() && carts_.back().items > 0) return Status::Ok();
  Cart cart;
  cart.id = next_cart_id_;
  next_cart_id_ += id_stride_;
  MT_ASSIGN_OR_RETURN(ExecStats s1,
                      Call("createemptycart", {Value::Int(cart.id)}));
  stats->Add(s1);
  MT_ASSIGN_OR_RETURN(
      ExecStats s2,
      Call("additem", {Value::Int(cart.id), Value::Int(RandomItem()),
                       Value::Int(rng_.Uniform(1, 3))}));
  stats->Add(s2);
  cart.items = 1;
  carts_.push_back(cart);
  return Status::Ok();
}

StatusOr<ExecStats> TpcwDriver::Run(Interaction kind) {
  ++interactions_run_;
  ExecStats total;
  auto add = [&](StatusOr<ExecStats> s) -> Status {
    if (!s.ok()) return s.status();
    total.Add(*s);
    return Status::Ok();
  };

  switch (kind) {
    case Interaction::kHome: {
      MT_RETURN_IF_ERROR(add(Call("getname", {Value::Int(RandomCustomer())})));
      MT_RETURN_IF_ERROR(add(Call("getrelated", {Value::Int(RandomItem())})));
      break;
    }
    case Interaction::kNewProducts:
      MT_RETURN_IF_ERROR(
          add(Call("getnewproducts", {Value::String(RandomSubject())})));
      break;
    case Interaction::kBestSellers:
      MT_RETURN_IF_ERROR(
          add(Call("getbestsellers", {Value::String(RandomSubject())})));
      break;
    case Interaction::kProductDetail:
      MT_RETURN_IF_ERROR(add(Call("getbook", {Value::Int(RandomItem())})));
      break;
    case Interaction::kSearchRequest:
      MT_RETURN_IF_ERROR(add(Call("getrelated", {Value::Int(RandomItem())})));
      break;
    case Interaction::kSearchResults: {
      int which = static_cast<int>(rng_.Uniform(0, 2));
      const std::vector<std::string>& words = TitleWords();
      const std::string& w = words[rng_.Uniform(0, words.size() - 1)];
      if (which == 0) {
        MT_RETURN_IF_ERROR(
            add(Call("dosubjectsearch", {Value::String(RandomSubject())})));
      } else if (which == 1) {
        MT_RETURN_IF_ERROR(
            add(Call("dotitlesearch", {Value::String("%" + w + "%")})));
      } else {
        MT_RETURN_IF_ERROR(
            add(Call("doauthorsearch", {Value::String(w + "%")})));
      }
      break;
    }
    case Interaction::kShoppingCart: {
      MT_RETURN_IF_ERROR(EnsureCart(&total));
      Cart& cart = carts_.back();
      MT_RETURN_IF_ERROR(
          add(Call("additem", {Value::Int(cart.id), Value::Int(RandomItem()),
                               Value::Int(rng_.Uniform(1, 3))})));
      ++cart.items;
      MT_RETURN_IF_ERROR(add(Call("resetcarttime", {Value::Int(cart.id)})));
      MT_RETURN_IF_ERROR(add(Call("getcart", {Value::Int(cart.id)})));
      break;
    }
    case Interaction::kCustomerRegistration: {
      if (rng_.Bernoulli(0.2)) {
        int64_t cid = next_customer_id_;
        next_customer_id_ += id_stride_;
        MT_RETURN_IF_ERROR(add(Call(
            "createnewcustomer",
            {Value::Int(cid), Value::Int(cid),
             Value::String("nuser" + std::to_string(cid)),
             Value::String("pw"), Value::String("new"), Value::String("user"),
             Value::String("n" + std::to_string(cid) + "@example.com"),
             Value::String("1 new st"), Value::String("new city"),
             Value::String("99999"), Value::Int(1), Value::Double(0.1)})));
      } else {
        MT_RETURN_IF_ERROR(
            add(Call("getcustomer", {Value::String(RandomUser())})));
      }
      break;
    }
    case Interaction::kBuyRequest: {
      MT_RETURN_IF_ERROR(
          add(Call("getcustomer", {Value::String(RandomUser())})));
      MT_RETURN_IF_ERROR(EnsureCart(&total));
      MT_RETURN_IF_ERROR(
          add(Call("getcart", {Value::Int(carts_.back().id)})));
      break;
    }
    case Interaction::kBuyConfirm: {
      MT_RETURN_IF_ERROR(EnsureCart(&total));
      Cart cart = carts_.back();
      carts_.pop_back();
      int64_t cid = RandomCustomer();
      MT_RETURN_IF_ERROR(add(Call("getcdiscount", {Value::Int(cid)})));
      int64_t oid = next_order_id_;
      next_order_id_ += id_stride_;
      MT_RETURN_IF_ERROR(add(Call(
          "enterorder", {Value::Int(oid), Value::Int(cid), Value::Int(cart.id),
                         Value::Int(cid), Value::Double(cart.items * 27.5)})));
      break;
    }
    case Interaction::kOrderInquiry:
      MT_RETURN_IF_ERROR(
          add(Call("getpassword", {Value::String(RandomUser())})));
      break;
    case Interaction::kOrderDisplay:
      MT_RETURN_IF_ERROR(
          add(Call("getmostrecentorder", {Value::String(RandomUser())})));
      break;
    case Interaction::kAdminRequest:
      MT_RETURN_IF_ERROR(add(Call("getbook", {Value::Int(RandomItem())})));
      break;
    case Interaction::kAdminConfirm: {
      MT_RETURN_IF_ERROR(add(Call(
          "adminupdate", {Value::Int(RandomItem()),
                          Value::Double(5.0 + rng_.Uniform(0, 90))})));
      MT_RETURN_IF_ERROR(add(Call("getrelated", {Value::Int(RandomItem())})));
      break;
    }
  }
  return total;
}

StatusOr<std::pair<Interaction, ExecStats>> TpcwDriver::RunNext(
    WorkloadMix mix) {
  Interaction kind = Pick(mix);
  MT_ASSIGN_OR_RETURN(ExecStats stats, Run(kind));
  return std::make_pair(kind, stats);
}

}  // namespace tpcw
}  // namespace mtcache
