#ifndef MTCACHE_OPT_OPTIMIZER_H_
#define MTCACHE_OPT_OPTIMIZER_H_

#include <memory>
#include <string>

#include "catalog/catalog.h"
#include "common/status.h"
#include "opt/logical.h"
#include "opt/optimizer_stats.h"
#include "opt/physical.h"

namespace mtcache {

/// Optimizer configuration. The defaults reproduce the paper's MTCache
/// behaviour; the flags exist for the ablation experiments.
struct OptimizerOptions {
  /// Consider materialized/cached views as substitutes for table accesses.
  bool enable_view_matching = true;
  /// Generate ChoosePlan dynamic plans for parameterized conditional matches
  /// (§5.1). When off, conditional matches are simply not used.
  bool enable_dynamic_plans = true;
  /// Cost-based local/remote decision (§5). When off, mimic DBCache-style
  /// heuristics: always use a matching cached view, never compare against
  /// executing on the backend.
  bool cost_based_routing = true;
  /// Pull ChoosePlan operators to the top of the plan (§5.1.2). Expands the
  /// remote branch (bigger remote pushdown) at the price of optimization
  /// time and plan size.
  bool pull_up_chooseplan = true;
  /// Allow mixed-result plans for regular materialized views (§5.1.1).
  /// Cached views never produce mixed results (transactional consistency).
  bool allow_mixed_results = true;
  /// Multiplier (> 1) applied to remote execution costs: "even though the
  /// backend server may be powerful, it is likely to be heavily loaded so we
  /// will only get a fraction of its capacity" (§5).
  double remote_cost_factor = 1.25;
  /// Linked-server name of the backend that owns the shadow tables. Empty on
  /// a standalone/backend server (no shadow tables resolve anywhere).
  std::string backend_server;
  /// Freshness requirement (§7 extension): when >= 0, cached views staler
  /// than this many seconds (relative to `current_time`) are not eligible
  /// for view matching; the backend always qualifies. -1 = any staleness.
  double max_staleness = -1;
  double current_time = 0;
  /// When non-null, Optimize() records its view-matching / routing decisions
  /// here (the engine points this at its MetricsRegistry). Not owned.
  OptimizerDecisionStats* decision_stats = nullptr;
};

struct OptimizeResult {
  PhysicalPtr plan;
  double est_cost = 0;
  double est_rows = 0;
  int plan_size = 0;
  /// Plan alternatives costed (optimization effort; ablation A3).
  int alternatives_considered = 0;
  /// Microseconds spent in Optimize().
  int64_t optimize_micros = 0;
  /// True if the final plan contains a RemoteQuery operator.
  bool uses_remote = false;
  /// True if the final plan contains a dynamic (startup-predicate) branch.
  bool dynamic_plan = false;
};

/// Cost-based optimizer with the MTCache extensions: a DataLocation physical
/// property enforced by DataTransfer (realized as RemoteQuery nodes carrying
/// unparsed SQL), cached-view matching with conditional (guarded) matches,
/// and dynamic plans implemented as UnionAll + startup predicates.
class Optimizer {
 public:
  /// `catalog` must outlive the optimizer.
  Optimizer(const Catalog* catalog, OptimizerOptions options)
      : catalog_(catalog), options_(options) {}

  /// Optimizes a bound logical query. The root's required DataLocation is
  /// Local (results must arrive at this server).
  StatusOr<OptimizeResult> Optimize(const LogicalOp& query) const;

  const OptimizerOptions& options() const { return options_; }

 private:
  const Catalog* catalog_;
  OptimizerOptions options_;
};

}  // namespace mtcache

#endif  // MTCACHE_OPT_OPTIMIZER_H_
