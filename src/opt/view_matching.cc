#include "opt/view_matching.h"

#include <map>
#include <optional>

#include "common/trace.h"
#include "opt/cardinality.h"

namespace mtcache {

bool ExtractSimpleConjunct(const BoundExpr& conjunct, SimpleConjunct* out) {
  if (conjunct.kind != BoundExprKind::kBinary) return false;
  const auto& e = static_cast<const BoundBinary&>(conjunct);
  CompareOp op;
  switch (e.op) {
    case BinaryOp::kEq: op = CompareOp::kEq; break;
    case BinaryOp::kNe: op = CompareOp::kNe; break;
    case BinaryOp::kLt: op = CompareOp::kLt; break;
    case BinaryOp::kLe: op = CompareOp::kLe; break;
    case BinaryOp::kGt: op = CompareOp::kGt; break;
    case BinaryOp::kGe: op = CompareOp::kGe; break;
    default:
      return false;
  }
  const BoundExpr* l = e.left.get();
  const BoundExpr* r = e.right.get();
  if (l->kind != BoundExprKind::kColumnRef &&
      r->kind == BoundExprKind::kColumnRef) {
    std::swap(l, r);
    op = FlipCompareOp(op);
  }
  if (l->kind != BoundExprKind::kColumnRef) return false;
  out->column = static_cast<const BoundColumnRef&>(*l).ordinal;
  out->op = op;
  out->source = &conjunct;
  if (r->kind == BoundExprKind::kLiteral) {
    out->rhs_is_param = false;
    out->literal = static_cast<const BoundLiteral&>(*r).value;
    return true;
  }
  if (r->kind == BoundExprKind::kParam) {
    out->rhs_is_param = true;
    out->param_name = static_cast<const BoundParam&>(*r).name;
    return true;
  }
  return false;
}

namespace {

bool IsUpper(CompareOp op) { return op == CompareOp::kLt || op == CompareOp::kLe; }
bool IsLower(CompareOp op) { return op == CompareOp::kGt || op == CompareOp::kGe; }

// Does `col qc_op a` imply `col vp_op b`?
bool LiteralImplies(CompareOp qc_op, const Value& a, CompareOp vp_op,
                    const Value& b) {
  if (qc_op == CompareOp::kEq) {
    SimplePredicate vp{"", vp_op, b};
    return vp.Matches(a);
  }
  int c = a.Compare(b);
  if (IsUpper(qc_op) && IsUpper(vp_op)) {
    return c < 0 || (c == 0 && (qc_op == CompareOp::kLt || vp_op == CompareOp::kLe));
  }
  if (IsLower(qc_op) && IsLower(vp_op)) {
    return c > 0 || (c == 0 && (qc_op == CompareOp::kGt || vp_op == CompareOp::kGe));
  }
  if (vp_op == CompareOp::kNe) {
    // The query region must exclude b.
    if (IsUpper(qc_op)) return c < 0 ? false : (c > 0 || qc_op == CompareOp::kLt);
    if (IsLower(qc_op)) return c > 0 ? false : (c < 0 || qc_op == CompareOp::kGt);
  }
  return false;
}

// For `col qc_op @p` to imply `col vp_op b`, which predicate must @p satisfy?
// Returns the comparison op for `@p guard_op b`, or nullopt.
std::optional<CompareOp> GuardOpFor(CompareOp qc_op, CompareOp vp_op) {
  if (qc_op == CompareOp::kEq) return vp_op;  // @p must itself satisfy vp
  if (IsUpper(qc_op) && IsUpper(vp_op)) {
    // (-inf, @p] subset of (-inf, b] <=> @p <= b (strictness conservative).
    return (qc_op == CompareOp::kLe && vp_op == CompareOp::kLt) ? CompareOp::kLt
                                                                : CompareOp::kLe;
  }
  if (IsLower(qc_op) && IsLower(vp_op)) {
    return (qc_op == CompareOp::kGe && vp_op == CompareOp::kGt) ? CompareOp::kGt
                                                                : CompareOp::kGe;
  }
  return std::nullopt;
}

BinaryOp ToBinaryOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return BinaryOp::kEq;
    case CompareOp::kNe: return BinaryOp::kNe;
    case CompareOp::kLt: return BinaryOp::kLt;
    case CompareOp::kLe: return BinaryOp::kLe;
    case CompareOp::kGt: return BinaryOp::kGt;
    case CompareOp::kGe: return BinaryOp::kGe;
  }
  return BinaryOp::kEq;
}

CompareOp NegateCompareOp(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return CompareOp::kNe;
    case CompareOp::kNe: return CompareOp::kEq;
    case CompareOp::kLt: return CompareOp::kGe;
    case CompareOp::kLe: return CompareOp::kGt;
    case CompareOp::kGt: return CompareOp::kLe;
    case CompareOp::kGe: return CompareOp::kLt;
  }
  return op;
}

// Builds Get(view) -> Filter(residual) -> Project(back to base width).
// `base_to_view` maps base ordinal -> view ordinal (-1 if absent).
LogicalPtr BuildSubstitute(const LogicalGet& get, const TableDef& view,
                           const std::vector<const BoundExpr*>& conjuncts,
                           const std::vector<int>& base_to_view) {
  auto vget = std::make_unique<LogicalGet>();
  vget->table = view.name;
  vget->alias = view.name;
  vget->def = &view;
  for (const ColumnInfo& col : view.schema.columns()) {
    ColumnInfo copy = col;
    copy.table = view.name;
    vget->schema.AddColumn(std::move(copy));
  }
  Schema view_schema = vget->schema;
  LogicalPtr plan = std::move(vget);

  // Residual: re-apply every query conjunct against the view.
  std::vector<BExprPtr> residual;
  for (const BoundExpr* c : conjuncts) {
    BExprPtr copy = CloneBound(*c);
    RemapColumnRefs(copy.get(), base_to_view);
    residual.push_back(std::move(copy));
  }
  if (!residual.empty()) {
    auto filter = std::make_unique<LogicalFilter>();
    filter->predicate = AndTogether(std::move(residual));
    filter->schema = view_schema;
    filter->children.push_back(std::move(plan));
    plan = std::move(filter);
  }

  // Null-padded projection back to the base table's width.
  auto project = std::make_unique<LogicalProject>();
  for (int i = 0; i < get.schema.num_columns(); ++i) {
    const ColumnInfo& col = get.schema.column(i);
    if (base_to_view[i] >= 0) {
      project->exprs.push_back(std::make_unique<BoundColumnRef>(
          base_to_view[i], col.type,
          view.name + "." + view_schema.column(base_to_view[i]).name));
    } else {
      project->exprs.push_back(
          std::make_unique<BoundLiteral>(Value::TypedNull(col.type)));
    }
  }
  project->schema = get.schema;
  project->children.push_back(std::move(plan));
  return project;
}

}  // namespace

std::vector<ViewMatch> MatchViews(
    const LogicalGet& get, const std::vector<const BoundExpr*>& conjuncts,
    const std::set<int>& used_columns, const Catalog& catalog,
    bool allow_mixed_results, double max_staleness, double now,
    OptimizerDecisionStats* stats) {
  std::vector<ViewMatch> matches;
  if (get.def == nullptr || !get.server.empty()) return matches;

  // Reduce the query conjuncts to simple form where possible.
  std::vector<SimpleConjunct> simple;
  for (const BoundExpr* c : conjuncts) {
    SimpleConjunct sc;
    if (ExtractSimpleConjunct(*c, &sc)) simple.push_back(sc);
  }

  // Required base columns: referenced by ancestors or by any conjunct.
  std::set<int> required = used_columns;
  for (const BoundExpr* c : conjuncts) {
    std::vector<int> refs;
    CollectColumnRefs(*c, &refs);
    required.insert(refs.begin(), refs.end());
  }

  const RelStats base_stats = EstimateLogical(get);

  for (const TableDef* view : catalog.ViewsOver(get.table)) {
    // Freshness gate (§7 extension): an asynchronously maintained cached
    // view must be recent enough for the query's staleness budget.
    if (max_staleness >= 0 && view->kind == RelationKind::kCachedView) {
      SpanScope currency_span("currency_check",
                              TraceRecorder::Global().enabled()
                                  ? view->name
                                  : std::string());
      if (view->freshness_time < 0 ||
          now - view->freshness_time > max_staleness) {
        if (stats != nullptr) ++stats->currency_fallbacks;
        continue;
      }
      if (stats != nullptr) ++stats->currency_checks_passed;
    }
    const SelectProjectDef& def = *view->view_def;

    // Column coverage: map base ordinal -> view ordinal.
    std::vector<int> base_to_view(get.schema.num_columns(), -1);
    bool cover_ok = true;
    for (size_t j = 0; j < def.columns.size(); ++j) {
      int base_ord = get.def->ColumnOrdinal(def.columns[j]);
      if (base_ord < 0) {
        cover_ok = false;
        break;
      }
      base_to_view[base_ord] = static_cast<int>(j);
    }
    if (!cover_ok) continue;
    for (int col : required) {
      if (base_to_view[col] < 0) {
        cover_ok = false;
        break;
      }
    }
    if (!cover_ok) continue;

    // Predicate containment: every view predicate must be implied by some
    // query conjunct, possibly conditionally on a parameter.
    std::vector<BExprPtr> guards;
    double guard_prob = 1.0;
    int conditional_range_guards = 0;
    bool contained = true;
    for (const SimplePredicate& vp : def.predicates) {
      int vp_col = get.def->ColumnOrdinal(vp.column);
      bool this_ok = false;
      for (const SimpleConjunct& qc : simple) {
        if (qc.column != vp_col) continue;
        if (!qc.rhs_is_param) {
          if (LiteralImplies(qc.op, qc.literal, vp.op, vp.constant)) {
            this_ok = true;
            break;
          }
        } else {
          std::optional<CompareOp> guard_op = GuardOpFor(qc.op, vp.op);
          if (guard_op.has_value()) {
            auto guard = std::make_unique<BoundBinary>(
                ToBinaryOp(*guard_op),
                std::make_unique<BoundParam>(qc.param_name, TypeId::kNull),
                std::make_unique<BoundLiteral>(vp.constant), TypeId::kBool);
            // P(guard) from the base column's distribution (§5.1).
            if (vp_col >= 0 && vp_col < static_cast<int>(base_stats.cols.size())) {
              guard_prob *= EstimateGuardProbability(
                  *guard_op, vp.constant.AsStatDouble(),
                  base_stats.cols[vp_col]);
            } else {
              guard_prob *= 0.5;
            }
            guards.push_back(std::move(guard));
            if (IsUpper(*guard_op) || IsLower(*guard_op)) {
              ++conditional_range_guards;
            }
            this_ok = true;
            break;
          }
        }
      }
      if (!this_ok) {
        contained = false;
        break;
      }
    }
    if (!contained) continue;

    ViewMatch match;
    match.view = view;
    match.guard_prob = guards.empty() ? 1.0 : guard_prob;
    size_t num_guards = guards.size();
    match.guard = AndTogether(std::move(guards));
    match.substitute = BuildSubstitute(get, *view, conjuncts, base_to_view);

    // Mixed-result plan (Figure 3): regular matviews only, single-predicate
    // view with a single conditional range guard.
    if (allow_mixed_results && view->kind == RelationKind::kMaterializedView &&
        match.guard != nullptr && num_guards == 1 &&
        conditional_range_guards == 1 && def.predicates.size() == 1) {
      const SimplePredicate& vp = def.predicates[0];
      int vp_col = get.def->ColumnOrdinal(vp.column);
      auto union_all = std::make_unique<LogicalUnionAll>();
      union_all->schema = get.schema;
      // Branch A: rows from the view satisfying the query predicates.
      union_all->children.push_back(CloneLogical(*match.substitute));
      union_all->startup_preds.push_back(nullptr);
      union_all->startup_probs.push_back(1.0);
      // Branch B: top-up rows from the base table outside the view region,
      // guarded so it only opens when the parameter exceeds the view bound.
      {
        auto bget = std::make_unique<LogicalGet>();
        bget->table = get.table;
        bget->alias = get.alias;
        bget->server = get.server;
        bget->def = get.def;
        bget->schema = get.schema;
        std::vector<BExprPtr> preds;
        preds.push_back(std::make_unique<BoundBinary>(
            ToBinaryOp(NegateCompareOp(vp.op)),
            std::make_unique<BoundColumnRef>(
                vp_col, get.schema.column(vp_col).type,
                get.alias + "." + vp.column),
            std::make_unique<BoundLiteral>(vp.constant), TypeId::kBool));
        for (const BoundExpr* c : conjuncts) preds.push_back(CloneBound(*c));
        auto filter = std::make_unique<LogicalFilter>();
        filter->predicate = AndTogether(std::move(preds));
        filter->schema = get.schema;
        filter->children.push_back(std::move(bget));
        union_all->children.push_back(std::move(filter));
        union_all->startup_preds.push_back(std::make_unique<BoundUnary>(
            UnaryOp::kNot, CloneBound(*match.guard), TypeId::kBool));
        union_all->startup_probs.push_back(1.0 - match.guard_prob);
      }
      match.mixed = std::move(union_all);
    }

    matches.push_back(std::move(match));
  }
  return matches;
}

}  // namespace mtcache
