#include "opt/logical.h"

namespace mtcache {

LogicalPtr CloneLogical(const LogicalOp& op) {
  LogicalPtr out;
  switch (op.kind) {
    case LogicalKind::kGet: {
      const auto& o = static_cast<const LogicalGet&>(op);
      auto copy = std::make_unique<LogicalGet>();
      copy->table = o.table;
      copy->alias = o.alias;
      copy->server = o.server;
      copy->def = o.def;
      out = std::move(copy);
      break;
    }
    case LogicalKind::kFilter: {
      const auto& o = static_cast<const LogicalFilter&>(op);
      auto copy = std::make_unique<LogicalFilter>();
      copy->predicate = o.predicate ? CloneBound(*o.predicate) : nullptr;
      out = std::move(copy);
      break;
    }
    case LogicalKind::kProject: {
      const auto& o = static_cast<const LogicalProject&>(op);
      auto copy = std::make_unique<LogicalProject>();
      for (const auto& e : o.exprs) copy->exprs.push_back(CloneBound(*e));
      out = std::move(copy);
      break;
    }
    case LogicalKind::kJoin: {
      const auto& o = static_cast<const LogicalJoin&>(op);
      auto copy = std::make_unique<LogicalJoin>();
      copy->join_kind = o.join_kind;
      copy->condition = o.condition ? CloneBound(*o.condition) : nullptr;
      out = std::move(copy);
      break;
    }
    case LogicalKind::kAggregate: {
      const auto& o = static_cast<const LogicalAggregate&>(op);
      auto copy = std::make_unique<LogicalAggregate>();
      for (const auto& g : o.group_by) copy->group_by.push_back(CloneBound(*g));
      for (const auto& a : o.aggs) {
        AggItem item;
        item.func = a.func;
        item.arg = a.arg ? CloneBound(*a.arg) : nullptr;
        copy->aggs.push_back(std::move(item));
      }
      out = std::move(copy);
      break;
    }
    case LogicalKind::kSort: {
      const auto& o = static_cast<const LogicalSort&>(op);
      auto copy = std::make_unique<LogicalSort>();
      for (const auto& k : o.keys) {
        SortKey key;
        key.expr = CloneBound(*k.expr);
        key.desc = k.desc;
        copy->keys.push_back(std::move(key));
      }
      out = std::move(copy);
      break;
    }
    case LogicalKind::kLimit: {
      const auto& o = static_cast<const LogicalLimit&>(op);
      auto copy = std::make_unique<LogicalLimit>();
      copy->limit = o.limit;
      out = std::move(copy);
      break;
    }
    case LogicalKind::kDistinct: {
      out = std::make_unique<LogicalDistinct>();
      break;
    }
    case LogicalKind::kChoosePlan: {
      const auto& o = static_cast<const LogicalChoosePlan&>(op);
      auto copy = std::make_unique<LogicalChoosePlan>();
      copy->guard = o.guard ? CloneBound(*o.guard) : nullptr;
      copy->guard_prob = o.guard_prob;
      out = std::move(copy);
      break;
    }
    case LogicalKind::kUnionAll: {
      const auto& o = static_cast<const LogicalUnionAll&>(op);
      auto copy = std::make_unique<LogicalUnionAll>();
      for (const auto& p : o.startup_preds) {
        copy->startup_preds.push_back(p ? CloneBound(*p) : nullptr);
      }
      copy->startup_probs = o.startup_probs;
      out = std::move(copy);
      break;
    }
  }
  out->schema = op.schema;
  for (const auto& child : op.children) {
    out->children.push_back(CloneLogical(*child));
  }
  return out;
}

std::string LogicalToString(const LogicalOp& op, int indent) {
  std::string pad(indent * 2, ' ');
  std::string line = pad;
  switch (op.kind) {
    case LogicalKind::kGet: {
      const auto& o = static_cast<const LogicalGet&>(op);
      line += "Get(" + (o.server.empty() ? "" : o.server + ".") + o.table;
      if (!o.alias.empty() && o.alias != o.table) line += " AS " + o.alias;
      line += ")";
      break;
    }
    case LogicalKind::kFilter: {
      const auto& o = static_cast<const LogicalFilter&>(op);
      line += "Filter(" + BoundToSql(*o.predicate) + ")";
      break;
    }
    case LogicalKind::kProject: {
      const auto& o = static_cast<const LogicalProject&>(op);
      line += "Project(";
      for (size_t i = 0; i < o.exprs.size(); ++i) {
        if (i > 0) line += ", ";
        line += BoundToSql(*o.exprs[i]);
      }
      line += ")";
      break;
    }
    case LogicalKind::kJoin: {
      const auto& o = static_cast<const LogicalJoin&>(op);
      line += o.join_kind == JoinKind::kInner ? "Join(" : "LeftOuterJoin(";
      line += o.condition ? BoundToSql(*o.condition) : "true";
      line += ")";
      break;
    }
    case LogicalKind::kAggregate: {
      const auto& o = static_cast<const LogicalAggregate&>(op);
      line += "Aggregate(groups=" + std::to_string(o.group_by.size()) +
              ", aggs=" + std::to_string(o.aggs.size()) + ")";
      break;
    }
    case LogicalKind::kSort: {
      const auto& o = static_cast<const LogicalSort&>(op);
      line += "Sort(";
      for (size_t i = 0; i < o.keys.size(); ++i) {
        if (i > 0) line += ", ";
        line += BoundToSql(*o.keys[i].expr);
        if (o.keys[i].desc) line += " DESC";
      }
      line += ")";
      break;
    }
    case LogicalKind::kLimit: {
      line += "Limit(" +
              std::to_string(static_cast<const LogicalLimit&>(op).limit) + ")";
      break;
    }
    case LogicalKind::kDistinct:
      line += "Distinct";
      break;
    case LogicalKind::kChoosePlan: {
      const auto& o = static_cast<const LogicalChoosePlan&>(op);
      line += "ChoosePlan(guard=" + BoundToSql(*o.guard) + ")";
      break;
    }
    case LogicalKind::kUnionAll: {
      const auto& o = static_cast<const LogicalUnionAll&>(op);
      line += "UnionAll(";
      for (size_t i = 0; i < o.startup_preds.size(); ++i) {
        if (i > 0) line += ", ";
        line += o.startup_preds[i] ? BoundToSql(*o.startup_preds[i]) : "always";
      }
      line += ")";
      break;
    }
  }
  line += "\n";
  for (const auto& child : op.children) {
    line += LogicalToString(*child, indent + 1);
  }
  return line;
}

}  // namespace mtcache
