#ifndef MTCACHE_OPT_COST_MODEL_H_
#define MTCACHE_OPT_COST_MODEL_H_

#include <algorithm>
#include <cmath>

namespace mtcache {

/// Cost-model constants, in abstract "work units". The executor charges the
/// same constants for actual rows processed, so estimated and measured costs
/// are commensurable and the multi-server simulation can turn measured work
/// into CPU service time.
struct CostModel {
  // Per-row operator charges.
  static constexpr double kSeqRowCost = 1.0;
  static constexpr double kIndexSeekCost = 12.0;  // tree descend
  // Per row fetched through an index: dearer than a sequential-scan row
  // (random heap access), so full-relation reads prefer the scan.
  static constexpr double kIndexRowCost = 2.0;
  static constexpr double kFilterRowCost = 0.2;    // per input row
  static constexpr double kProjectRowCost = 0.2;   // per output row
  static constexpr double kHashBuildRowCost = 1.5;
  static constexpr double kHashProbeRowCost = 0.8;
  static constexpr double kNLInnerRowCost = 0.3;   // per inner row per outer
  static constexpr double kAggRowCost = 1.0;       // per input row
  static constexpr double kSortRowCost = 0.4;      // multiplied by log2(n)
  static constexpr double kDistinctRowCost = 0.8;

  // DataTransfer (§5): "proportional to the estimated volume of data shipped
  // plus a constant startup cost."
  static constexpr double kTransferStartup = 300.0;
  static constexpr double kTransferByteCost = 0.02;

  // DML charges (engine side). Writes are far more expensive than reads in
  // an OLTP engine (logging, locking, page writes); these constants reflect
  // that so update-heavy workloads load the backend realistically.
  static constexpr double kInsertRowCost = 150.0;
  static constexpr double kUpdateRowCost = 160.0;
  static constexpr double kDeleteRowCost = 150.0;
  static constexpr double kIndexMaintRowCost = 12.0;  // per index touched

  // Per-statement overhead (parse/bind/plan-cache/protocol).
  static constexpr double kStatementOverhead = 12.0;

  // Replication pipeline charges. The log reader scans and parses every log
  // record; the distributor *inserts* each qualifying change into the
  // distribution database (a real write, §2.2), and the agent's apply is a
  // row write on the subscriber.
  static constexpr double kLogReadRecordCost = 6.0;
  static constexpr double kDistributeRecordCost = 45.0;
  static constexpr double kApplyRecordCost = 90.0;

  static double SortCost(double rows) {
    double n = std::max(rows, 2.0);
    return kSortRowCost * n * std::log2(n);
  }
  static double TransferCost(double rows, double bytes_per_row) {
    return kTransferStartup + rows * bytes_per_row * kTransferByteCost;
  }
};

}  // namespace mtcache

#endif  // MTCACHE_OPT_COST_MODEL_H_
