#include "opt/cardinality.h"

#include <algorithm>
#include <cmath>

namespace mtcache {

namespace {

constexpr double kDefaultEqSel = 0.05;
constexpr double kDefaultRangeSel = 1.0 / 3.0;
constexpr double kDefaultLikeSel = 0.08;
constexpr double kDefaultSel = 0.25;

double Clamp01(double x) { return std::clamp(x, 0.0, 1.0); }

const ColumnStats* StatsFor(const RelStats& stats, int ordinal) {
  if (ordinal < 0 || ordinal >= static_cast<int>(stats.cols.size())) {
    return nullptr;
  }
  return &stats.cols[ordinal];
}

// Selectivity of `colref op rhs` where rhs is a literal (params handled by
// the caller with defaults).
double CompareSelectivity(BinaryOp op, const ColumnStats& cs, double x) {
  switch (op) {
    case BinaryOp::kEq:
      return Clamp01(cs.EqSelectivity());
    case BinaryOp::kNe:
      return Clamp01(1.0 - cs.EqSelectivity());
    case BinaryOp::kLt:
    case BinaryOp::kLe:
      return Clamp01(cs.RangeLeSelectivity(x));
    case BinaryOp::kGt:
    case BinaryOp::kGe:
      return Clamp01(cs.RangeGeSelectivity(x));
    default:
      return kDefaultSel;
  }
}

bool IsRange(BinaryOp op) {
  return op == BinaryOp::kLt || op == BinaryOp::kLe || op == BinaryOp::kGt ||
         op == BinaryOp::kGe;
}

}  // namespace

double EstimateSelectivity(const BoundExpr& pred, const RelStats& stats) {
  switch (pred.kind) {
    case BoundExprKind::kLiteral: {
      const auto& e = static_cast<const BoundLiteral&>(pred);
      if (e.value.is_null()) return 0.0;
      if (e.value.type() == TypeId::kBool) return e.value.AsBool() ? 1.0 : 0.0;
      return 1.0;
    }
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(pred);
      if (e.op == BinaryOp::kAnd) {
        return Clamp01(EstimateSelectivity(*e.left, stats) *
                       EstimateSelectivity(*e.right, stats));
      }
      if (e.op == BinaryOp::kOr) {
        double a = EstimateSelectivity(*e.left, stats);
        double b = EstimateSelectivity(*e.right, stats);
        return Clamp01(a + b - a * b);
      }
      // Comparison: normalize to colref-op-other.
      const BoundExpr* l = e.left.get();
      const BoundExpr* r = e.right.get();
      BinaryOp op = e.op;
      if (l->kind != BoundExprKind::kColumnRef &&
          r->kind == BoundExprKind::kColumnRef) {
        std::swap(l, r);
        switch (op) {
          case BinaryOp::kLt: op = BinaryOp::kGt; break;
          case BinaryOp::kLe: op = BinaryOp::kGe; break;
          case BinaryOp::kGt: op = BinaryOp::kLt; break;
          case BinaryOp::kGe: op = BinaryOp::kLe; break;
          default: break;
        }
      }
      if (l->kind == BoundExprKind::kColumnRef) {
        const auto& ref = static_cast<const BoundColumnRef&>(*l);
        const ColumnStats* cs = StatsFor(stats, ref.ordinal);
        if (r->kind == BoundExprKind::kColumnRef) {
          // Join predicate col = col.
          const auto& rref = static_cast<const BoundColumnRef&>(*r);
          const ColumnStats* rcs = StatsFor(stats, rref.ordinal);
          if (op == BinaryOp::kEq && cs != nullptr && rcs != nullptr) {
            double ndv = std::max({cs->ndv, rcs->ndv, 1.0});
            return Clamp01(1.0 / ndv);
          }
          return kDefaultSel;
        }
        if (r->kind == BoundExprKind::kLiteral && cs != nullptr) {
          const auto& lit = static_cast<const BoundLiteral&>(*r);
          if (lit.value.is_null()) return 0.0;
          return CompareSelectivity(op, *cs, lit.value.AsStatDouble());
        }
        // Parameter or computed rhs: defaults.
        if (op == BinaryOp::kEq && cs != nullptr) {
          return Clamp01(cs->EqSelectivity());
        }
        if (op == BinaryOp::kEq) return kDefaultEqSel;
        if (IsRange(op)) return kDefaultRangeSel;
        return kDefaultSel;
      }
      return kDefaultSel;
    }
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(pred);
      if (e.op == UnaryOp::kNot) {
        return Clamp01(1.0 - EstimateSelectivity(*e.operand, stats));
      }
      return kDefaultSel;
    }
    case BoundExprKind::kLike:
      return kDefaultLikeSel;
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(pred);
      if (e.input->kind == BoundExprKind::kColumnRef) {
        const auto& ref = static_cast<const BoundColumnRef&>(*e.input);
        const ColumnStats* cs = StatsFor(stats, ref.ordinal);
        if (cs != nullptr) {
          return Clamp01(e.negated ? 1.0 - cs->null_frac : cs->null_frac);
        }
      }
      return e.negated ? 0.95 : 0.05;
    }
    default:
      return kDefaultSel;
  }
}

namespace {

ColumnStats DefaultColStats(double rows) {
  ColumnStats cs;
  cs.min = 0;
  cs.max = std::max(rows, 1.0);
  cs.ndv = std::max(rows * 0.1, 1.0);
  cs.null_frac = 0;
  return cs;
}

void ScaleNdv(RelStats* stats) {
  for (ColumnStats& cs : stats->cols) {
    cs.ndv = std::max(1.0, std::min(cs.ndv, stats->rows));
  }
}

}  // namespace

RelStats EstimateLogical(const LogicalOp& op) {
  RelStats out;
  switch (op.kind) {
    case LogicalKind::kGet: {
      const auto& o = static_cast<const LogicalGet&>(op);
      if (o.def == nullptr) {
        // Dual or unresolved remote table.
        out.rows = o.table.empty() ? 1 : 1000;
        for (int i = 0; i < op.schema.num_columns(); ++i) {
          out.cols.push_back(DefaultColStats(out.rows));
        }
        return out;
      }
      out.rows = std::max(o.def->stats.row_count, 1.0);
      if (static_cast<int>(o.def->stats.columns.size()) ==
          op.schema.num_columns()) {
        out.cols = o.def->stats.columns;
      } else {
        for (int i = 0; i < op.schema.num_columns(); ++i) {
          out.cols.push_back(DefaultColStats(out.rows));
        }
      }
      return out;
    }
    case LogicalKind::kFilter: {
      const auto& o = static_cast<const LogicalFilter&>(op);
      RelStats child = EstimateLogical(*op.children[0]);
      double sel = o.predicate != nullptr
                       ? EstimateSelectivity(*o.predicate, child)
                       : 1.0;
      out = child;
      out.rows = std::max(child.rows * sel, 0.5);
      ScaleNdv(&out);
      return out;
    }
    case LogicalKind::kProject: {
      const auto& o = static_cast<const LogicalProject&>(op);
      RelStats child = EstimateLogical(*op.children[0]);
      out.rows = child.rows;
      for (const auto& e : o.exprs) {
        if (e->kind == BoundExprKind::kColumnRef) {
          int ord = static_cast<const BoundColumnRef&>(*e).ordinal;
          if (ord >= 0 && ord < static_cast<int>(child.cols.size())) {
            out.cols.push_back(child.cols[ord]);
            continue;
          }
        }
        out.cols.push_back(DefaultColStats(child.rows));
      }
      return out;
    }
    case LogicalKind::kJoin: {
      const auto& o = static_cast<const LogicalJoin&>(op);
      RelStats left = EstimateLogical(*op.children[0]);
      RelStats right = EstimateLogical(*op.children[1]);
      out.cols = left.cols;
      out.cols.insert(out.cols.end(), right.cols.begin(), right.cols.end());
      double cross = left.rows * right.rows;
      double sel = 1.0;
      if (o.condition != nullptr) {
        RelStats combined;
        combined.rows = cross;
        combined.cols = out.cols;
        sel = EstimateSelectivity(*o.condition, combined);
      }
      out.rows = std::max(cross * sel, 0.5);
      if (o.join_kind == JoinKind::kLeftOuter) {
        out.rows = std::max(out.rows, left.rows);
      }
      ScaleNdv(&out);
      return out;
    }
    case LogicalKind::kAggregate: {
      const auto& o = static_cast<const LogicalAggregate&>(op);
      RelStats child = EstimateLogical(*op.children[0]);
      double groups = 1;
      for (const auto& g : o.group_by) {
        double ndv = 10;
        if (g->kind == BoundExprKind::kColumnRef) {
          int ord = static_cast<const BoundColumnRef&>(*g).ordinal;
          if (ord >= 0 && ord < static_cast<int>(child.cols.size())) {
            ndv = child.cols[ord].ndv;
            out.cols.push_back(child.cols[ord]);
          } else {
            out.cols.push_back(DefaultColStats(child.rows));
          }
        } else {
          out.cols.push_back(DefaultColStats(child.rows));
        }
        groups *= std::max(ndv, 1.0);
      }
      out.rows = o.group_by.empty() ? 1 : std::min(groups, child.rows);
      for (size_t i = 0; i < o.aggs.size(); ++i) {
        out.cols.push_back(DefaultColStats(out.rows));
      }
      ScaleNdv(&out);
      return out;
    }
    case LogicalKind::kSort:
      return EstimateLogical(*op.children[0]);
    case LogicalKind::kLimit: {
      const auto& o = static_cast<const LogicalLimit&>(op);
      out = EstimateLogical(*op.children[0]);
      out.rows = std::min(out.rows, static_cast<double>(o.limit));
      ScaleNdv(&out);
      return out;
    }
    case LogicalKind::kDistinct: {
      RelStats child = EstimateLogical(*op.children[0]);
      double distinct = 1;
      for (const ColumnStats& cs : child.cols) distinct *= std::max(cs.ndv, 1.0);
      out = child;
      out.rows = std::min(child.rows, std::max(distinct, 1.0));
      ScaleNdv(&out);
      return out;
    }
    case LogicalKind::kChoosePlan: {
      // Either branch produces the same logical result; use the first.
      return EstimateLogical(*op.children[0]);
    }
    case LogicalKind::kUnionAll: {
      out = EstimateLogical(*op.children[0]);
      for (size_t i = 1; i < op.children.size(); ++i) {
        out.rows += EstimateLogical(*op.children[i]).rows;
      }
      return out;
    }
  }
  return out;
}

double EstimateGuardProbability(CompareOp op, double bound,
                                const ColumnStats& col) {
  if (col.max <= col.min) return 0.5;
  double f = (bound - col.min) / (col.max - col.min);
  f = std::clamp(f, 0.0, 1.0);
  switch (op) {
    case CompareOp::kLe:
    case CompareOp::kLt:
      return f;  // P(@p <= bound)
    case CompareOp::kGe:
    case CompareOp::kGt:
      return 1.0 - f;
    case CompareOp::kEq:
      return f;  // P(@p falls inside the view's range)
    case CompareOp::kNe:
      return 1.0 - f;
  }
  return 0.5;
}

}  // namespace mtcache
