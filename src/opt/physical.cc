#include "opt/physical.h"

namespace mtcache {

std::string PhysicalOpLabel(const PhysicalOp& op) {
  switch (op.kind) {
    case PhysicalKind::kDualScan:
      return "DualScan";
    case PhysicalKind::kSeqScan:
      return "SeqScan(" + static_cast<const PhysSeqScan&>(op).def->name + ")";
    case PhysicalKind::kIndexSeek: {
      const auto& o = static_cast<const PhysIndexSeek&>(op);
      return "IndexSeek(" + o.def->name + "." +
             o.def->indexes[o.index_ordinal].name + ")";
    }
    case PhysicalKind::kFilter: {
      const auto& o = static_cast<const PhysFilter&>(op);
      return std::string(o.startup ? "StartupFilter(" : "Filter(") +
             BoundToSql(*o.predicate) + ")";
    }
    case PhysicalKind::kProject:
      return "Project";
    case PhysicalKind::kNLJoin: {
      const auto& o = static_cast<const PhysNLJoin&>(op);
      return o.join_kind == JoinKind::kInner ? "NLJoin" : "NLJoin[left outer]";
    }
    case PhysicalKind::kIndexNLJoin: {
      const auto& o = static_cast<const PhysIndexNLJoin&>(op);
      std::string label = "IndexNLJoin(" + o.inner_def->name + "." +
                          o.inner_def->indexes[o.index_ordinal].name + ")";
      if (o.join_kind == JoinKind::kLeftOuter) label += "[left outer]";
      return label;
    }
    case PhysicalKind::kHashJoin: {
      const auto& o = static_cast<const PhysHashJoin&>(op);
      return o.join_kind == JoinKind::kInner ? "HashJoin"
                                             : "HashJoin[left outer]";
    }
    case PhysicalKind::kHashAggregate:
      return "HashAggregate";
    case PhysicalKind::kSort:
      return "Sort";
    case PhysicalKind::kLimit:
      return "Limit(" +
             std::to_string(static_cast<const PhysLimit&>(op).limit) + ")";
    case PhysicalKind::kDistinct:
      return "Distinct";
    case PhysicalKind::kUnionAll:
      return "UnionAll";
    case PhysicalKind::kRemoteQuery: {
      const auto& o = static_cast<const PhysRemoteQuery&>(op);
      return "RemoteQuery[" + o.server + "](" + o.sql + ")";
    }
  }
  return "?";
}

std::string PhysicalToString(const PhysicalOp& op, int indent) {
  std::string out(indent * 2, ' ');
  out += PhysicalOpLabel(op);
  out += "  rows=" + std::to_string(static_cast<int64_t>(op.est_rows));
  out += " cost=" + std::to_string(op.est_cost);
  out += "\n";
  for (const auto& child : op.children) {
    out += PhysicalToString(*child, indent + 1);
  }
  return out;
}

int PhysicalPlanSize(const PhysicalOp& op) {
  int n = 1;
  for (const auto& child : op.children) n += PhysicalPlanSize(*child);
  return n;
}

}  // namespace mtcache
