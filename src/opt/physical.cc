#include "opt/physical.h"

namespace mtcache {

namespace {

// " [pred: ...] [proj: ...]" annotations for scans with folded-in filter /
// projection; appended after the base label so plan-shape matching on
// "SeqScan(name)" / "IndexSeek(name.idx)" keeps working.
std::string PushdownSuffix(const BExprPtr& pred,
                           const std::vector<BExprPtr>& proj) {
  std::string out;
  if (pred != nullptr) out += " [pred: " + BoundToSql(*pred) + "]";
  if (!proj.empty()) {
    out += " [proj: ";
    for (size_t i = 0; i < proj.size(); ++i) {
      if (i > 0) out += ", ";
      out += BoundToSql(*proj[i]);
    }
    out += "]";
  }
  return out;
}

}  // namespace

std::string PhysicalOpLabel(const PhysicalOp& op) {
  switch (op.kind) {
    case PhysicalKind::kDualScan:
      return "DualScan";
    case PhysicalKind::kSeqScan: {
      const auto& o = static_cast<const PhysSeqScan&>(op);
      return "SeqScan(" + o.def->name + ")" +
             PushdownSuffix(o.pushed_predicate, o.pushed_projection);
    }
    case PhysicalKind::kIndexSeek: {
      const auto& o = static_cast<const PhysIndexSeek&>(op);
      return "IndexSeek(" + o.def->name + "." +
             o.def->indexes[o.index_ordinal].name + ")" +
             PushdownSuffix(o.pushed_predicate, o.pushed_projection);
    }
    case PhysicalKind::kFilter: {
      const auto& o = static_cast<const PhysFilter&>(op);
      return std::string(o.startup ? "StartupFilter(" : "Filter(") +
             BoundToSql(*o.predicate) + ")";
    }
    case PhysicalKind::kProject:
      return "Project";
    case PhysicalKind::kNLJoin: {
      const auto& o = static_cast<const PhysNLJoin&>(op);
      return o.join_kind == JoinKind::kInner ? "NLJoin" : "NLJoin[left outer]";
    }
    case PhysicalKind::kIndexNLJoin: {
      const auto& o = static_cast<const PhysIndexNLJoin&>(op);
      std::string label = "IndexNLJoin(" + o.inner_def->name + "." +
                          o.inner_def->indexes[o.index_ordinal].name + ")";
      if (o.join_kind == JoinKind::kLeftOuter) label += "[left outer]";
      return label;
    }
    case PhysicalKind::kHashJoin: {
      const auto& o = static_cast<const PhysHashJoin&>(op);
      return o.join_kind == JoinKind::kInner ? "HashJoin"
                                             : "HashJoin[left outer]";
    }
    case PhysicalKind::kHashAggregate:
      return "HashAggregate";
    case PhysicalKind::kSort:
      return "Sort";
    case PhysicalKind::kLimit:
      return "Limit(" +
             std::to_string(static_cast<const PhysLimit&>(op).limit) + ")";
    case PhysicalKind::kDistinct:
      return "Distinct";
    case PhysicalKind::kUnionAll:
      return "UnionAll";
    case PhysicalKind::kRemoteQuery: {
      const auto& o = static_cast<const PhysRemoteQuery&>(op);
      return "RemoteQuery[" + o.server + "](" + o.sql + ")";
    }
  }
  return "?";
}

std::string PhysicalToString(const PhysicalOp& op, int indent) {
  std::string out(indent * 2, ' ');
  out += PhysicalOpLabel(op);
  out += "  rows=" + std::to_string(static_cast<int64_t>(op.est_rows));
  out += " cost=" + std::to_string(op.est_cost);
  out += "\n";
  for (const auto& child : op.children) {
    out += PhysicalToString(*child, indent + 1);
  }
  return out;
}

int PhysicalPlanSize(const PhysicalOp& op) {
  int n = 1;
  for (const auto& child : op.children) n += PhysicalPlanSize(*child);
  return n;
}

}  // namespace mtcache
