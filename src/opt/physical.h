#ifndef MTCACHE_OPT_PHYSICAL_H_
#define MTCACHE_OPT_PHYSICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/bound_expr.h"
#include "opt/logical.h"  // AggItem, SortKey
#include "types/schema.h"

namespace mtcache {

/// The DataLocation physical property (§5): where a subexpression's result
/// is produced. Cached views and local tables are Local; shadow tables and
/// linked-server tables are Remote. The DataTransfer enforcer moves a result
/// from Remote to Local, costed per byte plus a startup charge.
enum class DataLocation { kLocal, kRemote };

enum class PhysicalKind {
  kDualScan,     // one empty row (SELECT without FROM)
  kSeqScan,
  kIndexSeek,
  kFilter,       // optionally a startup predicate (evaluated once at Open)
  kProject,
  kNLJoin,
  kIndexNLJoin,
  kHashJoin,
  kHashAggregate,
  kSort,
  kLimit,
  kDistinct,
  kUnionAll,     // concatenates children; implements ChoosePlan (Fig. 2(b))
  kRemoteQuery,  // DataTransfer boundary: ships SQL text to a linked server
};

/// Physical operator tree. Expressions reference child output ordinals; for
/// joins, the left child's columns come first.
struct PhysicalOp {
  explicit PhysicalOp(PhysicalKind k) : kind(k) {}
  virtual ~PhysicalOp() = default;
  const PhysicalKind kind;
  Schema schema;
  std::vector<std::unique_ptr<PhysicalOp>> children;
  double est_rows = 0;   // estimated output cardinality
  double est_cost = 0;   // estimated cumulative cost (this op + children)
};

using PhysicalPtr = std::unique_ptr<PhysicalOp>;

struct PhysDualScan : PhysicalOp {
  PhysDualScan() : PhysicalOp(PhysicalKind::kDualScan) {}
};

struct PhysSeqScan : PhysicalOp {
  PhysSeqScan() : PhysicalOp(PhysicalKind::kSeqScan) {}
  const TableDef* def = nullptr;
  /// Filter folded into the scan (over the table schema): non-qualifying
  /// rows are never materialized or emitted. Null = emit every live row.
  BExprPtr pushed_predicate;
  /// Projection folded into the scan (over the table schema): qualifying
  /// rows are rewritten to these expressions at the scan. Empty = emit
  /// stored rows unchanged. When set, `schema` is the projected schema.
  std::vector<BExprPtr> pushed_projection;
};

/// B+-tree range access: equality on a key prefix, then an optional range on
/// the next key column. Bounds are row-free expressions (literals/params).
struct PhysIndexSeek : PhysicalOp {
  PhysIndexSeek() : PhysicalOp(PhysicalKind::kIndexSeek) {}
  const TableDef* def = nullptr;
  int index_ordinal = 0;
  std::vector<BExprPtr> eq_prefix;  // values for leading key columns
  BExprPtr lo;                      // optional lower bound on next column
  bool lo_inclusive = true;
  BExprPtr hi;                      // optional upper bound on next column
  bool hi_inclusive = true;
  /// Residual filter / projection folded into the seek; same contract as
  /// PhysSeqScan's pushed_predicate / pushed_projection.
  BExprPtr pushed_predicate;
  std::vector<BExprPtr> pushed_projection;
};

struct PhysFilter : PhysicalOp {
  PhysFilter() : PhysicalOp(PhysicalKind::kFilter) {}
  BExprPtr predicate;
  /// Startup predicates reference no columns; evaluated once at Open, and if
  /// false the child is never opened (the paper's ChoosePlan branches).
  bool startup = false;
};

struct PhysProject : PhysicalOp {
  PhysProject() : PhysicalOp(PhysicalKind::kProject) {}
  std::vector<BExprPtr> exprs;
};

struct PhysNLJoin : PhysicalOp {
  PhysNLJoin() : PhysicalOp(PhysicalKind::kNLJoin) {}
  JoinKind join_kind = JoinKind::kInner;
  BExprPtr condition;  // over concat(left, right); null = cross
};

/// Index nested-loop join: children[0] is the outer input; the inner side is
/// a direct (optionally filtered) index access on a stored table, sought once
/// per outer row with the outer's join-key value.
struct PhysIndexNLJoin : PhysicalOp {
  PhysIndexNLJoin() : PhysicalOp(PhysicalKind::kIndexNLJoin) {}
  JoinKind join_kind = JoinKind::kInner;
  const TableDef* inner_def = nullptr;
  int index_ordinal = 0;
  int outer_key = 0;          // ordinal in the outer (left) output
  BExprPtr inner_predicate;   // residual over the inner table schema
  /// Projection applied to fetched inner rows before concatenation (view
  /// substitution wraps table accesses in a column-remap/null-pad Project;
  /// the join sees through it). Empty = inner rows used as-is.
  std::vector<BExprPtr> inner_projection;
  BExprPtr residual;          // over concat(left, projected inner)
};

struct PhysHashJoin : PhysicalOp {
  PhysHashJoin() : PhysicalOp(PhysicalKind::kHashJoin) {}
  JoinKind join_kind = JoinKind::kInner;
  // children[0] = probe (left), children[1] = build (right).
  std::vector<int> probe_keys;  // ordinals in left output
  std::vector<int> build_keys;  // ordinals in right output
  BExprPtr residual;            // over concat(left, right); may be null
};

struct PhysHashAggregate : PhysicalOp {
  PhysHashAggregate() : PhysicalOp(PhysicalKind::kHashAggregate) {}
  std::vector<BExprPtr> group_by;
  std::vector<AggItem> aggs;
};

struct PhysSort : PhysicalOp {
  PhysSort() : PhysicalOp(PhysicalKind::kSort) {}
  std::vector<SortKey> keys;
};

struct PhysLimit : PhysicalOp {
  PhysLimit() : PhysicalOp(PhysicalKind::kLimit) {}
  int64_t limit = 0;
};

struct PhysDistinct : PhysicalOp {
  PhysDistinct() : PhysicalOp(PhysicalKind::kDistinct) {}
};

struct PhysUnionAll : PhysicalOp {
  PhysUnionAll() : PhysicalOp(PhysicalKind::kUnionAll) {}
};

/// The physical realization of DataTransfer (§5): the subexpression below
/// the transfer is unparsed to SQL text and shipped to `server`, which
/// parses and re-optimizes it ("queries can only be shipped as textual SQL").
struct PhysRemoteQuery : PhysicalOp {
  PhysRemoteQuery() : PhysicalOp(PhysicalKind::kRemoteQuery) {}
  std::string server;
  std::string sql;
};

/// Single-node label ("SeqScan(item)", "RemoteQuery[backend](...)"), shared
/// by EXPLAIN rendering and the per-operator profile tree.
std::string PhysicalOpLabel(const PhysicalOp& op);

/// Multi-line rendering with per-node estimates, for tests and EXPLAIN.
std::string PhysicalToString(const PhysicalOp& op, int indent = 0);

/// Total number of operators (plan size; §5.1.2 discusses plan-size growth).
int PhysicalPlanSize(const PhysicalOp& op);

}  // namespace mtcache

#endif  // MTCACHE_OPT_PHYSICAL_H_
