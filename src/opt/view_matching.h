#ifndef MTCACHE_OPT_VIEW_MATCHING_H_
#define MTCACHE_OPT_VIEW_MATCHING_H_

#include <set>
#include <vector>

#include "catalog/catalog.h"
#include "opt/logical.h"
#include "opt/optimizer_stats.h"

namespace mtcache {

/// A conjunct reduced to `column op (literal | parameter)` form. View
/// matching and index selection both work on these.
struct SimpleConjunct {
  int column = -1;          // ordinal in the table / input schema
  CompareOp op = CompareOp::kEq;
  bool rhs_is_param = false;
  Value literal;            // when !rhs_is_param
  std::string param_name;   // when rhs_is_param
  const BoundExpr* source = nullptr;  // the original conjunct
};

/// Extracts `col op rhs` (flipping sides if needed). Returns false when the
/// conjunct does not have that shape.
bool ExtractSimpleConjunct(const BoundExpr& conjunct, SimpleConjunct* out);

/// One way to answer a table access from a materialized view (§5 view
/// matching, after [10]).
struct ViewMatch {
  const TableDef* view = nullptr;
  /// Parameter-only predicate that must hold for the view to contain all
  /// required rows. Null = unconditional containment.
  BExprPtr guard;
  /// Estimated P(guard true), from the uniform-parameter assumption (§5.1).
  double guard_prob = 1.0;
  /// Replacement subtree producing exactly the original site's schema
  /// (unused base columns are null-padded).
  LogicalPtr substitute;
  /// For regular matviews with a single range guard: a mixed-result plan
  /// (Figure 3) that reads the view and tops up from the base table. Null
  /// for cached views — mixed results could be transactionally inconsistent
  /// (§5.1.1) — and whenever the shape doesn't allow it.
  LogicalPtr mixed;
};

/// Finds every view in `catalog` that can answer a scan of `get` filtered by
/// `conjuncts`, where ancestors reference only `used_columns` of the get's
/// output. `site` is the original Filter(Get) subtree (cloned into ChoosePlan
/// fallbacks by the caller).
/// `max_staleness`/`now`: when max_staleness >= 0, cached views whose
/// freshness_time lags `now` by more than that are skipped (§7 freshness
/// extension); regular matviews are synchronously maintained and always
/// qualify. `stats` (optional) receives currency pass/fallback counts; the
/// optimizer passes it on the first matching pass only, so each currency
/// decision is counted once per optimization.
std::vector<ViewMatch> MatchViews(const LogicalGet& get,
                                  const std::vector<const BoundExpr*>& conjuncts,
                                  const std::set<int>& used_columns,
                                  const Catalog& catalog,
                                  bool allow_mixed_results,
                                  double max_staleness = -1, double now = 0,
                                  OptimizerDecisionStats* stats = nullptr);

}  // namespace mtcache

#endif  // MTCACHE_OPT_VIEW_MATCHING_H_
