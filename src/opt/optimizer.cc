#include "opt/optimizer.h"

#include <chrono>
#include <limits>
#include <map>
#include <optional>
#include <set>

#include "opt/cardinality.h"
#include "opt/cost_model.h"
#include "opt/unparse.h"
#include "opt/view_matching.h"

namespace mtcache {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double EstimateRowBytes(const Schema& schema) {
  double bytes = 4;
  for (const ColumnInfo& col : schema.columns()) {
    bytes += col.type == TypeId::kString ? 24 : 8;
  }
  return bytes;
}

LogicalPtr WrapFilter(LogicalPtr node, std::vector<BExprPtr> conjuncts) {
  if (conjuncts.empty()) return node;
  auto filter = std::make_unique<LogicalFilter>();
  filter->predicate = AndTogether(std::move(conjuncts));
  filter->schema = node->schema;
  filter->children.push_back(std::move(node));
  return filter;
}

// Substitutes project expressions into a predicate that references project
// *outputs*, producing a predicate over the project's *input*.
BExprPtr SubstituteThroughProject(const BoundExpr& pred,
                                  const std::vector<BExprPtr>& exprs,
                                  bool* ok) {
  switch (pred.kind) {
    case BoundExprKind::kColumnRef: {
      int ord = static_cast<const BoundColumnRef&>(pred).ordinal;
      if (ord < 0 || ord >= static_cast<int>(exprs.size())) {
        *ok = false;
        return CloneBound(pred);
      }
      return CloneBound(*exprs[ord]);
    }
    case BoundExprKind::kLiteral:
    case BoundExprKind::kParam:
      return CloneBound(pred);
    case BoundExprKind::kUnary: {
      const auto& e = static_cast<const BoundUnary&>(pred);
      return std::make_unique<BoundUnary>(
          e.op, SubstituteThroughProject(*e.operand, exprs, ok), e.type);
    }
    case BoundExprKind::kBinary: {
      const auto& e = static_cast<const BoundBinary&>(pred);
      return std::make_unique<BoundBinary>(
          e.op, SubstituteThroughProject(*e.left, exprs, ok),
          SubstituteThroughProject(*e.right, exprs, ok), e.type);
    }
    case BoundExprKind::kLike: {
      const auto& e = static_cast<const BoundLike&>(pred);
      return std::make_unique<BoundLike>(
          SubstituteThroughProject(*e.input, exprs, ok),
          SubstituteThroughProject(*e.pattern, exprs, ok), e.negated);
    }
    case BoundExprKind::kIsNull: {
      const auto& e = static_cast<const BoundIsNull&>(pred);
      return std::make_unique<BoundIsNull>(
          SubstituteThroughProject(*e.input, exprs, ok), e.negated);
    }
    case BoundExprKind::kFunction: {
      const auto& e = static_cast<const BoundFunction&>(pred);
      std::vector<BExprPtr> args;
      for (const auto& a : e.args) {
        args.push_back(SubstituteThroughProject(*a, exprs, ok));
      }
      return std::make_unique<BoundFunction>(e.fn, std::move(args), e.type);
    }
    case BoundExprKind::kCase: {
      const auto& e = static_cast<const BoundCase&>(pred);
      std::vector<std::pair<BExprPtr, BExprPtr>> branches;
      for (const auto& [when, then] : e.branches) {
        branches.emplace_back(SubstituteThroughProject(*when, exprs, ok),
                              SubstituteThroughProject(*then, exprs, ok));
      }
      return std::make_unique<BoundCase>(
          std::move(branches),
          e.else_expr ? SubstituteThroughProject(*e.else_expr, exprs, ok)
                      : nullptr,
          e.type);
    }
  }
  *ok = false;
  return CloneBound(pred);
}

// ---------------------------------------------------------------------------
// Normalization: split filters into conjuncts and push them to the leaves.
// ---------------------------------------------------------------------------

LogicalPtr Normalize(LogicalPtr node, std::vector<BExprPtr> inherited) {
  switch (node->kind) {
    case LogicalKind::kFilter: {
      auto* filter = static_cast<LogicalFilter*>(node.get());
      std::vector<const BoundExpr*> parts;
      CollectConjuncts(*filter->predicate, &parts);
      for (const BoundExpr* p : parts) inherited.push_back(CloneBound(*p));
      LogicalPtr child = std::move(node->children[0]);
      return Normalize(std::move(child), std::move(inherited));
    }
    case LogicalKind::kJoin: {
      auto* join = static_cast<LogicalJoin*>(node.get());
      int left_width = node->children[0]->schema.num_columns();
      std::vector<BExprPtr> left_down;
      std::vector<BExprPtr> right_down;
      std::vector<BExprPtr> stay;
      bool inner = join->join_kind == JoinKind::kInner;
      // For inner joins the ON condition joins the pool; for outer joins it
      // must stay attached to the join.
      std::vector<BExprPtr> pool = std::move(inherited);
      if (inner && join->condition != nullptr) {
        std::vector<const BoundExpr*> parts;
        CollectConjuncts(*join->condition, &parts);
        for (const BoundExpr* p : parts) pool.push_back(CloneBound(*p));
        join->condition = nullptr;
      }
      std::vector<BExprPtr> above;
      for (auto& c : pool) {
        std::vector<int> refs;
        CollectColumnRefs(*c, &refs);
        bool all_left = true;
        bool all_right = true;
        for (int r : refs) {
          if (r >= left_width) all_left = false;
          if (r < left_width) all_right = false;
        }
        if (refs.empty()) {
          // Row-free conjunct: keep at the join (cheap either way).
          stay.push_back(std::move(c));
        } else if (all_left) {
          left_down.push_back(std::move(c));
        } else if (all_right && inner) {
          ShiftColumnRefs(c.get(), -left_width);
          right_down.push_back(std::move(c));
        } else if (inner) {
          stay.push_back(std::move(c));
        } else {
          // Left outer: predicates touching the right side stay above.
          above.push_back(std::move(c));
        }
      }
      node->children[0] =
          Normalize(std::move(node->children[0]), std::move(left_down));
      node->children[1] =
          Normalize(std::move(node->children[1]), std::move(right_down));
      if (inner) {
        join->condition = AndTogether(std::move(stay));
      } else {
        // Re-attach row-free conjuncts above for outer joins.
        for (auto& c : stay) above.push_back(std::move(c));
      }
      return WrapFilter(std::move(node), std::move(above));
    }
    case LogicalKind::kProject: {
      auto* project = static_cast<LogicalProject*>(node.get());
      std::vector<BExprPtr> down;
      std::vector<BExprPtr> above;
      for (auto& c : inherited) {
        bool ok = true;
        BExprPtr pushed = SubstituteThroughProject(*c, project->exprs, &ok);
        if (ok) {
          down.push_back(std::move(pushed));
        } else {
          above.push_back(std::move(c));
        }
      }
      node->children[0] =
          Normalize(std::move(node->children[0]), std::move(down));
      return WrapFilter(std::move(node), std::move(above));
    }
    case LogicalKind::kSort:
    case LogicalKind::kDistinct: {
      node->children[0] =
          Normalize(std::move(node->children[0]), std::move(inherited));
      return node;
    }
    case LogicalKind::kGet:
      return WrapFilter(std::move(node), std::move(inherited));
    default: {
      // Limit, Aggregate, ChoosePlan, UnionAll: conjuncts cannot (or should
      // not) move past this operator.
      for (auto& child : node->children) {
        child = Normalize(std::move(child), {});
      }
      return WrapFilter(std::move(node), std::move(inherited));
    }
  }
}

// ---------------------------------------------------------------------------
// Used-column analysis (drives view matching's column coverage).
// ---------------------------------------------------------------------------

using UsedMap = std::map<const LogicalOp*, std::set<int>>;

void AddRefs(const BoundExpr& expr, std::set<int>* out) {
  std::vector<int> refs;
  CollectColumnRefs(expr, &refs);
  out->insert(refs.begin(), refs.end());
}

void ComputeUsed(const LogicalOp& node, const std::set<int>& used_out,
                 UsedMap* map) {
  switch (node.kind) {
    case LogicalKind::kGet:
      (*map)[&node].insert(used_out.begin(), used_out.end());
      return;
    case LogicalKind::kFilter: {
      std::set<int> used = used_out;
      AddRefs(*static_cast<const LogicalFilter&>(node).predicate, &used);
      ComputeUsed(*node.children[0], used, map);
      return;
    }
    case LogicalKind::kProject: {
      std::set<int> used;
      for (const auto& e : static_cast<const LogicalProject&>(node).exprs) {
        AddRefs(*e, &used);
      }
      ComputeUsed(*node.children[0], used, map);
      return;
    }
    case LogicalKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(node);
      int left_width = node.children[0]->schema.num_columns();
      std::set<int> combined = used_out;
      if (join.condition != nullptr) AddRefs(*join.condition, &combined);
      std::set<int> left;
      std::set<int> right;
      for (int o : combined) {
        if (o < left_width) {
          left.insert(o);
        } else {
          right.insert(o - left_width);
        }
      }
      ComputeUsed(*node.children[0], left, map);
      ComputeUsed(*node.children[1], right, map);
      return;
    }
    case LogicalKind::kAggregate: {
      const auto& agg = static_cast<const LogicalAggregate&>(node);
      std::set<int> used;
      for (const auto& g : agg.group_by) AddRefs(*g, &used);
      for (const auto& a : agg.aggs) {
        if (a.arg != nullptr) AddRefs(*a.arg, &used);
      }
      ComputeUsed(*node.children[0], used, map);
      return;
    }
    case LogicalKind::kSort: {
      std::set<int> used = used_out;
      for (const auto& k : static_cast<const LogicalSort&>(node).keys) {
        AddRefs(*k.expr, &used);
      }
      ComputeUsed(*node.children[0], used, map);
      return;
    }
    default:
      for (const auto& child : node.children) {
        ComputeUsed(*child, used_out, map);
      }
      return;
  }
}

std::set<int> AllColumns(const Schema& schema) {
  std::set<int> out;
  for (int i = 0; i < schema.num_columns(); ++i) out.insert(i);
  return out;
}

// ---------------------------------------------------------------------------
// Planner: top-down physical planning with the DataLocation property.
// ---------------------------------------------------------------------------

struct PlanChoice {
  PhysicalPtr plan;
  double cost = kInf;
};

struct PlanResult {
  PhysicalPtr local_plan;  // best plan producing the result on this server
  double local_cost = kInf;
  bool remote_ok = false;  // subtree may execute wholly on `remote_server`
  std::string remote_server;
  double remote_exec_cost = kInf;  // execution cost there (factor applied)
  double rows = 1;
  double row_bytes = 32;
  const LogicalOp* logical = nullptr;  // for unparsing when shipped
};

class Planner {
 public:
  Planner(const Catalog* catalog, const OptimizerOptions& options,
          bool pretend_local, int* alternatives)
      : catalog_(catalog), options_(options), pretend_local_(pretend_local),
        alternatives_(alternatives) {}

  StatusOr<PlanResult> Plan(const LogicalOp& node);

  /// Enforces DataLocation = Local: picks the cheaper of the local plan and
  /// shipping the whole subtree (RemoteQuery + transfer cost).
  StatusOr<PlanChoice> DeliverLocal(PlanResult result) {
    double remote_total = kInf;
    if (result.remote_ok) {
      remote_total = result.remote_exec_cost +
                     CostModel::TransferCost(result.rows, result.row_bytes);
    }
    if (result.local_cost <= remote_total) {
      if (result.local_plan == nullptr) {
        return Status::Internal("no viable plan for subexpression");
      }
      return PlanChoice{std::move(result.local_plan), result.local_cost};
    }
    auto remote = std::make_unique<PhysRemoteQuery>();
    remote->server = result.remote_server;
    MT_ASSIGN_OR_RETURN(remote->sql, LogicalToSql(*result.logical));
    remote->schema = result.logical->schema;
    remote->est_rows = result.rows;
    remote->est_cost = remote_total;
    return PlanChoice{std::move(remote), remote_total};
  }

  StatusOr<double> DeliveredCost(const LogicalOp& node) {
    MT_ASSIGN_OR_RETURN(PlanResult result, Plan(node));
    MT_ASSIGN_OR_RETURN(PlanChoice choice, DeliverLocal(std::move(result)));
    return choice.cost;
  }

 private:
  // Whether this Get can be scanned on this server.
  bool LocallyPlannable(const LogicalGet& get) const {
    if (get.table.empty()) return true;  // dual
    if (get.def == nullptr) return false;
    if (pretend_local_) return true;
    return get.server.empty() && !get.def->shadow;
  }

  // If the whole subtree can execute on one remote server, returns its name.
  std::optional<std::string> ShipServer(const LogicalOp& node) const {
    if (pretend_local_) return std::nullopt;
    if (!IsUnparsable(node)) return std::nullopt;
    std::optional<std::string> server;
    bool ok = true;
    CollectShipServer(node, &server, &ok);
    if (!ok || !server.has_value()) return std::nullopt;
    return server;
  }

  void CollectShipServer(const LogicalOp& node,
                         std::optional<std::string>* server, bool* ok) const {
    if (!*ok) return;
    if (node.kind == LogicalKind::kGet) {
      const auto& get = static_cast<const LogicalGet&>(node);
      std::string target;
      if (!get.server.empty()) {
        target = get.server;
      } else if (get.def != nullptr && get.def->shadow &&
                 !get.def->home_server.empty()) {
        // A cache server may shadow tables from several backends (§3);
        // each shadow table knows its home.
        target = get.def->home_server;
      } else if (get.def != nullptr && get.def->shadow &&
                 !options_.backend_server.empty()) {
        target = options_.backend_server;
      } else {
        *ok = false;  // local-only data source
        return;
      }
      if (server->has_value() && **server != target) {
        *ok = false;
        return;
      }
      *server = target;
    }
    for (const auto& child : node.children) CollectShipServer(*child, server, ok);
  }

  StatusOr<double> PretendCost(const LogicalOp& node) {
    Planner remote_planner(catalog_, options_, /*pretend_local=*/true,
                           alternatives_);
    MT_ASSIGN_OR_RETURN(PlanResult result, remote_planner.Plan(node));
    if (result.local_plan == nullptr) {
      return Status::Internal("remote cost estimation failed");
    }
    return result.local_cost;
  }

  StatusOr<PlanChoice> PlanSite(const LogicalGet& get,
                                const BoundExpr* predicate);
  StatusOr<PlanChoice> ScanAlternatives(const LogicalGet& get,
                                        const BoundExpr* predicate);

  const Catalog* catalog_;
  const OptimizerOptions& options_;
  bool pretend_local_;
  int* alternatives_;
};

StatusOr<PlanChoice> Planner::ScanAlternatives(const LogicalGet& get,
                                               const BoundExpr* predicate) {
  RelStats stats = EstimateLogical(get);
  double rows = stats.rows;
  double total_sel =
      predicate != nullptr ? EstimateSelectivity(*predicate, stats) : 1.0;
  double out_rows = std::max(rows * total_sel, 0.5);

  std::vector<const BoundExpr*> conjuncts;
  if (predicate != nullptr) CollectConjuncts(*predicate, &conjuncts);

  // --- Alternative 1: sequential scan with the filter folded in. ---
  PlanChoice best;
  {
    auto scan = std::make_unique<PhysSeqScan>();
    scan->def = get.def;
    scan->schema = get.schema;
    scan->est_rows = rows;
    double cost = rows * CostModel::kSeqRowCost;
    if (predicate != nullptr) {
      // Same cost formula as the unfused Filter(SeqScan) pair, but
      // non-qualifying rows are rejected inside the scan (batchwise on the
      // batch path) and never materialized or emitted.
      cost += rows * CostModel::kFilterRowCost;
      scan->pushed_predicate = CloneBound(*predicate);
      scan->est_rows = out_rows;
    }
    scan->est_cost = cost;
    best.plan = std::move(scan);
    best.cost = cost;
    ++*alternatives_;
  }

  // --- Alternative 2..n: index seeks. ---
  if (get.def != nullptr) {
    std::vector<SimpleConjunct> simple;
    for (const BoundExpr* c : conjuncts) {
      SimpleConjunct sc;
      if (ExtractSimpleConjunct(*c, &sc)) simple.push_back(sc);
    }
    for (size_t idx = 0; idx < get.def->indexes.size(); ++idx) {
      const IndexDef& index = get.def->indexes[idx];
      std::vector<const SimpleConjunct*> used;
      std::vector<BExprPtr> eq_prefix;
      BExprPtr lo;
      BExprPtr hi;
      bool lo_incl = true;
      bool hi_incl = true;
      for (size_t k = 0; k < index.key_columns.size(); ++k) {
        int col = index.key_columns[k];
        const SimpleConjunct* eq = nullptr;
        for (const SimpleConjunct& sc : simple) {
          if (sc.column == col && sc.op == CompareOp::kEq) {
            eq = &sc;
            break;
          }
        }
        if (eq != nullptr) {
          const auto& bin = static_cast<const BoundBinary&>(*eq->source);
          // Clone the non-column side.
          const BoundExpr* rhs =
              bin.left->kind == BoundExprKind::kColumnRef ? bin.right.get()
                                                          : bin.left.get();
          if (!IsRowFree(*rhs)) break;
          eq_prefix.push_back(CloneBound(*rhs));
          used.push_back(eq);
          continue;
        }
        // Range on this column ends the prefix.
        for (const SimpleConjunct& sc : simple) {
          if (sc.column != col) continue;
          const auto& bin = static_cast<const BoundBinary&>(*sc.source);
          const BoundExpr* rhs =
              bin.left->kind == BoundExprKind::kColumnRef ? bin.right.get()
                                                          : bin.left.get();
          if (!IsRowFree(*rhs)) continue;
          if ((sc.op == CompareOp::kGt || sc.op == CompareOp::kGe) && !lo) {
            lo = CloneBound(*rhs);
            lo_incl = sc.op == CompareOp::kGe;
            used.push_back(&sc);
          } else if ((sc.op == CompareOp::kLt || sc.op == CompareOp::kLe) &&
                     !hi) {
            hi = CloneBound(*rhs);
            hi_incl = sc.op == CompareOp::kLe;
            used.push_back(&sc);
          }
        }
        break;
      }
      if (eq_prefix.empty() && !lo && !hi) continue;

      double seek_sel = 1.0;
      for (const SimpleConjunct* sc : used) {
        seek_sel *= EstimateSelectivity(*sc->source, stats);
      }
      double fetched = std::max(rows * seek_sel, 0.5);
      double cost = CostModel::kIndexSeekCost + fetched * CostModel::kIndexRowCost;

      auto seek = std::make_unique<PhysIndexSeek>();
      seek->def = get.def;
      seek->index_ordinal = static_cast<int>(idx);
      seek->eq_prefix = std::move(eq_prefix);
      seek->lo = std::move(lo);
      seek->hi = std::move(hi);
      seek->lo_inclusive = lo_incl;
      seek->hi_inclusive = hi_incl;
      seek->schema = get.schema;
      seek->est_rows = fetched;

      // Residual conjuncts (not used by the seek) fold into the seek too.
      std::vector<BExprPtr> residual;
      for (const BoundExpr* c : conjuncts) {
        bool was_used = false;
        for (const SimpleConjunct* sc : used) {
          if (sc->source == c) {
            was_used = true;
            break;
          }
        }
        if (!was_used) residual.push_back(CloneBound(*c));
      }
      if (!residual.empty()) {
        cost += fetched * CostModel::kFilterRowCost;
        seek->pushed_predicate = AndTogether(std::move(residual));
        seek->est_rows = out_rows;
      }
      seek->est_cost = cost;
      ++*alternatives_;
      if (cost < best.cost) {
        best.plan = std::move(seek);
        best.cost = cost;
      }
    }
  }
  return best;
}

StatusOr<PlanChoice> Planner::PlanSite(const LogicalGet& get,
                                       const BoundExpr* predicate) {
  return ScanAlternatives(get, predicate);
}

StatusOr<PlanResult> Planner::Plan(const LogicalOp& node) {
  PlanResult result;
  result.logical = &node;
  RelStats stats = EstimateLogical(node);
  result.rows = stats.rows;
  result.row_bytes = EstimateRowBytes(node.schema);
  if (node.kind == LogicalKind::kGet) {
    const auto& get = static_cast<const LogicalGet&>(node);
    if (get.def != nullptr && !get.def->stats.empty()) {
      result.row_bytes = get.def->stats.avg_row_bytes;
    }
  }

  // Remote option: the whole subtree executes on one remote server. Cost is
  // what that server's optimizer would estimate — we shadow its catalog and
  // statistics, so we estimate by planning "pretend local" (§5: local
  // optimization instead of remote optimization), scaled by the load factor.
  std::optional<std::string> ship = ShipServer(node);
  if (ship.has_value()) {
    auto cost = PretendCost(node);
    if (cost.ok()) {
      result.remote_ok = true;
      result.remote_server = *ship;
      result.remote_exec_cost = *cost * options_.remote_cost_factor;
    }
  }

  // Local option.
  switch (node.kind) {
    case LogicalKind::kGet: {
      const auto& get = static_cast<const LogicalGet&>(node);
      if (get.table.empty()) {
        auto dual = std::make_unique<PhysDualScan>();
        dual->schema = node.schema;
        dual->est_rows = 1;
        dual->est_cost = 1;
        result.local_plan = std::move(dual);
        result.local_cost = 1;
        return result;
      }
      if (!LocallyPlannable(get)) return result;  // remote only
      MT_ASSIGN_OR_RETURN(PlanChoice choice, PlanSite(get, nullptr));
      result.local_plan = std::move(choice.plan);
      result.local_cost = choice.cost;
      return result;
    }
    case LogicalKind::kFilter: {
      const auto& filter = static_cast<const LogicalFilter&>(node);
      // Access-path selection when filtering directly over a scannable Get.
      if (node.children[0]->kind == LogicalKind::kGet) {
        const auto& get = static_cast<const LogicalGet&>(*node.children[0]);
        if (!get.table.empty() && LocallyPlannable(get)) {
          MT_ASSIGN_OR_RETURN(PlanChoice choice,
                              PlanSite(get, filter.predicate.get()));
          result.local_plan = std::move(choice.plan);
          result.local_cost = choice.cost;
          return result;
        }
      }
      MT_ASSIGN_OR_RETURN(PlanResult child, Plan(*node.children[0]));
      double child_rows = child.rows;
      MT_ASSIGN_OR_RETURN(PlanChoice delivered, DeliverLocal(std::move(child)));
      double cost = delivered.cost + child_rows * CostModel::kFilterRowCost;
      auto phys = std::make_unique<PhysFilter>();
      phys->predicate = CloneBound(*filter.predicate);
      phys->schema = node.schema;
      phys->est_rows = result.rows;
      phys->est_cost = cost;
      phys->children.push_back(std::move(delivered.plan));
      result.local_plan = std::move(phys);
      result.local_cost = cost;
      return result;
    }
    case LogicalKind::kProject: {
      const auto& project = static_cast<const LogicalProject&>(node);
      MT_ASSIGN_OR_RETURN(PlanResult child, Plan(*node.children[0]));
      MT_ASSIGN_OR_RETURN(PlanChoice delivered, DeliverLocal(std::move(child)));
      double cost = delivered.cost + result.rows * CostModel::kProjectRowCost;
      // Fold the projection into a local scan directly below: qualifying
      // rows are rewritten at the scan and intermediate full-width rows are
      // never produced. Expressions stay valid because a (possibly
      // predicate-folded) scan still exposes the table schema.
      PhysicalOp* dp = delivered.plan.get();
      std::vector<BExprPtr>* slot = nullptr;
      if (dp->kind == PhysicalKind::kSeqScan) {
        slot = &static_cast<PhysSeqScan*>(dp)->pushed_projection;
      } else if (dp->kind == PhysicalKind::kIndexSeek) {
        slot = &static_cast<PhysIndexSeek*>(dp)->pushed_projection;
      }
      if (slot != nullptr && slot->empty()) {
        for (const auto& e : project.exprs) slot->push_back(CloneBound(*e));
        dp->schema = node.schema;
        dp->est_rows = result.rows;
        dp->est_cost = cost;
        result.local_plan = std::move(delivered.plan);
        result.local_cost = cost;
        return result;
      }
      auto phys = std::make_unique<PhysProject>();
      for (const auto& e : project.exprs) phys->exprs.push_back(CloneBound(*e));
      phys->schema = node.schema;
      phys->est_rows = result.rows;
      phys->est_cost = cost;
      phys->children.push_back(std::move(delivered.plan));
      result.local_plan = std::move(phys);
      result.local_cost = cost;
      return result;
    }
    case LogicalKind::kJoin: {
      const auto& join = static_cast<const LogicalJoin&>(node);
      MT_ASSIGN_OR_RETURN(PlanResult left, Plan(*node.children[0]));
      MT_ASSIGN_OR_RETURN(PlanResult right, Plan(*node.children[1]));
      double left_rows = left.rows;
      double right_rows = right.rows;
      MT_ASSIGN_OR_RETURN(PlanChoice lplan, DeliverLocal(std::move(left)));
      MT_ASSIGN_OR_RETURN(PlanChoice rplan, DeliverLocal(std::move(right)));

      int left_width = node.children[0]->schema.num_columns();
      // Extract equi-join keys crossing the boundary.
      std::vector<int> probe_keys;
      std::vector<int> build_keys;
      std::vector<BExprPtr> residual;
      if (join.condition != nullptr) {
        std::vector<const BoundExpr*> conjuncts;
        CollectConjuncts(*join.condition, &conjuncts);
        for (const BoundExpr* c : conjuncts) {
          bool is_key = false;
          if (c->kind == BoundExprKind::kBinary) {
            const auto& bin = static_cast<const BoundBinary&>(*c);
            if (bin.op == BinaryOp::kEq &&
                bin.left->kind == BoundExprKind::kColumnRef &&
                bin.right->kind == BoundExprKind::kColumnRef) {
              int a = static_cast<const BoundColumnRef&>(*bin.left).ordinal;
              int b = static_cast<const BoundColumnRef&>(*bin.right).ordinal;
              if (a < left_width && b >= left_width) {
                probe_keys.push_back(a);
                build_keys.push_back(b - left_width);
                is_key = true;
              } else if (b < left_width && a >= left_width) {
                probe_keys.push_back(b);
                build_keys.push_back(a - left_width);
                is_key = true;
              }
            }
          }
          if (!is_key) residual.push_back(CloneBound(*c));
        }
      }

      // Alternative: index nested-loop join, when the inner (right) side is
      // a scannable (possibly filtered) table with an index led by the join
      // column. This is how point joins (item->author etc.) should run.
      struct InnerAccess {
        const LogicalGet* get = nullptr;
        const BoundExpr* predicate = nullptr;
        const LogicalProject* project = nullptr;
        std::vector<int> out_to_inner;  // project output -> inner ordinal
      };
      InnerAccess inner;
      {
        const LogicalOp* right_node = node.children[1].get();
        // See through a pure remap/null-pad Project (view substitution).
        if (right_node->kind == LogicalKind::kProject) {
          const auto* project =
              static_cast<const LogicalProject*>(right_node);
          bool pure = true;
          std::vector<int> mapping;
          for (const auto& e : project->exprs) {
            if (e->kind == BoundExprKind::kColumnRef) {
              mapping.push_back(
                  static_cast<const BoundColumnRef&>(*e).ordinal);
            } else if (e->kind == BoundExprKind::kLiteral) {
              mapping.push_back(-1);
            } else {
              pure = false;
              break;
            }
          }
          if (pure) {
            inner.project = project;
            inner.out_to_inner = std::move(mapping);
            right_node = right_node->children[0].get();
          }
        }
        if (right_node->kind == LogicalKind::kFilter &&
            right_node->children[0]->kind == LogicalKind::kGet) {
          inner.predicate =
              static_cast<const LogicalFilter*>(right_node)->predicate.get();
          right_node = right_node->children[0].get();
        }
        if (right_node->kind == LogicalKind::kGet) {
          const auto& get = static_cast<const LogicalGet&>(*right_node);
          if (!get.table.empty() && LocallyPlannable(get) &&
              get.def != nullptr) {
            inner.get = &get;
          }
        }
      }
      PhysicalPtr inlj_plan;
      double inlj_cost = kInf;
      if (inner.get != nullptr && !probe_keys.empty()) {
        for (size_t idx = 0; idx < inner.get->def->indexes.size(); ++idx) {
          const IndexDef& index = inner.get->def->indexes[idx];
          for (size_t k = 0; k < probe_keys.size(); ++k) {
            // Map the join key through the projection, if any.
            int inner_key = build_keys[k];
            if (inner.project != nullptr) {
              if (inner_key >= static_cast<int>(inner.out_to_inner.size()) ||
                  inner.out_to_inner[inner_key] < 0) {
                continue;
              }
              inner_key = inner.out_to_inner[inner_key];
            }
            if (index.key_columns.empty() ||
                index.key_columns[0] != inner_key) {
              continue;
            }
            RelStats inner_stats = EstimateLogical(*inner.get);
            double ndv = 1;
            if (inner_key >= 0 &&
                inner_key < static_cast<int>(inner_stats.cols.size())) {
              ndv = std::max(inner_stats.cols[inner_key].ndv, 1.0);
            }
            double per_probe = inner_stats.rows / ndv;
            double pred_sel =
                inner.predicate != nullptr
                    ? EstimateSelectivity(*inner.predicate, inner_stats)
                    : 1.0;
            double cost =
                lplan.cost +
                left_rows * (CostModel::kIndexSeekCost +
                             per_probe * (CostModel::kIndexRowCost +
                                          CostModel::kFilterRowCost));
            ++*alternatives_;
            if (cost >= inlj_cost) continue;
            auto phys = std::make_unique<PhysIndexNLJoin>();
            phys->join_kind = join.join_kind;
            phys->inner_def = inner.get->def;
            phys->index_ordinal = static_cast<int>(idx);
            phys->outer_key = probe_keys[k];
            phys->inner_predicate = inner.predicate != nullptr
                                        ? CloneBound(*inner.predicate)
                                        : nullptr;
            if (inner.project != nullptr) {
              for (const auto& e : inner.project->exprs) {
                phys->inner_projection.push_back(CloneBound(*e));
              }
            }
            // Residual: every other join conjunct (including other key
            // equalities) evaluated over the concatenated row.
            std::vector<BExprPtr> inlj_residual;
            for (const auto& r : residual) {
              inlj_residual.push_back(CloneBound(*r));
            }
            for (size_t j = 0; j < probe_keys.size(); ++j) {
              if (j == k) continue;
              inlj_residual.push_back(std::make_unique<BoundBinary>(
                  BinaryOp::kEq,
                  std::make_unique<BoundColumnRef>(probe_keys[j],
                                                   TypeId::kNull, "lk"),
                  std::make_unique<BoundColumnRef>(build_keys[j] + left_width,
                                                   TypeId::kNull, "rk"),
                  TypeId::kBool));
            }
            phys->residual = AndTogether(std::move(inlj_residual));
            phys->schema = node.schema;
            phys->est_rows = result.rows * pred_sel;
            phys->est_cost = cost;
            // The plan owns only the outer child; lplan was moved for the
            // first alternative, so clone via re-plan is avoided by deciding
            // before moving (see ordering below).
            inlj_plan = std::move(phys);
            inlj_cost = cost;
            break;
          }
        }
      }

      ++*alternatives_;
      if (!probe_keys.empty()) {
        double hash_cost = lplan.cost + rplan.cost +
                           right_rows * CostModel::kHashBuildRowCost +
                           left_rows * CostModel::kHashProbeRowCost +
                           result.rows * CostModel::kFilterRowCost;
        // Commuted alternative (inner joins only): build on the LEFT input
        // and probe with the right, restoring column order with a Project.
        double swapped_cost = kInf;
        if (join.join_kind == JoinKind::kInner) {
          ++*alternatives_;
          swapped_cost = lplan.cost + rplan.cost +
                         left_rows * CostModel::kHashBuildRowCost +
                         right_rows * CostModel::kHashProbeRowCost +
                         result.rows *
                             (CostModel::kFilterRowCost +
                              CostModel::kProjectRowCost);
        }
        if (inlj_plan != nullptr && inlj_cost < hash_cost &&
            inlj_cost < swapped_cost) {
          inlj_plan->children.push_back(std::move(lplan.plan));
          result.local_plan = std::move(inlj_plan);
          result.local_cost = inlj_cost;
          return result;
        }
        if (swapped_cost < hash_cost) {
          int right_width = node.children[1]->schema.num_columns();
          auto phys = std::make_unique<PhysHashJoin>();
          phys->join_kind = JoinKind::kInner;
          // Probe = right input, build = left input; keys swap roles and the
          // residual's ordinals are remapped to (right, left) order.
          phys->probe_keys = build_keys;
          phys->build_keys = probe_keys;
          std::vector<BExprPtr> swapped_residual;
          for (auto& r : residual) {
            // old ordinal o: o < left_width -> o + right_width (left now
            // second); else o - left_width (right now first).
            std::vector<int> mapping(left_width + right_width);
            for (int o = 0; o < left_width; ++o) mapping[o] = o + right_width;
            for (int o = 0; o < right_width; ++o) {
              mapping[left_width + o] = o;
            }
            BExprPtr copy = CloneBound(*r);
            RemapColumnRefs(copy.get(), mapping);
            swapped_residual.push_back(std::move(copy));
          }
          phys->residual = AndTogether(std::move(swapped_residual));
          phys->schema =
              Schema::Concat(node.children[1]->schema, node.children[0]->schema);
          phys->est_rows = result.rows;
          phys->est_cost = swapped_cost;
          phys->children.push_back(std::move(rplan.plan));  // probe
          phys->children.push_back(std::move(lplan.plan));  // build
          // Restore (left, right) column order for the parent.
          auto project = std::make_unique<PhysProject>();
          for (int o = 0; o < left_width; ++o) {
            const ColumnInfo& col = node.children[0]->schema.column(o);
            project->exprs.push_back(std::make_unique<BoundColumnRef>(
                right_width + o, col.type, col.name));
          }
          for (int o = 0; o < right_width; ++o) {
            const ColumnInfo& col = node.children[1]->schema.column(o);
            project->exprs.push_back(
                std::make_unique<BoundColumnRef>(o, col.type, col.name));
          }
          project->schema = node.schema;
          project->est_rows = result.rows;
          project->est_cost = swapped_cost;
          project->children.push_back(std::move(phys));
          result.local_plan = std::move(project);
          result.local_cost = swapped_cost;
          return result;
        }
        auto phys = std::make_unique<PhysHashJoin>();
        phys->join_kind = join.join_kind;
        phys->probe_keys = std::move(probe_keys);
        phys->build_keys = std::move(build_keys);
        phys->residual = AndTogether(std::move(residual));
        phys->schema = node.schema;
        phys->est_rows = result.rows;
        phys->est_cost = hash_cost;
        phys->children.push_back(std::move(lplan.plan));
        phys->children.push_back(std::move(rplan.plan));
        result.local_plan = std::move(phys);
        result.local_cost = hash_cost;
      } else {
        double cost = lplan.cost + rplan.cost +
                      left_rows * right_rows * CostModel::kNLInnerRowCost;
        auto phys = std::make_unique<PhysNLJoin>();
        phys->join_kind = join.join_kind;
        phys->condition =
            join.condition != nullptr ? CloneBound(*join.condition) : nullptr;
        phys->schema = node.schema;
        phys->est_rows = result.rows;
        phys->est_cost = cost;
        phys->children.push_back(std::move(lplan.plan));
        phys->children.push_back(std::move(rplan.plan));
        result.local_plan = std::move(phys);
        result.local_cost = cost;
      }
      return result;
    }
    case LogicalKind::kAggregate: {
      const auto& agg = static_cast<const LogicalAggregate&>(node);
      MT_ASSIGN_OR_RETURN(PlanResult child, Plan(*node.children[0]));
      double child_rows = child.rows;
      MT_ASSIGN_OR_RETURN(PlanChoice delivered, DeliverLocal(std::move(child)));
      double cost = delivered.cost + child_rows * CostModel::kAggRowCost;
      auto phys = std::make_unique<PhysHashAggregate>();
      for (const auto& g : agg.group_by) {
        phys->group_by.push_back(CloneBound(*g));
      }
      for (const auto& a : agg.aggs) {
        AggItem item;
        item.func = a.func;
        item.arg = a.arg ? CloneBound(*a.arg) : nullptr;
        phys->aggs.push_back(std::move(item));
      }
      phys->schema = node.schema;
      phys->est_rows = result.rows;
      phys->est_cost = cost;
      phys->children.push_back(std::move(delivered.plan));
      result.local_plan = std::move(phys);
      result.local_cost = cost;
      return result;
    }
    case LogicalKind::kSort: {
      const auto& sort = static_cast<const LogicalSort&>(node);
      MT_ASSIGN_OR_RETURN(PlanResult child, Plan(*node.children[0]));
      double child_rows = child.rows;
      MT_ASSIGN_OR_RETURN(PlanChoice delivered, DeliverLocal(std::move(child)));
      double cost = delivered.cost + CostModel::SortCost(child_rows);
      auto phys = std::make_unique<PhysSort>();
      for (const auto& k : sort.keys) {
        SortKey key;
        key.expr = CloneBound(*k.expr);
        key.desc = k.desc;
        phys->keys.push_back(std::move(key));
      }
      phys->schema = node.schema;
      phys->est_rows = result.rows;
      phys->est_cost = cost;
      phys->children.push_back(std::move(delivered.plan));
      result.local_plan = std::move(phys);
      result.local_cost = cost;
      return result;
    }
    case LogicalKind::kLimit: {
      const auto& limit = static_cast<const LogicalLimit&>(node);
      MT_ASSIGN_OR_RETURN(PlanResult child, Plan(*node.children[0]));
      MT_ASSIGN_OR_RETURN(PlanChoice delivered, DeliverLocal(std::move(child)));
      auto phys = std::make_unique<PhysLimit>();
      phys->limit = limit.limit;
      phys->schema = node.schema;
      phys->est_rows = result.rows;
      phys->est_cost = delivered.cost;
      phys->children.push_back(std::move(delivered.plan));
      result.local_plan = std::move(phys);
      result.local_cost = delivered.cost;
      return result;
    }
    case LogicalKind::kDistinct: {
      MT_ASSIGN_OR_RETURN(PlanResult child, Plan(*node.children[0]));
      double child_rows = child.rows;
      MT_ASSIGN_OR_RETURN(PlanChoice delivered, DeliverLocal(std::move(child)));
      double cost = delivered.cost + child_rows * CostModel::kDistinctRowCost;
      auto phys = std::make_unique<PhysDistinct>();
      phys->schema = node.schema;
      phys->est_rows = result.rows;
      phys->est_cost = cost;
      phys->children.push_back(std::move(delivered.plan));
      result.local_plan = std::move(phys);
      result.local_cost = cost;
      return result;
    }
    case LogicalKind::kChoosePlan: {
      const auto& choose = static_cast<const LogicalChoosePlan&>(node);
      MT_ASSIGN_OR_RETURN(PlanResult left, Plan(*node.children[0]));
      MT_ASSIGN_OR_RETURN(PlanResult right, Plan(*node.children[1]));
      double rows_l = left.rows;
      double rows_r = right.rows;
      MT_ASSIGN_OR_RETURN(PlanChoice lplan, DeliverLocal(std::move(left)));
      MT_ASSIGN_OR_RETURN(PlanChoice rplan, DeliverLocal(std::move(right)));
      double p = choose.guard_prob;
      // §5.1: "the cost of the combined plan is computed as Fl*Cl + (1-Fl)*Cr".
      double cost = p * lplan.cost + (1 - p) * rplan.cost;

      auto phys = std::make_unique<PhysUnionAll>();
      phys->schema = node.schema;
      phys->est_rows = p * rows_l + (1 - p) * rows_r;
      phys->est_cost = cost;
      {
        auto guard_filter = std::make_unique<PhysFilter>();
        guard_filter->predicate = CloneBound(*choose.guard);
        guard_filter->startup = true;
        guard_filter->schema = node.schema;
        guard_filter->est_rows = rows_l;
        guard_filter->est_cost = lplan.cost;
        guard_filter->children.push_back(std::move(lplan.plan));
        phys->children.push_back(std::move(guard_filter));
      }
      {
        auto guard_filter = std::make_unique<PhysFilter>();
        guard_filter->predicate = std::make_unique<BoundUnary>(
            UnaryOp::kNot, CloneBound(*choose.guard), TypeId::kBool);
        guard_filter->startup = true;
        guard_filter->schema = node.schema;
        guard_filter->est_rows = rows_r;
        guard_filter->est_cost = rplan.cost;
        guard_filter->children.push_back(std::move(rplan.plan));
        phys->children.push_back(std::move(guard_filter));
      }
      result.local_plan = std::move(phys);
      result.local_cost = cost;
      return result;
    }
    case LogicalKind::kUnionAll: {
      const auto& u = static_cast<const LogicalUnionAll&>(node);
      auto phys = std::make_unique<PhysUnionAll>();
      phys->schema = node.schema;
      double cost = 0;
      double rows = 0;
      for (size_t i = 0; i < node.children.size(); ++i) {
        MT_ASSIGN_OR_RETURN(PlanResult child, Plan(*node.children[i]));
        double child_rows = child.rows;
        MT_ASSIGN_OR_RETURN(PlanChoice delivered,
                            DeliverLocal(std::move(child)));
        double prob = i < u.startup_probs.size() ? u.startup_probs[i] : 1.0;
        cost += prob * delivered.cost;
        rows += prob * child_rows;
        if (i < u.startup_preds.size() && u.startup_preds[i] != nullptr) {
          auto guard_filter = std::make_unique<PhysFilter>();
          guard_filter->predicate = CloneBound(*u.startup_preds[i]);
          guard_filter->startup = true;
          guard_filter->schema = node.schema;
          guard_filter->est_rows = child_rows;
          guard_filter->est_cost = delivered.cost;
          guard_filter->children.push_back(std::move(delivered.plan));
          phys->children.push_back(std::move(guard_filter));
        } else {
          phys->children.push_back(std::move(delivered.plan));
        }
      }
      phys->est_rows = rows;
      phys->est_cost = cost;
      result.local_plan = std::move(phys);
      result.local_cost = cost;
      result.rows = rows;
      return result;
    }
  }
  return Status::Internal("unhandled logical operator");
}

// ---------------------------------------------------------------------------
// View-matching rewrite driver.
// ---------------------------------------------------------------------------

// Collects rewrite sites: slots holding Filter(Get) or bare Get.
void CollectSites(LogicalPtr* slot, std::vector<LogicalPtr*>* sites) {
  LogicalOp* node = slot->get();
  if (node->kind == LogicalKind::kGet) {
    sites->push_back(slot);
    return;
  }
  if (node->kind == LogicalKind::kFilter &&
      node->children[0]->kind == LogicalKind::kGet) {
    sites->push_back(slot);
    return;
  }
  for (auto& child : node->children) {
    CollectSites(&child, sites);
  }
}

struct SiteInfo {
  LogicalGet* get = nullptr;
  const BoundExpr* predicate = nullptr;  // may be null
  std::vector<const BoundExpr*> conjuncts;
};

SiteInfo InspectSite(LogicalPtr* slot) {
  SiteInfo info;
  LogicalOp* node = slot->get();
  if (node->kind == LogicalKind::kGet) {
    info.get = static_cast<LogicalGet*>(node);
  } else {
    auto* filter = static_cast<LogicalFilter*>(node);
    info.get = static_cast<LogicalGet*>(node->children[0].get());
    info.predicate = filter->predicate.get();
    CollectConjuncts(*filter->predicate, &info.conjuncts);
  }
  return info;
}

}  // namespace

StatusOr<OptimizeResult> Optimizer::Optimize(const LogicalOp& query) const {
  auto start = std::chrono::steady_clock::now();
  OptimizeResult out;
  int alternatives = 0;

  LogicalPtr work = CloneLogical(query);
  work = Normalize(std::move(work), {});

  if (options_.enable_view_matching) {
    // Pass 1: unconditional substitutions, chosen cost-based (or forced when
    // mimicking DBCache-style routing).
    Planner cmp(catalog_, options_, /*pretend_local=*/false, &alternatives);
    std::vector<LogicalPtr*> sites;
    CollectSites(&work, &sites);
    UsedMap used;
    ComputeUsed(*work, AllColumns(work->schema), &used);
    for (LogicalPtr* slot : sites) {
      SiteInfo info = InspectSite(slot);
      auto it = used.find(info.get);
      std::set<int> used_cols =
          it != used.end() ? it->second : AllColumns(info.get->schema);
      std::vector<ViewMatch> matches =
          MatchViews(*info.get, info.conjuncts, used_cols, *catalog_,
                     options_.allow_mixed_results, options_.max_staleness,
                     options_.current_time, options_.decision_stats);
      const ViewMatch* chosen = nullptr;
      double best_cost = kInf;
      if (options_.cost_based_routing) {
        auto original_cost = cmp.DeliveredCost(**slot);
        if (original_cost.ok()) best_cost = *original_cost;
      }
      for (const ViewMatch& m : matches) {
        if (m.guard != nullptr) continue;  // conditional: pass 2
        ++alternatives;
        if (!options_.cost_based_routing) {
          chosen = &m;
          break;
        }
        auto cost = cmp.DeliveredCost(*m.substitute);
        if (cost.ok() && *cost < best_cost) {
          best_cost = *cost;
          chosen = &m;
        }
      }
      // Decide whether this site counts toward the view-match stats before
      // substituting: the substitution frees the subtree info.get points to.
      const bool count_site =
          options_.decision_stats != nullptr && info.get->def != nullptr &&
          !info.get->def->virtual_table &&
          !catalog_->ViewsOver(info.get->table).empty();
      if (chosen != nullptr) {
        *slot = CloneLogical(*chosen->substitute);
      }
      if (count_site) {
        bool has_conditional = false;
        for (const ViewMatch& m : matches) {
          if (m.guard != nullptr) has_conditional = true;
        }
        if (chosen != nullptr) {
          ++options_.decision_stats->view_match_hits;
        } else if (!has_conditional || !options_.enable_dynamic_plans) {
          // Conditional-only sites are decided in pass 2 (counted there).
          ++options_.decision_stats->view_match_misses;
        }
      }
    }

    // Pass 2: first conditional (parameterized) match becomes a dynamic plan.
    if (options_.enable_dynamic_plans) {
      sites.clear();
      CollectSites(&work, &sites);
      used.clear();
      ComputeUsed(*work, AllColumns(work->schema), &used);
      for (LogicalPtr* slot : sites) {
        SiteInfo info = InspectSite(slot);
        auto it = used.find(info.get);
        std::set<int> used_cols =
            it != used.end() ? it->second : AllColumns(info.get->schema);
        // No decision_stats here: pass 1 already counted this site's
        // currency checks, and conditional usage is counted below.
        std::vector<ViewMatch> matches =
            MatchViews(*info.get, info.conjuncts, used_cols, *catalog_,
                       options_.allow_mixed_results, options_.max_staleness,
                       options_.current_time);
        // Substitutions below free the subtree info.get points into; keep
        // copies of the identifiers needed to re-locate the site afterwards.
        const std::string site_table = info.get->table;
        const std::string site_alias = info.get->alias;
        ViewMatch* conditional = nullptr;
        for (ViewMatch& m : matches) {
          if (m.guard != nullptr) {
            conditional = &m;
            break;
          }
        }
        if (conditional == nullptr) continue;
        ++alternatives;
        if (options_.decision_stats != nullptr) {
          ++options_.decision_stats->view_match_conditional;
        }

        // Candidate A: ChoosePlan. With pull-up, the ChoosePlan floats to
        // the root so each branch is optimized independently and the remote
        // branch can ship the largest possible query (§5.1.2).
        LogicalPtr cp_variant;
        if (options_.pull_up_chooseplan) {
          auto cp = std::make_unique<LogicalChoosePlan>();
          cp->guard = CloneBound(*conditional->guard);
          cp->guard_prob = conditional->guard_prob;
          cp->schema = work->schema;
          LogicalPtr original = CloneLogical(*work);
          *slot = CloneLogical(*conditional->substitute);
          cp->children.push_back(std::move(work));
          cp->children.push_back(std::move(original));
          cp_variant = std::move(cp);
        } else {
          auto cp = std::make_unique<LogicalChoosePlan>();
          cp->guard = CloneBound(*conditional->guard);
          cp->guard_prob = conditional->guard_prob;
          cp->schema = (*slot)->schema;
          LogicalPtr original_site = CloneLogical(**slot);
          cp->children.push_back(CloneLogical(*conditional->substitute));
          cp->children.push_back(std::move(original_site));
          *slot = std::move(cp);
          cp_variant = std::move(work);
        }

        // Candidate B: mixed-result plan (regular matviews only).
        if (conditional->mixed != nullptr && options_.cost_based_routing) {
          // Rebuild the original tree with the site replaced by the mixed
          // UnionAll, and compare costs.
          LogicalPtr mixed_variant;
          {
            // cp_variant holds the tree; locate the equivalent structure is
            // complex, so instead rebuild from the pull-up fallback branch.
            const LogicalOp* original_tree =
                options_.pull_up_chooseplan ? cp_variant->children[1].get()
                                            : nullptr;
            if (original_tree != nullptr) {
              mixed_variant = CloneLogical(*original_tree);
              std::vector<LogicalPtr*> msites;
              CollectSites(&mixed_variant, &msites);
              for (LogicalPtr* mslot : msites) {
                SiteInfo minfo = InspectSite(mslot);
                if (minfo.get->table == site_table &&
                    minfo.get->alias == site_alias) {
                  *mslot = CloneLogical(*conditional->mixed);
                  break;
                }
              }
            }
          }
          if (mixed_variant != nullptr) {
            auto cp_cost = cmp.DeliveredCost(*cp_variant);
            auto mixed_cost = cmp.DeliveredCost(*mixed_variant);
            if (cp_cost.ok() && mixed_cost.ok() && *mixed_cost < *cp_cost) {
              cp_variant = std::move(mixed_variant);
            }
          }
        }

        work = std::move(cp_variant);
        break;  // one dynamic site per query
      }
    }
  }

  Planner planner(catalog_, options_, /*pretend_local=*/false, &alternatives);
  MT_ASSIGN_OR_RETURN(PlanResult root, planner.Plan(*work));
  double root_rows = root.rows;
  MT_ASSIGN_OR_RETURN(PlanChoice choice, planner.DeliverLocal(std::move(root)));

  out.plan = std::move(choice.plan);
  out.est_cost = choice.cost;
  out.est_rows = root_rows;
  out.plan_size = PhysicalPlanSize(*out.plan);
  out.alternatives_considered = alternatives;

  // Scan for RemoteQuery / startup predicates.
  std::vector<const PhysicalOp*> stack = {out.plan.get()};
  while (!stack.empty()) {
    const PhysicalOp* op = stack.back();
    stack.pop_back();
    if (op->kind == PhysicalKind::kRemoteQuery) out.uses_remote = true;
    if (op->kind == PhysicalKind::kFilter &&
        static_cast<const PhysFilter*>(op)->startup) {
      out.dynamic_plan = true;
    }
    for (const auto& child : op->children) stack.push_back(child.get());
  }
  if (options_.decision_stats != nullptr) {
    if (out.uses_remote) ++options_.decision_stats->remote_plans;
    if (out.dynamic_plan) ++options_.decision_stats->dynamic_plans;
  }

  out.optimize_micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
  return out;
}

}  // namespace mtcache
