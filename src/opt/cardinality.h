#ifndef MTCACHE_OPT_CARDINALITY_H_
#define MTCACHE_OPT_CARDINALITY_H_

#include <vector>

#include "catalog/statistics.h"
#include "expr/bound_expr.h"
#include "opt/logical.h"

namespace mtcache {

/// Derived statistics for a (sub)relation: estimated row count and
/// per-output-column statistics. On an MTCache server these derive from the
/// *shadowed* statistics, which is what makes fully local cost-based
/// optimization possible (§5).
struct RelStats {
  double rows = 1;
  std::vector<ColumnStats> cols;
};

/// Estimates the selectivity of `pred` against a relation whose column
/// statistics are `stats` (parallel to the predicate's input schema).
/// Standard System-R style: 1/ndv for equality, linear interpolation on
/// [min,max] for ranges, independence across conjuncts. Predicates on
/// run-time parameters fall back to fixed default fractions.
double EstimateSelectivity(const BoundExpr& pred, const RelStats& stats);

/// Bottom-up row-count and column-stat derivation for a logical tree.
RelStats EstimateLogical(const LogicalOp& op);

/// Probability that a comparison `param op bound` is true, assuming the
/// parameter is uniformly distributed over the column's [min, max] (§5.1:
/// "we currently estimate Fl under the assumption [the parameter] is
/// uniformly distributed between the min and max values of the column").
double EstimateGuardProbability(CompareOp op, double bound,
                                const ColumnStats& col);

}  // namespace mtcache

#endif  // MTCACHE_OPT_CARDINALITY_H_
