#ifndef MTCACHE_OPT_LOGICAL_H_
#define MTCACHE_OPT_LOGICAL_H_

#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "expr/bound_expr.h"
#include "types/schema.h"

namespace mtcache {

enum class LogicalKind {
  kGet,         // base table / matview / cached-view scan source
  kFilter,
  kProject,
  kJoin,
  kAggregate,
  kSort,
  kLimit,
  kDistinct,
  kChoosePlan,  // dynamic plan: guard picks the live branch at run time (§5.1)
  kUnionAll,    // concatenation; used for mixed-result plans (§5.1.1, Fig. 3)
};

/// Logical operator tree produced by the binder and rewritten by the
/// optimizer. Every node carries its output schema; expressions reference
/// child output columns by ordinal.
struct LogicalOp {
  LogicalOp(LogicalKind k) : kind(k) {}
  virtual ~LogicalOp() = default;
  const LogicalKind kind;
  Schema schema;
  std::vector<std::unique_ptr<LogicalOp>> children;
};

using LogicalPtr = std::unique_ptr<LogicalOp>;

/// Scan of a named relation. `def` points into the *local* catalog; whether
/// the data is Local or Remote is a physical property decided by the
/// optimizer: cached views and regular tables with rows are Local, shadow
/// tables are Remote (§5), and explicit `server.table` references are Remote
/// on that linked server (§2.1).
struct LogicalGet : LogicalOp {
  LogicalGet() : LogicalOp(LogicalKind::kGet) {}
  std::string table;
  std::string alias;       // qualifier used in the query
  std::string server;      // explicit linked server; empty = local catalog
  const TableDef* def = nullptr;  // null for explicit remote tables
};

struct LogicalFilter : LogicalOp {
  LogicalFilter() : LogicalOp(LogicalKind::kFilter) {}
  BExprPtr predicate;
};

struct LogicalProject : LogicalOp {
  LogicalProject() : LogicalOp(LogicalKind::kProject) {}
  std::vector<BExprPtr> exprs;  // parallel to schema columns
};

struct LogicalJoin : LogicalOp {
  LogicalJoin() : LogicalOp(LogicalKind::kJoin) {}
  JoinKind join_kind = JoinKind::kInner;
  BExprPtr condition;  // over Concat(left, right); null = cross product
};

struct AggItem {
  AggFunc func = AggFunc::kCountStar;
  BExprPtr arg;  // null for COUNT(*)
};

/// Output schema: group-by columns first, then one column per aggregate.
struct LogicalAggregate : LogicalOp {
  LogicalAggregate() : LogicalOp(LogicalKind::kAggregate) {}
  std::vector<BExprPtr> group_by;
  std::vector<AggItem> aggs;
};

struct SortKey {
  BExprPtr expr;
  bool desc = false;
};

struct LogicalSort : LogicalOp {
  LogicalSort() : LogicalOp(LogicalKind::kSort) {}
  std::vector<SortKey> keys;
};

struct LogicalLimit : LogicalOp {
  LogicalLimit() : LogicalOp(LogicalKind::kLimit) {}
  int64_t limit = 0;
};

struct LogicalDistinct : LogicalOp {
  LogicalDistinct() : LogicalOp(LogicalKind::kDistinct) {}
};

/// Dynamic-plan operator (§5.1). children[0] runs when the guard predicate
/// (parameters only) is true at OPEN time, children[1] otherwise. Physically
/// implemented as UnionAll over two startup-predicate Selects (Figure 2(b)).
struct LogicalChoosePlan : LogicalOp {
  LogicalChoosePlan() : LogicalOp(LogicalKind::kChoosePlan) {}
  BExprPtr guard;
  /// Estimated P(guard true); the combined plan costs Fl*Cl + (1-Fl)*Cr.
  double guard_prob = 0.5;
};

/// UnionAll with optional per-child startup predicates (null = always run).
/// Mixed-result plans (§5.1.1) use this directly; ChoosePlan also lowers to
/// it physically.
struct LogicalUnionAll : LogicalOp {
  LogicalUnionAll() : LogicalOp(LogicalKind::kUnionAll) {}
  std::vector<BExprPtr> startup_preds;  // parallel to children
  std::vector<double> startup_probs;    // estimated P(child runs)
};

/// Deep copy of a logical tree.
LogicalPtr CloneLogical(const LogicalOp& op);

/// Multi-line indented rendering for tests and EXPLAIN-style output.
std::string LogicalToString(const LogicalOp& op, int indent = 0);

}  // namespace mtcache

#endif  // MTCACHE_OPT_LOGICAL_H_
