#ifndef MTCACHE_OPT_UNPARSE_H_
#define MTCACHE_OPT_UNPARSE_H_

#include <string>

#include "common/status.h"
#include "opt/logical.h"

namespace mtcache {

/// Renders a logical subtree as SQL text. This is how remote subexpressions
/// travel: "every subexpression rooted by a DataTransfer operator is
/// converted to a (textual) SQL query and sent to the backend server where
/// it will be parsed and optimized again" (§5). Each subquery level aliases
/// its outputs c0..cN so ordinals survive the round trip. Parameters are
/// shipped as @names and forwarded with the query.
StatusOr<std::string> LogicalToSql(const LogicalOp& op);

/// True if the subtree consists solely of operators the unparser handles
/// (Get/Filter/Project/Join/Aggregate/Sort/Limit/Distinct over base tables).
bool IsUnparsable(const LogicalOp& op);

}  // namespace mtcache

#endif  // MTCACHE_OPT_UNPARSE_H_
