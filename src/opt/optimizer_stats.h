#ifndef MTCACHE_OPT_OPTIMIZER_STATS_H_
#define MTCACHE_OPT_OPTIMIZER_STATS_H_

#include <cstdint>

#include "common/atomics.h"

namespace mtcache {

/// Optimizer decision counters, incremented when a sink is installed via
/// `OptimizerOptions::decision_stats`. The engine's MetricsRegistry embeds
/// one of these; it lives in its own header so both the optimizer and view
/// matching can fill it without depending on engine headers. Relaxed atomics:
/// concurrent sessions optimize (and bump) in parallel.
struct OptimizerDecisionStats {
  /// Unconditional view substitutions applied (pass 1).
  RelaxedInt64 view_match_hits = 0;
  /// Sites with at least one candidate view where no substitution and no
  /// dynamic plan was applied (cost-based rejection or staleness).
  RelaxedInt64 view_match_misses = 0;
  /// Conditional (guarded) matches turned into ChoosePlan dynamic plans.
  RelaxedInt64 view_match_conditional = 0;
  /// Final plans containing a startup-predicate branch.
  RelaxedInt64 dynamic_plans = 0;
  /// Final plans containing a RemoteQuery operator.
  RelaxedInt64 remote_plans = 0;
  /// Freshness-constrained queries only (max_staleness >= 0): cached views
  /// that passed the currency check and stayed eligible for matching.
  RelaxedInt64 currency_checks_passed = 0;
  /// Cached views rejected as too stale for the query's staleness budget
  /// (the plan falls back to the backend for those rows).
  RelaxedInt64 currency_fallbacks = 0;
};

}  // namespace mtcache

#endif  // MTCACHE_OPT_OPTIMIZER_STATS_H_
